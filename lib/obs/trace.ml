(* Hierarchical span tracing with pluggable sinks.

   A span is a begin/end pair around a phase of work — a bulk-loading
   stage, an external-sort merge pass, a query.  At span begin the
   current values of every registered {!Metrics} counter are snapshotted;
   at span end the non-zero deltas are attached to the end event, so
   every span carries exactly the I/O (pager reads/writes/allocs, cache
   hits/misses, ...) that happened inside it — the phase-attributed
   accounting behind the paper's Figures 9-11.

   Sinks:
   - [Null]: tracing disabled.  [with_span] reduces to one flag check
     and a direct call, so instrumentation is free when off.
   - [Memory]: a bounded ring buffer of events (oldest dropped first);
     the substrate for Chrome-trace export and span summaries.
   - [Text]: human-readable begin/end lines with nesting indentation,
     printed as they happen.

   Timestamps are wall-clock microseconds on the process-wide epoch
   shared with {!Flight}, the unit of the Chrome trace-event format
   (load the exported file in chrome://tracing or
   https://ui.perfetto.dev) — sharing the axis lets [write_chrome]
   merge flight-recorder events into the same file.

   The sink machinery is single-domain by design: spans and instants
   are emitted by the coordinating domain (bulk loads, the Qexec
   coordinator, the CLI).  Worker domains record through the
   domain-safe {!Metrics} stripes and {!Flight} rings instead; their
   numbers reach the trace as span-boundary counter deltas and merged
   flight events. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type phase = B | E | I

type event = {
  ev_phase : phase;
  ev_name : string;
  ev_cat : string;
  ev_ts : float; (* microseconds since trace start *)
  ev_args : (string * value) list;
}

type ring = {
  ev : event array;
  capacity : int;
  mutable head : int; (* index of the oldest event *)
  mutable len : int;
  mutable dropped : int;
}

type sink = Null | Memory of ring | Text of Format.formatter

let dummy_event = { ev_phase = I; ev_name = ""; ev_cat = ""; ev_ts = 0.0; ev_args = [] }

let null_sink = Null

let memory_sink ?(capacity = 1 lsl 16) () =
  if capacity < 1 then invalid_arg "Trace.memory_sink: capacity must be positive";
  Memory { ev = Array.make capacity dummy_event; capacity; head = 0; len = 0; dropped = 0 }

let text_sink ppf = Text ppf

(* --- global trace state --- *)

let current : sink ref = ref Null
let enabled_flag = ref false
let text_depth = ref 0

let enabled () = !enabled_flag

let now_us () = Flight.now_us ()

let pp_args ppf args =
  if args <> [] then begin
    Format.fprintf ppf " {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.fprintf ppf ", ";
        match v with
        | Int n -> Format.fprintf ppf "%s=%d" k n
        | Float f -> Format.fprintf ppf "%s=%g" k f
        | Str s -> Format.fprintf ppf "%s=%s" k s
        | Bool b -> Format.fprintf ppf "%s=%b" k b)
      args;
    Format.fprintf ppf "}"
  end

let ring_push r e =
  if r.len < r.capacity then begin
    r.ev.((r.head + r.len) mod r.capacity) <- e;
    r.len <- r.len + 1
  end
  else begin
    r.ev.(r.head) <- e;
    r.head <- (r.head + 1) mod r.capacity;
    r.dropped <- r.dropped + 1
  end

let emit e =
  match !current with
  | Null -> ()
  | Memory r -> ring_push r e
  | Text ppf ->
      (match e.ev_phase with
      | B ->
          Format.fprintf ppf "[%10.1fus] %s> %s%a@." e.ev_ts
            (String.make (2 * !text_depth) ' ')
            e.ev_name pp_args e.ev_args;
          incr text_depth
      | E ->
          if !text_depth > 0 then decr text_depth;
          Format.fprintf ppf "[%10.1fus] %s< %s%a@." e.ev_ts
            (String.make (2 * !text_depth) ' ')
            e.ev_name pp_args e.ev_args
      | I ->
          Format.fprintf ppf "[%10.1fus] %s! %s%a@." e.ev_ts
            (String.make (2 * !text_depth) ' ')
            e.ev_name pp_args e.ev_args)

let install sink =
  current := sink;
  text_depth := 0;
  (match sink with
  | Null -> enabled_flag := false
  | Memory _ | Text _ ->
      enabled_flag := true;
      (* Spans attribute counter deltas, so tracing implies collection. *)
      Metrics.set_collecting true)

let uninstall () =
  current := Null;
  enabled_flag := false;
  Metrics.set_collecting false

let events () =
  match !current with
  | Memory r -> List.init r.len (fun i -> r.ev.((r.head + i) mod r.capacity))
  | Null | Text _ -> []

let dropped () = match !current with Memory r -> r.dropped | Null | Text _ -> 0

(* --- spans --- *)

type span = { sp_name : string; sp_live : bool; sp_base : int array }

let dead_span = { sp_name = ""; sp_live = false; sp_base = [||] }

let span_begin ?(cat = "") ?(args = []) name =
  if not !enabled_flag then dead_span
  else begin
    let base = Metrics.counter_values () in
    emit { ev_phase = B; ev_name = name; ev_cat = cat; ev_ts = now_us (); ev_args = args };
    { sp_name = name; sp_live = true; sp_base = base }
  end

let span_end ?(args = []) sp =
  if sp.sp_live && !enabled_flag then begin
    let deltas =
      List.filter_map
        (fun (n, d) -> if d = 0 then None else Some (n, Int d))
        (Metrics.counter_deltas ~since:sp.sp_base)
    in
    emit
      { ev_phase = E; ev_name = sp.sp_name; ev_cat = ""; ev_ts = now_us (); ev_args = args @ deltas }
  end

let with_span ?cat ?args name f =
  if not !enabled_flag then f ()
  else begin
    let sp = span_begin ?cat ?args name in
    (* Exception safety: the end event is emitted on any exit, so traces
       stay balanced even when a phase raises (e.g. an injected
       Io_error surviving the retry budget). *)
    Fun.protect ~finally:(fun () -> span_end sp) f
  end

let instant ?(args = []) name =
  if !enabled_flag then
    emit { ev_phase = I; ev_name = name; ev_cat = ""; ev_ts = now_us (); ev_args = args }

(* --- Chrome trace-event export --- *)

let value_to_json = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let event_to_json e =
  let ph = match e.ev_phase with B -> "B" | E -> "E" | I -> "i" in
  Json.Obj
    ([ ("name", Json.Str e.ev_name) ]
    @ (if e.ev_cat = "" then [] else [ ("cat", Json.Str e.ev_cat) ])
    @ [ ("ph", Json.Str ph); ("ts", Json.Float e.ev_ts); ("pid", Json.Int 1); ("tid", Json.Int 1) ]
    @ (match e.ev_phase with I -> [ ("s", Json.Str "t") ] | B | E -> [])
    @
    if e.ev_args = [] then []
    else [ ("args", Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) e.ev_args)) ])

let chrome_json evs =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json evs));
      ("displayTimeUnit", Json.Str "ms");
    ]

(* Merge span events with the flight-recorder rings onto one time axis:
   trace events keep tid 1, flight events sit on their domain's track.
   The sort is stable, so the monotone trace stream keeps its relative
   order on timestamp ties. *)
let write_chrome ?(flight = true) path =
  let trace_evs = List.map (fun e -> (e.ev_ts, event_to_json e)) (events ()) in
  let flight_evs = if flight then Flight.chrome_events () else [] in
  let all =
    List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) (trace_evs @ flight_evs)
  in
  Json.to_file path
    (Json.Obj
       [ ("traceEvents", Json.List (List.map snd all)); ("displayTimeUnit", Json.Str "ms") ]);
  List.length all

(* --- span summaries --- *)

type span_stats = {
  span_name : string;
  calls : int;
  total_us : float;
  io : (string * int) list; (* summed end-event integer args, inclusive of children *)
}

let summary evs =
  let order = ref [] in
  let agg : (string, span_stats ref) Hashtbl.t = Hashtbl.create 16 in
  let stack = ref [] in
  let record name dur args =
    let cell =
      match Hashtbl.find_opt agg name with
      | Some c -> c
      | None ->
          let c = ref { span_name = name; calls = 0; total_us = 0.0; io = [] } in
          Hashtbl.replace agg name c;
          order := name :: !order;
          c
    in
    let ints = List.filter_map (fun (k, v) -> match v with Int n -> Some (k, n) | _ -> None) args in
    let io =
      List.fold_left
        (fun io (k, n) ->
          let rec bump = function
            | [] -> [ (k, n) ]
            | (k', n') :: rest -> if k = k' then (k', n' + n) :: rest else (k', n') :: bump rest
          in
          bump io)
        !cell.io ints
    in
    cell := { !cell with calls = !cell.calls + 1; total_us = !cell.total_us +. dur; io }
  in
  List.iter
    (fun e ->
      match e.ev_phase with
      | B -> stack := (e.ev_name, e.ev_ts) :: !stack
      | E -> (
          match !stack with
          | (name, ts) :: rest when name = e.ev_name ->
              stack := rest;
              record name (e.ev_ts -. ts) e.ev_args
          | _ ->
              (* Unpaired end (ring overflow ate the begin): count the
                 call, attribute no time. *)
              record e.ev_name 0.0 e.ev_args)
      | I -> ())
    evs;
  List.rev_map (fun name -> !(Hashtbl.find agg name)) !order
