(* A minimal JSON tree with an emitter and a strict parser.

   The observability layer needs to *write* JSON in two shapes — Chrome
   trace-event files and the machine-readable benchmark/metrics exports —
   and the test suite needs to *read* those files back to check
   well-formedness, so both directions live here.  No external JSON
   dependency exists in the container; this is deliberately a small,
   total implementation (ints and floats are kept apart so counter values
   round-trip exactly). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- emission --- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Non-finite floats have no JSON spelling; they become null rather than
   producing an unparseable file. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    (* "3" is valid JSON but would re-parse as an Int; keep the float
       marker so round trips preserve the constructor. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s then s else s ^ ".0"
  end

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf v;
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* --- parsing --- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    c.pos < String.length c.src
    && (match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected %C at offset %d, found %C" ch c.pos x
  | None -> parse_error "expected %C at offset %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "invalid literal at offset %d" c.pos

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
        advance c;
        (match peek c with
        | Some '"' -> Buffer.add_char buf '"'; advance c
        | Some '\\' -> Buffer.add_char buf '\\'; advance c
        | Some '/' -> Buffer.add_char buf '/'; advance c
        | Some 'n' -> Buffer.add_char buf '\n'; advance c
        | Some 'r' -> Buffer.add_char buf '\r'; advance c
        | Some 't' -> Buffer.add_char buf '\t'; advance c
        | Some 'b' -> Buffer.add_char buf '\b'; advance c
        | Some 'f' -> Buffer.add_char buf '\012'; advance c
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then parse_error "truncated \\u escape";
            let hex = String.sub c.src c.pos 4 in
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some v -> v
              | None -> parse_error "bad \\u escape %S" hex
            in
            c.pos <- c.pos + 4;
            (* Only the control-character range is emitted by [escape];
               decode the BMP generically as UTF-8 anyway. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> parse_error "bad escape at offset %d" c.pos);
        go ()
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let num_char ch =
    (ch >= '0' && ch <= '9') || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while (match peek c with Some ch -> num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> parse_error "bad number %S at offset %d" s start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ((key, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, v) :: acc)
          | _ -> parse_error "expected ',' or '}' at offset %d" c.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> parse_error "expected ',' or ']' at offset %d" c.pos
        in
        List (elements [])
      end
  | Some '"' -> Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then parse_error "trailing garbage at offset %d" c.pos;
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* --- accessors (used by tests and the trace checker) --- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_number = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None
