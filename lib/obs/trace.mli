(** Hierarchical span tracing with pluggable sinks and Chrome
    trace-event export.

    Spans capture wall-clock time and, at their boundaries, the deltas of
    every registered {!Metrics} counter — so a span over a bulk-loading
    phase carries exactly the pager reads/writes, cache hits/misses and
    sort passes that happened inside it.  With the null sink installed
    (the default) every entry point reduces to one flag check; the
    instrumented libraries are free when tracing is off. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type phase = B | E | I  (** span begin, span end, instant *)

type event = {
  ev_phase : phase;
  ev_name : string;
  ev_cat : string;
  ev_ts : float;  (** microseconds since process start ({!Flight.now_us}) *)
  ev_args : (string * value) list;
}

type sink

val null_sink : sink
(** Discards everything; installing it disables tracing. *)

val memory_sink : ?capacity:int -> unit -> sink
(** Bounded ring buffer (default 65536 events); when full the oldest
    events are dropped and counted ({!dropped}). *)

val text_sink : Format.formatter -> sink
(** Prints one indented line per event as it happens. *)

val install : sink -> unit
(** Make a sink current.  A non-null sink enables tracing and turns on
    {!Metrics} collection (spans need counter snapshots).  Timestamps
    run on the process-wide epoch shared with {!Flight}.

    The sink is single-domain: emit spans from the coordinating domain
    only — worker domains record through {!Metrics} and {!Flight}. *)

val uninstall : unit -> unit
(** Back to the null sink; also turns {!Metrics} collection off. *)

val enabled : unit -> bool

val events : unit -> event list
(** Buffered events of the current memory sink, oldest first; [[]] for
    other sinks. *)

val dropped : unit -> int
(** Events lost to ring overflow in the current memory sink. *)

type span

val span_begin : ?cat:string -> ?args:(string * value) list -> string -> span
(** Open a span: emits a begin event and snapshots all counters.  A
    dead no-op span is returned while tracing is disabled. *)

val span_end : ?args:(string * value) list -> span -> unit
(** Close a span: emits an end event carrying [args] plus the non-zero
    counter deltas since {!span_begin}. *)

val with_span : ?cat:string -> ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  The end event is emitted
    even when [f] raises, so traces stay balanced under exceptions.
    When tracing is off this is exactly [f ()]. *)

val instant : ?args:(string * value) list -> string -> unit
(** A zero-duration marker event. *)

val event_to_json : event -> Json.t

val chrome_json : event list -> Json.t
(** The Chrome trace-event document ([{"traceEvents": [...]}]) —
    loadable in chrome://tracing and Perfetto. *)

val write_chrome : ?flight:bool -> string -> int
(** Write the current memory sink's events — merged, unless
    [~flight:false], with the {!Flight} recorder's per-domain events on
    one sorted time axis — as a Chrome trace file, returning how many
    events were written.  Trace spans sit on tid 1; flight events on
    their domain's tid. *)

type span_stats = {
  span_name : string;
  calls : int;
  total_us : float;  (** inclusive of child spans *)
  io : (string * int) list;  (** summed integer end-args (counter deltas) *)
}

val summary : event list -> span_stats list
(** Aggregate balanced begin/end pairs per span name, in first-seen
    order — the span-aware report printed by the bench harness and
    [prt profile]. *)
