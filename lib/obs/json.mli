(** Minimal JSON tree, emitter and strict parser.

    Backs every machine-readable surface of the observability layer:
    Chrome trace-event files ({!Trace.write_chrome}), the metrics export
    ({!Metrics.to_json}), and the benchmark harness's [BENCH_*.json]
    result files.  Ints and floats are distinct constructors so counter
    values round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val emit : Buffer.t -> t -> unit
(** Append the serialized value. Strings are escaped per RFC 8259;
    non-finite floats become [null]. *)

val to_string : t -> string

val to_file : string -> t -> unit
(** Write the value (plus a trailing newline) to a file. *)

exception Parse_error of string

val of_string : string -> t
(** Strict parse of a complete JSON document; raises {!Parse_error} on
    malformed input or trailing garbage. *)

val of_file : string -> t

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to [k], if any. *)

val to_list : t -> t list option
val to_str : t -> string option
val to_int : t -> int option

val to_number : t -> float option
(** Ints and floats, unified. *)
