(* A process-wide registry of named counters, gauges and log-bucketed
   histograms, correct under OCaml 5 domains.

   Design constraints, in order:

   1. Zero perturbation: recording a metric must never touch the pager
      or buffer pool, so instrumented code observes exactly the I/O it
      would without instrumentation (the bench harness's numbers are the
      paper's figures — they must not move).
   2. Near-zero cost when off: every mutator is gated on one atomic
      flag, so an uninstrumented run pays a load and a branch per call
      site and nothing else.  [collecting] is flipped on by
      {!Trace.install} or explicitly by a surface that wants metrics
      without tracing.
   3. Domain safety without contention: each domain owns a private
      stripe (plain int arrays reached through [Domain.DLS]); a mutator
      writes only its own stripe, so there is no shared mutable cell two
      domains ever write — the lost-update race of the old single-array
      design is unrepresentable, not merely locked away.  Readers
      aggregate the stripes under the registry mutex.
   4. Stable identity: metrics are registered once by name (find-or-
      create) and a counter's dense slot is its registration ordinal, so
      hot call sites hold the record directly and pay no lookup, and
      {!Trace} gets a cheap dense snapshot for span-boundary deltas.

   Exactness: a domain that terminates folds its stripe into the
   [retired] accumulator (under the registry mutex) from a
   [Domain.at_exit] hook, so after [Domain.join] an aggregated read
   equals the sequential sum of every recorded increment.  While writer
   domains are still running, aggregation is a racy-but-atomic-per-cell
   snapshot: it may lag in-flight increments but never tears a value
   (int array cells are single words in the OCaml memory model). *)

type counter = { c_id : int; c_name : string }
type gauge = { g_name : string; g_cell : float Atomic.t }
type histogram = { h_id : int; h_name : string }

(* Bucket 0 holds values <= 0; bucket k >= 1 holds [2^(k-1), 2^k - 1].
   63 buckets cover the whole non-negative int range on 64-bit. *)
let nbuckets = 63

(* Per-stripe histogram cell, allocated lazily on first observation. *)
type hcell = {
  hc_buckets : int array;
  mutable hc_count : int;
  mutable hc_sum : int;
  mutable hc_min : int;
  mutable hc_max : int;
}

(* A stripe is one domain's private slice of every counter and
   histogram.  Arrays are indexed by registration ordinal and grown by
   the owning domain when a metric registered after stripe creation is
   first touched. *)
type stripe = {
  mutable st_counters : int array;
  mutable st_hists : hcell option array;
}

type kind = Kc of counter | Kg of gauge | Kh of histogram

let lock = Mutex.create ()

(* Registration state, all guarded by [lock].  Lists are newest-first;
   a metric's dense slot is its [c_id]/[h_id] ordinal. *)
let counters : counter list ref = ref []
let gauges : gauge list ref = ref []
let histograms : histogram list ref = ref []
let by_name : (string, kind) Hashtbl.t = Hashtbl.create 64
let ncounters = ref 0
let nhistograms = ref 0

let fresh_hcell () =
  { hc_buckets = Array.make nbuckets 0; hc_count = 0; hc_sum = 0; hc_min = max_int; hc_max = min_int }

let new_stripe () =
  { st_counters = Array.make (max 16 !ncounters) 0; st_hists = Array.make (max 4 !nhistograms) None }

(* Stripes of live domains plus one accumulator for dead ones; guarded
   by [lock]. *)
let live_stripes : stripe list ref = ref []
let retired = { st_counters = Array.make 16 0; st_hists = Array.make 4 None }

let merge_hcell dst src =
  for k = 0 to nbuckets - 1 do
    dst.hc_buckets.(k) <- dst.hc_buckets.(k) + src.hc_buckets.(k)
  done;
  dst.hc_count <- dst.hc_count + src.hc_count;
  dst.hc_sum <- dst.hc_sum + src.hc_sum;
  if src.hc_min < dst.hc_min then dst.hc_min <- src.hc_min;
  if src.hc_max > dst.hc_max then dst.hc_max <- src.hc_max

(* Fold [src] into [dst]; caller holds [lock]. *)
let fold_into dst src =
  let nc = Array.length src.st_counters in
  if Array.length dst.st_counters < nc then begin
    let a = Array.make nc 0 in
    Array.blit dst.st_counters 0 a 0 (Array.length dst.st_counters);
    dst.st_counters <- a
  end;
  for i = 0 to nc - 1 do
    dst.st_counters.(i) <- dst.st_counters.(i) + src.st_counters.(i)
  done;
  let nh = Array.length src.st_hists in
  if Array.length dst.st_hists < nh then begin
    let a = Array.make nh None in
    Array.blit dst.st_hists 0 a 0 (Array.length dst.st_hists);
    dst.st_hists <- a
  end;
  for i = 0 to nh - 1 do
    match src.st_hists.(i) with
    | None -> ()
    | Some sc -> (
        match dst.st_hists.(i) with
        | Some dc -> merge_hcell dc sc
        | None ->
            let dc = fresh_hcell () in
            merge_hcell dc sc;
            dst.st_hists.(i) <- Some dc)
  done

(* The DLS initializer runs on first metric touched by a domain: it
   registers the fresh stripe and schedules its retirement.  The
   at_exit closure captures the stripe directly (DLS state may already
   be torn down when it runs).  Increments recorded by at_exit hooks
   registered *before* a domain's first metric touch run after
   retirement and are dropped — don't record metrics from such hooks. *)
let stripe_key =
  Domain.DLS.new_key (fun () ->
      let s = new_stripe () in
      Mutex.protect lock (fun () -> live_stripes := s :: !live_stripes);
      Domain.at_exit (fun () ->
          Mutex.protect lock (fun () ->
              live_stripes := List.filter (fun s' -> s' != s) !live_stripes;
              fold_into retired s));
      s)

let stripe () = Domain.DLS.get stripe_key

let collecting_flag = Atomic.make false

let collecting () = Atomic.get collecting_flag
let set_collecting b = Atomic.set collecting_flag b

let wrong_kind name =
  invalid_arg (Printf.sprintf "Metrics: %S is already registered with a different kind" name)

let counter name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt by_name name with
      | Some (Kc c) -> c
      | Some _ -> wrong_kind name
      | None ->
          let c = { c_id = !ncounters; c_name = name } in
          Hashtbl.replace by_name name (Kc c);
          counters := c :: !counters;
          incr ncounters;
          c)

let gauge name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt by_name name with
      | Some (Kg g) -> g
      | Some _ -> wrong_kind name
      | None ->
          let g = { g_name = name; g_cell = Atomic.make 0.0 } in
          Hashtbl.replace by_name name (Kg g);
          gauges := g :: !gauges;
          g)

let histogram name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt by_name name with
      | Some (Kh h) -> h
      | Some _ -> wrong_kind name
      | None ->
          let h = { h_id = !nhistograms; h_name = name } in
          Hashtbl.replace by_name name (Kh h);
          histograms := h :: !histograms;
          incr nhistograms;
          h)

(* --- mutators: touch only the calling domain's stripe --- *)

let grow_counters s id =
  let n = Array.length s.st_counters in
  let a = Array.make (max (2 * n) (id + 1)) 0 in
  Array.blit s.st_counters 0 a 0 n;
  s.st_counters <- a;
  a

let add c n =
  if Atomic.get collecting_flag then begin
    let s = stripe () in
    let arr = s.st_counters in
    let arr = if c.c_id < Array.length arr then arr else grow_counters s c.c_id in
    Array.unsafe_set arr c.c_id (Array.unsafe_get arr c.c_id + n)
  end

let tick c = add c 1

let counter_name c = c.c_name

let set_gauge g v = if Atomic.get collecting_flag then Atomic.set g.g_cell v

let gauge_value g = Atomic.get g.g_cell

let bucket_index v =
  if v <= 0 then 0
  else begin
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (nbuckets - 1) (bits 0 v)
  end

let bucket_bounds k =
  if k <= 0 then (min_int, 0)
  else if k >= nbuckets - 1 then (1 lsl (nbuckets - 2), max_int)
  else (1 lsl (k - 1), (1 lsl k) - 1)

let grow_hists s id =
  let n = Array.length s.st_hists in
  let a = Array.make (max (2 * n) (id + 1)) None in
  Array.blit s.st_hists 0 a 0 n;
  s.st_hists <- a;
  a

let hcell_for s h =
  let arr = s.st_hists in
  let arr = if h.h_id < Array.length arr then arr else grow_hists s h.h_id in
  match Array.unsafe_get arr h.h_id with
  | Some c -> c
  | None ->
      let c = fresh_hcell () in
      arr.(h.h_id) <- Some c;
      c

let observe h v =
  if Atomic.get collecting_flag then begin
    let cell = hcell_for (stripe ()) h in
    let k = bucket_index v in
    cell.hc_buckets.(k) <- cell.hc_buckets.(k) + 1;
    cell.hc_count <- cell.hc_count + 1;
    cell.hc_sum <- cell.hc_sum + v;
    if v < cell.hc_min then cell.hc_min <- v;
    if v > cell.hc_max then cell.hc_max <- v
  end

(* --- aggregated reads --- *)

let stripe_counter s id = if id < Array.length s.st_counters then s.st_counters.(id) else 0

let value c =
  Mutex.protect lock (fun () ->
      List.fold_left (fun acc s -> acc + stripe_counter s c.c_id) (stripe_counter retired c.c_id)
        !live_stripes)

let merged_hcell h =
  let m = fresh_hcell () in
  let take s =
    if h.h_id < Array.length s.st_hists then
      match s.st_hists.(h.h_id) with Some c -> merge_hcell m c | None -> ()
  in
  Mutex.protect lock (fun () ->
      take retired;
      List.iter take !live_stripes);
  m

let histogram_count h = (merged_hcell h).hc_count
let histogram_sum h = (merged_hcell h).hc_sum
let histogram_bucket h k = (merged_hcell h).hc_buckets.(k)

(* Percentile estimate by linear interpolation inside the owning log
   bucket, with the bucket range clamped to the observed min/max so
   small samples don't report a power-of-two artifact.  [p] is in
   [0, 100]; nan on an empty histogram. *)
let percentile h p =
  let m = merged_hcell h in
  if m.hc_count = 0 then nan
  else begin
    let target =
      let r = int_of_float (Float.round (p /. 100.0 *. float_of_int m.hc_count)) in
      max 1 (min m.hc_count r)
    in
    let rec find k cum =
      if k >= nbuckets then float_of_int m.hc_max
      else begin
        let n = m.hc_buckets.(k) in
        if cum + n >= target then begin
          let lo, hi = bucket_bounds k in
          let lo = float_of_int (max lo (min m.hc_min m.hc_max)) in
          let hi = float_of_int (min hi m.hc_max) in
          let lo = min lo hi in
          let frac = float_of_int (target - cum) /. float_of_int n in
          lo +. (frac *. (hi -. lo))
        end
        else find (k + 1) (cum + n)
      end
    in
    find 0 0
  end

(* Quiescent-only: concurrent increments may survive a reset.  Tests and
   benches call this between runs, with no writer domains live. *)
let reset_all () =
  Mutex.protect lock (fun () ->
      let wipe s =
        Array.fill s.st_counters 0 (Array.length s.st_counters) 0;
        Array.iter
          (function
            | None -> ()
            | Some c ->
                Array.fill c.hc_buckets 0 nbuckets 0;
                c.hc_count <- 0;
                c.hc_sum <- 0;
                c.hc_min <- max_int;
                c.hc_max <- min_int)
          s.st_hists
      in
      wipe retired;
      List.iter wipe !live_stripes;
      List.iter (fun g -> Atomic.set g.g_cell 0.0) !gauges)

(* --- dense counter snapshots (the span-delta fast path) --- *)

(* A counter's slot is its registration ordinal, so a snapshot taken
   when k counters existed aligns with the first k slots of a later
   one. *)
let counter_values_locked () =
  let n = !ncounters in
  let arr = Array.make n 0 in
  let accum s =
    let stop = min n (Array.length s.st_counters) in
    for i = 0 to stop - 1 do
      arr.(i) <- arr.(i) + s.st_counters.(i)
    done
  in
  accum retired;
  List.iter accum !live_stripes;
  arr

let counter_values () = Mutex.protect lock counter_values_locked

let counter_deltas ~since =
  Mutex.protect lock (fun () ->
      let now = counter_values_locked () in
      let old = Array.length since in
      let names = Array.make !ncounters "" in
      List.iter (fun c -> names.(c.c_id) <- c.c_name) !counters;
      List.init !ncounters (fun i ->
          let base = if i < old then since.(i) else 0 in
          (names.(i), now.(i) - base)))

let snapshot_counters () =
  Mutex.protect lock (fun () ->
      let now = counter_values_locked () in
      List.rev_map (fun c -> (c.c_name, now.(c.c_id))) !counters)

(* --- export --- *)

let histogram_json_of_cell m =
  let buckets =
    List.filter_map
      (fun k ->
        if m.hc_buckets.(k) = 0 then None
        else begin
          let lo, hi = bucket_bounds k in
          Some (Json.Obj [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int m.hc_buckets.(k)) ])
        end)
      (List.init nbuckets Fun.id)
  in
  Json.Obj
    ([ ("count", Json.Int m.hc_count); ("sum", Json.Int m.hc_sum) ]
    @ (if m.hc_count = 0 then []
       else [ ("min", Json.Int m.hc_min); ("max", Json.Int m.hc_max) ])
    @ [ ("buckets", Json.List buckets) ])

let to_json () =
  let counter_rows = snapshot_counters () in
  let hists = List.rev_map (fun h -> (h.h_name, histogram_json_of_cell (merged_hcell h))) !histograms in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) counter_rows));
      ("gauges", Json.Obj (List.rev_map (fun g -> (g.g_name, Json.Float (Atomic.get g.g_cell))) !gauges));
      ("histograms", Json.Obj hists);
    ]

let pp ppf () =
  List.iter (fun (n, v) -> Format.fprintf ppf "%s %d@." n v) (snapshot_counters ());
  List.iter
    (fun g -> Format.fprintf ppf "%s %g@." g.g_name (Atomic.get g.g_cell))
    (List.rev !gauges);
  List.iter
    (fun h ->
      let m = merged_hcell h in
      if m.hc_count = 0 then Format.fprintf ppf "%s (empty)@." h.h_name
      else
        Format.fprintf ppf "%s count=%d sum=%d min=%d max=%d@." h.h_name m.hc_count m.hc_sum
          m.hc_min m.hc_max)
    (List.rev !histograms)
