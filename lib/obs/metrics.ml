(* A process-wide registry of named counters, gauges and log-bucketed
   histograms.

   Design constraints, in order:

   1. Zero perturbation: recording a metric must never touch the pager
      or buffer pool, so instrumented code observes exactly the I/O it
      would without instrumentation (the bench harness's numbers are the
      paper's figures — they must not move).
   2. Near-zero cost when off: every mutator is gated on one global
      flag, so an uninstrumented run pays a load and a branch per call
      site and nothing else.  [collecting] is flipped on by
      {!Trace.install} or explicitly by a surface that wants metrics
      without tracing.
   3. Stable identity: metrics are registered once by name (find-or-
      create), so hot call sites hold the record directly and pay no
      lookup.  Registration order is the export order, which gives
      {!Trace} a cheap dense snapshot for span-boundary deltas.

   The registry is intentionally not domain-safe: all instrumented
   layers (pager, buffer pool, extsort) run on a single domain — the
   parallel helpers fork only pure in-memory computations. *)

type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : float }

(* Bucket 0 holds values <= 0; bucket k >= 1 holds [2^(k-1), 2^k - 1].
   63 buckets cover the whole non-negative int range on 64-bit. *)
let nbuckets = 63

type histogram = {
  h_name : string;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type kind = Kc of counter | Kg of gauge | Kh of histogram

(* Registration order matters (dense counter snapshots index it), so the
   registry keeps reversed lists plus a by-name table for find-or-create. *)
let counters : counter list ref = ref []
let gauges : gauge list ref = ref []
let histograms : histogram list ref = ref []
let by_name : (string, kind) Hashtbl.t = Hashtbl.create 64
let ncounters = ref 0

let collecting_flag = ref false

let collecting () = !collecting_flag
let set_collecting b = collecting_flag := b

let wrong_kind name =
  invalid_arg (Printf.sprintf "Metrics: %S is already registered with a different kind" name)

let counter name =
  match Hashtbl.find_opt by_name name with
  | Some (Kc c) -> c
  | Some _ -> wrong_kind name
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace by_name name (Kc c);
      counters := c :: !counters;
      incr ncounters;
      c

let gauge name =
  match Hashtbl.find_opt by_name name with
  | Some (Kg g) -> g
  | Some _ -> wrong_kind name
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      Hashtbl.replace by_name name (Kg g);
      gauges := g :: !gauges;
      g

let histogram name =
  match Hashtbl.find_opt by_name name with
  | Some (Kh h) -> h
  | Some _ -> wrong_kind name
  | None ->
      let h =
        {
          h_name = name;
          h_buckets = Array.make nbuckets 0;
          h_count = 0;
          h_sum = 0;
          h_min = max_int;
          h_max = min_int;
        }
      in
      Hashtbl.replace by_name name (Kh h);
      histograms := h :: !histograms;
      h

let add c n = if !collecting_flag then c.c_value <- c.c_value + n

let tick c = add c 1

let value c = c.c_value

let counter_name c = c.c_name

let set_gauge g v = if !collecting_flag then g.g_value <- v

let gauge_value g = g.g_value

let bucket_index v =
  if v <= 0 then 0
  else begin
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (nbuckets - 1) (bits 0 v)
  end

let bucket_bounds k =
  if k <= 0 then (min_int, 0)
  else if k >= nbuckets - 1 then (1 lsl (nbuckets - 2), max_int)
  else (1 lsl (k - 1), (1 lsl k) - 1)

let observe h v =
  if !collecting_flag then begin
    h.h_buckets.(bucket_index v) <- h.h_buckets.(bucket_index v) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum
let histogram_bucket h k = h.h_buckets.(k)

let reset_all () =
  List.iter (fun c -> c.c_value <- 0) !counters;
  List.iter (fun g -> g.g_value <- 0.0) !gauges;
  List.iter
    (fun h ->
      Array.fill h.h_buckets 0 nbuckets 0;
      h.h_count <- 0;
      h.h_sum <- 0;
      h.h_min <- max_int;
      h.h_max <- min_int)
    !histograms

(* --- dense counter snapshots (the span-delta fast path) --- *)

(* Counters are stored newest-first; index from the tail so a counter's
   slot is stable as the registry grows.  A snapshot taken when k
   counters existed aligns with the *oldest* k slots of a later one. *)
let counter_values () =
  let n = !ncounters in
  let arr = Array.make n 0 in
  List.iteri (fun i c -> arr.(n - 1 - i) <- c.c_value) !counters;
  arr

let counter_deltas ~since =
  let n = !ncounters in
  let old = Array.length since in
  let deltas = Array.make n ("", 0) in
  List.iteri
    (fun i c ->
      let slot = n - 1 - i in
      let base = if slot < old then since.(slot) else 0 in
      deltas.(slot) <- (c.c_name, c.c_value - base))
    !counters;
  Array.to_list deltas

let snapshot_counters () =
  List.rev_map (fun c -> (c.c_name, c.c_value)) !counters

(* --- export --- *)

let histogram_json h =
  let buckets =
    List.filter_map
      (fun k ->
        if h.h_buckets.(k) = 0 then None
        else begin
          let lo, hi = bucket_bounds k in
          Some (Json.Obj [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int h.h_buckets.(k)) ])
        end)
      (List.init nbuckets Fun.id)
  in
  Json.Obj
    ([ ("count", Json.Int h.h_count); ("sum", Json.Int h.h_sum) ]
    @ (if h.h_count = 0 then []
       else [ ("min", Json.Int h.h_min); ("max", Json.Int h.h_max) ])
    @ [ ("buckets", Json.List buckets) ])

let to_json () =
  Json.Obj
    [
      ("counters", Json.Obj (List.rev_map (fun c -> (c.c_name, Json.Int c.c_value)) !counters));
      ("gauges", Json.Obj (List.rev_map (fun g -> (g.g_name, Json.Float g.g_value)) !gauges));
      ("histograms", Json.Obj (List.rev_map (fun h -> (h.h_name, histogram_json h)) !histograms));
    ]

let pp ppf () =
  List.iter (fun c -> Format.fprintf ppf "%s %d@." c.c_name c.c_value) (List.rev !counters);
  List.iter (fun g -> Format.fprintf ppf "%s %g@." g.g_name g.g_value) (List.rev !gauges);
  List.iter
    (fun h ->
      if h.h_count = 0 then Format.fprintf ppf "%s (empty)@." h.h_name
      else
        Format.fprintf ppf "%s count=%d sum=%d min=%d max=%d@." h.h_name h.h_count h.h_sum
          h.h_min h.h_max)
    (List.rev !histograms)
