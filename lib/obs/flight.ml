(* Always-on flight recorder: a fixed-size per-domain ring of recent
   events, kept cheap enough to leave enabled in production.

   Unlike {!Trace} — an opt-in firehose into one single-domain sink —
   the recorder is on by default and every domain writes only its own
   ring (reached through [Domain.DLS]), so recording is lock-free and
   allocation per event is one small record.  When something fails
   ([failure]: a [Corrupt_page], a kill-point crash, an fsck salvage)
   the rings hold the last few thousand events of every domain — spans,
   retries, breaker trips, quarantine adds, commit publishes — and can
   be dumped as a Chrome-trace JSON postmortem.

   Ring lifecycle: a domain's ring is created on its first event and
   parked in a dead-ring queue when the domain exits.  The most recent
   [retain_dead] dead rings keep their events — a postmortem usually
   needs exactly the history of workers that just finished — and a new
   domain only recycles the oldest dead ring once the queue exceeds
   that bound, so memory stays bounded across the many short-lived
   domains a Qexec workload spawns without erasing fresh history.

   Dump-on-failure is off unless a dump path is configured (the
   [PRT_FLIGHTREC] environment variable, or [set_dump_path]); a
   corruption-sweep test raising thousands of [Corrupt_page]s pays only
   the ring writes. *)

type kind = Begin | End | Point | Fail

type event = {
  fe_kind : kind;
  fe_name : string;
  fe_ts : float; (* microseconds since process start *)
  fe_arg : int; (* integer payload (page id, attempt, generation); min_int = none *)
  fe_note : string; (* short free-form detail; "" = none *)
}

let no_arg = min_int

type ring = {
  mutable r_dom : int;
  r_ev : event array;
  r_cap : int;
  mutable r_pos : int; (* next write index *)
  mutable r_len : int; (* valid events *)
  mutable r_total : int; (* events ever written to this ring *)
}

let dummy = { fe_kind = Point; fe_name = ""; fe_ts = 0.0; fe_arg = no_arg; fe_note = "" }

(* One wall-clock epoch for the whole process, shared with {!Trace} so
   recorder events and trace spans land on the same time axis. *)
let epoch = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let lock = Mutex.create ()
let default_capacity = ref 2048
let rings : ring list ref = ref [] (* every ring: live domains + dead *)
let dead : ring Queue.t = Queue.create () (* exited domains' rings, oldest first *)

(* Dead rings kept intact before the oldest gets recycled. *)
let retain_dead = 8

let set_capacity n =
  if n < 8 then invalid_arg "Flight.set_capacity: capacity must be >= 8";
  Mutex.protect lock (fun () -> default_capacity := n)

(* Autodump target: [failure] writes a postmortem here when set. *)
let dump_to : string option ref = ref (Sys.getenv_opt "PRT_FLIGHTREC")
let set_dump_path p = Mutex.protect lock (fun () -> dump_to := p)
let dump_path () = !dump_to

let ring_key =
  Domain.DLS.new_key (fun () ->
      let dom = (Domain.self () :> int) in
      let r =
        Mutex.protect lock (fun () ->
            if Queue.length dead > retain_dead then begin
              (* Recycle the oldest dead ring, forgetting its events;
                 the [retain_dead] newest keep their history dumpable. *)
              let r = Queue.pop dead in
              r.r_dom <- dom;
              r.r_pos <- 0;
              r.r_len <- 0;
              r.r_total <- 0;
              r
            end
            else begin
              let cap = !default_capacity in
              let r =
                { r_dom = dom; r_ev = Array.make cap dummy; r_cap = cap; r_pos = 0; r_len = 0; r_total = 0 }
              in
              rings := r :: !rings;
              r
            end)
      in
      Domain.at_exit (fun () -> Mutex.protect lock (fun () -> Queue.push r dead));
      r)

let push kind name arg note =
  let r = Domain.DLS.get ring_key in
  r.r_ev.(r.r_pos) <- { fe_kind = kind; fe_name = name; fe_ts = now_us (); fe_arg = arg; fe_note = note };
  r.r_pos <- (r.r_pos + 1) mod r.r_cap;
  if r.r_len < r.r_cap then r.r_len <- r.r_len + 1;
  r.r_total <- r.r_total + 1

let begin_span ?(arg = no_arg) name = if Atomic.get enabled_flag then push Begin name arg ""
let end_span ?(arg = no_arg) name = if Atomic.get enabled_flag then push End name arg ""

let point ?(arg = no_arg) ?(note = "") name =
  if Atomic.get enabled_flag then push Point name arg note

(* --- reading the rings --- *)

(* Snapshot of every ring, oldest event first.  Reading another
   domain's ring while it writes is racy by design (this is a
   postmortem tool); a torn read can only misreport the ~1 newest event
   of a still-running domain, never corrupt memory. *)
let events () =
  let snap r =
    let start = (r.r_pos - r.r_len + r.r_cap * 2) mod r.r_cap in
    (r.r_dom, List.init r.r_len (fun i -> r.r_ev.((start + i) mod r.r_cap)))
  in
  Mutex.protect lock (fun () ->
      List.rev_map snap (List.filter (fun r -> r.r_len > 0) !rings))

let total_recorded () =
  Mutex.protect lock (fun () -> List.fold_left (fun acc r -> acc + r.r_total) 0 !rings)

let dropped () =
  Mutex.protect lock (fun () -> List.fold_left (fun acc r -> acc + (r.r_total - r.r_len)) 0 !rings)

let clear () =
  Mutex.protect lock (fun () ->
      List.iter
        (fun r ->
          r.r_pos <- 0;
          r.r_len <- 0;
          r.r_total <- 0)
        !rings)

(* --- Chrome trace-event export --- *)

(* Begin/End pairs within one ring become "X" complete events (a
   duration bar on the domain's track); unmatched halves — the partner
   fell off the ring, or the span never finished before a crash — and
   Point/Fail events become instants.  "X" events carry no stack
   discipline, so a multi-domain dump stays a valid trace no matter how
   the rings interleave. *)
let base_args arg note =
  (if arg = no_arg then [] else [ ("arg", Json.Int arg) ])
  @ if note = "" then [] else [ ("note", Json.Str note) ]

let instant_json ?(cat = "flight") ?(extra = []) dom e =
  Json.Obj
    ([
       ("name", Json.Str e.fe_name);
       ("cat", Json.Str cat);
       ("ph", Json.Str "i");
       ("ts", Json.Float e.fe_ts);
       ("pid", Json.Int 1);
       ("tid", Json.Int dom);
       ("s", Json.Str "t");
     ]
    @
    match base_args e.fe_arg e.fe_note @ extra with
    | [] -> []
    | args -> [ ("args", Json.Obj args) ])

let complete_json dom name ts dur arg =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("cat", Json.Str "flight");
       ("ph", Json.Str "X");
       ("ts", Json.Float ts);
       ("dur", Json.Float dur);
       ("pid", Json.Int 1);
       ("tid", Json.Int dom);
     ]
    @ match base_args arg "" with [] -> [] | args -> [ ("args", Json.Obj args) ])

(* (ts, json) pairs for one ring's events, pairing spans with a stack. *)
let ring_chrome dom evs =
  let out = ref [] in
  let stack = ref [] in
  List.iter
    (fun e ->
      match e.fe_kind with
      | Begin -> stack := e :: !stack
      | End -> (
          match !stack with
          | b :: rest when b.fe_name = e.fe_name ->
              stack := rest;
              out := (b.fe_ts, complete_json dom b.fe_name b.fe_ts (e.fe_ts -. b.fe_ts) b.fe_arg) :: !out
          | _ -> out := (e.fe_ts, instant_json ~extra:[ ("unmatched", Json.Str "end") ] dom e) :: !out)
      | Point -> out := (e.fe_ts, instant_json dom e) :: !out
      | Fail -> out := (e.fe_ts, instant_json ~cat:"failure" dom e) :: !out)
    evs;
  (* Spans still open (crash, or End fell off the ring): keep them
     visible as instants at their begin time. *)
  List.iter
    (fun b -> out := (b.fe_ts, instant_json ~extra:[ ("unmatched", Json.Str "begin") ] dom b) :: !out)
    !stack;
  !out

let chrome_events () =
  let per_ring = List.concat_map (fun (dom, evs) -> ring_chrome dom evs) (events ()) in
  List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) per_ring

let chrome_json () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map snd (chrome_events ())));
      ("displayTimeUnit", Json.Str "ms");
    ]

let dump path =
  let evs = chrome_events () in
  Json.to_file path (Json.Obj [ ("traceEvents", Json.List (List.map snd evs)); ("displayTimeUnit", Json.Str "ms") ]);
  List.length evs

(* A failure is recorded like any event, then triggers the autodump if
   a path is configured.  Dump errors are swallowed: the recorder must
   never turn a failing operation into a different failure. *)
let failure ?(arg = no_arg) ?(note = "") name =
  if Atomic.get enabled_flag then begin
    push Fail name arg note;
    match !dump_to with
    | None -> ()
    | Some path -> ( try ignore (dump path : int) with _ -> ())
  end
