(** Process-wide registry of named counters, gauges and log-bucketed
    histograms — the quantitative half of the observability layer
    (spans and sinks are {!Trace}, the postmortem ring is {!Flight}).

    Every mutator ({!add}, {!tick}, {!set_gauge}, {!observe}) is a no-op
    while collection is off, so instrumented hot paths pay one atomic
    flag check; and metrics never touch the pager, so the repository's
    I/O accounting is bit-identical with or without collection (the
    [zero-overhead-off] property test pins this down).

    Metrics are registered find-or-create by name; hot call sites hold
    the returned handle and pay no lookup.

    {b Domain safety.}  Each domain records into a private stripe
    reached through [Domain.DLS]; no shared mutable cell is ever
    written by two domains, so concurrent increments cannot be lost.
    Aggregating reads ({!value}, {!counter_values}, {!to_json}, ...)
    sum the stripes under the registry mutex: while writer domains are
    running the sum is a racy-but-untorn snapshot; once they have
    terminated (their stripes are folded into a retired accumulator on
    domain exit) it equals the exact sequential total.  Gauges are
    last-write-wins atomics. *)

type counter
type gauge
type histogram

val collecting : unit -> bool

val set_collecting : bool -> unit
(** Master switch. {!Trace.install} flips it on alongside tracing;
    surfaces that want metrics without spans set it directly. *)

val counter : string -> counter
(** Find-or-create. Raises [Invalid_argument] if the name is already
    registered as a different kind. *)

val gauge : string -> gauge
val histogram : string -> histogram

val add : counter -> int -> unit
(** Add to the calling domain's stripe of the counter. *)

val tick : counter -> unit

val value : counter -> int
(** Aggregated value across all domain stripes (see domain-safety note
    above for its consistency). *)

val counter_name : counter -> string

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> int -> unit
(** Record a sample into its logarithmic bucket (calling domain's
    stripe). *)

val bucket_index : int -> int
(** Bucket that holds a value: 0 for [v <= 0], else the bit length of
    [v] — bucket [k >= 1] spans [[2^(k-1), 2^k - 1]]. *)

val bucket_bounds : int -> int * int
(** Inclusive value range of a bucket index. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> int
val histogram_bucket : histogram -> int -> int

val percentile : histogram -> float -> float
(** [percentile h p] estimates the [p]-th percentile ([0. <= p <= 100.])
    of the merged histogram by linear interpolation inside the owning
    log bucket, clamped to the observed min/max.  [nan] when empty. *)

val reset_all : unit -> unit
(** Zero every registered metric (registrations are kept).  Quiescent
    use only: increments racing with a reset may survive it. *)

val counter_values : unit -> int array
(** Dense aggregated snapshot of all counters in registration order —
    the span-boundary fast path. *)

val counter_deltas : since:int array -> (string * int) list
(** Per-counter change since a {!counter_values} snapshot, in
    registration order; counters registered after the snapshot count
    from zero. *)

val snapshot_counters : unit -> (string * int) list
(** Named aggregated counter values in registration order. *)

val to_json : unit -> Json.t
(** The whole registry: [{"counters": .., "gauges": .., "histograms": ..}];
    histogram buckets are exported sparsely with their value bounds. *)

val pp : Format.formatter -> unit -> unit
