(** Process-wide registry of named counters, gauges and log-bucketed
    histograms — the quantitative half of the observability layer
    (spans and sinks are {!Trace}).

    Every mutator ({!add}, {!tick}, {!set_gauge}, {!observe}) is a no-op
    while collection is off, so instrumented hot paths pay one flag
    check; and metrics never touch the pager, so the repository's I/O
    accounting is bit-identical with or without collection (the
    [zero-overhead-off] property test pins this down).

    Metrics are registered find-or-create by name; hot call sites hold
    the returned handle and pay no lookup.  The registry is not
    domain-safe — all instrumented layers run on a single domain. *)

type counter
type gauge
type histogram

val collecting : unit -> bool

val set_collecting : bool -> unit
(** Master switch. {!Trace.install} flips it on alongside tracing;
    surfaces that want metrics without spans set it directly. *)

val counter : string -> counter
(** Find-or-create. Raises [Invalid_argument] if the name is already
    registered as a different kind. *)

val gauge : string -> gauge
val histogram : string -> histogram

val add : counter -> int -> unit
val tick : counter -> unit
val value : counter -> int
val counter_name : counter -> string

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> int -> unit
(** Record a sample into its logarithmic bucket. *)

val bucket_index : int -> int
(** Bucket that holds a value: 0 for [v <= 0], else the bit length of
    [v] — bucket [k >= 1] spans [[2^(k-1), 2^k - 1]]. *)

val bucket_bounds : int -> int * int
(** Inclusive value range of a bucket index. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> int
val histogram_bucket : histogram -> int -> int

val reset_all : unit -> unit
(** Zero every registered metric (registrations are kept). *)

val counter_values : unit -> int array
(** Dense snapshot of all counters in registration order — the
    span-boundary fast path. *)

val counter_deltas : since:int array -> (string * int) list
(** Per-counter change since a {!counter_values} snapshot, in
    registration order; counters registered after the snapshot count
    from zero. *)

val snapshot_counters : unit -> (string * int) list
(** Named counter values in registration order. *)

val to_json : unit -> Json.t
(** The whole registry: [{"counters": .., "gauges": .., "histograms": ..}];
    histogram buckets are exported sparsely with their value bounds. *)

val pp : Format.formatter -> unit -> unit
