(** Always-on flight recorder: fixed-size per-domain rings of recent
    events for postmortem debugging.

    Each domain writes only its own ring (no locks, one small
    allocation per event), so the recorder is cheap enough to leave
    enabled.  Rings of exited domains keep their events — the most
    recent few are exactly what a postmortem needs — and only the
    oldest are recycled once enough domains have exited, bounding
    memory under domain churn.  {!failure} marks a failure event and — when a dump path is
    configured via the [PRT_FLIGHTREC] environment variable or
    {!set_dump_path} — writes all rings as a Chrome-trace JSON file, so
    a [Corrupt_page], kill-point crash or fsck salvage leaves a
    timeline of what every domain was doing.

    Reading the rings while other domains still write is a racy
    snapshot by design: at worst the newest event of a live domain is
    misread, which is acceptable for a postmortem tool. *)

type kind = Begin | End | Point | Fail

type event = {
  fe_kind : kind;
  fe_name : string;
  fe_ts : float;  (** microseconds since process start (see {!now_us}) *)
  fe_arg : int;  (** integer payload; [no_arg] when absent *)
  fe_note : string;  (** free-form detail; [""] when absent *)
}

val no_arg : int

val enabled : unit -> bool
val set_enabled : bool -> unit
(** The recorder is {b on} by default. *)

val set_capacity : int -> unit
(** Events kept per domain ring (default 2048); applies to rings
    created afterwards.  Raises [Invalid_argument] below 8. *)

val set_dump_path : string option -> unit
(** Where {!failure} writes its automatic postmortem; [None] (the
    default, unless [PRT_FLIGHTREC] is set) disables autodump. *)

val dump_path : unit -> string option

val begin_span : ?arg:int -> string -> unit
val end_span : ?arg:int -> string -> unit
(** Record span boundaries on the calling domain's ring.  Pairs are
    matched per ring at export time; an unmatched half degrades to an
    instant, never an invalid trace. *)

val point : ?arg:int -> ?note:string -> string -> unit
(** Record an instantaneous event. *)

val failure : ?arg:int -> ?note:string -> string -> unit
(** Record a failure event, then dump all rings to the configured dump
    path (if any).  Dump errors are swallowed — recording a failure
    never raises. *)

val events : unit -> (int * event list) list
(** Per-domain snapshot of the rings, oldest event first; rings that
    recorded nothing are omitted. *)

val total_recorded : unit -> int
(** Events ever recorded across current rings (recycled rings reset). *)

val dropped : unit -> int
(** Events lost to ring overflow across current rings. *)

val clear : unit -> unit
(** Empty every ring (for test isolation). *)

val chrome_events : unit -> (float * Json.t) list
(** All rings as Chrome trace events sorted by timestamp: balanced
    Begin/End pairs become ["X"] complete events on the domain's track,
    everything else instants. *)

val chrome_json : unit -> Json.t

val dump : string -> int
(** Write {!chrome_json} to a file; returns the event count. *)

val now_us : unit -> float
(** Microseconds since the process-wide trace epoch — the time axis
    shared with {!Trace}. *)
