(* Two-dimensional axis-parallel rectangles (closed).  This is the
   minimal-bounding-box algebra every index in the repository is built
   on.  Rectangles are immutable; degenerate rectangles (points and
   segments) are valid input, exactly as in the paper's experiments. *)

type t = { xmin : float; ymin : float; xmax : float; ymax : float }

let make ~xmin ~ymin ~xmax ~ymax =
  if not (xmin <= xmax && ymin <= ymax) then
    invalid_arg
      (Printf.sprintf "Rect.make: inverted rectangle (%g,%g)-(%g,%g)" xmin ymin xmax ymax);
  { xmin; ymin; xmax; ymax }

let of_corners (x0, y0) (x1, y1) =
  { xmin = Float.min x0 x1; ymin = Float.min y0 y1; xmax = Float.max x0 x1; ymax = Float.max y0 y1 }

let point x y = { xmin = x; ymin = y; xmax = x; ymax = y }

let xmin r = r.xmin
let ymin r = r.ymin
let xmax r = r.xmax
let ymax r = r.ymax

let width r = r.xmax -. r.xmin
let height r = r.ymax -. r.ymin
let area r = width r *. height r
let margin r = width r +. height r
let center r = ((r.xmin +. r.xmax) /. 2.0, (r.ymin +. r.ymax) /. 2.0)

let equal a b =
  Float.equal a.xmin b.xmin && Float.equal a.ymin b.ymin && Float.equal a.xmax b.xmax
  && Float.equal a.ymax b.ymax

let compare = Stdlib.compare

let intersects a b =
  a.xmin <= b.xmax && b.xmin <= a.xmax && a.ymin <= b.ymax && b.ymin <= a.ymax

let contains outer inner =
  outer.xmin <= inner.xmin && outer.ymin <= inner.ymin && inner.xmax <= outer.xmax
  && inner.ymax <= outer.ymax

let contains_point r x y = r.xmin <= x && x <= r.xmax && r.ymin <= y && y <= r.ymax

let union a b =
  {
    xmin = Float.min a.xmin b.xmin;
    ymin = Float.min a.ymin b.ymin;
    xmax = Float.max a.xmax b.xmax;
    ymax = Float.max a.ymax b.ymax;
  }

let intersection a b =
  if intersects a b then
    Some
      {
        xmin = Float.max a.xmin b.xmin;
        ymin = Float.max a.ymin b.ymin;
        xmax = Float.min a.xmax b.xmax;
        ymax = Float.min a.ymax b.ymax;
      }
  else None

let overlap_area a b =
  match intersection a b with Some r -> area r | None -> 0.0

let enlargement r extra = area (union r extra) -. area r

let union_array ?(lo = 0) ?hi rects =
  let hi = match hi with Some h -> h | None -> Array.length rects in
  if hi <= lo then invalid_arg "Rect.union_array: empty range";
  let acc = ref rects.(lo) in
  for i = lo + 1 to hi - 1 do
    acc := union !acc rects.(i)
  done;
  !acc

let union_map ?(lo = 0) ?hi ~f items =
  let hi = match hi with Some h -> h | None -> Array.length items in
  if hi <= lo then invalid_arg "Rect.union_map: empty range";
  let acc = ref (f items.(lo)) in
  for i = lo + 1 to hi - 1 do
    acc := union !acc (f items.(i))
  done;
  !acc

(* The four "kd dimensions" of the PR-tree view a rectangle as the
   4-D point (xmin, ymin, xmax, ymax). *)
let coord dim r =
  match dim with
  | 0 -> r.xmin
  | 1 -> r.ymin
  | 2 -> r.xmax
  | 3 -> r.ymax
  | _ -> invalid_arg "Rect.coord: dimension must be in 0..3"

let pp ppf r = Fmt.pf ppf "[%g,%g]x[%g,%g]" r.xmin r.xmax r.ymin r.ymax
