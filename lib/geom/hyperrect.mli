(** Closed axis-parallel boxes in [d] dimensions, for the
    multi-dimensional PR-tree (Section 2.3 of the paper). *)

type t

val make : lo:float array -> hi:float array -> t
(** [make ~lo ~hi] copies its arguments. Raises [Invalid_argument] on a
    dimension mismatch, zero dimensions, or [lo.(i) > hi.(i)]. *)

val point : float array -> t
(** Degenerate box covering a single point. *)

val dims : t -> int
val lo : t -> int -> float
val hi : t -> int -> float
val side : t -> int -> float

val of_rect : Rect.t -> t
(** Embed a 2-D rectangle. *)

val to_rect : t -> Rect.t
(** Project a 2-D box back to {!Rect.t}. Raises [Invalid_argument] if the
    box is not 2-dimensional. *)

val volume : t -> float
val margin : t -> float

val equal : t -> t -> bool
val intersects : t -> t -> bool
val contains : t -> t -> bool

val union : t -> t -> t
val union_map : ?lo:int -> ?hi:int -> f:('a -> t) -> 'a array -> t

val coord : int -> t -> float
(** [coord dim b] reads the kd-coordinate of the [2d]-dimensional point a
    box maps to: dimensions [0..d-1] are low sides, [d..2d-1] high
    sides. *)

val pp : Format.formatter -> t -> unit
