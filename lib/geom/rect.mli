(** Closed axis-parallel rectangles in the plane: the minimal-bounding-box
    algebra underlying every index in this repository.

    A rectangle is the set [\[xmin,xmax\] x \[ymin,ymax\]]; degenerate
    rectangles (points, horizontal/vertical segments) are valid. *)

type t = private { xmin : float; ymin : float; xmax : float; ymax : float }

val make : xmin:float -> ymin:float -> xmax:float -> ymax:float -> t
(** Raises [Invalid_argument] if [xmin > xmax] or [ymin > ymax]. *)

val of_corners : float * float -> float * float -> t
(** Bounding box of two arbitrary corner points. *)

val point : float -> float -> t
(** Degenerate rectangle covering a single point. *)

val xmin : t -> float
val ymin : t -> float
val xmax : t -> float
val ymax : t -> float

val width : t -> float
val height : t -> float

val area : t -> float
(** Zero for degenerate rectangles. *)

val margin : t -> float
(** Half-perimeter [width + height] (the R*-tree "margin"). *)

val center : t -> float * float

val equal : t -> t -> bool
val compare : t -> t -> int

val intersects : t -> t -> bool
(** Closed-rectangle intersection: touching boundaries intersect. *)

val contains : t -> t -> bool
(** [contains outer inner]: is [inner] fully inside [outer]? *)

val contains_point : t -> float -> float -> bool

val union : t -> t -> t
(** Smallest rectangle covering both arguments. *)

val intersection : t -> t -> t option
val overlap_area : t -> t -> float

val enlargement : t -> t -> float
(** [enlargement r extra]: area growth of [r] needed to also cover
    [extra] (Guttman's insertion criterion). *)

val union_array : ?lo:int -> ?hi:int -> t array -> t
(** Bounding box of [rects.(lo) .. rects.(hi-1)]; whole array by default.
    Raises [Invalid_argument] on an empty range. *)

val union_map : ?lo:int -> ?hi:int -> f:('a -> t) -> 'a array -> t
(** Bounding box of the rectangles of a slice of arbitrary items. *)

val coord : int -> t -> float
(** [coord dim r] reads the PR-tree kd-coordinate: dimensions
    [0,1,2,3] are [xmin, ymin, xmax, ymax]. Raises [Invalid_argument]
    otherwise. *)

val pp : Format.formatter -> t -> unit
