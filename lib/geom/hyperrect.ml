(* d-dimensional axis-parallel boxes, for the multi-dimensional PR-tree
   of Section 2.3.  Coordinates are stored as two parallel float arrays;
   boxes are immutable by convention (the arrays are never mutated after
   construction and accessors return copies). *)

type t = { lo : float array; hi : float array }

let make ~lo ~hi =
  let d = Array.length lo in
  if d = 0 then invalid_arg "Hyperrect.make: zero dimensions";
  if Array.length hi <> d then invalid_arg "Hyperrect.make: lo/hi dimension mismatch";
  for i = 0 to d - 1 do
    if not (lo.(i) <= hi.(i)) then invalid_arg "Hyperrect.make: inverted box"
  done;
  { lo = Array.copy lo; hi = Array.copy hi }

let point coords =
  if Array.length coords = 0 then invalid_arg "Hyperrect.point: zero dimensions";
  { lo = Array.copy coords; hi = Array.copy coords }

let dims b = Array.length b.lo
let lo b i = b.lo.(i)
let hi b i = b.hi.(i)
let side b i = b.hi.(i) -. b.lo.(i)

let of_rect r =
  { lo = [| Rect.xmin r; Rect.ymin r |]; hi = [| Rect.xmax r; Rect.ymax r |] }

let to_rect b =
  if dims b <> 2 then invalid_arg "Hyperrect.to_rect: not 2-dimensional";
  Rect.make ~xmin:b.lo.(0) ~ymin:b.lo.(1) ~xmax:b.hi.(0) ~ymax:b.hi.(1)

let volume b =
  let v = ref 1.0 in
  for i = 0 to dims b - 1 do
    v := !v *. side b i
  done;
  !v

let margin b =
  let m = ref 0.0 in
  for i = 0 to dims b - 1 do
    m := !m +. side b i
  done;
  !m

let equal a b =
  dims a = dims b
  && (let ok = ref true in
      for i = 0 to dims a - 1 do
        if not (Float.equal a.lo.(i) b.lo.(i) && Float.equal a.hi.(i) b.hi.(i)) then ok := false
      done;
      !ok)

let intersects a b =
  if dims a <> dims b then invalid_arg "Hyperrect.intersects: dimension mismatch";
  let ok = ref true in
  for i = 0 to dims a - 1 do
    if a.lo.(i) > b.hi.(i) || b.lo.(i) > a.hi.(i) then ok := false
  done;
  !ok

let contains outer inner =
  if dims outer <> dims inner then invalid_arg "Hyperrect.contains: dimension mismatch";
  let ok = ref true in
  for i = 0 to dims outer - 1 do
    if outer.lo.(i) > inner.lo.(i) || inner.hi.(i) > outer.hi.(i) then ok := false
  done;
  !ok

let union a b =
  if dims a <> dims b then invalid_arg "Hyperrect.union: dimension mismatch";
  let d = dims a in
  {
    lo = Array.init d (fun i -> Float.min a.lo.(i) b.lo.(i));
    hi = Array.init d (fun i -> Float.max a.hi.(i) b.hi.(i));
  }

let union_map ?(lo = 0) ?hi ~f items =
  let stop = match hi with Some h -> h | None -> Array.length items in
  if stop <= lo then invalid_arg "Hyperrect.union_map: empty range";
  let acc = ref (f items.(lo)) in
  for i = lo + 1 to stop - 1 do
    acc := union !acc (f items.(i))
  done;
  !acc

(* kd-coordinate of the 2d-dimensional point a box maps to: dimensions
   0..d-1 are the low sides, d..2d-1 the high sides. *)
let coord dim b =
  let d = dims b in
  if dim < 0 || dim >= 2 * d then invalid_arg "Hyperrect.coord: dimension out of range";
  if dim < d then b.lo.(dim) else b.hi.(dim - d)

let pp ppf b =
  Fmt.pf ppf "@[<h>{";
  for i = 0 to dims b - 1 do
    if i > 0 then Fmt.pf ppf "; ";
    Fmt.pf ppf "[%g,%g]" b.lo.(i) b.hi.(i)
  done;
  Fmt.pf ppf "}@]"
