(* External-memory record files and sorting — the substrate the paper
   gets from TPIE.

   A record file is a sequence of fixed-size records packed into pager
   pages; every page touched is a counted I/O.  [sort] is the classic
   external multiway mergesort: sorted runs of [mem_records] records,
   then repeated k-way merges where k is chosen so that the k input
   buffers plus the output buffer fit in the same memory budget.  All
   bulk-loading algorithms in the repository express their scans,
   distributions and sorts through this module, which is what makes
   their I/O counts comparable to the paper's. *)

module Pager = Prt_storage.Pager
module Page = Prt_storage.Page
module Pqueue = Prt_util.Pqueue
module Metrics = Prt_obs.Metrics
module Trace = Prt_obs.Trace

(* Phase-level observability for the external sort: one span per run
   formation and per k-way merge, so a trace of a bulk load shows where
   its sort I/Os go.  Counters aggregate across all record types. *)
let m_runs = Metrics.counter "extsort.runs"
let m_merges = Metrics.counter "extsort.merges"
let m_records_sorted = Metrics.counter "extsort.records_sorted"
let h_run_len = Metrics.histogram "extsort.run_records"

(* Record files stream straight through the pager (deliberately: a
   sequential scan must not evict the buffer pool's cache), so they
   absorb transient device faults themselves through the shared
   {!Prt_storage.Retry} engine.  The default policy's 5 attempts
   outlast any failpoint with the default max_consecutive cap; a
   permanent fault still surfaces as [Pager.Io_error].  Retrying is
   safe because every operation here is a full-page read or a
   full-page (re-)write. *)
module Retry = Prt_storage.Retry

let retry_engine = Retry.create ()
let with_retry f = Retry.run retry_engine ~op:"record_file" f

module type RECORD = sig
  type t

  val size : int
  val write : bytes -> int -> t -> unit
  val read : bytes -> int -> t
end

module Make (R : RECORD) = struct
  type t = {
    pager : Pager.t;
    mutable pages : int array;
    mutable npages : int;
    mutable count : int;
    mutable tail : bytes option; (* unwritten partial page while writing *)
    mutable tail_used : int;     (* records buffered in [tail] *)
    mutable sealed : bool;
  }

  let per_page pager =
    let n = Pager.payload_size pager / R.size in
    if n < 1 then invalid_arg "Record_file: record larger than a page";
    n

  let create pager =
    ignore (per_page pager);
    { pager; pages = Array.make 8 (-1); npages = 0; count = 0; tail = None; tail_used = 0;
      sealed = false }

  let length t = t.count

  let pages_used t = t.npages + (match t.tail with Some _ -> 1 | None -> 0)

  let push_page t id =
    if t.npages = Array.length t.pages then begin
      let pages = Array.make (2 * t.npages) (-1) in
      Array.blit t.pages 0 pages 0 t.npages;
      t.pages <- pages
    end;
    t.pages.(t.npages) <- id;
    t.npages <- t.npages + 1

  let append t record =
    if t.sealed then invalid_arg "Record_file.append: file is sealed";
    let buf =
      match t.tail with
      | Some buf -> buf
      | None ->
          let buf = Page.create (Pager.page_size t.pager) in
          t.tail <- Some buf;
          t.tail_used <- 0;
          buf
    in
    R.write buf (t.tail_used * R.size) record;
    t.tail_used <- t.tail_used + 1;
    t.count <- t.count + 1;
    if t.tail_used = per_page t.pager then begin
      let id = with_retry (fun () -> Pager.alloc t.pager) in
      with_retry (fun () -> Pager.write t.pager id buf);
      push_page t id;
      t.tail <- None;
      t.tail_used <- 0
    end

  let seal t =
    if not t.sealed then begin
      (match t.tail with
      | Some buf ->
          let id = with_retry (fun () -> Pager.alloc t.pager) in
          with_retry (fun () -> Pager.write t.pager id buf);
          push_page t id;
          t.tail <- None;
          t.tail_used <- 0
      | None -> ());
      t.sealed <- true
    end

  let of_array pager records =
    let t = create pager in
    Array.iter (append t) records;
    seal t;
    t

  let destroy t =
    seal t;
    for i = 0 to t.npages - 1 do
      Pager.free t.pager t.pages.(i)
    done;
    t.npages <- 0;
    t.count <- 0

  (* Sequential readers: one page buffer each. *)

  type reader = {
    file : t;
    buf : bytes;
    mutable page_idx : int;   (* next page to load *)
    mutable in_page : int;    (* records remaining in current buffer *)
    mutable offset : int;     (* byte offset of next record in buffer *)
    mutable remaining : int;  (* records remaining in the whole file *)
  }

  let reader t =
    if not t.sealed then invalid_arg "Record_file.reader: file not sealed";
    {
      file = t;
      buf = Page.create (Pager.page_size t.pager);
      page_idx = 0;
      in_page = 0;
      offset = 0;
      remaining = t.count;
    }

  let read_next r =
    if r.remaining = 0 then None
    else begin
      if r.in_page = 0 then begin
        with_retry (fun () -> Pager.read_into r.file.pager r.file.pages.(r.page_idx) r.buf);
        r.page_idx <- r.page_idx + 1;
        r.in_page <- min (per_page r.file.pager) r.remaining;
        r.offset <- 0
      end;
      let record = R.read r.buf r.offset in
      r.offset <- r.offset + R.size;
      r.in_page <- r.in_page - 1;
      r.remaining <- r.remaining - 1;
      Some record
    end

  let iter t f =
    let r = reader t in
    let rec loop () =
      match read_next r with
      | Some record ->
          f record;
          loop ()
      | None -> ()
    in
    loop ()

  let read_all t =
    let result = ref [] in
    let r = reader t in
    let rec loop () =
      match read_next r with
      | Some record ->
          result := record :: !result;
          loop ()
      | None -> ()
    in
    loop ();
    let arr = Array.of_list (List.rev !result) in
    arr

  (* External mergesort. *)

  let merge_runs pager cmp runs =
    Trace.with_span "extsort.merge"
      ~args:[ ("fan_in", Trace.Int (List.length runs)) ]
      (fun () ->
        Metrics.tick m_merges;
        let out = create pager in
        let heap = Pqueue.create (fun (a, _) (b, _) -> cmp a b) in
        let readers = Array.of_list (List.map reader runs) in
        Array.iteri
          (fun i r ->
            match read_next r with Some record -> Pqueue.add heap (record, i) | None -> ())
          readers;
        let rec drain () =
          match Pqueue.pop heap with
          | None -> ()
          | Some (record, i) ->
              append out record;
              (match read_next readers.(i) with
              | Some next -> Pqueue.add heap (next, i)
              | None -> ());
              drain ()
        in
        drain ();
        seal out;
        List.iter destroy runs;
        out)

  let sort ~mem_records ~cmp t =
    seal t;
    let pager = t.pager in
    let per = per_page pager in
    if mem_records < 2 * per then
      invalid_arg "Record_file.sort: memory budget below two pages of records";
    (* Phase 1: sorted runs of at most [mem_records] records. *)
    let input = reader t in
    let chunk = ref [] and chunk_len = ref 0 in
    let runs = ref [] in
    let flush_chunk () =
      if !chunk_len > 0 then begin
        Metrics.tick m_runs;
        Metrics.observe h_run_len !chunk_len;
        let arr = Array.of_list !chunk in
        Array.sort cmp arr;
        runs := of_array pager arr :: !runs;
        chunk := [];
        chunk_len := 0
      end
    in
    let rec read_phase () =
      match read_next input with
      | Some record ->
          chunk := record :: !chunk;
          incr chunk_len;
          if !chunk_len = mem_records then flush_chunk ();
          read_phase ()
      | None -> flush_chunk ()
    in
    Trace.with_span "extsort.run_formation"
      ~args:[ ("records", Trace.Int t.count) ]
      (fun () ->
        Metrics.add m_records_sorted t.count;
        read_phase ());
    (* Phase 2: k-way merges with k input buffers + 1 output buffer. *)
    let fan_in = max 2 ((mem_records / per) - 1) in
    let rec merge_phase runs =
      match runs with
      | [] -> of_array pager [||]
      | [ single ] -> single
      | _ ->
          let rec group acc current n = function
            | [] -> List.rev (if current = [] then acc else merge_runs pager cmp current :: acc)
            | r :: rest ->
                if n = fan_in then group (merge_runs pager cmp current :: acc) [ r ] 1 rest
                else group acc (r :: current) (n + 1) rest
          in
          merge_phase (group [] [] 0 runs)
    in
    merge_phase (List.rev !runs)
end
