(** External-memory record files and multiway mergesort.

    The OCaml analogue of the paper's TPIE streams: sequences of
    fixed-size records packed into {!Prt_storage.Pager} pages, so every
    scan, distribution and sort performed by a bulk-loading algorithm is
    charged to the pager's I/O counters. *)

module type RECORD = sig
  type t

  val size : int
  (** Encoded size in bytes; must not exceed the page size. *)

  val write : bytes -> int -> t -> unit
  (** [write buf off r] encodes [r] at byte offset [off]. *)

  val read : bytes -> int -> t
  (** [read buf off] decodes the record at byte offset [off]. *)
end

module Make (R : RECORD) : sig
  type t
  (** A record file. Writable until {!seal}ed, then read-only. *)

  type reader
  (** Sequential cursor holding a single page buffer. *)

  val create : Prt_storage.Pager.t -> t
  (** Fresh empty file. Raises [Invalid_argument] if a record does not
      fit in a page. *)

  val append : t -> R.t -> unit
  (** Append a record (buffered; a page write is issued per full page).
      Raises [Invalid_argument] if the file is sealed. *)

  val seal : t -> unit
  (** Flush the partial tail page and make the file read-only.
      Idempotent. *)

  val of_array : Prt_storage.Pager.t -> R.t array -> t
  (** Write an array out as a sealed file. *)

  val length : t -> int
  (** Number of records. *)

  val pages_used : t -> int

  val reader : t -> reader
  (** Raises [Invalid_argument] if the file is not sealed. *)

  val read_next : reader -> R.t option

  val iter : t -> (R.t -> unit) -> unit
  val read_all : t -> R.t array

  val destroy : t -> unit
  (** Free all pages of the file back to the pager. *)

  val sort : mem_records:int -> cmp:(R.t -> R.t -> int) -> t -> t
  (** [sort ~mem_records ~cmp t] externally sorts [t] (sealing it first)
      into a new sealed file, using at most [mem_records] records of main
      memory: sorted run formation followed by k-way merging, [k] chosen
      from the budget. Intermediate runs are destroyed; the input file is
      left intact. Raises [Invalid_argument] if the budget is smaller
      than two pages of records. *)
end
