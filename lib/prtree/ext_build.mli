(** I/O-efficient PR-tree bulk loading (Section 2.1's efficient
    construction, staged as in Section 2.2).

    Reads the input from an entry record file in the tree's own pager;
    all sorting, filtering and distribution passes go through the pager,
    so the pager counters measure construction I/O the way the paper's
    Figures 9-10 do. The resulting tree is structurally identical in
    kind to {!Prtree.load}'s (and shares its query guarantee); the top
    kd levels of each round are placed with sampled rather than exact
    medians, as documented in DESIGN.md. *)

val load :
  ?mem_records:int -> Prt_storage.Buffer_pool.t -> Prt_rtree.Entry.File.t -> Prt_rtree.Rtree.t
(** [load ~mem_records pool file] bulk-loads a PR-tree using at most
    [mem_records] records of main memory (default 18_000 — the paper's
    64 MB budget scaled 1:100). The input file is left intact. Raises
    [Invalid_argument] if the budget is below 8 nodes' worth of
    records. *)
