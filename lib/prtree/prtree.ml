(* The Priority R-tree (Section 2.2 of the paper) — the repository's
   headline structure.

   The PR-tree is a real R-tree (degree Theta(B), all leaves on one
   level) assembled bottom-up in stages: stage 0 builds a pseudo-PR-tree
   on the N input rectangles and keeps only its leaves, which become the
   R-tree's leaf level; stage i builds a pseudo-PR-tree on the bounding
   boxes of level i-1 and keeps its leaves as level i.  The stages stop
   when one node's worth of boxes remains, which becomes the root.
   Theorem 1: windows queries on the result take O(sqrt(N/B) + T/B)
   I/Os — worst-case optimal. *)

module Rect = Prt_geom.Rect
module Buffer_pool = Prt_storage.Buffer_pool
module Pager = Prt_storage.Pager
module Entry = Prt_rtree.Entry
module Node = Prt_rtree.Node
module Rtree = Prt_rtree.Rtree
module Trace = Prt_obs.Trace

let write_level pool ~kind entry_sets =
  let page_size = Pager.page_size (Buffer_pool.pager pool) in
  List.rev
    (List.rev_map
       (fun entries ->
         let node = Node.make kind entries in
         let id = Buffer_pool.alloc pool in
         Buffer_pool.write pool id (Node.encode ~page_size node);
         Entry.make (Node.mbr node) id)
       entry_sets)

let load ?priority_size ?(domains = 1) pool entries =
  Trace.with_span "prtree.load"
    ~args:[ ("n", Trace.Int (Array.length entries)) ]
  @@ fun () ->
  let page_size = Pager.page_size (Buffer_pool.pager pool) in
  let cap = Node.capacity ~page_size in
  let count = Array.length entries in
  if count = 0 then Rtree.create_empty pool
  else begin
    (* [current] holds the entries of the level under construction;
       [kind] is Leaf for stage 0 and Internal afterwards. *)
    let rec stage current ~kind ~height =
      if Array.length current <= cap then begin
        let node = Node.make kind current in
        let id = Buffer_pool.alloc pool in
        Buffer_pool.write pool id (Node.encode ~page_size node);
        Rtree.of_root ~pool ~root:id ~height ~count
      end
      else begin
        Trace.with_span "prtree.stage"
          ~args:[ ("level", Trace.Int (height - 1)); ("n", Trace.Int (Array.length current)) ]
          (fun () ->
            let pseudo =
              Trace.with_span "prtree.pseudo" (fun () ->
                  Pseudo.build ~b:cap ?priority_size ~domains current)
            in
            Trace.with_span "prtree.write_level" (fun () ->
                write_level pool ~kind (Pseudo.leaves pseudo)))
        |> fun level -> stage (Array.of_list level) ~kind:Node.Internal ~height:(height + 1)
      end
    in
    stage entries ~kind:Node.Leaf ~height:1
  end
