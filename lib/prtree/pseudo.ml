(* The two-dimensional pseudo-PR-tree (Section 2.1 of the paper).

   A pseudo-PR-tree on a set S of rectangles is, conceptually, a 4-D
   kd-tree on the points (xmin, ymin, xmax, ymax) where every internal
   node additionally carries four "priority leaves": the B rectangles of
   its subtree that are extreme in each of the four directions (leftmost
   left edges, bottommost bottom edges, rightmost right edges, topmost
   top edges), each drawn from what the earlier priority leaves left
   behind.  The remainder is median-split on the kd-coordinate cycling
   xmin, ymin, xmax, ymax.  Internal nodes therefore have degree at most
   six: four priority leaves and two recursive subtrees.

   Queries on this structure visit O(sqrt(N/B) + T/B) nodes (Lemma 2);
   the real PR-tree (see {!Prtree}) uses only the *leaves* of
   pseudo-PR-trees, stage by stage.

   Construction here is in-memory and selection-based: priority leaves
   are peeled off with expected-linear quickselect, and the median split
   is a selection too, so building is O(N log N) expected.  The
   I/O-efficient external construction lives in {!Ext_build}. *)

module Rect = Prt_geom.Rect
module Select = Prt_util.Select
module Entry = Prt_rtree.Entry

type t =
  | Leaf of { mbr : Rect.t; entries : Entry.t array; priority : int option }
    (* [priority] is the direction (0..3) the leaf is extreme in, or
       [None] for an ordinary kd-leaf. *)
  | Node of { mbr : Rect.t; children : t list }

let mbr = function Leaf { mbr; _ } -> mbr | Node { mbr; _ } -> mbr

(* Comparison that makes "smallest first" mean "most extreme first" for
   each of the four priority directions: minimal xmin and ymin, maximal
   xmax and ymax. *)
let extreme_cmp dim =
  if dim < 2 then Entry.compare_dim dim else fun a b -> Entry.compare_dim dim b a

let leaf ?priority entries =
  Leaf { mbr = Rect.union_map ~f:Entry.rect entries; entries; priority }

(* Peel the priority leaves off [arr.(lo..hi)]: for each direction in
   order, move the [size] most extreme remaining entries to the front
   and emit them as a leaf. Returns the new [lo] and the reversed leaf
   list. *)
let extract_priority_leaves ~size arr lo hi =
  let acc = ref [] and lo = ref lo in
  let dim = ref 0 in
  while !dim < 4 && !lo < hi && size > 0 do
    let k = min size (hi - !lo) in
    Select.smallest_to_front ~cmp:(extreme_cmp !dim) arr !lo hi k;
    acc := leaf ~priority:!dim (Array.sub arr !lo k) :: !acc;
    lo := !lo + k;
    incr dim
  done;
  (!lo, !acc)

let build ?(b = 113) ?priority_size ?(domains = 1) entries =
  if b < 1 then invalid_arg "Pseudo.build: b must be >= 1";
  (* Priority leaves default to full size b (the paper's choice); 0
     disables them entirely, degenerating to a plain 4-D kd-tree — the
     ablation baseline, essentially the structure of reference [2] when
     set to 1. *)
  let priority_size = match priority_size with Some s -> s | None -> b in
  if priority_size < 0 || priority_size > b then
    invalid_arg "Pseudo.build: priority_size outside [0, b]";
  if Array.length entries = 0 then invalid_arg "Pseudo.build: empty input";
  let arr = Array.copy entries in
  (* [budget] is how many extra domains this subtree may still spawn;
     the two kd halves work on disjoint ranges of [arr], so forking is
     safe and the result is identical to the sequential build. *)
  let rec go lo hi depth budget =
    if hi - lo <= b then leaf (Array.sub arr lo (hi - lo))
    else begin
      let box = Rect.union_map ~lo ~hi ~f:Entry.rect arr in
      let lo', rev_leaves = extract_priority_leaves ~size:priority_size arr lo hi in
      let children =
        if lo' >= hi then List.rev rev_leaves
        else if hi - lo' <= b then
          (* The remainder fits a single leaf: no kd split needed. *)
          List.rev_append rev_leaves [ leaf (Array.sub arr lo' (hi - lo')) ]
        else begin
          (* kd median split of the remainder, cycling the dimension. *)
          let dim = depth mod 4 in
          let mid = lo' + ((hi - lo') / 2) in
          Select.partition_at ~cmp:(Entry.compare_dim dim) arr lo' hi mid;
          (* [mid] itself goes right so both sides are non-empty. *)
          let parallel = budget > 1 && hi - lo' > 8192 in
          let sub = if parallel then budget / 2 else budget in
          let left, right =
            Prt_util.Parallel.both ~parallel
              (fun () -> go lo' mid (depth + 1) sub)
              (fun () -> go mid hi (depth + 1) (budget - sub))
          in
          List.rev_append rev_leaves [ left; right ]
        end
      in
      Node { mbr = box; children }
    end
  in
  go 0 (Array.length arr) 0 (max 1 domains)

let rec fold_leaves t ~init ~f =
  match t with
  | Leaf { entries; priority; _ } -> f init ~entries ~priority
  | Node { children; _ } -> List.fold_left (fun acc c -> fold_leaves c ~init:acc ~f) init children

let leaves t =
  List.rev (fold_leaves t ~init:[] ~f:(fun acc ~entries ~priority:_ -> entries :: acc))

(* Window query, counting visited nodes: used to check Lemma 2
   empirically. A "node visit" here is any tree node whose parent's
   recorded box intersects the query (the root is always visited). *)
type query_stats = { mutable inner_visited : int; mutable leaves_visited : int; mutable matched : int }

let query t window ~f =
  let stats = { inner_visited = 0; leaves_visited = 0; matched = 0 } in
  let rec visit t =
    match t with
    | Leaf { entries; _ } ->
        stats.leaves_visited <- stats.leaves_visited + 1;
        Array.iter
          (fun e ->
            if Rect.intersects (Entry.rect e) window then begin
              stats.matched <- stats.matched + 1;
              f e
            end)
          entries
    | Node { children; _ } ->
        stats.inner_visited <- stats.inner_visited + 1;
        List.iter (fun c -> if Rect.intersects (mbr c) window then visit c) children
  in
  visit t;
  stats

(* Structural checks used by the test suite. *)

let rec size t =
  match t with
  | Leaf { entries; _ } -> Array.length entries
  | Node { children; _ } -> List.fold_left (fun acc c -> acc + size c) 0 children

(* Flatten the tree into the unified audit's neutral descriptors.  The
   geometry-aware part — is this priority leaf really extreme? — is
   computed here: every entry of a priority leaf in direction [d] must
   be at least as extreme under [extreme_cmp d] as every entry held by
   the siblings that come after it (later priority leaves and the kd
   subtrees), because the build peels the directions in order. *)
let audit ?(b = 113) t =
  let module Audit = Prt_rtree.Audit in
  let descs = ref [] in
  let add d = descs := d :: !descs in
  let rec subtree_entries t acc =
    match t with
    | Leaf { entries; _ } -> entries :: acc
    | Node { children; _ } -> List.fold_left (fun acc c -> subtree_entries c acc) acc children
  in
  let leaf_box_ok box entries =
    Array.length entries = 0 || Rect.equal box (Rect.union_map ~f:Entry.rect entries)
  in
  let emit_leaf where ~box ~entries ~priority ~extreme =
    add
      {
        Audit.pd_where = where;
        pd_kind =
          Audit.Pseudo_leaf { size = Array.length entries; priority; extreme };
        pd_box_ok = leaf_box_ok box entries;
      }
  in
  (* Least-extreme member of the leaf vs. most-extreme member of the
     rest: one comparison decides the whole leaf. *)
  let extreme_ok dir entries rest =
    Array.length entries = 0
    ||
    let worst =
      Array.fold_left
        (fun w e -> if extreme_cmp dir e w > 0 then e else w)
        entries.(0) entries
    in
    List.for_all (Array.for_all (fun r -> extreme_cmp dir worst r <= 0)) rest
  in
  let rec go where t =
    match t with
    | Leaf { mbr = box; entries; priority } ->
        (* A leaf root has nothing to be extreme against. *)
        emit_leaf where ~box ~entries ~priority ~extreme:true
    | Node { mbr = box; children } ->
        let box_ok =
          children <> []
          && Rect.equal box
               (List.fold_left
                  (fun acc c -> Rect.union acc (mbr c))
                  (mbr (List.hd children))
                  children)
        in
        add
          {
            Audit.pd_where = where;
            pd_kind = Audit.Pseudo_node { degree = List.length children };
            pd_box_ok = box_ok;
          };
        List.iteri
          (fun i c ->
            let where' = where ^ "/" ^ string_of_int i in
            match c with
            | Leaf { mbr = box'; entries; priority } ->
                let extreme =
                  match priority with
                  | None -> true
                  | Some dir ->
                      let rest =
                        List.filteri (fun j _ -> j > i) children
                        |> List.fold_left (fun acc s -> subtree_entries s acc) []
                      in
                      extreme_ok dir entries rest
                in
                emit_leaf where' ~box:box' ~entries ~priority ~extreme
            | Node _ -> go where' c)
          children
  in
  go "pseudo" t;
  Prt_rtree.Audit.check_pseudo ~degree_limit:6 ~leaf_capacity:b (List.rev !descs)

let rec validate ?(b = 113) t =
  let check cond fmt =
    Format.kasprintf (fun s -> if not cond then failwith ("Pseudo.validate: " ^ s)) fmt
  in
  match t with
  | Leaf { mbr = box; entries; _ } ->
      check (Array.length entries > 0) "empty leaf";
      check (Array.length entries <= b) "leaf overflows b";
      check
        (Rect.equal box (Rect.union_map ~f:Entry.rect entries))
        "leaf MBR does not match its entries"
  | Node { mbr = box; children } ->
      check (children <> []) "childless node";
      check (List.length children <= 6) "node degree exceeds six";
      let union = List.fold_left (fun acc c -> Rect.union acc (mbr c)) (mbr (List.hd children)) children in
      check (Rect.equal box union) "node MBR does not match its children";
      List.iter (validate ~b) children
