(** The two-dimensional pseudo-PR-tree (Section 2.1 of the paper).

    A 4-D kd-tree over rectangles-as-points, where each internal node
    carries up to four {e priority leaves} holding the [b] rectangles of
    its subtree most extreme in each direction (minimal xmin, minimal
    ymin, maximal xmax, maximal ymax), each drawn from what the previous
    priority leaves left behind. Window queries visit
    [O(sqrt(N/b) + T/b)] nodes (Lemma 2). The real {!Prtree} is built
    from the {e leaves} of pseudo-PR-trees, one stage per level. *)

type t =
  | Leaf of {
      mbr : Prt_geom.Rect.t;
      entries : Prt_rtree.Entry.t array;
      priority : int option;
          (** direction (0..3 = xmin, ymin, xmax, ymax) this leaf is
              extreme in, or [None] for an ordinary kd-leaf *)
    }
  | Node of { mbr : Prt_geom.Rect.t; children : t list }

val build : ?b:int -> ?priority_size:int -> ?domains:int -> Prt_rtree.Entry.t array -> t
(** [build ~b entries] constructs the pseudo-PR-tree with leaf capacity
    [b] (default 113, the 4 KB-page fanout). Expected O(N log N) via
    quickselect; the input array is not modified. Raises
    [Invalid_argument] on empty input or [b < 1].

    [priority_size] (default [b]) sets how many extreme rectangles each
    priority leaf holds: [b] is the paper's choice, [1] the structure of
    its reference [2], and [0] disables priority leaves entirely (a
    plain 4-D kd-tree) — exposed for the ablation benchmarks. Raises
    [Invalid_argument] outside [0, b].

    [domains] (default 1) allows forking independent kd subtrees onto
    OCaml domains; the result is identical to the sequential build. *)

val mbr : t -> Prt_geom.Rect.t

val leaves : t -> Prt_rtree.Entry.t array list
(** All leaf entry-sets (priority and kd leaves), in construction
    order — the node sets of one PR-tree level. *)

val fold_leaves :
  t ->
  init:'acc ->
  f:('acc -> entries:Prt_rtree.Entry.t array -> priority:int option -> 'acc) ->
  'acc

val size : t -> int
(** Total entries stored. *)

type query_stats = {
  mutable inner_visited : int;
  mutable leaves_visited : int;
  mutable matched : int;
}

val query : t -> Prt_geom.Rect.t -> f:(Prt_rtree.Entry.t -> unit) -> query_stats
(** Window query, counting visited kd-nodes and leaves (for empirical
    Lemma 2 checks). *)

val validate : ?b:int -> t -> unit
(** Structural invariants: node degree at most six, no empty leaves,
    leaf capacity [b], exact MBRs. Raises [Failure] on violation. *)

val audit : ?b:int -> t -> Prt_rtree.Audit.violation list
(** The unified-audit version of {!validate}: degree at most six, leaf
    occupancy in [1, b], exact boxes, and {e priority-leaf extremeness}
    (every entry of a priority leaf at least as extreme in its direction
    as everything held by the siblings after it).  Returns the violation
    list instead of raising; empty means the invariants hold. *)

val extreme_cmp : int -> Prt_rtree.Entry.t -> Prt_rtree.Entry.t -> int
(** Total order putting the most extreme entry of the given priority
    direction first. *)
