(** The Priority R-tree: worst-case-optimal R-tree bulk loading
    (Theorem 1 of the paper).

    Builds an ordinary {!Prt_rtree.Rtree.t} — queryable and updatable
    like any other — whose window queries are guaranteed
    [O(sqrt(N/B) + T/B)] I/Os. Each level is the set of leaves of a
    pseudo-PR-tree built on the previous level's bounding boxes. *)

val load :
  ?priority_size:int ->
  ?domains:int ->
  Prt_storage.Buffer_pool.t ->
  Prt_rtree.Entry.t array ->
  Prt_rtree.Rtree.t
(** In-memory staged construction (expected O(N log N) work). For the
    I/O-efficient external construction see {!Ext_build}.
    [priority_size] is the ablation knob of {!Pseudo.build}; [domains]
    forks independent kd subtrees onto OCaml domains (identical
    result). *)
