(* I/O-efficient PR-tree bulk loading (the "efficient construction
   algorithm" of Section 2.1, staged into a full PR-tree as in
   Section 2.2).

   Following the paper, each stage builds the top Theta(log M) levels of
   a pseudo-PR-tree per round:

   1. four sorted lists of the records, one per kd-coordinate (external
      sort; first round only — distribution preserves sortedness);
   2. the top kd levels are chosen from an in-memory structure: the
      paper uses a z^4 grid of counts; we use a systematic sample of the
      sorted input, whose conditional medians approximate the grid
      medians with bounded rank error (DESIGN.md documents this
      substitution — the query analysis only needs each child to get at
      most about half of its parent's records, which sampled medians
      preserve up to a small constant);
   3. a filtering pass streams every record through the top levels,
      filling the 4 priority leaves of each node exactly as in the
      paper: a record displaces the least extreme record of a full
      priority leaf and the displaced record continues filtering;
   4. a distribution pass splits the four sorted lists into four sorted
      lists per kd-cell (one scan, z*4 output buffers);
   5. cells small enough for main memory finish with the in-memory
      builder; larger cells recurse into another round.

   All reads and writes go through the pager, so construction I/O is
   measured the same way as for the baselines (Figures 9 and 10). *)

module Rect = Prt_geom.Rect
module Buffer_pool = Prt_storage.Buffer_pool
module Pager = Prt_storage.Pager
module Pqueue = Prt_util.Pqueue
module Select = Prt_util.Select
module Entry = Prt_rtree.Entry
module Node = Prt_rtree.Node
module Rtree = Prt_rtree.Rtree
module Trace = Prt_obs.Trace

(* --- the in-memory top-levels structure --- *)

(* A priority buffer keeps up to [capacity] entries extreme in [dim]; the
   heap minimum is the least extreme entry, i.e. the replacement
   victim. *)
type prio = { dim : int; capacity : int; heap : Entry.t Pqueue.t }

let prio_make ~dim ~capacity =
  { dim; capacity; heap = Pqueue.create (fun a b -> Pseudo.extreme_cmp dim b a) }

type skind =
  | Split of { dim : int; boundary : Entry.t; left : snode; right : snode }
  | Cell of int

and snode = { prios : prio array; kind : skind }

(* Build the top kd levels from a sample: cycle the split dimension,
   split at the sample median, stop after [depth] levels (or when the
   sample runs dry). Returns the tree and the number of cells. *)
let build_sample_tree ~cap sample depth =
  let cells = ref 0 in
  let rec go lo hi level kd_depth =
    let prios = Array.init 4 (fun dim -> prio_make ~dim ~capacity:cap) in
    if level = 0 || hi - lo < 2 then begin
      let id = !cells in
      incr cells;
      { prios; kind = Cell id }
    end
    else begin
      let dim = kd_depth mod 4 in
      let mid = lo + ((hi - lo) / 2) in
      Select.partition_at ~cmp:(Entry.compare_dim dim) sample lo hi mid;
      let boundary = sample.(mid) in
      (* Records strictly less than or equal to the boundary go left; the
         boundary sample itself is the greatest element of the left
         side. *)
      let left = go lo (mid + 1) (level - 1) (kd_depth + 1) in
      let right = go (mid + 1) hi (level - 1) (kd_depth + 1) in
      { prios; kind = Split { dim; boundary; left; right } }
    end
  in
  let root = go 0 (Array.length sample) depth 0 in
  (root, !cells)

(* Route a record to its kd-cell (ignoring priority buffers). *)
let rec cell_of node r =
  match node.kind with
  | Cell id -> id
  | Split { dim; boundary; left; right } ->
      if Entry.compare_dim dim r boundary <= 0 then cell_of left r else cell_of right r

(* Filter one record through the top levels, filling priority buffers.
   [absorbed] is the id set currently held in priority buffers. *)
let filter_record ~absorbed root r =
  let rec go node r =
    let rec try_prios i r =
      if i = 4 then Some r
      else begin
        let p = node.prios.(i) in
        if Pqueue.length p.heap < p.capacity then begin
          Pqueue.add p.heap r;
          Hashtbl.replace absorbed (Entry.id r) ();
          None
        end
        else begin
          match Pqueue.peek p.heap with
          | Some least when Pseudo.extreme_cmp p.dim r least < 0 ->
              (* r is more extreme: displace the victim, which then
                 continues through the remaining priority buffers. *)
              ignore (Pqueue.pop p.heap);
              Pqueue.add p.heap r;
              Hashtbl.replace absorbed (Entry.id r) ();
              Hashtbl.remove absorbed (Entry.id least);
              try_prios (i + 1) least
          | _ -> try_prios (i + 1) r
        end
      end
    in
    match try_prios 0 r with
    | None -> ()
    | Some r -> (
        match node.kind with
        | Cell _ -> () (* left for the distribution pass *)
        | Split { dim; boundary; left; right } ->
            if Entry.compare_dim dim r boundary <= 0 then go left r else go right r)
  in
  go root r

let iter_priority_buffers root ~f =
  let rec walk node =
    (* Cells keep empty buffers; only split nodes absorb records, but
       checking emptiness covers both uniformly. *)
    Array.iter
      (fun p ->
        let len = Pqueue.length p.heap in
        if len > 0 then begin
          let first = Pqueue.pop_exn p.heap in
          let out = Array.make len first in
          for i = 1 to len - 1 do
            out.(i) <- Pqueue.pop_exn p.heap
          done;
          f out
        end)
      node.prios;
    match node.kind with
    | Cell _ -> ()
    | Split { left; right; _ } ->
        walk left;
        walk right
  in
  walk root

(* --- the external pseudo-PR-tree leaf generator --- *)

let ceil_log2 x =
  let rec go p v = if v >= x then p else go (p + 1) (2 * v) in
  go 0 1

(* Emit all pseudo-PR-tree leaves of the records in [files] (four sorted
   copies of the same record set) through [emit_leaf]. Consumes and
   destroys [files]. *)
let rec pseudo_leaves pager ~cap ~mem_records ~emit_leaf files n =
  if n = 0 then Array.iter Entry.File.destroy files
  else if n <= mem_records then begin
    let entries = Entry.File.read_all files.(0) in
    Array.iter Entry.File.destroy files;
    let t = Pseudo.build ~b:cap entries in
    List.iter emit_leaf (Pseudo.leaves t)
  end
  else begin
    (* Sample systematically from the xmin-sorted list. *)
    let sample_target = max 64 (mem_records / 4) in
    let stride = max 1 (n / sample_target) in
    let sample = ref [] and idx = ref 0 in
    Entry.File.iter files.(0) (fun e ->
        if !idx mod stride = 0 then sample := e :: !sample;
        incr idx);
    let sample = Array.of_list !sample in
    (* Enough levels that cells are expected to fit in memory, but no
       more than priority-buffer memory allows (4 * cap * #nodes). *)
    let depth_for_memory = ceil_log2 (max 2 ((2 * n) / mem_records)) in
    let z_max = max 2 (mem_records / (8 * cap)) in
    let depth = max 1 (min depth_for_memory (ceil_log2 z_max)) in
    let root, ncells = build_sample_tree ~cap sample depth in
    (* Filtering pass: fill the priority buffers. *)
    let absorbed = Hashtbl.create (8 * cap * ncells) in
    Trace.with_span "prtree.ext.filter"
      ~args:[ ("n", Trace.Int n); ("cells", Trace.Int ncells) ]
      (fun () ->
        Entry.File.iter files.(0) (fun e -> filter_record ~absorbed root e);
        iter_priority_buffers root ~f:emit_leaf);
    (* Distribution pass: split each sorted list by cell. *)
    let outputs =
      Array.init ncells (fun _ -> Array.init 4 (fun _ -> Entry.File.create pager))
    in
    let counts = Array.make ncells 0 in
    Trace.with_span "prtree.ext.distribute"
      ~args:[ ("cells", Trace.Int ncells) ]
      (fun () ->
        Array.iteri
          (fun dim file ->
            Entry.File.iter file (fun e ->
                if not (Hashtbl.mem absorbed (Entry.id e)) then begin
                  let c = cell_of root e in
                  Entry.File.append outputs.(c).(dim) e;
                  if dim = 0 then counts.(c) <- counts.(c) + 1
                end);
            Entry.File.destroy file)
          files;
        Array.iter (fun fs -> Array.iter Entry.File.seal fs) outputs);
    (* Recurse per cell. The filtering pass absorbed at least 4*cap
       records (the root's buffers), so n strictly decreases even if the
       sample split badly. *)
    Array.iteri (fun c fs -> pseudo_leaves pager ~cap ~mem_records ~emit_leaf fs counts.(c)) outputs
  end

(* --- staged PR-tree construction --- *)

let load ?(mem_records = 18_000) pool file =
  Trace.with_span "prtree.ext.load"
    ~args:[ ("n", Trace.Int (Entry.File.length file)) ]
  @@ fun () ->
  let pager = Buffer_pool.pager pool in
  let page_size = Pager.page_size pager in
  let cap = Node.capacity ~page_size in
  if mem_records < 8 * cap then invalid_arg "Ext_build.load: memory budget below 8 nodes of records";
  let count = Entry.File.length file in
  if count = 0 then Rtree.create_empty pool
  else begin
    let write_node kind entries =
      let node = Node.make kind entries in
      let id = Buffer_pool.alloc pool in
      Buffer_pool.write pool id (Node.encode ~page_size node);
      Entry.make (Node.mbr node) id
    in
    (* One stage: pseudo-PR-tree leaves of [level_file] become the nodes
       of this level; their bounding boxes feed the next stage. *)
    let rec stage level_file ~kind ~height ~owned =
      let n = Entry.File.length level_file in
      if n <= cap then begin
        let entries = Entry.File.read_all level_file in
        if owned then Entry.File.destroy level_file;
        let root = write_node kind entries in
        Rtree.of_root ~pool ~root:(Entry.id root) ~height ~count
      end
      else begin
        let next = Entry.File.create pager in
        let emit_leaf entries = Entry.File.append next (write_node kind entries) in
        Trace.with_span "prtree.ext.stage"
          ~args:[ ("level", Trace.Int (height - 1)); ("n", Trace.Int n) ]
          (fun () ->
            if n <= mem_records then begin
              (* Small levels skip the sorted lists entirely. *)
              let entries = Entry.File.read_all level_file in
              if owned then Entry.File.destroy level_file;
              let t = Pseudo.build ~b:cap entries in
              List.iter emit_leaf (Pseudo.leaves t)
            end
            else begin
              let sorted =
                Trace.with_span "prtree.ext.sort" (fun () ->
                    Array.init 4 (fun d ->
                        Entry.File.sort ~mem_records ~cmp:(Entry.compare_dim d) level_file))
              in
              if owned then Entry.File.destroy level_file;
              pseudo_leaves pager ~cap ~mem_records ~emit_leaf sorted n
            end;
            Entry.File.seal next);
        stage next ~kind:Node.Internal ~height:(height + 1) ~owned:true
      end
    in
    stage file ~kind:Node.Leaf ~height:1 ~owned:false
  end
