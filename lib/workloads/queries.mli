(** Window-query generators for the experiments (Section 3.3). *)

val world_of : Prt_rtree.Entry.t array -> Prt_geom.Rect.t
(** Bounding box of a dataset (unit square when empty). *)

val squares :
  count:int -> area_fraction:float -> world:Prt_geom.Rect.t -> seed:int -> Prt_geom.Rect.t array
(** Uniformly placed squares covering [area_fraction] of the world box,
    fully inside it. *)

val skewed_squares :
  count:int -> area_fraction:float -> c:int -> seed:int -> Prt_geom.Rect.t array
(** Squares in the unit square transformed like SKEWED(c) data
    ([y := y^c]), keeping output sizes comparable across skews. *)

val cluster_strips : count:int -> seed:int -> Prt_geom.Rect.t array
(** Table 1's long skinny horizontal queries of area 1e-7 passing
    through every cluster of the CLUSTER dataset. *)
