(** Synthetic stand-in for the paper's TIGER/Line road data.

    Random-walk road networks: short, thin, axis-leaning segment
    bounding boxes, clustered around power-law-weighted urban centers
    with a sparse rural background — the "relatively small rectangles...
    somewhat (but not too badly) clustered around urban areas" the paper
    describes. See DESIGN.md for the substitution rationale. *)

type params = {
  n : int;
  seed : int;
  urban_centers : int;
  rural_fraction : float;
  segment_length : float;
  segments_per_road : int;
}

val default_params : n:int -> seed:int -> params
val generate : params -> Prt_rtree.Entry.t array

val eastern : scale:float -> seed:int -> Prt_rtree.Entry.t array
(** The "Eastern" stand-in: [167_000 * scale] segment rectangles
    (the paper's 16.7M at [scale = 100.]). *)

val western : scale:float -> seed:int -> Prt_rtree.Entry.t array
(** The "Western" stand-in: [120_000 * scale] rectangles. *)

val eastern_subsets : scale:float -> seed:int -> Prt_rtree.Entry.t array array
(** Five nested longitude-band slices of Eastern, mirroring the paper's
    five cumulative regions of increasing size. *)
