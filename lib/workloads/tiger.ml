(* Synthetic stand-in for the TIGER/Line road datasets.

   The paper's real-life data is the bounding boxes of road line
   segments from the US Census TIGER/Line CD-ROMs ("Eastern": 16.7M
   rectangles over 16 states, "Western": 12M over 5).  That data is not
   available here, so we synthesize road networks with the properties
   the paper relies on: long roads are divided into short segments, so
   rectangles are small and often thin; segments cluster around urban
   areas of power-law size, with a sparse rural background; the data is
   "relatively nicely distributed... somewhat (but not too badly)
   clustered" (Section 3.2).

   Roads are random walks: a start point near a weighted urban center, a
   heading that drifts slowly (with grid-aligned bias, like street
   grids), and a few dozen short steps.  Each step contributes the
   bounding box of its segment.  Scale is controlled by [n], the number
   of segment rectangles. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Entry = Prt_rtree.Entry

type params = {
  n : int;
  seed : int;
  urban_centers : int;       (* number of urban clusters *)
  rural_fraction : float;    (* share of roads starting anywhere *)
  segment_length : float;    (* mean step length *)
  segments_per_road : int;   (* mean road length in segments *)
}

let default_params ~n ~seed =
  {
    n;
    seed;
    urban_centers = max 8 (n / 12000);
    rural_fraction = 0.15;
    segment_length = 0.0006;
    segments_per_road = 30;
  }

let clamp v = Float.max 0.0 (Float.min 1.0 v)

let generate params =
  if params.n < 0 then invalid_arg "Tiger.generate: n must be >= 0";
  let rng = Rng.create params.seed in
  (* Urban centers with Zipf-like weights: center k has weight 1/(k+1),
     sampled by cumulative search. *)
  let centers =
    Array.init params.urban_centers (fun _ ->
        (Rng.float rng 1.0, Rng.float rng 1.0, 0.004 +. Rng.float rng 0.03))
  in
  let weights = Array.init params.urban_centers (fun k -> 1.0 /. float_of_int (k + 1)) in
  let total_weight = Array.fold_left ( +. ) 0.0 weights in
  let pick_center () =
    let target = Rng.float rng total_weight in
    let rec go k acc =
      if k = params.urban_centers - 1 then k
      else begin
        let acc = acc +. weights.(k) in
        if target < acc then k else go (k + 1) acc
      end
    in
    centers.(go 0 0.0)
  in
  let out = ref [] and made = ref 0 in
  while !made < params.n do
    (* Start a road. *)
    let x, y =
      if Rng.float rng 1.0 < params.rural_fraction then (Rng.float rng 1.0, Rng.float rng 1.0)
      else begin
        let cx, cy, radius = pick_center () in
        (clamp (cx +. (Rng.gaussian rng *. radius)), clamp (cy +. (Rng.gaussian rng *. radius)))
      end
    in
    (* Grid-aligned initial heading with some noise: many streets run
       close to north-south or east-west, giving thin bounding boxes. *)
    let heading =
      (float_of_int (Rng.int rng 4) *. (Float.pi /. 2.0)) +. (Rng.gaussian rng *. 0.2)
    in
    let segments = 1 + Rng.int rng (2 * params.segments_per_road) in
    let x = ref x and y = ref y and heading = ref heading in
    let step = ref 0 in
    while !step < segments && !made < params.n do
      let len = params.segment_length *. (0.25 +. Rng.float rng 1.5) in
      let nx = clamp (!x +. (len *. cos !heading)) in
      let ny = clamp (!y +. (len *. sin !heading)) in
      if nx <> !x || ny <> !y then begin
        out := Rect.of_corners (!x, !y) (nx, ny) :: !out;
        incr made
      end;
      x := nx;
      y := ny;
      heading := !heading +. (Rng.gaussian rng *. 0.15);
      incr step
    done
  done;
  let rects = Array.of_list (List.rev !out) in
  Array.mapi (fun i r -> Entry.make r i) rects

(* The two named datasets, scaled 1:100 against the paper by default. *)
let eastern ~scale ~seed = generate (default_params ~n:(int_of_float (167_000.0 *. scale)) ~seed)
let western ~scale ~seed = generate (default_params ~n:(int_of_float (120_000.0 *. scale)) ~seed)

(* The paper also slices Eastern into five cumulative regions; we slice
   by longitude bands the same way. *)
let eastern_subsets ~scale ~seed =
  let full = eastern ~scale ~seed in
  let fractions = [| 0.125; 0.34; 0.55; 0.76; 1.0 |] in
  Array.map
    (fun frac ->
      let cut = frac in
      let selected = Array.of_list (List.filter
        (fun e -> Rect.xmin (Entry.rect e) <= cut)
        (Array.to_list full))
      in
      Array.mapi (fun i e -> Entry.make (Entry.rect e) i) selected)
    fractions
