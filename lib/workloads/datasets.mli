(** The paper's synthetic datasets (Section 3.2), generated
    deterministically in the unit square. Entry ids are array
    positions. *)

val uniform_points : n:int -> seed:int -> Prt_rtree.Entry.t array
(** Uniform point rectangles. *)

val size : n:int -> max_side:float -> seed:int -> Prt_rtree.Entry.t array
(** SIZE(max_side): uniform centers, sides uniform in [\[0, max_side\]],
    redrawn until fully inside the unit square. *)

val aspect : n:int -> a:float -> seed:int -> Prt_rtree.Entry.t array
(** ASPECT(a): fixed area 1e-6, aspect ratio [a], longest side
    horizontal or vertical with equal probability. *)

val skewed : n:int -> c:int -> seed:int -> Prt_rtree.Entry.t array
(** SKEWED(c): uniform points squeezed by [y := y^c]. *)

val cluster : n_clusters:int -> per_cluster:int -> seed:int -> Prt_rtree.Entry.t array
(** CLUSTER: [n_clusters] clusters of [per_cluster] points in
    0.00001-wide squares, centers equally spaced on the horizontal
    mid-line (Table 1's dataset). *)

val cluster_side : float
val cluster_band_center : float

val flagpoles : n:int -> seed:int -> Prt_rtree.Entry.t array
(** Zero-width vertical segments anchored at [y = 0] with uniform
    heights — the extent-adversarial input used by the priority-leaf
    ablation (not from the paper). *)

val flagpole_queries : count:int -> seed:int -> Prt_geom.Rect.t array
(** Thin horizontal strips near the top of the flagpole field. *)

type worst_case = { entries : Prt_rtree.Entry.t array; columns : int; rows : int }

val worst_case : columns_log2:int -> b:int -> worst_case
(** The Theorem 3 construction: a grid of [2^columns_log2] columns by
    [b] rows, column [i] shifted vertically by
    [bitreverse(i) / N] — the dataset on which packed Hilbert, 4-D
    Hilbert and TGS R-trees must visit every leaf for a zero-output
    query. *)

val worst_case_query : worst_case -> row:int -> Prt_geom.Rect.t
(** A horizontal line between two point rows: crosses every column,
    reports nothing. *)

val bit_reverse : bits:int -> int -> int
