(* The paper's synthetic datasets (Section 3.2), all in the unit square:

   - size(max_side): uniform centers, side lengths uniform in
     [0, max_side], rectangles falling outside the square are redrawn;
   - aspect(a): fixed area 1e-6, aspect ratio a, longest side horizontal
     or vertical with equal probability;
   - skewed(c): uniform points squeezed by y := y^c;
   - cluster: clusters of points in tiny squares with centers equally
     spaced on a horizontal line (the worst-case-style dataset of
     Table 1);
   - worst_case: the Theorem 3 grid of shifted columns
     (a Halton–Hammersley-style point set) on which a zero-output line
     query forces heuristic R-trees to visit every leaf.

   Every generator is deterministic in its [seed] and returns entries
   whose ids are their position in the returned array. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Entry = Prt_rtree.Entry

let entries_of_rects rects = Array.mapi (fun i r -> Entry.make r i) rects

let check_n n = if n < 0 then invalid_arg "Datasets: n must be >= 0"

let uniform_points ~n ~seed =
  check_n n;
  let rng = Rng.create seed in
  entries_of_rects (Array.init n (fun _ -> Rect.point (Rng.float rng 1.0) (Rng.float rng 1.0)))

let size ~n ~max_side ~seed =
  check_n n;
  if max_side < 0.0 || max_side > 1.0 then invalid_arg "Datasets.size: max_side outside [0,1]";
  let rng = Rng.create seed in
  let rec draw () =
    let w = Rng.float rng max_side and h = Rng.float rng max_side in
    let cx = Rng.float rng 1.0 and cy = Rng.float rng 1.0 in
    let xmin = cx -. (w /. 2.0) and ymin = cy -. (h /. 2.0) in
    let xmax = cx +. (w /. 2.0) and ymax = cy +. (h /. 2.0) in
    (* As in the paper: discard rectangles not completely inside. *)
    if xmin < 0.0 || ymin < 0.0 || xmax > 1.0 || ymax > 1.0 then draw ()
    else Rect.make ~xmin ~ymin ~xmax ~ymax
  in
  entries_of_rects (Array.init n (fun _ -> draw ()))

let rect_area = 1e-6

let aspect ~n ~a ~seed =
  check_n n;
  if a < 1.0 then invalid_arg "Datasets.aspect: aspect ratio must be >= 1";
  let rng = Rng.create seed in
  let long = sqrt (rect_area *. a) and short = sqrt (rect_area /. a) in
  if long > 1.0 then invalid_arg "Datasets.aspect: aspect ratio too large for the unit square";
  let rec draw () =
    let horizontal = Rng.bool rng in
    let w, h = if horizontal then (long, short) else (short, long) in
    let cx = Rng.float rng 1.0 and cy = Rng.float rng 1.0 in
    let xmin = cx -. (w /. 2.0) and ymin = cy -. (h /. 2.0) in
    let xmax = cx +. (w /. 2.0) and ymax = cy +. (h /. 2.0) in
    if xmin < 0.0 || ymin < 0.0 || xmax > 1.0 || ymax > 1.0 then draw ()
    else Rect.make ~xmin ~ymin ~xmax ~ymax
  in
  entries_of_rects (Array.init n (fun _ -> draw ()))

let skewed ~n ~c ~seed =
  check_n n;
  if c < 1 then invalid_arg "Datasets.skewed: c must be >= 1";
  let rng = Rng.create seed in
  let pow_c y =
    let acc = ref 1.0 in
    for _ = 1 to c do
      acc := !acc *. y
    done;
    !acc
  in
  entries_of_rects
    (Array.init n (fun _ -> Rect.point (Rng.float rng 1.0) (pow_c (Rng.float rng 1.0))))

let cluster_side = 0.00001
let cluster_band_center = 0.5

let cluster ~n_clusters ~per_cluster ~seed =
  if n_clusters < 1 || per_cluster < 1 then invalid_arg "Datasets.cluster: need positive sizes";
  let rng = Rng.create seed in
  let half = cluster_side /. 2.0 in
  let rects =
    Array.init (n_clusters * per_cluster) (fun idx ->
        let c = idx / per_cluster in
        (* Cluster centers equally spaced along a horizontal line. *)
        let cx = (float_of_int c +. 0.5) /. float_of_int n_clusters in
        let x = cx -. half +. Rng.float rng cluster_side in
        let y = cluster_band_center -. half +. Rng.float rng cluster_side in
        Rect.point x y)
  in
  entries_of_rects rects

(* Flagpoles: zero-width vertical segments anchored at y = 0 with
   uniform heights and x positions. Not one of the paper's datasets —
   it is the input that separates the full PR-tree from its ablated
   variants: a thin horizontal strip near the top intersects only the
   tall poles, which the ymax-priority leaves capture near the root,
   while a plain 4-D kd-tree must open nearly every leaf (each kd cell's
   bounding box reaches its tallest pole). *)
let flagpoles ~n ~seed =
  check_n n;
  let rng = Rng.create seed in
  entries_of_rects
    (Array.init n (fun _ ->
         let x = Rng.float rng 1.0 in
         let h = Rng.float rng 1.0 in
         Rect.make ~xmin:x ~ymin:0.0 ~xmax:x ~ymax:h))

(* The matching zero-ish-output queries: thin strips near the top. *)
let flagpole_queries ~count ~seed =
  if count < 0 then invalid_arg "Datasets.flagpole_queries: count must be >= 0";
  let rng = Rng.create seed in
  Array.init count (fun _ ->
      let y = 0.98 +. Rng.float rng 0.015 in
      Rect.make ~xmin:0.0 ~ymin:y ~xmax:1.0 ~ymax:(y +. 0.001))

(* Bit reversal of the [bits]-bit representation of [i]. *)
let bit_reverse ~bits i =
  let r = ref 0 in
  for k = 0 to bits - 1 do
    if i land (1 lsl k) <> 0 then r := !r lor (1 lsl (bits - 1 - k))
  done;
  !r

type worst_case = { entries : Entry.t array; columns : int; rows : int }

let worst_case ~columns_log2 ~b =
  if columns_log2 < 1 || columns_log2 > 24 then
    invalid_arg "Datasets.worst_case: columns_log2 outside 1..24";
  if b < 1 then invalid_arg "Datasets.worst_case: b must be >= 1";
  let columns = 1 lsl columns_log2 in
  let n = columns * b in
  (* Point p_ij = (i + 1/2, j/B + h(i)/N) with h the bit reversal: each
     column shifted vertically by a different tiny amount, every row a
     low-discrepancy point set. *)
  let rects =
    Array.init n (fun idx ->
        let i = idx / b and j = idx mod b in
        let x = float_of_int i +. 0.5 in
        let y =
          (float_of_int j /. float_of_int b)
          +. (float_of_int (bit_reverse ~bits:columns_log2 i) /. float_of_int n)
        in
        Rect.point x y)
  in
  { entries = entries_of_rects rects; columns; rows = b }

(* A horizontal zero-output line query through the worst-case grid:
   y = j/B + (h + 1/2)/N lies strictly between two admissible point
   heights, so it touches no point but crosses every column. *)
let worst_case_query { columns; rows; _ } ~row =
  if row < 0 || row >= rows then invalid_arg "Datasets.worst_case_query: bad row";
  let n = columns * rows in
  let y = (float_of_int row /. float_of_int rows) +. (0.5 /. float_of_int n) in
  Rect.make ~xmin:0.0 ~ymin:y ~xmax:(float_of_int columns) ~ymax:y
