(* Window-query generators matching Section 3.3: square queries whose
   area is a given fraction of the dataset bounding box, skew-following
   squares for SKEWED(c), and the long skinny horizontal strips used
   against CLUSTER. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Entry = Prt_rtree.Entry

let world_of entries =
  if Array.length entries = 0 then Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0
  else Rect.union_map ~f:Entry.rect entries

(* Square queries with area equal to [area_fraction] of the world box,
   placed uniformly so the query lies inside the world. *)
let squares ~count ~area_fraction ~world ~seed =
  if count < 0 then invalid_arg "Queries.squares: count must be >= 0";
  if area_fraction <= 0.0 || area_fraction > 1.0 then
    invalid_arg "Queries.squares: area_fraction outside (0,1]";
  let rng = Rng.create seed in
  let w = Rect.width world and h = Rect.height world in
  let side = sqrt (area_fraction *. w *. h) in
  let side_x = Float.min side w and side_y = Float.min side h in
  Array.init count (fun _ ->
      let x = Rect.xmin world +. Rng.float rng (w -. side_x) in
      let y = Rect.ymin world +. Rng.float rng (h -. side_y) in
      Rect.make ~xmin:x ~ymin:y ~xmax:(x +. side_x) ~ymax:(y +. side_y))

(* SKEWED(c) queries: squares transformed like the data — the corner
   (x, y) maps to (x, y^c) — so output sizes stay comparable across
   skews (Section 3.3). *)
let skewed_squares ~count ~area_fraction ~c ~seed =
  if c < 1 then invalid_arg "Queries.skewed_squares: c must be >= 1";
  let unit = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0 in
  let plain = squares ~count ~area_fraction ~world:unit ~seed in
  let pow_c y =
    let acc = ref 1.0 in
    for _ = 1 to c do
      acc := !acc *. y
    done;
    !acc
  in
  Array.map
    (fun q ->
      Rect.make ~xmin:(Rect.xmin q) ~xmax:(Rect.xmax q) ~ymin:(pow_c (Rect.ymin q))
        ~ymax:(pow_c (Rect.ymax q)))
    plain

(* Table 1 queries: horizontal strips of area 1e-7 spanning the full
   cluster line, with the bottom edge placed uniformly so the strip
   passes through every cluster. *)
let cluster_strips ~count ~seed =
  if count < 0 then invalid_arg "Queries.cluster_strips: count must be >= 0";
  let rng = Rng.create seed in
  let height = 1e-7 in
  let half = Datasets.cluster_side /. 2.0 in
  let lo = Datasets.cluster_band_center -. half in
  let span = Datasets.cluster_side -. height in
  Array.init count (fun _ ->
      let y = lo +. Rng.float rng span in
      Rect.make ~xmin:0.0 ~ymin:y ~xmax:1.0 ~ymax:(y +. height))
