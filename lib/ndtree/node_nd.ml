(* On-page node format of the d-dimensional R-tree: kind byte, entry
   count, then packed Entry_nd records. The dimensionality is a
   parameter of the tree, not stored per page. *)

module Hyperrect = Prt_geom.Hyperrect
module Page = Prt_storage.Page

type kind = Leaf | Internal

type t = { kind : kind; entries : Entry_nd.t array }

let header_size = 3

let capacity ~page_size ~dims = (Page.payload_size page_size - header_size) / Entry_nd.size ~dims

let make kind entries = { kind; entries }
let kind t = t.kind
let entries t = t.entries
let length t = Array.length t.entries

let mbr t =
  if length t = 0 then invalid_arg "Node_nd.mbr: empty node";
  Hyperrect.union_map ~f:Entry_nd.box t.entries

let encode ~page_size ~dims t =
  if length t > capacity ~page_size ~dims then
    invalid_arg "Node_nd.encode: node exceeds page capacity";
  let buf = Page.create page_size in
  Page.set_u8 buf 0 (match t.kind with Leaf -> 0 | Internal -> 1);
  Page.set_u16 buf 1 (length t);
  Array.iteri
    (fun i e -> Entry_nd.write ~dims buf (header_size + (i * Entry_nd.size ~dims)) e)
    t.entries;
  buf

let decode ~dims buf =
  let kind =
    match Page.get_u8 buf 0 with
    | 0 -> Leaf
    | 1 -> Internal
    | k -> invalid_arg (Printf.sprintf "Node_nd.decode: bad node kind %d" k)
  in
  let count = Page.get_u16 buf 1 in
  let entries =
    Array.init count (fun i -> Entry_nd.read ~dims buf (header_size + (i * Entry_nd.size ~dims)))
  in
  { kind; entries }

(* --- zero-copy cursors, mirroring the 2-D {!Prt_rtree.Node} ones:
   the window test runs directly on the packed coordinates (lows then
   highs per entry) and entries are materialized only on a hit. *)

let page_kind buf =
  match Page.get_u8 buf 0 with
  | 0 -> Leaf
  | 1 -> Internal
  | k -> invalid_arg (Printf.sprintf "Node_nd.page_kind: bad node kind %d" k)

let page_length buf = Page.get_u16 buf 1

(* Does the entry at [off] intersect [window] in every dimension?
   Identical comparisons to [Hyperrect.intersects] on the decoded box.
   Top-level recursion (not a local closure) so the per-entry test
   allocates nothing. *)
let rec entry_intersects_from ~dims buf off window i =
  i = dims
  || (Page.get_f64 buf (off + (8 * i)) <= Hyperrect.hi window i
      && Hyperrect.lo window i <= Page.get_f64 buf (off + (8 * (dims + i)))
      && entry_intersects_from ~dims buf off window (i + 1))

let entry_intersects ~dims buf off window = entry_intersects_from ~dims buf off window 0

let iter_rects ~dims buf window ~f =
  let n = page_length buf in
  let size = Entry_nd.size ~dims in
  let hits = ref 0 in
  for i = 0 to n - 1 do
    let off = header_size + (i * size) in
    if entry_intersects ~dims buf off window then begin
      incr hits;
      f (Entry_nd.read ~dims buf off)
    end
  done;
  !hits

let iter_children ~dims buf window ~f =
  let n = page_length buf in
  let size = Entry_nd.size ~dims in
  for i = 0 to n - 1 do
    let off = header_size + (i * size) in
    if entry_intersects ~dims buf off window then f (Page.get_i32 buf (off + (16 * dims)))
  done
