(* d-dimensional instantiation of the unified audit: the same paranoid
   page walk as the 2-D version (corruption becomes violations, never
   exceptions; Io_error propagates), with Hyperrect in place of Rect,
   and the pseudo-tree adapter for Pseudo_nd's 2d-direction priority
   leaves. *)

module Audit = Prt_rtree.Audit
module Hyperrect = Prt_geom.Hyperrect
module Pager = Prt_storage.Pager

let page_where id = Printf.sprintf "page %d" id

let check ?(min_leaf_fill = 1) ?(min_fanout = 1) ?(check_leaks = false) ?(reachable = []) tree =
  let cap = Rtree_nd.capacity tree in
  let height = Rtree_nd.height tree in
  let pager = Rtree_nd.pager tree in
  let violations = ref [] in
  let add where what = violations := { Audit.where; what } :: !violations in
  let visited = Hashtbl.create 64 in
  let nodes = ref 0 and leaves = ref 0 and entries = ref 0 in
  let rec visit ~recorded id depth =
    if Hashtbl.mem visited id then add (page_where id) Audit.Page_shared
    else begin
      Hashtbl.replace visited id ();
      if Pager.is_free pager id then add (page_where id) Audit.Freed_page_reachable;
      match Rtree_nd.read_node tree id with
      | exception Invalid_argument msg -> add (page_where id) (Audit.Decode_error msg)
      | node -> (
          incr nodes;
          let n = Node_nd.length node in
          if n > cap then add (page_where id) (Audit.Node_overflow { count = n; capacity = cap });
          (match recorded with
          | Some r when n > 0 ->
              let exact = Node_nd.mbr node in
              if not (Hyperrect.contains r exact) then add (page_where id) Audit.Mbr_not_contained
              else if not (Hyperrect.equal r exact) then add (page_where id) Audit.Mbr_not_tight
          | _ -> ());
          match Node_nd.kind node with
          | Node_nd.Leaf ->
              incr leaves;
              entries := !entries + n;
              if depth <> height then add (page_where id) (Audit.Leaf_depth { depth; height });
              if n = 0 then begin
                if Rtree_nd.count tree > 0 then add (page_where id) Audit.Empty_node
              end
              else if depth > 1 && n < min_leaf_fill then
                add (page_where id) (Audit.Node_underfill { count = n; minimum = min_leaf_fill })
          | Node_nd.Internal ->
              if depth >= height then
                add (page_where id) (Audit.Internal_depth { depth; height });
              if n = 0 then add (page_where id) Audit.Empty_node
              else if depth > 1 && n < min_fanout then
                add (page_where id) (Audit.Node_underfill { count = n; minimum = min_fanout });
              Array.iter
                (fun e -> visit ~recorded:(Some (Entry_nd.box e)) (Entry_nd.id e) (depth + 1))
                (Node_nd.entries node))
    end
  in
  visit ~recorded:None (Rtree_nd.root tree) 1;
  if !entries <> Rtree_nd.count tree then
    add "tree" (Audit.Count_mismatch { expected = Rtree_nd.count tree; actual = !entries });
  if check_leaks then begin
    List.iter (fun p -> Hashtbl.replace visited p ()) reachable;
    for p = 0 to Pager.num_pages pager - 1 do
      if (not (Hashtbl.mem visited p)) && not (Pager.is_free pager p) then
        add (page_where p) Audit.Page_leaked
    done
  end;
  {
    Audit.violations = List.rev !violations;
    nodes = !nodes;
    leaves = !leaves;
    entries = !entries;
    pages_visited = Hashtbl.length visited;
  }

let check_pseudo ?(b = 113) ~dims t =
  let descs = ref [] in
  let add d = descs := d :: !descs in
  let rec subtree_entries t acc =
    match t with
    | Pseudo_nd.Leaf { entries; _ } -> entries :: acc
    | Pseudo_nd.Node { children; _ } ->
        List.fold_left (fun acc c -> subtree_entries c acc) acc children
  in
  let leaf_box_ok box entries =
    Array.length entries = 0
    || Hyperrect.equal box (Hyperrect.union_map ~f:Entry_nd.box entries)
  in
  let emit_leaf where ~box ~entries ~priority ~extreme =
    add
      {
        Audit.pd_where = where;
        pd_kind = Audit.Pseudo_leaf { size = Array.length entries; priority; extreme };
        pd_box_ok = leaf_box_ok box entries;
      }
  in
  let extreme_ok dir entries rest =
    Array.length entries = 0
    ||
    let cmp = Pseudo_nd.extreme_cmp ~dims dir in
    let worst =
      Array.fold_left (fun w e -> if cmp e w > 0 then e else w) entries.(0) entries
    in
    List.for_all (Array.for_all (fun r -> cmp worst r <= 0)) rest
  in
  let rec go where t =
    match t with
    | Pseudo_nd.Leaf { mbr = box; entries; priority } ->
        emit_leaf where ~box ~entries ~priority ~extreme:true
    | Pseudo_nd.Node { mbr = box; children } ->
        let box_ok =
          children <> []
          && Hyperrect.equal box
               (List.fold_left
                  (fun acc c -> Hyperrect.union acc (Pseudo_nd.mbr c))
                  (Pseudo_nd.mbr (List.hd children))
                  children)
        in
        add
          {
            Audit.pd_where = where;
            pd_kind = Audit.Pseudo_node { degree = List.length children };
            pd_box_ok = box_ok;
          };
        List.iteri
          (fun i c ->
            let where' = where ^ "/" ^ string_of_int i in
            match c with
            | Pseudo_nd.Leaf { mbr = box'; entries; priority } ->
                let extreme =
                  match priority with
                  | None -> true
                  | Some dir ->
                      let rest =
                        List.filteri (fun j _ -> j > i) children
                        |> List.fold_left (fun acc s -> subtree_entries s acc) []
                      in
                      extreme_ok dir entries rest
                in
                emit_leaf where' ~box:box' ~entries ~priority ~extreme
            | Pseudo_nd.Node _ -> go where' c)
          children
  in
  go "pseudo-nd" t;
  Audit.check_pseudo ~degree_limit:((2 * dims) + 2) ~leaf_capacity:b (List.rev !descs)
