(* The paged d-dimensional R-tree: window queries with per-level visit
   counts and structural validation, mirroring the 2-D Rtree. *)

module Hyperrect = Prt_geom.Hyperrect
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool

type t = {
  pool : Buffer_pool.t;
  dims : int;
  mutable root : int;
  mutable height : int;
  mutable count : int;
}

type query_stats = {
  mutable internal_visited : int;
  mutable leaf_visited : int;
  mutable matched : int;
}

let pool t = t.pool
let pager t = Buffer_pool.pager t.pool
let dims t = t.dims
let root t = t.root
let height t = t.height
let count t = t.count
let page_size t = Pager.page_size (pager t)
let capacity t = Node_nd.capacity ~page_size:(page_size t) ~dims:t.dims

let set_root t ~root ~height =
  t.root <- root;
  t.height <- height

let set_count t count = t.count <- count

let read_node t id = Node_nd.decode ~dims:t.dims (Buffer_pool.read t.pool id)

let write_node t id node =
  Buffer_pool.write t.pool id (Node_nd.encode ~page_size:(page_size t) ~dims:t.dims node)

let alloc_node t node =
  let id = Buffer_pool.alloc t.pool in
  write_node t id node;
  id

let create_empty ~dims pool =
  let page_size = Pager.page_size (Buffer_pool.pager pool) in
  let root = Buffer_pool.alloc pool in
  Buffer_pool.write pool root (Node_nd.encode ~page_size ~dims (Node_nd.make Node_nd.Leaf [||]));
  { pool; dims; root; height = 1; count = 0 }

let of_root ~pool ~dims ~root ~height ~count = { pool; dims; root; height; count }

(* Zero-copy descent, like the 2-D [Rtree.query]: pages are scanned in
   place through the {!Node_nd} cursors, so entries failing the window
   test allocate nothing.  The descent itself runs on a preallocated
   per-domain stack (no recursion, no per-node closure); children are
   pushed in entry order and the fresh segment reversed in place, so
   pages pop in exactly the old recursive preorder. *)
let stack_key = Domain.DLS.new_key (fun () -> ref (Array.make 64 0))

let query t window ~f =
  if Hyperrect.dims window <> t.dims then invalid_arg "Rtree_nd.query: dimension mismatch";
  let stats = { internal_visited = 0; leaf_visited = 0; matched = 0 } in
  let dims = t.dims in
  let stack = Domain.DLS.get stack_key in
  let sp = ref 0 in
  let push id =
    (if !sp = Array.length !stack then begin
       let grown = Array.make (2 * Array.length !stack) 0 in
       Array.blit !stack 0 grown 0 !sp;
       stack := grown
     end);
    !stack.(!sp) <- id;
    incr sp
  in
  push t.root;
  while !sp > 0 do
    decr sp;
    let buf = Buffer_pool.read t.pool !stack.(!sp) in
    match Node_nd.page_kind buf with
    | Node_nd.Leaf ->
        stats.leaf_visited <- stats.leaf_visited + 1;
        stats.matched <- stats.matched + Node_nd.iter_rects ~dims buf window ~f
    | Node_nd.Internal ->
        stats.internal_visited <- stats.internal_visited + 1;
        let sp0 = !sp in
        Node_nd.iter_children ~dims buf window ~f:push;
        let st = !stack in
        let i = ref sp0 and j = ref (!sp - 1) in
        while !i < !j do
          let tmp = st.(!i) in
          st.(!i) <- st.(!j);
          st.(!j) <- tmp;
          incr i;
          decr j
        done
  done;
  stats

let query_list t window =
  let acc = ref [] in
  let stats = query t window ~f:(fun e -> acc := e :: !acc) in
  (List.rev !acc, stats)

let query_count t window = query t window ~f:(fun _ -> ())

let iter t ~f =
  let rec visit id =
    let node = read_node t id in
    match Node_nd.kind node with
    | Node_nd.Leaf -> Array.iter f (Node_nd.entries node)
    | Node_nd.Internal -> Array.iter (fun e -> visit (Entry_nd.id e)) (Node_nd.entries node)
  in
  visit t.root

type structure = { nodes : int; leaves : int; entries : int; utilization : float }

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let validate t =
  let cap = capacity t in
  let nodes = ref 0 and leaves = ref 0 and entries = ref 0 in
  let rec visit id depth =
    incr nodes;
    let node = read_node t id in
    let n = Node_nd.length node in
    if n > cap then invalid "node %d holds %d entries, capacity %d" id n cap;
    match Node_nd.kind node with
    | Node_nd.Leaf ->
        if depth <> t.height then
          invalid "leaf %d at depth %d but tree height is %d" id depth t.height;
        incr leaves;
        entries := !entries + n;
        if n = 0 && t.count > 0 then invalid "empty leaf %d in non-empty tree" id;
        if n = 0 then None else Some (Node_nd.mbr node)
    | Node_nd.Internal ->
        if depth >= t.height then
          invalid "internal node %d at depth %d but tree height is %d" id depth t.height;
        if n = 0 then invalid "empty internal node %d" id;
        Array.iter
          (fun e ->
            match visit (Entry_nd.id e) (depth + 1) with
            | Some child_mbr ->
                if not (Hyperrect.equal child_mbr (Entry_nd.box e)) then
                  invalid "node %d records a stale MBR for child %d" id (Entry_nd.id e)
            | None -> invalid "node %d points at empty subtree %d" id (Entry_nd.id e))
          (Node_nd.entries node);
        Some (Node_nd.mbr node)
  in
  ignore (visit t.root 1);
  if !entries <> t.count then
    invalid "tree metadata says %d entries but leaves hold %d" t.count !entries;
  {
    nodes = !nodes;
    leaves = !leaves;
    entries = !entries;
    utilization =
      (if !leaves = 0 then 0.0 else float_of_int !entries /. float_of_int (!leaves * cap));
  }
