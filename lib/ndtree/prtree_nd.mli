(** The d-dimensional PR-tree (Theorem 2 of the paper): bulk loading
    with worst-case-optimal [O((N/B)^(1-1/d) + T/B)] window queries. *)

val load : dims:int -> Prt_storage.Buffer_pool.t -> Entry_nd.t array -> Rtree_nd.t
(** Staged in-memory construction over boxes of dimensionality [dims].
    Raises [Invalid_argument] if a page cannot hold at least two
    [dims]-dimensional entries. *)
