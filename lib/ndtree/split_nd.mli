(** Node splitting for dynamic d-dimensional R-tree updates (Guttman's
    algorithms with volumes in place of areas). *)

type algorithm = Linear | Quadratic

val algorithm_name : algorithm -> string

val split :
  algorithm -> min_fill:int -> Entry_nd.t array -> Entry_nd.t array * Entry_nd.t array
(** Partition an overflowing node's entries into two groups of at least
    [min_fill] (capped at half). Raises [Invalid_argument] on fewer than
    two entries. *)
