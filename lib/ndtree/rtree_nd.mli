(** The paged d-dimensional R-tree: window queries with per-level visit
    counts and structural validation (the d-D analogue of
    {!Prt_rtree.Rtree}). *)

type t

type query_stats = {
  mutable internal_visited : int;
  mutable leaf_visited : int;
  mutable matched : int;
}

val create_empty : dims:int -> Prt_storage.Buffer_pool.t -> t

val of_root :
  pool:Prt_storage.Buffer_pool.t -> dims:int -> root:int -> height:int -> count:int -> t

val pool : t -> Prt_storage.Buffer_pool.t
val pager : t -> Prt_storage.Pager.t
val dims : t -> int
val root : t -> int
val height : t -> int
val count : t -> int
val page_size : t -> int
val capacity : t -> int

val set_root : t -> root:int -> height:int -> unit
(** Repoint the tree (used by the update algorithms). *)

val set_count : t -> int -> unit

val read_node : t -> int -> Node_nd.t
val write_node : t -> int -> Node_nd.t -> unit
val alloc_node : t -> Node_nd.t -> int

val query : t -> Prt_geom.Hyperrect.t -> f:(Entry_nd.t -> unit) -> query_stats
(** Raises [Invalid_argument] if the window's dimensionality differs
    from the tree's. *)

val query_list : t -> Prt_geom.Hyperrect.t -> Entry_nd.t list * query_stats
val query_count : t -> Prt_geom.Hyperrect.t -> query_stats
val iter : t -> f:(Entry_nd.t -> unit) -> unit

type structure = { nodes : int; leaves : int; entries : int; utilization : float }

exception Invalid of string

val validate : t -> structure
(** Check the R-tree invariants; raises {!Invalid} on violation. *)
