(** Entries of the d-dimensional R-tree: a box plus a 32-bit payload.

    On-page encoding is [16d + 4] bytes ([d = 2] gives the paper's
    36-byte record). *)

type t = { box : Prt_geom.Hyperrect.t; id : int }

val make : Prt_geom.Hyperrect.t -> int -> t
val box : t -> Prt_geom.Hyperrect.t
val id : t -> int
val equal : t -> t -> bool

val size : dims:int -> int
(** Encoded size in bytes. *)

val write : dims:int -> bytes -> int -> t -> unit
(** Raises [Invalid_argument] on a dimension mismatch. *)

val read : dims:int -> bytes -> int -> t

val compare_dim : int -> t -> t -> int
(** Total order on kd-coordinate [dim] (0..2d-1: low sides then high
    sides), ties broken by the remaining coordinates and the id. *)

val pp : Format.formatter -> t -> unit
