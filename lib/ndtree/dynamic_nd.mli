(** Dynamic updates for the d-dimensional R-tree: Guttman insertion and
    deletion with tree condensation (the d-D mirror of
    {!Prt_rtree.Dynamic}). *)

type config = { split_algorithm : Split_nd.algorithm; min_fill_fraction : float }

val default_config : config
(** Quadratic split, 40% minimum fill. *)

val insert : ?config:config -> Rtree_nd.t -> Entry_nd.t -> unit

val delete : ?config:config -> Rtree_nd.t -> Entry_nd.t -> bool
(** Delete the entry matching by box and id; underfull nodes are
    dissolved and their entries reinserted at their original level.
    Returns [false] if absent. *)
