(** The d-dimensional pseudo-PR-tree (Section 2.3 of the paper): a
    2d-dimensional kd-tree with 2d priority leaves per node. *)

type t =
  | Leaf of {
      mbr : Prt_geom.Hyperrect.t;
      entries : Entry_nd.t array;
      priority : int option;
          (** the direction (0..2d-1) this leaf is extreme in, or [None]
              for an ordinary kd-leaf *)
    }
  | Node of { mbr : Prt_geom.Hyperrect.t; children : t list }

val build : ?b:int -> dims:int -> Entry_nd.t array -> t
(** Raises [Invalid_argument] on empty input, [b < 1], or entries of the
    wrong dimensionality. *)

val mbr : t -> Prt_geom.Hyperrect.t
val leaves : t -> Entry_nd.t array list

val fold_leaves :
  t -> init:'acc -> f:('acc -> entries:Entry_nd.t array -> priority:int option -> 'acc) -> 'acc

val size : t -> int

val extreme_cmp : dims:int -> int -> Entry_nd.t -> Entry_nd.t -> int
(** Total order putting the most extreme entry of a priority direction
    first. *)

val validate : ?b:int -> dims:int -> t -> unit
(** Structural invariants (degree at most 2d+2, leaf bounds, exact
    MBRs); raises [Failure] on violation. *)
