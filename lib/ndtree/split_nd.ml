(* Node splitting in d dimensions: Guttman's quadratic split with
   volumes in place of areas (the standard generalization), plus the
   linear split for cheap updates. *)

module Hyperrect = Prt_geom.Hyperrect

type algorithm = Linear | Quadratic

let algorithm_name = function Linear -> "linear" | Quadratic -> "quadratic"

let enlargement box extra =
  Hyperrect.volume (Hyperrect.union box extra) -. Hyperrect.volume box

type groups = {
  mutable b1 : Hyperrect.t;
  mutable b2 : Hyperrect.t;
  mutable l1 : Entry_nd.t list;
  mutable l2 : Entry_nd.t list;
  mutable n1 : int;
  mutable n2 : int;
}

let distribute ~min_fill ~pick_next entries seed1 seed2 =
  let n = Array.length entries in
  let g =
    {
      b1 = Entry_nd.box entries.(seed1);
      b2 = Entry_nd.box entries.(seed2);
      l1 = [ entries.(seed1) ];
      l2 = [ entries.(seed2) ];
      n1 = 1;
      n2 = 1;
    }
  in
  let assigned = Array.make n false in
  assigned.(seed1) <- true;
  assigned.(seed2) <- true;
  let remaining = ref (n - 2) in
  let take_1 i =
    g.l1 <- entries.(i) :: g.l1;
    g.b1 <- Hyperrect.union g.b1 (Entry_nd.box entries.(i));
    g.n1 <- g.n1 + 1;
    assigned.(i) <- true;
    decr remaining
  and take_2 i =
    g.l2 <- entries.(i) :: g.l2;
    g.b2 <- Hyperrect.union g.b2 (Entry_nd.box entries.(i));
    g.n2 <- g.n2 + 1;
    assigned.(i) <- true;
    decr remaining
  in
  while !remaining > 0 do
    if g.n1 + !remaining <= min_fill then
      Array.iteri (fun i _ -> if not assigned.(i) then take_1 i) entries
    else if g.n2 + !remaining <= min_fill then
      Array.iteri (fun i _ -> if not assigned.(i) then take_2 i) entries
    else begin
      let i = pick_next g assigned in
      let b = Entry_nd.box entries.(i) in
      let d1 = enlargement g.b1 b and d2 = enlargement g.b2 b in
      if d1 < d2 then take_1 i
      else if d2 < d1 then take_2 i
      else if Hyperrect.volume g.b1 < Hyperrect.volume g.b2 then take_1 i
      else if Hyperrect.volume g.b2 < Hyperrect.volume g.b1 then take_2 i
      else if g.n1 <= g.n2 then take_1 i
      else take_2 i
    end
  done;
  (Array.of_list g.l1, Array.of_list g.l2)

let quadratic ~min_fill entries =
  let n = Array.length entries in
  let seed1 = ref 0 and seed2 = ref 1 and worst = ref neg_infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let bi = Entry_nd.box entries.(i) and bj = Entry_nd.box entries.(j) in
      let waste =
        Hyperrect.volume (Hyperrect.union bi bj) -. Hyperrect.volume bi -. Hyperrect.volume bj
      in
      if waste > !worst then begin
        worst := waste;
        seed1 := i;
        seed2 := j
      end
    done
  done;
  let pick_next g assigned =
    let pick = ref (-1) and pick_diff = ref neg_infinity in
    Array.iteri
      (fun i e ->
        if not assigned.(i) then begin
          let b = Entry_nd.box e in
          let diff = Float.abs (enlargement g.b1 b -. enlargement g.b2 b) in
          if diff > !pick_diff then begin
            pick_diff := diff;
            pick := i
          end
        end)
      entries;
    !pick
  in
  distribute ~min_fill ~pick_next entries !seed1 !seed2

let linear ~min_fill entries =
  let dims = Hyperrect.dims (Entry_nd.box entries.(0)) in
  let best_sep = ref neg_infinity and seed1 = ref 0 and seed2 = ref 1 in
  for d = 0 to dims - 1 do
    let hi_lo = ref 0 and lo_hi = ref 0 in
    let wmin = ref infinity and wmax = ref neg_infinity in
    Array.iteri
      (fun i e ->
        let b = Entry_nd.box e in
        if Hyperrect.lo b d > Hyperrect.lo (Entry_nd.box entries.(!hi_lo)) d then hi_lo := i;
        if Hyperrect.hi b d < Hyperrect.hi (Entry_nd.box entries.(!lo_hi)) d then lo_hi := i;
        wmin := Float.min !wmin (Hyperrect.lo b d);
        wmax := Float.max !wmax (Hyperrect.hi b d))
      entries;
    let width = !wmax -. !wmin in
    let sep =
      Hyperrect.lo (Entry_nd.box entries.(!hi_lo)) d
      -. Hyperrect.hi (Entry_nd.box entries.(!lo_hi)) d
    in
    let normalized = if width > 0.0 then sep /. width else neg_infinity in
    if normalized > !best_sep && !hi_lo <> !lo_hi then begin
      best_sep := normalized;
      seed1 := !hi_lo;
      seed2 := !lo_hi
    end
  done;
  if !seed1 = !seed2 then seed2 := if !seed1 = 0 then 1 else 0;
  let pick_next _g assigned =
    let pick = ref (-1) in
    (try
       Array.iteri
         (fun i _ ->
           if not assigned.(i) then begin
             pick := i;
             raise Exit
           end)
         entries
     with Exit -> ());
    !pick
  in
  distribute ~min_fill ~pick_next entries !seed1 !seed2

let split algorithm ~min_fill entries =
  let n = Array.length entries in
  if n < 2 then invalid_arg "Split_nd.split: need at least two entries";
  let min_fill = max 1 (min min_fill (n / 2)) in
  match algorithm with Quadratic -> quadratic ~min_fill entries | Linear -> linear ~min_fill entries
