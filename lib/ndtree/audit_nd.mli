(** The d-dimensional mirror of [Prt_rtree.Audit]: same violation
    vocabulary and report type, applied to paged {!Rtree_nd} trees and
    in-memory {!Pseudo_nd} trees. *)

module Audit := Prt_rtree.Audit

val check :
  ?min_leaf_fill:int ->
  ?min_fanout:int ->
  ?check_leaks:bool ->
  ?reachable:int list ->
  Rtree_nd.t ->
  Audit.report
(** Audit a paged d-dimensional R-tree; see [Prt_rtree.Audit.check] for
    the parameters and the invariant catalogue. *)

val check_pseudo : ?b:int -> dims:int -> Pseudo_nd.t -> Audit.violation list
(** Audit an in-memory d-dimensional pseudo-PR-tree: degree at most
    [2d + 2], leaf occupancy in [1, b], exact boxes, and priority-leaf
    extremeness in each of the [2d] directions. *)
