(* Entries of the d-dimensional R-tree: a box plus a 32-bit payload.
   On-page encoding: 2d little-endian float64 coordinates (lows then
   highs) and an int32 — 16d + 4 bytes, the d-dimensional analogue of
   the paper's 36-byte record (d = 2 gives exactly 36). *)

module Hyperrect = Prt_geom.Hyperrect
module Page = Prt_storage.Page

type t = { box : Hyperrect.t; id : int }

let make box id = { box; id }
let box e = e.box
let id e = e.id

let equal a b = a.id = b.id && Hyperrect.equal a.box b.box

let size ~dims = (16 * dims) + 4

let write ~dims buf off e =
  if Hyperrect.dims e.box <> dims then invalid_arg "Entry_nd.write: dimension mismatch";
  for i = 0 to dims - 1 do
    Page.set_f64 buf (off + (8 * i)) (Hyperrect.lo e.box i);
    Page.set_f64 buf (off + (8 * (dims + i))) (Hyperrect.hi e.box i)
  done;
  Page.set_i32 buf (off + (16 * dims)) e.id

let read ~dims buf off =
  let lo = Array.init dims (fun i -> Page.get_f64 buf (off + (8 * i))) in
  let hi = Array.init dims (fun i -> Page.get_f64 buf (off + (8 * (dims + i)))) in
  { box = Hyperrect.make ~lo ~hi; id = Page.get_i32 buf (off + (16 * dims)) }

(* Total order on kd-coordinate [dim] (0..2d-1: lows then highs), ties
   broken by the remaining coordinates and the id. *)
let compare_dim dim a b =
  let c = Float.compare (Hyperrect.coord dim a.box) (Hyperrect.coord dim b.box) in
  if c <> 0 then c
  else begin
    let d = Hyperrect.dims a.box in
    let rec tie i =
      if i = 2 * d then Int.compare a.id b.id
      else begin
        let c = Float.compare (Hyperrect.coord i a.box) (Hyperrect.coord i b.box) in
        if c <> 0 then c else tie (i + 1)
      end
    in
    tie 0
  end

let pp ppf e = Fmt.pf ppf "#%d:%a" e.id Hyperrect.pp e.box
