(* The d-dimensional pseudo-PR-tree (Section 2.3): a 2d-dimensional
   kd-tree over boxes-as-points, each node carrying 2d priority leaves —
   the b boxes most extreme in each of the 2d standard directions
   (minimal low side per dimension, then maximal high side per
   dimension), each drawn from the remainder. Window queries visit
   O((N/b)^(1-1/d) + T/b) nodes (the Theorem 2 analysis). *)

module Hyperrect = Prt_geom.Hyperrect
module Select = Prt_util.Select

type t =
  | Leaf of { mbr : Hyperrect.t; entries : Entry_nd.t array; priority : int option }
  | Node of { mbr : Hyperrect.t; children : t list }

let mbr = function Leaf { mbr; _ } -> mbr | Node { mbr; _ } -> mbr

(* "Smallest first" = "most extreme first": low sides ascending, high
   sides descending. [dim] ranges over 0..2d-1. *)
let extreme_cmp ~dims dim =
  if dim < dims then Entry_nd.compare_dim dim else fun a b -> Entry_nd.compare_dim dim b a

let leaf ?priority entries =
  Leaf { mbr = Hyperrect.union_map ~f:Entry_nd.box entries; entries; priority }

let build ?(b = 113) ~dims entries =
  if b < 1 then invalid_arg "Pseudo_nd.build: b must be >= 1";
  if Array.length entries = 0 then invalid_arg "Pseudo_nd.build: empty input";
  Array.iter
    (fun e ->
      if Hyperrect.dims (Entry_nd.box e) <> dims then
        invalid_arg "Pseudo_nd.build: dimension mismatch")
    entries;
  let kd_dims = 2 * dims in
  let arr = Array.copy entries in
  let rec go lo hi depth =
    if hi - lo <= b then leaf (Array.sub arr lo (hi - lo))
    else begin
      let box = Hyperrect.union_map ~lo ~hi ~f:Entry_nd.box arr in
      (* Peel the 2d priority leaves. *)
      let rev_leaves = ref [] and lo' = ref lo in
      let dim = ref 0 in
      while !dim < kd_dims && !lo' < hi do
        let k = min b (hi - !lo') in
        Select.smallest_to_front ~cmp:(extreme_cmp ~dims !dim) arr !lo' hi k;
        rev_leaves := leaf ~priority:!dim (Array.sub arr !lo' k) :: !rev_leaves;
        lo' := !lo' + k;
        incr dim
      done;
      let lo' = !lo' in
      let children =
        if lo' >= hi then List.rev !rev_leaves
        else if hi - lo' <= b then List.rev_append !rev_leaves [ leaf (Array.sub arr lo' (hi - lo')) ]
        else begin
          let dim = depth mod kd_dims in
          let mid = lo' + ((hi - lo') / 2) in
          Select.partition_at ~cmp:(Entry_nd.compare_dim dim) arr lo' hi mid;
          let left = go lo' mid (depth + 1) in
          let right = go mid hi (depth + 1) in
          List.rev_append !rev_leaves [ left; right ]
        end
      in
      Node { mbr = box; children }
    end
  in
  go 0 (Array.length arr) 0

let rec fold_leaves t ~init ~f =
  match t with
  | Leaf { entries; priority; _ } -> f init ~entries ~priority
  | Node { children; _ } -> List.fold_left (fun acc c -> fold_leaves c ~init:acc ~f) init children

let leaves t =
  List.rev (fold_leaves t ~init:[] ~f:(fun acc ~entries ~priority:_ -> entries :: acc))

let rec size t =
  match t with
  | Leaf { entries; _ } -> Array.length entries
  | Node { children; _ } -> List.fold_left (fun acc c -> acc + size c) 0 children

let validate ?(b = 113) ~dims t =
  let check cond fmt =
    Format.kasprintf (fun s -> if not cond then failwith ("Pseudo_nd.validate: " ^ s)) fmt
  in
  let rec go t =
    match t with
    | Leaf { entries; _ } ->
        check (Array.length entries > 0) "empty leaf";
        check (Array.length entries <= b) "leaf overflows b"
    | Node { children; mbr = box } ->
        check (children <> []) "childless node";
        check (List.length children <= (2 * dims) + 2) "node degree exceeds 2d+2";
        let union =
          List.fold_left (fun acc c -> Hyperrect.union acc (mbr c)) (mbr (List.hd children)) children
        in
        check (Hyperrect.equal box union) "node MBR does not match its children";
        List.iter go children
  in
  go t
