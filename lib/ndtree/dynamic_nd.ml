(* Dynamic updates for the d-dimensional R-tree: Guttman insertion
   (ChooseLeaf by least volume enlargement) and deletion with tree
   condensation — the d-dimensional mirror of {!Prt_rtree.Dynamic}. *)

module Hyperrect = Prt_geom.Hyperrect

type config = { split_algorithm : Split_nd.algorithm; min_fill_fraction : float }

let default_config = { split_algorithm = Split_nd.Quadratic; min_fill_fraction = 0.4 }

let min_fill t cfg =
  let m = int_of_float (cfg.min_fill_fraction *. float_of_int (Rtree_nd.capacity t)) in
  max 1 (min m (Rtree_nd.capacity t / 2))

type ins_result =
  | Updated of Hyperrect.t
  | Split_into of Entry_nd.t * Entry_nd.t

let append_entry entries e =
  let n = Array.length entries in
  let out = Array.make (n + 1) e in
  Array.blit entries 0 out 0 n;
  out

let enlargement box extra =
  Hyperrect.volume (Hyperrect.union box extra) -. Hyperrect.volume box

let choose_subtree entries box =
  let best = ref 0 and best_enl = ref infinity and best_vol = ref infinity in
  Array.iteri
    (fun i e ->
      let enl = enlargement (Entry_nd.box e) box in
      let vol = Hyperrect.volume (Entry_nd.box e) in
      if enl < !best_enl || (enl = !best_enl && vol < !best_vol) then begin
        best := i;
        best_enl := enl;
        best_vol := vol
      end)
    entries;
  !best

let rec insert_rec t cfg node_id entry ~above ~depth =
  let node = Rtree_nd.read_node t node_id in
  if Rtree_nd.height t - depth = above then begin
    let entries = append_entry (Node_nd.entries node) entry in
    if Array.length entries <= Rtree_nd.capacity t then begin
      let node = Node_nd.make (Node_nd.kind node) entries in
      Rtree_nd.write_node t node_id node;
      Updated (Node_nd.mbr node)
    end
    else begin
      let g1, g2 = Split_nd.split cfg.split_algorithm ~min_fill:(min_fill t cfg) entries in
      let n1 = Node_nd.make (Node_nd.kind node) g1 and n2 = Node_nd.make (Node_nd.kind node) g2 in
      Rtree_nd.write_node t node_id n1;
      let id2 = Rtree_nd.alloc_node t n2 in
      Split_into (Entry_nd.make (Node_nd.mbr n1) node_id, Entry_nd.make (Node_nd.mbr n2) id2)
    end
  end
  else begin
    let entries = Node_nd.entries node in
    let i = choose_subtree entries (Entry_nd.box entry) in
    match insert_rec t cfg (Entry_nd.id entries.(i)) entry ~above ~depth:(depth + 1) with
    | Updated child_mbr ->
        entries.(i) <- Entry_nd.make child_mbr (Entry_nd.id entries.(i));
        let node = Node_nd.make Node_nd.Internal entries in
        Rtree_nd.write_node t node_id node;
        Updated (Node_nd.mbr node)
    | Split_into (e1, e2) ->
        entries.(i) <- e1;
        let entries = append_entry entries e2 in
        if Array.length entries <= Rtree_nd.capacity t then begin
          let node = Node_nd.make Node_nd.Internal entries in
          Rtree_nd.write_node t node_id node;
          Updated (Node_nd.mbr node)
        end
        else begin
          let g1, g2 = Split_nd.split cfg.split_algorithm ~min_fill:(min_fill t cfg) entries in
          let n1 = Node_nd.make Node_nd.Internal g1 and n2 = Node_nd.make Node_nd.Internal g2 in
          Rtree_nd.write_node t node_id n1;
          let id2 = Rtree_nd.alloc_node t n2 in
          Split_into (Entry_nd.make (Node_nd.mbr n1) node_id, Entry_nd.make (Node_nd.mbr n2) id2)
        end
  end

let set_root = Rtree_nd.set_root

let insert_at t cfg entry ~above =
  if above < 0 || above >= Rtree_nd.height t then invalid_arg "Dynamic_nd.insert_at: bad level";
  match insert_rec t cfg (Rtree_nd.root t) entry ~above ~depth:1 with
  | Updated _ -> ()
  | Split_into (e1, e2) ->
      let root = Rtree_nd.alloc_node t (Node_nd.make Node_nd.Internal [| e1; e2 |]) in
      set_root t ~root ~height:(Rtree_nd.height t + 1)

let insert ?(config = default_config) t entry =
  insert_at t config entry ~above:0;
  Rtree_nd.set_count t (Rtree_nd.count t + 1)

type del_result = Not_found_here | Kept of Hyperrect.t | Dissolved

let remove_at arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

let delete ?(config = default_config) t target =
  let m = min_fill t config in
  let orphans = ref [] in
  let rec del node_id ~depth =
    let node = Rtree_nd.read_node t node_id in
    let entries = Node_nd.entries node in
    match Node_nd.kind node with
    | Node_nd.Leaf -> begin
        let found = ref (-1) in
        Array.iteri (fun i e -> if !found < 0 && Entry_nd.equal e target then found := i) entries;
        if !found < 0 then Not_found_here
        else begin
          let remaining = remove_at entries !found in
          let is_root = node_id = Rtree_nd.root t in
          if (not is_root) && Array.length remaining < m then begin
            Array.iter (fun e -> orphans := (e, 0) :: !orphans) remaining;
            Prt_storage.Buffer_pool.free (Rtree_nd.pool t) node_id;
            Dissolved
          end
          else begin
            let node = Node_nd.make Node_nd.Leaf remaining in
            Rtree_nd.write_node t node_id node;
            Kept
              (if Array.length remaining = 0 then Entry_nd.box target else Node_nd.mbr node)
          end
        end
      end
    | Node_nd.Internal -> begin
        let result = ref Not_found_here and child = ref (-1) in
        (try
           Array.iteri
             (fun i e ->
               if Hyperrect.contains (Entry_nd.box e) (Entry_nd.box target) then begin
                 match del (Entry_nd.id e) ~depth:(depth + 1) with
                 | Not_found_here -> ()
                 | r ->
                     result := r;
                     child := i;
                     raise Exit
               end)
             entries
         with Exit -> ());
        match !result with
        | Not_found_here -> Not_found_here
        | Kept child_mbr ->
            entries.(!child) <- Entry_nd.make child_mbr (Entry_nd.id entries.(!child));
            let node = Node_nd.make Node_nd.Internal entries in
            Rtree_nd.write_node t node_id node;
            Kept (Node_nd.mbr node)
        | Dissolved ->
            let remaining = remove_at entries !child in
            let is_root = node_id = Rtree_nd.root t in
            if (not is_root) && Array.length remaining < m then begin
              let above = Rtree_nd.height t - depth in
              Array.iter (fun e -> orphans := (e, above) :: !orphans) remaining;
              Prt_storage.Buffer_pool.free (Rtree_nd.pool t) node_id;
              Dissolved
            end
            else begin
              let node = Node_nd.make Node_nd.Internal remaining in
              Rtree_nd.write_node t node_id node;
              if Array.length remaining = 0 then Dissolved else Kept (Node_nd.mbr node)
            end
      end
  in
  let rec reinsert_as_data e ~above =
    if above = 0 then insert_at t config e ~above:0
    else begin
      let node = Rtree_nd.read_node t (Entry_nd.id e) in
      Prt_storage.Buffer_pool.free (Rtree_nd.pool t) (Entry_nd.id e);
      Array.iter (fun child -> reinsert_as_data child ~above:(above - 1)) (Node_nd.entries node)
    end
  in
  match del (Rtree_nd.root t) ~depth:1 with
  | Not_found_here -> false
  | Kept _ | Dissolved ->
      Rtree_nd.set_count t (Rtree_nd.count t - 1);
      let root_node = Rtree_nd.read_node t (Rtree_nd.root t) in
      if Node_nd.kind root_node = Node_nd.Internal && Node_nd.length root_node = 0 then begin
        Rtree_nd.write_node t (Rtree_nd.root t) (Node_nd.make Node_nd.Leaf [||]);
        set_root t ~root:(Rtree_nd.root t) ~height:1
      end;
      let sorted = List.sort (fun (_, a) (_, b) -> Int.compare a b) !orphans in
      List.iter
        (fun (e, above) ->
          if above < Rtree_nd.height t then insert_at t config e ~above
          else reinsert_as_data e ~above)
        sorted;
      let rec shrink () =
        if Rtree_nd.height t > 1 then begin
          let node = Rtree_nd.read_node t (Rtree_nd.root t) in
          if Node_nd.kind node = Node_nd.Internal && Node_nd.length node = 1 then begin
            let old_root = Rtree_nd.root t in
            set_root t
              ~root:(Entry_nd.id (Node_nd.entries node).(0))
              ~height:(Rtree_nd.height t - 1);
            Prt_storage.Buffer_pool.free (Rtree_nd.pool t) old_root;
            shrink ()
          end
        end
      in
      shrink ();
      true
