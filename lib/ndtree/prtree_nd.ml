(* The d-dimensional PR-tree (Theorem 2): staged bottom-up exactly like
   the planar case — each level is the set of leaves of a d-dimensional
   pseudo-PR-tree built on the previous level's bounding boxes. Window
   queries cost O((N/B)^(1-1/d) + T/B) I/Os. *)

module Buffer_pool = Prt_storage.Buffer_pool
module Pager = Prt_storage.Pager
module Trace = Prt_obs.Trace

let load ~dims pool entries =
  Trace.with_span "prtree_nd.load"
    ~args:[ ("n", Trace.Int (Array.length entries)); ("dims", Trace.Int dims) ]
  @@ fun () ->
  let page_size = Pager.page_size (Buffer_pool.pager pool) in
  let cap = Node_nd.capacity ~page_size ~dims in
  if cap < 2 then invalid_arg "Prtree_nd.load: page too small for this dimensionality";
  let count = Array.length entries in
  if count = 0 then Rtree_nd.create_empty ~dims pool
  else begin
    let write kind node_entries =
      let node = Node_nd.make kind node_entries in
      let id = Buffer_pool.alloc pool in
      Buffer_pool.write pool id (Node_nd.encode ~page_size ~dims node);
      Entry_nd.make (Node_nd.mbr node) id
    in
    let rec stage current ~kind ~height =
      if Array.length current <= cap then begin
        let root = write kind current in
        Rtree_nd.of_root ~pool ~dims ~root:(Entry_nd.id root) ~height ~count
      end
      else begin
        let level =
          Trace.with_span "prtree_nd.stage"
            ~args:[ ("level", Trace.Int (height - 1)); ("n", Trace.Int (Array.length current)) ]
            (fun () ->
              let pseudo = Pseudo_nd.build ~b:cap ~dims current in
              List.rev (List.rev_map (write kind) (Pseudo_nd.leaves pseudo)))
        in
        stage (Array.of_list level) ~kind:Node_nd.Internal ~height:(height + 1)
      end
    in
    stage entries ~kind:Node_nd.Leaf ~height:1
  end
