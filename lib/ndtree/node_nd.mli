(** On-page node codec of the d-dimensional R-tree. *)

type kind = Leaf | Internal

type t

val capacity : page_size:int -> dims:int -> int
val make : kind -> Entry_nd.t array -> t
val kind : t -> kind
val entries : t -> Entry_nd.t array
val length : t -> int

val mbr : t -> Prt_geom.Hyperrect.t
(** Raises [Invalid_argument] on an empty node. *)

val encode : page_size:int -> dims:int -> t -> bytes
val decode : dims:int -> bytes -> t

(** {1 Zero-copy cursors}

    Read-only iteration over an {e encoded} node page, mirroring the 2-D
    {!Prt_rtree.Node} cursors: the window test runs per dimension
    directly on the packed coordinate bytes with early exit, and heap
    values are materialized only for hits. *)

val page_kind : bytes -> kind
(** Kind tag of an encoded page. Raises [Invalid_argument] like
    {!decode} on a corrupt tag. *)

val page_length : bytes -> int
(** Entry count of an encoded page. *)

val iter_rects :
  dims:int -> bytes -> Prt_geom.Hyperrect.t -> f:(Entry_nd.t -> unit) -> int
(** Call [f] on each entry whose box intersects the window, in page
    order, materializing the {!Entry_nd.t} only on a hit; returns the
    hit count. *)

val iter_children : dims:int -> bytes -> Prt_geom.Hyperrect.t -> f:(int -> unit) -> unit
(** Call [f] on the child page id of each intersecting entry — the
    internal descent step, allocation-free. *)
