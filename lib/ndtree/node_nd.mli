(** On-page node codec of the d-dimensional R-tree. *)

type kind = Leaf | Internal

type t

val capacity : page_size:int -> dims:int -> int
val make : kind -> Entry_nd.t array -> t
val kind : t -> kind
val entries : t -> Entry_nd.t array
val length : t -> int

val mbr : t -> Prt_geom.Hyperrect.t
(** Raises [Invalid_argument] on an empty node. *)

val encode : page_size:int -> dims:int -> t -> bytes
val decode : dims:int -> bytes -> t
