(* The public umbrella API: everything a user of the library needs under
   one module, plus a few convenience constructors.  See README.md for a
   guided tour; each re-exported module carries its own documentation. *)

(* Geometry. *)
module Rect = Prt_geom.Rect
module Hyperrect = Prt_geom.Hyperrect

(* Deterministic randomness and small utilities. *)
module Rng = Prt_util.Rng
module Stats = Prt_util.Stats
module Table = Prt_util.Table

(* The simulated disk and caching, plus deterministic fault injection
   for storage-stress testing. *)
module Page = Prt_storage.Page
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Lru = Prt_storage.Lru
module Failpoint = Prt_storage.Failpoint
module Superblock = Prt_storage.Superblock
module Scrub = Prt_storage.Scrub
module Shard_cache = Prt_storage.Shard_cache

(* Online resilience: retry/backoff with a circuit breaker, the shared
   poisoned-page registry, and cooperative query deadlines. *)
module Retry = Prt_storage.Retry
module Quarantine = Prt_storage.Quarantine
module Deadline = Prt_util.Deadline

(* Hilbert curves. *)
module Hilbert2d = Prt_hilbert.Hilbert2d
module Hilbert_nd = Prt_hilbert.Hilbert_nd

(* The R-tree framework. *)
module Entry = Prt_rtree.Entry
module Node = Prt_rtree.Node
module Rtree = Prt_rtree.Rtree
module Split = Prt_rtree.Split
module Dynamic = Prt_rtree.Dynamic
module Knn = Prt_rtree.Knn
module Join = Prt_rtree.Join
module Query = Prt_rtree.Query

(* Batched multicore query execution (domain-sharded node cache +
   zero-copy leaf scans). *)
module Qexec = Prt_rtree.Qexec
module Parallel = Prt_util.Parallel

(* Bulk loaders: the paper's baselines plus STR, in-memory and external
   (I/O-counted) variants. *)
module Bulk = struct
  module Hilbert = Prt_rtree.Bulk_hilbert
  module Str = Prt_rtree.Bulk_str
  module Tgs = Prt_rtree.Bulk_tgs
  module Pack = Prt_rtree.Pack
  module External = Prt_rtree.Ext_load
end

(* Point-data baseline (Section 1.1 of the paper) and tree diagnostics. *)
module Kdbtree = Prt_rtree.Kdbtree
module Metrics = Prt_rtree.Metrics

(* The unified invariant audit (MBR tightness, leaf depth, fill bounds,
   page leaks, pseudo-node degree, priority-leaf extremeness). *)
module Audit = Prt_rtree.Audit

(* Crash-consistent persistent index files (shadow superblock commit +
   pre-image journal) and their fsck. *)
module Index_file = Prt_rtree.Index_file

(* The fully dynamic Hilbert R-tree (the paper's reference [16]). *)
module Hilbert_rtree = Prt_rtree.Hilbert_rtree

(* The Priority R-tree — the paper's contribution. *)
module Pseudo_prtree = Prt_prtree.Pseudo
module Prtree = Prt_prtree.Prtree
module Prtree_external = Prt_prtree.Ext_build

(* The d-dimensional PR-tree (Theorem 2). *)
module Ndtree = struct
  module Entry = Prt_ndtree.Entry_nd
  module Node = Prt_ndtree.Node_nd
  module Rtree = Prt_ndtree.Rtree_nd
  module Pseudo = Prt_ndtree.Pseudo_nd
  module Prtree = Prt_ndtree.Prtree_nd
  module Split = Prt_ndtree.Split_nd
  module Dynamic = Prt_ndtree.Dynamic_nd
  module Audit = Prt_ndtree.Audit_nd
end

(* Dynamization via the logarithmic method. *)
module Logmethod = Prt_logmethod.Logmethod

(* Its persistent, crash-safe production form: WAL-acknowledged inserts,
   on-disk PR-tree components, a CRC'd atomic-rename component manifest,
   fault-injected background merges.  [Fsops]/[Wal]/[Manifest] are the
   storage substrate it stands on. *)
module Lsm = Prt_logmethod.Lsm
module Fsops = Prt_storage.Fsops
module Wal = Prt_storage.Wal
module Manifest = Prt_storage.Manifest

(* Observability: span tracing (Chrome trace-event export), the
   domain-striped metrics registry, the always-on per-domain flight
   recorder, and the minimal JSON used by all three.  [Metrics] above
   is the R-tree *quality* metrics module; this is runtime telemetry. *)
module Obs = struct
  module Metrics = Prt_obs.Metrics
  module Trace = Prt_obs.Trace
  module Flight = Prt_obs.Flight
  module Json = Prt_obs.Json
end

(* The network query tier: wire protocol, select-loop server with
   quotas / shedding / graceful drain, blocking client, multi-domain
   load generator, and fault-injected sockets for chaos testing. *)
module Serve = struct
  module Wire = Prt_serve.Wire
  module Quota = Prt_serve.Quota
  module Chaos = Prt_serve.Chaos
  module Server = Prt_serve.Server
  module Client = Prt_serve.Client
  module Load_gen = Prt_serve.Load_gen
end

(* Workloads from the paper's evaluation. *)
module Datasets = Prt_workloads.Datasets
module Tiger = Prt_workloads.Tiger
module Queries = Prt_workloads.Queries

(* --- convenience constructors --- *)

(* A fresh in-memory pool with the paper's 4 KB pages. *)
let memory_pool ?(page_size = Pager.default_page_size) ?(cache_pages = 4096) () =
  Buffer_pool.create ~capacity:cache_pages (Pager.create_memory ~page_size ())

(* A file-backed pool for persistent indexes. *)
let file_pool ?(page_size = Pager.default_page_size) ?(cache_pages = 4096) path =
  Buffer_pool.create ~capacity:cache_pages (Pager.create_file ~page_size path)

(* An in-memory pool over an unreliable simulated disk: faults are
   injected per [config], transient ones absorbed by the pool's retry
   policy.  The storage-stress testing path. *)
let faulty_pool ?(page_size = Pager.default_page_size) ?(cache_pages = 4096) ?retry config =
  let pager = Pager.wrap_faulty (Pager.create_memory ~page_size ()) (Failpoint.create config) in
  Buffer_pool.create ~capacity:cache_pages ?retry pager

let entries_of_rects rects = Array.mapi (fun i r -> Entry.make r i) rects

(* Build a PR-tree over rectangles in one call — the quickstart path. *)
let prtree ?pool rects =
  let pool = match pool with Some p -> p | None -> memory_pool () in
  Prtree.load pool (entries_of_rects rects)
