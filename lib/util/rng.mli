(** Deterministic pseudo-random number generation (the xoshiro256
    star-star generator).

    Experiment workloads must be bit-for-bit reproducible, so all
    randomness in the repository flows through this module rather than
    [Stdlib.Random]. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed (expanded
    through splitmix64, so small seeds are fine). *)

val split : t -> t
(** [split t] derives a statistically independent generator, advancing
    [t]. Use it to give each workload component its own stream. *)

val next_int64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Rejection-sampled, so free
    of modulo bias. Raises [Invalid_argument] if [bound <= 0]. *)

val bool : t -> bool
(** Uniform coin flip. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)] with 53 bits of
    precision. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
