(* Plain-text table rendering for the benchmark harness: the harness
   prints the same rows/series as the paper's figures, and aligned
   columns keep that output readable in a terminal or a diff. *)

type align = Left | Right

let is_numeric s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = '%' || c = 'x') s

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?title ~header rows =
  let buf = Buffer.create 256 in
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  (* Right-align a column iff every body cell in it looks numeric. *)
  let aligns =
    Array.init ncols (fun i ->
        let numeric =
          rows <> []
          && List.for_all
               (fun row -> match List.nth_opt row i with Some c -> is_numeric c | None -> true)
               rows
        in
        if numeric then Right else Left)
  in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad aligns.(i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  emit_row header;
  let rule = List.map (fun _ -> "") header in
  ignore rule;
  Buffer.add_string buf (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?title ~header rows = print_string (render ?title ~header rows)
