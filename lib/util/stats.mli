(** Descriptive statistics for experiment measurements. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation *)
  min : float;
  max : float;
  total : float;
}

val mean : float array -> float
(** Arithmetic mean; [0.] on the empty array. *)

val stddev : float array -> float
(** Sample standard deviation; [0.] for fewer than two values. *)

val summarize : float array -> summary
(** One-pass summary of a measurement series. *)

val percentile : float array -> float -> float
(** [percentile values p] with linear interpolation, [p] in [\[0,100\]].
    Raises [Invalid_argument] on an empty array or out-of-range [p]. *)

val pp_summary : Format.formatter -> summary -> unit
