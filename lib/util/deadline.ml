(* Cooperative deadlines over a swappable clock.

   A deadline is a point on a monotonically advancing clock; work that
   honours one polls [expired] at natural cancellation points (node
   visits, retry backoffs) rather than being preempted.  The clock
   itself is indirected through a process-global function so tests can
   install a *virtual* clock and advance it deterministically from
   fault-injection hooks — deadline and circuit-breaker paths then
   exercise without real sleeps.

   The virtual clock is installed and advanced from a single domain
   (test setup / the fault-injection hooks of a single-domain pager);
   concurrent query workers only ever read it, so a plain ref is
   enough. *)

type t = Never | At of float  (* absolute seconds on the current clock *)

(* The swappable clock.  [Unix.gettimeofday] stands in for a monotonic
   clock: the process never moves the wall clock during a query, and the
   virtual clock replaces it wherever determinism matters. *)
let real_clock () = Unix.gettimeofday ()
let virtual_now = ref 0.0
let virtual_installed = ref false
let clock = ref real_clock

let now () = !clock ()

let install_virtual ?(at = 0.0) () =
  virtual_now := at;
  virtual_installed := true;
  clock := fun () -> !virtual_now

let uninstall_virtual () =
  virtual_installed := false;
  clock := real_clock

let virtual_active () = !virtual_installed

(* Advance the virtual clock by [ms]; a no-op on the real clock so
   production code can call it unconditionally from simulated-latency
   hooks. *)
let advance_ms ms = if !virtual_installed then virtual_now := !virtual_now +. (ms /. 1000.0)

let none = Never

let after_ms ms =
  if ms < 0.0 then invalid_arg "Deadline.after_ms: negative budget";
  At (now () +. (ms /. 1000.0))

let at t = At t
let expired = function Never -> false | At t -> now () >= t

let remaining_ms = function
  | Never -> infinity
  | At t -> Float.max 0.0 ((t -. now ()) *. 1000.0)

let pp ppf = function
  | Never -> Fmt.string ppf "never"
  | At _ as d -> Fmt.pf ppf "%.1fms left" (remaining_ms d)
