(* In-place selection (quickselect) used by the kd-style median splits and
   the priority-leaf extraction of the pseudo-PR-tree.  Selection is the
   performance-critical primitive of PR-tree construction: extracting the
   B most extreme rectangles and the median of the remainder must not pay
   a full sort at every node. *)

let swap arr i j =
  let tmp = arr.(i) in
  arr.(i) <- arr.(j);
  arr.(j) <- tmp

(* Deterministic pivot scrambling: a cheap LCG keyed on the range bounds
   avoids quadratic behaviour on crafted inputs while keeping runs
   reproducible. *)
let pivot_index lo hi =
  let span = hi - lo in
  let h = (lo * 2654435761 + hi * 40503) land max_int in
  lo + (h mod span)

let rec partition_at ~cmp arr lo hi n =
  (* Establish: arr.(lo..n) <= arr.(n) <= arr.(n..hi), for lo <= n < hi. *)
  if hi - lo > 1 then begin
    let p = pivot_index lo hi in
    swap arr p lo;
    let pivot = arr.(lo) in
    (* Hoare-style partition of arr[lo+1 .. hi). *)
    let i = ref (lo + 1) and j = ref (hi - 1) in
    while !i <= !j do
      while !i <= !j && cmp arr.(!i) pivot < 0 do incr i done;
      while !i <= !j && cmp arr.(!j) pivot > 0 do decr j done;
      if !i < !j then begin
        swap arr !i !j;
        incr i;
        decr j
      end
      else if !i = !j then incr i
    done;
    let mid = !j in
    swap arr lo mid;
    if n < mid then partition_at ~cmp arr lo mid n
    else if n > mid then partition_at ~cmp arr (mid + 1) hi n
  end

let select ~cmp arr lo hi n =
  if not (lo <= n && n < hi && hi <= Array.length arr) then
    invalid_arg "Select.select: index out of range";
  partition_at ~cmp arr lo hi n;
  arr.(n)

let smallest_to_front ~cmp arr lo hi k =
  if k < 0 || lo + k > hi then invalid_arg "Select.smallest_to_front";
  if k > 0 && lo + k < hi then partition_at ~cmp arr lo hi (lo + k - 1)

let median ~cmp arr lo hi =
  if hi <= lo then invalid_arg "Select.median: empty range";
  let n = lo + ((hi - lo - 1) / 2) in
  select ~cmp arr lo hi n
