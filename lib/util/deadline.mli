(** Cooperative deadlines over a swappable (virtualisable) clock.

    A deadline is an absolute point on the clock; cancellation is
    cooperative — long-running work polls {!expired} at natural
    checkpoints (one R-tree node visit, one retry backoff) and unwinds
    with whatever partial answer it has.  Nothing here sleeps or
    preempts.

    For deterministic tests the process clock can be replaced by a
    {e virtual} one: {!install_virtual} freezes time under test control
    and {!advance_ms} moves it forward — fault-injection latency hooks
    ({!Prt_storage.Failpoint} delays, retry backoff) call {!advance_ms}
    unconditionally, so with the virtual clock installed simulated slow
    I/O really does consume deadline budget, and without it the calls
    are no-ops. *)

type t

val none : t
(** Never expires; {!expired} is [false] forever. *)

val after_ms : float -> t
(** [after_ms b] expires [b] milliseconds from now on the current clock.
    Raises [Invalid_argument] on a negative budget. *)

val at : float -> t
(** A deadline at an absolute clock reading (seconds). *)

val expired : t -> bool
val remaining_ms : t -> float
(** [infinity] for {!none}, else milliseconds left (clamped at 0). *)

val now : unit -> float
(** Current clock reading in seconds (virtual if installed). *)

val install_virtual : ?at:float -> unit -> unit
(** Replace the process clock with a virtual one starting at [at]
    (default 0) seconds.  Deadlines taken before the switch are
    meaningless across it — take them after. *)

val uninstall_virtual : unit -> unit
val virtual_active : unit -> bool

val advance_ms : float -> unit
(** Advance the virtual clock by the given milliseconds; a no-op when
    the real clock is active, so simulated-latency hooks may call it
    unconditionally. *)

val pp : Format.formatter -> t -> unit
