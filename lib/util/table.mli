(** Aligned plain-text tables for benchmark output. *)

val render : ?title:string -> header:string list -> string list list -> string
(** [render ~header rows] lays the cells out in aligned columns
    (numeric-looking columns right-aligned) with a separator line under
    the header, and returns the result. *)

val print : ?title:string -> header:string list -> string list list -> unit
(** [print] is [render] followed by [print_string]. *)
