(* Deterministic, splittable pseudo-random number generation.

   All experiment workloads must be reproducible across runs and machines,
   so we do not use [Stdlib.Random]; instead we implement xoshiro256**
   seeded through splitmix64 (the initialization recommended by the
   xoshiro authors).  The generator state is explicit, making it easy to
   derive independent streams for independent workload components. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Derive an independent stream: reseed a fresh generator from the
     parent's output via splitmix64 so the child does not share state. *)
  let state = ref (next_int64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let float t bound =
  (* 53 random mantissa bits mapped to [0, bound). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0) *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then loop ()
    else Int64.to_int v
  in
  loop ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float_range t lo hi =
  if hi < lo then invalid_arg "Rng.float_range: empty range";
  lo +. float t (hi -. lo)

let gaussian t =
  (* Box-Muller; one value per call keeps the state evolution simple. *)
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
