(* Multicore helpers (OCaml 5 domains) for the CPU-heavy parts of bulk
   loading: sorting keyed entries and building independent pseudo-PR
   subtrees.  Parallelism never touches the storage layer (pagers and
   buffer pools are not thread-safe) — only pure array work is forked,
   and all results are deterministic: the same comparator produces the
   same permutation regardless of how the work was split. *)

let default_domains () = max 1 (min 8 (Domain.recommended_domain_count () - 1))

(* Run two closures, the first on a fresh domain when [parallel]. Any
   exception is re-raised in the caller. *)
let both ~parallel f g =
  if parallel then begin
    let df = Domain.spawn f in
    let gv = g () in
    let fv = Domain.join df in
    (fv, gv)
  end
  else (f (), g ())

(* In-place parallel merge sort: split into [domains] runs, sort each on
   its own domain, then k-way merge back. Falls back to [Array.sort]
   when the input is small or domains <= 1. *)
let sort ?(domains = default_domains ()) ~cmp arr =
  let n = Array.length arr in
  if domains <= 1 || n < 4096 then Array.sort cmp arr
  else begin
    let parts = min domains (max 2 (n / 2048)) in
    let base = n / parts and extra = n mod parts in
    let bounds =
      Array.init (parts + 1) (fun i -> (i * base) + min i extra)
    in
    let runs =
      Array.init parts (fun i ->
          let lo = bounds.(i) and hi = bounds.(i + 1) in
          Array.sub arr lo (hi - lo))
    in
    let sorters =
      Array.map (fun run -> Domain.spawn (fun () -> Array.sort cmp run)) runs
    in
    Array.iter Domain.join sorters;
    (* k-way merge of the sorted runs back into [arr]. *)
    let heap = Pqueue.create (fun (a, _, _) (b, _, _) -> cmp a b) in
    Array.iteri (fun i run -> if Array.length run > 0 then Pqueue.add heap (run.(0), i, 0)) runs;
    let out = ref 0 in
    let rec drain () =
      match Pqueue.pop heap with
      | None -> ()
      | Some (v, i, j) ->
          arr.(!out) <- v;
          incr out;
          if j + 1 < Array.length runs.(i) then Pqueue.add heap (runs.(i).(j + 1), i, j + 1);
          drain ()
    in
    drain ();
    assert (!out = n)
  end
