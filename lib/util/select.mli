(** In-place selection on array ranges (expected linear time).

    All functions operate on the half-open range [\[lo, hi)] of the array
    and permute elements in place. They are the workhorses of
    pseudo-PR-tree construction: priority-leaf extraction and kd median
    splits. *)

val partition_at : cmp:('a -> 'a -> int) -> 'a array -> int -> int -> int -> unit
(** [partition_at ~cmp arr lo hi n] permutes [\[lo, hi)] so that the
    element at index [n] is the one a full sort would put there, every
    element of [\[lo, n)] compares [<=] to it and every element of
    [(n, hi)] compares [>=] to it. Requires [lo <= n < hi]. *)

val select : cmp:('a -> 'a -> int) -> 'a array -> int -> int -> int -> 'a
(** [select ~cmp arr lo hi n] is [partition_at] followed by reading
    [arr.(n)]: the order statistic of rank [n - lo] within the range.
    Raises [Invalid_argument] on a bad range. *)

val smallest_to_front : cmp:('a -> 'a -> int) -> 'a array -> int -> int -> int -> unit
(** [smallest_to_front ~cmp arr lo hi k] moves the [k] smallest elements
    of [\[lo, hi)] (by [cmp], in arbitrary internal order) into
    [\[lo, lo+k)]. Used to peel priority leaves off a rectangle set. *)

val median : cmp:('a -> 'a -> int) -> 'a array -> int -> int -> 'a
(** [median ~cmp arr lo hi] selects the lower median of the range and
    leaves the range partitioned around it. *)
