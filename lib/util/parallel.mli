(** Multicore helpers (OCaml 5 domains) for CPU-heavy bulk-loading
    phases. Only pure array work is parallelized; results are
    deterministic. *)

val default_domains : unit -> int
(** [min 8 (recommended - 1)], at least 1. *)

val both : parallel:bool -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Run two closures, the first on a fresh domain when [parallel];
    otherwise sequentially. Exceptions propagate to the caller. *)

val sort : ?domains:int -> cmp:('a -> 'a -> int) -> 'a array -> unit
(** In-place parallel merge sort ([Array.sort] for small inputs or
    [domains <= 1]). Not stable (neither is [Array.sort]'s contract for
    heapsort); use a total order. *)
