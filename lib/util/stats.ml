(* Small descriptive-statistics helpers for the benchmark harness. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

let mean values =
  let n = Array.length values in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 values /. float_of_int n

let stddev values =
  let n = Array.length values in
  if n < 2 then 0.0
  else begin
    let m = mean values in
    let acc = Array.fold_left (fun acc v -> acc +. ((v -. m) *. (v -. m))) 0.0 values in
    sqrt (acc /. float_of_int (n - 1))
  end

let summarize values =
  let n = Array.length values in
  if n = 0 then { n = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0; total = 0.0 }
  else begin
    let total = Array.fold_left ( +. ) 0.0 values in
    let min = Array.fold_left Float.min values.(0) values in
    let max = Array.fold_left Float.max values.(0) values in
    { n; mean = total /. float_of_int n; stddev = stddev values; min; max; total }
  end

let percentile values p =
  let n = Array.length values in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy values in
  Array.sort compare sorted;
  (* Linear interpolation between closest ranks. *)
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.2f sd=%.2f min=%.2f max=%.2f" s.n s.mean s.stddev s.min s.max
