(** Binary min-heap priority queue with an explicit comparison. *)

type 'a t

val create : ?capacity:int -> ('a -> 'a -> int) -> 'a t
(** [create cmp] is an empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** Insert an element (amortized O(log n)). *)

val peek : 'a t -> 'a option
(** Smallest element, if any, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** Like {!pop}; raises [Invalid_argument] on an empty heap. *)
