(** The planar Hilbert space-filling curve.

    An order-[k] curve visits every cell of the [2^k x 2^k] grid; the
    index of a cell is the length of the curve from the origin to it.
    Substrate for the packed Hilbert R-tree baseline. *)

val max_order : int

val index : order:int -> int -> int -> int
(** [index ~order x y] is the Hilbert index of grid cell [(x, y)],
    [0 <= x, y < 2^order]. Raises [Invalid_argument] outside that
    range or for orders outside [1..max_order]. *)

val coords : order:int -> int -> int * int
(** Inverse of {!index}. *)

val quantize : order:int -> lo:float -> hi:float -> float -> int
(** Map a float in [\[lo, hi\]] to a grid coordinate, clamping values
    outside the interval. Raises [Invalid_argument] if [hi <= lo]. *)
