(* The planar Hilbert space-filling curve (iterative rotate-and-flip
   formulation).  The packed Hilbert R-tree sorts rectangles by the
   Hilbert value of their centers; locality of the curve is what makes
   that a good R-tree. *)

let max_order = 30 (* 2 * 30 = 60 index bits, safely inside OCaml's 63-bit int *)

let check_order order =
  if order < 1 || order > max_order then
    invalid_arg (Printf.sprintf "Hilbert2d: order must be in 1..%d" max_order)

let check_coord order v =
  if v < 0 || v lsr order <> 0 then
    invalid_arg (Printf.sprintf "Hilbert2d: coordinate %d outside [0, 2^%d)" v order)

(* One quadrant-local rotation/reflection step shared by both directions. *)
let rot n x y rx ry =
  if ry = 0 then begin
    if rx = 1 then begin
      x := n - 1 - !x;
      y := n - 1 - !y
    end;
    let t = !x in
    x := !y;
    y := t
  end

let index ~order x y =
  check_order order;
  check_coord order x;
  check_coord order y;
  let n = 1 lsl order in
  let x = ref x and y = ref y in
  let d = ref 0 in
  let s = ref (n / 2) in
  while !s > 0 do
    let rx = if !x land !s > 0 then 1 else 0 in
    let ry = if !y land !s > 0 then 1 else 0 in
    d := !d + (!s * !s * ((3 * rx) lxor ry));
    rot n x y rx ry;
    s := !s / 2
  done;
  !d

let coords ~order d =
  check_order order;
  let n = 1 lsl order in
  if d < 0 || (n * n) <= d then invalid_arg "Hilbert2d.coords: index out of range";
  let x = ref 0 and y = ref 0 in
  let t = ref d in
  let s = ref 1 in
  while !s < n do
    let rx = 1 land (!t / 2) in
    let ry = 1 land (!t lxor rx) in
    rot !s x y rx ry;
    x := !x + (!s * rx);
    y := !y + (!s * ry);
    t := !t / 4;
    s := !s * 2
  done;
  (!x, !y)

let quantize ~order ~lo ~hi v =
  if hi <= lo then invalid_arg "Hilbert2d.quantize: empty interval";
  let n = 1 lsl order in
  let scaled = (v -. lo) /. (hi -. lo) *. float_of_int n in
  let cell = int_of_float scaled in
  if cell < 0 then 0 else if cell >= n then n - 1 else cell
