(** d-dimensional Hilbert indices (Skilling's transpose algorithm).

    Substrate for the four-dimensional Hilbert R-tree baseline: a
    rectangle is mapped to the 4-D point [(xmin, ymin, xmax, ymax)] and
    rectangles are sorted by the position of that point on the 4-D
    curve. *)

val index : order:int -> int array -> int
(** [index ~order coords] is the Hilbert index of a grid cell given by
    [dims = Array.length coords] coordinates, each in [\[0, 2^order)].
    The result occupies [dims * order] bits, which must be [<= 62].
    Raises [Invalid_argument] otherwise. *)

val coords : order:int -> dims:int -> int -> int array
(** Inverse of {!index}. *)

val quantize : order:int -> lo:float -> hi:float -> float -> int
(** Map a float in [\[lo, hi\]] to a grid coordinate, clamping values
    outside the interval. *)
