(* d-dimensional Hilbert indices via Skilling's transpose algorithm
   ("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004).

   The four-dimensional Hilbert R-tree of Kamel and Faloutsos maps each
   rectangle to the 4-D point (xmin, ymin, xmax, ymax) and sorts by the
   position of that point on the 4-D Hilbert curve; this module provides
   that ordering (and the general d-D case used by the multi-dimensional
   extensions). *)

let check ~order ~dims =
  if dims < 1 then invalid_arg "Hilbert_nd: dims must be >= 1";
  if order < 1 then invalid_arg "Hilbert_nd: order must be >= 1";
  if dims * order > 62 then
    invalid_arg "Hilbert_nd: dims * order must be <= 62 to fit an OCaml int"

(* In-place conversion of axis coordinates into the "transpose" form in
   which interleaved bits spell the Hilbert index. *)
let axes_to_transpose x order =
  let n = Array.length x in
  let m = 1 lsl (order - 1) in
  (* Inverse undo. *)
  let q = ref m in
  while !q > 1 do
    let p = !q - 1 in
    for i = 0 to n - 1 do
      if x.(i) land !q <> 0 then x.(0) <- x.(0) lxor p
      else begin
        let t = (x.(0) lxor x.(i)) land p in
        x.(0) <- x.(0) lxor t;
        x.(i) <- x.(i) lxor t
      end
    done;
    q := !q lsr 1
  done;
  (* Gray encode. *)
  for i = 1 to n - 1 do
    x.(i) <- x.(i) lxor x.(i - 1)
  done;
  let t = ref 0 in
  let q = ref m in
  while !q > 1 do
    if x.(n - 1) land !q <> 0 then t := !t lxor (!q - 1);
    q := !q lsr 1
  done;
  for i = 0 to n - 1 do
    x.(i) <- x.(i) lxor !t
  done

let transpose_to_axes x order =
  let n = Array.length x in
  let big = 2 lsl (order - 1) in
  (* Gray decode by H ^ (H/2). *)
  let t = ref (x.(n - 1) lsr 1) in
  for i = n - 1 downto 1 do
    x.(i) <- x.(i) lxor x.(i - 1)
  done;
  x.(0) <- x.(0) lxor !t;
  (* Undo excess work. *)
  let q = ref 2 in
  while !q <> big do
    let p = !q - 1 in
    for i = n - 1 downto 0 do
      if x.(i) land !q <> 0 then x.(0) <- x.(0) lxor p
      else begin
        let t = (x.(0) lxor x.(i)) land p in
        x.(0) <- x.(0) lxor t;
        x.(i) <- x.(i) lxor t
      end
    done;
    q := !q lsl 1
  done

let index ~order coords =
  let dims = Array.length coords in
  check ~order ~dims;
  Array.iteri
    (fun i v ->
      if v < 0 || v lsr order <> 0 then
        invalid_arg (Printf.sprintf "Hilbert_nd.index: coordinate %d = %d outside [0, 2^%d)" i v order))
    coords;
  let x = Array.copy coords in
  axes_to_transpose x order;
  (* Interleave: bit q of x.(i) lands ahead of bit q of x.(i+1). *)
  let result = ref 0 in
  for q = order - 1 downto 0 do
    for i = 0 to dims - 1 do
      result := (!result lsl 1) lor ((x.(i) lsr q) land 1)
    done
  done;
  !result

let coords ~order ~dims index_value =
  check ~order ~dims;
  if index_value < 0 || (dims * order < 62 && index_value lsr (dims * order) <> 0) then
    invalid_arg "Hilbert_nd.coords: index out of range";
  let x = Array.make dims 0 in
  (* De-interleave. *)
  let bit = ref (dims * order) in
  for q = order - 1 downto 0 do
    for i = 0 to dims - 1 do
      decr bit;
      x.(i) <- x.(i) lor (((index_value lsr !bit) land 1) lsl q)
    done
  done;
  transpose_to_axes x order;
  x

let quantize ~order ~lo ~hi v =
  if hi <= lo then invalid_arg "Hilbert_nd.quantize: empty interval";
  let n = 1 lsl order in
  let scaled = (v -. lo) /. (hi -. lo) *. float_of_int n in
  let cell = int_of_float scaled in
  if cell < 0 then 0 else if cell >= n then n - 1 else cell
