(* Device scrub: walk every page with unverified reads and classify it
   by its integrity trailer, optionally cross-referenced against the
   caller's notion of which pages are free or reachable.  This is the
   read-only analysis half of `prt fsck`; it never modifies the device.

   Classification:
     - [Valid]       checksum and epoch good
     - [Fresh]       all-zero, never written (allocated but unused)
     - [Torn]        checksum mismatch — a torn or interrupted write
     - [Stale_epoch] checksummed by an older/newer format
   and, refining [Valid] when the caller supplies predicates:
     - [free]        pages on the free list (stale content is expected;
                     with zero-fill-on-recycle they are usually Fresh)
     - [orphaned]    valid pages neither reachable from the live tree
                     nor free — space leaked by a crashed transaction. *)

type page_class = Valid | Fresh | Torn | Stale | Free_page | Orphaned

type report = {
  scanned : int;
  valid : int;
  fresh : int;
  torn : int;
  stale : int;
  free : int;
  orphaned : int;
  bad_pages : (int * page_class) list;  (* torn/stale ids, capped *)
  orphan_pages : int list;  (* capped *)
}

let max_listed = 64

let m_scanned = Prt_obs.Metrics.counter "scrub.scanned"
let m_torn = Prt_obs.Metrics.counter "scrub.torn"
let m_stale = Prt_obs.Metrics.counter "scrub.stale"
let m_orphaned = Prt_obs.Metrics.counter "scrub.orphaned"

let classify ?free ?reachable pager id =
  let page = Pager.read_raw pager id in
  match Page.check page with
  | Page.Torn -> Torn
  | Page.Stale_epoch _ -> Stale
  | Page.Fresh -> (
      match free with Some is_free when is_free id -> Free_page | _ -> Fresh)
  | Page.Valid _ -> (
      match free with
      | Some is_free when is_free id -> Free_page
      | _ -> (
          match reachable with
          | Some is_reachable when not (is_reachable id) -> Orphaned
          | _ -> Valid))

let run ?free ?reachable pager =
  Prt_obs.Trace.with_span "scrub" (fun () ->
      let n = Pager.num_pages pager in
      let r =
        ref
          {
            scanned = n;
            valid = 0;
            fresh = 0;
            torn = 0;
            stale = 0;
            free = 0;
            orphaned = 0;
            bad_pages = [];
            orphan_pages = [];
          }
      in
      for id = 0 to n - 1 do
        Prt_obs.Metrics.tick m_scanned;
        let c = classify ?free ?reachable pager id in
        let cur = !r in
        r :=
          (match c with
          | Valid -> { cur with valid = cur.valid + 1 }
          | Fresh -> { cur with fresh = cur.fresh + 1 }
          | Torn ->
              Prt_obs.Metrics.tick m_torn;
              {
                cur with
                torn = cur.torn + 1;
                bad_pages =
                  (if List.length cur.bad_pages < max_listed then cur.bad_pages @ [ (id, Torn) ]
                   else cur.bad_pages);
              }
          | Stale ->
              Prt_obs.Metrics.tick m_stale;
              {
                cur with
                stale = cur.stale + 1;
                bad_pages =
                  (if List.length cur.bad_pages < max_listed then cur.bad_pages @ [ (id, Stale) ]
                   else cur.bad_pages);
              }
          | Free_page -> { cur with free = cur.free + 1 }
          | Orphaned ->
              Prt_obs.Metrics.tick m_orphaned;
              {
                cur with
                orphaned = cur.orphaned + 1;
                orphan_pages =
                  (if List.length cur.orphan_pages < max_listed then cur.orphan_pages @ [ id ]
                   else cur.orphan_pages);
              })
      done;
      !r)

let clean r = r.torn = 0 && r.stale = 0

let pp_class ppf = function
  | Valid -> Fmt.string ppf "valid"
  | Fresh -> Fmt.string ppf "fresh"
  | Torn -> Fmt.string ppf "torn"
  | Stale -> Fmt.string ppf "stale-epoch"
  | Free_page -> Fmt.string ppf "free"
  | Orphaned -> Fmt.string ppf "orphaned"

let pp_report ppf r =
  Fmt.pf ppf "scanned=%d valid=%d fresh=%d free=%d torn=%d stale=%d orphaned=%d" r.scanned
    r.valid r.fresh r.free r.torn r.stale r.orphaned;
  if r.bad_pages <> [] then
    Fmt.pf ppf "@ bad pages: %a"
      (Fmt.list ~sep:Fmt.comma (fun ppf (id, c) -> Fmt.pf ppf "%d(%a)" id pp_class c))
      r.bad_pages;
  if r.orphan_pages <> [] then
    Fmt.pf ppf "@ orphaned pages: %a" (Fmt.list ~sep:Fmt.comma Fmt.int) r.orphan_pages
