(* Device scrub: walk every page with unverified reads and classify it
   by its integrity trailer, optionally cross-referenced against the
   caller's notion of which pages are free or reachable.  This is the
   read-only analysis half of `prt fsck`; it never modifies the device.

   Classification:
     - [Valid]       checksum and epoch good
     - [Fresh]       all-zero, never written (allocated but unused)
     - [Torn]        checksum mismatch — a torn or interrupted write
     - [Stale_epoch] checksummed by an older/newer format
   and, refining [Valid] when the caller supplies predicates:
     - [free]        pages on the free list (stale content is expected;
                     with zero-fill-on-recycle they are usually Fresh)
     - [orphaned]    valid pages neither reachable from the live tree
                     nor free — space leaked by a crashed transaction. *)

type page_class = Valid | Fresh | Torn | Stale | Free_page | Orphaned

type report = {
  scanned : int;
  valid : int;
  fresh : int;
  torn : int;
  stale : int;
  free : int;
  orphaned : int;
  bad_pages : (int * page_class) list;  (* torn/stale ids, capped *)
  orphan_pages : int list;  (* capped *)
}

let max_listed = 64

let m_scanned = Prt_obs.Metrics.counter "scrub.scanned"
let m_torn = Prt_obs.Metrics.counter "scrub.torn"
let m_stale = Prt_obs.Metrics.counter "scrub.stale"
let m_orphaned = Prt_obs.Metrics.counter "scrub.orphaned"

let classify ?free ?reachable pager id =
  let page = Pager.read_raw pager id in
  match Page.check page with
  | Page.Torn -> Torn
  | Page.Stale_epoch _ -> Stale
  | Page.Fresh -> (
      match free with Some is_free when is_free id -> Free_page | _ -> Fresh)
  | Page.Valid _ -> (
      match free with
      | Some is_free when is_free id -> Free_page
      | _ -> (
          match reachable with
          | Some is_reachable when not (is_reachable id) -> Orphaned
          | _ -> Valid))

let run ?free ?reachable pager =
  Prt_obs.Trace.with_span "scrub" (fun () ->
      let n = Pager.num_pages pager in
      let r =
        ref
          {
            scanned = n;
            valid = 0;
            fresh = 0;
            torn = 0;
            stale = 0;
            free = 0;
            orphaned = 0;
            bad_pages = [];
            orphan_pages = [];
          }
      in
      for id = 0 to n - 1 do
        Prt_obs.Metrics.tick m_scanned;
        let c = classify ?free ?reachable pager id in
        let cur = !r in
        r :=
          (match c with
          | Valid -> { cur with valid = cur.valid + 1 }
          | Fresh -> { cur with fresh = cur.fresh + 1 }
          | Torn ->
              Prt_obs.Metrics.tick m_torn;
              {
                cur with
                torn = cur.torn + 1;
                bad_pages =
                  (if List.length cur.bad_pages < max_listed then cur.bad_pages @ [ (id, Torn) ]
                   else cur.bad_pages);
              }
          | Stale ->
              Prt_obs.Metrics.tick m_stale;
              {
                cur with
                stale = cur.stale + 1;
                bad_pages =
                  (if List.length cur.bad_pages < max_listed then cur.bad_pages @ [ (id, Stale) ]
                   else cur.bad_pages);
              }
          | Free_page -> { cur with free = cur.free + 1 }
          | Orphaned ->
              Prt_obs.Metrics.tick m_orphaned;
              {
                cur with
                orphaned = cur.orphaned + 1;
                orphan_pages =
                  (if List.length cur.orphan_pages < max_listed then cur.orphan_pages @ [ id ]
                   else cur.orphan_pages);
              })
      done;
      !r)

let clean r = r.torn = 0 && r.stale = 0

(* --- incremental online scrub ---

   The self-healing half: a bounded slice of the device is verified per
   call (between query batches, or driven by `prt scrub --online`), so
   repair amortizes instead of taking the index down.  Damaged pages
   either heal in place — when [repair] can produce the committed image
   (the index file's post-image shadow chain) — or land in the
   quarantine for the read path to route around.  Healthy pages found
   quarantined (healed earlier, or a transient misdiagnosis) are
   released.  The cursor wraps at the end of the device, so repeated
   calls converge on a full pass regardless of slice size. *)

type cursor = { mutable pos : int }

let cursor () = { pos = 0 }

type online_report = {
  on_scanned : int;
  on_damaged : int;
  on_healed : int;
  on_quarantined : int;
  on_cleared : int;
  on_wrapped : bool;
}

let m_online_scanned = Prt_obs.Metrics.counter "scrub.online_scanned"
let m_healed = Prt_obs.Metrics.counter "resilience.pages_healed"
let m_online_quarantined = Prt_obs.Metrics.counter "scrub.online_quarantined"

let online ?(skip = fun _ -> false) ?(repair = fun _ -> None) ~quarantine ~cursor ~pages pager =
  if pages < 1 then invalid_arg "Scrub.online: pages must be >= 1";
  Prt_obs.Trace.with_span "scrub.online" (fun () ->
      let n = Pager.num_pages pager in
      let scanned = ref 0
      and damaged = ref 0
      and healed = ref 0
      and quarantined = ref 0
      and cleared = ref 0
      and wrapped = ref false in
      let budget = min pages n in
      while !scanned < budget do
        if cursor.pos >= n then begin
          cursor.pos <- 0;
          wrapped := true
        end;
        let id = cursor.pos in
        cursor.pos <- cursor.pos + 1;
        incr scanned;
        Prt_obs.Metrics.tick m_online_scanned;
        if not (skip id) then begin
          let page = Pager.read_raw pager id in
          match Page.check page with
          | Page.Valid _ | Page.Fresh ->
              if Quarantine.mem quarantine id then begin
                Quarantine.remove quarantine id;
                Prt_obs.Flight.point "resilience.quarantine_clear" ~arg:id ~note:"re-verified";
                incr cleared
              end
          | Page.Torn | Page.Stale_epoch _ -> (
              incr damaged;
              match repair id with
              | Some img ->
                  (* Restoring the committed image through the public
                     write path re-stamps the trailer, so the heal is
                     itself crash-safe: a torn heal is just more damage
                     for the next pass.  Content-wise it is idempotent —
                     the image equals committed state. *)
                  Pager.write pager id img;
                  Prt_obs.Metrics.tick m_healed;
                  Prt_obs.Flight.point "resilience.quarantine_heal" ~arg:id;
                  incr healed;
                  if Quarantine.mem quarantine id then begin
                    Quarantine.remove quarantine id;
                    incr cleared
                  end
              | None ->
                  if not (Quarantine.mem quarantine id) then begin
                    Quarantine.add quarantine id Quarantine.Corrupt;
                    Prt_obs.Metrics.tick m_online_quarantined;
                    incr quarantined
                  end)
        end
      done;
      {
        on_scanned = !scanned;
        on_damaged = !damaged;
        on_healed = !healed;
        on_quarantined = !quarantined;
        on_cleared = !cleared;
        on_wrapped = !wrapped;
      })

let pp_online ppf r =
  Fmt.pf ppf "scanned=%d damaged=%d healed=%d quarantined=%d cleared=%d%s" r.on_scanned
    r.on_damaged r.on_healed r.on_quarantined r.on_cleared
    (if r.on_wrapped then " (wrapped)" else "")

let pp_class ppf = function
  | Valid -> Fmt.string ppf "valid"
  | Fresh -> Fmt.string ppf "fresh"
  | Torn -> Fmt.string ppf "torn"
  | Stale -> Fmt.string ppf "stale-epoch"
  | Free_page -> Fmt.string ppf "free"
  | Orphaned -> Fmt.string ppf "orphaned"

let pp_report ppf r =
  Fmt.pf ppf "scanned=%d valid=%d fresh=%d free=%d torn=%d stale=%d orphaned=%d" r.scanned
    r.valid r.fresh r.free r.torn r.stale r.orphaned;
  if r.bad_pages <> [] then
    Fmt.pf ppf "@ bad pages: %a"
      (Fmt.list ~sep:Fmt.comma (fun ppf (id, c) -> Fmt.pf ppf "%d(%a)" id pp_class c))
      r.bad_pages;
  if r.orphan_pages <> [] then
    Fmt.pf ppf "@ orphaned pages: %a" (Fmt.list ~sep:Fmt.comma Fmt.int) r.orphan_pages
