(** The CRC'd atomic-rename component manifest.

    One small file, [MANIFEST-%06d], records the live component set of
    an LSM directory: which on-disk index files exist at which level,
    the WAL floor (segments at or above it must be replayed on open),
    the next sequence number to allocate, unresolved tombstones, and
    the last merge outcome.  Publication follows the same discipline as
    {!Superblock}'s shadow pair, transplanted to whole files: write
    [MANIFEST-<seq>.tmp], fsync it, rename it into place, fsync the
    directory.  Every step goes through {!Fsops}, so the kill-point
    matrix sweeps each transition; a crash anywhere leaves either the
    previous manifest or the new one authoritative, never a hybrid.

    {!load} picks the highest-sequence manifest whose CRC verifies.
    The writer keeps the immediate predecessor (bit-rot insurance, as
    the superblock keeps its twin slot) and unlinks anything older;
    stale manifests, [.tmp] leftovers, orphaned component files and
    dead WAL segments are the opener's to reclaim. *)

type component = {
  mc_level : int;  (** slot in the logarithmic method; capacity M0 * 2^level *)
  mc_seq : int;  (** allocation sequence number (also names the file) *)
  mc_file : string;  (** basename within the directory *)
  mc_count : int;  (** entries stored *)
}

type t = {
  m_seq : int;  (** manifest generation: highest valid wins on open *)
  m_next : int;  (** next sequence number (components and WAL segments) *)
  m_wal_floor : int;  (** replay WAL segments with seq >= this *)
  m_components : component list;
  m_tombstones : int list;  (** deleted ids not yet resolved by a merge *)
  m_last_merge : string;  (** outcome of the last completed merge *)
}

val empty : t
(** Generation 0: no components, floor 0, next 1. *)

val filename : int -> string
(** [filename seq] is ["MANIFEST-%06d"]. *)

val seq_of_filename : string -> int option
(** Inverse of {!filename}; [None] for foreign names (including
    [.tmp] leftovers). *)

exception Published_unsynced of string
(** The rename landed — {!load} already picks the new manifest — but
    the directory sync after it failed, so the rename's durability
    across a power cut is unknown.  The caller must treat the swap as
    committed (rolling back would contradict the on-disk truth); it may
    re-attempt the directory sync itself. *)

val write : fsops:Fsops.t -> dir:string -> t -> unit
(** Publish [t] atomically: tmp write, fsync, rename, directory sync —
    four kill points — then unlink manifests older than the immediate
    predecessor (best-effort, more kill points).  Raises
    {!Pager.Io_error} on injected faults up to and including the rename
    (nothing published; the tmp file, if any, is left for the opener to
    reclaim), and {!Published_unsynced} for a fault after it. *)

val load : string -> (t * string) option
(** [load dir] returns the highest-sequence manifest that decodes and
    CRC-verifies, with its basename; [None] when no valid manifest
    exists.  Damaged or torn manifests are skipped (falling back to the
    predecessor), never deleted here. *)

val encode : t -> bytes
val decode : bytes -> t option
