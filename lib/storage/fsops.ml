(* Failpoint-instrumented file-system operations: the non-paged analogue
   of Pager.wrap_faulty + Pager.arm_crash, shared by the WAL and the
   component manifest.  See fsops.mli for the injection semantics. *)

type t = {
  mutable faults : Failpoint.t option;
  mutable crash : Failpoint.t option;
}

let create ?faults ?crash () = { faults; crash }
let plain () = { faults = None; crash = None }
let set_crash t fp = t.crash <- fp
let crash t = t.crash
let set_faults t fp = t.faults <- fp
let faults t = t.faults

let kill_point t =
  match t.crash with
  | Some fp when Failpoint.crash_enabled fp -> Failpoint.on_phys_write fp
  | _ -> ()

let verdict t =
  match t.faults with None -> Failpoint.Ok | Some fp -> Failpoint.on_write fp

let io_error op detail = raise (Pager.Io_error (Printf.sprintf "fsops.%s: %s" op detail))

(* Write [len] bytes of [buf] from [pos] at the descriptor's current
   offset, looping over short writes (the OS kind, not the injected
   kind). *)
let rec write_all fd buf pos len =
  if len > 0 then begin
    let n = Unix.write fd buf pos len in
    write_all fd buf (pos + n) (len - n)
  end

(* One injected chunk write: fault verdict first (as the pager wrapper
   does), then the kill point, then the bytes. *)
let write_chunk t fd buf pos len =
  match verdict t with
  | Failpoint.Error -> io_error "write" "injected write error"
  | Failpoint.Partial f ->
      kill_point t;
      let keep = int_of_float (float_of_int len *. f) in
      write_all fd buf pos (max 0 (min len keep));
      io_error "write" "injected torn write"
  | Failpoint.Ok ->
      kill_point t;
      write_all fd buf pos len

let write t fd buf =
  let len = Bytes.length buf in
  (* Two chunks, each behind its own kill point, so the crash matrix
     produces genuinely torn frames mid-record. *)
  let half = len / 2 in
  if half > 0 then write_chunk t fd buf 0 half;
  write_chunk t fd buf half (len - half)

let fsync t fd =
  (match verdict t with
  | Failpoint.Ok -> ()
  | Failpoint.Error | Failpoint.Partial _ -> io_error "fsync" "injected fsync error");
  kill_point t;
  Unix.fsync fd

let fsync_dir t dir =
  (match verdict t with
  | Failpoint.Ok -> ()
  | Failpoint.Error | Failpoint.Partial _ -> io_error "fsync_dir" "injected dirsync error");
  kill_point t;
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let rename t ~src ~dst =
  (match verdict t with
  | Failpoint.Ok -> ()
  | Failpoint.Error | Failpoint.Partial _ -> io_error "rename" "injected rename error");
  kill_point t;
  Unix.rename src dst

let unlink t path =
  kill_point t;
  try Unix.unlink path with Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let create_file t path =
  (match verdict t with
  | Failpoint.Ok -> ()
  | Failpoint.Error | Failpoint.Partial _ -> io_error "create" "injected create error");
  kill_point t;
  Unix.openfile path [ Unix.O_CREAT; Unix.O_RDWR; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
