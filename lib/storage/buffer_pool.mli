(** Write-back LRU buffer pool over a {!Pager}.

    Cache hits do not touch the pager and therefore do not count as I/Os —
    this is how the paper's "all internal nodes cached" query setup is
    realized.

    The pool is also where device faults are absorbed: every pager
    operation runs under a bounded retry-with-backoff policy, so
    transient {!Pager.Io_error}s (e.g. from {!Pager.wrap_faulty}) are
    retried — full-page re-writes heal torn writes, re-reads heal short
    reads — and recorded in the {!degraded} channel.  A fault that
    survives the whole attempt budget is re-raised as
    [Pager.Io_error]: permanent failures surface, they never corrupt
    the tree silently. *)

type retry = { attempts : int; backoff_base : int }
(** Retry policy: total attempts per operation (>= 1) and the base of
    the exponential simulated backoff charged per retry (attempt [k]
    charges [backoff_base * 2^(k-1)] units). *)

val default_retry : retry
(** 5 attempts, backoff base 1 — enough to outlast any failpoint with
    the default [max_consecutive = 3] cap. *)

(** Degraded-mode statistics: what the shared {!Retry} engine observed
    (this is an alias of [Retry.stats]). *)
type degraded = Retry.stats = {
  mutable faults : int;  (** [Io_error]s seen from the pager. *)
  mutable retries : int;  (** Re-attempts made after a fault. *)
  mutable backoff : int;  (** Total simulated backoff units charged. *)
  mutable failures : int;  (** Operations that exhausted their attempts. *)
  mutable last_error : string option;
  mutable rejected : int;  (** Operations failed fast by an open breaker. *)
  mutable trips : int;  (** Circuit-breaker trips. *)
}

type t

val create : ?capacity:int -> ?retry:retry -> ?breaker:int * int -> Pager.t -> t
(** [create ~capacity ~retry pager]: pool holding at most [capacity]
    pages (default 1024), retrying faulted pager operations per [retry]
    (default {!default_retry}) through a shared {!Retry} engine.
    [breaker = (threshold, cooldown)] arms the engine's circuit breaker
    (disabled by default). *)

val pager : t -> Pager.t

val read : t -> int -> bytes
(** Read through the cache. The returned buffer is the cached page
    itself; callers must not mutate it (use {!write}). *)

val write : t -> int -> bytes -> unit
(** Stage a full-page write in the cache (written back on eviction or
    {!flush}). *)

val alloc : t -> int
(** Allocate a page in the underlying pager. *)

val free : t -> int -> unit
(** Drop any cached copy and free the page in the pager. *)

val flush : t -> unit
(** Write back all dirty pages (they stay cached, clean). *)

val drop_clean : t -> unit
(** Flush, then empty the cache entirely. *)

val is_clean : t -> bool
(** [true] iff no cached page is dirty — the on-disk image is current,
    so a file mapping may serve reads directly.  O(1). *)

val hits : t -> int

val misses : t -> int
(** Reads that had to go to the pager.  A miss is counted once per
    logical read that completes — a read that faults and is retried by
    the pool's own retry policy still counts one miss, and a read whose
    attempt budget is exhausted counts none (it served nothing). *)

val hit_ratio : t -> float
(** [hits / (hits + misses)]; [nan] before any read. *)

val evictions : t -> int
(** Cached pages pushed out by capacity pressure (each one a write-back
    if dirty) — surfaced by [prt stats] alongside hits/misses. *)

val degraded : t -> degraded
(** The live degraded-mode counters (reset by {!reset_counters}). *)

val retry_engine : t -> Retry.t
(** The pool's fault-absorption engine, exposed for breaker-state
    inspection ([Retry.breaker_state]) and tests. *)

val reset_counters : t -> unit
val pp_degraded : Format.formatter -> degraded -> unit
