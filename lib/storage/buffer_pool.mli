(** Write-back LRU buffer pool over a {!Pager}.

    Cache hits do not touch the pager and therefore do not count as I/Os —
    this is how the paper's "all internal nodes cached" query setup is
    realized. *)

type t

val create : ?capacity:int -> Pager.t -> t
(** [create ~capacity pager]: pool holding at most [capacity] pages
    (default 1024). *)

val pager : t -> Pager.t

val read : t -> int -> bytes
(** Read through the cache. The returned buffer is the cached page
    itself; callers must not mutate it (use {!write}). *)

val write : t -> int -> bytes -> unit
(** Stage a full-page write in the cache (written back on eviction or
    {!flush}). *)

val alloc : t -> int
(** Allocate a page in the underlying pager. *)

val free : t -> int -> unit
(** Drop any cached copy and free the page in the pager. *)

val flush : t -> unit
(** Write back all dirty pages (they stay cached, clean). *)

val drop_clean : t -> unit
(** Flush, then empty the cache entirely. *)

val hits : t -> int
val misses : t -> int
val reset_counters : t -> unit
