(** The simulated disk: fixed-size pages addressed by id, with every
    page read and write counted.

    All "I/O" numbers reported by the benchmark harness are observations
    of these counters — the OCaml analogue of the paper's TPIE block
    layer. The memory backend is used for experiments (it measures the
    algorithms, not the host filesystem); the file backend persists
    indexes for the CLI. *)

type stats = { mutable reads : int; mutable writes : int; mutable allocs : int }

type snapshot = { s_reads : int; s_writes : int; s_allocs : int }
(** Immutable copy of the counters, for before/after accounting. *)

type t

val default_page_size : int
(** 4096 bytes, the block size used throughout the paper. *)

val create_memory : ?page_size:int -> unit -> t
(** Fresh in-memory device with zero pages. *)

val create_file : ?page_size:int -> string -> t
(** Create (truncate) a file-backed device. *)

val open_file : ?page_size:int -> string -> t
(** Open an existing file-backed device. Raises [Invalid_argument] if the
    file size is not a multiple of the page size. *)

val page_size : t -> int

val num_pages : t -> int
(** Number of pages ever allocated (including freed ones). *)

val alloc : t -> int
(** Allocate a page (zero-filled when fresh; recycled pages keep their
    bytes) and return its id. Freed pages are reused first. *)

val free : t -> int -> unit
(** Return a page to the free list. Raises [Invalid_argument] on double
    free or a bad id. *)

val read : t -> int -> bytes
(** Read a page into a fresh buffer. Counts one read. *)

val read_into : t -> int -> bytes -> unit
(** Read a page into a caller-supplied page-sized buffer. Counts one
    read. *)

val write : t -> int -> bytes -> unit
(** Write a full page. Counts one write. *)

val stats : t -> stats
(** The live counters (mutable; prefer {!snapshot} for accounting). *)

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counter delta between two snapshots. *)

val total_io : snapshot -> int
(** [s_reads + s_writes]. *)

val reset_stats : t -> unit
val close : t -> unit
val pp_snapshot : Format.formatter -> snapshot -> unit
