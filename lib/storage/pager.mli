(** The simulated disk: fixed-size pages addressed by id, with every
    page read and write counted.

    All "I/O" numbers reported by the benchmark harness are observations
    of these counters — the OCaml analogue of the paper's TPIE block
    layer. The memory backend is used for experiments (it measures the
    algorithms, not the host filesystem); the file backend persists
    indexes for the CLI. *)

exception Io_error of string
(** A device-level I/O failure: raised by fault-injecting pagers (see
    {!wrap_faulty}) when the policy decides an operation fails.  Unlike
    [Invalid_argument] (caller bugs), an [Io_error] models the disk
    misbehaving and may succeed on retry — {!Buffer_pool} absorbs
    transient ones with bounded retries. *)

type stats = { mutable reads : int; mutable writes : int; mutable allocs : int }

type snapshot = { s_reads : int; s_writes : int; s_allocs : int }
(** Immutable copy of the counters, for before/after accounting. *)

type t

val default_page_size : int
(** 4096 bytes, the block size used throughout the paper. *)

val create_memory : ?page_size:int -> unit -> t
(** Fresh in-memory device with zero pages. *)

val create_file : ?page_size:int -> string -> t
(** Create (truncate) a file-backed device. *)

val open_file : ?page_size:int -> string -> t
(** Open an existing file-backed device. Raises [Invalid_argument] if the
    file size is not a multiple of the page size (the descriptor is
    closed before raising — no fd leaks on the error path). *)

val wrap_faulty : t -> Failpoint.t -> t
(** [wrap_faulty pager fp] is a pager backed by [pager] whose reads,
    writes and allocations first consult the failure policy [fp]:
    transient faults raise {!Io_error}, torn writes persist only a
    prefix of the page, short reads clobber only a prefix of the buffer
    (the tail is poisoned with [0xAA]).  The wrapper shares [pager]'s
    counters and free list, so with an all-zero policy it is
    observationally identical to [pager].  Closing the wrapper closes
    [pager]. *)

val failpoint : t -> Failpoint.t option
(** The failure policy of a {!wrap_faulty} pager, [None] otherwise. *)

val page_size : t -> int

val num_pages : t -> int
(** Number of pages ever allocated (including freed ones). *)

val alloc : t -> int
(** Allocate a page (zero-filled when fresh; recycled pages keep their
    bytes) and return its id. Freed pages are reused first. *)

val free : t -> int -> unit
(** Return a page to the free list. Raises [Invalid_argument] on double
    free or a bad id. *)

val is_free : t -> int -> bool
(** Is the page currently on the free list?  Used by the audit's
    page-leak check. *)

val read : t -> int -> bytes
(** Read a page into a fresh buffer. Counts one read. *)

val read_into : t -> int -> bytes -> unit
(** Read a page into a caller-supplied page-sized buffer. Counts one
    read. *)

val write : t -> int -> bytes -> unit
(** Write a full page. Counts one write. *)

val stats : t -> stats
(** The live counters (mutable; prefer {!snapshot} for accounting). *)

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counter delta between two snapshots. *)

val total_io : snapshot -> int
(** [s_reads + s_writes]. *)

val reset_stats : t -> unit
val close : t -> unit

val pp_snapshot : Format.formatter -> snapshot -> unit
(** ["reads=R writes=W allocs=A io=R+W"] — every field labelled, so the
    CLI and bench output stay greppable. *)
