(** The simulated disk: fixed-size pages addressed by id, with every
    page read and write counted.

    All "I/O" numbers reported by the benchmark harness are observations
    of these counters — the OCaml analogue of the paper's TPIE block
    layer. The memory backend is used for experiments (it measures the
    algorithms, not the host filesystem); the file backend persists
    indexes for the CLI.

    Format v2 integrity: {!write} stamps every page with the {!Page}
    trailer (device LSN, format epoch, CRC-32C) and {!read} verifies the
    trailer on the file backend, raising {!Corrupt_page} on damage.  The
    module also provides the mechanisms {!Superblock} builds atomic
    commits from: an armed crash budget ({!arm_crash}), deferred frees,
    and a pre-image journal ({!begin_journal} / {!recover_journal}). *)

exception Io_error of string
(** A device-level I/O failure: raised by fault-injecting pagers (see
    {!wrap_faulty}) when the policy decides an operation fails.  Unlike
    [Invalid_argument] (caller bugs), an [Io_error] models the disk
    misbehaving and may succeed on retry — {!Buffer_pool} absorbs
    transient ones with bounded retries. *)

exception Corrupt_page of string
(** A page read back from the device failed trailer verification (torn
    write, bit rot, or a stale format epoch).  Deliberately distinct
    from {!Io_error}: the damage is on the platter, so retrying cannot
    help and retry loops let it propagate.  Run scrub/fsck instead. *)

type stats = { mutable reads : int; mutable writes : int; mutable allocs : int }

type snapshot = { s_reads : int; s_writes : int; s_allocs : int }
(** Immutable copy of the counters, for before/after accounting. *)

type t

val default_page_size : int
(** 4096 bytes, the block size used throughout the paper. *)

val create_memory : ?page_size:int -> unit -> t
(** Fresh in-memory device with zero pages.  The page size must exceed
    [Page.trailer_size]. *)

val create_file : ?page_size:int -> string -> t
(** Create (truncate) a file-backed device. *)

val open_file : ?page_size:int -> ?partial_tail:[ `Reject | `Truncate ] -> string -> t
(** Open an existing file-backed device.  If the file size is not a page
    multiple, the trailing fragment is a torn final write: with
    [`Reject] (the default) raise [Invalid_argument] (the descriptor is
    closed before raising — no fd leaks on the error path); with
    [`Truncate] (used by fsck) drop the fragment and open the remaining
    whole pages. *)

val wrap_faulty : t -> Failpoint.t -> t
(** [wrap_faulty pager fp] is a pager backed by [pager] whose reads,
    writes and allocations first consult the failure policy [fp]:
    transient faults raise {!Io_error}, torn writes persist only a
    prefix of the page, short reads clobber only a prefix of the buffer
    (the tail is poisoned with [0xAA]).  A torn page is persisted
    {e without} re-stamping, so its checksum no longer matches and a
    later {!read} reports {!Corrupt_page}.  The wrapper shares [pager]'s
    counters and free list, so with an all-zero policy it is
    observationally identical to [pager].  Closing the wrapper closes
    [pager].  If [fp] carries a crash budget it is armed on the base
    pager (see {!arm_crash}). *)

val arm_crash : t -> Failpoint.t -> unit
(** Attach a crash budget to the base pager: every physical page write
    (including internal journal and superblock writes) first consults
    [Failpoint.on_phys_write], so a {!Failpoint.Simulated_crash} can
    fire at any kill point of an operation. *)

val failpoint : t -> Failpoint.t option
(** The failure policy of a {!wrap_faulty} pager, [None] otherwise. *)

val page_size : t -> int

val payload_size : t -> int
(** Bytes per page available to codecs: [page_size - Page.trailer_size].
    The trailer is owned by this module. *)

val num_pages : t -> int
(** Number of pages ever allocated (including freed ones). *)

val corrupt_reads : t -> int
(** Reads that failed trailer verification so far (not reset by
    {!reset_stats}). *)

val alloc : t -> int
(** Allocate a page and return its id.  Freed pages are reused first.
    The returned page is always zero-filled — recycled pages are scrubbed
    on reuse, so stale bytes of a freed node can never be mistaken for
    live data by salvage tooling. *)

val free : t -> int -> unit
(** Return a page to the free list.  Raises [Invalid_argument] on double
    free or a bad id.  Under {!set_defer_frees} the page only becomes
    reusable after {!promote_frees}. *)

val is_free : t -> int -> bool
(** Is the page currently free (including deferred frees)?  Used by the
    audit's page-leak check. *)

val set_defer_frees : t -> bool -> unit
(** When on, {!free}d pages are parked on a pending list instead of the
    reusable free list, so an in-flight transaction can never recycle a
    page the last committed tree still references.  Turning it off
    promotes any pending frees. *)

val promote_frees : t -> unit
(** Move pending deferred frees onto the reusable free list (the commit
    point of a transaction). *)

val free_pages : t -> int list
(** All currently free page ids, pending ones included — the free-list
    snapshot persisted by the superblock. *)

val set_free_list : t -> int list -> unit
(** Replace the free list wholesale (ids outside the device are dropped);
    used when reopening a file from a superblock snapshot. *)

val truncate : t -> used:int -> unit
(** Shrink the device to [used] pages (dropping any free-list entries
    beyond it); recovery uses this to discard pages allocated by an
    uncommitted transaction. *)

val read : t -> int -> bytes
(** Read a page into a fresh buffer.  Counts one read.  On the file
    backend the integrity trailer is verified first: raises
    {!Corrupt_page} on a torn or stale page (all-zero never-written
    pages pass). *)

val read_into : t -> int -> bytes -> unit
(** Read a page into a caller-supplied page-sized buffer. Counts one
    read; verifies like {!read}. *)

val read_raw : t -> int -> bytes
(** Read a page without trailer verification or fault injection — for
    scrub/salvage tools that classify damage instead of tripping over
    it.  Counts one read. *)

val read_shared : ?gen:int -> ?scratch:bytes -> t -> int -> bytes
(** Domain-safe read-only page fetch for the query serving layer.  On
    the in-memory backend, returns a committed page image without
    copying (writers install fresh buffers rather than mutating in
    place, so a held buffer stays internally consistent); callers must
    treat it as immutable.  On the file backend, reads under an internal
    per-pager lock into a fresh buffer and verifies the trailer
    ({!Corrupt_page} on damage).  Bypasses fault injection and is not
    counted in {!stats} — the batched executor accounts for serving
    reads itself.

    [~gen] requests the page image as of commit generation [gen]
    (see {!set_retain_gen}): if the page has been overwritten by a
    later transaction, the retained pre-image whose validity interval
    covers [gen] is returned instead of the live page.  [gen <= 0]
    (the default) reads the live page.

    [~scratch], a caller-owned page-sized buffer, is used for live
    file-backend reads instead of allocating; the result then aliases
    [scratch] and is only valid until the caller's next use of it.
    Retained version images are never copied into [scratch].
    Raises [Invalid_argument] if [scratch] is not page-sized. *)

val version_probe : t -> int -> gen:int -> bytes option
(** The retained pre-image of a page serving generation [gen], if the
    page was overwritten by a transaction committing after [gen];
    [None] when the live page is current for [gen] (or [gen <= 0]).
    Does not read the live page.  The mmap backend's snapshot protocol
    brackets each mapped-page scan with this probe: because retention
    precedes the physical overwrite, a post-scan miss proves the scan
    saw the committed image for [gen]. *)

(** {1 MVCC: generation snapshots}

    Copy-on-write version retention for snapshot-isolated readers.
    While [retain_gen >= 0] (set by {!Superblock.begin_txn}), the first
    overwrite of each committed page also retains its pre-image in an
    in-memory version store, tagged with the generation the transaction
    will commit at: that image was the committed content for every
    generation strictly below the tag.  Pages freed by a commit are
    parked per-generation ({!park_frees}) and only promoted to the
    reusable free list once no reader pins an older generation
    ({!reclaim}).  Readers dropping the last pin of a generation call
    {!collect} to drop superseded versions; free-list promotion stays
    on the writing domain. *)

val set_retain_gen : t -> int -> unit
(** Set the generation tag for subsequently retained pre-images;
    [-1] turns retention off. *)

val park_frees : t -> gen:int -> unit
(** Move pending deferred frees to the generation-parked list under
    [gen] (the generation of the commit that freed them).  Parked pages
    remain unallocatable until {!reclaim} promotes them. *)

val collect : t -> upto:int -> unit
(** Drop retained versions with tag [<= upto] (no snapshot at or above
    the floor can need them).  Safe on a closed pager and from reader
    domains: touches only the version store. *)

val reclaim : t -> upto:int -> unit
(** {!collect} plus promotion of parked free groups with generation
    [<= upto] onto the reusable free list.  Must be called from the
    writing domain (the free list is its unshared state). *)

type mvcc_stats = { live_versions : int; parked_pages : int }

val mvcc_stats : t -> mvcc_stats
(** Size of the version store and the parked-free population — both
    must return to zero once every pin is dropped (bounded-growth
    assertions in the MVCC tests). *)

val write : t -> int -> bytes -> unit
(** Write a full page.  Counts one write.  Stamps the integrity trailer
    into [buf] (mutating its last [Page.trailer_size] bytes) before the
    page is persisted.  If a pre-image journal is active and this is the
    first overwrite of a committed page, the old image is journalled
    first. *)

(** {1 Pre-image journal}

    Transaction support used by [Superblock]: between {!begin_journal}
    and {!end_journal}, the first in-place overwrite of each committed
    page snapshots its prior contents to a freshly allocated page,
    recorded in a chained, checksummed directory.  After a crash,
    {!recover_journal} walks the directory and restores every pre-image,
    returning the device to the pre-transaction state. *)

val begin_journal : t -> exempt:int list -> int
(** Start journalling.  [exempt] pages (the superblock pair) are never
    journalled.  Returns the directory head page id, to be persisted in
    the superblock before any data page is overwritten.  Raises
    [Invalid_argument] if a journal is already active or deferred frees
    are pending. *)

val journal_head : t -> int option

val txn_modified_pages : t -> int list
(** While a journal is active: the ids this transaction will have
    modified if it commits — committed pages it overwrote plus pages it
    allocated, minus journal bookkeeping, exempt pages, and pages freed
    again before commit — in increasing order.  The shadow-copy layer
    snapshots exactly these post-images just before commit, giving the
    online scrub a repair source whose content equals committed state.
    [[]] when no journal is active. *)

val end_journal : t -> int list
(** Stop journalling and return every journal-owned page (directory
    chain + copies) so the committer can free them. *)

val recover_journal : t -> head:int -> int
(** Restore all journalled pre-images reachable from directory page
    [head]; returns the number of pages restored.  Idempotent — a crash
    during recovery just reruns it.  Raises {!Corrupt_page} if the
    directory chain itself is damaged (then only [`fsck --rebuild`]
    salvage remains). *)

val stats : t -> stats
(** The live counters (mutable; prefer {!snapshot} for accounting). *)

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counter delta between two snapshots. *)

val total_io : snapshot -> int
(** [s_reads + s_writes]. *)

val reset_stats : t -> unit
val close : t -> unit

val is_closed : t -> bool
(** Whether {!close} has run (closing a faulty wrapper closes its base).
    Lets owners of shared pagers make their own close paths idempotent. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** ["reads=R writes=W allocs=A io=R+W"] — every field labelled, so the
    CLI and bench output stay greppable. *)
