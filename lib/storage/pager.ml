(* The simulated disk: a flat array of fixed-size pages addressed by page
   id, with every read and write counted.  This plays the role of the
   paper's physical disk — all reported "I/Os" in the experiments are
   page reads/writes observed here.

   Two backends are provided: an in-memory one (default for experiments,
   so benchmarks measure the algorithms and not the host filesystem) and
   a real-file one used by the CLI so indexes persist across runs.  Freed
   pages go on a free list and are handed out again by [alloc]; this is
   what keeps space bounded under the dynamic update algorithms.

   A third backend, [Faulty], wraps any pager with a {!Failpoint} policy
   and turns its verdicts into real device misbehaviour: transient
   [Io_error]s, torn writes that persist only a prefix of the new page,
   short reads that clobber only a prefix of the buffer.  The wrapper
   shares the inner pager's counters, so with an all-zero policy it is
   observationally identical to the pager it wraps.

   Format v2 integrity: every page written through the public [write]
   path is stamped with the {!Page} trailer (monotonic device LSN,
   format epoch, CRC-32C), and [read] on the file backend verifies the
   trailer, raising {!Corrupt_page} on mismatch.  The stamping/verifying
   public path is deliberately separate from the raw [phys_*] helpers:
   the fault wrapper's torn-write merge goes through the raw path, so a
   torn page is persisted with its (now wrong) old checksum intact —
   exactly how a real torn sector defeats its own CRC.

   Crash consistency support (used by {!Superblock}): [arm_crash]
   attaches a failpoint whose write budget is consulted before every
   physical page write persists; [free] can be deferred so pages freed
   mid-transaction are not recycled until the commit point; and a
   pre-image journal snapshots the old contents of any committed page
   before its first in-place overwrite, into a chained, checksummed
   directory that [recover_journal] replays after a crash. *)

exception Io_error of string
exception Corrupt_page of string

let () =
  Printexc.register_printer (function
    | Io_error msg -> Some ("Pager.Io_error: " ^ msg)
    | Corrupt_page msg -> Some ("Pager.Corrupt_page: " ^ msg)
    | _ -> None)

type stats = { mutable reads : int; mutable writes : int; mutable allocs : int }

type snapshot = { s_reads : int; s_writes : int; s_allocs : int }

(* Observability mirrors: the same events that bump [stats] also bump
   these registry counters (no-ops unless collection is on), which is
   what lets {!Prt_obs.Trace} spans attribute I/O to build/query phases.
   The pager's own [stats] are never derived from these — fault-free
   accounting stays bit-identical whether or not anyone is watching. *)
let m_reads = Prt_obs.Metrics.counter "pager.reads"
let m_writes = Prt_obs.Metrics.counter "pager.writes"
let m_allocs = Prt_obs.Metrics.counter "pager.allocs"
let m_frees = Prt_obs.Metrics.counter "pager.frees"
let m_corrupt = Prt_obs.Metrics.counter "pager.corrupt_pages"
let m_shared_reads = Prt_obs.Metrics.counter "pager.shared_reads"

type backend =
  | Memory of { mutable pages : bytes array; mutable used : int }
  | File of { fd : Unix.file_descr; mutable used : int }
  | Faulty of { inner : t; fp : Failpoint.t }

and t = {
  page_size : int;
  backend : backend;
  stats : stats;
  mutable free_list : int list;
  free_set : (int, unit) Hashtbl.t;
  mutable closed : bool;
  shared_lock : Mutex.t;  (* serializes [read_shared] on the file backend *)
  (* --- base-pager state below (unused on the Faulty wrapper; all
     operations recurse to the base first) --- *)
  mutable lsn : int;  (* monotonic stamp counter for written pages *)
  corrupt_reads : int Atomic.t;  (* reads that failed trailer verification;
                                    atomic: [read_shared] verifies on
                                    reader domains *)
  mutable crash : Failpoint.t option;  (* armed crash budget, if any *)
  mutable defer_frees : bool;
  mutable pending : int list;  (* frees awaiting promotion *)
  mutable journal : journal option;
  (* --- MVCC generation snapshots (see read_shared) --- *)
  mvcc_lock : Mutex.t;  (* guards versions + gc_frees, never held across I/O *)
  versions : (int, version list) Hashtbl.t;  (* per page, newest first *)
  mutable retain_gen : int;  (* generation the running txn will commit; -1 = off *)
  mutable gc_frees : (int * int list) list;  (* commit generation -> parked frees *)
}

(* A retained pre-image: [v_img] was the committed content of its page
   for every generation < [v_gen_end] (the page's first overwrite by the
   transaction committing at [v_gen_end] retained it). *)
and version = { v_gen_end : int; v_img : bytes }

and journal = {
  j_base_used : int;  (* pages committed before the transaction *)
  j_committed_free : (int, unit) Hashtbl.t;  (* free set at txn start *)
  j_map : (int, int) Hashtbl.t;  (* original page -> pre-image copy *)
  j_own : (int, unit) Hashtbl.t;  (* directory + copy pages (never journaled) *)
  j_exempt : (int, unit) Hashtbl.t;  (* e.g. superblock pages *)
  j_new : (int, unit) Hashtbl.t;  (* pages allocated during the transaction *)
  mutable j_pages : int list;  (* everything to free at commit *)
  j_head : int;
  mutable j_tail : int;
  mutable j_tail_entries : (int * int) list;  (* newest first *)
}

let default_page_size = 4096

let check_page_size ctx page_size =
  if page_size <= Page.trailer_size then
    invalid_arg
      (Printf.sprintf "Pager.%s: page_size %d does not fit the %d-byte integrity trailer" ctx
         page_size Page.trailer_size)

let mk ~page_size ~backend ~stats ~free_set =
  {
    page_size;
    backend;
    stats;
    free_list = [];
    free_set;
    closed = false;
    shared_lock = Mutex.create ();
    lsn = 0;
    corrupt_reads = Atomic.make 0;
    crash = None;
    defer_frees = false;
    pending = [];
    journal = None;
    mvcc_lock = Mutex.create ();
    versions = Hashtbl.create 64;
    retain_gen = -1;
    gc_frees = [];
  }

let create_memory ?(page_size = default_page_size) () =
  check_page_size "create_memory" page_size;
  mk ~page_size
    ~backend:(Memory { pages = Array.make 64 Bytes.empty; used = 0 })
    ~stats:{ reads = 0; writes = 0; allocs = 0 }
    ~free_set:(Hashtbl.create 16)

let create_file ?(page_size = default_page_size) path =
  check_page_size "create_file" page_size;
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  mk ~page_size ~backend:(File { fd; used = 0 })
    ~stats:{ reads = 0; writes = 0; allocs = 0 }
    ~free_set:(Hashtbl.create 16)

let open_file ?(page_size = default_page_size) ?(partial_tail = `Reject) path =
  check_page_size "open_file" page_size;
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  (* Anything that fails between here and a fully constructed pager must
     not leak the descriptor. *)
  let used =
    match
      let bytes = (Unix.fstat fd).Unix.st_size in
      if bytes mod page_size = 0 then bytes / page_size
      else
        match partial_tail with
        | `Reject ->
            invalid_arg
              (Printf.sprintf
                 "Pager.open_file: %s size %d is not a multiple of the page size %d" path bytes
                 page_size)
        | `Truncate ->
            (* A trailing partial page is a torn final write: drop it so
               the rest of the device is addressable (fsck reports the
               number of bytes removed). *)
            let used = bytes / page_size in
            Unix.ftruncate fd (used * page_size);
            used
    with
    | used -> used
    | exception e ->
        Unix.close fd;
        raise e
  in
  mk ~page_size ~backend:(File { fd; used })
    ~stats:{ reads = 0; writes = 0; allocs = 0 }
    ~free_set:(Hashtbl.create 16)

let rec base t = match t.backend with Faulty f -> base f.inner | Memory _ | File _ -> t

(* The wrapper aliases the inner pager's [stats] record, so I/O
   accounting is identical whether callers observe the wrapper or the
   wrapped pager. *)
let wrap_faulty inner fp =
  if Failpoint.crash_enabled fp then (base inner).crash <- Some fp;
  mk ~page_size:inner.page_size ~backend:(Faulty { inner; fp }) ~stats:inner.stats
    ~free_set:(Hashtbl.create 1)

let arm_crash t fp = (base t).crash <- Some fp

let failpoint t = match t.backend with Faulty f -> Some f.fp | Memory _ | File _ -> None

let page_size t = t.page_size

let payload_size t = Page.payload_size t.page_size

let rec num_pages t =
  match t.backend with Memory m -> m.used | File f -> f.used | Faulty f -> num_pages f.inner

let corrupt_reads t = Atomic.get (base t).corrupt_reads

let check_open t op = if t.closed then invalid_arg ("Pager." ^ op ^ ": pager is closed")

let check_id t op id =
  if id < 0 || id >= num_pages t then
    invalid_arg (Printf.sprintf "Pager.%s: page %d out of range (0..%d)" op id (num_pages t - 1))

(* --- raw physical page I/O on a base pager: counted, but no trailer
   stamping or verification.  [phys_write] is the single choke point at
   which an armed crash budget can kill the "process". --- *)

(* All file-descriptor I/O (the lseek + read/write pairs) runs under
   [shared_lock]: concurrent snapshot readers share the fd offset with
   the writing domain, so an unserialized seek would land a read at the
   writer's offset (or vice versa).  The lock is only ever held for one
   page transfer and never nested. *)
let locked_file_read t fd id buf =
  Mutex.protect t.shared_lock (fun () ->
      ignore (Unix.lseek fd (id * t.page_size) Unix.SEEK_SET);
      let rec fill off =
        if off < t.page_size then begin
          let n = Unix.read fd buf off (t.page_size - off) in
          if n = 0 then failwith "Pager.read: unexpected end of file";
          fill (off + n)
        end
      in
      fill 0)

let locked_file_write t fd id buf =
  Mutex.protect t.shared_lock (fun () ->
      ignore (Unix.lseek fd (id * t.page_size) Unix.SEEK_SET);
      let n = Unix.write fd buf 0 t.page_size in
      if n <> t.page_size then failwith "Pager.write: short write")

let phys_read_into t id buf =
  match t.backend with
  | Faulty _ -> assert false
  | Memory m ->
      t.stats.reads <- t.stats.reads + 1;
      Prt_obs.Metrics.tick m_reads;
      Bytes.blit m.pages.(id) 0 buf 0 t.page_size
  | File f ->
      t.stats.reads <- t.stats.reads + 1;
      Prt_obs.Metrics.tick m_reads;
      locked_file_read t f.fd id buf

let phys_write t id buf =
  (match t.crash with Some fp -> Failpoint.on_phys_write fp | None -> ());
  match t.backend with
  | Faulty _ -> assert false
  | Memory m ->
      t.stats.writes <- t.stats.writes + 1;
      Prt_obs.Metrics.tick m_writes;
      (* Install a fresh buffer instead of blitting in place: a snapshot
         reader holding the previous buffer (from [read_shared]) keeps a
         consistent image — the array-slot store is atomic in OCaml 5,
         so a concurrent reader sees either the old page or the new one,
         never a torn mix. *)
      m.pages.(id) <- Bytes.copy buf
  | File f ->
      t.stats.writes <- t.stats.writes + 1;
      Prt_obs.Metrics.tick m_writes;
      locked_file_write t f.fd id buf

(* Uncounted zero-fill, used when recycling a freed page and when
   extending the file.  Same copy-on-write discipline as [phys_write]:
   the Memory backend installs a fresh buffer rather than clearing the
   one a shared reader may still hold. *)
let zero_page t id =
  match t.backend with
  | Faulty _ -> assert false
  | Memory m -> m.pages.(id) <- Bytes.make t.page_size '\000'
  | File f -> locked_file_write t f.fd id (Bytes.make t.page_size '\000')

let alloc_base t =
  t.stats.allocs <- t.stats.allocs + 1;
  Prt_obs.Metrics.tick m_allocs;
  let id =
    match t.free_list with
    | id :: rest ->
        t.free_list <- rest;
        Hashtbl.remove t.free_set id;
        (* Zero-fill on recycle: scrub and salvage must never mistake a
           freed node's stale bytes for live data. *)
        zero_page t id;
        id
    | [] -> (
        match t.backend with
        | Faulty _ -> assert false
        | Memory m ->
            if m.used = Array.length m.pages then begin
              let pages = Array.make (2 * Array.length m.pages) Bytes.empty in
              Array.blit m.pages 0 pages 0 m.used;
              m.pages <- pages
            end;
            m.pages.(m.used) <- Bytes.make t.page_size '\000';
            m.used <- m.used + 1;
            m.used - 1
        | File f ->
            (* Extend the file by one zero page. *)
            let id = f.used in
            f.used <- f.used + 1;
            zero_page t id;
            id)
  in
  (match t.journal with Some j -> Hashtbl.replace j.j_new id () | None -> ());
  id

let rec alloc t =
  check_open t "alloc";
  match t.backend with
  | Faulty { inner; fp } ->
      if Failpoint.on_alloc fp then
        raise (Io_error "alloc: injected allocation failure (out of space)");
      alloc inner
  | Memory _ | File _ -> alloc_base t

let rec free t id =
  check_open t "free";
  match t.backend with
  | Faulty { inner; _ } -> free inner id
  | Memory _ | File _ ->
      check_id t "free" id;
      if Hashtbl.mem t.free_set id then invalid_arg "Pager.free: double free";
      Prt_obs.Metrics.tick m_frees;
      Hashtbl.replace t.free_set id ();
      if t.defer_frees then t.pending <- id :: t.pending
      else t.free_list <- id :: t.free_list

let rec is_free t id =
  match t.backend with
  | Faulty { inner; _ } -> is_free inner id
  | Memory _ | File _ -> Hashtbl.mem t.free_set id

let parked_frees_locked b = List.concat_map snd b.gc_frees

(* All free pages — pending, generation-parked, and reusable alike: the
   free-list snapshot the superblock persists.  On reopen no pin can
   exist, so parked pages are plainly free. *)
let free_pages t =
  let b = base t in
  let parked = Mutex.protect b.mvcc_lock (fun () -> parked_frees_locked b) in
  b.pending @ parked @ b.free_list

let promote_frees t =
  let b = base t in
  b.free_list <- b.pending @ b.free_list;
  b.pending <- []

let set_defer_frees t on =
  let b = base t in
  if not on then promote_frees b;
  b.defer_frees <- on

(* --- MVCC: generation-scoped deferred frees and version GC ---

   [park_frees] moves a committed transaction's deferred frees onto a
   per-generation parking list: pages freed by the commit at generation
   [gen] were part of every tree older than [gen], so they must not be
   recycled (and zero-filled) while any reader still pins an older
   generation.  [reclaim ~upto:floor] — called only from the writing
   domain, because [free_list] is its unshared state — promotes parked
   groups with generation <= floor and drops superseded versions.
   [collect] is the reader-side half: it only drops versions, so a
   reader releasing the last pin of an old generation never touches the
   writer's free list (the next begin/commit picks the frees up). *)

let set_retain_gen t gen = (base t).retain_gen <- gen

let park_frees t ~gen =
  let b = base t in
  if b.pending <> [] then begin
    let ids = b.pending in
    b.pending <- [];
    Mutex.protect b.mvcc_lock (fun () -> b.gc_frees <- (gen, ids) :: b.gc_frees)
  end

let drop_versions_locked b ~upto =
  let stale =
    Hashtbl.fold
      (fun id vs acc ->
        if List.exists (fun v -> v.v_gen_end <= upto) vs then (id, vs) :: acc else acc)
      b.versions []
  in
  List.iter
    (fun (id, vs) ->
      match List.filter (fun v -> v.v_gen_end > upto) vs with
      | [] -> Hashtbl.remove b.versions id
      | vs' -> Hashtbl.replace b.versions id vs')
    stale

let collect t ~upto =
  let b = base t in
  Mutex.protect b.mvcc_lock (fun () -> drop_versions_locked b ~upto)

let reclaim t ~upto =
  let b = base t in
  check_open b "reclaim";
  let promoted =
    Mutex.protect b.mvcc_lock (fun () ->
        drop_versions_locked b ~upto;
        let ready, parked = List.partition (fun (g, _) -> g <= upto) b.gc_frees in
        b.gc_frees <- parked;
        List.concat_map snd ready)
  in
  b.free_list <- promoted @ b.free_list

type mvcc_stats = { live_versions : int; parked_pages : int }

let mvcc_stats t =
  let b = base t in
  Mutex.protect b.mvcc_lock (fun () ->
      {
        live_versions = Hashtbl.fold (fun _ vs n -> n + List.length vs) b.versions 0;
        parked_pages = List.length (parked_frees_locked b);
      })

let set_free_list t ids =
  let b = base t in
  let n = num_pages b in
  let ids = List.filter (fun id -> id >= 0 && id < n) ids in
  Hashtbl.reset b.free_set;
  List.iter (fun id -> Hashtbl.replace b.free_set id ()) ids;
  b.free_list <- ids;
  b.pending <- [];
  Mutex.protect b.mvcc_lock (fun () ->
      b.gc_frees <- [];
      Hashtbl.reset b.versions)

let truncate t ~used =
  let b = base t in
  check_open b "truncate";
  if used < 0 || used > num_pages b then invalid_arg "Pager.truncate: bad page count";
  (match b.backend with
  | Faulty _ -> assert false
  | Memory m -> m.used <- used
  | File f ->
      Unix.ftruncate f.fd (used * b.page_size);
      f.used <- used);
  let keep id = id < used in
  b.free_list <- List.filter keep b.free_list;
  b.pending <- List.filter keep b.pending;
  Mutex.protect b.mvcc_lock (fun () ->
      b.gc_frees <-
        List.filter_map
          (fun (g, ids) ->
            match List.filter keep ids with [] -> None | ids -> Some (g, ids))
          b.gc_frees;
      Hashtbl.iter
        (fun id _ -> if not (keep id) then Hashtbl.remove b.versions id)
        (Hashtbl.copy b.versions));
  Hashtbl.iter (fun id () -> if not (keep id) then Hashtbl.remove b.free_set id) (Hashtbl.copy b.free_set)

(* Fraction -> byte prefix that survives a torn write / short read:
   always at least one byte, never the full page. *)
let partial_len page_size frac =
  let k = int_of_float (frac *. float_of_int page_size) in
  max 1 (min (page_size - 1) k)

let stamp_page b buf =
  b.lsn <- b.lsn + 1;
  Page.stamp buf ~lsn:b.lsn

let verify_read b id buf =
  match b.backend with
  | Memory _ | Faulty _ -> ()
  | File _ -> (
      match Page.check buf with
      | Page.Fresh | Page.Valid _ -> ()
      | Page.Torn | Page.Stale_epoch _ as bad ->
          Atomic.incr b.corrupt_reads;
          Prt_obs.Metrics.tick m_corrupt;
          (* Postmortem: mark the failure on this domain's flight ring
             (and dump all rings, when a dump path is configured). *)
          Prt_obs.Flight.failure "pager.corrupt_page" ~arg:id
            ~note:(Fmt.str "%a" Page.pp_integrity bad);
          raise
            (Corrupt_page
               (Fmt.str "page %d failed trailer verification: %a" id Page.pp_integrity bad)))

let rec read_into t id buf =
  check_open t "read";
  check_id t "read" id;
  if Bytes.length buf <> t.page_size then invalid_arg "Pager.read_into: buffer size mismatch";
  match t.backend with
  | Faulty { inner; fp } -> (
      match Failpoint.on_read fp with
      | Failpoint.Ok -> read_into inner id buf
      | Failpoint.Error ->
          raise (Io_error (Printf.sprintf "read: injected transient error on page %d" id))
      | Failpoint.Partial frac ->
          (* Short read: only a prefix of the buffer is valid; poison the
             tail so nothing can silently use it. *)
          read_into inner id buf;
          let keep = partial_len t.page_size frac in
          Bytes.fill buf keep (t.page_size - keep) '\xAA';
          raise
            (Io_error
               (Printf.sprintf "read: injected short read (%d of %d bytes) on page %d" keep
                  t.page_size id)))
  | Memory _ | File _ ->
      phys_read_into t id buf;
      verify_read t id buf

let read t id =
  let buf = Bytes.create t.page_size in
  read_into t id buf;
  buf

(* Unverified read, for scrub/salvage tools that classify damage rather
   than trip over it.  Bypasses fault injection: recovery tooling is
   modelled as running against a quiesced device. *)
let read_raw t id =
  let b = base t in
  check_open b "read_raw";
  check_id b "read_raw" id;
  let buf = Bytes.create b.page_size in
  phys_read_into b id buf;
  buf

(* Domain-safe read-only page fetch for the query serving layer
   ({!Prt_rtree.Qexec}).  On the in-memory backend this returns the live
   page buffer itself — a true zero-copy read, safe because an array
   read is atomic in OCaml 5 and the serving contract forbids concurrent
   mutation of the device.  On the file backend the shared fd offset
   forces serialization: the read runs under a per-pager mutex and
   returns a fresh verified buffer.  Reads through this path bypass
   fault injection and the plain per-pager stats fields (those would
   race); they are counted in the domain-striped registry as
   [pager.shared_reads] instead. *)
(* The retained image serving generation [gen], if the page was
   overwritten by any transaction committing after it.  The per-page
   list is newest-first (descending [v_gen_end]); the right image is the
   {e oldest} retained version whose overwrite postdates [gen]. *)
let find_version b id ~gen =
  match Hashtbl.find_opt b.versions id with
  | None -> None
  | Some vs ->
      List.fold_left (fun acc v -> if v.v_gen_end > gen then Some v.v_img else acc) None vs

let read_shared ?(gen = 0) ?scratch t id =
  let b = base t in
  check_open b "read_shared";
  check_id b "read_shared" id;
  Prt_obs.Metrics.tick m_shared_reads;
  let live () =
    match b.backend with
    | Faulty _ -> assert false
    | Memory m -> m.pages.(id)
    | File f ->
        (* A caller-owned scratch buffer keeps hot query loops from
           allocating a page per uncached read.  The returned buffer is
           only valid until the caller's next read with the same
           scratch; version images below are never served through it. *)
        let buf =
          match scratch with
          | Some s when Bytes.length s = b.page_size -> s
          | Some _ -> invalid_arg "Pager.read_shared: scratch size mismatch"
          | None -> Bytes.create b.page_size
        in
        locked_file_read b f.fd id buf;
        verify_read b id buf;
        buf
  in
  if gen <= 0 then live ()
  else begin
    (* Snapshot protocol: read the live page FIRST, then consult the
       version store.  Retention always precedes the physical overwrite,
       so a store miss proves the live read predates any overwrite of
       this page by a newer generation — the race where the writer lands
       between the two steps resolves to the retained image. *)
    let live_page = match live () with buf -> Ok buf | exception e -> Error e in
    match Mutex.protect b.mvcc_lock (fun () -> find_version b id ~gen) with
    | Some img ->
        (* Version images were captured raw; serve-time verification
           mirrors the live read's contract on the file backend. *)
        verify_read b id img;
        img
    | None -> ( match live_page with Ok buf -> buf | Error e -> raise e)
  end

(* Version-store probe for the mmap read path: the retained image
   serving [gen], if any, without touching the live page.  The mapped
   snapshot protocol probes before scanning a mapped page and re-checks
   after — a miss on the post-scan probe proves the scan predated any
   overwrite, because retention always precedes the physical write. *)
let version_probe t id ~gen =
  let b = base t in
  check_open b "version_probe";
  check_id b "version_probe" id;
  if gen <= 0 then None
  else Mutex.protect b.mvcc_lock (fun () -> find_version b id ~gen)

(* --- pre-image journal ---

   Directory page payload layout (chained single pages):
     [0..3]   magic "PRJD"
     [4..7]   entry count on this page
     [8..11]  next directory page id, or -1
     [12..]   (original page id, copy page id) int32 pairs

   The first overwrite of each committed page during a transaction first
   copies its current image to a freshly allocated page and records the
   pair in the directory *before* the overwrite lands, so recovery can
   always restore the pre-transaction image. *)

let dir_magic = 0x50524A44 (* "PRJD" *)

let dir_capacity t = (Page.payload_size t.page_size - 12) / 8

let write_dir b ~write ~dir ~next entries_rev =
  let n = List.length entries_rev in
  let page = Page.create b.page_size in
  Page.set_i32 page 0 dir_magic;
  Page.set_i32 page 4 n;
  Page.set_i32 page 8 next;
  List.iteri
    (fun k (orig, copy) ->
      let i = n - 1 - k in
      Page.set_i32 page (12 + (8 * i)) orig;
      Page.set_i32 page (12 + (8 * i) + 4) copy)
    entries_rev;
  write b dir page

let journal_eligible j id =
  id < j.j_base_used
  && (not (Hashtbl.mem j.j_committed_free id))
  && (not (Hashtbl.mem j.j_map id))
  && (not (Hashtbl.mem j.j_own id))
  && not (Hashtbl.mem j.j_exempt id)

let rec write t id buf =
  check_open t "write";
  check_id t "write" id;
  if Bytes.length buf <> t.page_size then invalid_arg "Pager.write: buffer size mismatch";
  match t.backend with
  | Faulty { inner; fp } -> (
      match Failpoint.on_write fp with
      | Failpoint.Ok -> write inner id buf
      | Failpoint.Error ->
          raise (Io_error (Printf.sprintf "write: injected transient error on page %d" id))
      | Failpoint.Partial frac ->
          (* Torn write: the device persisted only a prefix of the new
             page; the tail keeps its previous contents.  The merge goes
             through the raw physical path so the torn page is NOT
             re-stamped — its checksum no longer matches, exactly as a
             real torn sector defeats its own CRC. *)
          let b = base inner in
          stamp_page b buf;
          let keep = partial_len t.page_size frac in
          let cur = Bytes.create t.page_size in
          phys_read_into b id cur;
          Bytes.blit buf 0 cur 0 keep;
          phys_write b id cur;
          raise
            (Io_error
               (Printf.sprintf "write: injected torn write (%d of %d bytes) on page %d" keep
                  t.page_size id)))
  | Memory _ | File _ ->
      (match t.journal with
      | Some j when journal_eligible j id -> journal_copy t j id
      | Some _ | None -> ());
      stamp_page t buf;
      phys_write t id buf

(* MVCC retention: the first overwrite of a committed page during a
   transaction parks its pre-image in the version store, tagged with the
   generation the transaction will commit, {e before} the overwrite
   lands.  [journal_copy] is exactly that first-overwrite point (the
   journal-eligibility test is the same question), so retention rides
   the pre-image read it already performs. *)
and retain_version b id img =
  if b.retain_gen >= 0 then begin
    let copy = Bytes.copy img in
    Mutex.protect b.mvcc_lock (fun () ->
        match Hashtbl.find_opt b.versions id with
        | Some (v :: _) when v.v_gen_end >= b.retain_gen -> ()
        | vs ->
            Hashtbl.replace b.versions id
              ({ v_gen_end = b.retain_gen; v_img = copy } :: Option.value vs ~default:[]))
  end

and journal_copy b j id =
  let pre = Bytes.create b.page_size in
  phys_read_into b id pre;
  (* Retain before [write] below stamps [pre]'s trailer for the copy
     page, and before the caller's overwrite of [id] can land. *)
  retain_version b id pre;
  let cid = alloc_base b in
  Hashtbl.replace j.j_own cid ();
  j.j_pages <- cid :: j.j_pages;
  Hashtbl.replace j.j_map id cid;
  (* Copy first, then publish it in the directory: a crash between the
     two leaves the entry unrecorded, but the original page has not been
     overwritten yet, so recovery without it is still exact. *)
  write b cid pre;
  if List.length j.j_tail_entries >= dir_capacity b then begin
    let d = alloc_base b in
    Hashtbl.replace j.j_own d ();
    j.j_pages <- d :: j.j_pages;
    (* New tail (already holding the entry) becomes reachable only once
       the old tail's next pointer lands. *)
    write_dir b ~write ~dir:d ~next:(-1) [ (id, cid) ];
    write_dir b ~write ~dir:j.j_tail ~next:d j.j_tail_entries;
    j.j_tail <- d;
    j.j_tail_entries <- [ (id, cid) ]
  end
  else begin
    j.j_tail_entries <- (id, cid) :: j.j_tail_entries;
    write_dir b ~write ~dir:j.j_tail ~next:(-1) j.j_tail_entries
  end

let begin_journal t ~exempt =
  let b = base t in
  check_open b "begin_journal";
  if b.journal <> None then invalid_arg "Pager.begin_journal: journal already active";
  if b.pending <> [] then invalid_arg "Pager.begin_journal: unpromoted deferred frees";
  let j_base_used = num_pages b in
  let j_committed_free = Hashtbl.copy b.free_set in
  let head = alloc_base b in
  let j =
    {
      j_base_used;
      j_committed_free;
      j_map = Hashtbl.create 32;
      j_own = Hashtbl.create 8;
      j_exempt = Hashtbl.create 4;
      j_new = Hashtbl.create 16;
      j_pages = [ head ];
      j_head = head;
      j_tail = head;
      j_tail_entries = [];
    }
  in
  List.iter (fun id -> Hashtbl.replace j.j_exempt id ()) exempt;
  Hashtbl.replace j.j_own head ();
  b.journal <- Some j;
  write_dir b ~write ~dir:head ~next:(-1) [];
  head

let journal_head t = match (base t).journal with Some j -> Some j.j_head | None -> None

(* The set of pages this transaction will have modified if it commits:
   committed pages it overwrote (journalled) plus pages it allocated,
   minus the journal's own bookkeeping pages, exempt pages (superblock
   slots), and anything freed again before commit.  This is what the
   shadow-copy layer snapshots *post-image* right before commit, so the
   online scrub can later repair exactly the pages whose committed
   content is known. *)
let txn_modified_pages t =
  let b = base t in
  match b.journal with
  | None -> []
  | Some j ->
      let acc = Hashtbl.create 64 in
      Hashtbl.iter (fun id _ -> Hashtbl.replace acc id ()) j.j_map;
      Hashtbl.iter (fun id () -> Hashtbl.replace acc id ()) j.j_new;
      Hashtbl.fold
        (fun id () out ->
          if Hashtbl.mem j.j_own id || Hashtbl.mem j.j_exempt id || Hashtbl.mem b.free_set id
          then out
          else id :: out)
        acc []
      |> List.sort Int.compare

let end_journal t =
  let b = base t in
  match b.journal with
  | None -> invalid_arg "Pager.end_journal: no journal active"
  | Some j ->
      b.journal <- None;
      j.j_pages

let recover_journal t ~head =
  let b = base t in
  check_open b "recover_journal";
  if b.journal <> None then invalid_arg "Pager.recover_journal: journal active";
  let restored = ref 0 in
  let rec walk dir =
    if dir >= 0 && dir < num_pages b then begin
      let page = read b dir in
      if Page.get_i32 page 0 <> dir_magic then
        raise (Corrupt_page (Printf.sprintf "page %d: bad journal directory magic" dir));
      let n = Page.get_i32 page 4 in
      let next = Page.get_i32 page 8 in
      if n < 0 || n > dir_capacity b then
        raise (Corrupt_page (Printf.sprintf "page %d: bad journal entry count %d" dir n));
      for i = 0 to n - 1 do
        let orig = Page.get_i32 page (12 + (8 * i)) in
        let copy = Page.get_i32 page (12 + (8 * i) + 4) in
        if orig >= 0 && orig < num_pages b && copy >= 0 && copy < num_pages b then begin
          let img = read b copy in
          write b orig img;
          incr restored
        end
      done;
      walk next
    end
  in
  walk head;
  !restored

let stats t = t.stats

let snapshot t =
  { s_reads = t.stats.reads; s_writes = t.stats.writes; s_allocs = t.stats.allocs }

let diff ~before ~after =
  {
    s_reads = after.s_reads - before.s_reads;
    s_writes = after.s_writes - before.s_writes;
    s_allocs = after.s_allocs - before.s_allocs;
  }

let total_io snap = snap.s_reads + snap.s_writes

let reset_stats t =
  t.stats.reads <- 0;
  t.stats.writes <- 0;
  t.stats.allocs <- 0

let rec close t =
  if not t.closed then begin
    t.closed <- true;
    match t.backend with Memory _ -> () | File f -> Unix.close f.fd | Faulty f -> close f.inner
  end

let is_closed t = t.closed

let pp_snapshot ppf s =
  Fmt.pf ppf "reads=%d writes=%d allocs=%d io=%d" s.s_reads s.s_writes s.s_allocs (total_io s)
