(* The simulated disk: a flat array of fixed-size pages addressed by page
   id, with every read and write counted.  This plays the role of the
   paper's physical disk — all reported "I/Os" in the experiments are
   page reads/writes observed here.

   Two backends are provided: an in-memory one (default for experiments,
   so benchmarks measure the algorithms and not the host filesystem) and
   a real-file one used by the CLI so indexes persist across runs.  Freed
   pages go on a free list and are handed out again by [alloc]; this is
   what keeps space bounded under the dynamic update algorithms. *)

type stats = { mutable reads : int; mutable writes : int; mutable allocs : int }

type snapshot = { s_reads : int; s_writes : int; s_allocs : int }

type backend =
  | Memory of { mutable pages : bytes array; mutable used : int }
  | File of { fd : Unix.file_descr; mutable used : int }

type t = {
  page_size : int;
  backend : backend;
  stats : stats;
  mutable free_list : int list;
  free_set : (int, unit) Hashtbl.t;
  mutable closed : bool;
}

let default_page_size = 4096

let create_memory ?(page_size = default_page_size) () =
  if page_size <= 0 then invalid_arg "Pager.create_memory: page_size must be positive";
  {
    page_size;
    backend = Memory { pages = Array.make 64 Bytes.empty; used = 0 };
    stats = { reads = 0; writes = 0; allocs = 0 };
    free_list = [];
    free_set = Hashtbl.create 16;
    closed = false;
  }

let create_file ?(page_size = default_page_size) path =
  if page_size <= 0 then invalid_arg "Pager.create_file: page_size must be positive";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  {
    page_size;
    backend = File { fd; used = 0 };
    stats = { reads = 0; writes = 0; allocs = 0 };
    free_list = [];
    free_set = Hashtbl.create 16;
    closed = false;
  }

let open_file ?(page_size = default_page_size) path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let bytes = (Unix.fstat fd).Unix.st_size in
  if bytes mod page_size <> 0 then begin
    Unix.close fd;
    invalid_arg
      (Printf.sprintf "Pager.open_file: %s size %d is not a multiple of the page size %d" path
         bytes page_size)
  end;
  {
    page_size;
    backend = File { fd; used = bytes / page_size };
    stats = { reads = 0; writes = 0; allocs = 0 };
    free_list = [];
    free_set = Hashtbl.create 16;
    closed = false;
  }

let page_size t = t.page_size

let num_pages t =
  match t.backend with Memory m -> m.used | File f -> f.used

let check_open t op = if t.closed then invalid_arg ("Pager." ^ op ^ ": pager is closed")

let check_id t op id =
  if id < 0 || id >= num_pages t then
    invalid_arg (Printf.sprintf "Pager.%s: page %d out of range (0..%d)" op id (num_pages t - 1))

let alloc t =
  check_open t "alloc";
  t.stats.allocs <- t.stats.allocs + 1;
  match t.free_list with
  | id :: rest ->
      t.free_list <- rest;
      Hashtbl.remove t.free_set id;
      id
  | [] -> (
      match t.backend with
      | Memory m ->
          if m.used = Array.length m.pages then begin
            let pages = Array.make (2 * Array.length m.pages) Bytes.empty in
            Array.blit m.pages 0 pages 0 m.used;
            m.pages <- pages
          end;
          m.pages.(m.used) <- Bytes.make t.page_size '\000';
          m.used <- m.used + 1;
          m.used - 1
      | File f ->
          (* Extend the file by one zero page. *)
          let id = f.used in
          let off = id * t.page_size in
          ignore (Unix.lseek f.fd off Unix.SEEK_SET);
          let zeros = Bytes.make t.page_size '\000' in
          let n = Unix.write f.fd zeros 0 t.page_size in
          if n <> t.page_size then failwith "Pager.alloc: short write";
          f.used <- f.used + 1;
          id)

let free t id =
  check_open t "free";
  check_id t "free" id;
  if Hashtbl.mem t.free_set id then invalid_arg "Pager.free: double free";
  Hashtbl.replace t.free_set id ();
  t.free_list <- id :: t.free_list

let read_into t id buf =
  check_open t "read";
  check_id t "read" id;
  if Bytes.length buf <> t.page_size then invalid_arg "Pager.read_into: buffer size mismatch";
  t.stats.reads <- t.stats.reads + 1;
  match t.backend with
  | Memory m -> Bytes.blit m.pages.(id) 0 buf 0 t.page_size
  | File f ->
      ignore (Unix.lseek f.fd (id * t.page_size) Unix.SEEK_SET);
      let rec fill off =
        if off < t.page_size then begin
          let n = Unix.read f.fd buf off (t.page_size - off) in
          if n = 0 then failwith "Pager.read: unexpected end of file";
          fill (off + n)
        end
      in
      fill 0

let read t id =
  let buf = Bytes.create t.page_size in
  read_into t id buf;
  buf

let write t id buf =
  check_open t "write";
  check_id t "write" id;
  if Bytes.length buf <> t.page_size then invalid_arg "Pager.write: buffer size mismatch";
  t.stats.writes <- t.stats.writes + 1;
  match t.backend with
  | Memory m -> Bytes.blit buf 0 m.pages.(id) 0 t.page_size
  | File f ->
      ignore (Unix.lseek f.fd (id * t.page_size) Unix.SEEK_SET);
      let n = Unix.write f.fd buf 0 t.page_size in
      if n <> t.page_size then failwith "Pager.write: short write"

let stats t = t.stats

let snapshot t =
  { s_reads = t.stats.reads; s_writes = t.stats.writes; s_allocs = t.stats.allocs }

let diff ~before ~after =
  {
    s_reads = after.s_reads - before.s_reads;
    s_writes = after.s_writes - before.s_writes;
    s_allocs = after.s_allocs - before.s_allocs;
  }

let total_io snap = snap.s_reads + snap.s_writes

let reset_stats t =
  t.stats.reads <- 0;
  t.stats.writes <- 0;
  t.stats.allocs <- 0

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.backend with Memory _ -> () | File f -> Unix.close f.fd
  end

let pp_snapshot ppf s =
  Fmt.pf ppf "reads=%d writes=%d allocs=%d" s.s_reads s.s_writes s.s_allocs
