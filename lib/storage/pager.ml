(* The simulated disk: a flat array of fixed-size pages addressed by page
   id, with every read and write counted.  This plays the role of the
   paper's physical disk — all reported "I/Os" in the experiments are
   page reads/writes observed here.

   Two backends are provided: an in-memory one (default for experiments,
   so benchmarks measure the algorithms and not the host filesystem) and
   a real-file one used by the CLI so indexes persist across runs.  Freed
   pages go on a free list and are handed out again by [alloc]; this is
   what keeps space bounded under the dynamic update algorithms.

   A third backend, [Faulty], wraps any pager with a {!Failpoint} policy
   and turns its verdicts into real device misbehaviour: transient
   [Io_error]s, torn writes that persist only a prefix of the new page,
   short reads that clobber only a prefix of the buffer.  The wrapper
   shares the inner pager's counters, so with an all-zero policy it is
   observationally identical to the pager it wraps. *)

exception Io_error of string

let () =
  Printexc.register_printer (function
    | Io_error msg -> Some ("Pager.Io_error: " ^ msg)
    | _ -> None)

type stats = { mutable reads : int; mutable writes : int; mutable allocs : int }

type snapshot = { s_reads : int; s_writes : int; s_allocs : int }

(* Observability mirrors: the same events that bump [stats] also bump
   these registry counters (no-ops unless collection is on), which is
   what lets {!Prt_obs.Trace} spans attribute I/O to build/query phases.
   The pager's own [stats] are never derived from these — fault-free
   accounting stays bit-identical whether or not anyone is watching. *)
let m_reads = Prt_obs.Metrics.counter "pager.reads"
let m_writes = Prt_obs.Metrics.counter "pager.writes"
let m_allocs = Prt_obs.Metrics.counter "pager.allocs"
let m_frees = Prt_obs.Metrics.counter "pager.frees"

type backend =
  | Memory of { mutable pages : bytes array; mutable used : int }
  | File of { fd : Unix.file_descr; mutable used : int }
  | Faulty of { inner : t; fp : Failpoint.t }

and t = {
  page_size : int;
  backend : backend;
  stats : stats;
  mutable free_list : int list;
  free_set : (int, unit) Hashtbl.t;
  mutable closed : bool;
}

let default_page_size = 4096

let create_memory ?(page_size = default_page_size) () =
  if page_size <= 0 then invalid_arg "Pager.create_memory: page_size must be positive";
  {
    page_size;
    backend = Memory { pages = Array.make 64 Bytes.empty; used = 0 };
    stats = { reads = 0; writes = 0; allocs = 0 };
    free_list = [];
    free_set = Hashtbl.create 16;
    closed = false;
  }

let create_file ?(page_size = default_page_size) path =
  if page_size <= 0 then invalid_arg "Pager.create_file: page_size must be positive";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  {
    page_size;
    backend = File { fd; used = 0 };
    stats = { reads = 0; writes = 0; allocs = 0 };
    free_list = [];
    free_set = Hashtbl.create 16;
    closed = false;
  }

let open_file ?(page_size = default_page_size) path =
  if page_size <= 0 then invalid_arg "Pager.open_file: page_size must be positive";
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  (* Anything that fails between here and a fully constructed pager must
     not leak the descriptor. *)
  let used =
    match
      let bytes = (Unix.fstat fd).Unix.st_size in
      if bytes mod page_size <> 0 then
        invalid_arg
          (Printf.sprintf "Pager.open_file: %s size %d is not a multiple of the page size %d"
             path bytes page_size);
      bytes / page_size
    with
    | used -> used
    | exception e ->
        Unix.close fd;
        raise e
  in
  {
    page_size;
    backend = File { fd; used };
    stats = { reads = 0; writes = 0; allocs = 0 };
    free_list = [];
    free_set = Hashtbl.create 16;
    closed = false;
  }

(* The wrapper aliases the inner pager's [stats] record, so I/O
   accounting is identical whether callers observe the wrapper or the
   wrapped pager. *)
let wrap_faulty inner fp =
  {
    page_size = inner.page_size;
    backend = Faulty { inner; fp };
    stats = inner.stats;
    free_list = [];
    free_set = Hashtbl.create 1;
    closed = false;
  }

let failpoint t = match t.backend with Faulty f -> Some f.fp | Memory _ | File _ -> None

let page_size t = t.page_size

let rec num_pages t =
  match t.backend with Memory m -> m.used | File f -> f.used | Faulty f -> num_pages f.inner

let check_open t op = if t.closed then invalid_arg ("Pager." ^ op ^ ": pager is closed")

let check_id t op id =
  if id < 0 || id >= num_pages t then
    invalid_arg (Printf.sprintf "Pager.%s: page %d out of range (0..%d)" op id (num_pages t - 1))

let rec alloc t =
  check_open t "alloc";
  match t.backend with
  | Faulty { inner; fp } ->
      if Failpoint.on_alloc fp then
        raise (Io_error "alloc: injected allocation failure (out of space)");
      alloc inner
  | Memory _ | File _ -> (
      t.stats.allocs <- t.stats.allocs + 1;
      Prt_obs.Metrics.tick m_allocs;
      match t.free_list with
      | id :: rest ->
          t.free_list <- rest;
          Hashtbl.remove t.free_set id;
          id
      | [] -> (
          match t.backend with
          | Faulty _ -> assert false
          | Memory m ->
              if m.used = Array.length m.pages then begin
                let pages = Array.make (2 * Array.length m.pages) Bytes.empty in
                Array.blit m.pages 0 pages 0 m.used;
                m.pages <- pages
              end;
              m.pages.(m.used) <- Bytes.make t.page_size '\000';
              m.used <- m.used + 1;
              m.used - 1
          | File f ->
              (* Extend the file by one zero page. *)
              let id = f.used in
              let off = id * t.page_size in
              ignore (Unix.lseek f.fd off Unix.SEEK_SET);
              let zeros = Bytes.make t.page_size '\000' in
              let n = Unix.write f.fd zeros 0 t.page_size in
              if n <> t.page_size then failwith "Pager.alloc: short write";
              f.used <- f.used + 1;
              id))

let rec free t id =
  check_open t "free";
  match t.backend with
  | Faulty { inner; _ } -> free inner id
  | Memory _ | File _ ->
      check_id t "free" id;
      if Hashtbl.mem t.free_set id then invalid_arg "Pager.free: double free";
      Prt_obs.Metrics.tick m_frees;
      Hashtbl.replace t.free_set id ();
      t.free_list <- id :: t.free_list

let rec is_free t id =
  match t.backend with
  | Faulty { inner; _ } -> is_free inner id
  | Memory _ | File _ -> Hashtbl.mem t.free_set id

(* Fraction -> byte prefix that survives a torn write / short read:
   always at least one byte, never the full page. *)
let partial_len page_size frac =
  let k = int_of_float (frac *. float_of_int page_size) in
  max 1 (min (page_size - 1) k)

let rec read_into t id buf =
  check_open t "read";
  check_id t "read" id;
  if Bytes.length buf <> t.page_size then invalid_arg "Pager.read_into: buffer size mismatch";
  match t.backend with
  | Faulty { inner; fp } -> (
      match Failpoint.on_read fp with
      | Failpoint.Ok -> read_into inner id buf
      | Failpoint.Error ->
          raise (Io_error (Printf.sprintf "read: injected transient error on page %d" id))
      | Failpoint.Partial frac ->
          (* Short read: only a prefix of the buffer is valid; poison the
             tail so nothing can silently use it. *)
          read_into inner id buf;
          let keep = partial_len t.page_size frac in
          Bytes.fill buf keep (t.page_size - keep) '\xAA';
          raise
            (Io_error
               (Printf.sprintf "read: injected short read (%d of %d bytes) on page %d" keep
                  t.page_size id)))
  | Memory m ->
      t.stats.reads <- t.stats.reads + 1;
      Prt_obs.Metrics.tick m_reads;
      Bytes.blit m.pages.(id) 0 buf 0 t.page_size
  | File f ->
      t.stats.reads <- t.stats.reads + 1;
      Prt_obs.Metrics.tick m_reads;
      ignore (Unix.lseek f.fd (id * t.page_size) Unix.SEEK_SET);
      let rec fill off =
        if off < t.page_size then begin
          let n = Unix.read f.fd buf off (t.page_size - off) in
          if n = 0 then failwith "Pager.read: unexpected end of file";
          fill (off + n)
        end
      in
      fill 0

let read t id =
  let buf = Bytes.create t.page_size in
  read_into t id buf;
  buf

let rec write t id buf =
  check_open t "write";
  check_id t "write" id;
  if Bytes.length buf <> t.page_size then invalid_arg "Pager.write: buffer size mismatch";
  match t.backend with
  | Faulty { inner; fp } -> (
      match Failpoint.on_write fp with
      | Failpoint.Ok -> write inner id buf
      | Failpoint.Error ->
          raise (Io_error (Printf.sprintf "write: injected transient error on page %d" id))
      | Failpoint.Partial frac ->
          (* Torn write: the device persisted only a prefix of the new
             page; the tail keeps its previous contents. *)
          let keep = partial_len t.page_size frac in
          let cur = Bytes.create t.page_size in
          read_into inner id cur;
          Bytes.blit buf 0 cur 0 keep;
          write inner id cur;
          raise
            (Io_error
               (Printf.sprintf "write: injected torn write (%d of %d bytes) on page %d" keep
                  t.page_size id)))
  | Memory m ->
      t.stats.writes <- t.stats.writes + 1;
      Prt_obs.Metrics.tick m_writes;
      Bytes.blit buf 0 m.pages.(id) 0 t.page_size
  | File f ->
      t.stats.writes <- t.stats.writes + 1;
      Prt_obs.Metrics.tick m_writes;
      ignore (Unix.lseek f.fd (id * t.page_size) Unix.SEEK_SET);
      let n = Unix.write f.fd buf 0 t.page_size in
      if n <> t.page_size then failwith "Pager.write: short write"

let stats t = t.stats

let snapshot t =
  { s_reads = t.stats.reads; s_writes = t.stats.writes; s_allocs = t.stats.allocs }

let diff ~before ~after =
  {
    s_reads = after.s_reads - before.s_reads;
    s_writes = after.s_writes - before.s_writes;
    s_allocs = after.s_allocs - before.s_allocs;
  }

let total_io snap = snap.s_reads + snap.s_writes

let reset_stats t =
  t.stats.reads <- 0;
  t.stats.writes <- 0;
  t.stats.allocs <- 0

let rec close t =
  if not t.closed then begin
    t.closed <- true;
    match t.backend with Memory _ -> () | File f -> Unix.close f.fd | Faulty f -> close f.inner
  end

let pp_snapshot ppf s =
  Fmt.pf ppf "reads=%d writes=%d allocs=%d io=%d" s.s_reads s.s_writes s.s_allocs (total_io s)
