(** Bounded map with least-recently-used eviction. *)

type ('k, 'v) t

val create : int -> ('k, 'v) t
(** [create capacity]; raises [Invalid_argument] if [capacity < 1]. *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; marks the binding most recently used. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test without touching recency. *)

val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Insert or update a binding (marking it most recently used) and return
    the evicted least-recently-used binding, if the capacity was
    exceeded. *)

val remove : ('k, 'v) t -> 'k -> 'v option
(** Remove and return a binding. *)

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
(** Iterate over all bindings in unspecified order, without touching
    recency. *)

val clear : ('k, 'v) t -> unit
