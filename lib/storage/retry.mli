(** Shared retry policy for transient storage faults: bounded attempts,
    deterministic jittered exponential backoff, and an optional
    per-device circuit breaker.

    This is the single fault-absorption engine behind
    {!Buffer_pool} and [Record_file].  {!run} catches {e only}
    {!Pager.Io_error} — the storage stack's one transient exception.
    {!Pager.Corrupt_page} (platter damage: retrying is useless and hides
    the page from the scrub) and [Failpoint.Simulated_crash] always
    propagate untouched.

    Backoff is simulated, never slept: units accumulate in {!stats} and
    advance {!Prt_util.Deadline}'s virtual clock when one is installed,
    so retry storms visibly consume deadline budget under test.

    The circuit breaker counts consecutive {e operations} that exhausted
    their whole attempt budget — not individual faulted attempts — so a
    merely lossy device (faults absorbed within the budget) never trips
    it.  Tripped, it fails fast with [Io_error] for [breaker_cooldown]
    operations (counted as [rejected]), then half-opens: the next
    operation is a probe that closes the breaker on success or re-trips
    it on failure. *)

type policy = {
  attempts : int;  (** Total attempts per operation (>= 1). *)
  backoff_base : int;
      (** Base of the exponential backoff: retry [k] charges
          [backoff_base * 2^(k-1)] units (plus jitter), capped at
          [max_backoff]. *)
  max_backoff : int;  (** Cap on the un-jittered per-retry charge. *)
  jitter : float;
      (** Extra backoff fraction in [0, 1], drawn from the seeded stream:
          retry [k] charges up to [jitter * base] additional units. *)
  breaker_threshold : int;
      (** Consecutive exhausted operations before the breaker trips;
          [0] disables the breaker. *)
  breaker_cooldown : int;  (** Operations failed fast while open (>= 1). *)
  seed : int;  (** Jitter stream seed. *)
}

val default_policy : policy
(** 5 attempts, base 1, 25% jitter, breaker disabled — mirrors the
    historical [Buffer_pool.default_retry] behaviour. *)

(** Live counters (shared with [Buffer_pool.degraded]). *)
type stats = {
  mutable faults : int;  (** [Io_error]s seen from the device. *)
  mutable retries : int;  (** Re-attempts made after a fault. *)
  mutable backoff : int;  (** Total simulated backoff units charged. *)
  mutable failures : int;  (** Operations that exhausted their attempts. *)
  mutable last_error : string option;
  mutable rejected : int;  (** Operations failed fast by the open breaker. *)
  mutable trips : int;  (** Closed/half-open → open transitions. *)
}

type event = Fault | Retried | Failed | Rejected | Tripped

type t

val create : ?policy:policy -> ?observe:(event -> unit) -> unit -> t
(** [observe] is called synchronously on each event — the hook callers
    use to mirror into their own metrics (the engine itself touches no
    registry). *)

val run : t -> op:string -> (unit -> 'a) -> 'a
(** Run [f] under the policy.  Re-raises [Pager.Io_error] tagged with
    [op] once the budget is exhausted or the breaker rejects. *)

val stats : t -> stats
val policy : t -> policy
val breaker_state : t -> [ `Closed | `Open | `Half_open ]

(** Typed breaker health for surfaces that report it (the serving
    tier's health reply, [prt stats]): open additionally says how many
    fail-fast operations remain before the half-open probe. *)
type breaker_health =
  | Breaker_closed
  | Breaker_open of { cooldown_left : int }
  | Breaker_half_open

val breaker_health : t -> breaker_health
val pp_breaker_health : Format.formatter -> breaker_health -> unit

val reset : t -> unit
(** Zero the counters and close the breaker (the jitter stream position
    is kept). *)

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit
