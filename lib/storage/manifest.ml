(* The CRC'd atomic-rename component manifest; see manifest.mli for the
   publication discipline. *)

type component = { mc_level : int; mc_seq : int; mc_file : string; mc_count : int }

type t = {
  m_seq : int;
  m_next : int;
  m_wal_floor : int;
  m_components : component list;
  m_tombstones : int list;
  m_last_merge : string;
}

let empty =
  {
    m_seq = 0;
    m_next = 1;
    m_wal_floor = 0;
    m_components = [];
    m_tombstones = [];
    m_last_merge = "none";
  }

let filename seq = Printf.sprintf "MANIFEST-%06d" seq

let seq_of_filename name =
  if String.length name = 15 && String.sub name 0 9 = "MANIFEST-" then
    int_of_string_opt (String.sub name 9 6)
  else None

(* --- encoding ---

   magic "PRMF" | version u32 | crc u32 over everything after this
   field | m_seq | m_next | m_wal_floor | ncomponents | ntombstones |
   last_merge_len | components (level, seq, count, file_len, file
   bytes) | tombstone ids | last_merge bytes.  All integers u32
   little-endian. *)

let magic = "PRMF"
let version = 1

let put_u32 b v = Buffer.add_int32_le b (Int32.of_int v)

let encode t =
  let body = Buffer.create 256 in
  put_u32 body t.m_seq;
  put_u32 body t.m_next;
  put_u32 body t.m_wal_floor;
  put_u32 body (List.length t.m_components);
  put_u32 body (List.length t.m_tombstones);
  put_u32 body (String.length t.m_last_merge);
  List.iter
    (fun c ->
      put_u32 body c.mc_level;
      put_u32 body c.mc_seq;
      put_u32 body c.mc_count;
      put_u32 body (String.length c.mc_file);
      Buffer.add_string body c.mc_file)
    t.m_components;
  List.iter (fun id -> put_u32 body id) t.m_tombstones;
  Buffer.add_string body t.m_last_merge;
  let body = Buffer.to_bytes body in
  let out = Bytes.create (12 + Bytes.length body) in
  Bytes.blit_string magic 0 out 0 4;
  Bytes.set_int32_le out 4 (Int32.of_int version);
  Bytes.set_int32_le out 8
    (Int32.of_int (Page.crc32c body ~pos:0 ~len:(Bytes.length body)));
  Bytes.blit body 0 out 12 (Bytes.length body);
  out

let get_u32 buf pos = Int32.to_int (Bytes.get_int32_le buf pos) land 0xFFFFFFFF

let decode buf =
  let n = Bytes.length buf in
  if n < 36 then None
  else if Bytes.sub_string buf 0 4 <> magic then None
  else if get_u32 buf 4 <> version then None
  else if Page.crc32c buf ~pos:12 ~len:(n - 12) <> get_u32 buf 8 then None
  else
    try
      let m_seq = get_u32 buf 12 in
      let m_next = get_u32 buf 16 in
      let m_wal_floor = get_u32 buf 20 in
      let ncomp = get_u32 buf 24 in
      let ntomb = get_u32 buf 28 in
      let lm_len = get_u32 buf 32 in
      let pos = ref 36 in
      let m_components =
        List.init ncomp (fun _ ->
            let mc_level = get_u32 buf !pos in
            let mc_seq = get_u32 buf (!pos + 4) in
            let mc_count = get_u32 buf (!pos + 8) in
            let flen = get_u32 buf (!pos + 12) in
            let mc_file = Bytes.sub_string buf (!pos + 16) flen in
            pos := !pos + 16 + flen;
            { mc_level; mc_seq; mc_file; mc_count })
      in
      let m_tombstones =
        List.init ntomb (fun i -> get_u32 buf (!pos + (4 * i)))
      in
      pos := !pos + (4 * ntomb);
      let m_last_merge = Bytes.sub_string buf !pos lm_len in
      Some { m_seq; m_next; m_wal_floor; m_components; m_tombstones; m_last_merge }
    with Invalid_argument _ -> None

(* --- publication --- *)

exception Published_unsynced of string

let write ~fsops ~dir t =
  let name = filename t.m_seq in
  let final = Filename.concat dir name in
  let tmp = final ^ ".tmp" in
  let data = encode t in
  let fd = Fsops.create_file fsops tmp in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try Fsops.write fsops fd data
       with Pager.Io_error _ as e ->
         (* leave a clean slate for the retry; the tmp name is reused *)
         (try Unix.ftruncate fd 0 with Unix.Unix_error _ -> ());
         raise e);
      Fsops.fsync fsops fd);
  Fsops.rename fsops ~src:tmp ~dst:final;
  (* The rename is the publication point: from here on [load] picks this
     manifest, so a failure must never read as "not published" — the
     caller would roll back a swap that is already the on-disk truth. *)
  (try Fsops.fsync_dir fsops dir
   with Pager.Io_error m -> raise (Published_unsynced m));
  (* Keep the immediate predecessor as bit-rot insurance; everything
     older is dead weight.  Best-effort — a crash here just leaves
     orphans for the opener. *)
  Array.iter
    (fun entry ->
      match seq_of_filename entry with
      | Some s when s < t.m_seq - 1 -> Fsops.unlink fsops (Filename.concat dir entry)
      | _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||])

let read_file path =
  match Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> None
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let n = (Unix.fstat fd).Unix.st_size in
          let buf = Bytes.create n in
          let rec fill pos =
            if pos < n then
              let r = Unix.read fd buf pos (n - pos) in
              if r = 0 then pos else fill (pos + r)
            else pos
          in
          if fill 0 = n then Some buf else None)

let load dir =
  let candidates =
    (try Sys.readdir dir with Sys_error _ -> [||])
    |> Array.to_list
    |> List.filter_map (fun name ->
           match seq_of_filename name with Some s -> Some (s, name) | None -> None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  let rec pick = function
    | [] -> None
    | (_, name) :: rest -> (
        match Option.bind (read_file (Filename.concat dir name)) decode with
        | Some m -> Some (m, name)
        | None -> pick rest)
  in
  pick candidates
