(* Domain-safe sharded cache of decoded pages, the read-side companion
   of the (single-domain) write-back {!Buffer_pool}.

   The buffer pool caches raw page bytes and is deliberately not safe to
   share across domains; the query serving layer instead keeps *decoded*
   values (e.g. R-tree nodes) in this cache, so the hot internal levels
   of an index are decoded once per epoch instead of once per visit, and
   any number of domains can probe concurrently.  Keys are page ids,
   spread over N shards by a multiplicative hash; each shard is a small
   hash table plus FIFO eviction queue guarded by its own mutex, so
   contention is 1/N of a single-lock design.

   Epoch invalidation: every cached value is tagged with the epoch it
   was decoded under (callers use the index file's format-v2 superblock
   commit counter).  A probe under a newer epoch treats the entry as
   absent, drops it, and counts an [invalidation] — committing a
   transaction implicitly invalidates the whole cache without touching
   it.  Entries are decoded while holding the shard lock, so a page is
   decoded exactly once per epoch no matter how many domains race for
   it (this also makes the miss count deterministic for a quiesced
   tree: one miss per distinct page reached, per epoch).

   Counters live per shard (guarded by the shard lock) and are summed on
   demand; this module never touches the {!Prt_obs} registry — the
   executor mirrors the deltas from its coordinating domain, keeping the
   (single-domain) registry out of parallel code. *)

type 'v slot = { epoch : int; value : 'v }

type 'v shard = {
  lock : Mutex.t;
  tbl : (int, 'v slot) Hashtbl.t;
  order : int Queue.t; (* insertion order, for FIFO eviction *)
  capacity : int; (* per shard *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;
}

type 'v t = { shards : 'v shard array }

type stats = {
  st_hits : int;
  st_misses : int;
  st_invalidations : int;
  st_evictions : int;
  st_entries : int;
}

let default_shards = 64
let default_capacity = 65536

(* Round up to a power of two so shard selection is a mask. *)
let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(shards = default_shards) ?(capacity = default_capacity) () =
  if shards < 1 then invalid_arg "Shard_cache.create: shards must be >= 1";
  if capacity < shards then invalid_arg "Shard_cache.create: capacity below one entry per shard";
  let shards = pow2_at_least shards in
  let per_shard = max 1 (capacity / shards) in
  {
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            tbl = Hashtbl.create 64;
            order = Queue.create ();
            capacity = per_shard;
            hits = 0;
            misses = 0;
            invalidations = 0;
            evictions = 0;
          });
  }

(* Fibonacci-hash the page id so sequentially allocated pages spread
   evenly over the shards instead of striping. *)
let shard_of t id =
  let h = (id * 0x9E3779B1) lsr 16 in
  t.shards.(h land (Array.length t.shards - 1))

(* The FIFO queue may hold ids whose binding was already replaced by an
   epoch invalidation; skip those rather than evicting a live page. *)
let evict_one s =
  let rec go () =
    match Queue.take_opt s.order with
    | None -> ()
    | Some id ->
        if Hashtbl.mem s.tbl id then begin
          Hashtbl.remove s.tbl id;
          s.evictions <- s.evictions + 1
        end
        else go ()
  in
  go ()

let find_or_add t ~epoch id decode =
  let s = shard_of t id in
  Mutex.protect s.lock (fun () ->
      match Hashtbl.find_opt s.tbl id with
      | Some slot when slot.epoch = epoch ->
          s.hits <- s.hits + 1;
          slot.value
      | stale ->
          if stale <> None then begin
            s.invalidations <- s.invalidations + 1;
            Hashtbl.remove s.tbl id
          end;
          s.misses <- s.misses + 1;
          let value = decode () in
          if Hashtbl.length s.tbl >= s.capacity then evict_one s;
          Hashtbl.replace s.tbl id { epoch; value };
          Queue.add id s.order;
          value)

let find t ~epoch id =
  let s = shard_of t id in
  Mutex.protect s.lock (fun () ->
      match Hashtbl.find_opt s.tbl id with
      | Some slot when slot.epoch = epoch ->
          s.hits <- s.hits + 1;
          Some slot.value
      | _ -> None)

let clear t =
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          Hashtbl.reset s.tbl;
          Queue.clear s.order))
    t.shards

let stats t =
  Array.fold_left
    (fun acc s ->
      Mutex.protect s.lock (fun () ->
          {
            st_hits = acc.st_hits + s.hits;
            st_misses = acc.st_misses + s.misses;
            st_invalidations = acc.st_invalidations + s.invalidations;
            st_evictions = acc.st_evictions + s.evictions;
            st_entries = acc.st_entries + Hashtbl.length s.tbl;
          }))
    { st_hits = 0; st_misses = 0; st_invalidations = 0; st_evictions = 0; st_entries = 0 }
    t.shards

let reset_counters t =
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          s.hits <- 0;
          s.misses <- 0;
          s.invalidations <- 0;
          s.evictions <- 0))
    t.shards

let hit_ratio st =
  let total = st.st_hits + st.st_misses in
  if total = 0 then Float.nan else float_of_int st.st_hits /. float_of_int total

let pp_stats ppf st =
  let ratio = hit_ratio st in
  Fmt.pf ppf "hits=%d misses=%d invalidated=%d evicted=%d entries=%d hit_ratio=%s" st.st_hits
    st.st_misses st.st_invalidations st.st_evictions st.st_entries
    (if Float.is_nan ratio then "n/a" else Printf.sprintf "%.1f%%" (100.0 *. ratio))
