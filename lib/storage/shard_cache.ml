(* Domain-safe sharded cache of decoded pages, the read-side companion
   of the (single-domain) write-back {!Buffer_pool}.

   The buffer pool caches raw page bytes and is deliberately not safe to
   share across domains; the query serving layer instead keeps *decoded*
   values (e.g. R-tree nodes) in this cache, so the hot internal levels
   of an index are decoded once per generation instead of once per
   visit, and any number of domains can probe concurrently.  Keys are
   (page id, generation) pairs, spread over N shards by a multiplicative
   hash of the page id; each shard is a small hash table plus FIFO
   eviction queue guarded by its own mutex, so contention is 1/N of a
   single-lock design.

   Generation keying: every cached value is decoded under a commit
   generation (the index file's superblock commit counter), and the
   generation is part of the key — entries for several generations of
   the same page coexist, so snapshot readers pinned to an old
   generation keep their cache hits while a writer commits new ones.
   Nothing is invalidated on probe; instead the executor calls {!prune}
   with the oldest generation any live snapshot still pins, and entries
   below that floor are dropped (counted as invalidations).  Entries are
   decoded while holding the shard lock, so a page is decoded exactly
   once per generation no matter how many domains race for it (this also
   makes the miss count deterministic for a quiesced tree: one miss per
   distinct page reached, per generation).

   Counters live per shard (guarded by the shard lock) and are summed
   on demand — these are the authoritative per-cache numbers.  The same
   events are also ticked into the (domain-striped, hence domain-safe)
   {!Prt_obs} registry under [shard_cache.*], so a trace span over a
   multicore batch carries the cache traffic as counter deltas. *)

let m_hits = lazy (Prt_obs.Metrics.counter "shard_cache.hits")
let m_misses = lazy (Prt_obs.Metrics.counter "shard_cache.misses")
let m_invalidations = lazy (Prt_obs.Metrics.counter "shard_cache.invalidations")
let m_evictions = lazy (Prt_obs.Metrics.counter "shard_cache.evictions")

type 'v shard = {
  lock : Mutex.t;
  tbl : (int * int, 'v) Hashtbl.t; (* (page id, generation) -> value *)
  order : (int * int) Queue.t; (* insertion order, for FIFO eviction *)
  capacity : int; (* per shard *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;
}

type 'v t = { shards : 'v shard array }

type stats = {
  st_hits : int;
  st_misses : int;
  st_invalidations : int;
  st_evictions : int;
  st_entries : int;
}

let default_shards = 64
let default_capacity = 65536

(* Round up to a power of two so shard selection is a mask. *)
let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(shards = default_shards) ?(capacity = default_capacity) () =
  if shards < 1 then invalid_arg "Shard_cache.create: shards must be >= 1";
  if capacity < shards then invalid_arg "Shard_cache.create: capacity below one entry per shard";
  let shards = pow2_at_least shards in
  let per_shard = max 1 (capacity / shards) in
  {
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            tbl = Hashtbl.create 64;
            order = Queue.create ();
            capacity = per_shard;
            hits = 0;
            misses = 0;
            invalidations = 0;
            evictions = 0;
          });
  }

(* Fibonacci-hash the page id (generation excluded, so all generations
   of a page share a shard) so sequentially allocated pages spread
   evenly over the shards instead of striping. *)
let shard_of t id =
  let h = (id * 0x9E3779B1) lsr 16 in
  t.shards.(h land (Array.length t.shards - 1))

(* The FIFO queue may hold keys whose binding was already dropped by a
   prune; skip those rather than evicting a live entry. *)
let evict_one s =
  let rec go () =
    match Queue.take_opt s.order with
    | None -> ()
    | Some key ->
        if Hashtbl.mem s.tbl key then begin
          Hashtbl.remove s.tbl key;
          s.evictions <- s.evictions + 1;
          Prt_obs.Metrics.tick (Lazy.force m_evictions)
        end
        else go ()
  in
  go ()

let find_or_add t ~gen id decode =
  let s = shard_of t id in
  let key = (id, gen) in
  Mutex.protect s.lock (fun () ->
      match Hashtbl.find_opt s.tbl key with
      | Some value ->
          s.hits <- s.hits + 1;
          Prt_obs.Metrics.tick (Lazy.force m_hits);
          value
      | None ->
          s.misses <- s.misses + 1;
          Prt_obs.Metrics.tick (Lazy.force m_misses);
          let value = decode () in
          if Hashtbl.length s.tbl >= s.capacity then evict_one s;
          Hashtbl.replace s.tbl key value;
          Queue.add key s.order;
          value)

let find t ~gen id =
  let s = shard_of t id in
  Mutex.protect s.lock (fun () ->
      match Hashtbl.find_opt s.tbl (id, gen) with
      | Some value ->
          s.hits <- s.hits + 1;
          Prt_obs.Metrics.tick (Lazy.force m_hits);
          Some value
      | None -> None)

let prune t ~older_than =
  Array.fold_left
    (fun total s ->
      Mutex.protect s.lock (fun () ->
          let stale =
            Hashtbl.fold
              (fun ((_, g) as key) _ acc -> if g < older_than then key :: acc else acc)
              s.tbl []
          in
          List.iter (Hashtbl.remove s.tbl) stale;
          let n = List.length stale in
          s.invalidations <- s.invalidations + n;
          Prt_obs.Metrics.add (Lazy.force m_invalidations) n;
          total + n))
    0 t.shards

let clear t =
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          Hashtbl.reset s.tbl;
          Queue.clear s.order))
    t.shards

let stats t =
  Array.fold_left
    (fun acc s ->
      Mutex.protect s.lock (fun () ->
          {
            st_hits = acc.st_hits + s.hits;
            st_misses = acc.st_misses + s.misses;
            st_invalidations = acc.st_invalidations + s.invalidations;
            st_evictions = acc.st_evictions + s.evictions;
            st_entries = acc.st_entries + Hashtbl.length s.tbl;
          }))
    { st_hits = 0; st_misses = 0; st_invalidations = 0; st_evictions = 0; st_entries = 0 }
    t.shards

let reset_counters t =
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          s.hits <- 0;
          s.misses <- 0;
          s.invalidations <- 0;
          s.evictions <- 0))
    t.shards

let hit_ratio st =
  let total = st.st_hits + st.st_misses in
  if total = 0 then Float.nan else float_of_int st.st_hits /. float_of_int total

let pp_stats ppf st =
  let ratio = hit_ratio st in
  Fmt.pf ppf "hits=%d misses=%d invalidated=%d evicted=%d entries=%d hit_ratio=%s" st.st_hits
    st.st_misses st.st_invalidations st.st_evictions st.st_entries
    (if Float.is_nan ratio then "n/a" else Printf.sprintf "%.1f%%" (100.0 *. ratio))
