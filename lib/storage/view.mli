(** Raw little-endian field loads over a read-only memory mapping.

    The mapped half of the Page_view abstraction: the accessors
    {!Page} provides over [bytes], but over a mapped window of the
    whole index file, addressed by absolute byte offset.  All reads are
    allocation-free; the float load is a C stub returning an unboxed
    float so the rect-overlap inner loop never touches the heap. *)

type map =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

external get_f64 : map -> (int[@untagged]) -> (float[@unboxed])
  = "prt_view_get_f64_byte" "prt_view_get_f64_native"
[@@noalloc]
(** [get_f64 m off] loads the little-endian float64 at absolute byte
    offset [off].  No alignment requirement; no bounds check. *)

external madvise_random : map -> unit = "prt_view_madvise_random" [@@noalloc]
(** Advise the kernel that access will be random (MADV_RANDOM where
    available; a no-op elsewhere). *)

val length : map -> int
(** Size of the mapping in bytes. *)

val get_u8 : map -> int -> int
val get_u16 : map -> int -> int

val get_i32 : map -> int -> int
(** Sign-extending 32-bit load, matching {!Page.get_i32}. *)

val crc32c : map -> pos:int -> len:int -> int
(** CRC-32C (Castagnoli) over [len] bytes at [pos]; bit-identical to
    {!Page.crc32c} over the same bytes. *)

val page_valid : map -> base:int -> page_size:int -> bool
(** Integrity check of the mapped page at absolute offset [base]: the
    mapped analogue of {!Page.check}.  [true] for a valid v2 trailer or
    an all-zero (never-written) page; [false] for torn or stale. *)
