(* Raw little-endian field loads over a read-only memory mapping.

   This is the mapped half of the Page_view abstraction: the same
   accessors {!Page} provides over [bytes], but over a
   [Bigarray.Array1] char window of the whole index file, addressed by
   absolute byte offset.  The query hot path reads rect floats straight
   out of the mapping with no syscall, no lock and no copy; everything
   here must therefore be allocation-free.

   Integer loads are plain OCaml over [Array1.unsafe_get] — ints stay
   untagged-immediate so they never box.  The float load goes through a
   C stub ([@unboxed] [@@noalloc]) because entry offsets (3 + 36*i
   inside a page) are unaligned, ruling out a float64 bigarray view,
   and an [Int64] reassembly in OCaml would box the intermediate
   without flambda. *)

type map =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

external get_f64 : map -> (int[@untagged]) -> (float[@unboxed])
  = "prt_view_get_f64_byte" "prt_view_get_f64_native"
[@@noalloc]

external madvise_random : map -> unit = "prt_view_madvise_random" [@@noalloc]

let length (m : map) = Bigarray.Array1.dim m

let get_u8 (m : map) off = Char.code (Bigarray.Array1.unsafe_get m off)

let get_u16 (m : map) off =
  get_u8 m off lor (get_u8 m (off + 1) lsl 8)

let get_i32 (m : map) off =
  let w =
    get_u8 m off
    lor (get_u8 m (off + 1) lsl 8)
    lor (get_u8 m (off + 2) lsl 16)
    lor (get_u8 m (off + 3) lsl 24)
  in
  (* Sign-extend from 32 bits, matching Page.get_i32's int32 decode.
     OCaml's native int is 63-bit, so the shift is int_size - 32, not
     32 — shifting by 32 would park bit 30 on the sign bit. *)
  let s = Sys.int_size - 32 in
  (w lsl s) asr s

(* CRC-32C over a mapped window, bit-identical to {!Page.crc32c} —
   verified equal in the test suite.  Used to validate a mapped page
   once per (page, generation); after that the mapping is trusted. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0x82F63B78 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32c (m : map) ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table ((!c lxor get_u8 m i) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* Trailer check over a mapped page at absolute offset [base], the
   mapped analogue of {!Page.check}: epoch 0 means never stamped
   (legitimate only when all-zero), a CRC mismatch means torn. *)
let page_valid (m : map) ~base ~page_size =
  let epoch = get_u16 m (base + page_size - 8) in
  if epoch = 0 then begin
    let rec zero i = i = page_size || (get_u8 m (base + i) = 0 && zero (i + 1)) in
    zero 0
  end
  else if epoch <> Page.format_epoch then false
  else
    let stored = get_i32 m (base + page_size - 4) land 0xFFFFFFFF in
    stored = crc32c m ~pos:base ~len:(page_size - 4)
