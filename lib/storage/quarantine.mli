(** Shared registry of damaged page ids.

    The degradation contract: when the read path hits a
    {!Pager.Corrupt_page} (or exhausts its retry budget on an
    {!Pager.Io_error}), the offending page id lands here and the query
    continues around the hole, tagging its result [Partial].  Later
    reads skip quarantined ids without re-touching the device, and the
    online scrub ({!Scrub.online}) heals or re-verifies pages and
    removes them.

    Domain-safe (mutex-guarded): multicore query workers add to it
    mid-batch.  Carries no observability hooks of its own — the metrics
    registry is single-domain, so coordinators mirror {!added_total}
    deltas into counters after workers join. *)

type reason =
  | Corrupt  (** Trailer verification failed: damage is on the platter. *)
  | Io_failed  (** Retry budget exhausted on transient errors. *)

type t

val create : unit -> t

val add : t -> int -> reason -> unit
(** Idempotent: re-adding a quarantined id keeps the original reason and
    does not bump {!added_total}. *)

val mem : t -> int -> bool
val find : t -> int -> reason option
val remove : t -> int -> unit
val count : t -> int

val added_total : t -> int
(** Monotonic count of distinct additions (never decremented by
    {!remove}/{!clear}).  Each distinct addition also ticks the
    [resilience.pages_quarantined] counter and records a flight-recorder
    point from the adding domain. *)

val pages : t -> int list
(** Quarantined ids in increasing order. *)

val clear : t -> unit
val reason_to_string : reason -> string
val pp : Format.formatter -> t -> unit
