(* Shadow superblock pair: atomic commit for paged index files.

   Pages 0 and 1 of a formatted device hold two copies of the
   superblock; the live one is the copy with the highest commit counter
   that passes checksum verification, and a commit writes the *other*
   slot (slot = commit mod 2).  Because a superblock write is a single
   page write — and a torn superblock write just invalidates that slot's
   checksum, leaving the previous superblock live — publishing a new
   tree state is atomic.

   The in-place update algorithms (R*-tree insert/delete) rewrite
   committed pages directly, so a root flip alone cannot give
   pre-op-or-post-op atomicity.  A transaction therefore drives the
   pager's pre-image journal:

     begin_txn:
       1. journal head page allocated and written (empty directory)
       2. superblock flip: commit c+1, OLD metadata, journal = head
     ... data writes; first overwrite of a committed page is journalled,
         frees are deferred ...
     commit_txn:
       3. journal pages freed (deferred), superblock flip: commit c+2,
          NEW metadata, journal = none, free-list snapshot
       4. deferred frees promoted

   Crash before step 2 persists: the old superblock is live, the file is
   simply reopened (orphaned pages beyond its [used] count are
   truncated).  Crash between 2 and 3: the live superblock names the
   journal; recovery restores every pre-image, truncates, and restores
   the free list — the pre-op tree.  Crash after 3: the post-op tree.
   There is no window in which a hybrid state is reachable.

   Superblock payload layout (both slots identical):
     [0..3]    magic "PRSB"
     [4..7]    format version (2)
     [8..11]   commit counter
     [12..15]  page size (sanity-checked on open)
     [16..19]  used page count at commit
     [20..23]  journal directory head, or -1
     [24..27]  metadata length (0..64)
     [28..91]  caller metadata blob (tree root, height, count, ...)
     [92..95]  total free pages at commit
     [96..99]  free page ids actually stored below
     [100..]   free page ids, int32 each

   If the free list outgrows the slot ([free_capacity]), the excess ids
   are dropped from the snapshot: those pages leak on reopen (reported
   via the stored total), which is safe — strictly better than the
   previous format, which forgot the whole free list between sessions. *)

let magic = 0x50525342 (* "PRSB" *)
let version = 2
let pages = 2
let meta_off = 28
let meta_capacity = 64
let free_off = 100
let min_page_size = free_off + Page.trailer_size + 4

type state = {
  commit : int;
  used : int;
  journal : int;  (* directory head page id, or -1 *)
  meta : bytes;
  free_total : int;
  free : int list;
}

(* [gen] / [gen_meta] mirror [last.commit] / [last.meta] but are updated
   only when a state becomes *committed* (format, open_, commit_txn) —
   never at begin_txn, whose in-flight superblock flip must stay
   invisible to readers.  Both are written under [pin_lock] so a reader
   pinning concurrently with a commit gets a matching (gen, meta) pair.
   [pins] maps generation -> number of live snapshots of it. *)
type t = {
  pager : Pager.t;
  mutable last : state;
  mutable in_txn : bool;
  mutable gen : int;
  mutable gen_meta : bytes;
  pins : (int, int) Hashtbl.t;
  pin_lock : Mutex.t;
}

type snap = {
  snap_gen : int;
  snap_meta : bytes;  (* metadata blob as of snap_gen (a private copy) *)
  snap_sb : t;
  mutable snap_released : bool;
}

type recovery = {
  rec_journal_pages : int;  (* pre-images restored from the journal *)
  rec_truncated_pages : int;  (* uncommitted tail pages dropped *)
  rec_slot_repaired : bool;  (* a damaged slot was rewritten from the live one *)
}

let no_recovery = { rec_journal_pages = 0; rec_truncated_pages = 0; rec_slot_repaired = false }

let m_commits = Prt_obs.Metrics.counter "superblock.commits"
let m_recovered = Prt_obs.Metrics.counter "superblock.recovered_pages"

let free_capacity pager = (Pager.payload_size pager - free_off) / 4

let check_pager ctx pager =
  if Pager.page_size pager < min_page_size then
    invalid_arg
      (Printf.sprintf "Superblock.%s: page size %d below the %d-byte minimum" ctx
         (Pager.page_size pager) min_page_size)

let encode pager (st : state) =
  let page = Page.create (Pager.page_size pager) in
  Page.set_i32 page 0 magic;
  Page.set_i32 page 4 version;
  Page.set_i32 page 8 st.commit;
  Page.set_i32 page 12 (Pager.page_size pager);
  Page.set_i32 page 16 st.used;
  Page.set_i32 page 20 st.journal;
  let mlen = Bytes.length st.meta in
  if mlen > meta_capacity then invalid_arg "Superblock: metadata blob too large";
  Page.set_i32 page 24 mlen;
  Bytes.blit st.meta 0 page meta_off mlen;
  Page.set_i32 page 92 st.free_total;
  let cap = free_capacity pager in
  let stored = ref 0 in
  List.iteri
    (fun i id ->
      if i < cap then begin
        Page.set_i32 page (free_off + (4 * i)) id;
        incr stored
      end)
    st.free;
  Page.set_i32 page 96 !stored;
  page

let decode page =
  if Page.get_i32 page 0 <> magic then Error "bad magic"
  else if Page.get_i32 page 4 <> version then
    Error (Printf.sprintf "unsupported version %d" (Page.get_i32 page 4))
  else if Page.get_i32 page 12 <> Bytes.length page then
    Error
      (Printf.sprintf "page size mismatch: superblock says %d, device uses %d"
         (Page.get_i32 page 12) (Bytes.length page))
  else begin
    let mlen = Page.get_i32 page 24 in
    if mlen < 0 || mlen > meta_capacity then Error "bad metadata length"
    else begin
      let stored = Page.get_i32 page 96 in
      let free = ref [] in
      for i = stored - 1 downto 0 do
        free := Page.get_i32 page (free_off + (4 * i)) :: !free
      done;
      Ok
        {
          commit = Page.get_i32 page 8;
          used = Page.get_i32 page 16;
          journal = Page.get_i32 page 20;
          meta = Bytes.sub page meta_off mlen;
          free_total = Page.get_i32 page 92;
          free = !free;
        }
    end
  end

type slot = Slot_valid of state | Slot_empty | Slot_bad of string

let inspect_slot pager id =
  if id >= Pager.num_pages pager then Slot_bad "missing (file too short)"
  else
    let page = Pager.read_raw pager id in
    match Page.check page with
    | Page.Fresh -> Slot_empty
    | Page.Torn -> Slot_bad "torn (checksum mismatch)"
    | Page.Stale_epoch e -> Slot_bad (Printf.sprintf "stale format epoch %d" e)
    | Page.Valid _ -> (
        match decode page with Ok st -> Slot_valid st | Error e -> Slot_bad e)

let inspect pager = [| inspect_slot pager 0; inspect_slot pager 1 |]

let write_slot pager (st : state) =
  let slot = st.commit mod 2 in
  Pager.write pager slot (encode pager st)

(* Format a fresh device: allocate the superblock pair and commit an
   empty state into slot 0 (slot 1 stays all-zero until the first
   flip). *)
let format pager ~meta =
  check_pager "format" pager;
  let s0 = Pager.alloc pager in
  let s1 = Pager.alloc pager in
  if s0 <> 0 || s1 <> 1 then
    invalid_arg "Superblock.format: device not fresh (superblock pages not 0 and 1)";
  let st =
    { commit = 0; used = Pager.num_pages pager; journal = -1; meta; free_total = 0; free = [] }
  in
  write_slot pager st;
  Pager.set_defer_frees pager true;
  {
    pager;
    last = st;
    in_txn = false;
    gen = st.commit;
    gen_meta = Bytes.copy meta;
    pins = Hashtbl.create 8;
    pin_lock = Mutex.create ();
  }

(* Open a formatted device: pick the newest valid slot, run journal
   recovery if the last transaction never committed, drop uncommitted
   tail pages, restore the free list, and repair the losing slot if it
   is damaged. *)
let open_ pager =
  check_pager "open_" pager;
  if Pager.num_pages pager < 1 then failwith "Superblock.open_: empty device";
  let slots = inspect pager in
  let live =
    match (slots.(0), slots.(1)) with
    | Slot_valid a, Slot_valid b -> Some (if a.commit >= b.commit then a else b)
    | Slot_valid a, (Slot_empty | Slot_bad _) -> Some a
    | (Slot_empty | Slot_bad _), Slot_valid b -> Some b
    | (Slot_empty | Slot_bad _), (Slot_empty | Slot_bad _) -> None
  in
  match live with
  | None ->
      failwith
        "Superblock.open_: no valid superblock copy (both slots damaged); run fsck --rebuild"
  | Some st ->
      let recovered =
        if st.journal >= 0 then begin
          let n = Pager.recover_journal pager ~head:st.journal in
          Prt_obs.Metrics.add m_recovered n;
          n
        end
        else 0
      in
      let before = Pager.num_pages pager in
      if st.used < before then Pager.truncate pager ~used:st.used;
      Pager.set_free_list pager st.free;
      Pager.set_defer_frees pager true;
      (* If the last transaction never committed, persist the recovered
         pre-op state as a fresh commit so the journal is not replayed
         (and its pages not leaked) on every subsequent open. *)
      let st =
        if st.journal >= 0 then begin
          let st' =
            {
              st with
              commit = st.commit + 1;
              journal = -1;
              used = Pager.num_pages pager;
              free = Pager.free_pages pager;
              free_total = List.length (Pager.free_pages pager);
            }
          in
          write_slot pager st';
          st'
        end
        else st
      in
      (* Repair a damaged twin from the live copy so a later torn commit
         can never leave the device with zero valid slots.  The twin is
         rewritten with commit-1, whose parity lands it on the right
         slot; its payload mirrors the live state, which is consistent
         if it ever has to take over. *)
      let repaired =
        match slots.(1 - (st.commit mod 2)) with
        | Slot_bad _ when st.commit >= 1 ->
            write_slot pager { st with commit = st.commit - 1 };
            true
        | Slot_valid _ | Slot_empty | Slot_bad _ -> false
      in
      let t =
        {
          pager;
          last = st;
          in_txn = false;
          gen = st.commit;
          gen_meta = Bytes.copy st.meta;
          pins = Hashtbl.create 8;
          pin_lock = Mutex.create ();
        }
      in
      ( t,
        {
          rec_journal_pages = recovered;
          rec_truncated_pages = (before - Pager.num_pages pager);
          rec_slot_repaired = repaired;
        } )

let meta t = Bytes.copy t.last.meta
let commit_count t = t.last.commit
let in_txn t = t.in_txn
let pager t = t.pager
let free_dropped t = t.last.free_total - List.length t.last.free

(* --- Generation pins (snapshot isolation) ---

   Lock discipline: everything below takes [pin_lock] for the registry
   bookkeeping, drops it, and only then calls into the pager's version
   store ([Pager.collect] takes the pager's own mvcc lock) — the two
   locks are never held together. *)

let generation t = t.gen

let pinned_floor_locked t =
  Hashtbl.fold (fun g _ acc -> min g acc) t.pins t.gen

let pinned_floor t = Mutex.protect t.pin_lock (fun () -> pinned_floor_locked t)
let pin_count t = Mutex.protect t.pin_lock (fun () -> Hashtbl.fold (fun _ n acc -> acc + n) t.pins 0)

let pin t =
  Mutex.protect t.pin_lock (fun () ->
      let g = t.gen in
      let n = Option.value (Hashtbl.find_opt t.pins g) ~default:0 in
      Hashtbl.replace t.pins g (n + 1);
      { snap_gen = g; snap_meta = Bytes.copy t.gen_meta; snap_sb = t; snap_released = false })

let snap_gen s = s.snap_gen
let snap_meta s = Bytes.copy s.snap_meta

(* Releasing the last pin of a generation only drops superseded
   *versions* (safe from any domain, even on a closed pager); parked
   frees are promoted by the writing domain at its next begin/commit. *)
let release s =
  let t = s.snap_sb in
  let dropped =
    Mutex.protect t.pin_lock (fun () ->
        if s.snap_released then None
        else begin
          s.snap_released <- true;
          (match Hashtbl.find_opt t.pins s.snap_gen with
          | Some n when n > 1 -> Hashtbl.replace t.pins s.snap_gen (n - 1)
          | Some _ -> Hashtbl.remove t.pins s.snap_gen
          | None -> ());
          Some (pinned_floor_locked t)
        end)
  in
  match dropped with
  | Some floor ->
      Pager.collect t.pager ~upto:floor;
      floor
  | None -> pinned_floor t

let release_all_pins t =
  let any = Mutex.protect t.pin_lock (fun () ->
      let any = Hashtbl.length t.pins > 0 in
      Hashtbl.reset t.pins;
      any)
  in
  if any then Pager.collect t.pager ~upto:(pinned_floor t)

let begin_txn t =
  if t.in_txn then invalid_arg "Superblock.begin_txn: transaction already open";
  (* Writer-domain GC point: promote any parked frees no pin can still
     need, then start retaining pre-images for the generation this
     transaction will commit at (current + 2: the in-txn flip takes
     current + 1). *)
  Pager.reclaim t.pager ~upto:(pinned_floor t);
  Pager.set_retain_gen t.pager (t.gen + 2);
  let used0 = t.last.used in
  let head = Pager.begin_journal t.pager ~exempt:[ 0; 1 ] in
  (* Free snapshot for the in-txn superblock: the committed free list,
     plus the journal head itself when it recycled a committed-free page
     (after recovery its contents are garbage, so it must come back as
     free rather than leak). *)
  let free = Pager.free_pages t.pager in
  let free = if head < used0 then head :: free else free in
  let st =
    {
      commit = t.last.commit + 1;
      used = used0;
      journal = head;
      meta = t.last.meta;
      free_total = List.length free;
      free;
    }
  in
  write_slot t.pager st;
  Prt_obs.Metrics.tick m_commits;
  t.last <- st;
  t.in_txn <- true

let commit_txn t ~meta =
  if not t.in_txn then invalid_arg "Superblock.commit_txn: no transaction open";
  let jpages = Pager.end_journal t.pager in
  List.iter (fun id -> if not (Pager.is_free t.pager id) then Pager.free t.pager id) jpages;
  let free = Pager.free_pages t.pager in
  let st =
    {
      commit = t.last.commit + 1;
      used = Pager.num_pages t.pager;
      journal = -1;
      meta;
      free_total = List.length free;
      free;
    }
  in
  write_slot t.pager st;
  Prt_obs.Metrics.tick m_commits;
  (* The commit is durable; stop retention and park this transaction's
     frees under the new generation — pages freed here were part of
     every older tree, so they stay unallocatable until the last pin
     below [st.commit] drops.  Publish the generation under [pin_lock]
     (a concurrent [pin] gets either the old or the new (gen, meta)
     pair, never a mix), then promote whatever the pin floor allows. *)
  Pager.park_frees t.pager ~gen:st.commit;
  Pager.set_retain_gen t.pager (-1);
  Mutex.protect t.pin_lock (fun () ->
      t.gen <- st.commit;
      t.gen_meta <- Bytes.copy meta);
  Prt_obs.Flight.point "commit.publish" ~arg:st.commit;
  t.last <- st;
  t.in_txn <- false;
  Pager.reclaim t.pager ~upto:(pinned_floor t)
