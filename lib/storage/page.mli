(** Fixed-size page buffers with little-endian field codecs.

    All on-disk structures (R-tree nodes, external-sort runs) are encoded
    through this module so the byte layout is defined in one place. *)

type t = bytes

val create : int -> t
(** Zero-filled page of the given size in bytes. *)

val size : t -> int

val set_f64 : t -> int -> float -> unit
val get_f64 : t -> int -> float

val set_i32 : t -> int -> int -> unit
(** Raises [Invalid_argument] if the value does not fit in 32 bits. *)

val get_i32 : t -> int -> int

val set_u16 : t -> int -> int -> unit
val get_u16 : t -> int -> int

val set_u8 : t -> int -> int -> unit
val get_u8 : t -> int -> int
