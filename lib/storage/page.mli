(** Fixed-size page buffers with little-endian field codecs.

    All on-disk structures (R-tree nodes, external-sort runs) are encoded
    through this module so the byte layout is defined in one place.

    Format v2 reserves a {!trailer_size}-byte integrity trailer at the
    end of every page: a page LSN (int64), a format epoch (u16) and a
    CRC-32C over everything before the checksum field.  The trailer is
    stamped by [Pager.write] and verified by [Pager.read] on the file
    backend; codecs must confine themselves to the first
    [payload_size page_size] bytes. *)

type t = bytes

val create : int -> t
(** Zero-filled page of the given size in bytes. *)

val size : t -> int

val set_f64 : t -> int -> float -> unit
val get_f64 : t -> int -> float

val set_i32 : t -> int -> int -> unit
(** Raises [Invalid_argument] if the value does not fit in 32 bits. *)

val get_i32 : t -> int -> int

val set_u16 : t -> int -> int -> unit
val get_u16 : t -> int -> int

val set_u8 : t -> int -> int -> unit
val get_u8 : t -> int -> int

(** {1 Integrity trailer (format v2)} *)

val trailer_size : int
(** 16 bytes: LSN (8) + epoch (2) + reserved (2) + CRC-32C (4). *)

val format_epoch : int
(** The epoch stamped into freshly written pages; 2 for this format. *)

val payload_size : int -> int
(** [payload_size page_size] is the number of bytes available to codecs:
    [page_size - trailer_size].  Raises [Invalid_argument] if the page
    is not strictly larger than the trailer. *)

val crc32c : bytes -> pos:int -> len:int -> int
(** CRC-32C (Castagnoli polynomial, reflected 0x82F63B78) of the byte
    range, as a non-negative int below [2^32]. *)

val stamp : t -> lsn:int -> unit
(** Fill in the trailer: record [lsn] and {!format_epoch}, zero the
    reserved field, then checksum the page. *)

val lsn : t -> int
(** The LSN recorded in the trailer (garbage on unstamped pages). *)

type integrity =
  | Fresh  (** all-zero page that was never stamped (epoch 0) *)
  | Valid of { epoch : int; lsn : int }  (** checksum and epoch both good *)
  | Torn  (** checksum mismatch, or nonzero bytes with a zero epoch *)
  | Stale_epoch of int  (** checksum good but written by another format *)

val check : t -> integrity
(** Classify a page read back from a device.  A page passes as [Fresh]
    only if every byte is zero; any other unstamped or
    checksum-mismatching content is [Torn]. *)

val pp_integrity : Format.formatter -> integrity -> unit
