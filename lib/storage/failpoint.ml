(* Deterministic fault injection for the paged storage stack (see the
   interface for the model).  Every decision draws from one xoshiro
   stream, so the schedule is a pure function of the seed and the
   sequence of operations — failing runs replay exactly.

   The [max_consecutive] cap is what separates "transient" from
   "permanent": with the default cap of 3, any retry loop making at
   least 4 attempts is guaranteed to complete, which is the contract
   {!Buffer_pool}'s retry policy relies on.

   Crash injection is a separate, non-random mechanism: a write budget.
   [crash_after_writes = n] lets exactly [n] physical page writes
   persist and makes the next one raise {!Simulated_crash} with nothing
   persisted — the moral equivalent of SIGKILL between two blocks
   reaching the platter.  Sweeping [n] over [0 .. total writes] visits
   every kill point of an operation deterministically. *)

module Rng = Prt_util.Rng

exception Simulated_crash of string

let () =
  Printexc.register_printer (function
    | Simulated_crash msg -> Some ("Failpoint.Simulated_crash: " ^ msg)
    | _ -> None)

type config = {
  seed : int;
  read_error : float;
  short_read : float;
  write_error : float;
  torn_write : float;
  alloc_error : float;
  read_latency : int;
  write_latency : int;
  read_delay_ms : float;
  write_delay_ms : float;
  max_consecutive : int;
  crash_after_writes : int;
  phys_write_hook : (int -> unit) option;
}

let default =
  {
    seed = 0;
    read_error = 0.0;
    short_read = 0.0;
    write_error = 0.0;
    torn_write = 0.0;
    alloc_error = 0.0;
    read_latency = 0;
    write_latency = 0;
    read_delay_ms = 0.0;
    write_delay_ms = 0.0;
    max_consecutive = 3;
    crash_after_writes = -1;
    phys_write_hook = None;
  }

let uniform ?(seed = 0) ?(max_consecutive = 3) rate =
  if rate < 0.0 || rate >= 1.0 then invalid_arg "Failpoint.uniform: rate outside [0, 1)";
  if max_consecutive < 1 then invalid_arg "Failpoint.uniform: max_consecutive must be >= 1";
  {
    default with
    seed;
    read_error = rate /. 2.0;
    short_read = rate /. 2.0;
    write_error = rate /. 2.0;
    torn_write = rate /. 2.0;
    alloc_error = rate;
    max_consecutive;
  }

let crash_after ?(seed = 0) n =
  if n < 0 then invalid_arg "Failpoint.crash_after: budget must be >= 0";
  { default with seed; crash_after_writes = n }

let slow ?(seed = 0) ?(read_ms = 0.0) ?(write_ms = 0.0) () =
  if read_ms < 0.0 || write_ms < 0.0 then invalid_arg "Failpoint.slow: negative delay";
  { default with seed; read_delay_ms = read_ms; write_delay_ms = write_ms }

type injected = {
  read_errors : int;
  short_reads : int;
  write_errors : int;
  torn_writes : int;
  alloc_errors : int;
  crashes : int;
  latency : int;
}

type t = {
  cfg : config;
  rng : Rng.t;
  mutable read_errors : int;
  mutable short_reads : int;
  mutable write_errors : int;
  mutable torn_writes : int;
  mutable alloc_errors : int;
  mutable crashes : int;
  mutable latency : int;
  (* Back-to-back injected faults per operation class, for the
     [max_consecutive] guarantee. *)
  mutable read_streak : int;
  mutable write_streak : int;
  mutable alloc_streak : int;
  (* Physical writes still allowed to persist before the crash fires;
     negative means crash injection is off. *)
  mutable write_budget : int;
  mutable phys_writes : int;  (* physical page writes persisted so far *)
}

let create cfg =
  if cfg.max_consecutive < 1 then invalid_arg "Failpoint.create: max_consecutive must be >= 1";
  {
    cfg;
    rng = Rng.create cfg.seed;
    read_errors = 0;
    short_reads = 0;
    write_errors = 0;
    torn_writes = 0;
    alloc_errors = 0;
    crashes = 0;
    latency = 0;
    read_streak = 0;
    write_streak = 0;
    alloc_streak = 0;
    write_budget = cfg.crash_after_writes;
    phys_writes = 0;
  }

let config t = t.cfg

type verdict = Ok | Error | Partial of float

(* One decision: [u] uniform in [0,1); fault when it lands under
   [p_error + p_partial], unless the streak cap forces success. *)
let decide t ~p_error ~p_partial ~streak =
  let u = Rng.float t.rng 1.0 in
  if streak >= t.cfg.max_consecutive then Ok
  else if u < p_error then Error
  else if u < p_error +. p_partial then
    (* A second draw picks how much of the page survives. *)
    Partial (0.05 +. (0.9 *. Rng.float t.rng 1.0))
  else Ok

let on_read t =
  (* Slow-I/O injection: the attempt consumes simulated time whether or
     not it also faults, so retry loops visibly burn deadline budget.
     [advance_ms] is a no-op unless the virtual clock is installed. *)
  if t.cfg.read_delay_ms > 0.0 then Prt_util.Deadline.advance_ms t.cfg.read_delay_ms;
  let v =
    decide t ~p_error:t.cfg.read_error ~p_partial:t.cfg.short_read ~streak:t.read_streak
  in
  (match v with
  | Ok ->
      t.read_streak <- 0;
      t.latency <- t.latency + t.cfg.read_latency
  | Error ->
      t.read_streak <- t.read_streak + 1;
      t.read_errors <- t.read_errors + 1
  | Partial _ ->
      t.read_streak <- t.read_streak + 1;
      t.short_reads <- t.short_reads + 1);
  v

let on_write t =
  if t.cfg.write_delay_ms > 0.0 then Prt_util.Deadline.advance_ms t.cfg.write_delay_ms;
  let v =
    decide t ~p_error:t.cfg.write_error ~p_partial:t.cfg.torn_write ~streak:t.write_streak
  in
  (match v with
  | Ok ->
      t.write_streak <- 0;
      t.latency <- t.latency + t.cfg.write_latency
  | Error ->
      t.write_streak <- t.write_streak + 1;
      t.write_errors <- t.write_errors + 1
  | Partial _ ->
      t.write_streak <- t.write_streak + 1;
      t.torn_writes <- t.torn_writes + 1);
  v

let on_alloc t =
  let u = Rng.float t.rng 1.0 in
  if t.alloc_streak >= t.cfg.max_consecutive then begin
    t.alloc_streak <- 0;
    false
  end
  else if u < t.cfg.alloc_error then begin
    t.alloc_streak <- t.alloc_streak + 1;
    t.alloc_errors <- t.alloc_errors + 1;
    true
  end
  else begin
    t.alloc_streak <- 0;
    false
  end

let crash_enabled t = t.cfg.crash_after_writes >= 0 || t.cfg.phys_write_hook <> None

(* The hook fires before the budget check and before the write persists,
   with the count of writes already durable: at kill point [k]
   ([crash_after k]) the hook observes ordinal [k] and then the crash
   fires — the harness's window for probing the exact boundary state.
   The hook must not itself write through the pager (it would recurse);
   snapshot reads via [Pager.read_shared] are the intended use. *)
let on_phys_write t =
  (match t.cfg.phys_write_hook with Some f -> f t.phys_writes | None -> ());
  if t.write_budget = 0 then begin
    t.crashes <- t.crashes + 1;
    (* The kill point is the last thing the "process" does: record it on
       the flight ring (and autodump, if configured) so the postmortem
       ends with the crash. *)
    Prt_obs.Flight.failure "failpoint.crash" ~arg:t.cfg.crash_after_writes
      ~note:"simulated kill point";
    raise
      (Simulated_crash
         (Printf.sprintf "process killed after %d persisted page writes"
            t.cfg.crash_after_writes))
  end
  else begin
    if t.write_budget > 0 then t.write_budget <- t.write_budget - 1;
    t.phys_writes <- t.phys_writes + 1
  end

let phys_writes t = t.phys_writes

let injected t =
  {
    read_errors = t.read_errors;
    short_reads = t.short_reads;
    write_errors = t.write_errors;
    torn_writes = t.torn_writes;
    alloc_errors = t.alloc_errors;
    crashes = t.crashes;
    latency = t.latency;
  }

let total_faults (i : injected) =
  i.read_errors + i.short_reads + i.write_errors + i.torn_writes + i.alloc_errors + i.crashes

let reset t =
  t.read_errors <- 0;
  t.short_reads <- 0;
  t.write_errors <- 0;
  t.torn_writes <- 0;
  t.alloc_errors <- 0;
  t.crashes <- 0;
  t.latency <- 0

let pp_injected ppf (i : injected) =
  Fmt.pf ppf
    "read-errors=%d short-reads=%d write-errors=%d torn-writes=%d alloc-errors=%d crashes=%d latency=%d"
    i.read_errors i.short_reads i.write_errors i.torn_writes i.alloc_errors i.crashes i.latency
