(* CRC-framed write-ahead log segments; see wal.mli for the format and
   the fault/crash semantics. *)

let max_payload = 1 lsl 20
let frame_overhead = 8

type t = {
  fsops : Fsops.t;
  path : string;
  fd : Unix.file_descr;
  mutable size : int;  (* bytes of complete frames *)
  mutable records : int;
  mutable closed : bool;
}

let create ~fsops path =
  let fd = Fsops.create_file fsops path in
  { fsops; path; fd; size = 0; records = 0; closed = false }

let open_append ~fsops path ~valid =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CLOEXEC ] 0o644 in
  (match Unix.ftruncate fd valid with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  ignore (Unix.lseek fd valid Unix.SEEK_SET);
  { fsops; path; fd; size = valid; records = 0; closed = false }

let put_u32 buf pos v =
  Bytes.set_int32_le buf pos (Int32.of_int v)

let get_u32 buf pos = Int32.to_int (Bytes.get_int32_le buf pos) land 0xFFFFFFFF

let append t payload =
  if t.closed then invalid_arg "Wal.append: closed";
  let len = Bytes.length payload in
  if len = 0 || len > max_payload then invalid_arg "Wal.append: bad payload size";
  let frame = Bytes.create (frame_overhead + len) in
  put_u32 frame 0 len;
  put_u32 frame 4 (Page.crc32c payload ~pos:0 ~len);
  Bytes.blit payload 0 frame frame_overhead len;
  (* On an injected fault, scrub any torn prefix so a retry starts from
     a clean frame boundary.  A Simulated_crash skips this on purpose —
     the process is "dead" and replay must cope with the tear. *)
  (try Fsops.write t.fsops t.fd frame
   with Pager.Io_error _ as e ->
     Unix.ftruncate t.fd t.size;
     ignore (Unix.lseek t.fd t.size Unix.SEEK_SET);
     raise e);
  t.size <- t.size + frame_overhead + len;
  t.records <- t.records + 1

let sync t = if not t.closed then Fsops.fsync t.fsops t.fd

let size t = t.size
let records t = t.records
let path t = t.path

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let read_file path =
  match Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Bytes.create 0
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let n = (Unix.fstat fd).Unix.st_size in
          let buf = Bytes.create n in
          let rec fill pos =
            if pos < n then
              let r = Unix.read fd buf pos (n - pos) in
              if r = 0 then pos else fill (pos + r)
            else pos
          in
          let got = fill 0 in
          if got = n then buf else Bytes.sub buf 0 got)

let replay path ~f =
  let buf = read_file path in
  let n = Bytes.length buf in
  let records = ref 0 and pos = ref 0 and stop = ref false in
  while (not !stop) && !pos + frame_overhead <= n do
    let len = get_u32 buf !pos in
    if len = 0 || len > max_payload || !pos + frame_overhead + len > n then stop := true
    else begin
      let payload = Bytes.sub buf (!pos + frame_overhead) len in
      if Page.crc32c payload ~pos:0 ~len <> get_u32 buf (!pos + 4) then stop := true
      else begin
        f payload;
        incr records;
        pos := !pos + frame_overhead + len
      end
    end
  done;
  (!records, !pos, n - !pos)
