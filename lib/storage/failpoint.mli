(** Deterministic fault injection for the paged storage stack.

    A failpoint is an RNG-seeded failure policy consulted by
    {!Pager.wrap_faulty} before every read, write and allocation of the
    wrapped pager: transient errors, torn writes that persist only a
    prefix of the page, short reads that fill only a prefix of the
    buffer, allocation failures (ENOSPC), and simulated latency.  The
    same seed always yields the same fault schedule relative to the
    sequence of operations, so failing runs reproduce bit-for-bit.

    To keep transient faults genuinely transient, a failpoint never
    injects more than [max_consecutive] faults in a row per operation
    class — a retry loop with more attempts than that is guaranteed to
    make progress.  Set [max_consecutive] very high to model a
    permanently broken device.

    Orthogonally, a failpoint can carry a deterministic {e crash
    budget}: [crash_after_writes = n] lets exactly [n] physical page
    writes persist, then raises {!Simulated_crash} on the next one with
    nothing persisted — modelling a process kill between two sector
    writes.  Unlike {!Io_error}-flavoured faults it is not absorbed by
    retry loops; harnesses catch it at the top, reopen the file, and
    check recovery. *)

exception Simulated_crash of string
(** The crash budget was exhausted mid-operation.  Deliberately distinct
    from [Pager.Io_error]: retrying cannot help, and {!Buffer_pool}'s
    retry loop lets it propagate. *)

type config = {
  seed : int;  (** RNG seed: the whole schedule is a function of it. *)
  read_error : float;  (** Probability a read raises before any data moves. *)
  short_read : float;  (** Probability a read fills only a prefix of the buffer. *)
  write_error : float;  (** Probability a write raises with nothing persisted. *)
  torn_write : float;  (** Probability a write persists only a prefix of the page. *)
  alloc_error : float;  (** Probability an allocation fails (out of space). *)
  read_latency : int;  (** Simulated latency units charged per completed read. *)
  write_latency : int;  (** Simulated latency units charged per completed write. *)
  read_delay_ms : float;
      (** Slow-I/O injection: virtual milliseconds charged per read
          {e attempt} (faulted or not) via [Prt_util.Deadline.advance_ms]
          — a no-op unless the virtual clock is installed, so production
          runs never sleep. *)
  write_delay_ms : float;  (** Same, per write attempt. *)
  max_consecutive : int;  (** Cap on back-to-back faults per operation class. *)
  crash_after_writes : int;
      (** Crash budget: [n >= 0] lets [n] physical page writes persist
          and crashes on the next; negative disables crash injection. *)
  phys_write_hook : (int -> unit) option;
      (** Deterministic interleaving hook: called by {!on_phys_write}
          before each physical page write persists (and before the crash
          budget is consulted), with the number of writes already
          persisted.  At kill point [k] of a [crash_after k] budget the
          hook therefore observes ordinal [k] and then the crash fires.
          The hook runs on the writing domain with no pager lock held,
          so it may perform snapshot reads ([Pager.read_shared]) — e.g.
          run a whole pinned query between two page writes — but must
          never write through the pager (it would recurse). *)
}

val default : config
(** All rates zero, no latency, no crash budget: a wrapped pager behaves
    exactly like the underlying one. *)

val uniform : ?seed:int -> ?max_consecutive:int -> float -> config
(** [uniform rate] makes every operation class fail with probability
    [rate], split evenly between the two flavours of each class (error /
    short read, error / torn write).  [rate] must be in [0, 1).
    Default [seed] 0, [max_consecutive] 3. *)

val crash_after : ?seed:int -> int -> config
(** [crash_after n] is {!default} with [crash_after_writes = n]: no
    random faults, a deterministic crash at physical write [n+1]. *)

val slow : ?seed:int -> ?read_ms:float -> ?write_ms:float -> unit -> config
(** A device that is merely slow: no faults, every read / write attempt
    charges the given virtual milliseconds (visible only under
    [Prt_util.Deadline.install_virtual] — deterministic deadline tests
    without real sleeps). *)

type t
(** Mutable failpoint state: RNG position plus injection counters. *)

val create : config -> t
val config : t -> config

type verdict =
  | Ok
  | Error  (** Fail the operation without touching any data. *)
  | Partial of float
      (** Complete only a prefix: the fraction (in (0,1)) of the page
          that makes it through before the fault. *)

val on_read : t -> verdict
(** Consult the policy for the next read (advances the RNG). *)

val on_write : t -> verdict
val on_alloc : t -> bool
(** [true] means the allocation must fail. *)

val crash_enabled : t -> bool
(** Whether this failpoint must be consulted on physical writes: it
    carries a crash budget and/or a [phys_write_hook]. *)

val phys_writes : t -> int
(** Physical page writes that persisted through {!on_phys_write} so far
    — the ordinal the next hook call will observe. *)

val on_phys_write : t -> unit
(** Consult the crash budget before a physical page write persists:
    decrements the budget, or raises {!Simulated_crash} once it is
    exhausted (counting the crash).  A no-op when crash injection is
    disabled.  Called by the pager on the physical write path, so
    internal writes (journal, superblock) are kill points too. *)

(** Counters of what was actually injected, for assertions and degraded-mode
    reporting. *)
type injected = {
  read_errors : int;
  short_reads : int;
  write_errors : int;
  torn_writes : int;
  alloc_errors : int;
  crashes : int;  (** {!Simulated_crash}es raised by the crash budget. *)
  latency : int;  (** Total simulated latency units charged. *)
}

val injected : t -> injected
val total_faults : injected -> int
val reset : t -> unit
(** Reset the counters (the RNG position is kept; the crash budget is
    not replenished). *)

val pp_injected : Format.formatter -> injected -> unit
