(** Deterministic fault injection for the paged storage stack.

    A failpoint is an RNG-seeded failure policy consulted by
    {!Pager.wrap_faulty} before every read, write and allocation of the
    wrapped pager: transient errors, torn writes that persist only a
    prefix of the page, short reads that fill only a prefix of the
    buffer, allocation failures (ENOSPC), and simulated latency.  The
    same seed always yields the same fault schedule relative to the
    sequence of operations, so failing runs reproduce bit-for-bit.

    To keep transient faults genuinely transient, a failpoint never
    injects more than [max_consecutive] faults in a row per operation
    class — a retry loop with more attempts than that is guaranteed to
    make progress.  Set [max_consecutive] very high to model a
    permanently broken device. *)

type config = {
  seed : int;  (** RNG seed: the whole schedule is a function of it. *)
  read_error : float;  (** Probability a read raises before any data moves. *)
  short_read : float;  (** Probability a read fills only a prefix of the buffer. *)
  write_error : float;  (** Probability a write raises with nothing persisted. *)
  torn_write : float;  (** Probability a write persists only a prefix of the page. *)
  alloc_error : float;  (** Probability an allocation fails (out of space). *)
  read_latency : int;  (** Simulated latency units charged per completed read. *)
  write_latency : int;  (** Simulated latency units charged per completed write. *)
  max_consecutive : int;  (** Cap on back-to-back faults per operation class. *)
}

val default : config
(** All rates zero, no latency: a wrapped pager behaves exactly like the
    underlying one. *)

val uniform : ?seed:int -> ?max_consecutive:int -> float -> config
(** [uniform rate] makes every operation class fail with probability
    [rate], split evenly between the two flavours of each class (error /
    short read, error / torn write).  [rate] must be in [0, 1).
    Default [seed] 0, [max_consecutive] 3. *)

type t
(** Mutable failpoint state: RNG position plus injection counters. *)

val create : config -> t
val config : t -> config

type verdict =
  | Ok
  | Error  (** Fail the operation without touching any data. *)
  | Partial of float
      (** Complete only a prefix: the fraction (in (0,1)) of the page
          that makes it through before the fault. *)

val on_read : t -> verdict
(** Consult the policy for the next read (advances the RNG). *)

val on_write : t -> verdict
val on_alloc : t -> bool
(** [true] means the allocation must fail. *)

(** Counters of what was actually injected, for assertions and degraded-mode
    reporting. *)
type injected = {
  read_errors : int;
  short_reads : int;
  write_errors : int;
  torn_writes : int;
  alloc_errors : int;
  latency : int;  (** Total simulated latency units charged. *)
}

val injected : t -> injected
val total_faults : injected -> int
val reset : t -> unit
(** Reset the counters (the RNG position is kept). *)

val pp_injected : Format.formatter -> injected -> unit
