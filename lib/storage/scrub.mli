(** Read-only device scrub: classify every page by its integrity
    trailer, cross-referenced against the caller's free list and
    reachability predicate.  The analysis half of [prt fsck]; never
    modifies the device.  Progress and damage counts flow through
    [Prt_obs] metrics ([scrub.scanned], [scrub.torn], [scrub.stale],
    [scrub.orphaned]). *)

type page_class =
  | Valid  (** checksum and epoch good, reachable (or no predicate) *)
  | Fresh  (** all-zero, never written *)
  | Torn  (** checksum mismatch: torn or interrupted write *)
  | Stale  (** checksummed by another format epoch *)
  | Free_page  (** on the free list *)
  | Orphaned  (** valid but neither reachable nor free: leaked space *)

type report = {
  scanned : int;
  valid : int;
  fresh : int;
  torn : int;
  stale : int;
  free : int;
  orphaned : int;
  bad_pages : (int * page_class) list;  (** torn/stale ids (first 64) *)
  orphan_pages : int list;  (** first 64 *)
}

val classify : ?free:(int -> bool) -> ?reachable:(int -> bool) -> Pager.t -> int -> page_class
(** Classify one page (one unverified read). *)

val run : ?free:(int -> bool) -> ?reachable:(int -> bool) -> Pager.t -> report
(** Scan the whole device.  [free] marks free-list pages; [reachable]
    marks pages the live tree (or superblock) uses — valid pages that
    are neither are reported as orphaned. *)

val clean : report -> bool
(** No torn and no stale pages. *)

val pp_class : Format.formatter -> page_class -> unit
val pp_report : Format.formatter -> report -> unit
