(** Read-only device scrub: classify every page by its integrity
    trailer, cross-referenced against the caller's free list and
    reachability predicate.  The analysis half of [prt fsck]; never
    modifies the device.  Progress and damage counts flow through
    [Prt_obs] metrics ([scrub.scanned], [scrub.torn], [scrub.stale],
    [scrub.orphaned]). *)

type page_class =
  | Valid  (** checksum and epoch good, reachable (or no predicate) *)
  | Fresh  (** all-zero, never written *)
  | Torn  (** checksum mismatch: torn or interrupted write *)
  | Stale  (** checksummed by another format epoch *)
  | Free_page  (** on the free list *)
  | Orphaned  (** valid but neither reachable nor free: leaked space *)

type report = {
  scanned : int;
  valid : int;
  fresh : int;
  torn : int;
  stale : int;
  free : int;
  orphaned : int;
  bad_pages : (int * page_class) list;  (** torn/stale ids (first 64) *)
  orphan_pages : int list;  (** first 64 *)
}

val classify : ?free:(int -> bool) -> ?reachable:(int -> bool) -> Pager.t -> int -> page_class
(** Classify one page (one unverified read). *)

val run : ?free:(int -> bool) -> ?reachable:(int -> bool) -> Pager.t -> report
(** Scan the whole device.  [free] marks free-list pages; [reachable]
    marks pages the live tree (or superblock) uses — valid pages that
    are neither are reported as orphaned. *)

val clean : report -> bool
(** No torn and no stale pages. *)

val pp_class : Format.formatter -> page_class -> unit
val pp_report : Format.formatter -> report -> unit

(** {1 Incremental online scrub}

    The self-healing half of the resilience layer: verify a bounded
    slice of the device per call (between query batches), heal damaged
    pages in place when [repair] can produce their committed image (the
    index file's post-image shadow chain), and feed the rest into the
    {!Quarantine} so the read path degrades around them.  Healthy pages
    found quarantined are released.  Single-domain, like all device
    mutation. *)

type cursor = { mutable pos : int }
(** Persistent scan position; wraps at the end of the device. *)

val cursor : unit -> cursor

type online_report = {
  on_scanned : int;  (** Pages examined this call (= min pages device-size). *)
  on_damaged : int;  (** Torn/stale pages found this call. *)
  on_healed : int;  (** Damaged pages repaired in place via [repair]. *)
  on_quarantined : int;  (** Damaged pages newly quarantined (no repair image). *)
  on_cleared : int;  (** Quarantined pages released (healed or re-verified). *)
  on_wrapped : bool;  (** The cursor passed the end of the device. *)
}

val online :
  ?skip:(int -> bool) ->
  ?repair:(int -> bytes option) ->
  quarantine:Quarantine.t ->
  cursor:cursor ->
  pages:int ->
  Pager.t ->
  online_report
(** [online ~quarantine ~cursor ~pages pager] scans the next [pages]
    pages from the cursor.  [skip] excludes pages whose trailer is not
    expected to verify (free pages, the superblock pair).  [repair id]
    returns the committed image to restore, if one is known.  Raises
    [Invalid_argument] when [pages < 1]. *)

val pp_online : Format.formatter -> online_report -> unit
