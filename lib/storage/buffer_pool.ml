(* Write-back buffer pool over a pager.

   The paper's query experiments cache all internal R-tree nodes (at most
   6 MB) so that reported query I/Os equal the number of leaves read; the
   buffer pool is the component that realizes such caching here.  Reads
   served from the cache do not touch the pager and therefore do not
   count as I/Os; dirty pages are written back on eviction or flush. *)

type cached = { data : bytes; mutable dirty : bool }

type t = {
  pager : Pager.t;
  cache : (int, cached) Lru.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 1024) pager = { pager; cache = Lru.create capacity; hits = 0; misses = 0 }

let pager t = t.pager
let hits t = t.hits
let misses t = t.misses

let write_back t id (c : cached) = if c.dirty then Pager.write t.pager id c.data

let evicted t = function
  | Some (id, c) -> write_back t id c
  | None -> ()

let read t id =
  match Lru.find t.cache id with
  | Some c ->
      t.hits <- t.hits + 1;
      c.data
  | None ->
      t.misses <- t.misses + 1;
      let data = Pager.read t.pager id in
      evicted t (Lru.add t.cache id { data; dirty = false });
      data

let write t id data =
  if Bytes.length data <> Pager.page_size t.pager then
    invalid_arg "Buffer_pool.write: buffer size mismatch";
  match Lru.find t.cache id with
  | Some c ->
      if c.data != data then Bytes.blit data 0 c.data 0 (Bytes.length data);
      c.dirty <- true
  | None -> evicted t (Lru.add t.cache id { data = Bytes.copy data; dirty = true })

let alloc t = Pager.alloc t.pager

let free t id =
  ignore (Lru.remove t.cache id);
  Pager.free t.pager id

let flush t =
  Lru.iter t.cache (fun id c ->
      if c.dirty then begin
        Pager.write t.pager id c.data;
        c.dirty <- false
      end)

let drop_clean t =
  flush t;
  Lru.clear t.cache

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0
