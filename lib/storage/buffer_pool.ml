(* Write-back buffer pool over a pager.

   The paper's query experiments cache all internal R-tree nodes (at most
   6 MB) so that reported query I/Os equal the number of leaves read; the
   buffer pool is the component that realizes such caching here.  Reads
   served from the cache do not touch the pager and therefore do not
   count as I/Os; dirty pages are written back on eviction or flush.

   The pool is also the fault-absorption layer: every pager operation
   runs under a bounded retry-with-backoff policy, so transient
   [Pager.Io_error]s (from a fault-injecting pager, see
   {!Pager.wrap_faulty}) are retried and recorded in the [degraded]
   statistics channel, while permanent failures surface as [Io_error]
   after the attempt budget is exhausted.  Retrying a full-page write
   also heals torn writes, and re-reading heals short reads, because
   pages are always transferred whole. *)

type retry = { attempts : int; backoff_base : int }

let default_retry = { attempts = 5; backoff_base = 1 }

type degraded = Retry.stats = {
  mutable faults : int;
  mutable retries : int;
  mutable backoff : int;
  mutable failures : int;
  mutable last_error : string option;
  mutable rejected : int;
  mutable trips : int;
}

type cached = { data : bytes; mutable dirty : bool }

type t = {
  pager : Pager.t;
  cache : (int, cached) Lru.t;
  engine : Retry.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable dirties : int;
      (* Cached pages currently dirty.  The mmap read path consults
         [is_clean] before trusting the file mapping: any staged write
         makes the on-disk image stale, so queries fall back to the
         pool until the next flush. *)
}

(* Observability mirrors of the per-pool counters (see the note in
   {!Pager}): registry-level aggregates across all pools, bumped next to
   the fields so span deltas attribute caching behaviour per phase. *)
let m_hits = Prt_obs.Metrics.counter "pool.hits"
let m_misses = Prt_obs.Metrics.counter "pool.misses"
let m_evictions = Prt_obs.Metrics.counter "pool.evictions"
let m_faults = Prt_obs.Metrics.counter "pool.faults"
let m_retries = Prt_obs.Metrics.counter "pool.retries"
let m_failures = Prt_obs.Metrics.counter "pool.failures"
let m_rejected = Prt_obs.Metrics.counter "pool.rejected"
let m_trips = Prt_obs.Metrics.counter "retry.circuit_trips"

let observe = function
  | Retry.Fault -> Prt_obs.Metrics.tick m_faults
  | Retry.Retried -> Prt_obs.Metrics.tick m_retries
  | Retry.Failed -> Prt_obs.Metrics.tick m_failures
  | Retry.Rejected -> Prt_obs.Metrics.tick m_rejected
  | Retry.Tripped -> Prt_obs.Metrics.tick m_trips

let create ?(capacity = 1024) ?(retry = default_retry) ?breaker pager =
  if retry.attempts < 1 then invalid_arg "Buffer_pool.create: retry attempts must be >= 1";
  if retry.backoff_base < 0 then invalid_arg "Buffer_pool.create: backoff must be non-negative";
  let policy =
    let base =
      { Retry.default_policy with attempts = retry.attempts; backoff_base = retry.backoff_base }
    in
    match breaker with
    | None -> base
    | Some (threshold, cooldown) ->
        { base with breaker_threshold = threshold; breaker_cooldown = cooldown }
  in
  {
    pager;
    cache = Lru.create capacity;
    engine = Retry.create ~policy ~observe ();
    hits = 0;
    misses = 0;
    evictions = 0;
    dirties = 0;
  }

let pager t = t.pager
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let degraded t = Retry.stats t.engine
let retry_engine t = t.engine

let hit_ratio t =
  let total = t.hits + t.misses in
  if total = 0 then Float.nan else float_of_int t.hits /. float_of_int total

(* One pager operation under the shared retry engine (see {!Retry}):
   transient [Io_error]s are retried with jittered exponential backoff;
   exhaustion re-raises with the operation name, so permanent faults
   surface cleanly instead of corrupting state. *)
let with_retry t op f = Retry.run t.engine ~op f

let write_back t id (c : cached) =
  if c.dirty then with_retry t "write_back" (fun () -> Pager.write t.pager id c.data)

let evicted t = function
  | Some (id, c) ->
      t.evictions <- t.evictions + 1;
      Prt_obs.Metrics.tick m_evictions;
      if c.dirty then t.dirties <- t.dirties - 1;
      write_back t id c
  | None -> ()

let read t id =
  match Lru.find t.cache id with
  | Some c ->
      t.hits <- t.hits + 1;
      Prt_obs.Metrics.tick m_hits;
      c.data
  | None ->
      (* Fetch first, count after: a miss is recorded once per *logical*
         read that completes.  Counting before the retry loop would
         charge one miss per caller-level retry of a read whose fault
         budget was exhausted — the same logical read, counted again on
         every attempt — which skews the hit ratio under fault
         injection. *)
      let data = with_retry t "read" (fun () -> Pager.read t.pager id) in
      t.misses <- t.misses + 1;
      Prt_obs.Metrics.tick m_misses;
      evicted t (Lru.add t.cache id { data; dirty = false });
      data

let write t id data =
  if Bytes.length data <> Pager.page_size t.pager then
    invalid_arg "Buffer_pool.write: buffer size mismatch";
  match Lru.find t.cache id with
  | Some c ->
      if c.data != data then Bytes.blit data 0 c.data 0 (Bytes.length data);
      if not c.dirty then t.dirties <- t.dirties + 1;
      c.dirty <- true
  | None ->
      t.dirties <- t.dirties + 1;
      evicted t (Lru.add t.cache id { data = Bytes.copy data; dirty = true })

let alloc t = with_retry t "alloc" (fun () -> Pager.alloc t.pager)

let free t id =
  (match Lru.remove t.cache id with
  | Some c when c.dirty -> t.dirties <- t.dirties - 1
  | _ -> ());
  Pager.free t.pager id

let flush t =
  Lru.iter t.cache (fun id c ->
      if c.dirty then begin
        with_retry t "flush" (fun () -> Pager.write t.pager id c.data);
        c.dirty <- false;
        t.dirties <- t.dirties - 1
      end)

let is_clean t = t.dirties = 0

let drop_clean t =
  flush t;
  Lru.clear t.cache

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  Retry.reset t.engine

let pp_degraded = Retry.pp_stats
