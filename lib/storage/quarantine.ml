(* Shared registry of page ids known (or strongly suspected) to be
   damaged.  The read path consults it to skip poisoned subtrees without
   re-touching the device, and the online scrub both feeds it (trailer
   verification failed) and drains it (page healed or re-verified).

   Guarded by a mutex because `Qexec` workers on other domains add to it
   mid-batch.  Every first-time add ticks the (domain-striped, hence
   domain-safe) [resilience.pages_quarantined] counter and drops a
   flight-recorder event, so a degraded query's timeline shows exactly
   when each page went dark — no caller-side mirroring. *)

type reason = Corrupt | Io_failed

type t = {
  mu : Mutex.t;
  pages : (int, reason) Hashtbl.t;
  mutable added_total : int;  (* monotonic: every add of a new id *)
}

let m_quarantined = lazy (Prt_obs.Metrics.counter "resilience.pages_quarantined")

let create () = { mu = Mutex.create (); pages = Hashtbl.create 16; added_total = 0 }

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let reason_to_string = function Corrupt -> "corrupt" | Io_failed -> "io-failed"

let add t id reason =
  let added =
    with_lock t (fun () ->
        if Hashtbl.mem t.pages id then false
        else begin
          Hashtbl.replace t.pages id reason;
          t.added_total <- t.added_total + 1;
          true
        end)
  in
  if added then begin
    Prt_obs.Metrics.tick (Lazy.force m_quarantined);
    Prt_obs.Flight.point "resilience.quarantine_add" ~arg:id ~note:(reason_to_string reason)
  end

let mem t id = with_lock t (fun () -> Hashtbl.mem t.pages id)
let find t id = with_lock t (fun () -> Hashtbl.find_opt t.pages id)
let remove t id = with_lock t (fun () -> Hashtbl.remove t.pages id)
let count t = with_lock t (fun () -> Hashtbl.length t.pages)
let added_total t = with_lock t (fun () -> t.added_total)

let pages t =
  with_lock t (fun () -> Hashtbl.fold (fun id _ acc -> id :: acc) t.pages [])
  |> List.sort Int.compare

let clear t = with_lock t (fun () -> Hashtbl.reset t.pages)

let pp ppf t =
  let entries =
    with_lock t (fun () -> Hashtbl.fold (fun id r acc -> (id, r) :: acc) t.pages [])
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Fmt.pf ppf "quarantine{%a}"
    (Fmt.list ~sep:Fmt.comma (fun ppf (id, r) -> Fmt.pf ppf "%d:%s" id (reason_to_string r)))
    entries
