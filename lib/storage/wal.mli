(** CRC-framed write-ahead log segments.

    An append-only file of length-prefixed records, each protected by a
    CRC-32C over its payload: [len (u32) | crc32c (u32) | payload].
    Appends go through {!Fsops}, so injected faults and kill points land
    between the two halves of a frame — a crash mid-append leaves a torn
    tail that {!replay} detects and drops, and an injected fault leaves
    the file truncated back to its last good frame so the caller can
    simply retry the append.

    Segments carry no header: a zero-length file is a valid empty
    segment, and the owner names segments by sequence number
    (["wal-%06d.log"]).  Durability is explicit — {!append} only
    buffers into the OS; call {!sync} to make acknowledged records
    crash-proof. *)

type t

val create : fsops:Fsops.t -> string -> t
(** Create a fresh (truncated) segment open for appending. *)

val open_append : fsops:Fsops.t -> string -> valid:int -> t
(** Reopen an existing segment for appending after {!replay} reported
    [valid] good bytes: any torn tail beyond [valid] is truncated
    away first. *)

val append : t -> bytes -> unit
(** Frame and append one record.  On an injected {!Pager.Io_error} the
    segment is truncated back to its pre-append length before the
    exception propagates, so a retry appends a clean frame.  A
    {!Failpoint.Simulated_crash} propagates with whatever torn prefix
    persisted — exactly what a real kill would leave. *)

val sync : t -> unit
(** fsync the segment (through {!Fsops}: faults and kill points apply). *)

val size : t -> int
(** Bytes of complete frames appended (excludes any in-flight torn
    tail). *)

val records : t -> int
(** Records appended through this handle (replayed records are the
    opener's business). *)

val path : t -> string
val close : t -> unit

val replay : string -> f:(bytes -> unit) -> int * int * int
(** [replay path ~f] scans the segment from the start, calling [f] on
    every payload whose frame verifies, stopping at the first bad
    length or CRC (a torn tail).  Returns
    [(records, valid_bytes, torn_bytes)].  A missing file replays as
    empty. *)

val max_payload : int
(** Sanity cap on frame payloads (1 MiB): a corrupt length field larger
    than this is treated as a torn tail, not an allocation request. *)

val frame_overhead : int
(** Bytes of framing per record (length + CRC = 8): what a payload costs
    on disk beyond itself. *)
