(* Fixed-size page buffers and the little-endian field codecs used by
   every on-page format in the repository (R-tree nodes, sorted-run
   records).  Keeping the codec in one place makes the 36-byte record
   layout of the paper's experiments (4 x float64 + int32) auditable. *)

type t = bytes

let create size = Bytes.make size '\000'

let size = Bytes.length

let set_f64 page off v = Bytes.set_int64_le page off (Int64.bits_of_float v)
let get_f64 page off = Int64.float_of_bits (Bytes.get_int64_le page off)

let set_i32 page off v =
  if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
    invalid_arg "Page.set_i32: value exceeds 32 bits";
  Bytes.set_int32_le page off (Int32.of_int v)

let get_i32 page off = Int32.to_int (Bytes.get_int32_le page off)

let set_u16 page off v =
  if v < 0 || v > 0xFFFF then invalid_arg "Page.set_u16: value exceeds 16 bits";
  Bytes.set_uint16_le page off v

let get_u16 page off = Bytes.get_uint16_le page off

let set_u8 page off v =
  if v < 0 || v > 0xFF then invalid_arg "Page.set_u8: value exceeds 8 bits";
  Bytes.set_uint8 page off v

let get_u8 page off = Bytes.get_uint8 page off
