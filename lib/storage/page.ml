(* Fixed-size page buffers and the little-endian field codecs used by
   every on-page format in the repository (R-tree nodes, sorted-run
   records).  Keeping the codec in one place makes the 36-byte record
   layout of the paper's experiments (4 x float64 + int32) auditable.

   Format v2 additionally reserves a 16-byte trailer at the end of every
   page:

     [page_size-16 .. page_size-9]   page LSN (int64 LE, monotonic per device)
     [page_size-8  .. page_size-7]   format epoch (u16 LE; 2 = this format)
     [page_size-6  .. page_size-5]   reserved (zero)
     [page_size-4  .. page_size-1]   CRC-32C over bytes [0, page_size-4)

   The trailer is owned by the storage layer: {!Pager.write} stamps it
   and {!Pager.read} verifies it, while node and record codecs confine
   themselves to the first [payload_size] bytes.  An epoch of zero marks
   a page that was never stamped; such a page is only legitimate when it
   is all zeros (a freshly allocated page). *)

type t = bytes

let create size = Bytes.make size '\000'

let size = Bytes.length

let set_f64 page off v = Bytes.set_int64_le page off (Int64.bits_of_float v)
let get_f64 page off = Int64.float_of_bits (Bytes.get_int64_le page off)

let set_i32 page off v =
  if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
    invalid_arg "Page.set_i32: value exceeds 32 bits";
  Bytes.set_int32_le page off (Int32.of_int v)

let get_i32 page off = Int32.to_int (Bytes.get_int32_le page off)

let set_u16 page off v =
  if v < 0 || v > 0xFFFF then invalid_arg "Page.set_u16: value exceeds 16 bits";
  Bytes.set_uint16_le page off v

let get_u16 page off = Bytes.get_uint16_le page off

let set_u8 page off v =
  if v < 0 || v > 0xFF then invalid_arg "Page.set_u8: value exceeds 8 bits";
  Bytes.set_uint8 page off v

let get_u8 page off = Bytes.get_uint8 page off

(* --- the v2 integrity trailer --- *)

let trailer_size = 16
let format_epoch = 2

let payload_size page_size =
  if page_size <= trailer_size then
    invalid_arg "Page.payload_size: page smaller than the integrity trailer";
  page_size - trailer_size

(* CRC-32C (Castagnoli), table-driven, reflected polynomial 0x82F63B78 —
   the checksum used by iSCSI and ext4 metadata.  Plain OCaml ints hold
   the 32-bit state on 64-bit platforms. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0x82F63B78 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32c buf ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := Array.unsafe_get table ((!c lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let set_crc page off v = Bytes.set_int32_le page off (Int32.of_int (v land 0xFFFFFFFF))
let get_crc page off = Int32.to_int (Bytes.get_int32_le page off) land 0xFFFFFFFF

let stamp page ~lsn =
  let size = Bytes.length page in
  let off = size - trailer_size in
  Bytes.set_int64_le page off (Int64.of_int lsn);
  set_u16 page (off + 8) format_epoch;
  set_u16 page (off + 10) 0;
  set_crc page (size - 4) (crc32c page ~pos:0 ~len:(size - 4))

let lsn page = Int64.to_int (Bytes.get_int64_le page (Bytes.length page - trailer_size))

type integrity =
  | Fresh
  | Valid of { epoch : int; lsn : int }
  | Torn
  | Stale_epoch of int

let all_zero page =
  let n = Bytes.length page in
  let rec go i = i = n || (Bytes.unsafe_get page i = '\000' && go (i + 1)) in
  go 0

let check page =
  let size = Bytes.length page in
  if size <= trailer_size then invalid_arg "Page.check: page smaller than the trailer";
  let off = size - trailer_size in
  let epoch = get_u16 page (off + 8) in
  if epoch = 0 then if all_zero page then Fresh else Torn
  else if get_crc page (size - 4) <> crc32c page ~pos:0 ~len:(size - 4) then Torn
  else if epoch <> format_epoch then Stale_epoch epoch
  else Valid { epoch; lsn = lsn page }

let pp_integrity ppf = function
  | Fresh -> Fmt.string ppf "fresh"
  | Valid { epoch; lsn } -> Fmt.pf ppf "valid(epoch=%d lsn=%d)" epoch lsn
  | Torn -> Fmt.string ppf "torn"
  | Stale_epoch e -> Fmt.pf ppf "stale-epoch(%d)" e
