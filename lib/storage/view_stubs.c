/* C stubs for the mmap read path.
 *
 * prt_view_get_f64: unaligned little-endian float64 load from a mapped
 * Bigarray.  Node entries sit at offset 3 + 36*i inside the page, so
 * the float fields are never 8-byte aligned; a memcpy-based load is
 * the portable way to read them, and the [@unboxed] external keeps the
 * result out of the heap on the native path.
 *
 * prt_view_madvise_random: best-effort MADV_RANDOM advice on the
 * mapping.  Query descent touches pages in index order, not file
 * order, so read-ahead is wasted work.  Silently a no-op where the
 * platform lacks madvise or MADV_RANDOM.
 */

#include <string.h>
#include <stdint.h>

#include <caml/mlvalues.h>
#include <caml/bigarray.h>
#include <caml/alloc.h>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#endif

double prt_view_get_f64_native(value vmap, intnat off)
{
  double d;
  uint64_t bits;
  memcpy(&bits, (const char *)Caml_ba_data_val(vmap) + off, 8);
  /* The on-page format is little-endian; OCaml's supported native
     targets are all little-endian, so the raw copy is the decode. */
  memcpy(&d, &bits, 8);
  return d;
}

CAMLprim value prt_view_get_f64_byte(value vmap, value voff)
{
  return caml_copy_double(prt_view_get_f64_native(vmap, Long_val(voff)));
}

CAMLprim value prt_view_madvise_random(value vmap)
{
#if defined(MADV_RANDOM)
  madvise(Caml_ba_data_val(vmap), caml_ba_byte_size(Caml_ba_array_val(vmap)),
          MADV_RANDOM);
#else
  (void)vmap;
#endif
  return Val_unit;
}
