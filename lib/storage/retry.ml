(* Shared retry engine for transient storage faults.

   One policy object replaces the hand-rolled bounded-retry loops that
   used to live in {!Buffer_pool} and [Record_file]: bounded attempts,
   deterministic jittered exponential backoff (the jitter draws from a
   seeded xoshiro stream, so a failing run replays bit-for-bit), and an
   optional per-device circuit breaker.

   Only {!Pager.Io_error} is ever caught: it is the one exception the
   storage stack defines as *transient*.  {!Pager.Corrupt_page} means
   the damage is on the platter — retrying cannot help and hides the
   page from the scrub — so it always propagates untouched, as does
   {!Failpoint.Simulated_crash}.

   The breaker counts consecutive *operations* that exhausted their
   whole attempt budget (not individual faulted attempts): under the
   default policy (5 attempts vs the failpoint's max_consecutive = 3)
   operations always eventually succeed, so the breaker never trips on
   merely lossy devices — it reacts to devices that are actually down.
   While open it fails fast ([Io_error], counted as [rejected]) for
   [breaker_cooldown] operations, then half-opens: the next operation
   runs as a probe, closing the breaker on success and re-opening it on
   failure.

   Backoff is simulated (counted in units, never slept) and advances the
   virtual clock of {!Prt_util.Deadline} when one is installed, so
   deadline tests can observe retry storms consuming their budget.

   Observability: besides the per-engine [stats] and the [observe]
   callback (which {!Buffer_pool} wires to counters), every retry
   attempt and breaker transition drops a [resilience.*] event on the
   calling domain's flight ring, so a degraded run's timeline is
   reconstructable from one trace dump. *)

module Rng = Prt_util.Rng
module Deadline = Prt_util.Deadline

type policy = {
  attempts : int;
  backoff_base : int;
  max_backoff : int;
  jitter : float;
  breaker_threshold : int;
  breaker_cooldown : int;
  seed : int;
}

let default_policy =
  {
    attempts = 5;
    backoff_base = 1;
    max_backoff = 1 lsl 16;
    jitter = 0.25;
    breaker_threshold = 0;
    breaker_cooldown = 32;
    seed = 0;
  }

type stats = {
  mutable faults : int;
  mutable retries : int;
  mutable backoff : int;
  mutable failures : int;
  mutable last_error : string option;
  mutable rejected : int;
  mutable trips : int;
}

type event = Fault | Retried | Failed | Rejected | Tripped

type breaker = Closed | Open of int  (* fail-fast ops left in cooldown *) | Half_open

type t = {
  policy : policy;
  rng : Rng.t;
  stats : stats;
  observe : event -> unit;
  mutable breaker : breaker;
  mutable consecutive_failures : int;
}

let fresh_stats () =
  { faults = 0; retries = 0; backoff = 0; failures = 0; last_error = None; rejected = 0; trips = 0 }

let create ?(policy = default_policy) ?(observe = fun (_ : event) -> ()) () =
  if policy.attempts < 1 then invalid_arg "Retry.create: attempts must be >= 1";
  if policy.backoff_base < 0 then invalid_arg "Retry.create: backoff must be non-negative";
  if policy.jitter < 0.0 || policy.jitter > 1.0 then
    invalid_arg "Retry.create: jitter outside [0, 1]";
  if policy.breaker_cooldown < 1 then invalid_arg "Retry.create: breaker_cooldown must be >= 1";
  {
    policy;
    rng = Rng.create policy.seed;
    stats = fresh_stats ();
    observe;
    breaker = Closed;
    consecutive_failures = 0;
  }

let stats t = t.stats
let policy t = t.policy

let breaker_state t =
  match t.breaker with Closed -> `Closed | Open _ -> `Open | Half_open -> `Half_open

type breaker_health =
  | Breaker_closed
  | Breaker_open of { cooldown_left : int }
  | Breaker_half_open

let breaker_health t =
  match t.breaker with
  | Closed -> Breaker_closed
  | Open n -> Breaker_open { cooldown_left = n }
  | Half_open -> Breaker_half_open

let pp_breaker_health ppf = function
  | Breaker_closed -> Fmt.string ppf "closed"
  | Breaker_open { cooldown_left } ->
      Fmt.pf ppf "open (%d fail-fast ops until probe)" cooldown_left
  | Breaker_half_open -> Fmt.string ppf "half-open (probing)"

let reset t =
  let s = t.stats in
  s.faults <- 0;
  s.retries <- 0;
  s.backoff <- 0;
  s.failures <- 0;
  s.last_error <- None;
  s.rejected <- 0;
  s.trips <- 0;
  t.breaker <- Closed;
  t.consecutive_failures <- 0

(* Backoff units charged before attempt [k+1]: exponential in the retry
   count, capped, plus up to [jitter] extra drawn from the seeded stream
   (decorrelates retry storms across devices sharing a schedule).  The
   RNG advances only on actual retries, so a fault-free run consumes no
   randomness and stays schedule-identical to one without a policy. *)
let backoff_units t ~attempt =
  let p = t.policy in
  let base = min p.max_backoff (p.backoff_base lsl (attempt - 1)) in
  if base <= 0 || p.jitter = 0.0 then base
  else
    let spread = int_of_float (ceil (float_of_int base *. p.jitter)) in
    base + Rng.int t.rng (spread + 1)

let trip t =
  t.breaker <- Open t.policy.breaker_cooldown;
  t.stats.trips <- t.stats.trips + 1;
  Prt_obs.Flight.point "resilience.breaker_open" ~arg:t.policy.breaker_cooldown;
  t.observe Tripped

let record_failure t ~op msg =
  t.stats.failures <- t.stats.failures + 1;
  t.stats.last_error <- Some (op ^ ": " ^ msg);
  t.observe Failed;
  t.consecutive_failures <- t.consecutive_failures + 1;
  (match t.breaker with
  | Half_open -> trip t (* the probe failed: straight back to open *)
  | Closed when t.policy.breaker_threshold > 0
                && t.consecutive_failures >= t.policy.breaker_threshold ->
      trip t
  | Closed | Open _ -> ())

let run t ~op f =
  (match t.breaker with
  | Open n when n > 0 ->
      t.breaker <- Open (n - 1);
      t.stats.rejected <- t.stats.rejected + 1;
      Prt_obs.Flight.point "resilience.rejected" ~note:op;
      t.observe Rejected;
      raise
        (Pager.Io_error
           (Printf.sprintf "%s: circuit breaker open (%d rejections until probe)" op (n - 1)))
  | Open _ ->
      (* Cooldown served: this op is the probe. *)
      t.breaker <- Half_open;
      Prt_obs.Flight.point "resilience.breaker_half_open" ~note:op
  | Closed | Half_open -> ());
  let r = t.policy in
  let rec go attempt =
    match f () with
    | v ->
        if t.breaker = Half_open then begin
          t.breaker <- Closed;
          Prt_obs.Flight.point "resilience.breaker_close" ~note:op
        end;
        t.consecutive_failures <- 0;
        v
    | exception Pager.Io_error msg ->
        t.stats.faults <- t.stats.faults + 1;
        t.observe Fault;
        if attempt < r.attempts then begin
          t.stats.retries <- t.stats.retries + 1;
          Prt_obs.Flight.point "resilience.retry" ~arg:attempt ~note:op;
          t.observe Retried;
          let units = backoff_units t ~attempt in
          t.stats.backoff <- t.stats.backoff + units;
          Deadline.advance_ms (float_of_int units);
          go (attempt + 1)
        end
        else begin
          record_failure t ~op msg;
          raise
            (Pager.Io_error
               (Printf.sprintf "%s: giving up after %d attempts: %s" op r.attempts msg))
        end
  in
  go 1

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "faults=%d retries=%d backoff=%d failures=%d rejected=%d trips=%d%a" s.faults
    s.retries s.backoff s.failures s.rejected s.trips
    (fun ppf -> function None -> () | Some e -> Fmt.pf ppf " last=%S" e)
    s.last_error
