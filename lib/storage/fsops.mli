(** Failpoint-instrumented file-system operations.

    The WAL and the component manifest are plain files, not pages of a
    {!Pager} — so the fault injection and kill-point machinery the paged
    stack gets from {!Pager.wrap_faulty}/{!Pager.arm_crash} does not
    reach them.  This module closes that gap: every operation the
    ingestion subsystem performs outside a pager (appends, fsync,
    directory sync, rename, unlink, file creation) goes through an
    [Fsops.t] that first consults an optional fault policy and an
    optional crash budget.

    Both failpoints are ordinary {!Failpoint.t} values, so a single
    crash budget shared with [Index_file.create ~crash] sweeps one
    unified ordinal space: physical page writes of a component build and
    the rename/fsync/dir-sync transitions of a manifest swap are all
    kill points of the same deterministic matrix.

    Fault semantics mirror the pager wrapper: a [write_error] verdict
    raises {!Pager.Io_error} with nothing persisted, a [torn_write]
    verdict persists only a prefix of the chunk and then raises
    {!Pager.Io_error} (callers repair by truncating back before a
    retry).  {!Failpoint.Simulated_crash} always propagates with
    whatever prefix of the operation sequence already persisted — the
    reopen path must cope with exactly that state. *)

type t

val create : ?faults:Failpoint.t -> ?crash:Failpoint.t -> unit -> t
(** [faults] is consulted ({!Failpoint.on_write}) before every
    operation; [crash] is the kill-point budget
    ({!Failpoint.on_phys_write}).  Either may be armed later. *)

val plain : unit -> t
(** No injection: operations hit the OS directly. *)

val set_crash : t -> Failpoint.t option -> unit
(** Arm (or disarm) the crash budget — e.g. only after recovery, so the
    reopen path itself is not swept. *)

val crash : t -> Failpoint.t option
val set_faults : t -> Failpoint.t option -> unit
val faults : t -> Failpoint.t option

val kill_point : t -> unit
(** Consult the crash budget once (a no-op when disarmed).  Exposed so
    callers can place extra kill points at their own state transitions
    (e.g. between the two halves of a WAL frame, to model torn tails). *)

val write : t -> Unix.file_descr -> bytes -> unit
(** Append [bytes] at the descriptor's current offset, in two chunks
    with a kill point before each — so a crash budget can leave a torn
    tail.  Raises {!Pager.Io_error} on an injected fault (a torn-write
    verdict persists a prefix first; the caller must truncate back
    before retrying). *)

val fsync : t -> Unix.file_descr -> unit
(** Injected faults raise {!Pager.Io_error}; transient, safe to retry. *)

val fsync_dir : t -> string -> unit
(** Open the directory read-only, fsync it, close — the step that makes
    a rename durable.  Injected faults raise {!Pager.Io_error}. *)

val rename : t -> src:string -> dst:string -> unit
(** [Unix.rename] with a fault verdict and a kill point in front: the
    atomic-publish step of the manifest and of component finalization. *)

val unlink : t -> string -> unit
(** Remove a file, tolerating [ENOENT] (cleanup paths are idempotent
    across crashes).  Carries a kill point but no fault verdict —
    failing a cleanup would only leak work the next open reclaims
    anyway. *)

val create_file : t -> string -> Unix.file_descr
(** Create (truncate) a file open for read/write, with a kill point in
    front.  Raises {!Pager.Io_error} on an injected fault. *)
