(* Generic LRU map: hash table plus an intrusive doubly-linked recency
   list.  Used by the buffer pool to decide which cached page to evict,
   and directly testable in isolation. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* most recently used *)
  mutable tail : ('k, 'v) node option; (* least recently used *)
}

let create capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create (2 * capacity); head = None; tail = None }

let length t = Hashtbl.length t.table
let capacity t = t.capacity

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  if t.head != Some node then begin
    unlink t node;
    push_front t node
  end

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
      touch t node;
      Some node.value

let mem t key = Hashtbl.mem t.table key

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key;
      Some node.value

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      node.value <- value;
      touch t node;
      None
  | None ->
      let node = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node;
      if Hashtbl.length t.table > t.capacity then begin
        match t.tail with
        | None -> assert false
        | Some lru ->
            unlink t lru;
            Hashtbl.remove t.table lru.key;
            Some (lru.key, lru.value)
      end
      else None

let iter t f = Hashtbl.iter (fun key node -> f key node.value) t.table

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
