(** Shadow superblock pair: atomic commit for paged index files.

    Pages 0 and 1 of a formatted device hold two checksummed copies of
    the superblock (commit counter, caller metadata blob, free-list
    snapshot, journal pointer); the copy with the highest valid commit
    counter is live, and each commit writes the other slot.  Combined
    with the pager's pre-image journal and deferred frees, this gives
    transactions on index files the guarantee that a crash at {e any}
    page-write boundary yields either the pre-operation or the
    post-operation tree on reopen — never a hybrid.

    Protocol: {!begin_txn} starts the pager journal and flips the
    superblock to point at it (still carrying the {e old} metadata);
    the caller mutates the tree and flushes its buffer pool; then
    {!commit_txn} flips the superblock to the new metadata with the
    journal cleared.  {!open_} picks the newest valid slot, replays the
    journal if the last transaction never committed, truncates
    uncommitted tail pages, and restores the free list. *)

val pages : int
(** Number of reserved device pages (2: slots at page ids 0 and 1). *)

val meta_capacity : int
(** Maximum metadata blob size in bytes (64). *)

val min_page_size : int
(** Smallest page size a superblock fits in. *)

type t

type recovery = {
  rec_journal_pages : int;  (** pre-images restored from the journal *)
  rec_truncated_pages : int;  (** uncommitted tail pages dropped *)
  rec_slot_repaired : bool;  (** a damaged slot was rewritten from the live one *)
}

val no_recovery : recovery

val format : Pager.t -> meta:bytes -> t
(** Initialise a fresh device: allocates pages 0 and 1 (the device must
    be empty), commits an empty state with the given metadata blob, and
    switches the pager to deferred frees.  Raises [Invalid_argument] if
    the device is not fresh or the blob exceeds {!meta_capacity}. *)

val open_ : Pager.t -> t * recovery
(** Open a formatted device, running crash recovery as needed (see
    above).  Raises [Failure] if neither slot holds a valid superblock —
    only [fsck --rebuild] salvage remains in that case. *)

val meta : t -> bytes
(** The metadata blob of the last committed state (a copy). *)

val commit_count : t -> int
val in_txn : t -> bool
val pager : t -> Pager.t

val free_dropped : t -> int
(** Free pages that did not fit in the last committed snapshot and were
    therefore leaked on reopen (0 in the common case). *)

(** {1 Generation pins (snapshot isolation)}

    Every committed state has a {e generation} — its commit counter.
    A reader {!pin}s the current generation and gets a {!snap}: the
    generation number plus the metadata blob as of that commit.  While
    any snapshot of generation [g] is alive, the pager retains pre-images
    of pages overwritten by later transactions (served transparently by
    [Pager.read_shared ~gen:g]) and keeps pages freed by later commits
    parked, so a descent from the snapshot's root always sees the exact
    committed page images of generation [g] — writers never block
    readers, and vice versa. *)

type snap
(** A pinned generation.  Hold it for the duration of a query batch and
    {!release} it (idempotent) when done. *)

val generation : t -> int
(** The current committed generation.  Equals {!commit_count} except
    while a transaction is open, when [commit_count] already reflects
    the in-flight flip but [generation] still names the last committed
    state. *)

val pin : t -> snap
(** Pin the current committed generation.  Domain-safe: may race
    {!commit_txn}, in which case the snapshot is entirely the old or
    entirely the new generation, never a mix. *)

val snap_gen : snap -> int
val snap_meta : snap -> bytes
(** The metadata blob (tree root, height, count, ...) as of the pinned
    generation (a copy). *)

val release : snap -> int
(** Drop the pin (idempotent; double release is a no-op).  Returns the
    new pin floor — the oldest still-pinned generation, or the current
    generation when none remain — after dropping retained page versions
    no live snapshot can need.  Parked frees are promoted separately by
    the writing domain at its next {!begin_txn} / {!commit_txn}. *)

val release_all_pins : t -> unit
(** Forget every outstanding pin (close path): outstanding [snap]
    handles become inert and version memory below the current
    generation is dropped. *)

val pinned_floor : t -> int
(** Oldest pinned generation, or the current generation if none. *)

val pin_count : t -> int
(** Number of live pins across all generations. *)

val begin_txn : t -> unit
(** Start a transaction: begins the pager's pre-image journal and
    publishes the journal pointer with the old metadata.  Raises
    [Invalid_argument] if a transaction is already open. *)

val commit_txn : t -> meta:bytes -> unit
(** Commit: the caller must have flushed all data writes (e.g.
    [Buffer_pool.flush]) first.  Frees the journal pages, publishes the
    new metadata and free-list snapshot with a single superblock write,
    and promotes deferred frees. *)

(** {1 Inspection (fsck)} *)

type state = {
  commit : int;
  used : int;
  journal : int;
  meta : bytes;
  free_total : int;
  free : int list;
}

type slot = Slot_valid of state | Slot_empty | Slot_bad of string

val inspect : Pager.t -> slot array
(** Classify both superblock slots without opening the device (raw
    reads; never raises on damage). *)
