(** Domain-safe sharded cache of decoded pages, keyed by page id.

    N mutex-guarded shards (hash table + FIFO queue each), holding
    decoded values tagged with the epoch they were decoded under.  A
    probe under a different epoch treats the entry as stale: it is
    dropped, counted as an invalidation, and re-decoded — so bumping the
    epoch (the index file's superblock commit counter) invalidates the
    whole cache in O(1) without touching it.

    Decoding runs under the shard lock, so each page is decoded at most
    once per epoch regardless of how many domains race for it.  All
    operations are safe to call from any domain.  This module never
    touches the {!Prt_obs} registry (which is single-domain); callers
    mirror {!stats} deltas from one domain if they want them exported. *)

type 'v t

val create : ?shards:int -> ?capacity:int -> unit -> 'v t
(** [create ()] makes an empty cache with [shards] mutex-guarded shards
    (rounded up to a power of two, default 64) holding at most
    [capacity] entries in total (default 65536).  Raises
    [Invalid_argument] if [shards < 1] or [capacity < shards]. *)

val find_or_add : 'v t -> epoch:int -> int -> (unit -> 'v) -> 'v
(** [find_or_add t ~epoch id decode] returns the cached value for [id]
    if present and decoded under [epoch]; otherwise calls [decode]
    (under the shard lock) and caches the result for [epoch].  A cached
    value from another epoch is invalidated and replaced. *)

val find : 'v t -> epoch:int -> int -> 'v option
(** Probe without decoding; stale-epoch entries answer [None]. *)

val clear : 'v t -> unit
(** Drop every cached entry (counters are kept). *)

type stats = {
  st_hits : int;
  st_misses : int;
  st_invalidations : int;  (** stale-epoch entries dropped on probe *)
  st_evictions : int;  (** capacity evictions (FIFO per shard) *)
  st_entries : int;  (** live cached entries right now *)
}

val stats : 'v t -> stats
(** Counters summed across shards (each shard read under its lock). *)

val reset_counters : 'v t -> unit

val hit_ratio : stats -> float
(** [hits / (hits + misses)]; [nan] before any probe. *)

val pp_stats : Format.formatter -> stats -> unit
