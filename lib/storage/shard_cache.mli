(** Domain-safe sharded cache of decoded pages, keyed by
    (page id, generation).

    N mutex-guarded shards (hash table + FIFO queue each), holding
    decoded values keyed by the page id {e and} the commit generation
    they were decoded under.  Entries for several generations of the
    same page coexist — snapshot readers pinned to an old generation
    keep their hits while a writer commits new generations — and a
    probe never invalidates anything.  Reclamation is explicit: call
    {!prune} with the oldest generation any live snapshot still pins.

    Decoding runs under the shard lock, so each page is decoded at most
    once per generation regardless of how many domains race for it.
    All operations are safe to call from any domain.  This module never
    touches the {!Prt_obs} registry (which is single-domain); callers
    mirror {!stats} deltas from one domain if they want them exported. *)

type 'v t

val create : ?shards:int -> ?capacity:int -> unit -> 'v t
(** [create ()] makes an empty cache with [shards] mutex-guarded shards
    (rounded up to a power of two, default 64) holding at most
    [capacity] entries in total (default 65536).  Raises
    [Invalid_argument] if [shards < 1] or [capacity < shards]. *)

val find_or_add : 'v t -> gen:int -> int -> (unit -> 'v) -> 'v
(** [find_or_add t ~gen id decode] returns the cached value for [id]
    decoded under generation [gen] if present; otherwise calls [decode]
    (under the shard lock) and caches the result under [(id, gen)].
    Entries of other generations are left untouched. *)

val find : 'v t -> gen:int -> int -> 'v option
(** Probe without decoding. *)

val prune : 'v t -> older_than:int -> int
(** Drop every entry whose generation is strictly below [older_than]
    (the pin floor: no live snapshot can probe below it), counting each
    as an invalidation.  Returns the number of entries dropped. *)

val clear : 'v t -> unit
(** Drop every cached entry (counters are kept). *)

type stats = {
  st_hits : int;
  st_misses : int;
  st_invalidations : int;  (** stale-generation entries dropped by {!prune} *)
  st_evictions : int;  (** capacity evictions (FIFO per shard) *)
  st_entries : int;  (** live cached entries right now *)
}

val stats : 'v t -> stats
(** Counters summed across shards (each shard read under its lock). *)

val reset_counters : 'v t -> unit

val hit_ratio : stats -> float
(** [hits / (hits + misses)]; [nan] before any probe. *)

val pp_stats : Format.formatter -> stats -> unit
