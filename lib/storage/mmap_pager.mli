(** Read-only mmap backend for query serving.

    One shared mapping of the whole index file; query descent reads
    rect floats straight out of it through {!View} with no syscall, no
    lock, no copy and no decode.  Mapped pages are CRC-verified once
    per (page, committed generation) and then trusted; the writer swaps
    the verification memo on every commit ({!refresh}) so stale
    verifications never survive an overwrite.  See DESIGN.md "Storage
    backends" for the decision matrix and the torn-read protocol. *)

type t

type window
(** An immutable (map, page-count) pair.  Readers grab one window per
    descent; it stays valid even if the writer remaps concurrently. *)

type counters = {
  c_windows_served : int;  (** mapped page scans served *)
  c_crc_skipped : int;  (** verifications skipped via the per-generation memo *)
  c_crc_verified : int;  (** CRC sweeps actually run *)
  c_fallbacks : int;  (** descents that fell back to the pread path *)
}

val attach : path:string -> page_size:int -> gen:int -> t option
(** Map [path] read-only for serving.  [gen] is the currently committed
    generation (tags the initial verification memo).  [None] when the
    file cannot be mapped (empty, or the platform refuses); callers
    then stay on the pread backend. *)

val refresh : t -> gen:int -> unit
(** Writer-side, after a commit is durable: remap if the file grew and
    invalidate all memoized CRC verifications, retagging them with the
    new committed generation [gen]. *)

val window : t -> window
(** The current window; take once per descent. *)

val map : window -> View.map
val pages : window -> int
val page_size : t -> int

val cache_gen : t -> int
(** Generation tag of the current verification memo (the last
    [refresh]'s [gen]). *)

val verified : t -> window -> int -> bool
(** [verified t w id]: may the mapped bytes of page [id] be trusted?
    Consults the memo first (allocation-free skip), else runs one
    CRC-32C sweep and memoizes success.  [false] — torn or stale page —
    means serve this page through pread instead. *)

val served : t -> unit
(** Count one mapped page scan. *)

val fell_back : t -> unit
(** Count one fallback to the pread path. *)

val counters : t -> counters

val close : t -> unit
(** Close the backing fd.  Idempotent.  Existing windows stay readable
    until collected. *)
