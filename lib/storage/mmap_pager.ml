(* Read-only mmap backend for query serving.

   The whole index file is mapped once ([Unix.map_file] → a char
   bigarray, advised MADV_RANDOM); query descent then tests rect
   predicates directly against the mapping — no syscall, no
   [shared_lock] mutex, no page copy, no decode.  All domains share the
   one mapping: the kernel's page cache is the only buffer, and
   concurrent readers need no per-domain state.

   Integrity: a mapped page is CRC-verified once per (page, committed
   generation) and then trusted.  The memo is a byte-per-page bitmap
   swapped wholesale by the writer after every commit
   ({!refresh}), so verifications never outlive the bytes they
   vouched for.  Readers race on individual memo bytes without
   synchronization — a lost set merely re-verifies.

   Growth: when a commit extends the file past the mapped bytes, the
   writer installs a new window (map + page count, swapped as one
   atomic record).  A reader that cached the old window mid-descent is
   safe — the old mapping stays valid until its bigarray is GC'd — and
   serves pages beyond its cached bound through the pread path.

   Failure to map at all (empty file, exotic platform) is not an
   error: {!attach} returns [None] and the caller stays on pread. *)

type window = { w_map : View.map; w_pages : int }

type crc_cache = {
  cgen : int;  (* committed generation these verifications are valid for *)
  bits : Bytes.t;  (* one byte per page: '\001' = CRC-verified, trusted *)
}

type t = {
  fd : Unix.file_descr;
  page_size : int;
  win : window Atomic.t;
  crc : crc_cache Atomic.t;
  windows_served : int Atomic.t;
  crc_skipped : int Atomic.t;
  crc_verified : int Atomic.t;
  fallbacks : int Atomic.t;
  mutable closed : bool;
}

type counters = {
  c_windows_served : int;
  c_crc_skipped : int;
  c_crc_verified : int;
  c_fallbacks : int;
}

(* Registry-level mirrors of the cold events (attach/remap/fallback);
   the per-window hot counters stay plain atomics so the serving path
   never touches the striped registry. *)
let m_attach = Prt_obs.Metrics.counter "mmap.attach"
let m_remap = Prt_obs.Metrics.counter "mmap.remap"
let m_fallback = Prt_obs.Metrics.counter "mmap.fallbacks"

let map_window fd page_size =
  let size = (Unix.LargeFile.fstat fd).Unix.LargeFile.st_size in
  let pages = Int64.to_int (Int64.div size (Int64.of_int page_size)) in
  if pages = 0 then None
  else
    let bytes = pages * page_size in
    let g =
      Unix.map_file fd Bigarray.char Bigarray.c_layout true [| bytes |]
    in
    let m = Bigarray.array1_of_genarray g in
    View.madvise_random m;
    Some { w_map = m; w_pages = pages }

let attach ~path ~page_size ~gen =
  (* The fd must be open read-write: [Unix.map_file ~shared:true] maps
     PROT_READ|PROT_WRITE so that writes through the ordinary pager fd
     stay visible in the mapping.  Nothing here ever stores through it. *)
  match Unix.openfile path [ Unix.O_RDWR ] 0o644 with
  | exception Unix.Unix_error _ -> None
  | fd -> (
      match map_window fd page_size with
      | None | (exception _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          None
      | Some w ->
          Prt_obs.Metrics.tick m_attach;
          Some
            {
              fd;
              page_size;
              win = Atomic.make w;
              crc = Atomic.make { cgen = gen; bits = Bytes.make w.w_pages '\000' };
              windows_served = Atomic.make 0;
              crc_skipped = Atomic.make 0;
              crc_verified = Atomic.make 0;
              fallbacks = Atomic.make 0;
              closed = false;
            })

let page_size t = t.page_size
let window t = Atomic.get t.win
let map w = w.w_map
let pages w = w.w_pages

(* Writer-side, after a commit is durable: extend the window if the
   file grew, then drop every memoized verification by installing a
   fresh cache tagged with the new committed generation.  Order
   matters: the window must be current before the cache says any page
   under it is unverified-but-verifiable. *)
let refresh t ~gen =
  if not t.closed then begin
    (match map_window t.fd t.page_size with
    | Some w when w.w_pages > (Atomic.get t.win).w_pages ->
        Atomic.set t.win w;
        Prt_obs.Metrics.tick m_remap
    | _ -> ());
    let pages = (Atomic.get t.win).w_pages in
    Atomic.set t.crc { cgen = gen; bits = Bytes.make pages '\000' }

  end

let cache_gen t = (Atomic.get t.crc).cgen

(* The hot-path integrity gate: [true] means the mapped bytes of [id]
   may be trusted, [false] means fall back to pread for this page.
   Allocation-free: one atomic load, one byte test, at worst one CRC
   sweep of the page. *)
let verified t w id =
  let c = Atomic.get t.crc in
  if id < Bytes.length c.bits && Bytes.unsafe_get c.bits id = '\001' then begin
    Atomic.incr t.crc_skipped;
    true
  end
  else if
    View.page_valid w.w_map ~base:(id * t.page_size) ~page_size:t.page_size
  then begin
    Atomic.incr t.crc_verified;
    if id < Bytes.length c.bits then Bytes.unsafe_set c.bits id '\001';
    true
  end
  else false

let served t = Atomic.incr t.windows_served

let fell_back t =
  Atomic.incr t.fallbacks;
  Prt_obs.Metrics.tick m_fallback

let counters t =
  {
    c_windows_served = Atomic.get t.windows_served;
    c_crc_skipped = Atomic.get t.crc_skipped;
    c_crc_verified = Atomic.get t.crc_verified;
    c_fallbacks = Atomic.get t.fallbacks;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* The mapping itself is unmapped when the bigarray is collected;
       closing the fd now is safe (mmap holds its own reference). *)
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
