(** The serving tier's length-prefixed binary protocol.

    A frame is a 8-byte header, a payload, and a CRC-32C trailer:

    {v
      bytes 0..3    payload length N (u32 LE)
      byte  4       protocol version (currently 1)
      byte  5       message kind
      bytes 6..7    reserved (zero)
      bytes 8..8+N  payload
      last 4 bytes  CRC-32C over bytes [4, 8+N)  (version..payload)
    v}

    Decoding is total: every way a frame can be wrong — truncated,
    oversized length prefix, checksum mismatch, unknown version or kind,
    malformed payload — comes back as a typed {!proto_error}; no
    exception ever escapes {!decode} or the streaming {!Reader}, so a
    hostile byte stream can at worst earn itself a typed error reply and
    a closed connection.  Requests and replies share one frame space
    (the kind byte distinguishes them), so both ends run the same
    decoder. *)

module Rect = Prt_geom.Rect
module Entry = Prt_rtree.Entry

val version : int

val default_max_payload : int
(** 1 MiB: frames claiming more are rejected before any buffering. *)

(** Typed rejection codes carried by {!Error} replies.  Every shed path
    of the server maps to one of these — overload and quota rejections
    additionally carry a retry-after hint. *)
type error_code =
  | E_overloaded  (** admission control shed the request; retry later *)
  | E_quota  (** the connection's token bucket is empty *)
  | E_deadline  (** the request's deadline expired before execution *)
  | E_malformed  (** unparseable frame; the connection will close *)
  | E_draining  (** the server is shutting down gracefully *)
  | E_too_large  (** more windows than the server accepts per request *)

(** Wire form of {!Prt_rtree.Rtree.completeness} — partiality is typed
    end to end, never inferred from a smaller result. *)
type completeness =
  | C_complete
  | C_partial of { skipped : int }
  | C_timed_out of { skipped : int }

type query_result = { qr_completeness : completeness; qr_hits : Entry.t list }

(** Wire form of {!Prt_storage.Retry.breaker_health}. *)
type breaker = B_closed | B_open of { cooldown_left : int } | B_half_open

type health = {
  h_conns : int;  (** live connections *)
  h_draining : bool;
  h_generation : int;  (** committed MVCC generation being served *)
  h_breaker : breaker;  (** storage circuit-breaker health *)
  h_quota_tokens : float;  (** tokens left in this connection's bucket *)
  h_backend : string;  (** active read backend: ["mmap"] or ["pread"] *)
  h_mmap_served : int;  (** mapped page scans served (0 on pread) *)
  h_mmap_crc_skipped : int;  (** CRC checks skipped via the per-generation memo *)
  h_mmap_fallbacks : int;  (** mapped descents that fell back to pread *)
}

type request =
  | Query of { id : int; deadline_ms : int; windows : Rect.t array }
      (** [id] is an opaque correlation id echoed in the reply (replies
          to one connection stay in request order; ids let pipelined
          clients double-check).  [deadline_ms = 0] means no deadline;
          otherwise the budget starts when the server parses the frame
          and is propagated into the query descent. *)
  | Health_check of { id : int }
  | Drain of { id : int }
      (** Ask the server to drain: it replies with a final health
          snapshot, finishes in-flight work, and shuts down. *)

type reply =
  | Results of { id : int; results : query_result array }
      (** One result per request window, in order. *)
  | Health_status of { id : int; health : health }
  | Error of { id : int; code : error_code; retry_after_ms : float; detail : string }
      (** [retry_after_ms] is a backoff hint ([0] when retrying cannot
          help, e.g. [E_malformed]). *)

type msg = Request of request | Reply of reply

type proto_error =
  | Truncated of { have : int; need : int }
  | Oversized of { length : int; limit : int }
  | Unknown_version of int
  | Unknown_kind of int
  | Bad_crc
  | Bad_payload of string

val msg_id : msg -> int
val encode : msg -> bytes
(** A complete frame. *)

val decode :
  ?max_payload:int ->
  bytes ->
  pos:int ->
  len:int ->
  [ `Msg of msg * int | `Need of int | `Error of proto_error ]
(** Decode one frame from [buf[pos, pos+len)].  [`Msg (m, consumed)]
    on success; [`Need n] when the frame is incomplete and needs [n]
    bytes total from [pos] ([n > len]); [`Error] on any malformation.
    Never raises. *)

val decode_all : ?max_payload:int -> bytes -> (msg, proto_error) result
(** Decode a buffer that must hold exactly one whole frame: an
    incomplete frame is a [Truncated] error here. *)

(** Incremental frame reader for a connection's byte stream. *)
module Reader : sig
  type t

  val create : ?max_payload:int -> unit -> t
  val feed : t -> bytes -> int -> int -> unit
  (** [feed t buf pos len] appends received bytes. *)

  val next : t -> [ `Msg of msg | `Need_more | `Error of proto_error ]
  (** The next complete message, consuming its bytes.  After an
      [`Error] the stream is unsynchronized: the reader keeps returning
      it and the connection should close. *)

  val buffered : t -> int
  (** Bytes received but not yet consumed (mid-frame when positive and
      [next] says [`Need_more] — an EOF here is a mid-frame disconnect). *)
end

val error_code_label : error_code -> string
val pp_proto_error : Format.formatter -> proto_error -> unit
val pp_completeness : Format.formatter -> completeness -> unit
