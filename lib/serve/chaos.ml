(* Fault-injecting byte streams over sockets.  See chaos.mli for the
   verdict mapping. *)

module Failpoint = Prt_storage.Failpoint
module Deadline = Prt_util.Deadline

type t = {
  sock : Unix.file_descr;
  failpoint : Failpoint.t option;
  mutable closed : bool;
}

let of_fd sock = { sock; failpoint = None; closed = false }
let wrap fp t = { t with failpoint = Some fp }
let fd t = t.sock

(* A partial verdict delivers at least one byte: a zero-byte read would
   be indistinguishable from EOF to the caller. *)
let prefix_len f len = max 1 (int_of_float (f *. float_of_int len))

let read t buf pos len =
  match t.failpoint with
  | None -> Unix.read t.sock buf pos len
  | Some fp -> (
      Deadline.advance_ms (Failpoint.config fp).Failpoint.read_delay_ms;
      match Failpoint.on_read fp with
      | Failpoint.Error -> raise (Unix.Unix_error (Unix.ECONNRESET, "chaos-read", ""))
      | Failpoint.Ok -> Unix.read t.sock buf pos len
      | Failpoint.Partial f -> Unix.read t.sock buf pos (min len (prefix_len f len)))

let write t buf pos len =
  match t.failpoint with
  | None -> Unix.single_write t.sock buf pos len
  | Some fp -> (
      Deadline.advance_ms (Failpoint.config fp).Failpoint.write_delay_ms;
      if Failpoint.crash_enabled fp then Failpoint.on_phys_write fp;
      match Failpoint.on_write fp with
      | Failpoint.Error -> 0 (* stalled: no progress, no error *)
      | Failpoint.Ok -> Unix.single_write t.sock buf pos len
      | Failpoint.Partial f -> Unix.single_write t.sock buf pos (min len (prefix_len f len)))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
