(** Blocking client for the {!Wire} protocol — the counterpart the CLI
    ([prt load]), the load generator and the tests drive.

    One {!t} wraps one connected socket.  Requests are correlated by id:
    {!query}, {!health} and {!drain} send a fresh id and match the
    (in-order) reply.  Every way a call can fail is a typed {!failure} —
    transport errors and server rejections never raise, with one
    exception: {!send} can raise [Unix.Unix_error] (e.g. [EPIPE] when
    the server vanished mid-write), which callers treat like
    {!Disconnected}. *)

type t

type failure =
  | Disconnected  (** EOF (possibly mid-frame) or a reset transport *)
  | Protocol of Wire.proto_error  (** the server sent bytes we cannot trust *)
  | Rejected of { code : Wire.error_code; retry_after_ms : float; detail : string }
      (** a typed server rejection — {!Rejected} with [E_overloaded] or
          [E_quota] carries the server's retry-after hint *)

val of_fd : Unix.file_descr -> t
(** Adopt a connected (blocking) socket. *)

val connect_unix : string -> t
val connect_tcp : ?host:string -> int -> t

val close : t -> unit
(** Idempotent. *)

val send : t -> Wire.request -> unit
(** Write one request frame (complete, looping over short writes).
    Raises [Unix.Unix_error] if the transport fails. *)

val recv : t -> (Wire.reply, failure) result
(** Block for the next reply frame. *)

val query :
  t -> ?deadline_ms:int -> Prt_geom.Rect.t array -> (Wire.query_result array, failure) result
(** One batched window query; [Ok] carries one result per window, in
    order.  A typed server [Error] reply comes back as [Rejected]. *)

val health : t -> (Wire.health, failure) result
val drain : t -> (Wire.health, failure) result
(** Ask the server to drain; the reply is its final health snapshot. *)

val pp_failure : Format.formatter -> failure -> unit
