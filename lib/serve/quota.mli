(** Per-client token-bucket quotas.

    A bucket holds up to [burst] tokens and refills continuously at
    [rate] tokens per second; each admitted query window costs one
    token.  Time is passed in explicitly (the server reads
    {!Prt_util.Deadline.now}, which tests virtualise), so quota
    decisions are deterministic under the virtual clock.  A rejection
    carries the exact time at which enough tokens will have refilled —
    the retry-after hint the server puts on the wire instead of
    queueing the request. *)

type t

val create : ?now:float -> rate:float -> burst:float -> unit -> t
(** A full bucket.  [rate] is tokens/second ([0.] means no refill: a
    fixed budget); [burst] is the capacity.  Raises [Invalid_argument]
    on a negative rate or a non-positive burst. *)

val try_take : t -> now:float -> cost:float -> [ `Ok of float | `Retry_after_ms of float ]
(** Refill to [now], then take [cost] tokens.  [`Ok remaining] on
    success.  [`Retry_after_ms hint]: the bucket is short; [hint]
    milliseconds of refill would cover the shortfall ([infinity] when
    [rate = 0.] or [cost > burst] — retrying can never help). *)

val tokens : t -> now:float -> float
(** Current balance after refilling to [now] (no tokens are taken). *)

val rate : t -> float
val burst : t -> float
