(** The fault-tolerant network query tier: a single-threaded
    [select]-loop server speaking the {!Wire} protocol over Unix-domain
    or TCP sockets, executing pipelined batched window queries through
    a snapshot-pinning {!Prt_rtree.Qexec} executor.

    Robustness model (see DESIGN.md, "Serving model"):

    - {b Per-client quotas}: each connection owns a {!Quota} token
      bucket (one token per query window); an empty bucket earns a
      typed [E_quota] error with an exact retry-after hint.
    - {b Load shedding}: parsed requests wait in a bounded queue; past
      [max_queue] the newest request is rejected with [E_overloaded]
      and a retry hint instead of queueing unboundedly.
      {!Prt_rtree.Qexec}'s own [max_in_flight] admission control
      backstops this — its [Overloaded] also maps to [E_overloaded].
    - {b Deadline propagation}: a request's [deadline_ms] becomes a
      {!Prt_util.Deadline.t} when the frame is parsed (capped at
      [max_deadline_ms]) and rides into the query descent; a request
      whose deadline expires while queued is shed with [E_deadline]
      rather than executed late.
    - {b Slow clients}: a connection whose pending replies make no
      write progress for [write_timeout_ms] is closed — one stalled
      reader cannot pin the server's memory.
    - {b Graceful drain}: {!request_drain} (domain-safe; the CLI wires
      SIGTERM/SIGINT to it, clients can send [Drain]) stops accepting
      and reading, finishes every already-parsed request, flushes
      replies under [drain_deadline_ms], closes everything and returns.
      Snapshot pins are per-batch (released even on exceptions), so a
      drained — or crashed — server leaks none.

    Failure containment: per-connection socket errors ([EPIPE],
    [ECONNRESET], injected chaos) kill only that connection; malformed
    frames earn a typed [E_malformed] reply before the close; a
    {!Prt_storage.Failpoint.Simulated_crash} from an armed kill-point
    budget propagates out of {!run} (it models process death — the
    harness catches it and checks nothing leaked).  Everything is
    observable through [serve.*] metrics and flight-recorder events. *)

module Index_file = Prt_rtree.Index_file

type config = {
  quota_rate : float;  (** tokens (query windows) per second per connection *)
  quota_burst : float;  (** bucket capacity; [<= 0.] disables quotas *)
  max_in_flight : int;  (** {!Prt_rtree.Qexec} admission cap; [0] = unbounded *)
  max_queue : int;  (** parsed-but-unexecuted requests across all connections *)
  max_conns : int;
  max_windows : int;  (** per-request window cap ([E_too_large] past it) *)
  max_payload : int;  (** frame payload cap (oversized frames are malformed) *)
  write_timeout_ms : float;  (** slow-client cutoff *)
  drain_deadline_ms : float;
  max_deadline_ms : float;  (** cap on client-supplied deadline budgets *)
  overload_retry_ms : float;  (** retry-after hint on shed requests *)
  jobs : int;  (** executor domains per batch *)
}

val default_config : config

(** Monotone counters, maintained independently of the metrics
    registry's collecting flag. *)
type report = {
  mutable accepted : int;
  mutable closed : int;
  mutable served : int;  (** query requests answered with [Results] *)
  mutable windows : int;
  mutable matched : int;
  mutable health_served : int;
  mutable shed_overload : int;
  mutable shed_quota : int;
  mutable shed_deadline : int;
  mutable shed_draining : int;
  mutable too_large : int;
  mutable malformed : int;
  mutable slow_closed : int;
  mutable io_closed : int;
  mutable drain_forced : int;  (** connections cut by the drain deadline *)
}

type t

val create : ?chaos:Prt_storage.Failpoint.t -> ?config:config -> Index_file.t -> t
(** A server over an open index file (not owned: the caller closes it
    after {!run} returns).  [chaos] wraps every accepted or injected
    connection in a {!Chaos} failure policy — the chaos-testing hook.
    Creation ignores [SIGPIPE] process-wide so a client hanging up
    mid-reply surfaces as [Unix_error (EPIPE, ...)] on that connection
    instead of killing the process. *)

val listen_unix : t -> string -> unit
(** Bind and listen on a Unix-domain socket path (an existing socket
    file is replaced).  Call before {!run}, from the owning domain. *)

val listen_tcp : ?host:string -> t -> int -> unit
(** Bind and listen on TCP [host:port] (default host 127.0.0.1). *)

val inject : t -> Unix.file_descr -> unit
(** Adopt an already-connected socket (e.g. one end of a socketpair) as
    a client connection — the listenerless path harnesses drive.
    Domain-safe; picked up at the next loop step. *)

val request_drain : t -> unit
(** Begin graceful shutdown (domain-safe, idempotent). *)

val draining : t -> bool
val report : t -> report

val step : t -> timeout:float -> bool
(** One event-loop iteration ([select] bounded by [timeout] seconds).
    [false] once the server has fully drained (all connections closed,
    listeners shut). *)

val run : ?step_timeout:float -> t -> report
(** Loop {!step} until drained; returns the final counters.  Raises
    only {!Prt_storage.Failpoint.Simulated_crash} (armed kill-point
    harnesses). *)

val pp_report : Format.formatter -> report -> unit
