(** Multi-domain load generator for the serving tier — the measurement
    half of [prt load] and the serve benchmarks.

    [run] spawns [concurrency] worker domains; each opens its own
    connection (via the caller's [connect]), takes every
    [concurrency]-th query window from the shared list, groups them
    into batched requests of [batch] windows, and replays them with a
    bounded retry loop: [E_overloaded] and [E_quota] rejections honour
    the server's retry-after hint (clamped, with deterministic seeded
    jitter so workers don't retry in lockstep) up to [max_retries]
    attempts, then count as given up.  Non-retryable rejections
    ([E_deadline], [E_draining], [E_too_large], [E_malformed]) and
    transport failures are counted, never raised — a load run survives
    everything the server can do to it. *)

type config = {
  connect : unit -> Client.t;  (** called once per worker (and on reconnect) *)
  concurrency : int;  (** worker domains; >= 1 *)
  batch : int;  (** windows per request; >= 1 *)
  deadline_ms : int;  (** per-request deadline budget; 0 = none *)
  max_retries : int;  (** retry budget per request for retryable rejections *)
  base_backoff_ms : float;  (** backoff floor when the server gives no usable hint *)
  max_backoff_ms : float;  (** clamp on hint + jitter (keeps chaos runs bounded) *)
  seed : int;  (** jitter determinism *)
}

val default_config : connect:(unit -> Client.t) -> config
(** concurrency 1, batch 8, no deadline, 3 retries, 5ms base / 200ms max
    backoff, seed 42. *)

type stats = {
  sent : int;  (** requests attempted (first tries, not counting retries) *)
  ok : int;  (** requests answered with [Results] *)
  matched : int;  (** entries returned across all [Ok] replies *)
  complete : int;  (** windows answered [C_complete] *)
  partial : int;  (** windows answered [C_partial] *)
  timed_out : int;  (** windows answered [C_timed_out] *)
  retries : int;  (** retry attempts performed *)
  gave_up : int;  (** requests dropped after exhausting [max_retries] *)
  rejected_deadline : int;
  rejected_draining : int;
  rejected_other : int;  (** [E_too_large] / [E_malformed] rejections *)
  disconnects : int;
  protocol_errors : int;
  latencies_us : int array;  (** per-successful-request latency, sorted ascending *)
  elapsed_s : float;  (** wall-clock of the whole run *)
}

val run : config -> Prt_geom.Rect.t array -> stats
(** Replay the windows and merge every worker's counters.  Total
    requests sent is [ceil(per-worker windows / batch)] summed over
    workers. *)

val percentile : int array -> float -> float
(** [percentile sorted p] with linear interpolation; [nan] when empty. *)

val qps : stats -> float
(** Successful requests per second of wall-clock ([0.] when instant). *)

val pp_stats : Format.formatter -> stats -> unit
