(* The network query tier.  One domain runs a select loop over the
   listeners and every live connection; query batches execute inline
   through a snapshot-pinning Qexec executor (so batches pin the
   committed MVCC generation for exactly their duration — drain or
   crash can never leak a pin, because none is held between batches).

   Request lifecycle: bytes -> Wire.Reader -> a bounded global FIFO of
   parsed requests (arrival order, so per-connection replies stay in
   request order) -> execute -> reply frames on the connection's output
   queue -> non-blocking flush.  Every shed path is a typed Wire.Error
   with a retry-after hint; every connection failure mode (EOF
   mid-frame, EPIPE on reply, injected chaos) is absorbed by closing
   that connection only. *)

module Rect = Prt_geom.Rect
module Deadline = Prt_util.Deadline
module Failpoint = Prt_storage.Failpoint
module Retry = Prt_storage.Retry
module Buffer_pool = Prt_storage.Buffer_pool
module Superblock = Prt_storage.Superblock
module Rtree = Prt_rtree.Rtree
module Qexec = Prt_rtree.Qexec
module Index_file = Prt_rtree.Index_file
module Metrics = Prt_obs.Metrics
module Flight = Prt_obs.Flight

type config = {
  quota_rate : float;
  quota_burst : float;
  max_in_flight : int;
  max_queue : int;
  max_conns : int;
  max_windows : int;
  max_payload : int;
  write_timeout_ms : float;
  drain_deadline_ms : float;
  max_deadline_ms : float;
  overload_retry_ms : float;
  jobs : int;
}

let default_config =
  {
    quota_rate = 0.0;
    quota_burst = 0.0;
    max_in_flight = 0;
    max_queue = 256;
    max_conns = 64;
    max_windows = 1024;
    max_payload = Wire.default_max_payload;
    write_timeout_ms = 5_000.0;
    drain_deadline_ms = 5_000.0;
    max_deadline_ms = 60_000.0;
    overload_retry_ms = 50.0;
    jobs = 1;
  }

type report = {
  mutable accepted : int;
  mutable closed : int;
  mutable served : int;
  mutable windows : int;
  mutable matched : int;
  mutable health_served : int;
  mutable shed_overload : int;
  mutable shed_quota : int;
  mutable shed_deadline : int;
  mutable shed_draining : int;
  mutable too_large : int;
  mutable malformed : int;
  mutable slow_closed : int;
  mutable io_closed : int;
  mutable drain_forced : int;
}

let fresh_report () =
  {
    accepted = 0;
    closed = 0;
    served = 0;
    windows = 0;
    matched = 0;
    health_served = 0;
    shed_overload = 0;
    shed_quota = 0;
    shed_deadline = 0;
    shed_draining = 0;
    too_large = 0;
    malformed = 0;
    slow_closed = 0;
    io_closed = 0;
    drain_forced = 0;
  }

(* serve.* metrics, mirrored from the report counters when collection is
   on (the report itself never depends on the registry). *)
let m_accepted = Metrics.counter "serve.accepted"
let m_closed = Metrics.counter "serve.closed"
let m_served = Metrics.counter "serve.requests"
let m_windows = Metrics.counter "serve.windows"
let m_matched = Metrics.counter "serve.matched"
let m_shed_overload = Metrics.counter "serve.shed_overload"
let m_shed_quota = Metrics.counter "serve.shed_quota"
let m_shed_deadline = Metrics.counter "serve.shed_deadline"
let m_shed_draining = Metrics.counter "serve.shed_draining"
let m_malformed = Metrics.counter "serve.malformed"
let m_slow_closed = Metrics.counter "serve.slow_client_closed"
let m_request_us = Metrics.histogram "serve.request_us"

type conn = {
  stream : Chaos.t;
  reader : Wire.Reader.t;
  quota : Quota.t option;
  peer : string;
  outq : (bytes * int ref) Queue.t;
  mutable last_progress : float;  (* Deadline.now () of the last write progress *)
  mutable alive : bool;
  mutable closing : bool;  (* stop reading; close once the output drains *)
}

type pending = {
  p_conn : conn;
  p_req : Wire.request;
  p_deadline : Deadline.t option;
  p_pre_drain : bool;  (* parsed before drain began: in-flight, runs to completion *)
}

type t = {
  cfg : config;
  idx : Index_file.t;
  exec : Qexec.t;
  chaos : Failpoint.t option;
  rep : report;
  mutable listeners : Unix.file_descr list;
  mutable conns : conn list;
  queue : pending Queue.t;
  drain_flag : bool Atomic.t;
  inject_lock : Mutex.t;
  mutable injected : Unix.file_descr list;
  mutable draining : bool;  (* drain in effect: post-drain queries get E_draining *)
  mutable drain_started : bool;  (* begin_drain ran: listeners closed, buffers flushed *)
  mutable drain_deadline : Deadline.t;
  mutable finished : bool;
  scratch : bytes;
}

(* A client that hangs up mid-reply must surface as EPIPE on its write,
   not kill the process. *)
let sigpipe_ignored =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())

let create ?chaos ?(config = default_config) idx =
  Lazy.force sigpipe_ignored;
  let exec =
    if config.max_in_flight > 0 then Index_file.executor ~max_in_flight:config.max_in_flight idx
    else Index_file.executor idx
  in
  {
    cfg = config;
    idx;
    exec;
    chaos;
    rep = fresh_report ();
    listeners = [];
    conns = [];
    queue = Queue.create ();
    drain_flag = Atomic.make false;
    inject_lock = Mutex.create ();
    injected = [];
    draining = false;
    drain_started = false;
    drain_deadline = Deadline.none;
    finished = false;
    scratch = Bytes.create 65536;
  }

let report t = t.rep
let draining t = t.draining
let request_drain t = Atomic.set t.drain_flag true

let listen_unix t path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  t.listeners <- fd :: t.listeners

let listen_tcp ?(host = "127.0.0.1") t port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  t.listeners <- fd :: t.listeners

let inject t fd =
  Mutex.lock t.inject_lock;
  t.injected <- fd :: t.injected;
  Mutex.unlock t.inject_lock

(* --- connections --- *)

let make_conn t ?(peer = "?") fd =
  Unix.set_nonblock fd;
  let stream =
    let s = Chaos.of_fd fd in
    match t.chaos with None -> s | Some fp -> Chaos.wrap fp s
  in
  let quota =
    if t.cfg.quota_burst > 0.0 then
      Some (Quota.create ~now:(Deadline.now ()) ~rate:t.cfg.quota_rate ~burst:t.cfg.quota_burst ())
    else None
  in
  {
    stream;
    reader = Wire.Reader.create ~max_payload:t.cfg.max_payload ();
    quota;
    peer;
    outq = Queue.create ();
    last_progress = Deadline.now ();
    alive = true;
    closing = false;
  }

type close_reason = Peer_gone | Io_error | Slow | Drained | Forced

let close_conn t conn reason =
  if conn.alive then begin
    conn.alive <- false;
    Chaos.close conn.stream;
    t.rep.closed <- t.rep.closed + 1;
    Metrics.tick m_closed;
    (match reason with
    | Slow ->
        t.rep.slow_closed <- t.rep.slow_closed + 1;
        Metrics.tick m_slow_closed;
        Flight.point "serve.slow_client" ~note:conn.peer
    | Io_error ->
        t.rep.io_closed <- t.rep.io_closed + 1;
        Flight.point "serve.conn_io_error" ~note:conn.peer
    | Forced -> t.rep.drain_forced <- t.rep.drain_forced + 1
    | Peer_gone | Drained -> ())
  end

let send_reply conn reply =
  if conn.alive then begin
    let frame = Wire.encode (Wire.Reply reply) in
    if Queue.is_empty conn.outq then conn.last_progress <- Deadline.now ();
    Queue.add (frame, ref 0) conn.outq
  end

(* Flush as much pending output as the socket (and the chaos policy)
   accepts.  A zero-byte write is a stall: no progress, no error — the
   slow-client timeout decides its fate. *)
let rec flush_conn t conn =
  if conn.alive && not (Queue.is_empty conn.outq) then begin
    let buf, pos = Queue.peek conn.outq in
    let len = Bytes.length buf - !pos in
    match Chaos.write conn.stream buf !pos len with
    | 0 -> ()
    | n ->
        pos := !pos + n;
        conn.last_progress <- Deadline.now ();
        if !pos = Bytes.length buf then begin
          ignore (Queue.pop conn.outq);
          flush_conn t conn
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn t conn Io_error
  end;
  if conn.alive && conn.closing && Queue.is_empty conn.outq then close_conn t conn Drained

(* --- request handling --- *)

let completeness_of_stats stats =
  match Rtree.completeness stats with
  | Rtree.Complete -> Wire.C_complete
  | Rtree.Partial { skipped_subtrees; _ } -> Wire.C_partial { skipped = skipped_subtrees }
  | Rtree.Timed_out { skipped_subtrees; _ } -> Wire.C_timed_out { skipped = skipped_subtrees }

let breaker_wire t =
  match Retry.breaker_health (Buffer_pool.retry_engine (Index_file.pool t.idx)) with
  | Retry.Breaker_closed -> Wire.B_closed
  | Retry.Breaker_open { cooldown_left } -> Wire.B_open { cooldown_left }
  | Retry.Breaker_half_open -> Wire.B_half_open

let health_of t conn =
  let mc = Index_file.mmap_counters t.idx in
  let mget f = match mc with Some c -> f c | None -> 0 in
  {
    Wire.h_conns = List.length (List.filter (fun c -> c.alive) t.conns);
    h_draining = t.draining;
    h_generation = Superblock.generation (Index_file.superblock t.idx);
    h_breaker = breaker_wire t;
    h_quota_tokens =
      (match conn.quota with
      | None -> Float.infinity
      | Some q -> Quota.tokens q ~now:(Deadline.now ()));
    h_backend = Index_file.read_backend t.idx;
    h_mmap_served = mget (fun c -> c.Prt_storage.Mmap_pager.c_windows_served);
    h_mmap_crc_skipped = mget (fun c -> c.Prt_storage.Mmap_pager.c_crc_skipped);
    h_mmap_fallbacks = mget (fun c -> c.Prt_storage.Mmap_pager.c_fallbacks);
  }

let shed t conn ~id ~code ~retry_after_ms detail =
  (match code with
  | Wire.E_overloaded ->
      t.rep.shed_overload <- t.rep.shed_overload + 1;
      Metrics.tick m_shed_overload;
      Flight.point "serve.shed_overload" ~note:detail
  | Wire.E_quota ->
      t.rep.shed_quota <- t.rep.shed_quota + 1;
      Metrics.tick m_shed_quota;
      Flight.point "serve.shed_quota" ~note:detail
  | Wire.E_deadline ->
      t.rep.shed_deadline <- t.rep.shed_deadline + 1;
      Metrics.tick m_shed_deadline;
      Flight.point "serve.shed_deadline" ~note:detail
  | Wire.E_draining ->
      t.rep.shed_draining <- t.rep.shed_draining + 1;
      Metrics.tick m_shed_draining
  | Wire.E_too_large -> t.rep.too_large <- t.rep.too_large + 1
  | Wire.E_malformed ->
      t.rep.malformed <- t.rep.malformed + 1;
      Metrics.tick m_malformed);
  send_reply conn (Wire.Error { id; code; retry_after_ms; detail })

let run_query t conn ~id ~deadline windows =
  let t0 = Unix.gettimeofday () in
  match Qexec.run ~jobs:(max 1 t.cfg.jobs) ?deadline t.exec windows with
  | results ->
      let wire_results =
        Array.map
          (fun (hits, stats) ->
            t.rep.matched <- t.rep.matched + stats.Rtree.matched;
            Metrics.add m_matched stats.Rtree.matched;
            { Wire.qr_completeness = completeness_of_stats stats; qr_hits = hits })
          results
      in
      t.rep.served <- t.rep.served + 1;
      t.rep.windows <- t.rep.windows + Array.length windows;
      Metrics.tick m_served;
      Metrics.add m_windows (Array.length windows);
      Metrics.observe m_request_us (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
      send_reply conn (Wire.Results { id; results = wire_results })
  | exception Qexec.Overloaded { in_flight; limit } ->
      shed t conn ~id ~code:Wire.E_overloaded ~retry_after_ms:t.cfg.overload_retry_ms
        (Printf.sprintf "admission control: %d in flight, limit %d" in_flight limit)

let handle_pending t { p_conn = conn; p_req; p_deadline; p_pre_drain } =
  if conn.alive then
    match p_req with
    | Wire.Health_check { id } ->
        t.rep.health_served <- t.rep.health_served + 1;
        send_reply conn (Wire.Health_status { id; health = health_of t conn })
    | Wire.Drain { id } ->
        t.rep.health_served <- t.rep.health_served + 1;
        send_reply conn (Wire.Health_status { id; health = health_of t conn })
    | Wire.Query { id; windows; _ } ->
        if t.draining && not p_pre_drain then
          shed t conn ~id ~code:Wire.E_draining
            ~retry_after_ms:(Deadline.remaining_ms t.drain_deadline)
            "server is draining"
        else if Array.length windows > t.cfg.max_windows then
          shed t conn ~id ~code:Wire.E_too_large ~retry_after_ms:0.0
            (Printf.sprintf "%d windows exceed the per-request cap of %d" (Array.length windows)
               t.cfg.max_windows)
        else begin
          let admit =
            match conn.quota with
            | None -> `Ok
            | Some q -> (
                match
                  Quota.try_take q ~now:(Deadline.now ())
                    ~cost:(float_of_int (max 1 (Array.length windows)))
                with
                | `Ok _ -> `Ok
                | `Retry_after_ms hint -> `Quota hint)
          in
          match admit with
          | `Quota hint ->
              let hint = if Float.is_finite hint then hint else 0.0 in
              shed t conn ~id ~code:Wire.E_quota ~retry_after_ms:hint "token bucket empty"
          | `Ok -> (
              match p_deadline with
              | Some d when Deadline.expired d ->
                  shed t conn ~id ~code:Wire.E_deadline ~retry_after_ms:0.0
                    "deadline expired before execution"
              | deadline -> run_query t conn ~id ~deadline windows)
        end

(* --- parsing --- *)

(* Flip the drain-in-effect bit and arm its deadline; the listener
   shutdown and buffered-frame flush happen in [begin_drain] at the
   next step. *)
let activate_drain t =
  if not t.draining then begin
    t.draining <- true;
    t.drain_deadline <- Deadline.after_ms t.cfg.drain_deadline_ms
  end

(* Parse-time admission: the queue is bounded, so a flood of pipelined
   queries is shed newest-first with a retry hint instead of growing
   the queue without limit. *)
let enqueue_parsed t conn (req : Wire.request) =
  let pre_drain = not t.draining in
  (match req with
  | Wire.Drain _ ->
      Flight.point "serve.drain_requested" ~note:conn.peer;
      request_drain t;
      (* Takes effect immediately: frames pipelined behind this one on
         any connection are post-drain. *)
      activate_drain t
  | _ -> ());
  match req with
  | Wire.Query { id; _ }
    when t.cfg.max_queue > 0 && Queue.length t.queue >= t.cfg.max_queue ->
      shed t conn ~id ~code:Wire.E_overloaded ~retry_after_ms:t.cfg.overload_retry_ms
        (Printf.sprintf "request queue full (%d)" (Queue.length t.queue))
  | _ ->
      let p_deadline =
        match req with
        | Wire.Query { deadline_ms; _ } when deadline_ms > 0 ->
            let budget = float_of_int deadline_ms in
            let budget =
              if t.cfg.max_deadline_ms > 0.0 then Float.min budget t.cfg.max_deadline_ms
              else budget
            in
            Some (Deadline.after_ms budget)
        | _ -> None
      in
      Queue.add { p_conn = conn; p_req = req; p_deadline; p_pre_drain = pre_drain } t.queue

let on_protocol_error t conn err =
  (* One typed reply about what was wrong, then close: past a framing
     error the stream is unsynchronized and nothing after it can be
     trusted. *)
  Flight.point "serve.malformed" ~note:(Format.asprintf "%a" Wire.pp_proto_error err);
  shed t conn ~id:0 ~code:Wire.E_malformed ~retry_after_ms:0.0
    (Format.asprintf "%a" Wire.pp_proto_error err);
  conn.closing <- true

let rec parse_loop t conn =
  if conn.alive && not conn.closing then
    match Wire.Reader.next conn.reader with
    | `Msg (Wire.Request req) ->
        enqueue_parsed t conn req;
        parse_loop t conn
    | `Msg (Wire.Reply _) ->
        on_protocol_error t conn (Wire.Bad_payload "reply kind sent to a server")
    | `Need_more -> ()
    | `Error e -> on_protocol_error t conn e

let read_conn t conn =
  match Chaos.read conn.stream t.scratch 0 (Bytes.length t.scratch) with
  | 0 ->
      (* EOF; mid-frame it is a client disconnect, not a server error. *)
      if Wire.Reader.buffered conn.reader > 0 then
        Flight.point "serve.midframe_disconnect" ~note:conn.peer;
      close_conn t conn Peer_gone
  | n ->
      Wire.Reader.feed conn.reader t.scratch 0 n;
      parse_loop t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t conn Io_error

(* --- accept / inject --- *)

let adopt t ?peer fd =
  if List.length t.conns >= t.cfg.max_conns then begin
    (* Best-effort typed rejection; the listener backlog is not a queue
       we are willing to serve from. *)
    let frame =
      Wire.encode
        (Wire.Reply
           (Wire.Error
              {
                id = 0;
                code = Wire.E_overloaded;
                retry_after_ms = t.cfg.overload_retry_ms;
                detail = "connection limit reached";
              }))
    in
    (try ignore (Unix.single_write fd frame 0 (Bytes.length frame)) with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.rep.shed_overload <- t.rep.shed_overload + 1;
    Metrics.tick m_shed_overload
  end
  else begin
    let conn = make_conn t ?peer fd in
    t.conns <- conn :: t.conns;
    t.rep.accepted <- t.rep.accepted + 1;
    Metrics.tick m_accepted;
    Flight.point "serve.accept" ~note:conn.peer
  end

let accept_ready t lfd =
  match Unix.accept lfd with
  | fd, addr ->
      let peer =
        match addr with
        | Unix.ADDR_UNIX p -> if p = "" then "unix" else p
        | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
      in
      adopt t ~peer fd
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> ()

let drain_injected t =
  let fds =
    Mutex.lock t.inject_lock;
    let fds = t.injected in
    t.injected <- [];
    Mutex.unlock t.inject_lock;
    List.rev fds
  in
  List.iter (fun fd -> adopt t ~peer:"injected" fd) fds

(* --- drain --- *)

let begin_drain t =
  activate_drain t;
  t.drain_started <- true;
  Flight.point "serve.drain_begin";
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  t.listeners <- [];
  (* Bytes already received deserve a typed answer: parse what is
     buffered so pipelined requests get E_draining replies (flushed
     below) instead of a silent close. *)
  List.iter (fun conn -> parse_loop t conn) t.conns

let finish t ~forced =
  List.iter
    (fun conn ->
      if conn.alive then
        close_conn t conn (if forced && not (Queue.is_empty conn.outq) then Forced else Drained))
    t.conns;
  t.conns <- [];
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  t.listeners <- [];
  t.finished <- true;
  Flight.point "serve.drain_end" ~arg:(if forced then 1 else 0)

(* --- the loop --- *)

let check_slow t =
  let now = Deadline.now () in
  List.iter
    (fun conn ->
      if
        conn.alive
        && (not (Queue.is_empty conn.outq))
        && t.cfg.write_timeout_ms > 0.0
        && (now -. conn.last_progress) *. 1000.0 > t.cfg.write_timeout_ms
      then close_conn t conn Slow)
    t.conns

let step t ~timeout =
  if t.finished then false
  else begin
    drain_injected t;
    if Atomic.get t.drain_flag && not t.drain_started then begin_drain t;
    let rfds =
      (if t.draining then [] else t.listeners)
      @ List.filter_map
          (fun c -> if c.alive && not (c.closing || t.draining) then Some (Chaos.fd c.stream) else None)
          t.conns
    in
    let wfds =
      List.filter_map
        (fun c -> if c.alive && not (Queue.is_empty c.outq) then Some (Chaos.fd c.stream) else None)
        t.conns
    in
    let readable, writable =
      if rfds = [] && wfds = [] then ([], [])
      else
        match Unix.select rfds wfds [] timeout with
        | r, w, _ -> (r, w)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
    in
    List.iter (fun lfd -> if List.mem lfd readable then accept_ready t lfd) t.listeners;
    List.iter
      (fun conn ->
        if conn.alive && not conn.closing && List.mem (Chaos.fd conn.stream) readable then
          read_conn t conn)
      t.conns;
    (* Execute everything parsed so far: pipelined requests behind an
       expensive batch see their deadlines re-checked at pop time. *)
    while not (Queue.is_empty t.queue) do
      handle_pending t (Queue.pop t.queue)
    done;
    List.iter
      (fun conn ->
        if conn.alive && (List.mem (Chaos.fd conn.stream) writable || not (Queue.is_empty conn.outq))
        then flush_conn t conn)
      t.conns;
    check_slow t;
    t.conns <- List.filter (fun c -> c.alive) t.conns;
    if t.draining && t.drain_started then begin
      let idle =
        Queue.is_empty t.queue && List.for_all (fun c -> Queue.is_empty c.outq) t.conns
      in
      if idle then finish t ~forced:false
      else if Deadline.expired t.drain_deadline then finish t ~forced:true
    end;
    not t.finished
  end

let run ?(step_timeout = 0.05) t =
  while step t ~timeout:step_timeout do
    ()
  done;
  t.rep

let pp_report ppf r =
  Fmt.pf ppf
    "accepted=%d closed=%d served=%d windows=%d matched=%d health=%d shed(overload=%d quota=%d \
     deadline=%d draining=%d too-large=%d) malformed=%d slow-closed=%d io-closed=%d \
     drain-forced=%d"
    r.accepted r.closed r.served r.windows r.matched r.health_served r.shed_overload r.shed_quota
    r.shed_deadline r.shed_draining r.too_large r.malformed r.slow_closed r.io_closed
    r.drain_forced
