type t = {
  fd : Unix.file_descr;
  reader : Wire.Reader.t;
  scratch : bytes;
  mutable next_id : int;
  mutable closed : bool;
}

type failure =
  | Disconnected
  | Protocol of Wire.proto_error
  | Rejected of { code : Wire.error_code; retry_after_ms : float; detail : string }

let of_fd fd =
  { fd; reader = Wire.Reader.create (); scratch = Bytes.create 65536; next_id = 1; closed = false }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  of_fd fd

let connect_tcp ?(host = "127.0.0.1") port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  of_fd fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let fresh_id t =
  let id = t.next_id in
  t.next_id <- (if id >= 0xFFFFFF then 1 else id + 1);
  id

let send t req =
  let frame = Wire.encode (Wire.Request req) in
  let len = Bytes.length frame in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write t.fd frame !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let rec recv t =
  match Wire.Reader.next t.reader with
  | `Msg (Wire.Reply r) -> Ok r
  | `Msg (Wire.Request _) -> Error (Protocol (Wire.Bad_payload "request kind sent to a client"))
  | `Error e -> Error (Protocol e)
  | `Need_more -> (
      match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
      | 0 -> Error Disconnected
      | n ->
          Wire.Reader.feed t.reader t.scratch 0 n;
          recv t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv t
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Error Disconnected)

(* Replies on a connection come back in request order, so the first
   reply after a send answers it; the echoed id is double-checked. *)
let rendezvous t ~id ~expect =
  match recv t with
  | Error _ as e -> e
  | Ok (Wire.Error { code; retry_after_ms; detail; _ }) ->
      Error (Rejected { code; retry_after_ms; detail })
  | Ok reply ->
      if Wire.msg_id (Wire.Reply reply) <> id then
        Error (Protocol (Wire.Bad_payload "reply id does not match the request"))
      else expect reply

let query t ?(deadline_ms = 0) windows =
  let id = fresh_id t in
  match send t (Wire.Query { id; deadline_ms; windows }) with
  | () ->
      rendezvous t ~id ~expect:(function
        | Wire.Results { results; _ } -> Ok results
        | _ -> Error (Protocol (Wire.Bad_payload "expected a results reply")))
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> Error Disconnected

let health_like t req =
  let id = fresh_id t in
  match send t (req ~id) with
  | () ->
      rendezvous t ~id ~expect:(function
        | Wire.Health_status { health; _ } -> Ok health
        | _ -> Error (Protocol (Wire.Bad_payload "expected a health reply")))
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> Error Disconnected

let health t = health_like t (fun ~id -> Wire.Health_check { id })
let drain t = health_like t (fun ~id -> Wire.Drain { id })

let pp_failure ppf = function
  | Disconnected -> Fmt.string ppf "disconnected"
  | Protocol e -> Fmt.pf ppf "protocol error: %a" Wire.pp_proto_error e
  | Rejected { code; retry_after_ms; detail } ->
      Fmt.pf ppf "rejected (%s, retry after %.1fms): %s" (Wire.error_code_label code)
        retry_after_ms detail
