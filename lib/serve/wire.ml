(* The serving tier's wire codec.  See wire.mli for the frame layout.

   Everything here is total: the decoder validates the length prefix
   before buffering, the CRC before trusting any payload byte, and every
   payload field (counts against remaining bytes, finite ordered
   rectangle coordinates, known enum bytes) before constructing a value,
   so adversarial frames come back as typed [proto_error]s and no
   exception ever crosses the module boundary.  The CRC is the storage
   layer's CRC-32C ({!Prt_storage.Page.crc32c}) — one checksum algorithm
   for pages on disk and frames on the wire. *)

module Rect = Prt_geom.Rect
module Entry = Prt_rtree.Entry
module Page = Prt_storage.Page

let version = 1
let default_max_payload = 1 lsl 20
let header_size = 8
let trailer_size = 4
let envelope = header_size + trailer_size

type error_code = E_overloaded | E_quota | E_deadline | E_malformed | E_draining | E_too_large

type completeness = C_complete | C_partial of { skipped : int } | C_timed_out of { skipped : int }
type query_result = { qr_completeness : completeness; qr_hits : Entry.t list }

type breaker = B_closed | B_open of { cooldown_left : int } | B_half_open

type health = {
  h_conns : int;
  h_draining : bool;
  h_generation : int;
  h_breaker : breaker;
  h_quota_tokens : float;
  h_backend : string;  (* active read backend: "mmap" or "pread" *)
  h_mmap_served : int;
  h_mmap_crc_skipped : int;
  h_mmap_fallbacks : int;
}

type request =
  | Query of { id : int; deadline_ms : int; windows : Rect.t array }
  | Health_check of { id : int }
  | Drain of { id : int }

type reply =
  | Results of { id : int; results : query_result array }
  | Health_status of { id : int; health : health }
  | Error of { id : int; code : error_code; retry_after_ms : float; detail : string }

type msg = Request of request | Reply of reply

type proto_error =
  | Truncated of { have : int; need : int }
  | Oversized of { length : int; limit : int }
  | Unknown_version of int
  | Unknown_kind of int
  | Bad_crc
  | Bad_payload of string

let msg_id = function
  | Request (Query { id; _ } | Health_check { id } | Drain { id }) -> id
  | Reply (Results { id; _ } | Health_status { id; _ } | Error { id; _ }) -> id

(* --- message kinds --- *)

let kind_query = 1
let kind_health_check = 2
let kind_drain = 3
let kind_results = 16
let kind_health_status = 17
let kind_error = 18

let kind_of_msg = function
  | Request (Query _) -> kind_query
  | Request (Health_check _) -> kind_health_check
  | Request (Drain _) -> kind_drain
  | Reply (Results _) -> kind_results
  | Reply (Health_status _) -> kind_health_status
  | Reply (Error _) -> kind_error

let code_byte = function
  | E_overloaded -> 1
  | E_quota -> 2
  | E_deadline -> 3
  | E_malformed -> 4
  | E_draining -> 5
  | E_too_large -> 6

let code_of_byte = function
  | 1 -> Some E_overloaded
  | 2 -> Some E_quota
  | 3 -> Some E_deadline
  | 4 -> Some E_malformed
  | 5 -> Some E_draining
  | 6 -> Some E_too_large
  | _ -> None

let error_code_label = function
  | E_overloaded -> "overloaded"
  | E_quota -> "quota-exceeded"
  | E_deadline -> "deadline-expired"
  | E_malformed -> "malformed-frame"
  | E_draining -> "draining"
  | E_too_large -> "too-large"

(* --- payload writer --- *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))
let add_u16 b v = Buffer.add_uint16_le b (v land 0xFFFF)
let add_u32 b v = Buffer.add_int32_le b (Int32.of_int (v land 0xFFFFFFFF))
let add_i64 b v = Buffer.add_int64_le b (Int64.of_int v)
let add_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let add_rect b r =
  add_f64 b (Rect.xmin r);
  add_f64 b (Rect.ymin r);
  add_f64 b (Rect.xmax r);
  add_f64 b (Rect.ymax r)

let add_string16 b s =
  let s = if String.length s > 0xFFFF then String.sub s 0 0xFFFF else s in
  add_u16 b (String.length s);
  Buffer.add_string b s

let payload_of_msg m =
  let b = Buffer.create 64 in
  (match m with
  | Request (Query { id; deadline_ms; windows }) ->
      add_u32 b id;
      add_u32 b deadline_ms;
      add_u32 b (Array.length windows);
      Array.iter (add_rect b) windows
  | Request (Health_check { id }) -> add_u32 b id
  | Request (Drain { id }) -> add_u32 b id
  | Reply (Results { id; results }) ->
      add_u32 b id;
      add_u32 b (Array.length results);
      Array.iter
        (fun { qr_completeness; qr_hits } ->
          (match qr_completeness with
          | C_complete ->
              add_u8 b 0;
              add_u32 b 0
          | C_partial { skipped } ->
              add_u8 b 1;
              add_u32 b skipped
          | C_timed_out { skipped } ->
              add_u8 b 2;
              add_u32 b skipped);
          add_u32 b (List.length qr_hits);
          List.iter
            (fun e ->
              add_i64 b (Entry.id e);
              add_rect b (Entry.rect e))
            qr_hits)
        results
  | Reply (Health_status { id; health }) ->
      add_u32 b id;
      add_u32 b health.h_conns;
      add_u8 b (if health.h_draining then 1 else 0);
      add_i64 b health.h_generation;
      (match health.h_breaker with
      | B_closed ->
          add_u8 b 0;
          add_u32 b 0
      | B_open { cooldown_left } ->
          add_u8 b 1;
          add_u32 b cooldown_left
      | B_half_open ->
          add_u8 b 2;
          add_u32 b 0);
      add_f64 b health.h_quota_tokens;
      add_u8 b (if health.h_backend = "mmap" then 1 else 0);
      add_i64 b health.h_mmap_served;
      add_i64 b health.h_mmap_crc_skipped;
      add_i64 b health.h_mmap_fallbacks
  | Reply (Error { id; code; retry_after_ms; detail }) ->
      add_u32 b id;
      add_u8 b (code_byte code);
      add_f64 b retry_after_ms;
      add_string16 b detail);
  Buffer.to_bytes b

let encode m =
  let payload = payload_of_msg m in
  let plen = Bytes.length payload in
  let frame = Bytes.create (plen + envelope) in
  Bytes.set_int32_le frame 0 (Int32.of_int plen);
  Bytes.set frame 4 (Char.chr version);
  Bytes.set frame 5 (Char.chr (kind_of_msg m));
  Bytes.set frame 6 '\000';
  Bytes.set frame 7 '\000';
  Bytes.blit payload 0 frame header_size plen;
  let crc = Page.crc32c frame ~pos:4 ~len:(header_size - 4 + plen) in
  Bytes.set_int32_le frame (header_size + plen) (Int32.of_int (crc land 0xFFFFFFFF));
  frame

(* --- payload reader --- *)

(* Local, never-escaping parse failure: any bounds or validity violation
   inside a CRC-clean payload becomes [Bad_payload]. *)
exception Bad of string

type cursor = { buf : bytes; mutable off : int; limit : int }

let need c n = if c.limit - c.off < n then raise (Bad "payload truncated")

let get_u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.buf c.off) in
  c.off <- c.off + 1;
  v

let get_u16 c =
  need c 2;
  let v = Bytes.get_uint16_le c.buf c.off in
  c.off <- c.off + 2;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.buf c.off) land 0xFFFFFFFF in
  c.off <- c.off + 4;
  v

let get_i64 c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_le c.buf c.off) in
  c.off <- c.off + 8;
  v

let get_f64 c =
  need c 8;
  let v = Int64.float_of_bits (Bytes.get_int64_le c.buf c.off) in
  c.off <- c.off + 8;
  v

let get_finite c =
  let v = get_f64 c in
  if not (Float.is_finite v) then raise (Bad "non-finite coordinate");
  v

let get_rect c =
  let xmin = get_finite c in
  let ymin = get_finite c in
  let xmax = get_finite c in
  let ymax = get_finite c in
  if xmin > xmax || ymin > ymax then raise (Bad "inverted rectangle");
  Rect.make ~xmin ~ymin ~xmax ~ymax

let get_string16 c =
  let n = get_u16 c in
  need c n;
  let s = Bytes.sub_string c.buf c.off n in
  c.off <- c.off + n;
  s

(* [get_count c ~unit_size] reads a u32 element count and pre-checks it
   against the remaining payload, so a lying count cannot provoke a huge
   allocation before the per-element reads would fail anyway. *)
let get_count c ~unit_size =
  let n = get_u32 c in
  if n * unit_size > c.limit - c.off then raise (Bad "count exceeds payload");
  n

let get_completeness c =
  let tag = get_u8 c in
  let skipped = get_u32 c in
  match tag with
  | 0 -> C_complete
  | 1 -> C_partial { skipped }
  | 2 -> C_timed_out { skipped }
  | _ -> raise (Bad "unknown completeness tag")

let msg_of_payload ~kind c =
  let m =
    if kind = kind_query then begin
      let id = get_u32 c in
      let deadline_ms = get_u32 c in
      let n = get_count c ~unit_size:32 in
      let windows = Array.init n (fun _ -> get_rect c) in
      Request (Query { id; deadline_ms; windows })
    end
    else if kind = kind_health_check then Request (Health_check { id = get_u32 c })
    else if kind = kind_drain then Request (Drain { id = get_u32 c })
    else if kind = kind_results then begin
      let id = get_u32 c in
      let n = get_count c ~unit_size:9 in
      let results =
        Array.init n (fun _ ->
            let qr_completeness = get_completeness c in
            let hits = get_count c ~unit_size:40 in
            let qr_hits =
              List.init hits (fun _ ->
                  let eid = get_i64 c in
                  let rect = get_rect c in
                  Entry.make rect eid)
            in
            { qr_completeness; qr_hits })
      in
      Reply (Results { id; results })
    end
    else if kind = kind_health_status then begin
      let id = get_u32 c in
      let h_conns = get_u32 c in
      let h_draining = get_u8 c <> 0 in
      let h_generation = get_i64 c in
      let h_breaker =
        let tag = get_u8 c in
        let cooldown_left = get_u32 c in
        match tag with
        | 0 -> B_closed
        | 1 -> B_open { cooldown_left }
        | 2 -> B_half_open
        | _ -> raise (Bad "unknown breaker tag")
      in
      let h_quota_tokens = get_f64 c in
      let h_backend =
        match get_u8 c with
        | 0 -> "pread"
        | 1 -> "mmap"
        | _ -> raise (Bad "unknown backend tag")
      in
      let h_mmap_served = get_i64 c in
      let h_mmap_crc_skipped = get_i64 c in
      let h_mmap_fallbacks = get_i64 c in
      Reply
        (Health_status
           {
             id;
             health =
               {
                 h_conns;
                 h_draining;
                 h_generation;
                 h_breaker;
                 h_quota_tokens;
                 h_backend;
                 h_mmap_served;
                 h_mmap_crc_skipped;
                 h_mmap_fallbacks;
               };
           })
    end
    else if kind = kind_error then begin
      let id = get_u32 c in
      let code =
        match code_of_byte (get_u8 c) with
        | Some code -> code
        | None -> raise (Bad "unknown error code")
      in
      let retry_after_ms = get_f64 c in
      let detail = get_string16 c in
      Reply (Error { id; code; retry_after_ms; detail })
    end
    else raise (Bad "unreachable kind")
  in
  if c.off <> c.limit then raise (Bad "trailing payload bytes");
  m

let known_kind k =
  k = kind_query || k = kind_health_check || k = kind_drain || k = kind_results
  || k = kind_health_status || k = kind_error

let decode ?(max_payload = default_max_payload) buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    `Error (Bad_payload "decode: range outside buffer")
  else if len < 4 then `Need header_size
  else
    let plen = Int32.to_int (Bytes.get_int32_le buf pos) land 0xFFFFFFFF in
    if plen > max_payload then `Error (Oversized { length = plen; limit = max_payload })
    else
      let total = plen + envelope in
      if len < total then `Need total
      else
        let crc_stored =
          Int32.to_int (Bytes.get_int32_le buf (pos + header_size + plen)) land 0xFFFFFFFF
        in
        let crc = Page.crc32c buf ~pos:(pos + 4) ~len:(header_size - 4 + plen) in
        if crc <> crc_stored then `Error Bad_crc
        else
          let ver = Char.code (Bytes.get buf (pos + 4)) in
          if ver <> version then `Error (Unknown_version ver)
          else
            let kind = Char.code (Bytes.get buf (pos + 5)) in
            if not (known_kind kind) then `Error (Unknown_kind kind)
            else
              let c = { buf; off = pos + header_size; limit = pos + header_size + plen } in
              match msg_of_payload ~kind c with
              | m -> `Msg (m, total)
              | exception Bad why -> `Error (Bad_payload why)

let decode_all ?max_payload buf =
  let len = Bytes.length buf in
  match decode ?max_payload buf ~pos:0 ~len with
  | `Msg (m, consumed) ->
      if consumed = len then Ok m else Error (Bad_payload "trailing bytes after frame")
  | `Need n -> Error (Truncated { have = len; need = n })
  | `Error e -> Error e

(* --- streaming reader --- *)

module Reader = struct
  type t = {
    max_payload : int;
    mutable data : bytes;
    mutable start : int;  (* first unconsumed byte *)
    mutable fill : int;  (* one past the last received byte *)
    mutable dead : proto_error option;  (* sticky: the stream is unsynchronized *)
  }

  let create ?(max_payload = default_max_payload) () =
    { max_payload; data = Bytes.create 4096; start = 0; fill = 0; dead = None }

  let buffered t = t.fill - t.start

  let feed t buf pos len =
    if len > 0 then begin
      if t.fill + len > Bytes.length t.data then begin
        (* Compact, then grow if still needed. *)
        let live = buffered t in
        Bytes.blit t.data t.start t.data 0 live;
        t.start <- 0;
        t.fill <- live;
        if live + len > Bytes.length t.data then begin
          let cap = ref (max 4096 (Bytes.length t.data)) in
          while live + len > !cap do
            cap := !cap * 2
          done;
          let data = Bytes.create !cap in
          Bytes.blit t.data 0 data 0 live;
          t.data <- data
        end
      end;
      Bytes.blit buf pos t.data t.fill len;
      t.fill <- t.fill + len
    end

  let next t =
    match t.dead with
    | Some e -> `Error e
    | None -> (
        match decode ~max_payload:t.max_payload t.data ~pos:t.start ~len:(buffered t) with
        | `Msg (m, consumed) ->
            t.start <- t.start + consumed;
            if t.start = t.fill then begin
              t.start <- 0;
              t.fill <- 0
            end;
            `Msg m
        | `Need _ -> `Need_more
        | `Error e ->
            t.dead <- Some e;
            `Error e)
end

(* --- printers --- *)

let pp_proto_error ppf = function
  | Truncated { have; need } -> Fmt.pf ppf "truncated frame (%d of %d bytes)" have need
  | Oversized { length; limit } -> Fmt.pf ppf "oversized frame (%d > limit %d)" length limit
  | Unknown_version v -> Fmt.pf ppf "unknown protocol version %d" v
  | Unknown_kind k -> Fmt.pf ppf "unknown message kind %d" k
  | Bad_crc -> Fmt.string ppf "frame checksum mismatch"
  | Bad_payload why -> Fmt.pf ppf "malformed payload: %s" why

let pp_completeness ppf = function
  | C_complete -> Fmt.string ppf "complete"
  | C_partial { skipped } -> Fmt.pf ppf "partial (%d subtree(s) skipped)" skipped
  | C_timed_out { skipped } -> Fmt.pf ppf "timed out (%d subtree(s) skipped)" skipped
