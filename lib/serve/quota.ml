(* Token bucket with continuous refill on an explicit clock. *)

type t = {
  rate : float;  (* tokens per second *)
  burst : float;
  mutable tokens : float;
  mutable last : float;  (* clock reading of the last refill *)
}

let create ?(now = 0.0) ~rate ~burst () =
  if rate < 0.0 || Float.is_nan rate then invalid_arg "Quota.create: negative rate";
  if burst <= 0.0 || Float.is_nan burst then invalid_arg "Quota.create: non-positive burst";
  { rate; burst; tokens = burst; last = now }

(* Clock steps backwards (a test reinstalling the virtual clock) are
   treated as zero elapsed time rather than draining the bucket. *)
let refill t ~now =
  let dt = now -. t.last in
  if dt > 0.0 then t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.rate));
  t.last <- Float.max t.last now

let try_take t ~now ~cost =
  refill t ~now;
  if cost <= t.tokens then begin
    t.tokens <- t.tokens -. cost;
    `Ok t.tokens
  end
  else if t.rate <= 0.0 || cost > t.burst then `Retry_after_ms Float.infinity
  else `Retry_after_ms ((cost -. t.tokens) /. t.rate *. 1000.0)

let tokens t ~now =
  refill t ~now;
  t.tokens

let rate t = t.rate
let burst t = t.burst
