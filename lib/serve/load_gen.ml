type config = {
  connect : unit -> Client.t;
  concurrency : int;
  batch : int;
  deadline_ms : int;
  max_retries : int;
  base_backoff_ms : float;
  max_backoff_ms : float;
  seed : int;
}

let default_config ~connect =
  {
    connect;
    concurrency = 1;
    batch = 8;
    deadline_ms = 0;
    max_retries = 3;
    base_backoff_ms = 5.0;
    max_backoff_ms = 200.0;
    seed = 42;
  }

type stats = {
  sent : int;
  ok : int;
  matched : int;
  complete : int;
  partial : int;
  timed_out : int;
  retries : int;
  gave_up : int;
  rejected_deadline : int;
  rejected_draining : int;
  rejected_other : int;
  disconnects : int;
  protocol_errors : int;
  latencies_us : int array;
  elapsed_s : float;
}

(* One worker's mutable tallies; merged after join. *)
type acc = {
  mutable a_sent : int;
  mutable a_ok : int;
  mutable a_matched : int;
  mutable a_complete : int;
  mutable a_partial : int;
  mutable a_timed_out : int;
  mutable a_retries : int;
  mutable a_gave_up : int;
  mutable a_deadline : int;
  mutable a_draining : int;
  mutable a_other : int;
  mutable a_disconnects : int;
  mutable a_protocol : int;
  mutable a_lat : int list;
}

let fresh_acc () =
  {
    a_sent = 0;
    a_ok = 0;
    a_matched = 0;
    a_complete = 0;
    a_partial = 0;
    a_timed_out = 0;
    a_retries = 0;
    a_gave_up = 0;
    a_deadline = 0;
    a_draining = 0;
    a_other = 0;
    a_disconnects = 0;
    a_protocol = 0;
    a_lat = [];
  }

let record_ok acc ~t0 results =
  acc.a_ok <- acc.a_ok + 1;
  acc.a_lat <- int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) :: acc.a_lat;
  Array.iter
    (fun { Wire.qr_completeness; qr_hits } ->
      acc.a_matched <- acc.a_matched + List.length qr_hits;
      match qr_completeness with
      | Wire.C_complete -> acc.a_complete <- acc.a_complete + 1
      | Wire.C_partial _ -> acc.a_partial <- acc.a_partial + 1
      | Wire.C_timed_out _ -> acc.a_timed_out <- acc.a_timed_out + 1)
    results

let backoff_ms cfg rng hint =
  let hint = if Float.is_finite hint && hint > 0.0 then hint else cfg.base_backoff_ms in
  (* Jitter in [0.5, 1.5): workers that were shed together must not
     retry together. *)
  let jitter = 0.5 +. Random.State.float rng 1.0 in
  Float.min cfg.max_backoff_ms (Float.max cfg.base_backoff_ms hint *. jitter)

let worker cfg windows w =
  let acc = fresh_acc () in
  let rng = Random.State.make [| cfg.seed; w |] in
  let client = ref None in
  let get_client () =
    match !client with
    | Some c -> c
    | None ->
        let c = cfg.connect () in
        client := Some c;
        c
  in
  let drop_client () =
    (match !client with Some c -> Client.close c | None -> ());
    client := None
  in
  (* Every [concurrency]-th window, grouped into batches. *)
  let mine = ref [] in
  Array.iteri (fun i q -> if i mod cfg.concurrency = w then mine := q :: !mine) windows;
  let mine = Array.of_list (List.rev !mine) in
  let n = Array.length mine in
  let pos = ref 0 in
  while !pos < n do
    let len = min cfg.batch (n - !pos) in
    let batch = Array.sub mine !pos len in
    pos := !pos + len;
    acc.a_sent <- acc.a_sent + 1;
    let rec attempt tries =
      let retry hint =
        if tries >= cfg.max_retries then acc.a_gave_up <- acc.a_gave_up + 1
        else begin
          acc.a_retries <- acc.a_retries + 1;
          Unix.sleepf (backoff_ms cfg rng hint /. 1000.0);
          attempt (tries + 1)
        end
      in
      match get_client () with
      | exception (Unix.Unix_error _ | Sys_error _) ->
          acc.a_disconnects <- acc.a_disconnects + 1;
          retry cfg.base_backoff_ms
      | c -> (
          let t0 = Unix.gettimeofday () in
          match Client.query c ~deadline_ms:cfg.deadline_ms batch with
          | Ok results -> record_ok acc ~t0 results
          | Error (Client.Rejected { code = Wire.E_overloaded | Wire.E_quota; retry_after_ms; _ })
            ->
              retry retry_after_ms
          | Error (Client.Rejected { code = Wire.E_deadline; _ }) ->
              acc.a_deadline <- acc.a_deadline + 1
          | Error (Client.Rejected { code = Wire.E_draining; _ }) ->
              acc.a_draining <- acc.a_draining + 1
          | Error (Client.Rejected _) -> acc.a_other <- acc.a_other + 1
          | Error Client.Disconnected ->
              acc.a_disconnects <- acc.a_disconnects + 1;
              drop_client ();
              retry cfg.base_backoff_ms
          | Error (Client.Protocol _) ->
              (* Unsynchronized stream: nothing after it can be trusted. *)
              acc.a_protocol <- acc.a_protocol + 1;
              drop_client ();
              retry cfg.base_backoff_ms)
    in
    attempt 0
  done;
  drop_client ();
  acc

let run cfg windows =
  if cfg.concurrency < 1 then invalid_arg "Load_gen.run: concurrency must be >= 1";
  if cfg.batch < 1 then invalid_arg "Load_gen.run: batch must be >= 1";
  let t0 = Unix.gettimeofday () in
  let accs =
    if cfg.concurrency = 1 then [| worker cfg windows 0 |]
    else
      Array.init (cfg.concurrency - 1) (fun w -> Domain.spawn (fun () -> worker cfg windows (w + 1)))
      |> fun doms ->
      let first = worker cfg windows 0 in
      Array.append [| first |] (Array.map Domain.join doms)
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let sum f = Array.fold_left (fun s a -> s + f a) 0 accs in
  let latencies_us =
    Array.of_list (List.concat_map (fun a -> a.a_lat) (Array.to_list accs))
  in
  Array.sort compare latencies_us;
  {
    sent = sum (fun a -> a.a_sent);
    ok = sum (fun a -> a.a_ok);
    matched = sum (fun a -> a.a_matched);
    complete = sum (fun a -> a.a_complete);
    partial = sum (fun a -> a.a_partial);
    timed_out = sum (fun a -> a.a_timed_out);
    retries = sum (fun a -> a.a_retries);
    gave_up = sum (fun a -> a.a_gave_up);
    rejected_deadline = sum (fun a -> a.a_deadline);
    rejected_draining = sum (fun a -> a.a_draining);
    rejected_other = sum (fun a -> a.a_other);
    disconnects = sum (fun a -> a.a_disconnects);
    protocol_errors = sum (fun a -> a.a_protocol);
    latencies_us;
    elapsed_s;
  }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else if n = 1 then float_of_int sorted.(0)
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    float_of_int sorted.(lo) +. (frac *. float_of_int (sorted.(hi) - sorted.(lo)))
  end

let qps s = if s.elapsed_s > 0.0 then float_of_int s.ok /. s.elapsed_s else 0.0

let pp_stats ppf s =
  Fmt.pf ppf
    "sent=%d ok=%d matched=%d windows(complete=%d partial=%d timed-out=%d) retries=%d gave-up=%d \
     rejected(deadline=%d draining=%d other=%d) disconnects=%d protocol=%d p50=%.0fus p99=%.0fus \
     qps=%.1f elapsed=%.3fs"
    s.sent s.ok s.matched s.complete s.partial s.timed_out s.retries s.gave_up s.rejected_deadline
    s.rejected_draining s.rejected_other s.disconnects s.protocol_errors
    (percentile s.latencies_us 50.0)
    (percentile s.latencies_us 99.0)
    (qps s) s.elapsed_s
