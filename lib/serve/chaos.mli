(** Byte streams with deterministic fault injection — the serving tier's
    analogue of {!Prt_storage.Pager.wrap_faulty}.

    A {!t} wraps a socket file descriptor; {!wrap} layers a
    {!Prt_storage.Failpoint} policy over it so the network failure modes
    real servers meet — partial reads, stalled writes, abrupt peer
    resets, a deterministic kill-point crash mid-reply — replay
    bit-for-bit from a seed.  Verdict mapping:

    - read [Error]: the peer vanished — raises
      [Unix_error (ECONNRESET, ...)] with nothing read;
    - read [Partial f]: a short read delivering only a prefix of what
      the kernel had (framing code must reassemble);
    - write [Error]: a stalled write — zero bytes accepted, no error
      (exercises slow-client timeouts);
    - write [Partial f]: a short write accepting only a prefix;
    - the crash budget ([Failpoint.crash_after]) raises
      {!Prt_storage.Failpoint.Simulated_crash} on the configured write,
      modelling a process kill while serving.

    Configured [read_delay_ms]/[write_delay_ms] are charged to the
    virtual clock per attempt, so simulated-slow networks consume
    deadline budget in tests without sleeping. *)

type t

val of_fd : Unix.file_descr -> t
(** A transparent stream over a connected socket. *)

val wrap : Prt_storage.Failpoint.t -> t -> t
(** Layer a failure policy over a stream (shared failpoint state: one
    policy can cover many connections, advancing one schedule). *)

val fd : t -> Unix.file_descr
(** The underlying descriptor, for [select]. *)

val read : t -> bytes -> int -> int -> int
(** [Unix.read] semantics: 0 means EOF.  May raise [Unix.Unix_error]
    (including injected [ECONNRESET]) or
    {!Prt_storage.Failpoint.Simulated_crash}. *)

val write : t -> bytes -> int -> int -> int
(** [Unix.single_write] semantics; 0 means no progress (injected stall
    or [EAGAIN] on a non-blocking socket). *)

val close : t -> unit
(** Idempotent. *)
