(* The dynamic Hilbert R-tree (Kamel & Faloutsos, VLDB 1994) — reference
   [16] of the paper, the classic *dynamic* heuristic R-tree (the packed
   Hilbert R-tree of {!Bulk_hilbert} is its bulk-loaded cousin).

   Every data entry carries the Hilbert value [h] of its rectangle's
   center on a fixed world grid; every internal entry carries the
   largest Hilbert value (LHV) of its subtree.  Entries within a node
   are kept in Hilbert order, which turns the R-tree into a B-tree over
   Hilbert values with bounding boxes on the side:

   - insertion descends by LHV (first child whose LHV >= h), not by
     area enlargement;
   - an overflowing node first redistributes with its right (or left)
     cooperating sibling, and only when both are full do the two nodes
     split into three ("2-to-3 split") — this is what gives the Hilbert
     R-tree its high utilization (~66% worst case, unlike Guttman's
     ~50%);
   - deletion borrows from or merges with the cooperating sibling, as
     in a B-tree.

   Pages use their own 48-byte entry codec (rect + id + 64-bit
   Hilbert/LHV), capacity 85 on 4 KB pages.  Window queries are the
   ordinary MBR-intersection descent. *)

module Rect = Prt_geom.Rect
module Page = Prt_storage.Page
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Hilbert2d = Prt_hilbert.Hilbert2d

let order = 24

type hentry = { rect : Rect.t; id : int; h : int }
(* For leaf entries [h] is the center's Hilbert value; for internal
   entries it is the subtree's largest Hilbert value (LHV). *)

type kind = Leaf | Internal

type node = { kind : kind; entries : hentry array }

(* --- codec: u8 kind, u16 count, then 48-byte entries --- *)

let header_size = 3
let entry_size = 48
let capacity ~page_size = (Page.payload_size page_size - header_size) / entry_size

let write_entry buf off e =
  Page.set_f64 buf off (Rect.xmin e.rect);
  Page.set_f64 buf (off + 8) (Rect.ymin e.rect);
  Page.set_f64 buf (off + 16) (Rect.xmax e.rect);
  Page.set_f64 buf (off + 24) (Rect.ymax e.rect);
  Page.set_i32 buf (off + 32) e.id;
  Bytes.set_int64_le buf (off + 36) (Int64.of_int e.h)

let read_entry buf off =
  let xmin = Page.get_f64 buf off in
  let ymin = Page.get_f64 buf (off + 8) in
  let xmax = Page.get_f64 buf (off + 16) in
  let ymax = Page.get_f64 buf (off + 24) in
  let id = Page.get_i32 buf (off + 32) in
  let h = Int64.to_int (Bytes.get_int64_le buf (off + 36)) in
  { rect = Rect.make ~xmin ~ymin ~xmax ~ymax; id; h }

let encode ~page_size node =
  if Array.length node.entries > capacity ~page_size then
    invalid_arg "Hilbert_rtree: node exceeds page capacity";
  let buf = Page.create page_size in
  Page.set_u8 buf 0 (match node.kind with Leaf -> 0 | Internal -> 1);
  Page.set_u16 buf 1 (Array.length node.entries);
  Array.iteri (fun i e -> write_entry buf (header_size + (i * entry_size)) e) node.entries;
  buf

let decode buf =
  let kind =
    match Page.get_u8 buf 0 with
    | 0 -> Leaf
    | 1 -> Internal
    | k -> invalid_arg (Printf.sprintf "Hilbert_rtree: bad node kind %d" k)
  in
  let count = Page.get_u16 buf 1 in
  { kind; entries = Array.init count (fun i -> read_entry buf (header_size + (i * entry_size))) }

(* --- the tree --- *)

type t = {
  pool : Buffer_pool.t;
  world : Rect.t; (* fixed quantization frame for Hilbert keys *)
  mutable root : int;
  mutable height : int;
  mutable count : int;
}

let pool t = t.pool
let height t = t.height
let count t = t.count
let page_size t = Pager.page_size (Buffer_pool.pager t.pool)
let cap t = capacity ~page_size:(page_size t)

let read_node t id = decode (Buffer_pool.read t.pool id)
let write_node t id node = Buffer_pool.write t.pool id (encode ~page_size:(page_size t) node)

let alloc_node t node =
  let id = Buffer_pool.alloc t.pool in
  write_node t id node;
  id

let create ?world pool =
  let world =
    match world with Some w -> w | None -> Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0
  in
  let page_size = Pager.page_size (Buffer_pool.pager pool) in
  if capacity ~page_size < 4 then invalid_arg "Hilbert_rtree.create: page too small";
  let root = Buffer_pool.alloc pool in
  Buffer_pool.write pool root (encode ~page_size { kind = Leaf; entries = [||] });
  { pool; world; root; height = 1; count = 0 }

(* Hilbert key of a rectangle's center on the world's bounding square. *)
let key t r =
  let side = Float.max (Rect.width t.world) (Rect.height t.world) in
  let side = Float.max side 1e-9 in
  let xlo = Rect.xmin t.world and ylo = Rect.ymin t.world in
  let cx, cy = Rect.center r in
  let x = Hilbert2d.quantize ~order ~lo:xlo ~hi:(xlo +. side) cx in
  let y = Hilbert2d.quantize ~order ~lo:ylo ~hi:(ylo +. side) cy in
  Hilbert2d.index ~order x y

let mbr_of entries = Rect.union_map ~f:(fun e -> e.rect) entries
let lhv_of entries = Array.fold_left (fun acc e -> max acc e.h) min_int entries

(* Parent entry summarizing a node. *)
let summarize page node = { rect = mbr_of node.entries; id = page; h = lhv_of node.entries }

(* Insert [e] into the ordered entry array. Stable on equal keys. *)
let insert_ordered entries e =
  let n = Array.length entries in
  let pos = ref n in
  (try
     for i = 0 to n - 1 do
       if entries.(i).h > e.h then begin
         pos := i;
         raise Exit
       end
     done
   with Exit -> ());
  let out = Array.make (n + 1) e in
  Array.blit entries 0 out 0 !pos;
  Array.blit entries !pos out (!pos + 1) (n - !pos);
  out

(* Split an ordered pool of entries into [parts] balanced chunks. *)
let chunk ~parts pooled =
  let n = Array.length pooled in
  let base = n / parts and extra = n mod parts in
  let chunks = ref [] and off = ref 0 in
  for i = 0 to parts - 1 do
    let len = base + (if i < extra then 1 else 0) in
    chunks := Array.sub pooled !off len :: !chunks;
    off := !off + len
  done;
  List.rev !chunks

(* Result of inserting below: either the child's new summary, or the
   child's pooled entries that no longer fit one node. *)
type ins_result = Ok_summary of hentry | Overflowed of hentry array

let rec insert_rec t node_page e ~depth =
  let node = read_node t node_page in
  if depth = t.height then begin
    (* Place here (leaf, or the target level for internal reinserts). *)
    let entries = insert_ordered node.entries e in
    if Array.length entries <= cap t then begin
      write_node t node_page { node with entries };
      Ok_summary (summarize node_page { node with entries })
    end
    else Overflowed entries
  end
  else begin
    let entries = node.entries in
    (* Descend by LHV: the first child that can own this key. *)
    let n = Array.length entries in
    let ci = ref (n - 1) in
    (try
       for i = 0 to n - 1 do
         if entries.(i).h >= e.h then begin
           ci := i;
           raise Exit
         end
       done
     with Exit -> ());
    let ci = !ci in
    match insert_rec t entries.(ci).id e ~depth:(depth + 1) with
    | Ok_summary s ->
        entries.(ci) <- s;
        write_node t node_page { node with entries };
        Ok_summary (summarize node_page { node with entries })
    | Overflowed pooled ->
        (* Cooperating sibling: right neighbour, else left. *)
        let si = if ci + 1 < n then ci + 1 else ci - 1 in
        let kind_below = if depth + 1 = t.height then Leaf else Internal in
        let new_children =
          if si < 0 then begin
            (* No sibling: plain 1-to-2 split of the child. *)
            let chunks = chunk ~parts:2 pooled in
            List.mapi
              (fun i chunk_entries ->
                let node = { kind = kind_below; entries = chunk_entries } in
                let page = if i = 0 then entries.(ci).id else alloc_node t node in
                write_node t page node;
                summarize page node)
              chunks
          end
          else begin
            let left_i = min ci si and right_i = max ci si in
            let sib = read_node t entries.(si).id in
            (* Pool the two siblings' entries in Hilbert order. The
               overflowing child's pool replaces its stored entries. *)
            let left_entries = if left_i = ci then pooled else (read_node t entries.(left_i).id).entries in
            let right_entries = if right_i = ci then pooled else sib.entries in
            let all = Array.append left_entries right_entries in
            let total = Array.length all in
            let parts = if total <= 2 * cap t then 2 else 3 in
            let chunks = chunk ~parts all in
            let pages =
              [ entries.(left_i).id; entries.(right_i).id ]
              @ (if parts = 3 then [ Buffer_pool.alloc t.pool ] else [])
            in
            List.map2
              (fun page chunk_entries ->
                let node = { kind = kind_below; entries = chunk_entries } in
                write_node t page node;
                summarize page node)
              pages chunks
          end
        in
        (* Replace the summaries of the children involved. *)
        let keep =
          Array.to_list entries
          |> List.filteri (fun i _ -> i <> ci && (si < 0 || i <> si))
        in
        let merged =
          List.sort (fun a b -> compare (a.h, a.id) (b.h, b.id)) (keep @ new_children)
        in
        let entries = Array.of_list merged in
        if Array.length entries <= cap t then begin
          write_node t node_page { node with entries };
          Ok_summary (summarize node_page { node with entries })
        end
        else Overflowed entries
  end

let insert t rect id =
  let e = { rect; id; h = key t rect } in
  (match insert_rec t t.root e ~depth:1 with
  | Ok_summary _ -> ()
  | Overflowed pooled ->
      (* Split the root: the pooled entries become two (or three) nodes
         under a fresh root. *)
      let kind_below = if t.height = 1 then Leaf else Internal in
      let parts = if Array.length pooled <= 2 * cap t then 2 else 3 in
      let children =
        List.map
          (fun chunk_entries ->
            let node = { kind = kind_below; entries = chunk_entries } in
            let page = alloc_node t node in
            summarize page node)
          (chunk ~parts pooled)
      in
      Buffer_pool.free t.pool t.root;
      let root = alloc_node t { kind = Internal; entries = Array.of_list children } in
      t.root <- root;
      t.height <- t.height + 1);
  t.count <- t.count + 1

(* --- deletion: B-tree style borrow/merge with the right sibling --- *)

type del_result = Not_found_here | Deleted of hentry option
(* [Deleted (Some summary)] = child still exists; [Deleted None] = child
   dissolved into its sibling and must be dropped from the parent. *)

let min_fill t = max 1 (cap t / 3)

let rec delete_rec t node_page ~target_rect ~target_id ~depth =
  let node = read_node t node_page in
  if node.kind = Leaf then begin
    let entries = node.entries in
    let found = ref (-1) in
    Array.iteri
      (fun i e -> if !found < 0 && e.id = target_id && Rect.equal e.rect target_rect then found := i)
      entries;
    if !found < 0 then Not_found_here
    else begin
      let remaining =
        Array.init (Array.length entries - 1) (fun j -> if j < !found then entries.(j) else entries.(j + 1))
      in
      write_node t node_page { node with entries = remaining };
      if Array.length remaining = 0 && t.height > 1 then Deleted None
      else Deleted (Some (if Array.length remaining = 0 then { rect = target_rect; id = node_page; h = 0 } else summarize node_page { node with entries = remaining }))
    end
  end
  else begin
    let entries = node.entries in
    let n = Array.length entries in
    let result = ref Not_found_here and ci = ref (-1) in
    (try
       for i = 0 to n - 1 do
         if Rect.contains entries.(i).rect target_rect then begin
           match delete_rec t entries.(i).id ~target_rect ~target_id ~depth:(depth + 1) with
           | Not_found_here -> ()
           | r ->
               result := r;
               ci := i;
               raise Exit
         end
       done
     with Exit -> ());
    match !result with
    | Not_found_here -> Not_found_here
    | Deleted child_summary -> begin
        let ci = !ci in
        (* Update or drop the child summary. *)
        let entries =
          match child_summary with
          | Some s ->
              entries.(ci) <- s;
              entries
          | None ->
              Buffer_pool.free t.pool entries.(ci).id;
              Array.init (n - 1) (fun j -> if j < ci then entries.(j) else entries.(j + 1))
        in
        (* Rebalance an underfull surviving child with its sibling. *)
        let entries =
          match child_summary with
          | Some s when Array.length entries >= 2 -> begin
              let ci = ref 0 in
              Array.iteri (fun i e -> if e.id = s.id then ci := i) entries;
              let ci = !ci in
              let child = read_node t entries.(ci).id in
              if Array.length child.entries >= min_fill t then entries
              else begin
                let si = if ci + 1 < Array.length entries then ci + 1 else ci - 1 in
                let left_i = min ci si and right_i = max ci si in
                let left = read_node t entries.(left_i).id and right = read_node t entries.(right_i).id in
                let all = Array.append left.entries right.entries in
                if Array.length all <= cap t then begin
                  (* Merge into the left node, drop the right. *)
                  let node = { kind = left.kind; entries = all } in
                  write_node t entries.(left_i).id node;
                  entries.(left_i) <- summarize entries.(left_i).id node;
                  Buffer_pool.free t.pool entries.(right_i).id;
                  Array.init
                    (Array.length entries - 1)
                    (fun j -> if j < right_i then entries.(j) else entries.(j + 1))
                end
                else begin
                  (* Redistribute evenly, preserving Hilbert order. *)
                  match chunk ~parts:2 all with
                  | [ a; b ] ->
                      let na = { kind = left.kind; entries = a } in
                      let nb = { kind = right.kind; entries = b } in
                      write_node t entries.(left_i).id na;
                      write_node t entries.(right_i).id nb;
                      entries.(left_i) <- summarize entries.(left_i).id na;
                      entries.(right_i) <- summarize entries.(right_i).id nb;
                      entries
                  | _ -> assert false
                end
              end
            end
          | _ -> entries
        in
        write_node t node_page { node with entries };
        if Array.length entries = 0 && t.height > depth then Deleted None
        else Deleted (Some (summarize node_page { node with entries }))
      end
  end

let delete t rect id =
  match delete_rec t t.root ~target_rect:rect ~target_id:id ~depth:1 with
  | Not_found_here -> false
  | Deleted _ ->
      t.count <- t.count - 1;
      (* Shrink single-child internal roots. *)
      let rec shrink () =
        if t.height > 1 then begin
          let node = read_node t t.root in
          if node.kind = Internal && Array.length node.entries = 1 then begin
            let old = t.root in
            t.root <- node.entries.(0).id;
            t.height <- t.height - 1;
            Buffer_pool.free t.pool old;
            shrink ()
          end
          else if node.kind = Internal && Array.length node.entries = 0 then begin
            write_node t t.root { kind = Leaf; entries = [||] };
            t.height <- 1
          end
        end
      in
      shrink ();
      true

(* --- queries --- *)

type query_stats = {
  mutable internal_visited : int;
  mutable leaf_visited : int;
  mutable matched : int;
}

let query t window ~f =
  let stats = { internal_visited = 0; leaf_visited = 0; matched = 0 } in
  let rec visit page =
    let node = read_node t page in
    match node.kind with
    | Leaf ->
        stats.leaf_visited <- stats.leaf_visited + 1;
        Array.iter
          (fun e ->
            if Rect.intersects e.rect window then begin
              stats.matched <- stats.matched + 1;
              f e.rect e.id
            end)
          node.entries
    | Internal ->
        stats.internal_visited <- stats.internal_visited + 1;
        Array.iter (fun e -> if Rect.intersects e.rect window then visit e.id) node.entries
  in
  visit t.root;
  stats

let query_ids t window =
  let acc = ref [] in
  let stats = query t window ~f:(fun _ id -> acc := id :: !acc) in
  (List.rev !acc, stats)

(* --- validation --- *)

let validate t =
  let fail fmt = Format.kasprintf failwith fmt in
  let counted = ref 0 in
  let rec visit page depth : hentry =
    let node = read_node t page in
    if Array.length node.entries > cap t then fail "node %d overflows" page;
    (match node.kind with
    | Leaf ->
        if depth <> t.height then fail "leaf %d at depth %d (height %d)" page depth t.height;
        counted := !counted + Array.length node.entries;
        Array.iter
          (fun e -> if e.h <> key t e.rect then fail "leaf %d holds a stale Hilbert key" page)
          node.entries
    | Internal ->
        if depth >= t.height then fail "internal %d at depth %d" page depth;
        if Array.length node.entries = 0 then fail "empty internal node %d" page;
        Array.iter
          (fun e ->
            let actual = visit e.id (depth + 1) in
            if not (Rect.equal actual.rect e.rect) then fail "stale MBR in node %d" page;
            if actual.h <> e.h then fail "stale LHV in node %d" page)
          node.entries);
    (* Hilbert order within the node. *)
    Array.iteri
      (fun i e -> if i > 0 && node.entries.(i - 1).h > e.h then fail "node %d out of order" page)
      node.entries;
    if Array.length node.entries = 0 then { rect = t.world; id = page; h = min_int }
    else { rect = mbr_of node.entries; id = page; h = lhv_of node.entries }
  in
  ignore (visit t.root 1);
  if !counted <> t.count then fail "count %d but leaves hold %d" t.count !counted
