(* The packed Hilbert R-tree (H) and the four-dimensional Hilbert R-tree
   (H4) of Kamel and Faloutsos, the paper's first two baselines.

   H sorts rectangles by the 2-D Hilbert value of their centers; H4 maps
   each rectangle to the 4-D point (xmin, ymin, xmax, ymax) and sorts by
   its position on the 4-D Hilbert curve, thereby also clustering by
   extent.  Both then pack leaves in sorted order and build the upper
   levels bottom-up. *)

module Rect = Prt_geom.Rect
module Hilbert2d = Prt_hilbert.Hilbert2d
module Hilbert_nd = Prt_hilbert.Hilbert_nd
module Trace = Prt_obs.Trace

let order_2d = 24 (* fine enough that micro-clusters (1e-5 wide) still
                     get within-cluster Hilbert locality *)
let order_4d = 15 (* 4 * 15 = 60 index bits *)

type keyed = { key : int; entry : Entry.t }

let world_of entries =
  if Array.length entries = 0 then Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0
  else Rect.union_map ~f:Entry.rect entries

(* Quantization uses a uniform scale on both axes — the bounding square
   of the data — rather than normalizing each axis separately.  This is
   what typical Hilbert R-tree implementations (and the paper's
   Theorem 3 construction, whose grid is far wider than tall) assume:
   per-axis normalization would silently reshape the data. *)
let square_spans world =
  let w = Rect.width world and h = Rect.height world in
  let side = Float.max (Float.max w h) 1e-9 in
  let xlo = Rect.xmin world and ylo = Rect.ymin world in
  ((xlo, xlo +. side), (ylo, ylo +. side))

let hilbert2d_key ~world e =
  let (xlo, xhi), (ylo, yhi) = square_spans world in
  let cx, cy = Rect.center (Entry.rect e) in
  let x = Hilbert2d.quantize ~order:order_2d ~lo:xlo ~hi:xhi cx in
  let y = Hilbert2d.quantize ~order:order_2d ~lo:ylo ~hi:yhi cy in
  Hilbert2d.index ~order:order_2d x y

let hilbert4d_key ~world e =
  let (xlo, xhi), (ylo, yhi) = square_spans world in
  let r = Entry.rect e in
  let q ~lo ~hi v = Hilbert_nd.quantize ~order:order_4d ~lo ~hi v in
  let coords =
    [|
      q ~lo:xlo ~hi:xhi (Rect.xmin r);
      q ~lo:ylo ~hi:yhi (Rect.ymin r);
      q ~lo:xlo ~hi:xhi (Rect.xmax r);
      q ~lo:ylo ~hi:yhi (Rect.ymax r);
    |]
  in
  Hilbert_nd.index ~order:order_4d coords

let compare_keyed a b =
  let c = Int.compare a.key b.key in
  if c <> 0 then c else Entry.compare_dim 0 a.entry b.entry

let sort_by_key ?(domains = 1) ~key entries =
  let world = world_of entries in
  let keyed = Array.map (fun e -> { key = key ~world e; entry = e }) entries in
  Prt_util.Parallel.sort ~domains ~cmp:compare_keyed keyed;
  Array.map (fun k -> k.entry) keyed

(* Each loader traces its two phases separately: key-sort (CPU-bound)
   and leaf packing (write-bound), so a trace shows where build I/Os
   accrue. *)
let load_with ~name ~key ?domains pool entries =
  Trace.with_span name
    ~args:[ ("n", Trace.Int (Array.length entries)) ]
    (fun () ->
      let ordered =
        Trace.with_span "hilbert.sort" (fun () -> sort_by_key ?domains ~key entries)
      in
      Trace.with_span "hilbert.pack" (fun () -> Pack.build_from_ordered pool ordered))

let load_h ?domains pool entries = load_with ~name:"hilbert.load_h" ~key:hilbert2d_key ?domains pool entries

let load_h4 ?domains pool entries =
  load_with ~name:"hilbert.load_h4" ~key:hilbert4d_key ?domains pool entries
