(** Crash-consistent persistent index files.

    A paged device whose pages 0/1 hold a shadow superblock pair
    ({!Prt_storage.Superblock}); the R-tree root/height/count live in
    the superblock metadata blob.  Mutations run inside a transaction
    backed by the pager's pre-image journal and deferred frees, so a
    crash at any page-write boundary reopens to either the pre-operation
    or the post-operation tree — never a hybrid.  [fsck] analyses,
    repairs and (optionally) salvage-rebuilds damaged files. *)

module Buffer_pool = Prt_storage.Buffer_pool
module Superblock = Prt_storage.Superblock
module Scrub = Prt_storage.Scrub

type t

val create :
  ?page_size:int ->
  ?cache_pages:int ->
  ?crash:Prt_storage.Failpoint.t ->
  string ->
  build:(Buffer_pool.t -> Rtree.t) ->
  t
(** [create path ~build] formats a fresh index file and commits the tree
    produced by [build] (typically a bulk loader) as its first
    transaction.  [crash] arms a crash budget before the build, for
    kill-point harnesses. *)

val open_ :
  ?page_size:int -> ?cache_pages:int -> ?crash:Prt_storage.Failpoint.t -> string -> t
(** Open an existing index file, running superblock/journal recovery as
    needed ({!recovery} reports what was done).  [crash] is armed after
    recovery, so it sweeps kill points of the next operation only.
    Raises [Failure] when no valid superblock survives (see [fsck]). *)

val tree : t -> Rtree.t
val pool : t -> Buffer_pool.t
val pager : t -> Prt_storage.Pager.t
val superblock : t -> Superblock.t

val recovery : t -> Superblock.recovery
(** What recovery did when this handle was opened
    ([Superblock.no_recovery] for freshly created files). *)

val update : t -> (Rtree.t -> 'a) -> 'a
(** [update t f] runs the mutation [f] (inserts/deletes on [tree t])
    inside a transaction: begin, mutate, flush, atomic commit.  If [f]
    raises — including a simulated crash — nothing is committed and the
    handle is closed; the next {!open_} rolls the file back to the
    pre-operation tree. *)

val executor : ?shards:int -> ?capacity:int -> t -> Qexec.t
(** A batched query executor over this file's tree whose shard-cache
    epoch is the superblock commit counter — a committed {!update}
    invalidates every node cached before it, so batches run between
    transactions always see the current tree. *)

val close : t -> unit

val encode_meta : Rtree.t -> bytes
(** The 16-byte superblock metadata blob (magic, root, height, count). *)

val decode_meta : Buffer_pool.t -> bytes -> Rtree.t
(** Rebuild a tree handle from a metadata blob.  Raises
    [Invalid_argument] on a foreign blob. *)

(** {1 fsck} *)

type fsck_report = {
  fsck_tail_bytes : int;  (** torn trailing partial page dropped on open *)
  fsck_slots : string array;  (** description of both superblock slots *)
  fsck_recovery : Superblock.recovery option;  (** [None]: file unopenable *)
  fsck_commit : int option;
  fsck_error : string option;  (** why the file could not be opened *)
  fsck_tree_ok : bool;
  fsck_tree_error : string option;
  fsck_entries : int option;  (** entries reachable from the root *)
  fsck_scrub : Scrub.report option;
  fsck_salvaged : (int * string) option;  (** entries salvaged, output path *)
}

val fsck :
  ?page_size:int ->
  ?rebuild:string * (Buffer_pool.t -> Entry.t array -> Rtree.t) ->
  string ->
  fsck_report
(** Check an index file: tolerate and report a torn trailing partial
    page, classify both superblock slots, run recovery (journal
    rollback, truncation, twin-slot repair), walk the tree, and scrub
    every page.  With [rebuild = (output, loader)], additionally salvage
    every checksummed-valid leaf entry (deduplicated; skipping free
    pages and the superblock pair) and bulk-load them into a fresh index
    at [output] — the last resort when no valid superblock survives.
    The original file is never modified beyond recovery/repair. *)

val fsck_clean : fsck_report -> bool
val pp_fsck : Format.formatter -> fsck_report -> unit
