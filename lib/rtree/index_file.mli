(** Crash-consistent persistent index files.

    A paged device whose pages 0/1 hold a shadow superblock pair
    ({!Prt_storage.Superblock}); the R-tree root/height/count live in
    the superblock metadata blob.  Mutations run inside a transaction
    backed by the pager's pre-image journal and deferred frees, so a
    crash at any page-write boundary reopens to either the pre-operation
    or the post-operation tree — never a hybrid.  [fsck] analyses,
    repairs and (optionally) salvage-rebuilds damaged files. *)

module Buffer_pool = Prt_storage.Buffer_pool
module Superblock = Prt_storage.Superblock
module Scrub = Prt_storage.Scrub

type t

type backend = [ `Auto | `Mmap | `Pread ]
(** Read backend selector.  [`Auto] (the default) maps the file for
    query serving whenever the platform grants it — except when a crash
    failpoint is armed, where it stays on pread so fault injection
    remains visible to reads.  [`Mmap] attaches unconditionally (still
    degrading per page to pread when the mapping cannot be trusted);
    [`Pread] opts out of mapping entirely.  See DESIGN.md "Storage
    backends". *)

val create :
  ?page_size:int ->
  ?cache_pages:int ->
  ?crash:Prt_storage.Failpoint.t ->
  ?shadow:bool ->
  ?backend:backend ->
  string ->
  build:(Buffer_pool.t -> Rtree.t) ->
  t
(** [create path ~build] formats a fresh index file and commits the tree
    produced by [build] (typically a bulk loader) as its first
    transaction.  [crash] arms a crash budget before the build, for
    kill-point harnesses.  [shadow] (default false) makes every commit
    also write post-image shadow copies of the pages it modified — the
    repair source for {!scrub_online} — at the cost of extra space. *)

val open_ :
  ?page_size:int ->
  ?cache_pages:int ->
  ?crash:Prt_storage.Failpoint.t ->
  ?shadow:bool ->
  ?backend:backend ->
  string ->
  t
(** Open an existing index file, running superblock/journal recovery as
    needed ({!recovery} reports what was done).  [crash] is armed after
    recovery, so it sweeps kill points of the next operation only.
    Shadowing is sticky: a file already carrying a shadow chain keeps
    writing one regardless of [shadow]; pass [~shadow:true] to turn it
    on from the next commit.  Raises [Failure] when no valid superblock
    survives (see [fsck]). *)

val tree : t -> Rtree.t
val pool : t -> Buffer_pool.t
val pager : t -> Prt_storage.Pager.t
val superblock : t -> Superblock.t

val recovery : t -> Superblock.recovery
(** What recovery did when this handle was opened
    ([Superblock.no_recovery] for freshly created files). *)

val quarantine : t -> Prt_storage.Quarantine.t
(** The file's damage registry, shared by resilient queries
    ([Rtree.query ~quarantine]), the {!executor}'s batches and
    {!scrub_online} — one place where every layer reports and checks
    poisoned pages. *)

val shadowed : t -> bool
(** Whether commits on this handle write post-image shadow copies. *)

val read_backend : t -> string
(** The active read backend, ["mmap"] or ["pread"] — what the selector
    actually landed on, after platform and policy fallbacks. *)

val mmap_counters : t -> Prt_storage.Mmap_pager.counters option
(** Live mmap serving counters (mapped scans served, CRC verifications
    skipped via the per-generation memo, sweeps run, pread fallbacks).
    [None] on the pread backend. *)

val update : t -> (Rtree.t -> 'a) -> 'a
(** [update t f] runs the mutation [f] (inserts/deletes on [tree t])
    inside a transaction: begin, mutate, flush, atomic commit.  If [f]
    raises — including a simulated crash — nothing is committed and the
    handle is closed; the next {!open_} rolls the file back to the
    pre-operation tree. *)

(** {1 Generation snapshots}

    A snapshot pins the current committed superblock generation: until
    it is released, the storage layer retains the page images of that
    commit (pre-images of pages later transactions overwrite; pages
    they free stay parked), so queries against the snapshot see exactly
    that commit's tree even while {!update}s run concurrently on
    another thread of control — writers never block readers. *)

type snapshot

val snapshot : t -> snapshot
(** Pin the current committed generation.  Domain-safe; may race a
    committing {!update} (the snapshot is entirely pre-commit or
    entirely post-commit, never a mix). *)

val snapshot_gen : snapshot -> int
(** The pinned commit generation. *)

val snapshot_view : snapshot -> Rtree.snapshot_view
(** The pinned tree (generation, root, height) in the form
    [Rtree.query ~snapshot] takes. *)

val release_snapshot : snapshot -> unit
(** Drop the pin (idempotent).  Version memory held for the snapshot is
    reclaimed once the last pin of its generation drops; parked frees
    are recycled by the next transaction. *)

val with_snapshot : t -> (Rtree.snapshot_view -> 'a) -> 'a
(** [with_snapshot t f] pins, runs [f] on the view, and releases
    (also on exceptions). *)

val executor : ?shards:int -> ?capacity:int -> ?max_in_flight:int -> t -> Qexec.t
(** A batched query executor over this file's tree.  Each batch pins
    the committed generation at batch start and descends its page
    images, so batches are immune to concurrent commits; the
    shard cache keys nodes by (page, generation) and prunes below the
    pin floor when batches release.  Shares the file's {!quarantine};
    [max_in_flight] enables admission control (see
    {!Qexec.Overloaded}). *)

val scrub_online : ?pages:int -> t -> Scrub.online_report
(** One increment of the live self-healing pass: verify the next [pages]
    (default 64) in-use pages past a persistent cursor, heal damaged
    pages whose post-image survives in the shadow chain by rewriting
    them in place, quarantine those it cannot prove, and clear
    quarantine entries that verify again.  Call it between transactions
    or batches — never concurrently with one.  Healing writes restore
    committed bytes outside any transaction, so a crash mid-heal just
    leaves the page damaged for the next pass.  Without {!shadowed},
    it still detects, quarantines and un-quarantines — it just cannot
    repair. *)

val shadow_pages : t -> int list
(** Page ids owned by the current shadow chain (directory pages and
    post-image copies), sorted.  Empty when the file carries none.
    These are live committed pages: reachability checks must treat them
    as such. *)

val shadow_lookup : t -> int -> bytes option
(** The committed post-image of a page, if the shadow chain holds one
    that still verifies. *)

val close : t -> unit
(** Flush and close.  Idempotent — a second close is a no-op — and
    releases any generation pins still held through this handle, so a
    forgotten snapshot cannot park deferred frees forever.  Safe to
    call after a crash path already closed the underlying pager. *)

val encode_meta : Rtree.t -> bytes
(** The superblock metadata blob (magic, root, height, count, shadow
    chain head — [-1] here; commits write the live head). *)

val decode_meta : Buffer_pool.t -> bytes -> Rtree.t
(** Rebuild a tree handle from a metadata blob (either the legacy
    16-byte form or the current one).  Raises [Invalid_argument] on a
    foreign blob. *)

(** {1 fsck} *)

type fsck_report = {
  fsck_tail_bytes : int;  (** torn trailing partial page dropped on open *)
  fsck_slots : string array;  (** description of both superblock slots *)
  fsck_recovery : Superblock.recovery option;  (** [None]: file unopenable *)
  fsck_commit : int option;
  fsck_error : string option;  (** why the file could not be opened *)
  fsck_tree_ok : bool;
  fsck_tree_error : string option;
  fsck_entries : int option;  (** entries reachable from the root *)
  fsck_scrub : Scrub.report option;
  fsck_salvaged : (int * string) option;  (** entries salvaged, output path *)
}

val fsck :
  ?page_size:int ->
  ?rebuild:string * (Buffer_pool.t -> Entry.t array -> Rtree.t) ->
  string ->
  fsck_report
(** Check an index file: tolerate and report a torn trailing partial
    page, classify both superblock slots, run recovery (journal
    rollback, truncation, twin-slot repair), walk the tree, and scrub
    every page.  With [rebuild = (output, loader)], additionally salvage
    every checksummed-valid leaf entry (deduplicated; skipping free
    pages and the superblock pair) and bulk-load them into a fresh index
    at [output] — the last resort when no valid superblock survives.
    The original file is never modified beyond recovery/repair. *)

val fsck_clean : fsck_report -> bool
val pp_fsck : Format.formatter -> fsck_report -> unit
