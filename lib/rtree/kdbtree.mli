(** Bulk-loaded kdB-tree (Robinson): the worst-case-optimal disk index
    for {e point} data the paper cites in Section 1.1 — a baseline that
    matches the PR-tree on points and is inapplicable to rectangles. *)

exception Not_points
(** Raised by {!load} when an input rectangle has positive extent. *)

val load : Prt_storage.Buffer_pool.t -> Entry.t array -> Rtree.t
(** Build from degenerate (point) rectangles by recursive kd median
    splits packed into pages. The result is a regular {!Rtree.t} whose
    sibling boxes tile the space. *)
