(** Unified invariant audit for every tree in the repository.

    One module owns the full invariant catalogue the paper's guarantees
    rest on:

    - MBR containment {e and} tightness (a parent records exactly the
      bounding box of each child's subtree);
    - uniform leaf depth (all leaves on the level the height claims);
    - fill-factor bounds (opt-in minimums; overflow always checked);
    - entry-count consistency between tree metadata and the leaves;
    - no page leaks: every allocated page of the pager is reachable
      exactly once from the root (or on the free list), no reachable
      page is free, and no page is shared between two parents;
    - for in-memory pseudo-PR-trees (via {!check_pseudo}): node degree
      at most the paper's bound (6 in the plane, [2d+2] in d
      dimensions) and priority-leaf extremeness — every entry of a
      priority leaf at least as extreme in its direction as everything
      the later siblings hold.

    [check] walks the paged 2-D tree; the d-dimensional mirror lives in
    [Prt_ndtree.Audit_nd], and [Prt_prtree.Pseudo.audit] /
    [Prt_ndtree.Audit_nd.check_pseudo] adapt the in-memory pseudo-trees
    onto {!check_pseudo}.  Corrupt pages are reported as violations
    rather than exceptions; a device-level [Pager.Io_error] (faulty
    pager with retries exhausted) still propagates — failures surface,
    they are never read as a clean audit. *)

(** What went wrong.  {!label} gives each case a stable kebab-case name
    the tests key on. *)
type what =
  | Decode_error of string  (** The page does not parse as a node. *)
  | Mbr_not_contained  (** A child's exact box escapes its recorded MBR. *)
  | Mbr_not_tight  (** Recorded MBR strictly larger than the child's box. *)
  | Leaf_depth of { depth : int; height : int }
  | Internal_depth of { depth : int; height : int }
  | Node_overflow of { count : int; capacity : int }
  | Node_underfill of { count : int; minimum : int }
  | Empty_node
  | Count_mismatch of { expected : int; actual : int }
  | Page_leaked  (** Allocated, not free, and unreachable from the root. *)
  | Page_shared  (** Reachable via two different parents. *)
  | Freed_page_reachable
  | Degree_exceeded of { degree : int; limit : int }
  | Priority_not_extreme of { dir : int }
  | Box_mismatch  (** Pseudo-node box is not the union of its members. *)

type violation = { where : string; what : what }

val label : what -> string
val pp_violation : Format.formatter -> violation -> unit

type report = {
  violations : violation list;
  nodes : int;
  leaves : int;
  entries : int;
  pages_visited : int;
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

val check :
  ?min_leaf_fill:int ->
  ?min_fanout:int ->
  ?check_leaks:bool ->
  ?reachable:int list ->
  Rtree.t ->
  report
(** Audit a paged 2-D R-tree (any variant: PR, Hilbert, H4, STR, TGS,
    kd-B on points, dynamically built).

    [min_leaf_fill] / [min_fanout] (default 1) set the fill-factor
    floors for non-root leaves and internal nodes.  [check_leaks]
    (default false) additionally sweeps the whole pager for allocated
    pages that are neither reachable from the root, on the free list,
    nor listed in [reachable] (extra pages the caller knows about:
    metadata pages, record files sharing the device).

    Raises nothing on corrupt pages (they become violations); a
    [Pager.Io_error] from a faulty device propagates. *)

(** {2 Pseudo-tree support}

    Adapters (which own the geometry) flatten their tree into neutral
    descriptors; the catalogue of checks stays here. *)

type pseudo_kind =
  | Pseudo_leaf of { size : int; priority : int option; extreme : bool }
      (** [extreme] is the adapter's verdict on priority-leaf
          extremeness ([true] for ordinary kd-leaves). *)
  | Pseudo_node of { degree : int }

type pseudo_desc = { pd_where : string; pd_kind : pseudo_kind; pd_box_ok : bool }

val check_pseudo :
  degree_limit:int -> leaf_capacity:int -> pseudo_desc list -> violation list
(** Turn flattened pseudo-tree descriptors into violations: degree
    bound, leaf occupancy in [1, leaf_capacity], box consistency,
    priority-leaf extremeness. *)
