(** Dynamic R-tree updates: Guttman insertion and deletion with tree
    condensation.

    Applicable to any bulk-loaded {!Rtree.t}; as the paper notes, doing
    so forfeits the bulk-loaded query guarantees (measured by the
    degradation experiment in the bench harness). *)

type config = {
  split_algorithm : Split.algorithm;
  min_fill_fraction : float;
      (** minimum node fill as a fraction of capacity, used both as the
          split minimum and the deletion underflow threshold *)
  forced_reinsert_fraction : float;
      (** R* forced reinsertion: on the first overflow per level during
          an insertion, this fraction of the node's entries (those whose
          centers are farthest from the node center) is evicted and
          reinserted instead of splitting. [0.] disables. *)
  rstar_choose_subtree : bool;
      (** R* ChooseSubtree: at the level just above the insertion target,
          descend into the child whose overlap with its siblings grows
          least (Guttman least-enlargement elsewhere). *)
}

val default_config : config
(** Quadratic split, 40% minimum fill, Guttman descent, no forced
    reinsertion. *)

val rstar_config : config
(** The full R* policy: R* split, overlap-minimizing ChooseSubtree, 40%
    minimum fill, 30% forced reinsertion. *)

val insert : ?config:config -> Rtree.t -> Entry.t -> unit
(** Insert a data entry (O(log_B N) node touches plus splits). *)

val delete : ?config:config -> Rtree.t -> Entry.t -> bool
(** Delete the entry matching by rectangle and id; underfull nodes are
    dissolved and their entries reinserted at their original level.
    Returns [false] if no such entry is stored. *)
