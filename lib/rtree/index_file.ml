(* Crash-consistent persistent index files.

   An index file is a paged device managed by {!Prt_storage.Superblock}:
   pages 0/1 hold the shadow superblock pair, and the R-tree's root /
   height / count live in the superblock metadata blob, so publishing a
   new tree state is a single atomic page flip.  Mutations run inside a
   superblock transaction: the pager journals the pre-image of every
   committed page before its first in-place overwrite, frees are
   deferred to the commit point, and a crash at any page-write boundary
   reopens to either the pre-operation or the post-operation tree.

   This module is the glue used by the CLI (`prt build/insert/delete`)
   and by the crash-matrix harness; the tree algorithms themselves are
   untouched by crash consistency.  [fsck] is the analysis/repair
   entry point behind `prt fsck`. *)

module Pager = Prt_storage.Pager
module Page = Prt_storage.Page
module Buffer_pool = Prt_storage.Buffer_pool
module Superblock = Prt_storage.Superblock
module Scrub = Prt_storage.Scrub
module Failpoint = Prt_storage.Failpoint

type t = {
  pool : Buffer_pool.t;
  sb : Superblock.t;
  mutable tree : Rtree.t;
  recovery : Superblock.recovery;
}

let default_cache_pages = 4096

(* Tree metadata blob stored in the superblock: magic "PRTR", then
   root / height / count. *)
let meta_magic = 0x50525452
let meta_len = 16

let encode_meta tree =
  let b = Bytes.create meta_len in
  Bytes.set_int32_le b 0 (Int32.of_int meta_magic);
  Bytes.set_int32_le b 4 (Int32.of_int (Rtree.root tree));
  Bytes.set_int32_le b 8 (Int32.of_int (Rtree.height tree));
  Bytes.set_int32_le b 12 (Int32.of_int (Rtree.count tree));
  b

let decode_meta pool meta =
  if Bytes.length meta <> meta_len || Int32.to_int (Bytes.get_int32_le meta 0) <> meta_magic
  then invalid_arg "Index_file: superblock does not carry R-tree metadata";
  Rtree.of_root ~pool
    ~root:(Int32.to_int (Bytes.get_int32_le meta 4))
    ~height:(Int32.to_int (Bytes.get_int32_le meta 8))
    ~count:(Int32.to_int (Bytes.get_int32_le meta 12))

let tree t = t.tree
let pool t = t.pool
let pager t = Buffer_pool.pager t.pool
let superblock t = t.sb
let recovery t = t.recovery

(* If anything interrupts construction — including a simulated crash —
   close the pager so kill-point sweeps do not leak descriptors. *)
let guarding pager f =
  match f () with
  | v -> v
  | exception e ->
      (try Pager.close pager with _ -> ());
      raise e

let create ?(page_size = Pager.default_page_size) ?(cache_pages = default_cache_pages) ?crash
    path ~build =
  let pager = Pager.create_file ~page_size path in
  guarding pager (fun () ->
      (match crash with Some fp -> Pager.arm_crash pager fp | None -> ());
      let sb = Superblock.format pager ~meta:Bytes.empty in
      let pool = Buffer_pool.create ~capacity:cache_pages pager in
      Superblock.begin_txn sb;
      let tree = build pool in
      Buffer_pool.flush pool;
      Superblock.commit_txn sb ~meta:(encode_meta tree);
      { pool; sb; tree; recovery = Superblock.no_recovery })

let open_ ?(page_size = Pager.default_page_size) ?(cache_pages = default_cache_pages) ?crash
    path =
  let pager = Pager.open_file ~page_size path in
  guarding pager (fun () ->
      let sb, recovery = Superblock.open_ pager in
      (* Arm crash injection only after recovery, so a harness sweeping
         kill points of the *next* operation does not kill recovery
         itself. *)
      (match crash with Some fp -> Pager.arm_crash pager fp | None -> ());
      let pool = Buffer_pool.create ~capacity:cache_pages pager in
      let tree = decode_meta pool (Superblock.meta sb) in
      { pool; sb; tree; recovery })

(* Run a mutation inside a transaction.  If [f] raises (including a
   {!Failpoint.Simulated_crash}), the transaction is left uncommitted
   and the handle is closed: the on-disk journal makes the next [open_]
   roll back to the pre-operation tree. *)
let update t f =
  guarding (pager t) (fun () ->
      Superblock.begin_txn t.sb;
      let v = f t.tree in
      Buffer_pool.flush t.pool;
      Superblock.commit_txn t.sb ~meta:(encode_meta t.tree);
      v)

(* A batched executor whose cache epoch is the superblock commit
   counter: every committed [update] bumps it, so nodes cached before
   the transaction are re-decoded on the next batch. *)
let executor ?shards ?capacity t =
  Qexec.create ?shards ?capacity
    ~epoch:(fun () -> Superblock.commit_count t.sb)
    t.tree

let close t =
  Buffer_pool.flush t.pool;
  Pager.close (pager t)

(* --- fsck --- *)

type fsck_report = {
  fsck_tail_bytes : int;  (* torn trailing partial page dropped on open *)
  fsck_slots : string array;  (* human description of both superblock slots *)
  fsck_recovery : Superblock.recovery option;  (* None: file unopenable *)
  fsck_commit : int option;
  fsck_error : string option;  (* why the file could not be opened *)
  fsck_tree_ok : bool;
  fsck_tree_error : string option;
  fsck_entries : int option;  (* entries reachable from the root *)
  fsck_scrub : Scrub.report option;
  fsck_salvaged : (int * string) option;  (* entries salvaged, output path *)
}

let describe_slot = function
  | Superblock.Slot_valid st -> Printf.sprintf "valid (commit %d)" st.Superblock.commit
  | Superblock.Slot_empty -> "empty (never flipped)"
  | Superblock.Slot_bad msg -> "bad: " ^ msg

(* Salvage every checksummed-valid leaf entry from the device, skipping
   the superblock pair and free pages.  Pre-image journal copies can
   duplicate a live leaf, so entries are deduplicated by (id, rect);
   note that salvage can resurrect entries whose delete was the very
   operation that crashed — it is a disaster-recovery sweep, not a
   transaction log. *)
let salvage_entries pager =
  let page_size = Pager.page_size pager in
  let cap = Node.capacity ~page_size in
  let seen = Hashtbl.create 1024 in
  let out = ref [] in
  let n = ref 0 in
  for id = Superblock.pages to Pager.num_pages pager - 1 do
    if not (Pager.is_free pager id) then begin
      let buf = Pager.read_raw pager id in
      match Page.check buf with
      | Page.Valid _ when Page.get_u8 buf 0 = 0 && Page.get_u16 buf 1 <= cap -> (
          match Node.decode buf with
          | node when Node.kind node = Node.Leaf ->
              Array.iter
                (fun e ->
                  let r = Entry.rect e in
                  let key =
                    ( Entry.id e,
                      Prt_geom.Rect.xmin r,
                      Prt_geom.Rect.ymin r,
                      Prt_geom.Rect.xmax r,
                      Prt_geom.Rect.ymax r )
                  in
                  if not (Hashtbl.mem seen key) then begin
                    Hashtbl.replace seen key ();
                    out := e :: !out;
                    incr n
                  end)
                (Node.entries node)
          | _ -> ()
          | exception Invalid_argument _ -> ())
      | _ -> ()
    end
  done;
  Array.of_list (List.rev !out)

let fsck ?(page_size = Pager.default_page_size) ?rebuild path =
  let file_bytes = (Unix.stat path).Unix.st_size in
  let fsck_tail_bytes = file_bytes mod page_size in
  let pager = Pager.open_file ~page_size ~partial_tail:`Truncate path in
  Fun.protect
    ~finally:(fun () -> Pager.close pager)
    (fun () ->
      let fsck_slots = Array.map describe_slot (Superblock.inspect pager) in
      let opened =
        match Superblock.open_ pager with
        | sb, recovery -> Ok (sb, recovery)
        | exception (Failure msg | Invalid_argument msg) -> Error msg
        | exception Pager.Corrupt_page msg -> Error ("corrupt page during recovery: " ^ msg)
      in
      let fsck_recovery, fsck_commit, fsck_error, tree_state =
        match opened with
        | Error msg -> (None, None, Some msg, Error msg)
        | Ok (sb, recovery) -> (
            ( Some recovery,
              Some (Superblock.commit_count sb),
              None,
              let pool = Buffer_pool.create ~capacity:default_cache_pages (Superblock.pager sb) in
              match decode_meta pool (Superblock.meta sb) with
              | tree -> Ok tree
              | exception Invalid_argument msg -> Error msg ))
      in
      (* Walk the tree to count entries and collect the reachable page
         set; damage encountered on the walk marks the tree bad instead
         of aborting the whole fsck. *)
      let fsck_tree_ok, fsck_tree_error, fsck_entries, reachable =
        match tree_state with
        | Error msg -> (false, Some msg, None, None)
        | Ok tree -> (
            let pages = Hashtbl.create 256 in
            Hashtbl.replace pages 0 ();
            Hashtbl.replace pages 1 ();
            let entries = ref 0 in
            match
              Rtree.iter_nodes tree ~f:(fun ~depth:_ ~id node ->
                  Hashtbl.replace pages id ();
                  if Node.kind node = Node.Leaf then entries := !entries + Node.length node)
            with
            | () -> (true, None, Some !entries, Some (fun id -> Hashtbl.mem pages id))
            | exception Pager.Corrupt_page msg -> (false, Some msg, None, None)
            | exception Invalid_argument msg -> (false, Some msg, None, None)
            | exception Pager.Io_error msg -> (false, Some msg, None, None))
      in
      let fsck_scrub =
        match opened with
        | Error _ -> Some (Scrub.run pager)
        | Ok _ -> Some (Scrub.run ~free:(fun id -> Pager.is_free pager id) ?reachable pager)
      in
      let fsck_salvaged =
        match rebuild with
        | None -> None
        | Some (output, load) ->
            let entries = salvage_entries pager in
            let rebuilt =
              create ~page_size output ~build:(fun pool -> load pool entries)
            in
            close rebuilt;
            Some (Array.length entries, output)
      in
      {
        fsck_tail_bytes;
        fsck_slots;
        fsck_recovery;
        fsck_commit;
        fsck_error;
        fsck_tree_ok;
        fsck_tree_error;
        fsck_entries;
        fsck_scrub;
        fsck_salvaged;
      })

let fsck_clean r =
  r.fsck_tail_bytes = 0 && r.fsck_error = None && r.fsck_tree_ok
  && (match r.fsck_scrub with Some s -> Scrub.clean s | None -> true)

let pp_fsck ppf r =
  Fmt.pf ppf "@[<v>";
  if r.fsck_tail_bytes > 0 then
    Fmt.pf ppf "torn final write: dropped %d trailing bytes@ " r.fsck_tail_bytes;
  Array.iteri (fun i d -> Fmt.pf ppf "superblock slot %d: %s@ " i d) r.fsck_slots;
  (match r.fsck_error with
  | Some msg -> Fmt.pf ppf "open failed: %s@ " msg
  | None -> ());
  (match r.fsck_recovery with
  | Some rec_ ->
      if rec_.Superblock.rec_journal_pages > 0 then
        Fmt.pf ppf "journal rollback: restored %d page(s)@ " rec_.Superblock.rec_journal_pages;
      if rec_.Superblock.rec_truncated_pages > 0 then
        Fmt.pf ppf "truncated %d uncommitted page(s)@ " rec_.Superblock.rec_truncated_pages;
      if rec_.Superblock.rec_slot_repaired then Fmt.pf ppf "repaired damaged superblock slot@ "
  | None -> ());
  (match r.fsck_commit with Some c -> Fmt.pf ppf "committed state: commit %d@ " c | None -> ());
  (match (r.fsck_tree_ok, r.fsck_tree_error) with
  | true, _ -> Fmt.pf ppf "tree: ok (%d entries)@ " (Option.value ~default:0 r.fsck_entries)
  | false, Some msg -> Fmt.pf ppf "tree: BAD (%s)@ " msg
  | false, None -> Fmt.pf ppf "tree: BAD@ ");
  (match r.fsck_scrub with Some s -> Fmt.pf ppf "scrub: %a@ " Scrub.pp_report s | None -> ());
  (match r.fsck_salvaged with
  | Some (n, out) -> Fmt.pf ppf "salvage: rebuilt %d entries into %s@ " n out
  | None -> ());
  Fmt.pf ppf "verdict: %s@]" (if fsck_clean r then "clean" else "issues found")
