(* Crash-consistent persistent index files.

   An index file is a paged device managed by {!Prt_storage.Superblock}:
   pages 0/1 hold the shadow superblock pair, and the R-tree's root /
   height / count live in the superblock metadata blob, so publishing a
   new tree state is a single atomic page flip.  Mutations run inside a
   superblock transaction: the pager journals the pre-image of every
   committed page before its first in-place overwrite, frees are
   deferred to the commit point, and a crash at any page-write boundary
   reopens to either the pre-operation or the post-operation tree.

   This module is the glue used by the CLI (`prt build/insert/delete`)
   and by the crash-matrix harness; the tree algorithms themselves are
   untouched by crash consistency.  [fsck] is the analysis/repair
   entry point behind `prt fsck`. *)

module Pager = Prt_storage.Pager
module Page = Prt_storage.Page
module Buffer_pool = Prt_storage.Buffer_pool
module Superblock = Prt_storage.Superblock
module Scrub = Prt_storage.Scrub
module Failpoint = Prt_storage.Failpoint
module Quarantine = Prt_storage.Quarantine
module Mmap_pager = Prt_storage.Mmap_pager

type backend = [ `Auto | `Mmap | `Pread ]

type t = {
  pool : Buffer_pool.t;
  sb : Superblock.t;
  mutable tree : Rtree.t;
  recovery : Superblock.recovery;
  quarantine : Quarantine.t;
  shadow : bool;  (* snapshot post-images of every committed txn *)
  mutable shadow_head : int;  (* committed shadow directory head, -1 = none *)
  scrub_cursor : Scrub.cursor;
  mutable mm : Mmap_pager.t option;  (* mmap read backend, None = pread *)
  mutable closed : bool;
}

let default_cache_pages = 4096

(* Tree metadata blob stored in the superblock: magic "PRTR", then
   root / height / count, and (format extension, PR 5) the head of the
   post-image shadow chain.  The 16-byte form without the shadow word is
   still decoded, so files written before the extension open cleanly. *)
let meta_magic = 0x50525452
let meta_len = 16
let meta_len_shadow = 20

let encode_meta_ext ~shadow_head tree =
  let b = Bytes.create meta_len_shadow in
  Bytes.set_int32_le b 0 (Int32.of_int meta_magic);
  Bytes.set_int32_le b 4 (Int32.of_int (Rtree.root tree));
  Bytes.set_int32_le b 8 (Int32.of_int (Rtree.height tree));
  Bytes.set_int32_le b 12 (Int32.of_int (Rtree.count tree));
  Bytes.set_int32_le b 16 (Int32.of_int shadow_head);
  b

let encode_meta tree = encode_meta_ext ~shadow_head:(-1) tree

let meta_ok meta =
  (Bytes.length meta = meta_len || Bytes.length meta = meta_len_shadow)
  && Int32.to_int (Bytes.get_int32_le meta 0) = meta_magic

let decode_meta pool meta =
  if not (meta_ok meta) then
    invalid_arg "Index_file: superblock does not carry R-tree metadata";
  Rtree.of_root ~pool
    ~root:(Int32.to_int (Bytes.get_int32_le meta 4))
    ~height:(Int32.to_int (Bytes.get_int32_le meta 8))
    ~count:(Int32.to_int (Bytes.get_int32_le meta 12))

let decode_shadow_head meta =
  if Bytes.length meta >= meta_len_shadow && meta_ok meta then
    Int32.to_int (Bytes.get_int32_le meta 16)
  else -1

let tree t = t.tree
let pool t = t.pool
let pager t = Buffer_pool.pager t.pool
let superblock t = t.sb
let recovery t = t.recovery
let quarantine t = t.quarantine
let shadowed t = t.shadow
let read_backend t = match t.mm with Some _ -> "mmap" | None -> "pread"
let mmap_counters t = Option.map Mmap_pager.counters t.mm

(* Backend policy.  [`Auto] serves reads through a shared file mapping
   whenever the platform grants one — except when a crash failpoint is
   armed: fault injection intercepts pager reads, not mapped loads, so
   the resilience harnesses keep their pread-visible failure semantics.
   [`Mmap] attaches unconditionally (crash sweeps included — the MVCC
   torn-page probe needs exactly that), still degrading to pread if the
   file cannot be mapped.  [`Pread] opts out entirely. *)
let attach_backend backend ~crash ~path ~page_size ~sb =
  match backend with
  | `Pread -> None
  | `Auto when crash <> None -> None
  | `Auto | `Mmap ->
      Mmap_pager.attach ~path ~page_size ~gen:(Superblock.generation sb)

let install_backend t backend ~crash ~path =
  let mm =
    attach_backend backend ~crash ~path
      ~page_size:(Pager.page_size (pager t))
      ~sb:t.sb
  in
  t.mm <- mm;
  Rtree.set_mmap t.tree mm

(* If anything interrupts construction — including a simulated crash —
   close the pager so kill-point sweeps do not leak descriptors.  The
   cleanup close swallows only OS-level errors: a [Corrupt_page] or any
   logic exception must never be eaten here (bugfix sweep, PR 5). *)
let guarding pager f =
  match f () with
  | v -> v
  | exception e ->
      (try Pager.close pager with Unix.Unix_error _ -> ());
      raise e

(* --- post-image shadow chain ---

   Directory page payload layout (chained single pages, same shape as
   the pager's pre-image journal but a distinct magic):
     [0..3]   magic "PRSH"
     [4..7]   entry count on this page
     [8..11]  next directory page id, or -1
     [12..]   (original page id, copy page id) int32 pairs

   Written *inside* the transaction, after the buffer pool flush and
   just before commit: every page the transaction modified is copied —
   post-image, i.e. exactly the content being committed — to freshly
   allocated pages, and the chain head rides in the committed metadata.
   The pre-image journal is useless as a repair source for committed
   state (its copies predate the commit, and its pages are freed at the
   commit anyway); these post-images are what {!Scrub.online} heals
   from.  A crash before the commit discards the new chain with the
   rest of the transaction; the previous chain's pages are freed
   (deferred) in the same transaction, so they stay intact if it never
   commits. *)

let shadow_magic = 0x50525348 (* "PRSH" *)

let shadow_dir_capacity pgr = (Pager.payload_size pgr - 12) / 8

(* Walk a committed shadow chain.  Damage to the chain itself is
   tolerated: the walk stops and reports what it reached (the chain is
   a repair aid, never required for correctness). *)
let shadow_iter pgr ~head ~f =
  let rec walk dir =
    if dir >= 0 && dir < Pager.num_pages pgr then begin
      match Pager.read pgr dir with
      | exception (Pager.Corrupt_page _ | Pager.Io_error _) -> ()
      | page ->
          if Page.get_i32 page 0 = shadow_magic then begin
            let n = Page.get_i32 page 4 in
            let next = Page.get_i32 page 8 in
            if n >= 0 && n <= shadow_dir_capacity pgr then begin
              for i = 0 to n - 1 do
                f ~dir
                  ~orig:(Page.get_i32 page (12 + (8 * i)))
                  ~copy:(Page.get_i32 page (12 + (8 * i) + 4))
              done;
              walk next
            end
          end
    end
  in
  walk head

let shadow_chain_pages pgr ~head =
  let acc = ref [] in
  let dirs = Hashtbl.create 8 in
  shadow_iter pgr ~head ~f:(fun ~dir ~orig:_ ~copy ->
      if not (Hashtbl.mem dirs dir) then begin
        Hashtbl.replace dirs dir ();
        acc := dir :: !acc
      end;
      acc := copy :: !acc);
  (* A chain whose head page holds zero entries still owns the head. *)
  if head >= 0 && head < Pager.num_pages pgr && not (Hashtbl.mem dirs head) then
    (match Pager.read pgr head with
    | page when Page.get_i32 page 0 = shadow_magic -> acc := head :: !acc
    | _ | (exception (Pager.Corrupt_page _ | Pager.Io_error _)) -> ());
  List.sort_uniq Int.compare !acc

let shadow_pages t = shadow_chain_pages (pager t) ~head:t.shadow_head

let shadow_lookup t id =
  if t.shadow_head < 0 then None
  else begin
    let found = ref None in
    shadow_iter (pager t) ~head:t.shadow_head ~f:(fun ~dir:_ ~orig ~copy ->
        if orig = id && !found = None then found := Some copy);
    match !found with
    | None -> None
    | Some copy -> (
        (* The copy must itself verify — a damaged shadow cannot heal. *)
        match Pager.read (pager t) copy with
        | img -> Some img
        | exception (Pager.Corrupt_page _ | Pager.Io_error _) -> None)
  end

(* Inside the transaction, after the flush: drop the previous chain
   (deferred frees — intact if this txn never commits), snapshot the
   post-image of every modified page, and return the new chain head to
   ride in the committed metadata. *)
let write_shadow t =
  let pgr = pager t in
  List.iter (fun id -> Buffer_pool.free t.pool id) (shadow_pages t);
  let modified = Pager.txn_modified_pages pgr in
  if modified = [] then -1
  else begin
    let pairs =
      List.map
        (fun id ->
          let img = Pager.read pgr id in
          let cid = Buffer_pool.alloc t.pool in
          Pager.write pgr cid img;
          (id, cid))
        modified
    in
    let cap = shadow_dir_capacity pgr in
    let rec chunk = function
      | [] -> []
      | l ->
          let rec take k acc = function
            | x :: rest when k > 0 -> take (k - 1) (x :: acc) rest
            | rest -> (List.rev acc, rest)
          in
          let page, rest = take cap [] l in
          page :: chunk rest
    in
    (* Write the chain back to front so each directory page already
       knows its successor. *)
    List.fold_left
      (fun next entries ->
        let dir = Buffer_pool.alloc t.pool in
        let page = Page.create (Pager.page_size pgr) in
        Page.set_i32 page 0 shadow_magic;
        Page.set_i32 page 4 (List.length entries);
        Page.set_i32 page 8 next;
        List.iteri
          (fun i (orig, copy) ->
            Page.set_i32 page (12 + (8 * i)) orig;
            Page.set_i32 page (12 + (8 * i) + 4) copy)
          entries;
        Pager.write pgr dir page;
        dir)
      (-1)
      (List.rev (chunk pairs))
  end

let commit_meta t =
  if t.shadow then begin
    let head = write_shadow t in
    t.shadow_head <- head;
    encode_meta_ext ~shadow_head:head t.tree
  end
  else encode_meta t.tree

let create ?(page_size = Pager.default_page_size) ?(cache_pages = default_cache_pages) ?crash
    ?(shadow = false) ?(backend = `Auto) path ~build =
  let pager = Pager.create_file ~page_size path in
  guarding pager (fun () ->
      (match crash with Some fp -> Pager.arm_crash pager fp | None -> ());
      let sb = Superblock.format pager ~meta:Bytes.empty in
      let pool = Buffer_pool.create ~capacity:cache_pages pager in
      Superblock.begin_txn sb;
      let tree = build pool in
      Buffer_pool.flush pool;
      let t =
        {
          pool;
          sb;
          tree;
          recovery = Superblock.no_recovery;
          quarantine = Quarantine.create ();
          shadow;
          shadow_head = -1;
          scrub_cursor = Scrub.cursor ();
          mm = None;
          closed = false;
        }
      in
      Superblock.commit_txn sb ~meta:(commit_meta t);
      (* Attach after the commit: the mapping must see the committed
         bytes of a non-empty file. *)
      install_backend t backend ~crash ~path;
      t)

let open_ ?(page_size = Pager.default_page_size) ?(cache_pages = default_cache_pages) ?crash
    ?shadow ?(backend = `Auto) path =
  let pager = Pager.open_file ~page_size path in
  guarding pager (fun () ->
      let sb, recovery = Superblock.open_ pager in
      (* Arm crash injection only after recovery, so a harness sweeping
         kill points of the *next* operation does not kill recovery
         itself. *)
      (match crash with Some fp -> Pager.arm_crash pager fp | None -> ());
      let pool = Buffer_pool.create ~capacity:cache_pages pager in
      let meta = Superblock.meta sb in
      let tree = decode_meta pool meta in
      let shadow_head = decode_shadow_head meta in
      (* Shadowing is sticky: a file that carries a chain keeps writing
         one, and [?shadow:true] turns it on for the next commit. *)
      let shadow = shadow_head >= 0 || Option.value shadow ~default:false in
      let t =
        {
          pool;
          sb;
          tree;
          recovery;
          quarantine = Quarantine.create ();
          shadow;
          shadow_head;
          scrub_cursor = Scrub.cursor ();
          mm = None;
          closed = false;
        }
      in
      install_backend t backend ~crash ~path;
      t)

(* Run a mutation inside a transaction.  If [f] raises (including a
   {!Failpoint.Simulated_crash}), the transaction is left uncommitted
   and the handle is closed: the on-disk journal makes the next [open_]
   roll back to the pre-operation tree. *)
let update t f =
  guarding (pager t) (fun () ->
      Superblock.begin_txn t.sb;
      let v = f t.tree in
      Buffer_pool.flush t.pool;
      Superblock.commit_txn t.sb ~meta:(commit_meta t);
      (* The commit is durable: remap if the file grew and retag the
         mmap backend's CRC memo with the new committed generation, so
         no pre-commit verification of an overwritten page survives. *)
      (match t.mm with
      | Some mm -> Mmap_pager.refresh mm ~gen:(Superblock.generation t.sb)
      | None -> ());
      v)

(* --- generation snapshots ---

   A snapshot pins the current committed superblock generation: the
   pager retains pre-images of pages later transactions overwrite and
   parks pages they free, so a descent from the snapshot's root (read
   via [Pager.read_shared ~gen]) sees exactly that commit's tree even
   while updates run concurrently.  No flush is needed when pinning —
   committed state is by construction on the device (commit follows the
   pool flush), and the buffer pool's dirty pages always belong to a
   *later*, uncommitted generation. *)

type snapshot = Superblock.snap

let snapshot t = Superblock.pin t.sb
let snapshot_gen = Superblock.snap_gen
let release_snapshot s = ignore (Superblock.release s)

let snapshot_view s =
  let meta = Superblock.snap_meta s in
  if not (meta_ok meta) then
    invalid_arg "Index_file.snapshot_view: superblock does not carry R-tree metadata";
  {
    Rtree.sv_gen = Superblock.snap_gen s;
    sv_root = Int32.to_int (Bytes.get_int32_le meta 4);
    sv_height = Int32.to_int (Bytes.get_int32_le meta 8);
  }

let with_snapshot t f =
  let s = snapshot t in
  Fun.protect ~finally:(fun () -> release_snapshot s) (fun () -> f (snapshot_view s))

(* A batched executor whose snapshot provider pins the file's committed
   generation, so whole batches are immune to concurrent commits; the
   release hook drops the pin and reports the new floor for cache
   pruning.  The executor shares the file's quarantine, so damage found
   by single-domain queries, batches, and the scrub all land in one
   registry. *)
let executor ?shards ?capacity ?max_in_flight t =
  Qexec.create ?shards ?capacity ?max_in_flight ~quarantine:t.quarantine
    ~snapshot:(fun () ->
      let s = snapshot t in
      let v = snapshot_view s in
      {
        Qexec.snap_gen = v.Rtree.sv_gen;
        snap_root = v.Rtree.sv_root;
        snap_height = v.Rtree.sv_height;
        snap_release = (fun () -> Superblock.release s);
      })
    t.tree

(* One increment of the self-healing pass, between transactions/batches:
   verify the next [pages] pages, heal what the shadow chain can prove,
   quarantine the rest.  Healing writes run outside a transaction —
   they restore committed content byte-for-byte, so a crash mid-heal
   just leaves the page damaged for the next pass. *)
let scrub_online ?(pages = 64) t =
  Buffer_pool.flush t.pool;
  let pgr = pager t in
  let skip id = id < Superblock.pages || Pager.is_free pgr id in
  Scrub.online ~skip
    ~repair:(fun id -> shadow_lookup t id)
    ~quarantine:t.quarantine ~cursor:t.scrub_cursor ~pages pgr

(* Idempotent: a double close is a no-op, and a close after a crash
   path (where [guarding] already closed the pager) still releases any
   generation pins — a leaked pin would park deferred frees forever. *)
let close t =
  if not t.closed then begin
    t.closed <- true;
    (match t.mm with
    | Some mm ->
        t.mm <- None;
        Rtree.set_mmap t.tree None;
        Mmap_pager.close mm
    | None -> ());
    Superblock.release_all_pins t.sb;
    if not (Pager.is_closed (pager t)) then begin
      Buffer_pool.flush t.pool;
      Pager.close (pager t)
    end
  end

(* --- fsck --- *)

type fsck_report = {
  fsck_tail_bytes : int;  (* torn trailing partial page dropped on open *)
  fsck_slots : string array;  (* human description of both superblock slots *)
  fsck_recovery : Superblock.recovery option;  (* None: file unopenable *)
  fsck_commit : int option;
  fsck_error : string option;  (* why the file could not be opened *)
  fsck_tree_ok : bool;
  fsck_tree_error : string option;
  fsck_entries : int option;  (* entries reachable from the root *)
  fsck_scrub : Scrub.report option;
  fsck_salvaged : (int * string) option;  (* entries salvaged, output path *)
}

let describe_slot = function
  | Superblock.Slot_valid st -> Printf.sprintf "valid (commit %d)" st.Superblock.commit
  | Superblock.Slot_empty -> "empty (never flipped)"
  | Superblock.Slot_bad msg -> "bad: " ^ msg

(* Salvage every checksummed-valid leaf entry from the device, skipping
   the superblock pair and free pages.  Pre-image journal copies can
   duplicate a live leaf, so entries are deduplicated by (id, rect);
   note that salvage can resurrect entries whose delete was the very
   operation that crashed — it is a disaster-recovery sweep, not a
   transaction log. *)
let salvage_entries pager =
  let page_size = Pager.page_size pager in
  let cap = Node.capacity ~page_size in
  let seen = Hashtbl.create 1024 in
  let out = ref [] in
  let n = ref 0 in
  for id = Superblock.pages to Pager.num_pages pager - 1 do
    if not (Pager.is_free pager id) then begin
      let buf = Pager.read_raw pager id in
      match Page.check buf with
      | Page.Valid _ when Page.get_u8 buf 0 = 0 && Page.get_u16 buf 1 <= cap -> (
          match Node.decode buf with
          | node when Node.kind node = Node.Leaf ->
              Array.iter
                (fun e ->
                  let r = Entry.rect e in
                  let key =
                    ( Entry.id e,
                      Prt_geom.Rect.xmin r,
                      Prt_geom.Rect.ymin r,
                      Prt_geom.Rect.xmax r,
                      Prt_geom.Rect.ymax r )
                  in
                  if not (Hashtbl.mem seen key) then begin
                    Hashtbl.replace seen key ();
                    out := e :: !out;
                    incr n
                  end)
                (Node.entries node)
          | _ -> ()
          | exception Invalid_argument _ -> ())
      | _ -> ()
    end
  done;
  Array.of_list (List.rev !out)

let fsck ?(page_size = Pager.default_page_size) ?rebuild path =
  let file_bytes = (Unix.stat path).Unix.st_size in
  let fsck_tail_bytes = file_bytes mod page_size in
  let pager = Pager.open_file ~page_size ~partial_tail:`Truncate path in
  Fun.protect
    ~finally:(fun () -> Pager.close pager)
    (fun () ->
      let fsck_slots = Array.map describe_slot (Superblock.inspect pager) in
      let opened =
        match Superblock.open_ pager with
        | sb, recovery -> Ok (sb, recovery)
        | exception (Failure msg | Invalid_argument msg) -> Error msg
        | exception Pager.Corrupt_page msg -> Error ("corrupt page during recovery: " ^ msg)
      in
      let fsck_recovery, fsck_commit, fsck_error, tree_state =
        match opened with
        | Error msg -> (None, None, Some msg, Error msg)
        | Ok (sb, recovery) -> (
            ( Some recovery,
              Some (Superblock.commit_count sb),
              None,
              let pool = Buffer_pool.create ~capacity:default_cache_pages (Superblock.pager sb) in
              match decode_meta pool (Superblock.meta sb) with
              | tree -> Ok tree
              | exception Invalid_argument msg -> Error msg ))
      in
      (* Walk the tree to count entries and collect the reachable page
         set; damage encountered on the walk marks the tree bad instead
         of aborting the whole fsck.  The post-image shadow chain (if the
         file carries one) is reachable too — directory and copy pages
         alike — so the orphan check does not flag it. *)
      let shadow_head =
        match opened with
        | Ok (sb, _) -> decode_shadow_head (Superblock.meta sb)
        | Error _ -> -1
      in
      let fsck_tree_ok, fsck_tree_error, fsck_entries, reachable =
        match tree_state with
        | Error msg -> (false, Some msg, None, None)
        | Ok tree -> (
            let pages = Hashtbl.create 256 in
            Hashtbl.replace pages 0 ();
            Hashtbl.replace pages 1 ();
            List.iter
              (fun id -> Hashtbl.replace pages id ())
              (shadow_chain_pages pager ~head:shadow_head);
            let entries = ref 0 in
            match
              Rtree.iter_nodes tree ~f:(fun ~depth:_ ~id node ->
                  Hashtbl.replace pages id ();
                  if Node.kind node = Node.Leaf then entries := !entries + Node.length node)
            with
            | () -> (true, None, Some !entries, Some (fun id -> Hashtbl.mem pages id))
            | exception Pager.Corrupt_page msg -> (false, Some msg, None, None)
            | exception Invalid_argument msg -> (false, Some msg, None, None)
            | exception Pager.Io_error msg -> (false, Some msg, None, None))
      in
      let fsck_scrub =
        match opened with
        | Error _ -> Some (Scrub.run pager)
        | Ok _ -> Some (Scrub.run ~free:(fun id -> Pager.is_free pager id) ?reachable pager)
      in
      let fsck_salvaged =
        match rebuild with
        | None -> None
        | Some (output, load) ->
            (* Salvage means the file was damaged beyond in-place repair
               — a postmortem-worthy failure even when it succeeds. *)
            let entries = salvage_entries pager in
            Prt_obs.Flight.failure "fsck.salvage" ~arg:(Array.length entries) ~note:path;
            let rebuilt =
              create ~page_size output ~build:(fun pool -> load pool entries)
            in
            close rebuilt;
            Some (Array.length entries, output)
      in
      {
        fsck_tail_bytes;
        fsck_slots;
        fsck_recovery;
        fsck_commit;
        fsck_error;
        fsck_tree_ok;
        fsck_tree_error;
        fsck_entries;
        fsck_scrub;
        fsck_salvaged;
      })

let fsck_clean r =
  r.fsck_tail_bytes = 0 && r.fsck_error = None && r.fsck_tree_ok
  && (match r.fsck_scrub with Some s -> Scrub.clean s | None -> true)

let pp_fsck ppf r =
  Fmt.pf ppf "@[<v>";
  if r.fsck_tail_bytes > 0 then
    Fmt.pf ppf "torn final write: dropped %d trailing bytes@ " r.fsck_tail_bytes;
  Array.iteri (fun i d -> Fmt.pf ppf "superblock slot %d: %s@ " i d) r.fsck_slots;
  (match r.fsck_error with
  | Some msg -> Fmt.pf ppf "open failed: %s@ " msg
  | None -> ());
  (match r.fsck_recovery with
  | Some rec_ ->
      if rec_.Superblock.rec_journal_pages > 0 then
        Fmt.pf ppf "journal rollback: restored %d page(s)@ " rec_.Superblock.rec_journal_pages;
      if rec_.Superblock.rec_truncated_pages > 0 then
        Fmt.pf ppf "truncated %d uncommitted page(s)@ " rec_.Superblock.rec_truncated_pages;
      if rec_.Superblock.rec_slot_repaired then Fmt.pf ppf "repaired damaged superblock slot@ "
  | None -> ());
  (match r.fsck_commit with Some c -> Fmt.pf ppf "committed state: commit %d@ " c | None -> ());
  (match (r.fsck_tree_ok, r.fsck_tree_error) with
  | true, _ -> Fmt.pf ppf "tree: ok (%d entries)@ " (Option.value ~default:0 r.fsck_entries)
  | false, Some msg -> Fmt.pf ppf "tree: BAD (%s)@ " msg
  | false, None -> Fmt.pf ppf "tree: BAD@ ");
  (match r.fsck_scrub with Some s -> Fmt.pf ppf "scrub: %a@ " Scrub.pp_report s | None -> ());
  (match r.fsck_salvaged with
  | Some (n, out) -> Fmt.pf ppf "salvage: rebuilt %d entries into %s@ " n out
  | None -> ());
  Fmt.pf ppf "verdict: %s@]" (if fsck_clean r then "clean" else "issues found")
