(* Batched multicore query executor.

   Runs an array of window queries across OCaml 5 domains.  Workers pull
   contiguous chunks of the query array off a shared atomic counter
   (chunked work-stealing: cheap when queries are uniform, self-balancing
   when they are not) and write each query's result into its own slot of
   a preallocated array, so the output is deterministic and ordered by
   query index regardless of scheduling.

   Per-query descent is the domain-safe twin of [Rtree.query]:

   - internal nodes come from a {!Prt_storage.Shard_cache} of *decoded*
     nodes, keyed by (page id, generation), so the hot upper levels are
     decoded once per generation and then shared read-only by every
     domain;
   - leaf pages are read through [Pager.read_shared ~gen] — which
     bypasses the single-domain buffer pool and serves retained
     pre-images for pinned generations — and scanned in place with the
     zero-copy [Node.iter_rects] cursor, so a leaf visit allocates only
     the matching entries.

   Leaf vs internal is decided by depth against the snapshot's tree
   height, so no kind byte needs inspecting before the page is read.
   Each batch runs against a snapshot acquired at batch start (for an
   index file: a pinned superblock generation, making the batch immune
   to concurrent commits; the default provider reads the live tree and
   requires it to stay read-only for the duration of the batch, the
   same contract as the zero-copy cursors).  The snapshot is released
   when the batch ends, and cached nodes below the new pin floor are
   pruned.

   Workers record their own telemetry: the [Prt_obs.Metrics] registry
   is striped per domain, so each worker ticks visit/degradation
   counters and the per-query latency histogram directly, and drops
   span events on its own [Prt_obs.Flight] ring.  Aggregation happens
   at read time — there is no coordinator-side mirroring left. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Shard_cache = Prt_storage.Shard_cache
module Quarantine = Prt_storage.Quarantine
module Parallel = Prt_util.Parallel
module Deadline = Prt_util.Deadline

(* A pinned snapshot for one batch: the committed generation to read at
   plus the root/height of that generation's tree.  [snap_release] drops
   the pin (idempotent) and returns the new pin floor, which drives
   cache pruning. *)
type snap = {
  snap_gen : int;
  snap_root : int;
  snap_height : int;
  snap_release : unit -> int;
}

type t = {
  tree : Rtree.t;
  cache : Node.t Shard_cache.t;
  snapshot : unit -> snap;  (* acquired at each batch start *)
  quarantine : Quarantine.t;
  max_in_flight : int option;  (* admission-control bound, if any *)
  in_flight : int Atomic.t;  (* queries admitted and not yet finished *)
  pruned_below : int Atomic.t;  (* highest pin floor the cache was pruned to *)
}

exception Overloaded of { in_flight : int; limit : int }

let () =
  Printexc.register_printer (function
    | Overloaded { in_flight; limit } ->
        Some (Printf.sprintf "Qexec.Overloaded: %d queries in flight, limit %d" in_flight limit)
    | _ -> None)

let m_batches = lazy (Prt_obs.Metrics.counter "qexec.batches")
let m_queries = lazy (Prt_obs.Metrics.counter "qexec.queries")
let m_rejected = lazy (Prt_obs.Metrics.counter "resilience.batches_rejected")

let create ?shards ?capacity ?snapshot ?quarantine ?max_in_flight tree =
  (match max_in_flight with
  | Some l when l < 1 -> invalid_arg "Qexec.create: max_in_flight must be >= 1"
  | _ -> ());
  (* Default snapshot provider, for trees that are never modified while
     the executor is in use: flush the pool so [read_shared] sees the
     current pages, then read live (generation 0 = no pin, no MVCC). *)
  let snapshot =
    match snapshot with
    | Some f -> f
    | None ->
        fun () ->
          Buffer_pool.flush (Rtree.pool tree);
          {
            snap_gen = 0;
            snap_root = Rtree.root tree;
            snap_height = Rtree.height tree;
            snap_release = (fun () -> 0);
          }
  in
  {
    tree;
    cache = Shard_cache.create ?shards ?capacity ();
    snapshot;
    quarantine = (match quarantine with Some q -> q | None -> Quarantine.create ());
    max_in_flight;
    in_flight = Atomic.make 0;
    pruned_below = Atomic.make 0;
  }

let tree t = t.tree
let quarantine t = t.quarantine
let cache_stats t = Shard_cache.stats t.cache
let cache_hit_ratio t = Shard_cache.hit_ratio (Shard_cache.stats t.cache)

exception Deadline_exceeded

(* One query, one domain.  [gen]/[root]/[height] come from the snapshot
   pinned at batch start so every worker descends the same tree.

   Degradation is per subtree, exactly as in [Rtree.query]: the typed
   catch is scoped to the page read/decode alone, so a failure deeper in
   the recursion is handled at its own level and a poisoned page can
   never fail more than its own subtree — let alone the batch.  The
   worker records its own metrics through [Rtree.record_query_stats]
   (per-domain stripes) and its own flight-ring events; the quarantine
   is mutex-guarded and safe to share. *)
let rec run_query t ~gen ~root ~height ~deadline window =
  match Rtree.mmap t.tree with
  | Some _ ->
      (* The mmap backend: every worker scans the one shared mapping
         through the common [Rtree] engines (CRC gate + version-store
         protocol), with no per-domain state and no decoded-node cache —
         a mapped internal visit is cheaper than a shard-cache hit. *)
      let sv = { Rtree.sv_gen = gen; sv_root = root; sv_height = height } in
      let acc = ref [] in
      let stats =
        Rtree.query_unrecorded ~quarantine:t.quarantine ~deadline ~snapshot:sv t.tree window
          ~f:(fun e -> acc := e :: !acc)
      in
      (List.rev !acc, stats)
  | None -> run_query_pread t ~gen ~root ~height ~deadline window

and run_query_pread t ~gen ~root ~height ~deadline window =
  let pgr = Rtree.pager t.tree in
  let stats = Rtree.fresh_stats () in
  let acc = ref [] in
  let skip id =
    stats.Rtree.skipped_subtrees <- stats.Rtree.skipped_subtrees + 1;
    if not (List.mem id stats.Rtree.skipped_pages) then
      stats.Rtree.skipped_pages <- id :: stats.Rtree.skipped_pages
  in
  let poison id reason =
    Quarantine.add t.quarantine id reason;
    skip id
  in
  let rec visit id depth =
    if Deadline.expired deadline then begin
      stats.Rtree.timed_out <- true;
      Prt_obs.Flight.point "resilience.deadline_expired" ~arg:id;
      raise_notrace Deadline_exceeded
    end;
    if Quarantine.mem t.quarantine id then skip id
    else if depth = height then begin
      match Pager.read_shared ~gen pgr id with
      | exception Pager.Corrupt_page _ -> poison id Quarantine.Corrupt
      | exception Pager.Io_error _ -> poison id Quarantine.Io_failed
      | buf ->
          stats.Rtree.leaf_visited <- stats.Rtree.leaf_visited + 1;
          stats.Rtree.matched <-
            stats.Rtree.matched + Node.iter_rects buf window ~f:(fun e -> acc := e :: !acc)
    end
    else
      match
        Shard_cache.find_or_add t.cache ~gen id (fun () ->
            Node.decode (Pager.read_shared ~gen pgr id))
      with
      | exception Pager.Corrupt_page _ -> poison id Quarantine.Corrupt
      | exception Pager.Io_error _ -> poison id Quarantine.Io_failed
      | node ->
          stats.Rtree.internal_visited <- stats.Rtree.internal_visited + 1;
          Array.iter
            (fun e ->
              if Rect.intersects (Entry.rect e) window then visit (Entry.id e) (depth + 1))
            (Node.entries node)
  in
  (try visit root 1 with Deadline_exceeded -> ());
  (List.rev !acc, stats)

(* One query on whatever domain the work-stealing loop runs it: a
   flight span bracketing the descent, and — while collection is on —
   the same [query.*] counters/latency histogram as the single-domain
   path, recorded into this domain's stripe. *)
let run_query_recorded t ~gen ~root ~height ~deadline i window =
  Prt_obs.Flight.begin_span "qexec.query" ~arg:i;
  let r =
    if not (Prt_obs.Metrics.collecting ()) then run_query t ~gen ~root ~height ~deadline window
    else begin
      let t0 = Unix.gettimeofday () in
      let ((_, stats) as r) = run_query t ~gen ~root ~height ~deadline window in
      let latency_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
      Rtree.record_query_stats ~latency_us stats;
      r
    end
  in
  Prt_obs.Flight.end_span "qexec.query" ~arg:i;
  r

let run ?jobs ?(deadline = Deadline.none) t queries =
  let n = Array.length queries in
  (* Admission control: shed the whole batch up front rather than queue
     unboundedly — the caller gets a typed [Overloaded] (with the load
     that triggered it) instead of latency collapse.  The counter is
     atomic because concurrent callers from other systhreads are the
     reason a bound exists at all. *)
  (match t.max_in_flight with
  | Some limit ->
      let before = Atomic.fetch_and_add t.in_flight n in
      if before + n > limit then begin
        ignore (Atomic.fetch_and_add t.in_flight (-n));
        Prt_obs.Metrics.tick (Lazy.force m_rejected);
        raise (Overloaded { in_flight = before; limit })
      end
  | None -> ());
  let release () =
    match t.max_in_flight with
    | Some _ -> ignore (Atomic.fetch_and_add t.in_flight (-n))
    | None -> ()
  in
  Fun.protect ~finally:release @@ fun () ->
  let jobs =
    match jobs with Some j -> max 1 j | None -> Parallel.default_domains ()
  in
  let snap = t.snapshot () in
  (* Drop the pin whatever happens, then prune cached nodes below the
     new pin floor.  The floor only rises, and the CAS makes exactly one
     releasing batch prune to any given floor — concurrent batches
     racing on release never double-count invalidations. *)
  let release_snap () =
    let floor = snap.snap_release () in
    let rec prune_to () =
      let cur = Atomic.get t.pruned_below in
      if floor > cur then
        if Atomic.compare_and_set t.pruned_below cur floor then
          ignore (Shard_cache.prune t.cache ~older_than:floor)
        else prune_to ()
    in
    prune_to ()
  in
  Fun.protect ~finally:release_snap @@ fun () ->
  Prt_obs.Trace.with_span "qexec.batch"
    ~args:Prt_obs.Trace.[ ("queries", Int n); ("jobs", Int jobs) ]
    (fun () ->
      let gen = snap.snap_gen in
      let root = snap.snap_root and height = snap.snap_height in
      let results = Array.make n ([], Rtree.fresh_stats ()) in
      Prt_obs.Metrics.tick (Lazy.force m_batches);
      Prt_obs.Metrics.add (Lazy.force m_queries) n;
      Prt_obs.Flight.begin_span "qexec.batch" ~arg:n;
      let next = Atomic.make 0 in
      let chunk = max 1 (n / (jobs * 8)) in
      let worker () =
        let rec loop () =
          let start = Atomic.fetch_and_add next chunk in
          if start < n then begin
            for i = start to min n (start + chunk) - 1 do
              results.(i) <- run_query_recorded t ~gen ~root ~height ~deadline i queries.(i)
            done;
            loop ()
          end
        in
        loop ()
      in
      if jobs = 1 || n <= 1 then worker ()
      else begin
        let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
        worker ();
        Array.iter Domain.join spawned
      end;
      (* Workers recorded everything on their own stripes and rings —
         after the joins the aggregated registry already holds the
         batch's totals exactly. *)
      Prt_obs.Flight.end_span "qexec.batch" ~arg:n;
      results)

let total_stats results =
  let t = Rtree.fresh_stats () in
  Array.iter
    (fun (_, s) ->
      t.Rtree.internal_visited <- t.Rtree.internal_visited + s.Rtree.internal_visited;
      t.Rtree.leaf_visited <- t.Rtree.leaf_visited + s.Rtree.leaf_visited;
      t.Rtree.matched <- t.Rtree.matched + s.Rtree.matched;
      t.Rtree.skipped_subtrees <- t.Rtree.skipped_subtrees + s.Rtree.skipped_subtrees;
      t.Rtree.skipped_pages <-
        List.fold_left
          (fun acc id -> if List.mem id acc then acc else id :: acc)
          t.Rtree.skipped_pages s.Rtree.skipped_pages;
      t.Rtree.timed_out <- t.Rtree.timed_out || s.Rtree.timed_out)
    results;
  t
