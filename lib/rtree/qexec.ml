(* Batched multicore query executor.

   Runs an array of window queries across OCaml 5 domains.  Workers pull
   contiguous chunks of the query array off a shared atomic counter
   (chunked work-stealing: cheap when queries are uniform, self-balancing
   when they are not) and write each query's result into its own slot of
   a preallocated array, so the output is deterministic and ordered by
   query index regardless of scheduling.

   Per-query descent is the domain-safe twin of [Rtree.query]:

   - internal nodes come from a {!Prt_storage.Shard_cache} of *decoded*
     nodes, keyed by page id and validated against the batch's epoch
     (the index file's commit counter), so the hot upper levels are
     decoded once per epoch and then shared read-only by every domain;
   - leaf pages are read through [Pager.read_shared] — which bypasses
     the single-domain buffer pool — and scanned in place with the
     zero-copy [Node.iter_rects] cursor, so a leaf visit allocates only
     the matching entries.

   Leaf vs internal is decided by depth against the tree height captured
   at batch start, so no kind byte needs inspecting before the page is
   read.  The buffer pool is flushed at batch start to publish any dirty
   pages to the pager; the tree must then stay read-only for the
   duration of the batch (the same contract as the zero-copy cursors).

   The observability registry is not domain-safe, so workers never touch
   it: the coordinator mirrors batch totals into [Prt_obs] counters
   after the domains join. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Shard_cache = Prt_storage.Shard_cache
module Parallel = Prt_util.Parallel

type t = {
  tree : Rtree.t;
  cache : Node.t Shard_cache.t;
  epoch : unit -> int;  (* read at each batch start *)
}

let m_batches = lazy (Prt_obs.Metrics.counter "qexec.batches")
let m_queries = lazy (Prt_obs.Metrics.counter "qexec.queries")
let m_cache_hits = lazy (Prt_obs.Metrics.counter "qexec.cache_hits")
let m_cache_misses = lazy (Prt_obs.Metrics.counter "qexec.cache_misses")
let m_cache_invalidations = lazy (Prt_obs.Metrics.counter "qexec.cache_invalidations")

let create ?shards ?capacity ?(epoch = fun () -> 0) tree =
  { tree; cache = Shard_cache.create ?shards ?capacity (); epoch }

let tree t = t.tree
let cache_stats t = Shard_cache.stats t.cache
let cache_hit_ratio t = Shard_cache.hit_ratio (Shard_cache.stats t.cache)

(* One query, one domain.  [epoch]/[root]/[height] are the values
   captured at batch start so every worker descends the same tree. *)
let run_query t ~epoch ~root ~height window =
  let pgr = Rtree.pager t.tree in
  let stats = Rtree.fresh_stats () in
  let acc = ref [] in
  let rec visit id depth =
    if depth = height then begin
      stats.Rtree.leaf_visited <- stats.Rtree.leaf_visited + 1;
      let buf = Pager.read_shared pgr id in
      stats.Rtree.matched <-
        stats.Rtree.matched + Node.iter_rects buf window ~f:(fun e -> acc := e :: !acc)
    end
    else begin
      stats.Rtree.internal_visited <- stats.Rtree.internal_visited + 1;
      let node =
        Shard_cache.find_or_add t.cache ~epoch id (fun () ->
            Node.decode (Pager.read_shared pgr id))
      in
      Array.iter
        (fun e -> if Rect.intersects (Entry.rect e) window then visit (Entry.id e) (depth + 1))
        (Node.entries node)
    end
  in
  visit root 1;
  (List.rev !acc, stats)

let run ?jobs t queries =
  let n = Array.length queries in
  let jobs =
    match jobs with Some j -> max 1 j | None -> Parallel.default_domains ()
  in
  Prt_obs.Trace.with_span "qexec.batch" (fun () ->
      (* Publish dirty pages so [Pager.read_shared] sees the current tree. *)
      Buffer_pool.flush (Rtree.pool t.tree);
      let epoch = t.epoch () in
      let root = Rtree.root t.tree and height = Rtree.height t.tree in
      let results = Array.make n ([], Rtree.fresh_stats ()) in
      let before = Shard_cache.stats t.cache in
      let next = Atomic.make 0 in
      let chunk = max 1 (n / (jobs * 8)) in
      let worker () =
        let rec loop () =
          let start = Atomic.fetch_and_add next chunk in
          if start < n then begin
            for i = start to min n (start + chunk) - 1 do
              results.(i) <- run_query t ~epoch ~root ~height queries.(i)
            done;
            loop ()
          end
        in
        loop ()
      in
      if jobs = 1 || n <= 1 then worker ()
      else begin
        let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
        worker ();
        Array.iter Domain.join spawned
      end;
      (* Coordinator-only mirroring: the metrics registry is not
         domain-safe, so batch totals land here, after the join. *)
      let after = Shard_cache.stats t.cache in
      Prt_obs.Metrics.tick (Lazy.force m_batches);
      Prt_obs.Metrics.add (Lazy.force m_queries) n;
      Prt_obs.Metrics.add (Lazy.force m_cache_hits)
        (after.Shard_cache.st_hits - before.Shard_cache.st_hits);
      Prt_obs.Metrics.add (Lazy.force m_cache_misses)
        (after.Shard_cache.st_misses - before.Shard_cache.st_misses);
      Prt_obs.Metrics.add (Lazy.force m_cache_invalidations)
        (after.Shard_cache.st_invalidations - before.Shard_cache.st_invalidations);
      results)

let total_stats results =
  let t = Rtree.fresh_stats () in
  Array.iter
    (fun (_, s) ->
      t.Rtree.internal_visited <- t.Rtree.internal_visited + s.Rtree.internal_visited;
      t.Rtree.leaf_visited <- t.Rtree.leaf_visited + s.Rtree.leaf_visited;
      t.Rtree.matched <- t.Rtree.matched + s.Rtree.matched)
    results;
  t
