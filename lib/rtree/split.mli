(** Node split algorithms for dynamic R-tree updates. *)

type algorithm =
  | Linear  (** Guttman's linear-cost split *)
  | Quadratic  (** Guttman's quadratic-cost split *)
  | Rstar  (** the R*-tree margin/overlap split *)

val algorithm_name : algorithm -> string

val split : algorithm -> min_fill:int -> Entry.t array -> Entry.t array * Entry.t array
(** Partition an overflowing node's entries into two non-empty groups,
    each holding at least [min_fill] entries (capped at half the input).
    Raises [Invalid_argument] on fewer than two entries. *)
