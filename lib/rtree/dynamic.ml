(* Dynamic R-tree updates: Guttman's ChooseLeaf insertion with
   configurable node splits, and deletion with tree condensation.

   These are "the standard R-tree updating algorithms" the paper refers
   to: applicable to any bulk-loaded tree, with no guarantee on query
   performance afterwards (the degradation is itself one of our
   experiments).  Orphaned entries from condensed nodes are reinserted
   at their original height so all leaves stay on one level. *)

module Rect = Prt_geom.Rect

type config = {
  split_algorithm : Split.algorithm;
  min_fill_fraction : float; (* of node capacity, for splits and underflow *)
  forced_reinsert_fraction : float;
      (* R* forced reinsertion: on the first overflow per level during an
         insertion, evict this fraction of the node's entries (those with
         centers farthest from the node center) and reinsert them instead
         of splitting. 0 disables. *)
  rstar_choose_subtree : bool;
      (* R* ChooseSubtree: at the level above the leaves, pick the child
         whose overlap with its siblings grows least (ties by area
         enlargement); false = Guttman least-enlargement everywhere. *)
}

let default_config =
  {
    split_algorithm = Split.Quadratic;
    min_fill_fraction = 0.4;
    forced_reinsert_fraction = 0.0;
    rstar_choose_subtree = false;
  }

let rstar_config =
  {
    split_algorithm = Split.Rstar;
    min_fill_fraction = 0.4;
    forced_reinsert_fraction = 0.3;
    rstar_choose_subtree = true;
  }

let min_fill t cfg =
  let m = int_of_float (cfg.min_fill_fraction *. float_of_int (Rtree.capacity t)) in
  max 1 (min m (Rtree.capacity t / 2))

(* Result of a recursive insertion below some node. *)
type ins_result =
  | Updated of Rect.t            (* subtree absorbed the entry; new MBR *)
  | Split_into of Entry.t * Entry.t (* subtree was split into two nodes *)

let append_entry entries e =
  let n = Array.length entries in
  let out = Array.make (n + 1) e in
  Array.blit entries 0 out 0 n;
  out

(* Guttman ChooseSubtree: least area enlargement, ties by smaller
   area. *)
let choose_subtree entries rect =
  let best = ref 0 and best_enl = ref infinity and best_area = ref infinity in
  Array.iteri
    (fun i e ->
      let enl = Rect.enlargement (Entry.rect e) rect in
      let area = Rect.area (Entry.rect e) in
      if enl < !best_enl || (enl = !best_enl && area < !best_area) then begin
        best := i;
        best_enl := enl;
        best_area := area
      end)
    entries;
  !best

(* R* ChooseSubtree at the leaf-parent level: least growth of overlap
   with siblings, ties by area enlargement. O(B^2) per node, as in the
   original. *)
let choose_subtree_overlap entries rect =
  let n = Array.length entries in
  let overlap_with_others i box =
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      if j <> i then acc := !acc +. Rect.overlap_area box (Entry.rect entries.(j))
    done;
    !acc
  in
  let best = ref 0 and best_growth = ref infinity and best_enl = ref infinity in
  Array.iteri
    (fun i e ->
      let before = overlap_with_others i (Entry.rect e) in
      let grown = Rect.union (Entry.rect e) rect in
      let growth = overlap_with_others i grown -. before in
      let enl = Rect.enlargement (Entry.rect e) rect in
      if growth < !best_growth || (growth = !best_growth && enl < !best_enl) then begin
        best := i;
        best_growth := growth;
        best_enl := enl
      end)
    entries;
  !best

(* Per-insertion context: the R* forced-reinsert bookkeeping. Each tree
   level may trigger a forced reinsert at most once per insertion
   ([visited] holds the levels that already did); evicted entries are
   queued in [pending] with the level they must re-enter at. *)
type ctx = {
  cfg : config;
  reinserted_levels : (int, unit) Hashtbl.t;
  mutable pending : (Entry.t * int) list;
}

let fresh_ctx cfg = { cfg; reinserted_levels = Hashtbl.create 4; pending = [] }

let center_dist2 (cx, cy) r =
  let x, y = Rect.center r in
  let dx = x -. cx and dy = y -. cy in
  (dx *. dx) +. (dy *. dy)

(* R* forced reinsertion: keep the entries whose centers are closest to
   the node's center, queue the farthest [fraction] for reinsertion. *)
let forced_reinsert ctx t node_id kind entries ~above =
  let n = Array.length entries in
  let evict = max 1 (int_of_float (ctx.cfg.forced_reinsert_fraction *. float_of_int n)) in
  let evict = min evict (n - 1) in
  let center = Rect.center (Rect.union_map ~f:Entry.rect entries) in
  let keyed = Array.map (fun e -> (center_dist2 center (Entry.rect e), e)) entries in
  Array.sort (fun (a, ea) (b, eb) ->
      let c = Float.compare a b in
      if c <> 0 then c else Entry.compare_dim 0 ea eb)
    keyed;
  let kept = Array.init (n - evict) (fun i -> snd keyed.(i)) in
  for i = n - evict to n - 1 do
    ctx.pending <- (snd keyed.(i), above) :: ctx.pending
  done;
  let node = Node.make kind kept in
  Rtree.write_node t node_id node;
  Node.mbr node

(* Handle a node that exceeded capacity: forced reinsert if enabled and
   not yet done at this level (never at the root — R* splits the root
   directly), otherwise split. *)
let overflow ctx t node_id kind entries ~above =
  let use_reinsert =
    ctx.cfg.forced_reinsert_fraction > 0.0
    && node_id <> Rtree.root t
    && not (Hashtbl.mem ctx.reinserted_levels above)
  in
  if use_reinsert then begin
    Hashtbl.replace ctx.reinserted_levels above ();
    Updated (forced_reinsert ctx t node_id kind entries ~above)
  end
  else begin
    let g1, g2 = Split.split ctx.cfg.split_algorithm ~min_fill:(min_fill t ctx.cfg) entries in
    let n1 = Node.make kind g1 and n2 = Node.make kind g2 in
    Rtree.write_node t node_id n1;
    let id2 = Rtree.alloc_node t n2 in
    Split_into (Entry.make (Node.mbr n1) node_id, Entry.make (Node.mbr n2) id2)
  end

(* Insert [entry] into the subtree rooted at [node_id] (which sits at
   [depth], root = 1), placing it in a node [above] levels above the
   leaves (0 = data entry into a leaf). *)
let rec insert_rec t ctx node_id entry ~above ~depth =
  let node = Rtree.read_node t node_id in
  let here = Rtree.height t - depth = above in
  if here then begin
    let entries = append_entry (Node.entries node) entry in
    if Array.length entries <= Rtree.capacity t then begin
      let node = Node.make (Node.kind node) entries in
      Rtree.write_node t node_id node;
      Updated (Node.mbr node)
    end
    else overflow ctx t node_id (Node.kind node) entries ~above
  end
  else begin
    let entries = Node.entries node in
    assert (Node.kind node = Node.Internal && Array.length entries > 0);
    (* The level above the target uses the (optional) R* overlap rule. *)
    let at_parent_of_target = Rtree.height t - depth = above + 1 in
    let i =
      if ctx.cfg.rstar_choose_subtree && at_parent_of_target then
        choose_subtree_overlap entries (Entry.rect entry)
      else choose_subtree entries (Entry.rect entry)
    in
    match insert_rec t ctx (Entry.id entries.(i)) entry ~above ~depth:(depth + 1) with
    | Updated child_mbr ->
        entries.(i) <- Entry.make child_mbr (Entry.id entries.(i));
        let node = Node.make Node.Internal entries in
        Rtree.write_node t node_id node;
        Updated (Node.mbr node)
    | Split_into (e1, e2) ->
        entries.(i) <- e1;
        let entries = append_entry entries e2 in
        if Array.length entries <= Rtree.capacity t then begin
          let node = Node.make Node.Internal entries in
          Rtree.write_node t node_id node;
          Updated (Node.mbr node)
        end
        else overflow ctx t node_id Node.Internal entries ~above:(Rtree.height t - depth)
  end

let insert_at_ctx t ctx entry ~above =
  if above < 0 || above >= Rtree.height t then invalid_arg "Dynamic.insert_at: bad level";
  match insert_rec t ctx (Rtree.root t) entry ~above ~depth:1 with
  | Updated _ -> ()
  | Split_into (e1, e2) ->
      let root = Rtree.alloc_node t (Node.make Node.Internal [| e1; e2 |]) in
      Rtree.set_root t ~root ~height:(Rtree.height t + 1)

(* Drain the forced-reinsert queue; reinserts may enqueue more work. *)
let drain_pending t ctx =
  let rec go () =
    match ctx.pending with
    | [] -> ()
    | (e, above) :: rest ->
        ctx.pending <- rest;
        insert_at_ctx t ctx e ~above;
        go ()
  in
  go ()

let insert_at t cfg entry ~above =
  let ctx = fresh_ctx cfg in
  insert_at_ctx t ctx entry ~above;
  drain_pending t ctx

let insert ?(config = default_config) t entry =
  insert_at t config entry ~above:0;
  Rtree.set_count t (Rtree.count t + 1)

(* --- Deletion --- *)

type del_result =
  | Not_found_here
  | Kept of Rect.t    (* entry removed, node still valid; new subtree MBR *)
  | Dissolved         (* node fell under min fill and was dissolved *)

let remove_at arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

let delete ?(config = default_config) t target =
  let m = min_fill t config in
  (* Orphans: entries of dissolved nodes, tagged with the height above
     the leaves at which they must be reinserted. *)
  let orphans = ref [] in
  let rec del node_id ~depth =
    let node = Rtree.read_node t node_id in
    let entries = Node.entries node in
    match Node.kind node with
    | Node.Leaf -> begin
        let found = ref (-1) in
        Array.iteri (fun i e -> if !found < 0 && Entry.equal e target then found := i) entries;
        if !found < 0 then Not_found_here
        else begin
          let remaining = remove_at entries !found in
          let is_root = node_id = Rtree.root t in
          if (not is_root) && Array.length remaining < m then begin
            Array.iter (fun e -> orphans := (e, 0) :: !orphans) remaining;
            Rtree.free_node t node_id;
            Dissolved
          end
          else begin
            let node = Node.make Node.Leaf remaining in
            Rtree.write_node t node_id node;
            Kept (if Array.length remaining = 0 then Entry.rect target else Node.mbr node)
          end
        end
      end
    | Node.Internal -> begin
        (* The entry may live under any child whose box contains it. *)
        let result = ref Not_found_here and child = ref (-1) in
        (try
           Array.iteri
             (fun i e ->
               if Rect.contains (Entry.rect e) (Entry.rect target) then begin
                 match del (Entry.id e) ~depth:(depth + 1) with
                 | Not_found_here -> ()
                 | r ->
                     result := r;
                     child := i;
                     raise Exit
               end)
             entries
         with Exit -> ());
        match !result with
        | Not_found_here -> Not_found_here
        | Kept child_mbr ->
            entries.(!child) <- Entry.make child_mbr (Entry.id entries.(!child));
            let node = Node.make Node.Internal entries in
            Rtree.write_node t node_id node;
            Kept (Node.mbr node)
        | Dissolved ->
            let remaining = remove_at entries !child in
            let is_root = node_id = Rtree.root t in
            if (not is_root) && Array.length remaining < m then begin
              (* These entries lived in a node at [depth] and point at
                 subtrees rooted one level below, so they re-enter at
                 [height - depth] levels above the leaves. *)
              let above = Rtree.height t - depth in
              Array.iter (fun e -> orphans := (e, above) :: !orphans) remaining;
              Rtree.free_node t node_id;
              Dissolved
            end
            else begin
              let node = Node.make Node.Internal remaining in
              Rtree.write_node t node_id node;
              if Array.length remaining = 0 then Dissolved else Kept (Node.mbr node)
            end
      end
  in
  (* Reinsert a dissolved subtree's data entries one by one — the
     fallback when the subtree's original level no longer exists (the
     tree shrank below it). Frees the subtree's pages. *)
  let rec reinsert_as_data e ~above =
    if above = 0 then insert_at t config e ~above:0
    else begin
      let node = Rtree.read_node t (Entry.id e) in
      Rtree.free_node t (Entry.id e);
      Array.iter (fun child -> reinsert_as_data child ~above:(above - 1)) (Node.entries node)
    end
  in
  match del (Rtree.root t) ~depth:1 with
  | Not_found_here -> false
  | Kept _ | Dissolved ->
      Rtree.set_count t (Rtree.count t - 1);
      (* If the root lost all children, reset to an empty leaf before
         reinsertion. *)
      let root_node = Rtree.read_node t (Rtree.root t) in
      if Node.kind root_node = Node.Internal && Node.length root_node = 0 then begin
        Rtree.write_node t (Rtree.root t) (Node.make Node.Leaf [||]);
        Rtree.set_root t ~root:(Rtree.root t) ~height:1
      end;
      (* Reinsert orphans at their original level (deepest first so leaf
         entries are present before higher subtrees rejoin). *)
      let sorted = List.sort (fun (_, a) (_, b) -> Int.compare a b) !orphans in
      List.iter
        (fun (e, above) ->
          if above < Rtree.height t then insert_at t config e ~above
          else reinsert_as_data e ~above)
        sorted;
      (* Shrink the root while it is an internal node with one child. *)
      let rec shrink () =
        if Rtree.height t > 1 then begin
          let node = Rtree.read_node t (Rtree.root t) in
          if Node.kind node = Node.Internal && Node.length node = 1 then begin
            let old_root = Rtree.root t in
            Rtree.set_root t ~root:(Entry.id (Node.entries node).(0))
              ~height:(Rtree.height t - 1);
            Rtree.free_node t old_root;
            shrink ()
          end
        end
      in
      shrink ();
      true
