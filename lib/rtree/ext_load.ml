(* External-memory (I/O-counted) bulk loading for the baseline R-trees.

   These variants read their input from an {!Entry.File} living in the
   same pager as the resulting tree, express every scan, sort and
   distribution through {!Prt_extsort.Record_file}, and therefore have
   honest I/O counts comparable to the paper's Figure 9-11 numbers:

   - packed Hilbert (H) and 4-D Hilbert (H4): one external sort by
     Hilbert key plus one packing scan — O((N/B) log_{M/B} (N/B)) I/Os;
   - TGS: four external sorts up front, then a full scan of the current
     subset for every binary partition, exactly as the original
     algorithm — effectively O((N/B) log2 N) I/Os, the behaviour the
     paper measures.

   Upper tree levels hold N/B entries and are built in memory (the paper
   does the same; their I/O contribution is negligible and the node
   writes are still counted). *)

module Rect = Prt_geom.Rect
module Buffer_pool = Prt_storage.Buffer_pool
module Pager = Prt_storage.Pager
module Trace = Prt_obs.Trace

let world_of_file file =
  let world = ref None in
  Entry.File.iter file (fun e ->
      world :=
        Some (match !world with None -> Entry.rect e | Some w -> Rect.union w (Entry.rect e)));
  match !world with None -> Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0 | Some w -> w

(* Pack a sorted entry file into leaves, then build the upper levels
   from the (in-memory) parent entries. *)
let pack_sorted_file pool sorted =
  let page_size = Pager.page_size (Buffer_pool.pager pool) in
  let cap = Node.capacity ~page_size in
  let n = Entry.File.length sorted in
  if n = 0 then Rtree.create_empty pool
  else begin
    let parents = ref [] in
    let chunk = Array.make cap (Entry.make (Rect.point 0.0 0.0) 0) in
    let filled = ref 0 in
    let flush () =
      if !filled > 0 then begin
        let node = Node.make Node.Leaf (Array.sub chunk 0 !filled) in
        let id = Buffer_pool.alloc pool in
        Buffer_pool.write pool id (Node.encode ~page_size node);
        parents := Entry.make (Node.mbr node) id :: !parents;
        filled := 0
      end
    in
    Entry.File.iter sorted (fun e ->
        chunk.(!filled) <- e;
        incr filled;
        if !filled = cap then flush ());
    flush ();
    let leaves = Array.of_list (List.rev !parents) in
    let rec up level height =
      if Array.length level = 1 then (Entry.id level.(0), height)
      else up (Pack.pack_level pool ~kind:Node.Internal level) (height + 1)
    in
    let root, height = up leaves 1 in
    Rtree.of_root ~pool ~root ~height ~count:n
  end

let hilbert_cmp key world a b =
  let c = Int.compare (key ~world a) (key ~world b) in
  if c <> 0 then c else Entry.compare_dim 0 a b

let load_hilbert ~variant pool ~mem_records file =
  let name = match variant with `H -> "ext.load_h" | `H4 -> "ext.load_h4" in
  Trace.with_span name
    ~args:[ ("n", Trace.Int (Entry.File.length file)) ]
    (fun () ->
      let key =
        match variant with `H -> Bulk_hilbert.hilbert2d_key | `H4 -> Bulk_hilbert.hilbert4d_key
      in
      let world = world_of_file file in
      let sorted =
        Trace.with_span "ext.hilbert.sort" (fun () ->
            Entry.File.sort ~mem_records ~cmp:(hilbert_cmp key world) file)
      in
      let tree = Trace.with_span "ext.hilbert.pack" (fun () -> pack_sorted_file pool sorted) in
      Entry.File.destroy sorted;
      tree)

let load_h pool ~mem_records file = load_hilbert ~variant:`H pool ~mem_records file
let load_h4 pool ~mem_records file = load_hilbert ~variant:`H4 pool ~mem_records file

(* --- external STR --- *)

let center_x_cmp a b =
  let ax, _ = Rect.center (Entry.rect a) and bx, _ = Rect.center (Entry.rect b) in
  let c = Float.compare ax bx in
  if c <> 0 then c else Entry.compare_dim 0 a b

let center_y_cmp a b =
  let _, ay = Rect.center (Entry.rect a) and _, by = Rect.center (Entry.rect b) in
  let c = Float.compare ay by in
  if c <> 0 then c else Entry.compare_dim 1 a b

(* Sort-Tile-Recursive externally: one x-sort, a distribution scan into
   vertical slab files, one y-sort per slab, then packing in slab order.
   Upper levels (N/B entries) are re-tiled in memory, matching the
   in-memory loader. *)
let load_str pool ~mem_records file =
  Trace.with_span "ext.load_str"
    ~args:[ ("n", Trace.Int (Entry.File.length file)) ]
  @@ fun () ->
  let pager = Buffer_pool.pager pool in
  let page_size = Pager.page_size pager in
  let cap = Node.capacity ~page_size in
  let n = Entry.File.length file in
  if n = 0 then Rtree.create_empty pool
  else begin
    let by_x =
      Trace.with_span "ext.str.sort_x" (fun () ->
          Entry.File.sort ~mem_records ~cmp:center_x_cmp file)
    in
    let nleaves = (n + cap - 1) / cap in
    let slabs = int_of_float (Float.ceil (sqrt (float_of_int nleaves))) in
    let per_slab = slabs * cap in
    (* Distribute the x-order into consecutive slab files. *)
    let ordered = Entry.File.create pager in
    let slab = ref (Entry.File.create pager) in
    let in_slab = ref 0 in
    let flush_slab () =
      if !in_slab > 0 then begin
        Entry.File.seal !slab;
        let sorted = Entry.File.sort ~mem_records ~cmp:center_y_cmp !slab in
        Entry.File.iter sorted (Entry.File.append ordered);
        Entry.File.destroy sorted;
        Entry.File.destroy !slab;
        slab := Entry.File.create pager;
        in_slab := 0
      end
    in
    Trace.with_span "ext.str.slabs" (fun () ->
        Entry.File.iter by_x (fun e ->
            Entry.File.append !slab e;
            incr in_slab;
            if !in_slab = per_slab then flush_slab ());
        flush_slab ());
    Entry.File.destroy !slab;
    Entry.File.destroy by_x;
    Entry.File.seal ordered;
    (* Pack leaves from the tiled order; upper levels pack sequentially
       in that same order (the in-memory loader re-tiles each level,
       a refinement that matters little above the leaves). *)
    let tree = Trace.with_span "ext.str.pack" (fun () -> pack_sorted_file pool ordered) in
    Entry.File.destroy ordered;
    tree
  end

(* --- external TGS --- *)

let pow_int base e =
  let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
  go 1 e

let height_for ~cap n =
  let rec go h reach = if reach >= n then h else go (h + 1) (reach * cap) in
  go 1 cap

(* Per-unit segment MBRs of a sorted file: one scan, O(n/unit) memory. *)
let segment_mbrs ~unit file =
  let n = Entry.File.length file in
  let nsegs = (n + unit - 1) / unit in
  let segs = Array.make nsegs None in
  let idx = ref 0 in
  Entry.File.iter file (fun e ->
      let s = !idx / unit in
      segs.(s) <-
        Some (match segs.(s) with None -> Entry.rect e | Some m -> Rect.union m (Entry.rect e));
      incr idx);
  Array.map (function Some m -> m | None -> assert false) segs

(* Best binary cut over the four orderings: minimizes the sum of the two
   bounding-box areas; cuts fall on multiples of [unit]. Returns
   (dimension, records in the left part). *)
let best_cut ~unit files =
  let best = ref None in
  Array.iteri
    (fun dim file ->
      let segs = segment_mbrs ~unit file in
      let nsegs = Array.length segs in
      if nsegs >= 2 then begin
        let prefix = Array.make nsegs segs.(0) in
        for i = 1 to nsegs - 1 do
          prefix.(i) <- Rect.union prefix.(i - 1) segs.(i)
        done;
        let suffix = Array.make nsegs segs.(nsegs - 1) in
        for i = nsegs - 2 downto 0 do
          suffix.(i) <- Rect.union suffix.(i + 1) segs.(i)
        done;
        for c = 1 to nsegs - 1 do
          let cost = Rect.area prefix.(c - 1) +. Rect.area suffix.(c) in
          match !best with
          | Some (best_cost, _, _) when best_cost <= cost -> ()
          | _ -> best := Some (cost, dim, c * unit)
        done
      end)
    files;
  match !best with Some (_, dim, cut) -> (dim, cut) | None -> invalid_arg "Ext_load.best_cut"

(* Split all four sorted files at the cut: the winning dimension's file
   splits positionally; the others are routed by comparison with the
   boundary entry (total order, so the two sides are exactly the same
   sets). Consumes the input files. *)
let split_files pager ~dim ~cut files =
  let boundary = ref None in
  let idx = ref 0 in
  (* Fetch the boundary = last entry of the left part in [dim] order. *)
  Entry.File.iter files.(dim) (fun e ->
      if !idx = cut - 1 then boundary := Some e;
      incr idx);
  let boundary = match !boundary with Some b -> b | None -> assert false in
  let goes_left e = Entry.compare_dim dim e boundary <= 0 in
  let pair =
    Array.map
      (fun file ->
        let left = Entry.File.create pager and right = Entry.File.create pager in
        Entry.File.iter file (fun e ->
            if goes_left e then Entry.File.append left e else Entry.File.append right e);
        Entry.File.seal left;
        Entry.File.seal right;
        Entry.File.destroy file;
        (left, right))
      files
  in
  (Array.map fst pair, Array.map snd pair)

let load_tgs pool ~mem_records file =
  Trace.with_span "ext.load_tgs"
    ~args:[ ("n", Trace.Int (Entry.File.length file)) ]
  @@ fun () ->
  let pager = Buffer_pool.pager pool in
  let page_size = Pager.page_size pager in
  let cap = Node.capacity ~page_size in
  let n = Entry.File.length file in
  if n = 0 then Rtree.create_empty pool
  else begin
    let write kind node_entries =
      let node = Node.make kind node_entries in
      let id = Buffer_pool.alloc pool in
      Buffer_pool.write pool id (Node.encode ~page_size node);
      Entry.make (Node.mbr node) id
    in
    (* Greedy binary partitioning down to groups of at most [unit]. *)
    let rec partition ~unit files n groups =
      if n <= unit then (files, n) :: groups
      else begin
        let dim, cut = best_cut ~unit files in
        let left, right = split_files pager ~dim ~cut files in
        partition ~unit left cut (partition ~unit right (n - cut) groups)
      end
    in
    let rec build files n ~height =
      if height = 1 then begin
        let entries = Entry.File.read_all files.(0) in
        Array.iter Entry.File.destroy files;
        write Node.Leaf entries
      end
      else begin
        let unit = pow_int cap (height - 1) in
        let groups = partition ~unit files n [] in
        let children = List.map (fun (fs, gn) -> build fs gn ~height:(height - 1)) groups in
        write Node.Internal (Array.of_list children)
      end
    in
    (* Four initial sorted copies; the input file is left intact. *)
    let sorted =
      Trace.with_span "ext.tgs.sort" (fun () ->
          Array.init 4 (fun d -> Entry.File.sort ~mem_records ~cmp:(Entry.compare_dim d) file))
    in
    let height = height_for ~cap n in
    let root = Trace.with_span "ext.tgs.build" (fun () -> build sorted n ~height) in
    Rtree.of_root ~pool ~root:(Entry.id root) ~height ~count:n
  end
