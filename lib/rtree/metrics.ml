(* Structural quality metrics for R-trees: the quantities the heuristics
   in this repository try to optimize (total area, margin) or avoid
   (overlap among siblings).  Window-query cost intuitively tracks
   sibling overlap — these metrics make "tree A is tighter than tree B"
   quantifiable without running queries, and power the bench ablations
   and a few tests. *)

module Rect = Prt_geom.Rect

type level = {
  depth : int;            (* root = 1 *)
  nodes : int;
  entries : int;
  area : float;           (* sum of node MBR areas on this level *)
  margin : float;         (* sum of node MBR margins *)
  sibling_overlap : float;(* sum of pairwise overlap areas among same-parent nodes *)
}

type t = {
  levels : level list;    (* ordered root to leaves *)
  height : int;
  leaf_area : float;
  leaf_overlap : float;
  dead_space : float;     (* leaf area minus area actually covered by data MBRs, >= 0 modulo data overlap *)
}

let pairwise_overlap entries =
  let n = Array.length entries in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      acc := !acc +. Rect.overlap_area (Entry.rect entries.(i)) (Entry.rect entries.(j))
    done
  done;
  !acc

let analyze tree =
  let height = Rtree.height tree in
  let stats = Array.init height (fun i -> (ref 0, ref 0, ref 0.0, ref 0.0, ref 0.0, i + 1)) in
  let data_area = ref 0.0 in
  Rtree.iter_nodes tree ~f:(fun ~depth ~id:_ node ->
      let nodes, entries, area, margin, _overlap, _ = stats.(depth - 1) in
      incr nodes;
      entries := !entries + Node.length node;
      if Node.length node > 0 then begin
        let box = Node.mbr node in
        area := !area +. Rect.area box;
        margin := !margin +. Rect.margin box
      end;
      (match Node.kind node with
      | Node.Internal ->
          (* Overlap among this node's children (who are siblings). *)
          if depth < height then begin
            let _, _, _, _, child_overlap, _ = stats.(depth) in
            child_overlap := !child_overlap +. pairwise_overlap (Node.entries node)
          end
      | Node.Leaf ->
          Array.iter (fun e -> data_area := !data_area +. Rect.area (Entry.rect e)) (Node.entries node)));
  let levels =
    Array.to_list stats
    |> List.map (fun (nodes, entries, area, margin, overlap, depth) ->
           {
             depth;
             nodes = !nodes;
             entries = !entries;
             area = !area;
             margin = !margin;
             sibling_overlap = !overlap;
           })
  in
  let leaf = List.nth levels (height - 1) in
  {
    levels;
    height;
    leaf_area = leaf.area;
    leaf_overlap = leaf.sibling_overlap;
    dead_space = Float.max 0.0 (leaf.area -. !data_area);
  }

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun l ->
      Format.fprintf ppf "level %d: %d nodes, %d entries, area %.4f, margin %.2f, overlap %.6f@,"
        l.depth l.nodes l.entries l.area l.margin l.sibling_overlap)
    m.levels;
  Format.fprintf ppf "leaf dead space %.4f@]" m.dead_space
