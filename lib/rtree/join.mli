(** Spatial join by synchronized R-tree traversal (Brinkhoff–Kriegel–
    Seeger): all intersecting pairs between two indexed sets, in
    O(output + overlapping-node pairs) page reads. *)

type stats = {
  mutable nodes_read_left : int;
  mutable nodes_read_right : int;
  mutable pairs : int;
}

val pairs : ?window:Prt_geom.Rect.t -> Rtree.t -> Rtree.t -> f:(Entry.t -> Entry.t -> unit) -> stats
(** [pairs tl tr ~f] calls [f l r] for every pair of stored entries with
    intersecting rectangles, optionally restricted to a window. The two
    trees may have different heights (and may share a buffer pool). *)

val pairs_list : ?window:Prt_geom.Rect.t -> Rtree.t -> Rtree.t -> (Entry.t * Entry.t) list * stats

val self_pairs : Rtree.t -> f:(Entry.t -> Entry.t -> unit) -> stats
(** Intersecting pairs within one tree; each unordered pair is reported
    once (with [Entry.id l < Entry.id r]), self-pairs skipped. The
    returned [pairs] field counts unordered pairs. *)
