(* Top-down Greedy Split bulk loading (García, López, Leutenegger) —
   the strongest query-time baseline in the paper.

   To build a node over n rectangles, the set is repeatedly bisected
   until it falls apart into at most B groups of [unit] rectangles each,
   where [unit] is the largest power of B below n (footnote 1 of the
   paper: subtree sizes are rounded to powers of B, so one node per
   level, including the root, may be underfull).  Each bisection
   considers the four orderings by xmin, ymin, xmax and ymax and every
   cut at a multiple of [unit], and greedily picks the cut minimizing the
   sum of the two resulting bounding-box areas.  Every child is built to
   the same target height so all leaves share a level; a group smaller
   than its sibling subtrees becomes a thin chain of single-child
   nodes. *)

module Rect = Prt_geom.Rect
module Buffer_pool = Prt_storage.Buffer_pool
module Pager = Prt_storage.Pager

(* Exact integer power; heights are small so overflow is not a concern
   at realistic B and n. *)
let pow_int base e =
  let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
  go 1 e

let height_for ~cap n =
  let rec go h reach = if reach >= n then h else go (h + 1) (reach * cap) in
  go 1 cap

(* Bounding boxes of the ordered prefixes/suffixes at cut positions
   [unit, 2*unit, ...]: one O(n) sweep each. *)
let cut_costs ~unit sorted =
  let n = Array.length sorted in
  let ncuts = (n - 1) / unit in
  let prefix = Array.make ncuts (Entry.rect sorted.(0)) in
  let acc = ref (Entry.rect sorted.(0)) in
  for i = 1 to (ncuts * unit) - 1 do
    acc := Rect.union !acc (Entry.rect sorted.(i));
    if (i + 1) mod unit = 0 then prefix.((i + 1) / unit - 1) <- !acc
  done;
  let suffix = Array.make ncuts (Entry.rect sorted.(n - 1)) in
  let acc = ref (Entry.rect sorted.(n - 1)) in
  for i = n - 2 downto unit do
    acc := Rect.union !acc (Entry.rect sorted.(i));
    if i mod unit = 0 && i / unit <= ncuts then suffix.((i / unit) - 1) <- !acc
  done;
  (prefix, suffix)

(* Greedily bisect [set] into groups of at most [unit] entries. *)
let rec partition ~unit set groups =
  let n = Array.length set in
  if n <= unit then set :: groups
  else begin
    let best = ref None in
    for dim = 0 to 3 do
      let sorted = Array.copy set in
      Array.sort (Entry.compare_dim dim) sorted;
      let prefix, suffix = cut_costs ~unit sorted in
      Array.iteri
        (fun c pre ->
          let cost = Rect.area pre +. Rect.area suffix.(c) in
          match !best with
          | Some (best_cost, _, _) when best_cost <= cost -> ()
          | _ -> best := Some (cost, sorted, (c + 1) * unit))
        prefix
    done;
    match !best with
    | None -> assert false (* n > unit implies at least one cut *)
    | Some (_, sorted, cut) ->
        let left = Array.sub sorted 0 cut in
        let right = Array.sub sorted cut (n - cut) in
        partition ~unit left (partition ~unit right groups)
  end

let load pool entries =
  Prt_obs.Trace.with_span "tgs.build"
    ~args:[ ("n", Prt_obs.Trace.Int (Array.length entries)) ]
  @@ fun () ->
  let page_size = Pager.page_size (Buffer_pool.pager pool) in
  let cap = Node.capacity ~page_size in
  if Array.length entries = 0 then Rtree.create_empty pool
  else begin
    let write kind node_entries =
      let node = Node.make kind node_entries in
      let id = Buffer_pool.alloc pool in
      Buffer_pool.write pool id (Node.encode ~page_size node);
      Entry.make (Node.mbr node) id
    in
    (* Build a subtree of exactly [height] levels over [set]. *)
    let rec build set ~height =
      if height = 1 then write Node.Leaf set
      else begin
        let unit = pow_int cap (height - 1) in
        let groups = partition ~unit set [] in
        let children = List.map (fun g -> build g ~height:(height - 1)) groups in
        write Node.Internal (Array.of_list children)
      end
    in
    let height = height_for ~cap (Array.length entries) in
    let root = build entries ~height in
    Rtree.of_root ~pool ~root:(Entry.id root) ~height ~count:(Array.length entries)
  end
