(* Node split algorithms for dynamic R-tree updates: Guttman's linear
   and quadratic splits and the R*-tree split.  The paper updates
   bulk-loaded trees "using the standard R-tree updating algorithms";
   these are those algorithms. *)

module Rect = Prt_geom.Rect

type algorithm = Linear | Quadratic | Rstar

let algorithm_name = function Linear -> "linear" | Quadratic -> "quadratic" | Rstar -> "rstar"

let mbr_of entries lo hi = Rect.union_map ~lo ~hi ~f:Entry.rect entries

(* --- Guttman's seed-and-distribute splits ---

   Linear and quadratic split differ only in how the two seeds are
   picked and how the next entry to place is chosen; the distribution
   loop (including the force-assignment needed to respect min_fill) is
   shared. *)

type groups = {
  mutable b1 : Rect.t;
  mutable b2 : Rect.t;
  mutable l1 : Entry.t list;
  mutable l2 : Entry.t list;
  mutable n1 : int;
  mutable n2 : int;
}

let distribute ~min_fill ~pick_next entries seed1 seed2 =
  let n = Array.length entries in
  let g =
    {
      b1 = Entry.rect entries.(seed1);
      b2 = Entry.rect entries.(seed2);
      l1 = [ entries.(seed1) ];
      l2 = [ entries.(seed2) ];
      n1 = 1;
      n2 = 1;
    }
  in
  let assigned = Array.make n false in
  assigned.(seed1) <- true;
  assigned.(seed2) <- true;
  let remaining = ref (n - 2) in
  let take_1 i =
    g.l1 <- entries.(i) :: g.l1;
    g.b1 <- Rect.union g.b1 (Entry.rect entries.(i));
    g.n1 <- g.n1 + 1;
    assigned.(i) <- true;
    decr remaining
  and take_2 i =
    g.l2 <- entries.(i) :: g.l2;
    g.b2 <- Rect.union g.b2 (Entry.rect entries.(i));
    g.n2 <- g.n2 + 1;
    assigned.(i) <- true;
    decr remaining
  in
  while !remaining > 0 do
    if g.n1 + !remaining <= min_fill then
      Array.iteri (fun i _ -> if not assigned.(i) then take_1 i) entries
    else if g.n2 + !remaining <= min_fill then
      Array.iteri (fun i _ -> if not assigned.(i) then take_2 i) entries
    else begin
      let i = pick_next g assigned in
      let r = Entry.rect entries.(i) in
      let d1 = Rect.enlargement g.b1 r and d2 = Rect.enlargement g.b2 r in
      if d1 < d2 then take_1 i
      else if d2 < d1 then take_2 i
      else if Rect.area g.b1 < Rect.area g.b2 then take_1 i
      else if Rect.area g.b2 < Rect.area g.b1 then take_2 i
      else if g.n1 <= g.n2 then take_1 i
      else take_2 i
    end
  done;
  (Array.of_list g.l1, Array.of_list g.l2)

let quadratic ~min_fill entries =
  let n = Array.length entries in
  (* PickSeeds: the pair wasting the most area. *)
  let seed1 = ref 0 and seed2 = ref 1 and worst = ref neg_infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ri = Entry.rect entries.(i) and rj = Entry.rect entries.(j) in
      let waste = Rect.area (Rect.union ri rj) -. Rect.area ri -. Rect.area rj in
      if waste > !worst then begin
        worst := waste;
        seed1 := i;
        seed2 := j
      end
    done
  done;
  (* PickNext: strongest preference for one group over the other. *)
  let pick_next g assigned =
    let pick = ref (-1) and pick_diff = ref neg_infinity in
    Array.iteri
      (fun i e ->
        if not assigned.(i) then begin
          let r = Entry.rect e in
          let diff = Float.abs (Rect.enlargement g.b1 r -. Rect.enlargement g.b2 r) in
          if diff > !pick_diff then begin
            pick_diff := diff;
            pick := i
          end
        end)
      entries;
    !pick
  in
  distribute ~min_fill ~pick_next entries !seed1 !seed2

let linear ~min_fill entries =
  (* LinearPickSeeds: greatest separation normalized by axis width. *)
  let best_sep = ref neg_infinity and seed1 = ref 0 and seed2 = ref 1 in
  let consider lo_of hi_of =
    (* Entry with the highest low side and the one with the lowest high
       side, against the total width of the axis. *)
    let hi_lo = ref 0 and lo_hi = ref 0 in
    let wmin = ref infinity and wmax = ref neg_infinity in
    Array.iteri
      (fun i e ->
        let r = Entry.rect e in
        if lo_of r > lo_of (Entry.rect entries.(!hi_lo)) then hi_lo := i;
        if hi_of r < hi_of (Entry.rect entries.(!lo_hi)) then lo_hi := i;
        wmin := Float.min !wmin (lo_of r);
        wmax := Float.max !wmax (hi_of r))
      entries;
    let width = !wmax -. !wmin in
    let sep = lo_of (Entry.rect entries.(!hi_lo)) -. hi_of (Entry.rect entries.(!lo_hi)) in
    let normalized = if width > 0.0 then sep /. width else neg_infinity in
    if normalized > !best_sep && !hi_lo <> !lo_hi then begin
      best_sep := normalized;
      seed1 := !hi_lo;
      seed2 := !lo_hi
    end
  in
  consider Rect.xmin Rect.xmax;
  consider Rect.ymin Rect.ymax;
  if !seed1 = !seed2 then seed2 := if !seed1 = 0 then 1 else 0;
  (* PickNext: any unassigned entry, in array order. *)
  let pick_next _g assigned =
    let pick = ref (-1) in
    (try
       Array.iteri
         (fun i _ ->
           if not assigned.(i) then begin
             pick := i;
             raise Exit
           end)
         entries
     with Exit -> ());
    !pick
  in
  distribute ~min_fill ~pick_next entries !seed1 !seed2

(* --- R* split --- *)

let rstar ~min_fill entries =
  let n = Array.length entries in
  let fold_distributions sorted init f =
    let acc = ref init in
    for k = min_fill to n - min_fill do
      acc := f !acc sorted k
    done;
    !acc
  in
  let margin_sum sorted =
    fold_distributions sorted 0.0 (fun acc s k ->
        acc +. Rect.margin (mbr_of s 0 k) +. Rect.margin (mbr_of s k n))
  in
  let axis_sorts axis =
    let by_lo = Array.copy entries and by_hi = Array.copy entries in
    Array.sort (Entry.compare_dim axis) by_lo;
    Array.sort (Entry.compare_dim (axis + 2)) by_hi;
    [ by_lo; by_hi ]
  in
  (* ChooseSplitAxis: minimize the margin sum over all distributions. *)
  let x_sorts = axis_sorts 0 and y_sorts = axis_sorts 1 in
  let total_margin sorts = List.fold_left (fun acc s -> acc +. margin_sum s) 0.0 sorts in
  let sorts = if total_margin x_sorts <= total_margin y_sorts then x_sorts else y_sorts in
  (* ChooseSplitIndex: minimize overlap, then total area. *)
  let best = ref None in
  List.iter
    (fun sorted ->
      fold_distributions sorted () (fun () s k ->
          let m1 = mbr_of s 0 k and m2 = mbr_of s k n in
          let overlap = Rect.overlap_area m1 m2 in
          let area = Rect.area m1 +. Rect.area m2 in
          let better =
            match !best with
            | None -> true
            | Some (o, a, _, _) -> overlap < o || (overlap = o && area < a)
          in
          if better then best := Some (overlap, area, s, k)))
    sorts;
  match !best with
  | None -> assert false (* min_fill <= n/2 guarantees a distribution *)
  | Some (_, _, sorted, k) -> (Array.sub sorted 0 k, Array.sub sorted k (n - k))

let split algorithm ~min_fill entries =
  let n = Array.length entries in
  if n < 2 then invalid_arg "Split.split: need at least two entries";
  let min_fill = max 1 (min min_fill (n / 2)) in
  match algorithm with
  | Quadratic -> quadratic ~min_fill entries
  | Linear -> linear ~min_fill entries
  | Rstar -> rstar ~min_fill entries
