(* On-page R-tree node format.

   Layout: byte 0 the node kind, bytes 1-2 the entry count (LE), then
   [count] packed 36-byte entries, all within the page payload (the
   storage layer reserves a 16-byte integrity trailer at the end of
   every page).  With the default 4 KB page this leaves room for
   (4096 - 16 - 3) / 36 = 113 entries — the paper's fanout. *)

module Rect = Prt_geom.Rect
module Page = Prt_storage.Page

type kind = Leaf | Internal

type t = { kind : kind; entries : Entry.t array }

let header_size = 3

let capacity ~page_size = (Page.payload_size page_size - header_size) / Entry.size

let kind t = t.kind
let entries t = t.entries
let length t = Array.length t.entries

let make kind entries =
  if Array.length entries > 0xFFFF then invalid_arg "Node.make: too many entries";
  { kind; entries }

let mbr t =
  if length t = 0 then invalid_arg "Node.mbr: empty node";
  Rect.union_map ~f:Entry.rect t.entries

let encode ~page_size t =
  if length t > capacity ~page_size then invalid_arg "Node.encode: node exceeds page capacity";
  let buf = Page.create page_size in
  Page.set_u8 buf 0 (match t.kind with Leaf -> 0 | Internal -> 1);
  Page.set_u16 buf 1 (length t);
  Array.iteri (fun i e -> Entry.write buf (header_size + (i * Entry.size)) e) t.entries;
  buf

let decode buf =
  let kind =
    match Page.get_u8 buf 0 with
    | 0 -> Leaf
    | 1 -> Internal
    | k -> invalid_arg (Printf.sprintf "Node.decode: bad node kind %d" k)
  in
  let count = Page.get_u16 buf 1 in
  let entries = Array.init count (fun i -> Entry.read buf (header_size + (i * Entry.size))) in
  { kind; entries }

(* --- zero-copy cursors ---

   The query hot loop used to [decode] a full [Entry.t array] on every
   node visit; these cursors instead test the window against the packed
   coordinates in the page bytes and materialize heap values only for
   what survives the test.  The float comparisons are bit-identical to
   [Rect.intersects] on the decoded rectangle (both read the same
   little-endian float64 fields), so results and visit counts are
   unchanged — only the allocations go away. *)

let page_kind buf =
  match Page.get_u8 buf 0 with
  | 0 -> Leaf
  | 1 -> Internal
  | k -> invalid_arg (Printf.sprintf "Node.page_kind: bad node kind %d" k)

let page_length buf = Page.get_u16 buf 1

let iter_rects buf window ~f =
  let wxmin = Rect.xmin window and wymin = Rect.ymin window in
  let wxmax = Rect.xmax window and wymax = Rect.ymax window in
  let n = page_length buf in
  let hits = ref 0 in
  for i = 0 to n - 1 do
    let off = header_size + (i * Entry.size) in
    let exmin = Page.get_f64 buf off in
    let exmax = Page.get_f64 buf (off + 16) in
    if exmin <= wxmax && wxmin <= exmax then begin
      let eymin = Page.get_f64 buf (off + 8) in
      let eymax = Page.get_f64 buf (off + 24) in
      if eymin <= wymax && wymin <= eymax then begin
        incr hits;
        f (Entry.read buf off)
      end
    end
  done;
  !hits

let iter_children buf window ~f =
  let wxmin = Rect.xmin window and wymin = Rect.ymin window in
  let wxmax = Rect.xmax window and wymax = Rect.ymax window in
  let n = page_length buf in
  for i = 0 to n - 1 do
    let off = header_size + (i * Entry.size) in
    let exmin = Page.get_f64 buf off in
    let exmax = Page.get_f64 buf (off + 16) in
    if exmin <= wxmax && wxmin <= exmax then begin
      let eymin = Page.get_f64 buf (off + 8) in
      let eymax = Page.get_f64 buf (off + 24) in
      if eymin <= wymax && wymin <= eymax then f (Page.get_i32 buf (off + 32))
    end
  done

let iter_entry_rects buf ~f =
  let n = page_length buf in
  for i = 0 to n - 1 do
    let off = header_size + (i * Entry.size) in
    let xmin = Page.get_f64 buf off in
    let ymin = Page.get_f64 buf (off + 8) in
    let xmax = Page.get_f64 buf (off + 16) in
    let ymax = Page.get_f64 buf (off + 24) in
    f (Rect.make ~xmin ~ymin ~xmax ~ymax) (Page.get_i32 buf (off + 32))
  done
