(* On-page R-tree node format.

   Layout: byte 0 the node kind, bytes 1-2 the entry count (LE), then
   [count] packed 36-byte entries, all within the page payload (the
   storage layer reserves a 16-byte integrity trailer at the end of
   every page).  With the default 4 KB page this leaves room for
   (4096 - 16 - 3) / 36 = 113 entries — the paper's fanout. *)

module Rect = Prt_geom.Rect
module Page = Prt_storage.Page

type kind = Leaf | Internal

type t = { kind : kind; entries : Entry.t array }

let header_size = 3

let capacity ~page_size = (Page.payload_size page_size - header_size) / Entry.size

let kind t = t.kind
let entries t = t.entries
let length t = Array.length t.entries

let make kind entries =
  if Array.length entries > 0xFFFF then invalid_arg "Node.make: too many entries";
  { kind; entries }

let mbr t =
  if length t = 0 then invalid_arg "Node.mbr: empty node";
  Rect.union_map ~f:Entry.rect t.entries

let encode ~page_size t =
  if length t > capacity ~page_size then invalid_arg "Node.encode: node exceeds page capacity";
  let buf = Page.create page_size in
  Page.set_u8 buf 0 (match t.kind with Leaf -> 0 | Internal -> 1);
  Page.set_u16 buf 1 (length t);
  Array.iteri (fun i e -> Entry.write buf (header_size + (i * Entry.size)) e) t.entries;
  buf

let decode buf =
  let kind =
    match Page.get_u8 buf 0 with
    | 0 -> Leaf
    | 1 -> Internal
    | k -> invalid_arg (Printf.sprintf "Node.decode: bad node kind %d" k)
  in
  let count = Page.get_u16 buf 1 in
  let entries = Array.init count (fun i -> Entry.read buf (header_size + (i * Entry.size))) in
  { kind; entries }

(* --- zero-copy cursors ---

   The query hot loop used to [decode] a full [Entry.t array] on every
   node visit; these cursors instead test the window against the packed
   coordinates in the page bytes and materialize heap values only for
   what survives the test.  The float comparisons are bit-identical to
   [Rect.intersects] on the decoded rectangle (both read the same
   little-endian float64 fields), so results and visit counts are
   unchanged — only the allocations go away. *)

let page_kind buf =
  match Page.get_u8 buf 0 with
  | 0 -> Leaf
  | 1 -> Internal
  | k -> invalid_arg (Printf.sprintf "Node.page_kind: bad node kind %d" k)

let page_length buf = Page.get_u16 buf 1

let iter_rects buf window ~f =
  let wxmin = Rect.xmin window and wymin = Rect.ymin window in
  let wxmax = Rect.xmax window and wymax = Rect.ymax window in
  let n = page_length buf in
  let hits = ref 0 in
  for i = 0 to n - 1 do
    let off = header_size + (i * Entry.size) in
    let exmin = Page.get_f64 buf off in
    let exmax = Page.get_f64 buf (off + 16) in
    if exmin <= wxmax && wxmin <= exmax then begin
      let eymin = Page.get_f64 buf (off + 8) in
      let eymax = Page.get_f64 buf (off + 24) in
      if eymin <= wymax && wymin <= eymax then begin
        incr hits;
        f (Entry.read buf off)
      end
    end
  done;
  !hits

let iter_children buf window ~f =
  let wxmin = Rect.xmin window and wymin = Rect.ymin window in
  let wxmax = Rect.xmax window and wymax = Rect.ymax window in
  let n = page_length buf in
  for i = 0 to n - 1 do
    let off = header_size + (i * Entry.size) in
    let exmin = Page.get_f64 buf off in
    let exmax = Page.get_f64 buf (off + 16) in
    if exmin <= wxmax && wxmin <= exmax then begin
      let eymin = Page.get_f64 buf (off + 8) in
      let eymax = Page.get_f64 buf (off + 24) in
      if eymin <= wymax && wymin <= eymax then f (Page.get_i32 buf (off + 32))
    end
  done

(* --- mapped cursors ---

   The same zero-copy scans over a mapped window of the whole index
   file ({!Prt_storage.View}), addressed by the page's absolute byte
   offset.  Float loads come straight out of the mapping (unboxed C
   stub), so a node visit on the mmap backend costs no syscall, no
   lock, no copy and no decode — and, for entries that fail the window
   test, no allocation either.  The comparisons are bit-identical to
   {!iter_rects}/{!iter_children}: both decode the same little-endian
   float64 fields, so results and visit counts match the pread path
   byte for byte. *)

module View = Prt_storage.View

let map_kind m ~base =
  match View.get_u8 m base with
  | 0 -> Leaf
  | 1 -> Internal
  | k -> invalid_arg (Printf.sprintf "Node.map_kind: bad node kind %d" k)

let map_length m ~base = View.get_u16 m (base + 1)

let map_read_entry m off =
  let xmin = View.get_f64 m off in
  let ymin = View.get_f64 m (off + 8) in
  let xmax = View.get_f64 m (off + 16) in
  let ymax = View.get_f64 m (off + 24) in
  Entry.make (Rect.make ~xmin ~ymin ~xmax ~ymax) (View.get_i32 m (off + 32))

let map_iter_rects m ~base window ~f =
  let wxmin = Rect.xmin window and wymin = Rect.ymin window in
  let wxmax = Rect.xmax window and wymax = Rect.ymax window in
  let n = map_length m ~base in
  let hits = ref 0 in
  for i = 0 to n - 1 do
    let off = base + header_size + (i * Entry.size) in
    let exmin = View.get_f64 m off in
    let exmax = View.get_f64 m (off + 16) in
    if exmin <= wxmax && wxmin <= exmax then begin
      let eymin = View.get_f64 m (off + 8) in
      let eymax = View.get_f64 m (off + 24) in
      if eymin <= wymax && wymin <= eymax then begin
        incr hits;
        f (map_read_entry m off)
      end
    end
  done;
  !hits

let map_iter_children m ~base window ~f =
  let wxmin = Rect.xmin window and wymin = Rect.ymin window in
  let wxmax = Rect.xmax window and wymax = Rect.ymax window in
  let n = map_length m ~base in
  for i = 0 to n - 1 do
    let off = base + header_size + (i * Entry.size) in
    let exmin = View.get_f64 m off in
    let exmax = View.get_f64 m (off + 16) in
    if exmin <= wxmax && wxmin <= exmax then begin
      let eymin = View.get_f64 m (off + 8) in
      let eymax = View.get_f64 m (off + 24) in
      if eymin <= wymax && wymin <= eymax then f (View.get_i32 m (off + 32))
    end
  done

let iter_entry_rects buf ~f =
  let n = page_length buf in
  for i = 0 to n - 1 do
    let off = header_size + (i * Entry.size) in
    let xmin = Page.get_f64 buf off in
    let ymin = Page.get_f64 buf (off + 8) in
    let xmax = Page.get_f64 buf (off + 16) in
    let ymax = Page.get_f64 buf (off + 24) in
    f (Rect.make ~xmin ~ymin ~xmax ~ymax) (Page.get_i32 buf (off + 32))
  done
