(* The paged R-tree: a handle over pages in a buffer pool, with the
   standard recursive window query and a structural validator.

   The tree itself is bulk-loading-agnostic — every loader (packed
   Hilbert, 4-D Hilbert, STR, TGS, PR) produces this same structure, and
   the dynamic update algorithms operate on it.  Queries count the nodes
   they visit per level; the paper's headline query metric ("number of
   I/Os with all internal nodes cached") is exactly [leaf_visited]. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Page = Prt_storage.Page
module Buffer_pool = Prt_storage.Buffer_pool
module Quarantine = Prt_storage.Quarantine
module View = Prt_storage.View
module Mmap_pager = Prt_storage.Mmap_pager
module Deadline = Prt_util.Deadline

type t = {
  pool : Buffer_pool.t;
  mutable root : int;
  mutable height : int; (* 1 = the root is a leaf *)
  mutable count : int;  (* data entries stored *)
  mutable mm : Mmap_pager.t option;
      (* the mmap read backend, when the index file is mapped — query
         descent then scans node pages directly in the mapping *)
}

type query_stats = {
  mutable internal_visited : int;
  mutable leaf_visited : int;
  mutable matched : int;
  mutable skipped_subtrees : int;
  mutable skipped_pages : int list;
  mutable timed_out : bool;
}

let fresh_stats () =
  {
    internal_visited = 0;
    leaf_visited = 0;
    matched = 0;
    skipped_subtrees = 0;
    skipped_pages = [];
    timed_out = false;
  }

let nodes_visited s = s.internal_visited + s.leaf_visited

(* Accumulate one component's descent into a combined record — the
   multi-component fan-out (Lsm, scatter-gather) merges per-component
   stats with this, then derives one honest [completeness] label: a
   timeout or skip anywhere taints the combined answer. *)
let merge_stats dst src =
  dst.internal_visited <- dst.internal_visited + src.internal_visited;
  dst.leaf_visited <- dst.leaf_visited + src.leaf_visited;
  dst.matched <- dst.matched + src.matched;
  dst.skipped_subtrees <- dst.skipped_subtrees + src.skipped_subtrees;
  dst.skipped_pages <- List.rev_append src.skipped_pages dst.skipped_pages;
  dst.timed_out <- dst.timed_out || src.timed_out

(* The completeness contract: partiality is never silent.  A query that
   skipped anything (quarantined page, fresh damage, deadline) says so
   here, and the skipped page ids say exactly where the hole is. *)
type completeness =
  | Complete
  | Partial of { skipped_pages : int list; skipped_subtrees : int }
  | Timed_out of { skipped_pages : int list; skipped_subtrees : int }

let completeness s =
  let skipped_pages = List.sort_uniq Int.compare s.skipped_pages in
  if s.timed_out then Timed_out { skipped_pages; skipped_subtrees = s.skipped_subtrees }
  else if s.skipped_subtrees > 0 then
    Partial { skipped_pages; skipped_subtrees = s.skipped_subtrees }
  else Complete

let complete s = completeness s = Complete

let pp_completeness ppf = function
  | Complete -> Fmt.string ppf "complete"
  | Partial { skipped_pages; skipped_subtrees } ->
      Fmt.pf ppf "partial (%d subtree%s skipped; pages %a)" skipped_subtrees
        (if skipped_subtrees = 1 then "" else "s")
        (Fmt.list ~sep:Fmt.comma Fmt.int) skipped_pages
  | Timed_out { skipped_pages; skipped_subtrees } ->
      Fmt.pf ppf "timed-out (%d subtree%s skipped%a)" skipped_subtrees
        (if skipped_subtrees = 1 then "" else "s")
        (fun ppf -> function
          | [] -> ()
          | ps -> Fmt.pf ppf "; pages %a" (Fmt.list ~sep:Fmt.comma Fmt.int) ps)
        skipped_pages

let pool t = t.pool
let pager t = Buffer_pool.pager t.pool
let root t = t.root
let height t = t.height
let count t = t.count
let page_size t = Pager.page_size (pager t)
let capacity t = Node.capacity ~page_size:(page_size t)

let set_root t ~root ~height =
  t.root <- root;
  t.height <- height

let set_count t count = t.count <- count

let read_node t id = Node.decode (Buffer_pool.read t.pool id)

(* The encoded page straight from the buffer pool — the zero-copy query
   paths scan it in place.  The buffer is the pool's cached copy: safe
   to hold across further *reads* (eviction never mutates an evicted
   buffer), but not across writes to the same page, so the cursor-based
   traversals require a read-only tree for their duration. *)
let read_page t id = Buffer_pool.read t.pool id

let free_node t id = Buffer_pool.free t.pool id

let write_node t id node =
  Buffer_pool.write t.pool id (Node.encode ~page_size:(page_size t) node)

let alloc_node t node =
  let id = Buffer_pool.alloc t.pool in
  write_node t id node;
  id

let create_empty pool =
  let page_size = Pager.page_size (Buffer_pool.pager pool) in
  let root = Buffer_pool.alloc pool in
  Buffer_pool.write pool root (Node.encode ~page_size (Node.make Node.Leaf [||]));
  { pool; root; height = 1; count = 0; mm = None }

let of_root ~pool ~root ~height ~count = { pool; root; height; count; mm = None }

let set_mmap t mm = t.mm <- mm
let mmap t = t.mm

(* Query metrics.  The registry stripes per domain, so these are ticked
   from whichever domain ran the descent — the single-domain path here
   and every [Qexec] worker share the same counters and the same
   recording helper, which is what makes multicore totals comparable to
   a sequential run.  [query.leaf_visits]/[query.internal_visits] count
   logical node reads of the descent (identical across execution modes
   for the same tree and windows, unlike physical pager reads, which
   depend on cache state). *)
let m_degraded = Prt_obs.Metrics.counter "resilience.queries_degraded"
let m_timed_out = Prt_obs.Metrics.counter "resilience.queries_timed_out"
let m_leaf_visits = Prt_obs.Metrics.counter "query.leaf_visits"
let m_internal_visits = Prt_obs.Metrics.counter "query.internal_visits"
let m_matched = Prt_obs.Metrics.counter "query.matched"
let m_latency = Prt_obs.Metrics.histogram "query.latency_us"

let record_query_stats ?latency_us stats =
  Prt_obs.Metrics.add m_leaf_visits stats.leaf_visited;
  Prt_obs.Metrics.add m_internal_visits stats.internal_visited;
  Prt_obs.Metrics.add m_matched stats.matched;
  (match latency_us with
  | Some us -> Prt_obs.Metrics.observe m_latency us
  | None -> ());
  if stats.timed_out then Prt_obs.Metrics.tick m_timed_out;
  if stats.skipped_subtrees > 0 || stats.timed_out then Prt_obs.Metrics.tick m_degraded

exception Deadline_exceeded
(* Local unwind for deadline expiry: the partial accumulator built so
   far is kept (results land through [f] as they match). *)

(* A pinned generation's tree, as produced by [Index_file.snapshot_view]:
   which committed generation to read pages at, and the root/height of
   that generation's tree (the live [t.root]/[t.height] may already
   belong to a newer commit). *)
type snapshot_view = { sv_gen : int; sv_root : int; sv_height : int }

(* Snapshot descent: committed page images of generation [sv_gen] via
   [Pager.read_shared ~gen], bypassing the single-domain buffer pool —
   safe on reader domains while a writer mutates the live tree through
   the pool.  Leaf vs internal is decided by depth against the
   snapshot's height (the page's kind byte would describe the *live*
   page, which may have been reallocated into another role).  Metrics
   for this path are recorded by the [query] wrapper — the striped
   registry is domain-safe, so reader domains tick their own stripes. *)
let query_snapshot ?quarantine ?deadline sv t window ~f =
  let pgr = pager t in
  let stats = fresh_stats () in
  let dl = Option.value deadline ~default:Deadline.none in
  let skip_subtree id =
    stats.skipped_subtrees <- stats.skipped_subtrees + 1;
    if not (List.mem id stats.skipped_pages) then
      stats.skipped_pages <- id :: stats.skipped_pages
  in
  let poison id reason =
    (match quarantine with Some q -> Quarantine.add q id reason | None -> ());
    skip_subtree id
  in
  let rec visit id depth =
    if Deadline.expired dl then begin
      stats.timed_out <- true;
      Prt_obs.Flight.point "resilience.deadline_expired" ~arg:id;
      raise_notrace Deadline_exceeded
    end;
    if (match quarantine with Some q -> Quarantine.mem q id | None -> false) then
      skip_subtree id
    else
      match Pager.read_shared ~gen:sv.sv_gen pgr id with
      | exception Pager.Corrupt_page _ when quarantine <> None -> poison id Quarantine.Corrupt
      | exception Pager.Io_error _ when quarantine <> None -> poison id Quarantine.Io_failed
      | buf ->
          if depth = sv.sv_height then begin
            stats.leaf_visited <- stats.leaf_visited + 1;
            stats.matched <- stats.matched + Node.iter_rects buf window ~f
          end
          else begin
            stats.internal_visited <- stats.internal_visited + 1;
            Node.iter_children buf window ~f:(fun cid -> visit cid (depth + 1))
          end
  in
  (try visit sv.sv_root 1 with Deadline_exceeded -> ());
  stats

(* Window query: recursively visit every node whose bounding box (as
   recorded in its parent) intersects the query.  The root is always
   visited.  The descent is zero-copy: each page is scanned in place
   through the {!Node} cursors, so only matching entries are
   materialized and no per-visit entry array is built.

   Without [quarantine]/[deadline] the historical fail-stop contract
   holds: a [Corrupt_page] propagates (no silent wrong answers).  With a
   [quarantine], damage degrades instead: the failing subtree is skipped
   and recorded, its page id quarantined so later queries do not
   re-touch the device, and the result is tagged via {!completeness}.
   The per-subtree catch is scoped to the page read alone — a failure
   deeper in the recursion is handled at its own level, never absorbed
   by an ancestor. *)
let pread_unrecorded ?quarantine ?deadline ?snapshot t window ~f =
  match snapshot with
  | Some sv -> query_snapshot ?quarantine ?deadline sv t window ~f
  | None ->
  let stats = fresh_stats () in
  match (quarantine, deadline) with
  | None, None ->
      let rec visit id =
        let buf = read_page t id in
        match Node.page_kind buf with
        | Node.Leaf ->
            stats.leaf_visited <- stats.leaf_visited + 1;
            stats.matched <- stats.matched + Node.iter_rects buf window ~f
        | Node.Internal ->
            stats.internal_visited <- stats.internal_visited + 1;
            Node.iter_children buf window ~f:visit
      in
      visit t.root;
      stats
  | _ ->
      let dl = Option.value deadline ~default:Deadline.none in
      let skip_subtree id =
        stats.skipped_subtrees <- stats.skipped_subtrees + 1;
        if not (List.mem id stats.skipped_pages) then
          stats.skipped_pages <- id :: stats.skipped_pages
      in
      let poison id reason =
        (match quarantine with Some q -> Quarantine.add q id reason | None -> ());
        skip_subtree id
      in
      let rec visit id =
        if Deadline.expired dl then begin
          stats.timed_out <- true;
          Prt_obs.Flight.point "resilience.deadline_expired" ~arg:id;
          raise_notrace Deadline_exceeded
        end;
        if (match quarantine with Some q -> Quarantine.mem q id | None -> false) then
          skip_subtree id
        else
          match read_page t id with
          | exception Pager.Corrupt_page _ -> poison id Quarantine.Corrupt
          | exception Pager.Io_error _ -> poison id Quarantine.Io_failed
          | buf -> (
              match Node.page_kind buf with
              | Node.Leaf ->
                  stats.leaf_visited <- stats.leaf_visited + 1;
                  stats.matched <- stats.matched + Node.iter_rects buf window ~f
              | Node.Internal ->
                  stats.internal_visited <- stats.internal_visited + 1;
                  Node.iter_children buf window ~f:visit)
      in
      (try visit t.root with Deadline_exceeded -> ());
      stats

(* --- the mmap read path ---

   Two engines over the shared file mapping (see {!Mmap_pager}):

   [mapped_fast] — the live read path (gen 0, no quarantine, no
   deadline, clean buffer pool).  Strictly allocation-free until a hit
   materializes: an explicit preallocated int stack replaces the
   recursion, cursors are flat offsets into the mapping, rect floats
   load unboxed straight from the mapped bytes, and hits append into a
   caller-supplied growable buffer.  The descent visits nodes in
   exactly the recursive preorder (children are pushed in reverse
   entry order), so visit counts and result order are byte-identical
   to the pread path.  A page that fails its CRC gate aborts to the
   pread engine — at generation zero on a clean pool that means
   genuine damage, and pread owns the fail-stop/quarantine contract.

   [mapped_guarded] — everything else on the mapping: snapshot reads
   at a pinned generation, quarantine routing, deadlines.  Allocation
   is permitted here; what matters is MVCC soundness under concurrent
   overwrite.  Protocol, per node: probe the version store first (a
   hit means the page was overwritten after our generation — serve the
   retained image through [Pager.read_shared ~gen] exactly as the
   pread path does); on a miss, scan the mapped page with its effects
   buffered, then re-probe.  Because {!Pager} retains the pre-image
   *before* the physical overwrite lands, a second miss proves the
   mapped bytes we scanned were the committed image for our
   generation; a hit means the scan may have raced the overwrite, so
   the buffered effects are rolled back and the node is redone from
   the retained image.  A mapped page failing its CRC gate mid-flight
   (a torn frame under an in-progress overwrite, or damage) serves
   that one node through pread, which re-runs the same live-then-probe
   protocol under the pager lock. *)

type hits = {
  mutable h_entries : Entry.t array;
  mutable h_len : int;
  mutable h_stack : int array; (* descent scratch: pending page ids *)
  h_stats : query_stats; (* reused across queries; valid until the next one *)
}

let hits_make () =
  { h_entries = [||]; h_len = 0; h_stack = Array.make 256 0; h_stats = fresh_stats () }

let hits_length h = h.h_len
let hits_stats h = h.h_stats

let hits_get h i =
  if i < 0 || i >= h.h_len then invalid_arg "Rtree.hits_get";
  Array.unsafe_get h.h_entries i

let hits_clear h = h.h_len <- 0

let hits_push h e =
  (if h.h_len = Array.length h.h_entries then begin
     let grown = Array.make (max 16 (2 * h.h_len)) e in
     Array.blit h.h_entries 0 grown 0 h.h_len;
     h.h_entries <- grown
   end);
  Array.unsafe_set h.h_entries h.h_len e;
  h.h_len <- h.h_len + 1

let reset_stats s =
  s.internal_visited <- 0;
  s.leaf_visited <- 0;
  s.matched <- 0;
  s.skipped_subtrees <- 0;
  s.skipped_pages <- [];
  s.timed_out <- false

let blit_stats ~src ~dst =
  dst.internal_visited <- src.internal_visited;
  dst.leaf_visited <- src.leaf_visited;
  dst.matched <- src.matched;
  dst.skipped_subtrees <- src.skipped_subtrees;
  dst.skipped_pages <- src.skipped_pages;
  dst.timed_out <- src.timed_out

let copy_stats s =
  {
    internal_visited = s.internal_visited;
    leaf_visited = s.leaf_visited;
    matched = s.matched;
    skipped_subtrees = s.skipped_subtrees;
    skipped_pages = s.skipped_pages;
    timed_out = s.timed_out;
  }

exception Mapped_fallback

(* The hot loops are top-level recursive functions, not local closures:
   a local [let rec] capturing its environment would allocate the
   closure on every query.  The window bounds are read by direct field
   access on the all-float record ([window.Rect.xmax]), not through the
   [Rect.xmax] accessors: without flambda a cross-module accessor call
   boxes its float return, which would cost two minor words per rect
   test; the field load feeds the comparison unboxed. *)

let rec fast_scan_leaf h m base window i n =
  if i < n then begin
    let off = base + Node.header_size + (i * Entry.size) in
    if
      View.get_f64 m off <= window.Rect.xmax
      && window.Rect.xmin <= View.get_f64 m (off + 16)
      && View.get_f64 m (off + 8) <= window.Rect.ymax
      && window.Rect.ymin <= View.get_f64 m (off + 24)
    then begin
      h.h_stats.matched <- h.h_stats.matched + 1;
      hits_push h (Node.map_read_entry m off)
    end;
    fast_scan_leaf h m base window (i + 1) n
  end

let rec fast_push_children h m base window i sp =
  if i < 0 then sp
  else
    let off = base + Node.header_size + (i * Entry.size) in
    if
      View.get_f64 m off <= window.Rect.xmax
      && window.Rect.xmin <= View.get_f64 m (off + 16)
      && View.get_f64 m (off + 8) <= window.Rect.ymax
      && window.Rect.ymin <= View.get_f64 m (off + 24)
    then begin
      Array.unsafe_set h.h_stack sp (View.get_i32 m (off + 32));
      fast_push_children h m base window (i - 1) (sp + 1)
    end
    else fast_push_children h m base window (i - 1) sp

let rec fast_loop mm w m h npages ps window sp =
  if sp > 0 then begin
    let sp = sp - 1 in
    let id = Array.unsafe_get h.h_stack sp in
    if id < 0 || id >= npages || not (Mmap_pager.verified mm w id) then begin
      Mmap_pager.fell_back mm;
      raise_notrace Mapped_fallback
    end;
    Mmap_pager.served mm;
    let base = id * ps in
    let n = Node.map_length m ~base in
    match View.get_u8 m base with
    | 0 ->
        h.h_stats.leaf_visited <- h.h_stats.leaf_visited + 1;
        fast_scan_leaf h m base window 0 n;
        fast_loop mm w m h npages ps window sp
    | 1 ->
        h.h_stats.internal_visited <- h.h_stats.internal_visited + 1;
        (if sp + n > Array.length h.h_stack then begin
           let grown = Array.make (max (2 * Array.length h.h_stack) (sp + n)) 0 in
           Array.blit h.h_stack 0 grown 0 sp;
           h.h_stack <- grown
         end);
        let sp = fast_push_children h m base window (n - 1) sp in
        fast_loop mm w m h npages ps window sp
    | k -> invalid_arg (Printf.sprintf "Rtree: bad node kind %d in mapped page %d" k id)
  end

let mapped_fast t mm window h =
  let w = Mmap_pager.window mm in
  let m = Mmap_pager.map w in
  let npages = Mmap_pager.pages w in
  let ps = page_size t in
  Array.unsafe_set h.h_stack 0 t.root;
  fast_loop mm w m h npages ps window 1

let mapped_guarded ?quarantine ?deadline ~gen ~root ~sheight t mm window (h : hits) =
  let pgr = pager t in
  let stats = h.h_stats in
  let dl = Option.value deadline ~default:Deadline.none in
  let w = Mmap_pager.window mm in
  let m = Mmap_pager.map w in
  let npages = Mmap_pager.pages w in
  let ps = page_size t in
  let skip_subtree id =
    stats.skipped_subtrees <- stats.skipped_subtrees + 1;
    if not (List.mem id stats.skipped_pages) then
      stats.skipped_pages <- id :: stats.skipped_pages
  in
  let poison id reason =
    (match quarantine with Some q -> Quarantine.add q id reason | None -> ());
    skip_subtree id
  in
  let push_hit e = hits_push h e in
  (* Leaf vs internal: by depth against the snapshot height when one is
     pinned (the live kind byte may describe a reallocated page), by
     the page's own kind byte on the live path. *)
  let leaf_mapped base depth =
    match sheight with
    | Some sh -> depth = sh
    | None -> Node.map_kind m ~base = Node.Leaf
  in
  let leaf_bytes buf depth =
    match sheight with
    | Some sh -> depth = sh
    | None -> Node.page_kind buf = Node.Leaf
  in
  let rec visit id depth =
    if Deadline.expired dl then begin
      stats.timed_out <- true;
      Prt_obs.Flight.point "resilience.deadline_expired" ~arg:id;
      raise_notrace Deadline_exceeded
    end;
    if (match quarantine with Some q -> Quarantine.mem q id | None -> false) then
      skip_subtree id
    else if id < 0 || id >= npages then
      (* Beyond the mapped window (the file grew since the last remap):
         serve through pread. *)
      visit_pread id depth
    else if gen > 0 && Pager.version_probe pgr id ~gen <> None then
      (* Overwritten after our generation: read_shared serves the
         retained image. *)
      visit_pread id depth
    else if not (Mmap_pager.verified mm w id) then begin
      (* Torn under an in-progress overwrite, or genuine damage: the
         pread protocol (live read under the pager lock, trailer
         verification, version-store check) sorts it out. *)
      Mmap_pager.fell_back mm;
      visit_pread id depth
    end
    else begin
      Mmap_pager.served mm;
      let base = id * ps in
      if leaf_mapped base depth then begin
        let h0 = h.h_len and m0 = stats.matched in
        let found = Node.map_iter_rects m ~base window ~f:push_hit in
        if gen > 0 && Pager.version_probe pgr id ~gen <> None then begin
          (* The overwrite landed mid-scan; the mapped bytes may have
             been torn under us.  Discard the buffered hits and redo
             this node from the retained image. *)
          h.h_len <- h0;
          stats.matched <- m0;
          Mmap_pager.fell_back mm;
          visit_pread id depth
        end
        else begin
          stats.leaf_visited <- stats.leaf_visited + 1;
          stats.matched <- m0 + found
        end
      end
      else begin
        (* Buffer the matching children, then re-probe before recursing
           into any of them. *)
        let acc = ref [] in
        Node.map_iter_children m ~base window ~f:(fun cid -> acc := cid :: !acc);
        if gen > 0 && Pager.version_probe pgr id ~gen <> None then begin
          Mmap_pager.fell_back mm;
          visit_pread id depth
        end
        else begin
          stats.internal_visited <- stats.internal_visited + 1;
          List.iter (fun cid -> visit cid (depth + 1)) (List.rev !acc)
        end
      end
    end
  and visit_pread id depth =
    match Pager.read_shared ~gen pgr id with
    | exception Pager.Corrupt_page _ when quarantine <> None -> poison id Quarantine.Corrupt
    | exception Pager.Io_error _ when quarantine <> None -> poison id Quarantine.Io_failed
    | buf ->
        if leaf_bytes buf depth then begin
          stats.leaf_visited <- stats.leaf_visited + 1;
          stats.matched <- stats.matched + Node.iter_rects buf window ~f:push_hit
        end
        else begin
          stats.internal_visited <- stats.internal_visited + 1;
          Node.iter_children buf window ~f:(fun cid -> visit cid (depth + 1))
        end
  in
  try visit root 1 with Deadline_exceeded -> ()

(* Is the mapped path usable for a read at [gen]?  Live reads (gen 0)
   additionally require a clean pool — a staged write would make the
   on-disk image stale — while snapshot reads at a committed generation
   are covered by the version store whatever the pool holds.  Returns
   [t.mm] itself, so the check allocates nothing. *)
let mapped_usable t ~gen =
  match t.mm with
  | None -> None
  | Some _ as s -> if gen > 0 || Buffer_pool.is_clean t.pool then s else None

let snapshot_gen = function Some sv -> sv.sv_gen | None -> 0

(* The pread engines behind the buffer API — only reached on fallback,
   so the closure they allocate is off the hot path. *)
let query_into_pread ?quarantine ?deadline ?snapshot t window h =
  hits_clear h;
  reset_stats h.h_stats;
  let stats =
    pread_unrecorded ?quarantine ?deadline ?snapshot t window ~f:(fun e -> hits_push h e)
  in
  blit_stats ~src:stats ~dst:h.h_stats

(* Caller-supplied-buffer window query: results append into [into]
   and the descent statistics land in [hits_stats into] (both valid
   until the next query with the same buffer).  On the mmap backend's
   live path this is the allocation-free entry point: after warm-up (a
   first query sizes the internal stack), a miss-only query allocates
   zero minor words. *)
let query_into ?quarantine ?deadline ?snapshot t window ~into:h =
  hits_clear h;
  reset_stats h.h_stats;
  let gen = snapshot_gen snapshot in
  (match mapped_usable t ~gen with
  | None -> query_into_pread ?quarantine ?deadline ?snapshot t window h
  | Some mm -> (
      match (snapshot, quarantine, deadline) with
      | None, None, None -> (
          try mapped_fast t mm window h
          with Mapped_fallback -> query_into_pread ?quarantine ?deadline ?snapshot t window h)
      | _ ->
          let root, sheight =
            match snapshot with
            | Some sv -> (sv.sv_root, Some sv.sv_height)
            | None -> (t.root, None)
          in
          mapped_guarded ?quarantine ?deadline ~gen ~root ~sheight t mm window h));
  if Prt_obs.Metrics.collecting () then record_query_stats h.h_stats

(* Per-domain scratch for routing the callback-style API through the
   mapped engines. *)
let scratch_key = Domain.DLS.new_key hits_make

let query_unrecorded ?quarantine ?deadline ?snapshot t window ~f =
  let gen = snapshot_gen snapshot in
  match mapped_usable t ~gen with
  | None -> pread_unrecorded ?quarantine ?deadline ?snapshot t window ~f
  | Some mm -> (
      let h = Domain.DLS.get scratch_key in
      hits_clear h;
      reset_stats h.h_stats;
      let ran_mapped =
        match (snapshot, quarantine, deadline) with
        | None, None, None -> (
            match mapped_fast t mm window h with
            | () -> true
            | exception Mapped_fallback -> false)
        | _ ->
            let root, sheight =
              match snapshot with
              | Some sv -> (sv.sv_root, Some sv.sv_height)
              | None -> (t.root, None)
            in
            mapped_guarded ?quarantine ?deadline ~gen ~root ~sheight t mm window h;
            true
      in
      if not ran_mapped then pread_unrecorded ?quarantine ?deadline ?snapshot t window ~f
      else begin
        (* Detach results from the scratch before replaying: [f] may
           legally issue further queries on this domain. *)
        let stats = copy_stats h.h_stats in
        let entries = Array.sub h.h_entries 0 h.h_len in
        hits_clear h;
        Array.iter f entries;
        stats
      end)

(* All query paths (fast, resilient, snapshot) funnel through here so
   the same counters and latency histogram are recorded whichever
   domain runs the descent.  The wall clock is read only while
   collection is on — an uninstrumented query pays two atomic loads. *)
let query ?quarantine ?deadline ?snapshot t window ~f =
  if not (Prt_obs.Metrics.collecting ()) then
    query_unrecorded ?quarantine ?deadline ?snapshot t window ~f
  else begin
    let t0 = Unix.gettimeofday () in
    let stats = query_unrecorded ?quarantine ?deadline ?snapshot t window ~f in
    let latency_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    record_query_stats ~latency_us stats;
    stats
  end

let query_list ?quarantine ?deadline ?snapshot t window =
  let acc = ref [] in
  let stats = query ?quarantine ?deadline ?snapshot t window ~f:(fun e -> acc := e :: !acc) in
  (List.rev !acc, stats)

let query_count ?quarantine ?deadline ?snapshot t window =
  query ?quarantine ?deadline ?snapshot t window ~f:(fun _ -> ())

(* Profiled window query: same traversal as [query], but additionally
   records how many nodes were visited on each level and what the
   storage stack did on the tree's behalf (pager I/Os, pool hits and
   misses) between entry and exit.  The plain [query] stays untouched so
   profiling costs nothing unless asked for. *)

type profile = {
  pf_levels : int array; (* nodes visited per level; index 0 = root *)
  pf_internal : int;
  pf_leaves : int;
  pf_matched : int;
  pf_reads : int;
  pf_writes : int;
  pf_hits : int;
  pf_misses : int;
  pf_seconds : float;
}

let query_profile t window ~f =
  Prt_obs.Trace.with_span "rtree.query" (fun () ->
      let levels = Array.make (max 1 t.height) 0 in
      let stats = fresh_stats () in
      let before = Pager.snapshot (pager t) in
      let hits0 = Buffer_pool.hits t.pool and misses0 = Buffer_pool.misses t.pool in
      let t0 = Unix.gettimeofday () in
      let rec visit id depth =
        let node = read_node t id in
        levels.(depth - 1) <- levels.(depth - 1) + 1;
        match Node.kind node with
        | Node.Leaf ->
            stats.leaf_visited <- stats.leaf_visited + 1;
            Array.iter
              (fun e ->
                if Rect.intersects (Entry.rect e) window then begin
                  stats.matched <- stats.matched + 1;
                  f e
                end)
              (Node.entries node)
        | Node.Internal ->
            stats.internal_visited <- stats.internal_visited + 1;
            Array.iter
              (fun e ->
                if Rect.intersects (Entry.rect e) window then visit (Entry.id e) (depth + 1))
              (Node.entries node)
      in
      visit t.root 1;
      let seconds = Unix.gettimeofday () -. t0 in
      let d = Pager.diff ~before ~after:(Pager.snapshot (pager t)) in
      {
        pf_levels = levels;
        pf_internal = stats.internal_visited;
        pf_leaves = stats.leaf_visited;
        pf_matched = stats.matched;
        pf_reads = d.Pager.s_reads;
        pf_writes = d.Pager.s_writes;
        pf_hits = Buffer_pool.hits t.pool - hits0;
        pf_misses = Buffer_pool.misses t.pool - misses0;
        pf_seconds = seconds;
      })

let pp_profile ppf p =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i n -> Format.fprintf ppf "level %d: %d node%s@," i n (if n = 1 then "" else "s"))
    p.pf_levels;
  Format.fprintf ppf "internal=%d leaves=%d matched=%d@," p.pf_internal p.pf_leaves p.pf_matched;
  Format.fprintf ppf "pager: reads=%d writes=%d  pool: hits=%d misses=%d@," p.pf_reads p.pf_writes
    p.pf_hits p.pf_misses;
  Format.fprintf ppf "time: %.6fs@]" p.pf_seconds

let iter t ~f =
  let rec visit id =
    let node = read_node t id in
    match Node.kind node with
    | Node.Leaf -> Array.iter f (Node.entries node)
    | Node.Internal -> Array.iter (fun e -> visit (Entry.id e)) (Node.entries node)
  in
  visit t.root

let iter_nodes t ~f =
  let rec visit id depth =
    let node = read_node t id in
    f ~depth ~id node;
    match Node.kind node with
    | Node.Leaf -> ()
    | Node.Internal -> Array.iter (fun e -> visit (Entry.id e) (depth + 1)) (Node.entries node)
  in
  visit t.root 1

(* Structural validation. *)

type structure = {
  nodes : int;
  leaves : int;
  entries : int;
  min_leaf_fill : int;
  min_internal_fanout : int;
  utilization : float; (* entries / (leaves * capacity) *)
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let validate t =
  let cap = capacity t in
  let nodes = ref 0 and leaves = ref 0 and entries = ref 0 in
  let min_leaf_fill = ref max_int and min_internal_fanout = ref max_int in
  (* Returns the exact bounding box of the subtree rooted at [id]. *)
  let rec visit id depth =
    incr nodes;
    let node = read_node t id in
    let n = Node.length node in
    if n > cap then invalid "node %d holds %d entries, capacity %d" id n cap;
    match Node.kind node with
    | Node.Leaf ->
        if depth <> t.height then
          invalid "leaf %d at depth %d but tree height is %d" id depth t.height;
        incr leaves;
        entries := !entries + n;
        if n < !min_leaf_fill then min_leaf_fill := n;
        if n = 0 && t.count > 0 then invalid "empty leaf %d in non-empty tree" id;
        if n = 0 then None else Some (Node.mbr node)
    | Node.Internal ->
        if depth >= t.height then
          invalid "internal node %d at depth %d but tree height is %d" id depth t.height;
        if n = 0 then invalid "empty internal node %d" id;
        if n < !min_internal_fanout then min_internal_fanout := n;
        Array.iter
          (fun e ->
            match visit (Entry.id e) (depth + 1) with
            | Some child_mbr ->
                if not (Rect.equal child_mbr (Entry.rect e)) then
                  invalid "node %d records MBR %a for child %d whose exact box is %a" id Rect.pp
                    (Entry.rect e) (Entry.id e) Rect.pp child_mbr
            | None -> invalid "node %d points at empty subtree %d" id (Entry.id e))
          (Node.entries node);
        Some (Node.mbr node)
  in
  ignore (visit t.root 1);
  if !entries <> t.count then
    invalid "tree metadata says %d entries but leaves hold %d" t.count !entries;
  {
    nodes = !nodes;
    leaves = !leaves;
    entries = !entries;
    min_leaf_fill = (if !min_leaf_fill = max_int then 0 else !min_leaf_fill);
    min_internal_fanout = (if !min_internal_fanout = max_int then 0 else !min_internal_fanout);
    utilization =
      (if !leaves = 0 then 0.0 else float_of_int !entries /. float_of_int (!leaves * cap));
  }

let mbr t =
  let node = read_node t t.root in
  if Node.length node = 0 then None else Some (Node.mbr node)

(* Debug rendering: one line per node, indented by depth, with page id,
   fanout and bounding box — small trees only (tests, troubleshooting). *)
let dump ?(max_depth = max_int) t ppf =
  let rec visit id depth =
    let node = read_node t id in
    let indent = String.make (2 * (depth - 1)) ' ' in
    let kind = match Node.kind node with Node.Leaf -> "leaf" | Node.Internal -> "node" in
    if Node.length node = 0 then Format.fprintf ppf "%s%s #%d (empty)@." indent kind id
    else
      Format.fprintf ppf "%s%s #%d [%d] %a@." indent kind id (Node.length node) Rect.pp
        (Node.mbr node);
    if depth < max_depth && Node.kind node = Node.Internal then
      Array.iter (fun e -> visit (Entry.id e) (depth + 1)) (Node.entries node)
  in
  visit t.root 1

(* Metadata persistence: one page holding magic, root, height, count.
   Used by the CLI to reopen file-backed indexes. *)

let magic = 0x50525452 (* "PRTR" *)

let save_meta t ~meta_page =
  let buf = Page.create (page_size t) in
  Page.set_i32 buf 0 magic;
  Page.set_i32 buf 4 t.root;
  Page.set_i32 buf 8 t.height;
  Page.set_i32 buf 12 t.count;
  Buffer_pool.write t.pool meta_page buf;
  Buffer_pool.flush t.pool

let load_meta pool ~meta_page =
  let buf = Buffer_pool.read pool meta_page in
  if Page.get_i32 buf 0 <> magic then invalid_arg "Rtree.load_meta: bad magic";
  {
    pool;
    root = Page.get_i32 buf 4;
    height = Page.get_i32 buf 8;
    count = Page.get_i32 buf 12;
    mm = None;
  }
