(* An R-tree entry: a rectangle plus a 32-bit payload.  In a leaf the
   payload identifies the data object; in an internal node it is the page
   id of the child whose subtree the rectangle bounds.  The on-disk
   encoding is the paper's 36-byte record: four 8-byte coordinates and a
   4-byte pointer, giving fanout 113 with 4 KB pages. *)

module Rect = Prt_geom.Rect
module Page = Prt_storage.Page

type t = { rect : Rect.t; id : int }

let make rect id = { rect; id }

let rect e = e.rect
let id e = e.id

let equal a b = a.id = b.id && Rect.equal a.rect b.rect

(* Total orders on the four kd-coordinates of the PR-tree's 4-D view,
   with ties broken by the remaining coordinates and finally the id so
   that duplicated geometry still orders deterministically (the paper
   assumes all coordinates distinct; we do not). *)
let compare_dim dim a b =
  let c = Float.compare (Rect.coord dim a.rect) (Rect.coord dim b.rect) in
  if c <> 0 then c
  else begin
    let c = Rect.compare a.rect b.rect in
    if c <> 0 then c else Int.compare a.id b.id
  end

let size = 36

let write buf off e =
  Page.set_f64 buf off (Rect.xmin e.rect);
  Page.set_f64 buf (off + 8) (Rect.ymin e.rect);
  Page.set_f64 buf (off + 16) (Rect.xmax e.rect);
  Page.set_f64 buf (off + 24) (Rect.ymax e.rect);
  Page.set_i32 buf (off + 32) e.id

let read buf off =
  let xmin = Page.get_f64 buf off in
  let ymin = Page.get_f64 buf (off + 8) in
  let xmax = Page.get_f64 buf (off + 16) in
  let ymax = Page.get_f64 buf (off + 24) in
  let id = Page.get_i32 buf (off + 32) in
  { rect = Rect.make ~xmin ~ymin ~xmax ~ymax; id }

let pp ppf e = Fmt.pf ppf "#%d:%a" e.id Rect.pp e.rect

(* Record-file instantiation used by the external bulk loaders. *)
module File = Prt_extsort.Record_file.Make (struct
  type nonrec t = t

  let size = size
  let write = write
  let read = read
end)
