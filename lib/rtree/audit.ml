(* Unified invariant audit (see the interface for the catalogue).

   The walker is deliberately paranoid: it never trusts a page.  Decode
   failures, out-of-range child pointers and reference cycles all become
   violations instead of exceptions, so a corrupted index produces a
   report naming the broken invariant rather than a crash — the property
   the mutation tests in test/test_audit.ml pin down.  Device-level
   [Pager.Io_error]s are the one exception: they propagate, because a
   disk that cannot be read is not a clean audit. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager

type what =
  | Decode_error of string
  | Mbr_not_contained
  | Mbr_not_tight
  | Leaf_depth of { depth : int; height : int }
  | Internal_depth of { depth : int; height : int }
  | Node_overflow of { count : int; capacity : int }
  | Node_underfill of { count : int; minimum : int }
  | Empty_node
  | Count_mismatch of { expected : int; actual : int }
  | Page_leaked
  | Page_shared
  | Freed_page_reachable
  | Degree_exceeded of { degree : int; limit : int }
  | Priority_not_extreme of { dir : int }
  | Box_mismatch

type violation = { where : string; what : what }

let label = function
  | Decode_error _ -> "decode-error"
  | Mbr_not_contained -> "mbr-not-contained"
  | Mbr_not_tight -> "mbr-not-tight"
  | Leaf_depth _ -> "leaf-depth"
  | Internal_depth _ -> "internal-depth"
  | Node_overflow _ -> "node-overflow"
  | Node_underfill _ -> "node-underfill"
  | Empty_node -> "empty-node"
  | Count_mismatch _ -> "count-mismatch"
  | Page_leaked -> "page-leaked"
  | Page_shared -> "page-shared"
  | Freed_page_reachable -> "freed-page-reachable"
  | Degree_exceeded _ -> "degree-exceeded"
  | Priority_not_extreme _ -> "priority-not-extreme"
  | Box_mismatch -> "box-mismatch"

let pp_what ppf = function
  | Decode_error msg -> Fmt.pf ppf "page does not decode (%s)" msg
  | Mbr_not_contained -> Fmt.pf ppf "child box escapes the MBR recorded by its parent"
  | Mbr_not_tight -> Fmt.pf ppf "recorded MBR is not tight around the child's subtree"
  | Leaf_depth { depth; height } ->
      Fmt.pf ppf "leaf at depth %d but the tree height is %d" depth height
  | Internal_depth { depth; height } ->
      Fmt.pf ppf "internal node at depth %d but the tree height is %d" depth height
  | Node_overflow { count; capacity } ->
      Fmt.pf ppf "node holds %d entries, capacity %d" count capacity
  | Node_underfill { count; minimum } ->
      Fmt.pf ppf "node holds %d entries, minimum %d" count minimum
  | Empty_node -> Fmt.pf ppf "empty node"
  | Count_mismatch { expected; actual } ->
      Fmt.pf ppf "tree metadata says %d entries but the leaves hold %d" expected actual
  | Page_leaked -> Fmt.pf ppf "allocated page unreachable from the root"
  | Page_shared -> Fmt.pf ppf "page reachable via two different parents"
  | Freed_page_reachable -> Fmt.pf ppf "page is on the free list yet reachable"
  | Degree_exceeded { degree; limit } -> Fmt.pf ppf "pseudo-node degree %d exceeds %d" degree limit
  | Priority_not_extreme { dir } ->
      Fmt.pf ppf "priority leaf not extreme in direction %d" dir
  | Box_mismatch -> Fmt.pf ppf "box is not the union of the members"

let pp_violation ppf v = Fmt.pf ppf "%s: %s: %a" v.where (label v.what) pp_what v.what

type report = {
  violations : violation list;
  nodes : int;
  leaves : int;
  entries : int;
  pages_visited : int;
}

let ok r = r.violations = []

let pp_report ppf r =
  if ok r then
    Fmt.pf ppf "audit clean: %d nodes (%d leaves), %d entries, %d pages" r.nodes r.leaves
      r.entries r.pages_visited
  else
    Fmt.pf ppf "audit found %d violation(s):@.%a"
      (List.length r.violations)
      (Fmt.list ~sep:Fmt.cut pp_violation)
      r.violations

let page_where id = Printf.sprintf "page %d" id

let check ?(min_leaf_fill = 1) ?(min_fanout = 1) ?(check_leaks = false) ?(reachable = []) tree =
  let cap = Rtree.capacity tree in
  let height = Rtree.height tree in
  let pager = Rtree.pager tree in
  let violations = ref [] in
  let add where what = violations := { where; what } :: !violations in
  let visited = Hashtbl.create 64 in
  let nodes = ref 0 and leaves = ref 0 and entries = ref 0 in
  (* [recorded] is the bounding box the parent stores for this child;
     [None] at the root. *)
  let rec visit ~recorded id depth =
    if Hashtbl.mem visited id then add (page_where id) Page_shared
    else begin
      Hashtbl.replace visited id ();
      if Pager.is_free pager id then add (page_where id) Freed_page_reachable;
      match Rtree.read_node tree id with
      | exception Invalid_argument msg -> add (page_where id) (Decode_error msg)
      | node -> (
          incr nodes;
          let n = Node.length node in
          if n > cap then add (page_where id) (Node_overflow { count = n; capacity = cap });
          (match recorded with
          | Some r when n > 0 ->
              let exact = Node.mbr node in
              if not (Rect.contains r exact) then add (page_where id) Mbr_not_contained
              else if not (Rect.equal r exact) then add (page_where id) Mbr_not_tight
          | _ -> ());
          match Node.kind node with
          | Node.Leaf ->
              incr leaves;
              entries := !entries + n;
              if depth <> height then add (page_where id) (Leaf_depth { depth; height });
              if n = 0 then begin
                if Rtree.count tree > 0 then add (page_where id) Empty_node
              end
              else if depth > 1 && n < min_leaf_fill then
                add (page_where id) (Node_underfill { count = n; minimum = min_leaf_fill })
          | Node.Internal ->
              if depth >= height then add (page_where id) (Internal_depth { depth; height });
              if n = 0 then add (page_where id) Empty_node
              else if depth > 1 && n < min_fanout then
                add (page_where id) (Node_underfill { count = n; minimum = min_fanout });
              Array.iter
                (fun e -> visit ~recorded:(Some (Entry.rect e)) (Entry.id e) (depth + 1))
                (Node.entries node))
    end
  in
  visit ~recorded:None (Rtree.root tree) 1;
  if !entries <> Rtree.count tree then
    add "tree" (Count_mismatch { expected = Rtree.count tree; actual = !entries });
  if check_leaks then begin
    List.iter (fun p -> Hashtbl.replace visited p ()) reachable;
    for p = 0 to Pager.num_pages pager - 1 do
      if (not (Hashtbl.mem visited p)) && not (Pager.is_free pager p) then
        add (page_where p) Page_leaked
    done
  end;
  {
    violations = List.rev !violations;
    nodes = !nodes;
    leaves = !leaves;
    entries = !entries;
    pages_visited = Hashtbl.length visited;
  }

(* --- pseudo-tree descriptors --- *)

type pseudo_kind =
  | Pseudo_leaf of { size : int; priority : int option; extreme : bool }
  | Pseudo_node of { degree : int }

type pseudo_desc = { pd_where : string; pd_kind : pseudo_kind; pd_box_ok : bool }

let check_pseudo ~degree_limit ~leaf_capacity descs =
  let violations = ref [] in
  let add where what = violations := { where; what } :: !violations in
  List.iter
    (fun d ->
      if not d.pd_box_ok then add d.pd_where Box_mismatch;
      match d.pd_kind with
      | Pseudo_node { degree } ->
          if degree = 0 then add d.pd_where Empty_node
          else if degree > degree_limit then
            add d.pd_where (Degree_exceeded { degree; limit = degree_limit })
      | Pseudo_leaf { size; priority; extreme } ->
          if size = 0 then add d.pd_where Empty_node
          else if size > leaf_capacity then
            add d.pd_where (Node_overflow { count = size; capacity = leaf_capacity });
          if not extreme then
            add d.pd_where (Priority_not_extreme { dir = Option.value priority ~default:(-1) }))
    descs;
  List.rev !violations
