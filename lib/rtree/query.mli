(** Query forms beyond the plain window query, sharing its descent and
    statistics. *)

val search :
  Rtree.t ->
  down:(Prt_geom.Rect.t -> bool) ->
  hit:(Prt_geom.Rect.t -> bool) ->
  f:(Entry.t -> unit) ->
  Rtree.query_stats
(** Generic filtered descent: follow children whose box passes [down],
    report entries whose rectangle passes [hit]. The building block of
    the queries below (exposed for custom predicates). *)

val stabbing : Rtree.t -> x:float -> y:float -> f:(Entry.t -> unit) -> Rtree.query_stats
(** All stored rectangles containing the point. *)

val stabbing_list : Rtree.t -> x:float -> y:float -> Entry.t list * Rtree.query_stats

val enclosed : Rtree.t -> Prt_geom.Rect.t -> f:(Entry.t -> unit) -> Rtree.query_stats
(** All stored rectangles lying fully inside the window. *)

val enclosed_list : Rtree.t -> Prt_geom.Rect.t -> Entry.t list * Rtree.query_stats

val covering : Rtree.t -> Prt_geom.Rect.t -> f:(Entry.t -> unit) -> Rtree.query_stats
(** All stored rectangles fully covering the window. *)

val covering_list : Rtree.t -> Prt_geom.Rect.t -> Entry.t list * Rtree.query_stats

val exists : Rtree.t -> Prt_geom.Rect.t -> bool
(** Does any stored rectangle intersect the window? Early-exits on the
    first hit. *)
