(** On-page R-tree node codec.

    A node is a kind tag plus packed {!Entry} records; with the default
    4 KB page the capacity is 113 entries, as in the paper. *)

type kind = Leaf | Internal

type t

val capacity : page_size:int -> int
(** Maximum entries per node for a given page size. *)

val make : kind -> Entry.t array -> t
(** The array is owned by the node afterwards. *)

val kind : t -> kind
val entries : t -> Entry.t array
val length : t -> int

val mbr : t -> Prt_geom.Rect.t
(** Bounding box of all entries. Raises [Invalid_argument] on an empty
    node. *)

val encode : page_size:int -> t -> bytes
(** Raises [Invalid_argument] if the node exceeds the page capacity. *)

val decode : bytes -> t
(** Raises [Invalid_argument] on a corrupt kind tag. *)

(** {1 Zero-copy cursors}

    Read-only iteration over an {e encoded} node page, testing the
    window directly against the packed coordinate bytes and
    materializing heap values only on a hit — the query hot loop uses
    these instead of {!decode} so a node visit allocates nothing for
    entries that fail the window test.  The float comparisons match
    [Rect.intersects] on the decoded rectangle exactly. *)

val page_kind : bytes -> kind
(** Kind tag of an encoded page. Raises [Invalid_argument] like
    {!decode} on a corrupt tag. *)

val page_length : bytes -> int
(** Entry count of an encoded page. *)

val iter_rects : bytes -> Prt_geom.Rect.t -> f:(Entry.t -> unit) -> int
(** [iter_rects buf window ~f] calls [f] on each entry of the page whose
    rectangle intersects [window], materializing the {!Entry.t} only for
    hits, and returns the number of hits.  Entries are visited in page
    order (the same order {!decode} yields). *)

val iter_children : bytes -> Prt_geom.Rect.t -> f:(int -> unit) -> unit
(** [iter_children buf window ~f] calls [f] on the child page id of each
    entry whose rectangle intersects [window] — the internal-node
    descent step, with no allocation at all. *)

val iter_entry_rects : bytes -> f:(Prt_geom.Rect.t -> int -> unit) -> unit
(** Visit every packed entry as a rectangle and payload id without
    building the entry array — the generic-predicate descent used by
    {!Query.search}. *)

(** {1 Mapped cursors}

    The same scans over a mapped window of the whole index file
    ({!Prt_storage.View}), addressed by the page's absolute byte offset
    [base] — the mmap read backend's node visits.  Float comparisons
    are bit-identical to the [bytes] cursors, so results and visit
    counts match the pread path exactly. *)

val header_size : int
(** Bytes before the first packed entry (kind tag + count). *)

val map_kind : Prt_storage.View.map -> base:int -> kind
val map_length : Prt_storage.View.map -> base:int -> int

val map_read_entry : Prt_storage.View.map -> int -> Entry.t
(** Materialize the entry packed at absolute offset [off]. *)

val map_iter_rects :
  Prt_storage.View.map -> base:int -> Prt_geom.Rect.t -> f:(Entry.t -> unit) -> int

val map_iter_children :
  Prt_storage.View.map -> base:int -> Prt_geom.Rect.t -> f:(int -> unit) -> unit
