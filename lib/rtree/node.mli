(** On-page R-tree node codec.

    A node is a kind tag plus packed {!Entry} records; with the default
    4 KB page the capacity is 113 entries, as in the paper. *)

type kind = Leaf | Internal

type t

val capacity : page_size:int -> int
(** Maximum entries per node for a given page size. *)

val make : kind -> Entry.t array -> t
(** The array is owned by the node afterwards. *)

val kind : t -> kind
val entries : t -> Entry.t array
val length : t -> int

val mbr : t -> Prt_geom.Rect.t
(** Bounding box of all entries. Raises [Invalid_argument] on an empty
    node. *)

val encode : page_size:int -> t -> bytes
(** Raises [Invalid_argument] if the node exceeds the page capacity. *)

val decode : bytes -> t
(** Raises [Invalid_argument] on a corrupt kind tag. *)
