(** The paged R-tree: window queries, traversal, validation, metadata.

    Every bulk loader in the repository (packed Hilbert, 4-D Hilbert,
    STR, TGS, PR-tree) produces this structure; the dynamic update
    algorithms ({!Dynamic}) mutate it. Queries report how many nodes they
    visit per level — with all internal nodes cached (the paper's query
    setup), [leaf_visited] is exactly the paper's query I/O count. *)

type t

type query_stats = {
  mutable internal_visited : int;
  mutable leaf_visited : int;
  mutable matched : int;
  mutable skipped_subtrees : int;  (** subtrees routed around (quarantine/damage) *)
  mutable skipped_pages : int list;  (** distinct page ids behind the holes *)
  mutable timed_out : bool;  (** the deadline fired mid-descent *)
}

val fresh_stats : unit -> query_stats
val nodes_visited : query_stats -> int

val merge_stats : query_stats -> query_stats -> unit
(** [merge_stats dst src] accumulates [src] into [dst] (visits, matches,
    skips; [timed_out] ORs) — how a multi-component fan-out combines
    per-component descents into one record whose {!completeness} is the
    honest label for the merged answer. *)

val record_query_stats : ?latency_us:int -> query_stats -> unit
(** Tick the shared [query.*]/[resilience.*] metrics for one finished
    descent on the calling domain's stripe — used by {!query} and by
    every {!Qexec} worker, so multicore and sequential runs account
    identically.  No-op while {!Prt_obs.Metrics.collecting} is off. *)

(** Completeness of a query's result — partiality is never silent. *)
type completeness =
  | Complete
  | Partial of { skipped_pages : int list; skipped_subtrees : int }
      (** Some subtrees were skipped (quarantined or freshly damaged
          pages); the reported entries are a subset of the true answer. *)
  | Timed_out of { skipped_pages : int list; skipped_subtrees : int }
      (** The deadline fired mid-descent; entries matched before the
          cutoff were delivered.  Takes precedence over [Partial]. *)

val completeness : query_stats -> completeness
(** [skipped_pages] come out sorted and de-duplicated. *)

val complete : query_stats -> bool
val pp_completeness : Format.formatter -> completeness -> unit

val create_empty : Prt_storage.Buffer_pool.t -> t
(** A tree with a single empty leaf. *)

val of_root :
  pool:Prt_storage.Buffer_pool.t -> root:int -> height:int -> count:int -> t
(** Wrap an already-written tree (used by the bulk loaders). [height] is
    1 when the root is a leaf. *)

val set_mmap : t -> Prt_storage.Mmap_pager.t option -> unit
(** Attach (or detach) the mmap read backend.  While attached and
    usable, window queries scan node pages directly in the mapping —
    no syscall, no lock, no copy, no decode — falling back to the
    pread path per page or per query when the mapping cannot be
    trusted (dirty pool, torn page, pinned generation overwritten).
    Owned by [Index_file]; the writer must {!Prt_storage.Mmap_pager.refresh}
    it after every commit. *)

val mmap : t -> Prt_storage.Mmap_pager.t option

val pool : t -> Prt_storage.Buffer_pool.t
val pager : t -> Prt_storage.Pager.t
val root : t -> int
val height : t -> int
val count : t -> int
val page_size : t -> int

val capacity : t -> int
(** Node capacity [B] implied by the page size (113 at 4 KB). *)

val read_node : t -> int -> Node.t

val read_page : t -> int -> bytes
(** The encoded node page straight from the buffer pool, for the
    zero-copy {!Node} cursors.  The buffer is the pool's cached copy:
    treat it as read-only, and do not write to the tree while scanning
    it. *)

val write_node : t -> int -> Node.t -> unit
val alloc_node : t -> Node.t -> int
val free_node : t -> int -> unit

val set_root : t -> root:int -> height:int -> unit
(** Repoint the tree at a new root (used by the update algorithms). *)

val set_count : t -> int -> unit

type snapshot_view = { sv_gen : int; sv_root : int; sv_height : int }
(** A pinned generation's tree, produced by [Index_file.snapshot_view]:
    the committed generation to read pages at plus the root and height
    of {e that} generation's tree (the live handle may already point at
    a newer commit).  Passed to {!query} as [~snapshot]. *)

val query :
  ?quarantine:Prt_storage.Quarantine.t ->
  ?deadline:Prt_util.Deadline.t ->
  ?snapshot:snapshot_view ->
  t ->
  Prt_geom.Rect.t ->
  f:(Entry.t -> unit) ->
  query_stats
(** Window query: [f] is called on every stored entry whose rectangle
    intersects the window (closed-boundary semantics).

    Without the optional arguments the query is fail-stop: a
    {!Prt_storage.Pager.Corrupt_page} propagates.  With a [quarantine]
    it degrades gracefully instead — quarantined page ids are skipped
    without touching the device, a fresh [Corrupt_page]/[Io_error] on a
    page read quarantines that id and skips its subtree, and the result
    is tagged through {!completeness} (reported entries are then a
    subset of the true answer, never a superset).  With a [deadline],
    expiry is checked once per node visit and unwinds into a
    [Timed_out] tag, keeping everything matched before the cutoff.
    Never raises to the caller for device damage when a quarantine is
    supplied.

    With [~snapshot] the descent reads the committed page images of the
    pinned generation ([Pager.read_shared ~gen]), bypassing the buffer
    pool entirely: safe to run from any domain while a writer mutates
    the live tree, and the result is exactly the pinned commit's answer.
    The snapshot path composes with [quarantine]/[deadline] but never
    ticks [Prt_obs] metrics (the registry is single-domain). *)

val query_unrecorded :
  ?quarantine:Prt_storage.Quarantine.t ->
  ?deadline:Prt_util.Deadline.t ->
  ?snapshot:snapshot_view ->
  t ->
  Prt_geom.Rect.t ->
  f:(Entry.t -> unit) ->
  query_stats
(** Exactly {!query}, but never ticks the shared metrics — for callers
    (the {!Qexec} workers) that account for their descents themselves
    through {!record_query_stats}. *)

(** {1 Allocation-free queries}

    A reusable query buffer: results append into it and the descent
    statistics are written into a record it owns, so a query performs
    no per-call allocation of its own.  On the mmap backend's live
    path the whole descent is allocation-free — after one warm-up
    query has sized the internal stack, a miss-only window query
    allocates zero minor words (proved by a [Gc.minor_words] test in
    [@mmap-smoke]). *)

type hits

val hits_make : unit -> hits
val hits_length : hits -> int

val hits_get : hits -> int -> Entry.t
(** [hits_get h i] is the [i]-th result of the last query, in the same
    order the callback API delivers them.  Raises [Invalid_argument]
    out of bounds. *)

val hits_clear : hits -> unit

val hits_stats : hits -> query_stats
(** The buffer's statistics record — overwritten in place by each
    {!query_into} on this buffer. *)

val query_into :
  ?quarantine:Prt_storage.Quarantine.t ->
  ?deadline:Prt_util.Deadline.t ->
  ?snapshot:snapshot_view ->
  t ->
  Prt_geom.Rect.t ->
  into:hits ->
  unit
(** Same semantics as {!query} (including quarantine, deadline and
    snapshot behaviour), with results and statistics landing in
    [into].  Records the shared metrics like {!query} does. *)

val query_list :
  ?quarantine:Prt_storage.Quarantine.t ->
  ?deadline:Prt_util.Deadline.t ->
  ?snapshot:snapshot_view ->
  t ->
  Prt_geom.Rect.t ->
  Entry.t list * query_stats

val query_count :
  ?quarantine:Prt_storage.Quarantine.t ->
  ?deadline:Prt_util.Deadline.t ->
  ?snapshot:snapshot_view ->
  t ->
  Prt_geom.Rect.t ->
  query_stats

(** Per-query I/O profile, collected by {!query_profile}: the node count
    per level (root = index 0), the classic visit/match counts, the
    pager and buffer-pool activity attributable to the query, and its
    wall-clock time. *)
type profile = {
  pf_levels : int array;  (** nodes visited on each level; index 0 = root *)
  pf_internal : int;
  pf_leaves : int;
  pf_matched : int;  (** the paper's output size [T] *)
  pf_reads : int;  (** pager reads during the query *)
  pf_writes : int;
  pf_hits : int;  (** buffer-pool hits during the query *)
  pf_misses : int;
  pf_seconds : float;
}

val query_profile : t -> Prt_geom.Rect.t -> f:(Entry.t -> unit) -> profile
(** Same traversal and same results as {!query}, but returns a full
    {!profile}. Emits an ["rtree.query"] span when tracing is installed.
    The plain {!query} path is untouched, so profiling costs nothing
    unless requested. *)

val pp_profile : Format.formatter -> profile -> unit

val iter : t -> f:(Entry.t -> unit) -> unit
(** Visit every stored entry. *)

val iter_nodes : t -> f:(depth:int -> id:int -> Node.t -> unit) -> unit
(** Visit every node, with its depth (root = 1) and page id. *)

type structure = {
  nodes : int;
  leaves : int;
  entries : int;
  min_leaf_fill : int;
  min_internal_fanout : int;
  utilization : float;  (** entries / (leaves * capacity) *)
}

exception Invalid of string

val validate : t -> structure
(** Check the R-tree invariants — all leaves on the same level, every
    parent-recorded MBR exactly the union of its child's entries, fanout
    within capacity, metadata count consistent — and return structural
    statistics. Raises {!Invalid} with a description on violation. *)

val mbr : t -> Prt_geom.Rect.t option
(** Bounding box of the whole dataset ([None] when empty). *)

val dump : ?max_depth:int -> t -> Format.formatter -> unit
(** Debug rendering: one line per node (page id, fanout, MBR), indented
    by depth. Intended for small trees. *)

val save_meta : t -> meta_page:int -> unit
(** Persist root/height/count into the given page and flush the pool. *)

val load_meta : Prt_storage.Buffer_pool.t -> meta_page:int -> t
(** Reopen a tree persisted with {!save_meta}. Raises [Invalid_argument]
    on a bad magic number. *)
