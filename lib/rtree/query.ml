(* Query forms beyond the plain window query: point stabbing,
   containment / enclosure variants, and an early-exit existence test.
   All share the R-tree descent and report the same per-level visit
   statistics as [Rtree.query]. *)

module Rect = Prt_geom.Rect
module View = Prt_storage.View
module Mmap_pager = Prt_storage.Mmap_pager
module Buffer_pool = Prt_storage.Buffer_pool

(* The descent stack: page ids still to visit, preallocated per domain
   and reused across searches, so the descent itself performs no
   per-node allocation and no recursion.  Children are pushed in entry
   order and the freshly pushed segment is reversed in place, so pages
   pop in exactly the order the old recursive descent visited them —
   visit counts and result order are unchanged. *)
let stack_key = Domain.DLS.new_key (fun () -> ref (Array.make 256 0))

(* Generic filtered descent: visit children passing [down], report
   entries passing [hit].  Pages are scanned in place — through the
   shared file mapping when the index has a usable mmap backend (no
   syscall, no lock, no copy), through the zero-copy {!Node} cursors on
   the buffer pool otherwise — and each packed entry is materialized as
   a rectangle for the predicate, with an [Entry.t] allocated only for
   reported hits. *)
let search tree ~down ~hit ~f =
  let stats = Rtree.fresh_stats () in
  let stack = Domain.DLS.get stack_key in
  let mm =
    match Rtree.mmap tree with
    | Some _ as s when Buffer_pool.is_clean (Rtree.pool tree) -> s
    | _ -> None
  in
  let ps = Rtree.page_size tree in
  let sp = ref 0 in
  let push id =
    (if !sp = Array.length !stack then begin
       let grown = Array.make (2 * Array.length !stack) 0 in
       Array.blit !stack 0 grown 0 !sp;
       stack := grown
     end);
    !stack.(!sp) <- id;
    incr sp
  in
  (* Reverse the just-pushed children [from, !sp) so they pop in entry
     order (the recursive preorder). *)
  let reverse_pushed from =
    let st = !stack in
    let i = ref from and j = ref (!sp - 1) in
    while !i < !j do
      let tmp = st.(!i) in
      st.(!i) <- st.(!j);
      st.(!j) <- tmp;
      incr i;
      decr j
    done
  in
  let scan_bytes id =
    let buf = Rtree.read_page tree id in
    match Node.page_kind buf with
    | Node.Leaf ->
        stats.Rtree.leaf_visited <- stats.Rtree.leaf_visited + 1;
        Node.iter_entry_rects buf ~f:(fun r eid ->
            if hit r then begin
              stats.Rtree.matched <- stats.Rtree.matched + 1;
              f (Entry.make r eid)
            end)
    | Node.Internal ->
        stats.Rtree.internal_visited <- stats.Rtree.internal_visited + 1;
        let sp0 = !sp in
        Node.iter_entry_rects buf ~f:(fun r cid -> if down r then push cid);
        reverse_pushed sp0
  in
  let scan_mapped mmp w id =
    Mmap_pager.served mmp;
    let m = Mmap_pager.map w in
    let base = id * ps in
    let n = Node.map_length m ~base in
    match Node.map_kind m ~base with
    | Node.Leaf ->
        stats.Rtree.leaf_visited <- stats.Rtree.leaf_visited + 1;
        for i = 0 to n - 1 do
          let off = base + Node.header_size + (i * Entry.size) in
          let r =
            Rect.make ~xmin:(View.get_f64 m off)
              ~ymin:(View.get_f64 m (off + 8))
              ~xmax:(View.get_f64 m (off + 16))
              ~ymax:(View.get_f64 m (off + 24))
          in
          if hit r then begin
            stats.Rtree.matched <- stats.Rtree.matched + 1;
            f (Entry.make r (View.get_i32 m (off + 32)))
          end
        done
    | Node.Internal ->
        stats.Rtree.internal_visited <- stats.Rtree.internal_visited + 1;
        let sp0 = !sp in
        for i = 0 to n - 1 do
          let off = base + Node.header_size + (i * Entry.size) in
          let r =
            Rect.make ~xmin:(View.get_f64 m off)
              ~ymin:(View.get_f64 m (off + 8))
              ~xmax:(View.get_f64 m (off + 16))
              ~ymax:(View.get_f64 m (off + 24))
          in
          if down r then push (View.get_i32 m (off + 32))
        done;
        reverse_pushed sp0
  in
  push (Rtree.root tree);
  (match mm with
  | None ->
      while !sp > 0 do
        decr sp;
        scan_bytes !stack.(!sp)
      done
  | Some mmp ->
      let w = Mmap_pager.window mmp in
      let npages = Mmap_pager.pages w in
      while !sp > 0 do
        decr sp;
        let id = !stack.(!sp) in
        if id >= 0 && id < npages && Mmap_pager.verified mmp w id then
          scan_mapped mmp w id
        else begin
          Mmap_pager.fell_back mmp;
          scan_bytes id
        end
      done);
  stats

(* Entries whose rectangle contains the point (stabbing query). A
   node can only hold such entries if its box contains the point. *)
let stabbing tree ~x ~y ~f =
  let contains r = Rect.contains_point r x y in
  search tree ~down:contains ~hit:contains ~f

let stabbing_list tree ~x ~y =
  let acc = ref [] in
  let stats = stabbing tree ~x ~y ~f:(fun e -> acc := e :: !acc) in
  (List.rev !acc, stats)

(* Entries fully enclosed by the window. Descend on intersection (an
   enclosed entry may sit in a node whose box pokes out of the
   window). *)
let enclosed tree window ~f =
  search tree
    ~down:(fun r -> Rect.intersects r window)
    ~hit:(fun r -> Rect.contains window r)
    ~f

let enclosed_list tree window =
  let acc = ref [] in
  let stats = enclosed tree window ~f:(fun e -> acc := e :: !acc) in
  (List.rev !acc, stats)

(* Entries whose rectangle fully covers the window. Only nodes whose
   box covers the window can hold one. *)
let covering tree window ~f =
  search tree
    ~down:(fun r -> Rect.contains r window)
    ~hit:(fun r -> Rect.contains r window)
    ~f

let covering_list tree window =
  let acc = ref [] in
  let stats = covering tree window ~f:(fun e -> acc := e :: !acc) in
  (List.rev !acc, stats)

exception Found

(* Does anything intersect the window? Stops at the first hit. *)
let exists tree window =
  try
    ignore
      (search tree
         ~down:(fun r -> Rect.intersects r window)
         ~hit:(fun r -> Rect.intersects r window)
         ~f:(fun _ -> raise Found));
    false
  with Found -> true
