(* Query forms beyond the plain window query: point stabbing,
   containment / enclosure variants, and an early-exit existence test.
   All share the R-tree descent and report the same per-level visit
   statistics as [Rtree.query]. *)

module Rect = Prt_geom.Rect

(* Generic filtered descent: visit children passing [down], report
   entries passing [hit].  Pages are scanned in place via the zero-copy
   {!Node} cursor — each packed entry is materialized as a rectangle for
   the predicate, but the per-visit entry array is never built and an
   [Entry.t] is only allocated for reported hits. *)
let search tree ~down ~hit ~f =
  let stats = Rtree.fresh_stats () in
  let rec visit id =
    let buf = Rtree.read_page tree id in
    match Node.page_kind buf with
    | Node.Leaf ->
        stats.Rtree.leaf_visited <- stats.Rtree.leaf_visited + 1;
        Node.iter_entry_rects buf ~f:(fun r eid ->
            if hit r then begin
              stats.Rtree.matched <- stats.Rtree.matched + 1;
              f (Entry.make r eid)
            end)
    | Node.Internal ->
        stats.Rtree.internal_visited <- stats.Rtree.internal_visited + 1;
        Node.iter_entry_rects buf ~f:(fun r cid -> if down r then visit cid)
  in
  visit (Rtree.root tree);
  stats

(* Entries whose rectangle contains the point (stabbing query). A
   node can only hold such entries if its box contains the point. *)
let stabbing tree ~x ~y ~f =
  let contains r = Rect.contains_point r x y in
  search tree ~down:contains ~hit:contains ~f

let stabbing_list tree ~x ~y =
  let acc = ref [] in
  let stats = stabbing tree ~x ~y ~f:(fun e -> acc := e :: !acc) in
  (List.rev !acc, stats)

(* Entries fully enclosed by the window. Descend on intersection (an
   enclosed entry may sit in a node whose box pokes out of the
   window). *)
let enclosed tree window ~f =
  search tree
    ~down:(fun r -> Rect.intersects r window)
    ~hit:(fun r -> Rect.contains window r)
    ~f

let enclosed_list tree window =
  let acc = ref [] in
  let stats = enclosed tree window ~f:(fun e -> acc := e :: !acc) in
  (List.rev !acc, stats)

(* Entries whose rectangle fully covers the window. Only nodes whose
   box covers the window can hold one. *)
let covering tree window ~f =
  search tree
    ~down:(fun r -> Rect.contains r window)
    ~hit:(fun r -> Rect.contains r window)
    ~f

let covering_list tree window =
  let acc = ref [] in
  let stats = covering tree window ~f:(fun e -> acc := e :: !acc) in
  (List.rev !acc, stats)

exception Found

(* Does anything intersect the window? Stops at the first hit. *)
let exists tree window =
  try
    ignore
      (search tree
         ~down:(fun r -> Rect.intersects r window)
         ~hit:(fun r -> Rect.intersects r window)
         ~f:(fun _ -> raise Found));
    false
  with Found -> true
