(** External-memory (I/O-counted) bulk loading for the baseline R-trees.

    Inputs are {!Entry.File} record files in the same pager as the
    resulting tree; every scan, sort and distribution goes through the
    pager, so the pager's counters measure the construction cost the way
    the paper's Figures 9-11 do. Input files are left intact. *)

val load_h :
  Prt_storage.Buffer_pool.t -> mem_records:int -> Entry.File.t -> Rtree.t
(** Packed Hilbert R-tree: one external sort by 2-D Hilbert key of the
    centers, one packing scan. *)

val load_h4 :
  Prt_storage.Buffer_pool.t -> mem_records:int -> Entry.File.t -> Rtree.t
(** Four-dimensional Hilbert R-tree: same, sorting by the 4-D Hilbert
    key. *)

val load_tgs :
  Prt_storage.Buffer_pool.t -> mem_records:int -> Entry.File.t -> Rtree.t
(** Top-down Greedy Split: four external sorts up front, then a scan of
    the current subset per binary partition — effectively
    O((N/B) log2 N) I/Os, as the paper observes. *)

val load_str :
  Prt_storage.Buffer_pool.t -> mem_records:int -> Entry.File.t -> Rtree.t
(** Sort-Tile-Recursive: an x-sort, a slab distribution, a y-sort per
    slab, one packing scan. *)

val world_of_file : Entry.File.t -> Prt_geom.Rect.t
(** Bounding box of a file's entries (one scan). *)

val pack_sorted_file : Prt_storage.Buffer_pool.t -> Entry.File.t -> Rtree.t
(** Pack an already-ordered entry file into a tree bottom-up. *)
