(** Hilbert-curve bulk loaders: the paper's [H] and [H4] baselines. *)

val hilbert2d_key : world:Prt_geom.Rect.t -> Entry.t -> int
(** Hilbert value of the entry's center on a [2^24 x 2^24] grid over the
    bounding square of the dataset (uniform scale on both axes — see the
    Hilbert-order ablation for why the resolution matters). *)

val hilbert4d_key : world:Prt_geom.Rect.t -> Entry.t -> int
(** 4-D Hilbert value of the entry's [(xmin, ymin, xmax, ymax)] point on
    a [2^15]-per-axis grid over the bounding square. *)

val load_h : ?domains:int -> Prt_storage.Buffer_pool.t -> Entry.t array -> Rtree.t
(** Packed Hilbert R-tree: sort by {!hilbert2d_key}, pack bottom-up. *)

val load_h4 : ?domains:int -> Prt_storage.Buffer_pool.t -> Entry.t array -> Rtree.t
(** Four-dimensional Hilbert R-tree: sort by {!hilbert4d_key}, pack
    bottom-up. *)
