(* Bottom-up level packing shared by the sort-based bulk loaders.

   Given entries already arranged in the desired leaf order, pack them
   into full leaves and build each upper level by packing the previous
   level's bounding boxes in the same order — the construction used by
   the packed Hilbert R-trees.  Only the last node of a level may be
   underfull, so space utilization is near 100%, matching the paper's
   experiments. *)

module Rect = Prt_geom.Rect
module Buffer_pool = Prt_storage.Buffer_pool
module Pager = Prt_storage.Pager

(* Pack an ordered entry array into nodes of the given kind; returns the
   parent-level entries (node MBR + node page id), in order. *)
let pack_level pool ~kind entries =
  let page_size = Pager.page_size (Buffer_pool.pager pool) in
  let cap = Node.capacity ~page_size in
  let n = Array.length entries in
  let nnodes = (n + cap - 1) / cap in
  Array.init nnodes (fun i ->
      let lo = i * cap in
      let hi = min n (lo + cap) in
      let node = Node.make kind (Array.sub entries lo (hi - lo)) in
      let id = Buffer_pool.alloc pool in
      Buffer_pool.write pool id (Node.encode ~page_size node);
      Entry.make (Node.mbr node) id)

let build_from_ordered pool entries =
  if Array.length entries = 0 then Rtree.create_empty pool
  else begin
    let page_size = Pager.page_size (Buffer_pool.pager pool) in
    let cap = Node.capacity ~page_size in
    let count = Array.length entries in
    let rec up level height =
      if Array.length level = 1 then (Entry.id level.(0), height)
      else up (pack_level pool ~kind:Node.Internal level) (height + 1)
    in
    let leaves = pack_level pool ~kind:Node.Leaf entries in
    ignore cap;
    let root, height = up leaves 1 in
    Rtree.of_root ~pool ~root ~height ~count
  end

(* Build each upper level by re-ordering the previous level's boxes with
   a caller-supplied rule (used by STR, which re-applies its slab sort at
   every level). [order] must permute the array in place. *)
let build_levelwise pool ~order entries =
  if Array.length entries = 0 then Rtree.create_empty pool
  else begin
    let count = Array.length entries in
    let rec up level height =
      if Array.length level = 1 then (Entry.id level.(0), height)
      else begin
        order level;
        up (pack_level pool ~kind:Node.Internal level) (height + 1)
      end
    in
    let first = Array.copy entries in
    order first;
    let leaves = pack_level pool ~kind:Node.Leaf first in
    let root, height = up leaves 1 in
    Rtree.of_root ~pool ~root ~height ~count
  end
