(* k-nearest-neighbour search over the paged R-tree: the classic
   best-first ("distance browsing") algorithm of Hjaltason & Samet.  A
   single priority queue holds both nodes (keyed by the minimum distance
   of their bounding box to the query point) and entries (keyed by their
   exact distance); popping an entry before any closer node proves it is
   the next nearest.  This gives k-NN in as few node reads as any
   R-tree ordering allows, and an incremental stream for free. *)

module Rect = Prt_geom.Rect
module Pqueue = Prt_util.Pqueue

(* Squared distance from a point to a rectangle (0 inside): the MINDIST
   of the k-NN literature. *)
let mindist2 ~x ~y r =
  let dx =
    if x < Rect.xmin r then Rect.xmin r -. x else if x > Rect.xmax r then x -. Rect.xmax r else 0.0
  in
  let dy =
    if y < Rect.ymin r then Rect.ymin r -. y else if y > Rect.ymax r then y -. Rect.ymax r else 0.0
  in
  (dx *. dx) +. (dy *. dy)

type item = Node_item of int (* page id *) | Entry_item of Entry.t

type stats = { mutable nodes_read : int; mutable reported : int }

type stream = {
  tree : Rtree.t;
  x : float;
  y : float;
  heap : (float * item) Pqueue.t;
  stats : stats;
}

let stream tree ~x ~y =
  let heap = Pqueue.create (fun (a, _) (b, _) -> Float.compare a b) in
  Pqueue.add heap (0.0, Node_item (Rtree.root tree));
  { tree; x; y; heap; stats = { nodes_read = 0; reported = 0 } }

let stats s = s.stats

(* Next nearest entry, with its squared distance. *)
let rec next s =
  match Pqueue.pop s.heap with
  | None -> None
  | Some (d2, Entry_item e) ->
      s.stats.reported <- s.stats.reported + 1;
      Some (e, d2)
  | Some (_, Node_item page) ->
      let node = Rtree.read_node s.tree page in
      s.stats.nodes_read <- s.stats.nodes_read + 1;
      Array.iter
        (fun e ->
          let d2 = mindist2 ~x:s.x ~y:s.y (Entry.rect e) in
          match Node.kind node with
          | Node.Leaf -> Pqueue.add s.heap (d2, Entry_item e)
          | Node.Internal -> Pqueue.add s.heap (d2, Node_item (Entry.id e)))
        (Node.entries node);
      next s

let nearest tree ~x ~y ~k =
  if k < 0 then invalid_arg "Knn.nearest: k must be >= 0";
  let s = stream tree ~x ~y in
  let rec take acc k =
    if k = 0 then List.rev acc
    else begin
      match next s with
      | None -> List.rev acc
      | Some (e, d2) -> take ((e, sqrt d2) :: acc) (k - 1)
    end
  in
  (take [] k, s.stats)

(* All entries within [radius] of the point, nearest first. *)
let within tree ~x ~y ~radius =
  if radius < 0.0 then invalid_arg "Knn.within: radius must be >= 0";
  let r2 = radius *. radius in
  let s = stream tree ~x ~y in
  let rec take acc =
    match next s with
    | Some (e, d2) when d2 <= r2 -> take ((e, sqrt d2) :: acc)
    | Some _ | None -> List.rev acc
  in
  (take [], s.stats)
