(** Bottom-up level packing for sort-based bulk loaders. *)

val pack_level :
  Prt_storage.Buffer_pool.t -> kind:Node.kind -> Entry.t array -> Entry.t array
(** Pack ordered entries into full nodes (only the last may be underfull)
    and return the parent-level entries (MBR + page id), in order. *)

val build_from_ordered : Prt_storage.Buffer_pool.t -> Entry.t array -> Rtree.t
(** Build a complete R-tree whose leaf order is the array order and whose
    upper levels pack that same order — the packed (Hilbert) R-tree
    construction. The input array is not modified. *)

val build_levelwise :
  Prt_storage.Buffer_pool.t -> order:(Entry.t array -> unit) -> Entry.t array -> Rtree.t
(** Like {!build_from_ordered}, but re-applies the in-place ordering
    [order] to every level before packing it (STR re-sorts each level by
    slabs). *)
