(** R-tree entries: a rectangle plus a 32-bit payload (data id in
    leaves, child page id in internal nodes).

    The byte encoding is the paper's 36-byte record — four 8-byte
    coordinates and a 4-byte pointer — which yields the paper's fanout of
    113 on 4 KB pages. *)

type t = { rect : Prt_geom.Rect.t; id : int }

val make : Prt_geom.Rect.t -> int -> t
val rect : t -> Prt_geom.Rect.t
val id : t -> int
val equal : t -> t -> bool

val compare_dim : int -> t -> t -> int
(** [compare_dim dim] totally orders entries by kd-coordinate [dim]
    (0..3 = xmin, ymin, xmax, ymax), breaking ties by the full rectangle
    and then the id, so duplicated geometry still orders
    deterministically. *)

val size : int
(** 36 bytes. *)

val write : bytes -> int -> t -> unit
val read : bytes -> int -> t
val pp : Format.formatter -> t -> unit

(** External-memory files of entries (see {!Prt_extsort.Record_file}). *)
module File : sig
  include module type of Prt_extsort.Record_file.Make (struct
    type nonrec t = t

    let size = size
    let write = write
    let read = read
  end)
end
