(* A bulk-loaded kdB-tree (Robinson 1981): the paged kd-tree the paper
   cites as worst-case optimal for *point* data (Section 1.1, refs
   [21, 17]).  Included as a comparison substrate: on points it matches
   the PR-tree's O(sqrt(N/B) + T/B) guarantee, but it cannot store
   rectangles with extent without replication — which is precisely the
   gap the PR-tree closes (and [load] refuses such input).

   Construction: recursive median splits on the cycling axis down to
   page-sized cells; the cells, in kd order, become the leaf order of a
   packed R-tree (region pages are ordinary internal nodes whose child
   boxes happen to tile the space), so queries, validation and metrics
   reuse the {!Rtree} machinery. *)

module Rect = Prt_geom.Rect
module Select = Prt_util.Select
module Buffer_pool = Prt_storage.Buffer_pool
module Pager = Prt_storage.Pager

exception Not_points

let point_cmp axis a b =
  let c =
    if axis = 0 then Float.compare (Rect.xmin (Entry.rect a)) (Rect.xmin (Entry.rect b))
    else Float.compare (Rect.ymin (Entry.rect a)) (Rect.ymin (Entry.rect b))
  in
  if c <> 0 then c else Entry.compare_dim axis a b

(* Split a copy of [entries] into kd cells: median splits with the axis
   cycling x, y, down to cells of at most [cap] points. Returns the
   cells in kd order; each becomes one leaf page, so sibling leaves tile
   the plane (cells are only ~half full in the worst case — the price of
   the tiling, as in the original kdB-tree). *)
let kd_cells ~cap entries =
  let arr = Array.copy entries in
  let cells = ref [] in
  let rec go lo hi axis =
    if hi - lo <= cap then cells := Array.sub arr lo (hi - lo) :: !cells
    else begin
      let mid = lo + ((hi - lo) / 2) in
      Select.partition_at ~cmp:(point_cmp axis) arr lo hi mid;
      go lo mid (1 - axis);
      go mid hi (1 - axis)
    end
  in
  go 0 (Array.length arr) 0;
  List.rev !cells

let load pool entries =
  Array.iter
    (fun e ->
      let r = Entry.rect e in
      if Rect.width r > 0.0 || Rect.height r > 0.0 then raise Not_points)
    entries;
  let page_size = Pager.page_size (Buffer_pool.pager pool) in
  let cap = Node.capacity ~page_size in
  if Array.length entries = 0 then Rtree.create_empty pool
  else begin
    let leaves =
      List.map
        (fun cell ->
          let node = Node.make Node.Leaf cell in
          let id = Buffer_pool.alloc pool in
          Buffer_pool.write pool id (Node.encode ~page_size node);
          Entry.make (Node.mbr node) id)
        (kd_cells ~cap entries)
    in
    (* Upper levels group consecutive kd subtrees: cells come in kd
       order, so sequential packing keeps regions (nearly) disjoint. *)
    let rec up level height =
      if Array.length level = 1 then (Entry.id level.(0), height)
      else up (Pack.pack_level pool ~kind:Node.Internal level) (height + 1)
    in
    let root, height = up (Array.of_list leaves) 1 in
    Rtree.of_root ~pool ~root ~height ~count:(Array.length entries)
  end
