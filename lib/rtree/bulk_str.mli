(** Sort-Tile-Recursive (STR) bulk loading — an extra baseline beyond the
    paper's three, included for ablations. *)

val order : capacity:int -> Entry.t array -> unit
(** In-place STR ordering of one level: x-sort, tile into vertical slabs
    of [ceil(sqrt(n/capacity))] leaves, y-sort each slab. *)

val load : Prt_storage.Buffer_pool.t -> Entry.t array -> Rtree.t
