(** Structural quality metrics: per-level MBR area, margin and
    sibling-overlap sums — the quantities bulk loaders optimize and
    window-query cost tracks. *)

type level = {
  depth : int;  (** root = 1 *)
  nodes : int;
  entries : int;
  area : float;
  margin : float;
  sibling_overlap : float;
      (** summed pairwise overlap area among nodes sharing a parent *)
}

type t = {
  levels : level list;  (** root first *)
  height : int;
  leaf_area : float;
  leaf_overlap : float;
  dead_space : float;
      (** leaf MBR area not covered by stored rectangles (approximate
          when data rectangles overlap) *)
}

val analyze : Rtree.t -> t
(** One traversal; O(B^2) per internal node for the overlap sums. *)

val pp : Format.formatter -> t -> unit
