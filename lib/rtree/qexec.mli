(** Batched multicore query executor.

    Runs an array of window queries across OCaml 5 domains with chunked
    work-stealing.  Results are deterministic: slot [i] of the output is
    exactly what [Rtree.query_list tree queries.(i)] returns, whatever
    the domain count or scheduling.

    Domain safety: internal nodes are served decoded from a
    {!Prt_storage.Shard_cache} validated against the executor's epoch
    (an index file's commit counter); leaf pages are read through
    [Pager.read_shared] and scanned in place with the zero-copy
    [Node.iter_rects] cursor.  The single-domain buffer pool is only
    touched by the coordinator (one flush at batch start).  The tree
    must not be written during a batch; a write between batches is fine
    provided the epoch changes (which {!Index_file.executor} guarantees). *)

type t

val create : ?shards:int -> ?capacity:int -> ?epoch:(unit -> int) -> Rtree.t -> t
(** [epoch] is sampled at each batch start; cached nodes from older
    epochs are re-decoded. Defaults to a constant, for trees that are
    never modified. [shards]/[capacity] are passed to
    {!Prt_storage.Shard_cache.create}. *)

val tree : t -> Rtree.t

val run :
  ?jobs:int -> t -> Prt_geom.Rect.t array -> (Entry.t list * Rtree.query_stats) array
(** Execute the batch on [jobs] domains (default
    [Parallel.default_domains ()]; the coordinating domain is one of
    them). Emits a ["qexec.batch"] span and mirrors batch totals into
    the [qexec.*] metrics from the coordinator. *)

val total_stats : (Entry.t list * Rtree.query_stats) array -> Rtree.query_stats
(** Sum the per-query visit counts of a batch result. *)

val cache_stats : t -> Prt_storage.Shard_cache.stats
val cache_hit_ratio : t -> float
(** See {!Prt_storage.Shard_cache.hit_ratio}; [nan] before any lookup. *)
