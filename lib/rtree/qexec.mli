(** Batched multicore query executor.

    Runs an array of window queries across OCaml 5 domains with chunked
    work-stealing.  Results are deterministic: slot [i] of the output is
    exactly what [Rtree.query_list tree queries.(i)] returns, whatever
    the domain count or scheduling.

    Domain safety and snapshot isolation: each batch runs against a
    {!snap} acquired from the executor's snapshot provider at batch
    start.  For an index file the provider pins the current committed
    superblock generation ({!Index_file.executor}), so the whole batch
    descends that generation's page images even while a writer commits
    new ones — writers never block readers.  Internal nodes are served
    decoded from a {!Prt_storage.Shard_cache} keyed by
    (page id, generation); leaf pages are read through
    [Pager.read_shared ~gen] and scanned in place with the zero-copy
    [Node.iter_rects] cursor.  The single-domain buffer pool is only
    touched by the default (live-tree) provider, which requires the
    tree to stay unmodified for the duration of the batch. *)

type t

type snap = {
  snap_gen : int;  (** generation to read at; 0 = live, no pin *)
  snap_root : int;  (** root page of that generation's tree *)
  snap_height : int;
  snap_release : unit -> int;
      (** drop the pin (idempotent); returns the new pin floor, below
          which cached nodes are pruned *)
}
(** One batch's pinned view of the tree, produced by the snapshot
    provider passed to {!create}. *)

exception Overloaded of { in_flight : int; limit : int }
(** Raised by {!run} when admission control rejects a batch: admitting
    it would push the executor past [max_in_flight] queries.  Shedding
    load beats queueing it unboundedly — the caller knows immediately
    and can back off. *)

val create :
  ?shards:int ->
  ?capacity:int ->
  ?snapshot:(unit -> snap) ->
  ?quarantine:Prt_storage.Quarantine.t ->
  ?max_in_flight:int ->
  Rtree.t ->
  t
(** [snapshot] is called at each batch start and its release hook when
    the batch ends (even on exceptions).  The default provider flushes
    the tree's buffer pool and reads the live tree unpinned (generation
    0) — correct only for trees not modified during a batch; executors
    over an {!Index_file} get a pinning provider instead.
    [shards]/[capacity] are passed to
    {!Prt_storage.Shard_cache.create}.  [quarantine] shares a damage
    registry with the rest of the serving stack (an {!Index_file} passes
    its own); a private one is created otherwise.  [max_in_flight]
    bounds the queries admitted concurrently across {!run} calls
    (default unbounded); see {!Overloaded}. *)

val tree : t -> Rtree.t

val quarantine : t -> Prt_storage.Quarantine.t
(** The executor's damage registry (shared or private). *)

val run :
  ?jobs:int ->
  ?deadline:Prt_util.Deadline.t ->
  t ->
  Prt_geom.Rect.t array ->
  (Entry.t list * Rtree.query_stats) array
(** Execute the batch on [jobs] domains (default
    [Parallel.default_domains ()]; the coordinating domain is one of
    them). Emits a ["qexec.batch"] span plus per-domain flight-recorder
    spans; each worker records its own query statistics into the
    domain-striped [query.*] metrics (identical totals to the same
    queries run sequentially) and rejected batches tick
    [resilience.batches_rejected].

    Resilience contract: a poisoned page degrades only the subtrees that
    reach it — never a whole query, never the batch.  Each slot's
    [query_stats] carries its own completeness ({!Rtree.completeness});
    quarantined ids are skipped without touching the device.  [deadline]
    applies to the batch: each query checks it per node visit and
    returns [Timed_out] partial results past expiry (queries scheduled
    after expiry return empty [Timed_out] results).  Raises only
    {!Overloaded} (admission) — device damage never escapes. *)

val total_stats : (Entry.t list * Rtree.query_stats) array -> Rtree.query_stats
(** Sum the per-query visit counts of a batch result. *)

val cache_stats : t -> Prt_storage.Shard_cache.stats
val cache_hit_ratio : t -> float
(** See {!Prt_storage.Shard_cache.hit_ratio}; [nan] before any lookup. *)
