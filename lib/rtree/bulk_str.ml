(* Sort-Tile-Recursive bulk loading (Leutenegger, López, Edgington).

   Not one of the paper's measured baselines, but the most widely
   deployed packing heuristic in practice; included as an extra
   comparison point for the benches and as a differently-shaped tree for
   the test suite.  Each level is ordered by vertical slabs of the
   x-sorted sequence, each slab sorted by y — giving roughly square
   tiles of B rectangles. *)

module Rect = Prt_geom.Rect

let compare_center_x a b =
  let ax, _ = Rect.center (Entry.rect a) and bx, _ = Rect.center (Entry.rect b) in
  let c = Float.compare ax bx in
  if c <> 0 then c else Entry.compare_dim 0 a b

let compare_center_y a b =
  let _, ay = Rect.center (Entry.rect a) and _, by = Rect.center (Entry.rect b) in
  let c = Float.compare ay by in
  if c <> 0 then c else Entry.compare_dim 1 a b

let order ~capacity entries =
  let n = Array.length entries in
  if n > capacity then begin
    Array.sort compare_center_x entries;
    let nleaves = (n + capacity - 1) / capacity in
    let slabs = int_of_float (Float.ceil (sqrt (float_of_int nleaves))) in
    let per_slab = slabs * capacity in
    let i = ref 0 in
    while !i < n do
      let len = min per_slab (n - !i) in
      let slab = Array.sub entries !i len in
      Array.sort compare_center_y slab;
      Array.blit slab 0 entries !i len;
      i := !i + len
    done
  end

let load pool entries =
  Prt_obs.Trace.with_span "str.load"
    ~args:[ ("n", Prt_obs.Trace.Int (Array.length entries)) ]
    (fun () ->
      let page_size = Prt_storage.Pager.page_size (Prt_storage.Buffer_pool.pager pool) in
      let capacity = Node.capacity ~page_size in
      Pack.build_levelwise pool ~order:(order ~capacity) entries)
