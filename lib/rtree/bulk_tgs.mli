(** Top-down Greedy Split bulk loading (García–López–Leutenegger), the
    paper's strongest query-time baseline.

    Builds top-down by repeated binary partitions: each cut is the one
    of O(B) candidates over the four kd-orderings minimizing the sum of
    the two resulting bounding-box areas; subtree sizes are rounded to
    powers of B (footnote 1 of the paper), so one node per level may be
    underfull, and undersized groups become thin single-child chains so
    all leaves share a level. *)

val load : Prt_storage.Buffer_pool.t -> Entry.t array -> Rtree.t
(** In-memory construction, O(N log^2 N)-ish work. For the I/O-counted
    external variant see {!Ext_load.load_tgs}. *)
