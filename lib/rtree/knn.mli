(** k-nearest-neighbour search (best-first "distance browsing",
    Hjaltason–Samet) over any bulk-loaded or dynamic {!Rtree.t}.

    Distances are Euclidean point-to-rectangle distances (zero inside
    the rectangle). *)

type stream
(** An incremental nearest-first cursor. *)

type stats = { mutable nodes_read : int; mutable reported : int }

val mindist2 : x:float -> y:float -> Prt_geom.Rect.t -> float
(** Squared minimum distance from a point to a rectangle. *)

val stream : Rtree.t -> x:float -> y:float -> stream
(** Start browsing from the given query point. *)

val next : stream -> (Entry.t * float) option
(** The next-nearest entry and its squared distance, or [None] when the
    tree is exhausted. Amortized cost: each tree node is read at most
    once over the whole stream. *)

val stats : stream -> stats

val nearest : Rtree.t -> x:float -> y:float -> k:int -> (Entry.t * float) list * stats
(** The [k] nearest entries (fewer if the tree is smaller), nearest
    first, with their (non-squared) distances. *)

val within : Rtree.t -> x:float -> y:float -> radius:float -> (Entry.t * float) list * stats
(** All entries within [radius], nearest first. *)
