(* R-tree spatial join: report all intersecting pairs between two
   indexed rectangle sets by synchronized traversal (Brinkhoff, Kriegel
   & Seeger).  At each step, only the child pairs whose bounding boxes
   intersect are pursued; restricting each node's candidates to the
   intersection window first ("window reduction") prunes most pairings
   without touching pages.

   The trees may have different heights; the shorter side "waits" at its
   leaves while the taller side keeps descending. *)

module Rect = Prt_geom.Rect

type stats = {
  mutable nodes_read_left : int;
  mutable nodes_read_right : int;
  mutable pairs : int;
}

(* All intersecting entry pairs between two entry arrays, restricted to
   the given window. The double loop first filters both sides against
   the window so the inner loop runs over survivors only. *)
let join_entries window left right ~f stats =
  let keep arr =
    Array.to_list arr |> List.filter (fun e -> Rect.intersects (Entry.rect e) window)
  in
  let ls = keep left and rs = keep right in
  List.iter
    (fun l ->
      List.iter
        (fun r ->
          if Rect.intersects (Entry.rect l) (Entry.rect r) then begin
            stats.pairs <- stats.pairs + 1;
            f l r
          end)
        rs)
    ls

let pairs ?window tl tr ~f =
  let stats = { nodes_read_left = 0; nodes_read_right = 0; pairs = 0 } in
  let read_left id =
    stats.nodes_read_left <- stats.nodes_read_left + 1;
    Rtree.read_node tl id
  and read_right id =
    stats.nodes_read_right <- stats.nodes_read_right + 1;
    Rtree.read_node tr id
  in
  (* Visit the pair (left node, right node) knowing their boxes
     intersect within [window]. *)
  let rec visit lid rid window =
    let ln = read_left lid and rn = read_right rid in
    match (Node.kind ln, Node.kind rn) with
    | Node.Leaf, Node.Leaf -> join_entries window (Node.entries ln) (Node.entries rn) ~f stats
    | Node.Internal, Node.Internal ->
        (* Descend both sides: all intersecting child pairs. *)
        Array.iter
          (fun le ->
            match Rect.intersection (Entry.rect le) window with
            | None -> ()
            | Some lw ->
                Array.iter
                  (fun re ->
                    match Rect.intersection (Entry.rect re) lw with
                    | None -> ()
                    | Some w -> visit (Entry.id le) (Entry.id re) w)
                  (Node.entries rn))
          (Node.entries ln)
    | Node.Leaf, Node.Internal ->
        (* Keep descending the right side against the left leaf. *)
        Array.iter
          (fun re ->
            match Rect.intersection (Entry.rect re) window with
            | None -> ()
            | Some w -> visit lid (Entry.id re) w)
          (Node.entries rn)
    | Node.Internal, Node.Leaf ->
        Array.iter
          (fun le ->
            match Rect.intersection (Entry.rect le) window with
            | None -> ()
            | Some w -> visit (Entry.id le) rid w)
          (Node.entries ln)
  in
  let window =
    match window with
    | Some w -> Some w
    | None -> (
        (* No pair can fall outside the intersection of the root boxes. *)
        match (Rtree.mbr tl, Rtree.mbr tr) with
        | Some a, Some b -> Rect.intersection a b
        | _ -> None)
  in
  (match window with
  | None -> () (* one side empty or disjoint worlds: no pairs *)
  | Some w -> visit (Rtree.root tl) (Rtree.root tr) w);
  stats

let pairs_list ?window tl tr =
  let acc = ref [] in
  let stats = pairs ?window tl tr ~f:(fun l r -> acc := (l, r) :: !acc) in
  (List.rev !acc, stats)

(* Self-join: all intersecting pairs within one tree, each unordered
   pair reported once (by id order), self-pairs skipped. *)
let self_pairs tree ~f =
  let stats = pairs tree tree ~f:(fun l r -> if Entry.id l < Entry.id r then f l r) in
  (* [pairs] counted ordered pairs including self-hits; recompute the
     meaningful number: each unordered pair appeared twice, each entry
     matched itself once. *)
  stats.pairs <- (stats.pairs - Rtree.count tree) / 2;
  stats
