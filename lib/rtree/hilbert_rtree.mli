(** The dynamic Hilbert R-tree (Kamel–Faloutsos, VLDB 1994) — the
    paper's reference [16]: a fully dynamic R-tree ordered by the
    Hilbert values of rectangle centers, with B-tree-style descent,
    cooperating-sibling redistribution and 2-to-3 splits.

    Kept separate from {!Rtree} because its pages carry an extra 64-bit
    Hilbert/LHV field per entry (48-byte entries, fanout 85 at 4 KB). *)

type t

val create : ?world:Prt_geom.Rect.t -> Prt_storage.Buffer_pool.t -> t
(** An empty tree. [world] fixes the Hilbert quantization frame
    (default the unit square); inserting far outside it degrades
    clustering but stays correct (keys clamp). *)

val insert : t -> Prt_geom.Rect.t -> int -> unit
(** O(log N) node touches; high occupancy via 2-to-3 splits. *)

val delete : t -> Prt_geom.Rect.t -> int -> bool
(** Delete by rectangle and id; underfull nodes borrow from or merge
    with their cooperating sibling. Returns [false] if absent. *)

type query_stats = {
  mutable internal_visited : int;
  mutable leaf_visited : int;
  mutable matched : int;
}

val query : t -> Prt_geom.Rect.t -> f:(Prt_geom.Rect.t -> int -> unit) -> query_stats
(** Standard window query over MBRs. *)

val query_ids : t -> Prt_geom.Rect.t -> int list * query_stats

val count : t -> int
val height : t -> int
val pool : t -> Prt_storage.Buffer_pool.t

val validate : t -> unit
(** Check the Hilbert R-tree invariants: within-node Hilbert order,
    exact LHVs and MBRs, uniform leaf depth, capacity, count.
    Raises [Failure] on violation. *)

val key : t -> Prt_geom.Rect.t -> int
(** The Hilbert key this tree assigns to a rectangle (exposed for
    tests). *)
