(* The persistent, crash-safe logarithmic method: LSM-style ingestion
   over on-disk PR-tree components.  See lsm.mli for the directory
   layout and the crash/degradation contracts.

   Concurrency in one paragraph: a single mutex guards the mutable
   state (buffer, sealed buffer, tombstones, component list, WAL
   handle, counters).  Everything that reads component *pages* does so
   through the snapshot path (Index_file.with_snapshot +
   Rtree.query ~snapshot -> Pager.read_shared), which never touches the
   single-domain buffer pool — so reader domains, the merge domain and
   the insert path coexist without sharing pool state.  Components
   retired by a merge commit are unlinked immediately (open descriptors
   keep them readable) but their handles are only closed once no query
   that might have captured them is still in flight.

   Crash fidelity: an injected Io_error is a transient device fault —
   the process survives, so failure paths may clean up after themselves
   (truncate a torn manifest, unlink a half-built component) before the
   retry.  Simulated_crash means the process is dead at that kill
   point: nothing may touch the disk afterwards, the handle is poisoned,
   and the state left behind is exactly what the next open must
   recover from. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Failpoint = Prt_storage.Failpoint
module Fsops = Prt_storage.Fsops
module Wal = Prt_storage.Wal
module Manifest = Prt_storage.Manifest
module Retry = Prt_storage.Retry
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Qexec = Prt_rtree.Qexec
module Index_file = Prt_rtree.Index_file
module Prtree = Prt_prtree.Prtree
module Ext_build = Prt_prtree.Ext_build
module Metrics = Prt_obs.Metrics
module Flight = Prt_obs.Flight

type wal_sync = [ `Always | `Never ]

(* --- ingest.* telemetry (domain-striped; no-ops unless collecting) --- *)

let m_inserts = Metrics.counter "ingest.inserts"
let m_deletes = Metrics.counter "ingest.deletes"
let m_wal_bytes = Metrics.counter "ingest.wal_bytes"
let m_absorbs = Metrics.counter "ingest.absorbs"
let m_merges = Metrics.counter "ingest.merges"
let m_merge_aborts = Metrics.counter "ingest.merge_aborts"
let m_merge_entries = Metrics.counter "ingest.merge_entries"
let m_replayed = Metrics.counter "ingest.replayed"
let m_orphans = Metrics.counter "ingest.orphans_reclaimed"
let m_tombstones = Metrics.counter "ingest.tombstones"

(* --- components --- *)

type comp_state =
  | Live of Index_file.t
  | Failed of string  (* open/read failed: degrades only its own slice *)

type comp = {
  c_level : int;
  c_seq : int;
  c_file : string;  (* basename *)
  c_count : int;
  mutable c_state : comp_state;
  mutable c_exec : Qexec.t option;  (* lazy batched executor *)
}

type t = {
  dir : string;
  buffer_capacity : int;
  page_size : int;
  cache_pages : int;
  wal_sync : wal_sync;
  ext_threshold : int;
  mem_records : int;
  fsops : Fsops.t;
  retry : Retry.t;
  mu : Mutex.t;
  cond : Condition.t;
  buffer : (int, Entry.t) Hashtbl.t;
  mutable sealed : (int, Entry.t) Hashtbl.t option;
  tombstones : (int, unit) Hashtbl.t;
  mutable comps : comp list;  (* sorted by c_level ascending *)
  mutable wal : Wal.t;
  mutable wal_seq : int;
  mutable old_segments : (int * string * int) list;  (* seq, path, bytes *)
  mutable next_seq : int;
  mutable manifest_seq : int;
  mutable last_merge : string;
  mutable merging : bool;
  mutable merge_wanted : bool;  (* a seal not yet merged or aborted *)
  mutable merges : int;
  mutable merge_aborts : int;
  replayed : int;
  orphans_reclaimed : int;
  mutable bytes_acked : int;
  mutable wal_bytes_written : int;
  mutable comp_pages_written : int;
  mutable retired : Index_file.t list;
  mutable active_queries : int;
  mutable closed : bool;
  mutable fatal : exn option;
  background : bool;
  mutable worker : unit Domain.t option;
}

let dir t = t.dir

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let check_usable t =
  if t.closed then invalid_arg "Lsm: handle closed";
  match t.fatal with Some e -> raise e | None -> ()

let comp_path t c = Filename.concat t.dir c.c_file
let comp_file seq = Printf.sprintf "c%06d.idx" seq
let wal_file seq = Printf.sprintf "wal-%06d.log" seq

let wal_seq_of_filename name =
  if String.length name = 14 && String.sub name 0 4 = "wal-"
     && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name 4 6)
  else None

let is_comp_filename name =
  String.length name = 11
  && name.[0] = 'c'
  && Filename.check_suffix name ".idx"
  && int_of_string_opt (String.sub name 1 6) <> None

let cap t j = t.buffer_capacity * (1 lsl j)

(* --- WAL records: tag (u8) + the 36-byte entry --- *)

let record_size = 1 + Entry.size

let encode_record tag e =
  let b = Bytes.create record_size in
  Bytes.set_uint8 b 0 tag;
  Entry.write b 1 e;
  b

let decode_record b =
  if Bytes.length b <> record_size then None
  else
    match Bytes.get_uint8 b 0 with
    | (0 | 1) as tag -> Some (tag, Entry.read b 1)
    | _ -> None

(* --- opening --- *)

let open_component ~page_size ~cache_pages ~dir (mc : Manifest.component) =
  let path = Filename.concat dir mc.Manifest.mc_file in
  let state =
    match Index_file.open_ ~page_size ~cache_pages path with
    | idx -> Live idx
    | exception e ->
        Flight.failure ~note:mc.Manifest.mc_file "ingest.component_failed";
        Failed (Printexc.to_string e)
  in
  {
    c_level = mc.Manifest.mc_level;
    c_seq = mc.Manifest.mc_seq;
    c_file = mc.Manifest.mc_file;
    c_count = mc.Manifest.mc_count;
    c_state = state;
    c_exec = None;
  }

(* Apply one replayed WAL record.  Inserts land in the buffer; a delete
   cancels a buffered insert or is deferred — whether it tombstones a
   stored entry or targets one a later merge already resolved is only
   decidable once the components are probed (the record outlives the
   merge in its segment above the floor, so a naive replay would
   resurrect resolved tombstones and skew the count bookkeeping). *)
let apply_record ~buffer ~deletes ~replayed payload =
  match decode_record payload with
  | None -> ()  (* CRC-valid but foreign: version skew; skip *)
  | Some (0, e) ->
      Hashtbl.replace buffer (Entry.id e) e;
      incr replayed
  | Some (_, e) ->
      let id = Entry.id e in
      if Hashtbl.mem buffer id then Hashtbl.remove buffer id
      else Hashtbl.replace deletes id e;
      incr replayed

(* Is [e] physically stored in some component?  An unreadable component
   answers "maybe" — the conservative side for a deferred delete. *)
let stored_in_comps comps e =
  List.exists
    (fun c ->
      match c.c_state with
      | Failed _ -> true
      | Live idx ->
          let tree = Index_file.tree idx in
          let found = ref false in
          Index_file.with_snapshot idx (fun view ->
              ignore
                (Rtree.query_unrecorded ~snapshot:view tree (Entry.rect e)
                   ~f:(fun hit ->
                     if Entry.id hit = Entry.id e && Entry.equal hit e then
                       found := true)));
          !found)
    comps

(* Delete everything in the directory the chosen manifest does not
   account for: half-built components, dead WAL segments, stale
   manifests, .tmp leftovers.  Runs before the crash budget is armed,
   so plain Unix calls are correct here. *)
let reclaim_orphans ~dir (m : Manifest.t) ~chosen =
  let keep = Hashtbl.create 16 in
  Hashtbl.replace keep chosen ();
  Hashtbl.replace keep (Manifest.filename (m.Manifest.m_seq - 1)) ();
  List.iter
    (fun (c : Manifest.component) -> Hashtbl.replace keep c.Manifest.mc_file ())
    m.Manifest.m_components;
  let reclaimed = ref 0 in
  Array.iter
    (fun name ->
      if not (Hashtbl.mem keep name) then begin
        let ours =
          is_comp_filename name
          || Filename.check_suffix name ".tmp"
          || Manifest.seq_of_filename name <> None
          ||
          match wal_seq_of_filename name with
          | Some s -> s < m.Manifest.m_wal_floor
          | None -> false
        in
        if ours then begin
          (try Unix.unlink (Filename.concat dir name)
           with Unix.Unix_error _ -> ());
          incr reclaimed;
          Metrics.tick m_orphans
        end
      end)
    (try Sys.readdir dir with Sys_error _ -> [||]);
  !reclaimed

let make ?(buffer_capacity = 1024) ?(page_size = Pager.default_page_size)
    ?(cache_pages = 4096) ?(wal_sync = `Always) ?(ext_threshold = 50_000)
    ?(mem_records = 18_000) ?retry_policy ?faults ?crash ?(background = false)
    ~fresh dirname =
  if buffer_capacity < 1 then invalid_arg "Lsm: buffer_capacity must be >= 1";
  let fsops = Fsops.create ?faults () in
  let retry =
    Retry.create ?policy:retry_policy
      ~observe:(function
        | Retry.Tripped -> Flight.failure "ingest.breaker_tripped"
        | _ -> ())
      ()
  in
  if fresh then begin
    (try Unix.mkdir dirname 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    if Manifest.load dirname <> None then
      invalid_arg ("Lsm.create: " ^ dirname ^ " already holds an index")
  end;
  let manifest, chosen =
    if fresh then begin
      (try
         Retry.run retry ~op:"ingest.manifest_init" (fun () ->
             Manifest.write ~fsops ~dir:dirname Manifest.empty)
       with Manifest.Published_unsynced _ ->
         (* Renamed into place: the empty manifest is live, only its
            directory sync is pending — the next publication syncs. *)
         ());
      (Manifest.empty, Manifest.filename 0)
    end
    else
      match Manifest.load dirname with
      | Some (m, name) -> (m, name)
      | None -> failwith ("Lsm.open_: no valid manifest in " ^ dirname)
  in
  let buffer = Hashtbl.create (2 * buffer_capacity) in
  let tombstones = Hashtbl.create 64 in
  List.iter
    (fun id -> Hashtbl.replace tombstones id ())
    manifest.Manifest.m_tombstones;
  let comps =
    List.sort
      (fun a b -> compare a.c_level b.c_level)
      (List.map
         (open_component ~page_size ~cache_pages ~dir:dirname)
         manifest.Manifest.m_components)
  in
  (* Replay WAL segments at or above the floor, oldest first; the
     newest becomes the active segment again. *)
  let replayed = ref 0 in
  let next_seq = ref manifest.Manifest.m_next in
  let old_segments = ref [] in
  let segments =
    (try Sys.readdir dirname with Sys_error _ -> [||])
    |> Array.to_list
    |> List.filter_map (fun name ->
           match wal_seq_of_filename name with
           | Some s when s >= manifest.Manifest.m_wal_floor -> Some (s, name)
           | _ -> None)
    |> List.sort compare
  in
  let deletes = Hashtbl.create 16 in
  let f = apply_record ~buffer ~deletes ~replayed in
  let wal, wal_seq =
    let rec go = function
      | [] ->
          let seq = max !next_seq manifest.Manifest.m_wal_floor in
          next_seq := seq + 1;
          ( Retry.run retry ~op:"ingest.wal_open" (fun () ->
                Wal.create ~fsops (Filename.concat dirname (wal_file seq))),
            seq )
      | [ (seq, name) ] ->
          let path = Filename.concat dirname name in
          let _, valid, _torn = Wal.replay path ~f in
          next_seq := max !next_seq (seq + 1);
          ( Retry.run retry ~op:"ingest.wal_open" (fun () ->
                Wal.open_append ~fsops path ~valid),
            seq )
      | (seq, name) :: rest ->
          let path = Filename.concat dirname name in
          let _, valid, _ = Wal.replay path ~f in
          old_segments := (seq, path, valid) :: !old_segments;
          next_seq := max !next_seq (seq + 1);
          go rest
    in
    go segments
  in
  (* Resolve the deferred deletes against the opened components. *)
  Hashtbl.iter
    (fun id e ->
      if not (Hashtbl.mem buffer id) && stored_in_comps comps e then
        Hashtbl.replace tombstones id ())
    deletes;
  if !replayed > 0 then begin
    Metrics.add m_replayed !replayed;
    Flight.point ~arg:!replayed "ingest.replay"
  end;
  let orphans =
    if fresh then 0 else reclaim_orphans ~dir:dirname manifest ~chosen
  in
  let t =
    {
      dir = dirname;
      buffer_capacity;
      page_size;
      cache_pages;
      wal_sync;
      ext_threshold;
      mem_records;
      fsops;
      retry;
      mu = Mutex.create ();
      cond = Condition.create ();
      buffer;
      sealed = None;
      tombstones;
      comps;
      wal;
      wal_seq;
      old_segments = !old_segments;
      next_seq = !next_seq;
      manifest_seq = manifest.Manifest.m_seq;
      last_merge = manifest.Manifest.m_last_merge;
      merging = false;
      merge_wanted = false;
      merges = 0;
      merge_aborts = 0;
      replayed = !replayed;
      orphans_reclaimed = orphans;
      bytes_acked = 0;
      wal_bytes_written = 0;
      comp_pages_written = 0;
      retired = [];
      active_queries = 0;
      closed = false;
      fatal = None;
      background;
      worker = None;
    }
  in
  (* Recovery is done: arm the kill-point budget from here on. *)
  Fsops.set_crash fsops crash;
  t

(* --- counting --- *)

let count_locked t =
  List.fold_left (fun acc c -> acc + c.c_count) 0 t.comps
  + Hashtbl.length t.buffer
  + (match t.sealed with Some s -> Hashtbl.length s | None -> 0)
  - Hashtbl.length t.tombstones

let count t = with_lock t (fun () -> count_locked t)

let buffer_size t =
  with_lock t (fun () ->
      Hashtbl.length t.buffer
      + match t.sealed with Some s -> Hashtbl.length s | None -> 0)

let components t =
  with_lock t (fun () -> List.map (fun c -> (c.c_level, c.c_count)) t.comps)

(* --- merge machinery --- *)

(* Choose the target slot: walk levels upward, absorbing live
   components (failed ones keep their slot and are routed around) until
   an unoccupied level fits the running total — the logarithmic
   method's first-fitting-empty-slot rule, generalized to tolerate
   oversized sealed buffers and unreadable components. *)
let choose_slot t ~sealed_count =
  let comp_at j = List.find_opt (fun c -> c.c_level = j) t.comps in
  let rec go j participants total =
    match comp_at j with
    | Some { c_state = Failed _; _ } -> go (j + 1) participants total
    | Some ({ c_state = Live _; _ } as c) ->
        go (j + 1) (c :: participants) (total + c.c_count)
    | None ->
        if total <= cap t j then (j, participants)
        else go (j + 1) participants total
  in
  go 0 [] sealed_count

(* Collect the live entries of the sealed buffer plus the participant
   components, filtering (and resolving) tombstones.  Component reads
   go through the snapshot path: safe from the merge domain. *)
let collect_entries ~sealed ~participants ~tomb =
  let acc = ref [] and resolved = ref [] in
  let keep e =
    let id = Entry.id e in
    if Hashtbl.mem tomb id then resolved := id :: !resolved
    else acc := e :: !acc
  in
  Hashtbl.iter (fun _ e -> keep e) sealed;
  List.iter
    (fun c ->
      match c.c_state with
      | Failed _ -> ()
      | Live idx -> (
          let tree = Index_file.tree idx in
          match Rtree.mbr tree with
          | None -> ()
          | Some window ->
              Index_file.with_snapshot idx (fun view ->
                  ignore
                    (Rtree.query_unrecorded ~snapshot:view tree window ~f:keep))))
    participants;
  (Array.of_list !acc, !resolved)

let build_component t ~seq ~entries =
  let tmp = Filename.concat t.dir (comp_file seq ^ ".tmp") in
  let final = Filename.concat t.dir (comp_file seq) in
  let n = Array.length entries in
  let idx =
    Index_file.create ~page_size:t.page_size ~cache_pages:t.cache_pages
      ?crash:(Fsops.crash t.fsops) tmp
      ~build:(fun pool ->
        if n <= t.ext_threshold then Prtree.load pool entries
        else begin
          (* The external loader: stream the input through an entry
             record file in the component's own pager, so the sort and
             distribution passes are I/O-efficient and I/O-counted. *)
          let file = Entry.File.of_array (Buffer_pool.pager pool) entries in
          let tree = Ext_build.load ~mem_records:t.mem_records pool file in
          Entry.File.destroy file;
          tree
        end)
  in
  let pages = (Pager.snapshot (Index_file.pager idx)).Pager.s_writes in
  (try
     Fsops.rename t.fsops ~src:tmp ~dst:final;
     Fsops.fsync_dir t.fsops t.dir
   with e ->
     Index_file.close idx;
     (* Only a transient fault may clean up; at a kill point the
        half-built file must stay behind for the opener to reclaim.
        The fault may have hit either side of the rename, so remove
        whichever name exists — the retry rebuilds under a fresh seq
        and nothing references this one yet. *)
     (match e with
     | Pager.Io_error _ ->
         (try Unix.unlink tmp with Unix.Unix_error _ -> ());
         (try Unix.unlink final with Unix.Unix_error _ -> ())
     | _ -> ());
     raise e);
  (idx, pages)

(* One full merge attempt: collect, build, publish, swap in memory.
   Runs with no lock held except for the slot choice and the publish
   step.  Raises Pager.Io_error on injected faults (the caller retries
   under the Retry engine) and Simulated_crash on an exhausted kill
   budget. *)
let merge_attempt t ~compact_all ~floor_seq =
  let sealed, tomb, (level, participants) =
    with_lock t (fun () ->
        (* Copy, don't alias: a concurrent seal coalesces the next
           buffer generation into [t.sealed] while this merge runs, and
           those entries belong to the NEXT merge. *)
        let sealed =
          match t.sealed with Some s -> Hashtbl.copy s | None -> Hashtbl.create 1
        in
        let tomb = Hashtbl.copy t.tombstones in
        let target =
          if compact_all then begin
            let live =
              List.filter
                (fun c -> match c.c_state with Live _ -> true | _ -> false)
                t.comps
            in
            let total =
              Hashtbl.length sealed
              + List.fold_left (fun a c -> a + c.c_count) 0 live
            in
            let blocked j =
              List.exists
                (fun c ->
                  c.c_level = j
                  && match c.c_state with Failed _ -> true | _ -> false)
                t.comps
            in
            let rec fit j =
              if (not (blocked j)) && total <= cap t j then j else fit (j + 1)
            in
            (fit 0, live)
          end
          else choose_slot t ~sealed_count:(Hashtbl.length sealed)
        in
        (sealed, tomb, target))
  in
  let entries, resolved = collect_entries ~sealed ~participants ~tomb in
  let seq =
    with_lock t (fun () ->
        let s = t.next_seq in
        t.next_seq <- s + 1;
        s)
  in
  let built =
    if Array.length entries = 0 then None
    else Some (build_component t ~seq ~entries)
  in
  let participant_files = List.map (fun c -> comp_path t c) participants in
  let outcome =
    Printf.sprintf "ok: %s%d entries -> level %d (%d component%s absorbed)"
      (if compact_all then "compacted " else "")
      (Array.length entries) level
      (List.length participants)
      (if List.length participants = 1 then "" else "s")
  in
  (* Publish: one manifest swap under the lock, then commit in memory. *)
  with_lock t (fun () ->
      List.iter (fun id -> Hashtbl.remove t.tombstones id) resolved;
      let keep = List.filter (fun c -> not (List.memq c participants)) t.comps in
      let new_comp =
        Option.map
          (fun (idx, _) ->
            {
              c_level = level;
              c_seq = seq;
              c_file = comp_file seq;
              c_count = Array.length entries;
              c_state = Live idx;
              c_exec = None;
            })
          built
      in
      let comps' =
        List.sort
          (fun a b -> compare a.c_level b.c_level)
          (match new_comp with Some c -> c :: keep | None -> keep)
      in
      let m =
        {
          Manifest.m_seq = t.manifest_seq + 1;
          m_next = t.next_seq;
          m_wal_floor = floor_seq;
          m_components =
            List.map
              (fun c ->
                {
                  Manifest.mc_level = c.c_level;
                  mc_seq = c.c_seq;
                  mc_file = c.c_file;
                  mc_count = c.c_count;
                })
              comps';
          m_tombstones =
            Hashtbl.fold (fun id () acc -> id :: acc) t.tombstones [];
          m_last_merge = outcome;
        }
      in
      (match Manifest.write ~fsops:t.fsops ~dir:t.dir m with
      | () -> ()
      | exception Manifest.Published_unsynced _ ->
          (* The rename landed: the new manifest IS the on-disk truth
             and only its directory sync is missing.  Rolling back here
             would delete a component the durable manifest references
             and strand sealed entries below the advanced WAL floor.
             Re-attempt the sync; if the device keeps faulting, commit
             anyway with a widened power-loss window — the same
             weakening the seal applies to its rotated-segment sync. *)
          Flight.failure "ingest.manifest_sync_deferred";
          (try
             Retry.run t.retry ~op:"ingest.manifest_sync" (fun () ->
                 Fsops.fsync_dir t.fsops t.dir)
           with Pager.Io_error _ -> ())
      | exception e ->
          (* The swap failed before publication: the old manifest still
             rules.  On a transient fault, roll the in-memory side back
             so the retry (or the abort path) sees consistent pre-merge
             state; at a kill point, leave the disk exactly as it is. *)
          (match e with
          | Pager.Io_error _ -> (
              List.iter
                (fun id -> Hashtbl.replace t.tombstones id ())
                resolved;
              match built with
              | Some (idx, _) ->
                  Index_file.close idx;
                  (try Unix.unlink (Filename.concat t.dir (comp_file seq))
                   with Unix.Unix_error _ -> ())
              | None -> ())
          | _ -> ());
          raise e);
      Flight.point ~arg:m.Manifest.m_seq "ingest.manifest_swap";
      t.manifest_seq <- m.Manifest.m_seq;
      t.retired <-
        List.fold_left
          (fun acc c ->
            match c.c_state with Live idx -> idx :: acc | Failed _ -> acc)
          t.retired participants;
      t.comps <- comps';
      (* Remove exactly the entries this merge absorbed; anything a
         mid-merge seal coalesced in stays sealed for the next one. *)
      (match t.sealed with
      | Some s ->
          Hashtbl.iter (fun id _ -> Hashtbl.remove s id) sealed;
          if Hashtbl.length s = 0 then t.sealed <- None
      | None -> ());
      t.merges <- t.merges + 1;
      t.last_merge <- outcome;
      (match built with
      | Some (_, pages) -> t.comp_pages_written <- t.comp_pages_written + pages
      | None -> ());
      Metrics.tick m_merges;
      Metrics.add m_merge_entries (Array.length entries));
  (* Post-commit cleanup: every unlink is its own kill point; a crash
     here leaves orphans for the next open to reclaim.  Open snapshot
     descriptors keep the unlinked participants readable until the
     retired handles drain. *)
  List.iter (fun p -> Fsops.unlink t.fsops p) participant_files;
  let dead =
    List.filter
      (fun (s, _, _) -> s < floor_seq)
      (with_lock t (fun () -> t.old_segments))
  in
  List.iter (fun (_, p, _) -> Fsops.unlink t.fsops p) dead;
  (* Re-partition the CURRENT list under the final lock: a seal that
     ran between the read above and here appended a fresh rotated-out
     segment that a stale write-back would silently drop. *)
  with_lock t (fun () ->
      t.old_segments <-
        List.filter (fun (s, _, _) -> s >= floor_seq) t.old_segments)

(* Seal the active buffer (coalescing into any sealed leftover from an
   aborted merge) and rotate the WAL.  Caller holds the lock.  After
   this, every sealed record lives in a segment below the new active
   one, so a merge of the sealed set may advance the floor there. *)
let seal_locked_body t =
  let seq = t.next_seq in
  (* Open the successor segment FIRST: if this fails (transiently, past
     retries), nothing has changed — the active segment still rules and
     the seal is simply deferred to the next trigger. *)
  let fresh =
    Retry.run t.retry ~op:"ingest.wal_rotate" (fun () ->
        Wal.create ~fsops:t.fsops (Filename.concat t.dir (wal_file seq)))
  in
  t.next_seq <- seq + 1;
  (match t.sealed with
  | None ->
      t.sealed <- Some (Hashtbl.copy t.buffer);
      Hashtbl.reset t.buffer
  | Some s ->
      Hashtbl.iter (fun id e -> Hashtbl.replace s id e) t.buffer;
      Hashtbl.reset t.buffer);
  let old = t.wal in
  let old_path = Wal.path old and old_seq = t.wal_seq in
  (* Make the rotated-out segment durable even under `Never; a
     transient sync fault only widens the power-loss window (the bytes
     are written), so it must not fail an already-acknowledged seal. *)
  (try Retry.run t.retry ~op:"ingest.seal_sync" (fun () -> Wal.sync old)
   with Pager.Io_error _ -> ());
  let old_size = Wal.size old in
  Wal.close old;
  t.old_segments <- (old_seq, old_path, old_size) :: t.old_segments;
  t.wal <- fresh;
  t.wal_seq <- seq;
  t.merge_wanted <- true;
  Metrics.tick m_absorbs

(* A kill point during the rotation (the new segment's create) dies
   with the handle poisoned, like every other crash path. *)
let seal_locked t =
  try seal_locked_body t
  with Failpoint.Simulated_crash _ as ex ->
    t.fatal <- Some ex;
    raise ex

(* Run the pending merge now, on the calling domain.  The caller must
   NOT hold the lock.  Returns whether a merge actually ran (false:
   nothing sealed, or another domain holds the merge).  On failure,
   [raise_on_error] distinguishes flush/compact (propagate the
   Io_error) from insert-triggered absorbs (record the abort and move
   on — the sealed entries stay durable and queryable, and the next
   trigger retries). *)
let merge_pending t ~compact_all ~raise_on_error =
  let proceed =
    with_lock t (fun () ->
        if t.merging || t.closed || t.fatal <> None then false
        else if t.sealed = None && not compact_all then false
        else begin
          t.merging <- true;
          true
        end)
  in
  if proceed then begin
    let floor_seq = with_lock t (fun () -> t.wal_seq) in
    Flight.begin_span "ingest.merge";
    let finish_abort e =
      with_lock t (fun () ->
          t.merge_aborts <- t.merge_aborts + 1;
          t.merge_wanted <- false;
          t.last_merge <-
            Printf.sprintf "aborted: %s"
              (match e with
              | Pager.Io_error m -> m
              | Pager.Corrupt_page m -> "corrupt page: " ^ m
              | e -> Printexc.to_string e);
          t.merging <- false;
          Condition.broadcast t.cond);
      Metrics.tick m_merge_aborts;
      Flight.failure ~note:t.last_merge "ingest.merge_abort";
      Flight.end_span "ingest.merge"
    in
    (match
       Retry.run t.retry ~op:"ingest.merge" (fun () ->
           merge_attempt t ~compact_all ~floor_seq)
     with
    | () ->
        with_lock t (fun () ->
            (* Sealed leftovers from a mid-merge coalesce keep the want
               flag up so the worker drains them. *)
            if t.sealed = None then t.merge_wanted <- false;
            t.merging <- false;
            Condition.broadcast t.cond);
        Flight.end_span "ingest.merge"
    | exception (Pager.Io_error _ as e) ->
        finish_abort e;
        if raise_on_error then raise e
    | exception (Pager.Corrupt_page _ as e) ->
        (* A corrupt participant page: retrying is useless, silently
           dropping its entries is worse.  Abort; the component stays
           queryable through its quarantine-degraded reads. *)
        finish_abort e;
        if raise_on_error then raise e
    | exception e ->
        (* A simulated crash (or an unexpected bug): the handle is
           dead.  Leave the merging flag set so nothing else runs,
           record the exception, and propagate. *)
        with_lock t (fun () ->
            t.fatal <- Some e;
            Condition.broadcast t.cond);
        raise e);
    true
  end
  else false

(* Drive the pending work to completion from flush/compact: run the
   merge here if we can take it, otherwise wait out whoever holds it —
   and if their attempt aborted (leaving the seal behind), take over
   and raise the real error. *)
let rec run_now t ~compact_all =
  if not (merge_pending t ~compact_all ~raise_on_error:true) then begin
    let again =
      with_lock t (fun () ->
          while t.merging do
            Condition.wait t.cond t.mu
          done;
          check_usable t;
          compact_all || t.sealed <> None)
    in
    if again then run_now t ~compact_all
  end

(* --- background merge domain --- *)

let rec worker_loop t =
  let job =
    with_lock t (fun () ->
        let rec wait () =
          if t.closed || t.fatal <> None then `Stop
          else if t.merge_wanted && t.sealed <> None && not t.merging then
            `Merge
          else begin
            Condition.wait t.cond t.mu;
            wait ()
          end
        in
        wait ())
  in
  match job with
  | `Stop -> ()
  | `Merge ->
      (try ignore (merge_pending t ~compact_all:false ~raise_on_error:false)
       with _ -> () (* fatal recorded; the wait above exits *));
      worker_loop t

let start_worker t =
  if t.background then t.worker <- Some (Domain.spawn (fun () -> worker_loop t))

let create ?buffer_capacity ?page_size ?cache_pages ?wal_sync ?ext_threshold
    ?mem_records ?retry_policy ?faults ?crash ?background dirname =
  let t =
    make ?buffer_capacity ?page_size ?cache_pages ?wal_sync ?ext_threshold
      ?mem_records ?retry_policy ?faults ?crash ?background ~fresh:true dirname
  in
  start_worker t;
  t

let open_ ?buffer_capacity ?page_size ?cache_pages ?wal_sync ?ext_threshold
    ?mem_records ?retry_policy ?faults ?crash ?background dirname =
  let t =
    make ?buffer_capacity ?page_size ?cache_pages ?wal_sync ?ext_threshold
      ?mem_records ?retry_policy ?faults ?crash ?background ~fresh:false dirname
  in
  start_worker t;
  t

(* --- writes --- *)

(* Append one record, under the lock.  Bounded retries absorb transient
   append/sync faults (the WAL truncates its torn prefix back before
   each retry, keeping the segment frame-aligned); an exhausted budget
   fails the insert — nothing was acknowledged.  A kill point poisons
   the handle: the process is dead at that ordinal. *)
let log_record t tag e =
  try
    Retry.run t.retry ~op:"ingest.wal" (fun () ->
        Wal.append t.wal (encode_record tag e);
        match t.wal_sync with `Always -> Wal.sync t.wal | `Never -> ());
    t.wal_bytes_written <- t.wal_bytes_written + record_size + Wal.frame_overhead;
    Metrics.add m_wal_bytes (record_size + Wal.frame_overhead)
  with Failpoint.Simulated_crash _ as ex ->
    t.fatal <- Some ex;
    raise ex

let insert t e =
  let trigger =
    with_lock t (fun () ->
        check_usable t;
        let id = Entry.id e in
        if
          Hashtbl.mem t.buffer id
          || match t.sealed with Some s -> Hashtbl.mem s id | None -> false
        then invalid_arg "Lsm.insert: duplicate entry id in buffer";
        (* An unresolved tombstone means a dead copy of this id still
           lives in some component; the id-keyed tombstone cannot tell
           that copy apart from a re-insert, so admitting one would
           both hide the new entry from queries and drop it at the next
           merge while the dead copy resurrects.  Reject until a merge
           resolves the tombstone (flush/compact forces that). *)
        if Hashtbl.mem t.tombstones id then
          invalid_arg "Lsm.insert: id has an unresolved tombstone";
        (* Background mode: a full buffer on top of an unmerged seal
           waits here rather than growing without bound. *)
        if t.background then
          while
            Hashtbl.length t.buffer >= t.buffer_capacity
            && t.sealed <> None
            && t.merge_wanted  (* after an abort, coalesce instead *)
            && t.fatal = None
            && not t.closed
          do
            Condition.wait t.cond t.mu
          done;
        check_usable t;
        log_record t 0 e;
        Hashtbl.replace t.buffer id e;
        t.bytes_acked <- t.bytes_acked + record_size;
        Metrics.tick m_inserts;
        if Hashtbl.length t.buffer >= t.buffer_capacity then begin
          (* This insert is already acknowledged (logged + buffered): a
             transient rotation failure defers the seal to the next
             trigger rather than failing a durable insert. *)
          match seal_locked t with
          | () ->
              Condition.broadcast t.cond;
              true
          | exception Pager.Io_error _ -> false
        end
        else false)
  in
  if trigger && not t.background then
    ignore (merge_pending t ~compact_all:false ~raise_on_error:false)

(* Every reader of component pages registers in active_queries; retired
   handles (unlinked by a merge commit, still open) are only closed
   once the count drains to zero. *)
let drain_retired_locked t =
  if t.active_queries = 0 && t.retired <> [] then begin
    let dead = t.retired in
    t.retired <- [];
    List.iter Index_file.close dead
  end

let finish_query t =
  with_lock t (fun () ->
      t.active_queries <- t.active_queries - 1;
      drain_retired_locked t)

(* Does the entry exist in the sealed buffer or some component?  The
   exact rectangle confines the probe to one window query per
   component, on the snapshot path.  Registered as a query: a
   concurrent merge commit may retire the captured handles, and only
   the active_queries count keeps drain_retired_locked from closing
   them under our feet. *)
let mem_stored t e =
  let id = Entry.id e in
  let sealed_hit, comps =
    with_lock t (fun () ->
        t.active_queries <- t.active_queries + 1;
        ( (match t.sealed with
          | Some s -> (
              match Hashtbl.find_opt s id with
              | Some e' -> Entry.equal e e'
              | None -> false)
          | None -> false),
          t.comps ))
  in
  Fun.protect
    ~finally:(fun () -> finish_query t)
    (fun () ->
      sealed_hit
      || List.exists
           (fun c ->
             match c.c_state with
             | Failed _ -> false
             | Live idx ->
                 let tree = Index_file.tree idx in
                 let found = ref false in
                 Index_file.with_snapshot idx (fun view ->
                     ignore
                       (Rtree.query_unrecorded ~snapshot:view tree
                          (Entry.rect e) ~f:(fun hit ->
                            if Entry.id hit = id && Entry.equal hit e then
                              found := true)));
                 !found)
           comps)

let rec delete t e =
  let buffered =
    with_lock t (fun () ->
        check_usable t;
        let id = Entry.id e in
        if Hashtbl.mem t.buffer id then begin
          log_record t 1 e;
          Hashtbl.remove t.buffer id;
          Metrics.tick m_deletes;
          Some true
        end
        else if Hashtbl.mem t.tombstones id then Some false
        else None)
  in
  match buffered with
  | Some r -> r
  | None ->
      if mem_stored t e then begin
        let landed =
          with_lock t (fun () ->
              check_usable t;
              let id = Entry.id e in
              (* The probe ran unlocked: a concurrent insert may have
                 re-buffered this id in the window (legal — the
                 tombstone doesn't exist yet).  An id-keyed tombstone
                 would kill that acknowledged insert too, so restart
                 and let the buffered-delete path handle it. *)
              if
                Hashtbl.mem t.buffer id
                || match t.sealed with Some s -> Hashtbl.mem s id | None -> false
              then false
              else begin
                log_record t 1 e;
                Hashtbl.replace t.tombstones id ();
                Metrics.tick m_deletes;
                Metrics.tick m_tombstones;
                true
              end)
        in
        if landed then true else delete t e
      end
      else false

let flush t =
  with_lock t (fun () ->
      check_usable t;
      if Hashtbl.length t.buffer > 0 then seal_locked t);
  run_now t ~compact_all:false

let compact t =
  with_lock t (fun () ->
      check_usable t;
      if Hashtbl.length t.buffer > 0 then seal_locked t);
  run_now t ~compact_all:true

let wait_merges t =
  with_lock t (fun () ->
      while
        t.merging || (t.merge_wanted && t.sealed <> None && t.fatal = None)
      do
        Condition.wait t.cond t.mu
      done)

(* --- queries --- *)

let is_dead tomb e =
  match tomb with None -> false | Some tbl -> Hashtbl.mem tbl (Entry.id e)

let query ?deadline t window ~f =
  (* Capture a consistent view for the fan-out: buffer/sealed matches,
     the component list and a tombstone snapshot, all under the lock;
     the component descents then run without it. *)
  let memory, comps, tomb =
    with_lock t (fun () ->
        check_usable t;
        t.active_queries <- t.active_queries + 1;
        let tomb =
          if Hashtbl.length t.tombstones = 0 then None
          else Some (Hashtbl.copy t.tombstones)
        in
        let acc = ref [] in
        let scan tbl =
          Hashtbl.iter
            (fun _ e ->
              if Rect.intersects (Entry.rect e) window then acc := e :: !acc)
            tbl
        in
        scan t.buffer;
        (match t.sealed with Some s -> scan s | None -> ());
        (!acc, t.comps, tomb))
  in
  Fun.protect
    ~finally:(fun () -> finish_query t)
    (fun () ->
      let stats = Rtree.fresh_stats () in
      let matched = ref 0 in
      List.iter
        (fun e ->
          if not (is_dead tomb e) then begin
            incr matched;
            f e
          end)
        memory;
      List.iter
        (fun c ->
          match c.c_state with
          | Failed _ ->
              stats.Rtree.skipped_subtrees <- stats.Rtree.skipped_subtrees + 1
          | Live idx -> (
              let tree = Index_file.tree idx in
              match
                Index_file.with_snapshot idx (fun view ->
                    Rtree.query_unrecorded
                      ~quarantine:(Index_file.quarantine idx) ?deadline
                      ~snapshot:view tree window ~f:(fun e ->
                        if not (is_dead tomb e) then begin
                          incr matched;
                          f e
                        end))
              with
              | s -> Rtree.merge_stats stats s
              | exception _ ->
                  (* An unexpectedly dead component degrades its own
                     contribution only.  c_state is read under the lock
                     by merges/stats, so the demotion takes it too. *)
                  with_lock t (fun () -> c.c_state <- Failed "query failed");
                  stats.Rtree.skipped_subtrees <-
                    stats.Rtree.skipped_subtrees + 1))
        comps;
      stats.Rtree.matched <- !matched;
      stats)

let query_list ?deadline t window =
  let acc = ref [] in
  let stats = query ?deadline t window ~f:(fun e -> acc := e :: !acc) in
  (List.rev !acc, stats)

let query_batch ?jobs ?deadline t windows =
  let memory, comps, tomb =
    with_lock t (fun () ->
        check_usable t;
        t.active_queries <- t.active_queries + 1;
        let tomb =
          if Hashtbl.length t.tombstones = 0 then None
          else Some (Hashtbl.copy t.tombstones)
        in
        let acc = ref [] in
        Hashtbl.iter (fun _ e -> acc := e :: !acc) t.buffer;
        (match t.sealed with
        | Some s -> Hashtbl.iter (fun _ e -> acc := e :: !acc) s
        | None -> ());
        (!acc, t.comps, tomb))
  in
  Fun.protect
    ~finally:(fun () -> finish_query t)
    (fun () ->
      let results =
        Array.map
          (fun w ->
            let hits =
              List.filter
                (fun e ->
                  Rect.intersects (Entry.rect e) w && not (is_dead tomb e))
                memory
            in
            (ref (List.rev hits), Rtree.fresh_stats (), ref (List.length hits)))
          windows
      in
      List.iter
        (fun c ->
          match c.c_state with
          | Failed _ ->
              Array.iter
                (fun (_, s, _) ->
                  s.Rtree.skipped_subtrees <- s.Rtree.skipped_subtrees + 1)
                results
          | Live idx ->
              let exec =
                with_lock t (fun () ->
                    match c.c_exec with
                    | Some e -> e
                    | None ->
                        let e = Index_file.executor idx in
                        c.c_exec <- Some e;
                        e)
              in
              let out = Qexec.run ?jobs ?deadline exec windows in
              Array.iteri
                (fun i (entries, s) ->
                  let acc, stats, matched = results.(i) in
                  List.iter
                    (fun e ->
                      if not (is_dead tomb e) then begin
                        acc := e :: !acc;
                        incr matched
                      end)
                    entries;
                  Rtree.merge_stats stats s)
                out)
        comps;
      Array.map
        (fun (acc, stats, matched) ->
          stats.Rtree.matched <- !matched;
          (List.rev !acc, stats))
        results)

(* --- stats / validate / close --- *)

type stats = {
  s_components : (int * int * bool) list;
  s_buffer : int;
  s_sealed : int;
  s_tombstones : int;
  s_wal_bytes : int;
  s_wal_segments : int;
  s_replayed : int;
  s_orphans_reclaimed : int;
  s_last_merge : string;
  s_merges : int;
  s_merge_aborts : int;
  s_bytes_acked : int;
  s_bytes_written : int;
}

let stats t =
  with_lock t (fun () ->
      {
        s_components =
          List.map
            (fun c ->
              ( c.c_level,
                c.c_count,
                match c.c_state with Live _ -> true | Failed _ -> false ))
            t.comps;
        s_buffer = Hashtbl.length t.buffer;
        s_sealed = (match t.sealed with Some s -> Hashtbl.length s | None -> 0);
        s_tombstones = Hashtbl.length t.tombstones;
        s_wal_bytes =
          Wal.size t.wal
          + List.fold_left (fun a (_, _, b) -> a + b) 0 t.old_segments;
        s_wal_segments = 1 + List.length t.old_segments;
        s_replayed = t.replayed;
        s_orphans_reclaimed = t.orphans_reclaimed;
        s_last_merge = t.last_merge;
        s_merges = t.merges;
        s_merge_aborts = t.merge_aborts;
        s_bytes_acked = t.bytes_acked;
        s_bytes_written =
          t.wal_bytes_written + (t.comp_pages_written * t.page_size);
      })

let validate t =
  let comps =
    with_lock t (fun () ->
        check_usable t;
        t.comps)
  in
  List.iter
    (fun c ->
      match c.c_state with
      | Failed _ -> ()
      | Live idx ->
          let tree = Index_file.tree idx in
          ignore (Rtree.validate tree);
          if Rtree.count tree <> c.c_count then
            failwith
              (Printf.sprintf
                 "Lsm.validate: component %s holds %d entries, manifest says %d"
                 c.c_file (Rtree.count tree) c.c_count))
    comps;
  with_lock t (fun () ->
      if count_locked t < 0 then failwith "Lsm.validate: negative live count")

let close t =
  let first, worker =
    with_lock t (fun () ->
        if t.closed then (false, None)
        else begin
          t.closed <- true;
          Condition.broadcast t.cond;
          let w = t.worker in
          t.worker <- None;
          (true, w)
        end)
  in
  if first then begin
    (match worker with Some d -> Domain.join d | None -> ());
    with_lock t (fun () ->
        (try
           Wal.sync t.wal;
           Wal.close t.wal
         with _ -> ());
        List.iter
          (fun c ->
            match c.c_state with
            | Live idx -> Index_file.close idx
            | Failed _ -> ())
          t.comps;
        List.iter Index_file.close t.retired;
        t.retired <- [])
  end
