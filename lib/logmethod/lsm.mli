(** The persistent, crash-safe logarithmic method: LSM-style ingestion
    over on-disk PR-tree components.

    This is {!Logmethod} productionized.  An index is a directory:

    - [MANIFEST-%06d] — the CRC'd atomic-rename component manifest
      ({!Prt_storage.Manifest}): the live component set, the WAL floor,
      unresolved tombstones, the next sequence number.
    - [c%06d.idx] — one crash-consistent PR-tree {!Prt_rtree.Index_file}
      per component, bulk-loaded, immutable once published.
    - [wal-%06d.log] — CRC-framed WAL segments ({!Prt_storage.Wal}).
      An insert is acknowledged only after its record is appended (and,
      with [~wal_sync:true], fsynced); the entry then lives in the
      in-memory buffer until a merge absorbs it into a component.

    When the buffer fills, it is sealed and merged — together with
    every live component below the first slot that fits — into a fresh
    component built by PR-tree bulk loading (the external loader above
    [ext_threshold] entries), then published by one manifest swap.
    Merges run under the shared {!Prt_storage.Retry} engine: transient
    faults are retried with backoff, a breaker guards against a broken
    device, and an exhausted budget aborts cleanly — the half-built
    file is deleted, the sealed buffer stays queryable and durable in
    its WAL segments, and the next trigger retries.  A crash at any
    kill point (WAL append, component build, manifest swap, post-merge
    cleanup) reopens to exactly the pre-merge or post-merge component
    set with every acknowledged insert intact: WAL segments at or above
    the manifest floor are replayed, and anything else in the directory
    (half-built components, stale WAL segments, [.tmp] manifests) is an
    orphan, reclaimed and counted.

    Queries fan out across the buffer, the sealed buffer and every
    component — snapshot-pinned per component, so reader domains never
    touch the single-domain buffer pool — and merge per-component
    completeness labels into one honest combined label: a component
    that fails to open degrades only its own contribution
    ([Partial]), never the store. *)

type t

type wal_sync = [ `Always  (** fsync per insert: acknowledged = durable *) | `Never ]

val create :
  ?buffer_capacity:int ->
  ?page_size:int ->
  ?cache_pages:int ->
  ?wal_sync:wal_sync ->
  ?ext_threshold:int ->
  ?mem_records:int ->
  ?retry_policy:Prt_storage.Retry.policy ->
  ?faults:Prt_storage.Failpoint.t ->
  ?crash:Prt_storage.Failpoint.t ->
  ?background:bool ->
  string ->
  t
(** [create dir] initialises a fresh store (the directory is created if
    missing; raises [Invalid_argument] if it already holds a manifest).

    [buffer_capacity] (default 1024) is M0: slot [i] holds up to
    [buffer_capacity * 2^i] entries.  [wal_sync] (default [`Always])
    controls per-insert fsync.  [ext_threshold] (default 50_000) is the
    merge size above which the external bulk loader is used.  [faults]
    injects {!Prt_storage.Pager.Io_error}s into WAL/manifest/rename
    file operations (absorbed by the retry engine, aborting merges when
    exhausted).  [crash] is the kill-point budget, shared across
    component-build page writes and file operations.  [background]
    (default false) runs merges on a dedicated domain: inserts seal the
    buffer and return; queries stay honest throughout. *)

val open_ :
  ?buffer_capacity:int ->
  ?page_size:int ->
  ?cache_pages:int ->
  ?wal_sync:wal_sync ->
  ?ext_threshold:int ->
  ?mem_records:int ->
  ?retry_policy:Prt_storage.Retry.policy ->
  ?faults:Prt_storage.Failpoint.t ->
  ?crash:Prt_storage.Failpoint.t ->
  ?background:bool ->
  string ->
  t
(** Open an existing store: load the newest valid manifest, open every
    component (a failure degrades that component, not the open), replay
    WAL segments at or above the floor, reclaim orphans.  [crash] is
    armed only after recovery completes, so it sweeps the next
    operation's kill points.  Raises [Failure] when no valid manifest
    survives. *)

val insert : t -> Prt_rtree.Entry.t -> unit
(** Append to the WAL, add to the buffer, trigger an absorb when full.
    Acknowledged (returned) means the record is in the WAL — replayed
    on any subsequent open.  A failed absorb never fails the insert
    (the entry is durable; the merge retries later).  Raises
    [Invalid_argument] on an id already buffered, or on an id with an
    unresolved tombstone — a dead copy of that id still lives in a
    component, and the id-keyed tombstone cannot tell it apart from a
    re-insert.  A deleted id becomes insertable again once a merge
    resolves its tombstone ({!flush}/{!compact} forces that). *)

val delete : t -> Prt_rtree.Entry.t -> bool
(** Remove a buffered entry or tombstone a component-resident one
    (matched by id and rectangle), WAL-logged either way.  Tombstones
    persist in the manifest until a merge resolves them, and block
    re-insertion of the id meanwhile (see {!insert}).  [false] if
    absent. *)

val flush : t -> unit
(** Seal the buffer and merge now, raising on failure
    ({!Prt_storage.Pager.Io_error} after retries exhaust, or
    [Simulated_crash]) — unlike the absorb triggered by {!insert},
    which records the abort and keeps going. *)

val compact : t -> unit
(** Merge everything live into a single component, resolving every
    reachable tombstone.  Raises like {!flush}. *)

val query :
  ?deadline:Prt_util.Deadline.t ->
  t ->
  Prt_geom.Rect.t ->
  f:(Prt_rtree.Entry.t -> unit) ->
  Prt_rtree.Rtree.query_stats
(** Window query across buffer, sealed buffer and all components, with
    tombstoned entries filtered out.  [matched] counts delivered
    entries; visit counts and skip/timeout fields accumulate across
    components ({!Prt_rtree.Rtree.merge_stats}), so
    [Rtree.completeness] of the result is the combined label.  Safe
    from any domain, concurrently with inserts and merges. *)

val query_list :
  ?deadline:Prt_util.Deadline.t ->
  t ->
  Prt_geom.Rect.t ->
  Prt_rtree.Entry.t list * Prt_rtree.Rtree.query_stats

val query_batch :
  ?jobs:int ->
  ?deadline:Prt_util.Deadline.t ->
  t ->
  Prt_geom.Rect.t array ->
  (Prt_rtree.Entry.t list * Prt_rtree.Rtree.query_stats) array
(** Batched fan-out: each live component's windows run through its
    {!Prt_rtree.Qexec} executor (work-stealing domains, snapshot-pinned
    batches), buffer matches are appended, and slot [i] carries the
    combined stats for window [i]. *)

val count : t -> int
(** Live entries (inserted minus deleted). *)

val components : t -> (int * int) list
(** Occupied slots as [(level, entries)], failed components included,
    sorted by level. *)

val buffer_size : t -> int
(** Entries buffered in memory (active + sealed). *)

(** The ingestion stats surfaced by [prt stats] and the bench. *)
type stats = {
  s_components : (int * int * bool) list;
      (** (level, entries, healthy) per component, sorted by level *)
  s_buffer : int;  (** active in-memory buffer entries *)
  s_sealed : int;  (** sealed entries awaiting merge *)
  s_tombstones : int;
  s_wal_bytes : int;  (** bytes pending replay on a reopen *)
  s_wal_segments : int;
  s_replayed : int;  (** WAL records replayed when this handle opened *)
  s_orphans_reclaimed : int;  (** orphan files deleted when this handle opened *)
  s_last_merge : string;
  s_merges : int;  (** merges committed through this handle *)
  s_merge_aborts : int;
  s_bytes_acked : int;  (** payload bytes acknowledged through this handle *)
  s_bytes_written : int;  (** WAL bytes + component pages written: write amp numerator *)
}

val stats : t -> stats

val wait_merges : t -> unit
(** Block until no merge is in flight and nothing is sealed (background
    mode; immediate otherwise).  A pending merge that keeps aborting is
    waited on only once — the abort clears the in-flight flag. *)

val validate : t -> unit
(** Structurally validate every healthy component and the count
    bookkeeping.  Call it quiescently (no concurrent merge). *)

val close : t -> unit
(** Sync the WAL, stop the merge domain, close every component.
    Buffered entries are NOT merged — they are durable in the WAL and
    replayed by the next open.  Idempotent. *)

val dir : t -> string
