(** Dynamized PR-tree via the external logarithmic method (Section 4 of
    the paper).

    Keeps an in-memory insert buffer plus O(log2 (N/M0)) immutable
    PR-tree components of geometrically increasing capacity; merges are
    PR-tree bulk loads, so every component retains the worst-case-optimal
    query bound. Deletions are tombstoned and compacted by global
    rebuild. Entry ids must be unique across the index. *)

type t

val create : ?buffer_capacity:int -> Prt_storage.Buffer_pool.t -> t
(** Empty index. [buffer_capacity] (default 113, one leaf's worth) is
    the in-memory buffer size M0; component slot [i] holds up to
    [buffer_capacity * 2^i] entries. *)

val of_entries :
  ?buffer_capacity:int -> Prt_storage.Buffer_pool.t -> Prt_rtree.Entry.t array -> t
(** Bulk-load an initial index into the smallest fitting slot. *)

val insert : t -> Prt_rtree.Entry.t -> unit
(** Amortized O((log2 (N/M0)) * (bulk-load cost) / M0) per insert.
    Raises [Invalid_argument] on an id already buffered. *)

val delete : t -> Prt_rtree.Entry.t -> bool
(** Tombstone the entry (matched by id and rectangle). Returns [false]
    if absent. Triggers a global rebuild when tombstones outnumber live
    entries. *)

type query_stats = {
  mutable internal_visited : int;
  mutable leaf_visited : int;
  mutable matched : int;
  mutable components_queried : int;
}

val query : t -> Prt_geom.Rect.t -> f:(Prt_rtree.Entry.t -> unit) -> query_stats
(** Window query across the buffer and all components, with tombstoned
    entries filtered out. *)

val query_list : t -> Prt_geom.Rect.t -> Prt_rtree.Entry.t list * query_stats

val count : t -> int
(** Live entries. *)

val components : t -> (int * int) list
(** Occupied slots as [(level, entries)], for inspection. *)

val buffer_size : t -> int

val flush_buffer : t -> unit
(** Force the buffer into a component (e.g. before measuring pure query
    cost). *)

val validate : t -> unit
(** Validate every component structurally and check the live-count
    bookkeeping. Raises [Failure] on violation. *)
