(* The external logarithmic method applied to PR-trees (Section 4 of the
   paper; the technique of Arge–Vahrenhold [4] and the Bkd-tree [20]).

   The paper's PR-tree is bulk-loaded; updating it with the standard
   R-tree heuristics voids its query guarantee.  The logarithmic method
   instead keeps a small in-memory buffer plus O(log2 (N/M0)) immutable
   PR-tree components of geometrically increasing capacity.  An insert
   goes to the buffer; when the buffer fills, the buffer and all
   components below the first empty slot are merged — by PR-tree
   bulk-loading — into that slot.  Each component is worst-case optimal
   for queries, so a window query over all components costs
   O(sqrt(N/B) * log(N/M0) + T/B) I/Os (and the slot sizes make the
   sum telescope in practice), while inserts cost the bulk-loading
   work amortized over the slot capacity.

   Deletions are tombstones: entry ids are recorded and filtered from
   query results and merges; a global rebuild fires once tombstones
   outnumber live entries.  Entry ids must be unique across the index. *)

module Rect = Prt_geom.Rect
module Buffer_pool = Prt_storage.Buffer_pool
module Entry = Prt_rtree.Entry
module Node = Prt_rtree.Node
module Rtree = Prt_rtree.Rtree
module Prtree = Prt_prtree.Prtree

type t = {
  pool : Buffer_pool.t;
  buffer_capacity : int;
  buffer : (int, Entry.t) Hashtbl.t;
  mutable components : Rtree.t option array; (* slot i holds <= buffer_capacity * 2^i entries *)
  tombstones : (int, unit) Hashtbl.t;
  mutable live : int; (* entries stored minus tombstoned ones *)
}

let create ?(buffer_capacity = 113) pool =
  if buffer_capacity < 1 then invalid_arg "Logmethod.create: buffer_capacity must be >= 1";
  {
    pool;
    buffer_capacity;
    buffer = Hashtbl.create (2 * buffer_capacity);
    components = Array.make 8 None;
    tombstones = Hashtbl.create 64;
    live = 0;
  }

let count t = t.live

let components t =
  let out = ref [] in
  Array.iteri
    (fun i c -> match c with Some tree -> out := (i, Rtree.count tree) :: !out | None -> ())
    t.components;
  List.rev !out

let buffer_size t = Hashtbl.length t.buffer

(* Free every page of a component. *)
let destroy_tree t tree =
  let pages = ref [] in
  Rtree.iter_nodes tree ~f:(fun ~depth:_ ~id node ->
      ignore node;
      pages := id :: !pages);
  List.iter (Buffer_pool.free t.pool) !pages

let is_dead t e = Hashtbl.mem t.tombstones (Entry.id e)

(* Collect the live entries of a component (dropping — and resolving —
   any tombstones it absorbs). *)
let live_entries t tree =
  let acc = ref [] in
  Rtree.iter tree ~f:(fun e ->
      if is_dead t e then Hashtbl.remove t.tombstones (Entry.id e) else acc := e :: !acc);
  !acc

let ensure_slot t i =
  if i >= Array.length t.components then begin
    let grown = Array.make (2 * (i + 1)) None in
    Array.blit t.components 0 grown 0 (Array.length t.components);
    t.components <- grown
  end

(* Merge the buffer and components 0..j-1 into slot j, where j is the
   first empty slot: the merged size is at most buffer_capacity * 2^j. *)
let flush_buffer t =
  if Hashtbl.length t.buffer > 0 then begin
    let rec first_empty i =
      ensure_slot t i;
      match t.components.(i) with None -> i | Some _ -> first_empty (i + 1)
    in
    let j = first_empty 0 in
    let entries = ref [] in
    Hashtbl.iter (fun _ e -> entries := e :: !entries) t.buffer;
    Hashtbl.reset t.buffer;
    for i = 0 to j - 1 do
      match t.components.(i) with
      | Some tree ->
          entries := List.rev_append (live_entries t tree) !entries;
          destroy_tree t tree;
          t.components.(i) <- None
      | None -> ()
    done;
    let merged = Array.of_list !entries in
    if Array.length merged > 0 then t.components.(j) <- Some (Prtree.load t.pool merged)
  end

(* Rebuild everything into a single component, clearing tombstones. *)
let rebuild t =
  let entries = ref [] in
  Hashtbl.iter (fun _ e -> if not (is_dead t e) then entries := e :: !entries) t.buffer;
  Hashtbl.reset t.buffer;
  Array.iteri
    (fun i c ->
      match c with
      | Some tree ->
          entries := List.rev_append (live_entries t tree) !entries;
          destroy_tree t tree;
          t.components.(i) <- None
      | None -> ())
    t.components;
  Hashtbl.reset t.tombstones;
  let merged = Array.of_list !entries in
  t.live <- Array.length merged;
  if Array.length merged > 0 then begin
    (* Place the rebuilt tree in the smallest slot that can hold it. *)
    let rec slot_for i cap =
      if Array.length merged <= cap then i else slot_for (i + 1) (2 * cap)
    in
    let j = slot_for 0 t.buffer_capacity in
    ensure_slot t j;
    t.components.(j) <- Some (Prtree.load t.pool merged)
  end

let insert t e =
  if Hashtbl.mem t.buffer (Entry.id e) then
    invalid_arg "Logmethod.insert: duplicate entry id in buffer";
  Hashtbl.replace t.buffer (Entry.id e) e;
  t.live <- t.live + 1;
  if Hashtbl.length t.buffer >= t.buffer_capacity then flush_buffer t

(* Membership probe for deletion: the entry's exact rectangle confines
   the search, so this is one window query per component. *)
let mem_components t e =
  Array.exists
    (fun c ->
      match c with
      | None -> false
      | Some tree ->
          let found = ref false in
          ignore
            (Rtree.query tree (Entry.rect e) ~f:(fun hit ->
                 if Entry.id hit = Entry.id e && Entry.equal hit e then found := true));
          !found && not (is_dead t e))
    t.components

let delete t e =
  if Hashtbl.mem t.buffer (Entry.id e) then begin
    Hashtbl.remove t.buffer (Entry.id e);
    t.live <- t.live - 1;
    true
  end
  else if mem_components t e then begin
    Hashtbl.replace t.tombstones (Entry.id e) ();
    t.live <- t.live - 1;
    (* Rebuild once the dead weight dominates. *)
    if Hashtbl.length t.tombstones > max t.buffer_capacity t.live then rebuild t;
    true
  end
  else false

type query_stats = {
  mutable internal_visited : int;
  mutable leaf_visited : int;
  mutable matched : int;
  mutable components_queried : int;
}

let query t window ~f =
  let stats = { internal_visited = 0; leaf_visited = 0; matched = 0; components_queried = 0 } in
  Hashtbl.iter
    (fun _ e ->
      if Rect.intersects (Entry.rect e) window && not (is_dead t e) then begin
        stats.matched <- stats.matched + 1;
        f e
      end)
    t.buffer;
  Array.iter
    (fun c ->
      match c with
      | None -> ()
      | Some tree ->
          stats.components_queried <- stats.components_queried + 1;
          let s =
            Rtree.query tree window ~f:(fun e ->
                if not (is_dead t e) then begin
                  stats.matched <- stats.matched + 1;
                  f e
                end)
          in
          stats.internal_visited <- stats.internal_visited + s.Rtree.internal_visited;
          stats.leaf_visited <- stats.leaf_visited + s.Rtree.leaf_visited)
    t.components;
  stats

let query_list t window =
  let acc = ref [] in
  let stats = query t window ~f:(fun e -> acc := e :: !acc) in
  (List.rev !acc, stats)

let of_entries ?buffer_capacity pool entries =
  let t = create ?buffer_capacity pool in
  if Array.length entries > 0 then begin
    t.live <- Array.length entries;
    let rec slot_for i cap =
      if Array.length entries <= cap then i else slot_for (i + 1) (2 * cap)
    in
    let j = slot_for 0 t.buffer_capacity in
    ensure_slot t j;
    t.components.(j) <- Some (Prtree.load pool entries)
  end;
  t

let validate t =
  Array.iter
    (fun c -> match c with Some tree -> ignore (Rtree.validate tree) | None -> ())
    t.components;
  let stored = ref (Hashtbl.length t.buffer) in
  Array.iter
    (fun c -> match c with Some tree -> stored := !stored + Rtree.count tree | None -> ())
    t.components;
  let expected = !stored - Hashtbl.length t.tombstones in
  if expected <> t.live then
    failwith
      (Printf.sprintf "Logmethod.validate: live count %d but stored %d minus %d tombstones"
         t.live !stored (Hashtbl.length t.tombstones))
