(* The extreme-data experiments: Table 1 (CLUSTER), the Theorem 3
   lower-bound construction, and an empirical check of the
   O(sqrt(N/B) + T/B) guarantee (Lemma 2 / Theorem 1). *)

module Table = Prt_util.Table
module Rect = Prt_geom.Rect
module Rtree = Prt_rtree.Rtree
module Datasets = Prt_workloads.Datasets
module Queries = Prt_workloads.Queries

open Common

(* Table 1: long skinny queries through the CLUSTER dataset.
   Paper (10M points, 10_000 clusters): H 32_920 I/Os (37% of leaves),
   H4 83_389 (94%), PR 1_060 (1.2%), TGS 22_158 (25%). *)
let table1 ~scale ~seed =
  section "Table 1: query cost on CLUSTER";
  (* Clusters must span several leaves for the cluster structure to
     matter (the paper's 1000-point clusters span ~9 leaves); we keep
     ~300 points per cluster (~3 leaves) and scale the cluster count. *)
  let n_clusters = max 10 (int_of_float (330.0 *. scale)) in
  let per_cluster = 300 in
  let entries = Datasets.cluster ~n_clusters ~per_cluster ~seed in
  note "%d clusters x %d points = %s points; 100 strip queries of area 1e-7" n_clusters
    per_cluster
    (commas (Array.length entries));
  let queries = Queries.cluster_strips ~count:100 ~seed:(seed + 1) in
  let paper_pct = function
    | H -> "37%" | H4 -> "94%" | PR -> "1.2%" | TGS -> "25%" | STR -> "-"
  in
  let rows =
    List.map
      (fun v ->
        let pool = fresh_pool () in
        let tree = build_mem v pool entries in
        let s = Rtree.validate tree in
        let c = measure_queries tree queries in
        let visited_pct = 100.0 *. c.mean_leaves /. float_of_int s.Rtree.leaves in
        Bench_json.(
          row
            [
              ("variant", str (name v));
              ("mean_leaves", flt c.mean_leaves);
              ("mean_output", flt c.mean_output);
              ("visited_pct", flt visited_pct);
            ]);
        [
          name v;
          f1 c.mean_leaves;
          f1 c.mean_output;
          Printf.sprintf "%.1f%%" visited_pct;
          paper_pct v;
        ])
      paper_variants
  in
  Table.print
    ~header:[ "variant"; "I/Os per query"; "output T"; "% of leaves visited"; "paper %" ]
    rows;
  note "paper shape: PR visits well over an order of magnitude fewer leaves."

(* Theorem 3: the shifted-grid dataset plus a zero-output line query
   forces H, H4 and TGS to visit essentially every leaf; the PR-tree is
   bounded by O(sqrt(N/B)). *)
let thm3 ~scale ~seed =
  ignore seed;
  section "Theorem 3: zero-output line query on the worst-case grid";
  let columns_log2 =
    let target = int_of_float (1024.0 *. sqrt scale) in
    max 6 (int_of_float (Float.round (log (float_of_int target) /. log 2.0)))
  in
  let wc = Datasets.worst_case ~columns_log2 ~b:capacity in
  let n = Array.length wc.Datasets.entries in
  note "%d columns x %d rows = %s points; query: horizontal line between rows"
    wc.Datasets.columns wc.Datasets.rows (commas n);
  let query = Datasets.worst_case_query wc ~row:(capacity / 2) in
  let sqrt_bound = sqrt (float_of_int n /. float_of_int capacity) in
  let builders =
    List.map (fun v -> (name v, fun pool entries -> build_mem v pool entries)) paper_variants
    @ [ ("KDB", fun pool entries -> Prt_rtree.Kdbtree.load pool entries) ]
  in
  let rows =
    List.map
      (fun (vname, build) ->
        let pool = fresh_pool () in
        let tree = build pool wc.Datasets.entries in
        let s = Rtree.validate tree in
        let stats = Rtree.query_count tree query in
        assert (stats.Rtree.matched = 0);
        Bench_json.(
          row
            [
              ("variant", str vname);
              ("leaves_visited", int stats.Rtree.leaf_visited);
              ("total_leaves", int s.Rtree.leaves);
            ]);
        [
          vname;
          string_of_int stats.Rtree.leaf_visited;
          string_of_int s.Rtree.leaves;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int stats.Rtree.leaf_visited /. float_of_int s.Rtree.leaves);
          f1 (float_of_int stats.Rtree.leaf_visited /. sqrt_bound);
        ])
      builders
  in
  Table.print
    ~header:[ "variant"; "leaves visited"; "total leaves"; "% visited"; "x sqrt(N/B)" ]
    rows;
  note "paper shape: H, H4 and TGS visit Theta(N/B) leaves for zero output;";
  note "  the PR-tree stays within a constant multiple of sqrt(N/B) = %.0f." sqrt_bound;
  note "  (KDB is the paper's Section 1.1 point-data baseline: optimal on points,";
  note "  inapplicable to rectangles with extent.)"

(* Lemma 2 / Theorem 1: leaves visited on zero-output line queries must
   scale like sqrt(N/B) as N grows. *)
let bound ~scale ~seed =
  section "Query bound: PR-tree leaves visited vs c*sqrt(N/B) (Lemma 2)";
  let sizes =
    List.map (fun n -> int_of_float (float_of_int n *. scale)) [ 25_000; 50_000; 100_000; 200_000 ]
  in
  let rows =
    List.map
      (fun n ->
        let entries = Datasets.uniform_points ~n ~seed in
        let pool = fresh_pool () in
        let tree = Prt_prtree.Prtree.load pool entries in
        let rng = Prt_util.Rng.create (seed + 2) in
        let q = 50 in
        let total = ref 0 in
        for _ = 1 to q do
          let x = Prt_util.Rng.float rng 1.0 in
          let line = Rect.make ~xmin:x ~ymin:0.0 ~xmax:x ~ymax:1.0 in
          total := !total + (Rtree.query_count tree line).Rtree.leaf_visited
        done;
        let mean = float_of_int !total /. float_of_int q in
        let sqrt_nb = sqrt (float_of_int n /. float_of_int capacity) in
        Bench_json.(
          row [ ("n", int n); ("mean_leaves", flt mean); ("ratio", flt (mean /. sqrt_nb)) ]);
        [ commas n; f1 mean; f1 sqrt_nb; f2 (mean /. sqrt_nb) ])
      sizes
  in
  Table.print ~header:[ "N"; "mean leaves visited"; "sqrt(N/B)"; "ratio" ] rows;
  note "the ratio column staying flat as N grows 8x is the Lemma 2 guarantee."
