(* Query-cost experiments: Figures 12, 13, 14 and 15.

   The paper's metric: average number of blocks read per query divided
   by the output size in blocks (T/B), with all internal nodes cached —
   i.e. leaves visited over leaves strictly necessary; optimal is 100%.
   100 random queries per point, as in the paper. *)

module Table = Prt_util.Table
module Rect = Prt_geom.Rect
module Tiger = Prt_workloads.Tiger
module Datasets = Prt_workloads.Datasets
module Queries = Prt_workloads.Queries

open Common

let query_count = 100

let area_fractions = [ 0.0025; 0.005; 0.0075; 0.01; 0.0125; 0.015; 0.0175; 0.02 ]

let relative_table results =
  (* Mirror every measured point into the experiment's BENCH_*.json. *)
  List.iter
    (fun (label, per_variant) ->
      List.iter
        (fun (v, c) ->
          Bench_json.(
            row
              [
                ("query", str label);
                ("variant", str (name v));
                ("relative", flt c.relative);
                ("mean_output", flt c.mean_output);
                ("mean_leaves", flt c.mean_leaves);
              ]))
        per_variant)
    results;
  let header =
    "query" :: "output T" :: List.map (fun v -> name v) paper_variants
  in
  let rows =
    List.map
      (fun (label, per_variant) ->
        let output =
          match per_variant with (_, c) :: _ -> f1 c.mean_output | [] -> "-"
        in
        label :: output
        :: List.map
             (fun v ->
               match List.assoc_opt v per_variant with
               | Some c when not (Float.is_nan c.relative) -> pct c.relative
               | Some c -> f1 c.mean_leaves ^ " leaves"
               | None -> "-")
             paper_variants)
      results
  in
  Table.print ~header rows

(* Figures 12 and 13: square queries of growing area on TIGER data.
   Paper: all four variants within ~100-120% of optimal; TGS slightly
   best, then PR, then H, then H4. *)
let fig_tiger ~fig ~dataset_name ~entries ~seed =
  section
    (Printf.sprintf "Figure %d: query cost vs query size on %s TIGER-like data" fig dataset_name);
  note "%s: %s rectangles; %d queries per point; optimal = 100%%" dataset_name
    (commas (Array.length entries)) query_count;
  let world = Queries.world_of entries in
  let batches =
    List.map
      (fun frac ->
        ( Printf.sprintf "%.2f%% square" (100.0 *. frac),
          Queries.squares ~count:query_count ~area_fraction:frac ~world ~seed ))
      area_fractions
  in
  relative_table (query_experiment entries batches);
  note "paper shape: all variants 100-120%%; TGS <= PR <= H <= H4."

let fig12 ~scale ~seed =
  fig_tiger ~fig:12 ~dataset_name:"Western" ~entries:(Tiger.western ~scale ~seed) ~seed:(seed + 7)

let fig13 ~scale ~seed =
  fig_tiger ~fig:13 ~dataset_name:"Eastern"
    ~entries:(Tiger.eastern ~scale ~seed:(seed + 1))
    ~seed:(seed + 8)

(* Figure 14: fixed 1% queries on the five Eastern slices. *)
let fig14 ~scale ~seed =
  section "Figure 14: query cost vs dataset size (Eastern slices, 1% squares)";
  let subsets = Tiger.eastern_subsets ~scale ~seed in
  let results =
    Array.to_list subsets
    |> List.map (fun entries ->
           let world = Queries.world_of entries in
           let queries =
             Queries.squares ~count:query_count ~area_fraction:0.01 ~world ~seed:(seed + 9)
           in
           match query_experiment entries [ (commas (Array.length entries), queries) ] with
           | [ row ] -> row
           | _ -> assert false)
  in
  relative_table results;
  note "paper shape: flat in dataset size; TGS <= PR <= H <= H4, all within ~10%%."

(* Figure 15: the synthetic stress datasets, 1% queries.
   Paper: on SIZE and ASPECT the PR-tree and H4 stay near-optimal while
   H (and to a lesser degree TGS) degrade as rectangles grow/stretch;
   on SKEWED only the PR-tree is unaffected. *)
let fig15 ~scale ~seed =
  let n = int_of_float (100_000.0 *. scale) in
  section "Figure 15 (left): query cost on SIZE(max_side)";
  let size_results =
    List.map
      (fun s ->
        let entries = Datasets.size ~n ~max_side:s ~seed in
        let world = Queries.world_of entries in
        let queries =
          Queries.squares ~count:query_count ~area_fraction:0.01 ~world ~seed:(seed + 10)
        in
        match query_experiment entries [ (Printf.sprintf "SIZE(%g)" s, queries) ] with
        | [ row ] -> row
        | _ -> assert false)
      [ 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2 ]
  in
  relative_table size_results;
  note "paper shape: H blows up (to ~340%%) and TGS degrades as max_side grows;";
  note "  PR and H4 stay close to optimal, PR slightly ahead of H at the end.";
  section "Figure 15 (middle): query cost on ASPECT(a)";
  let aspect_results =
    List.map
      (fun a ->
        let entries = Datasets.aspect ~n ~a ~seed:(seed + 1) in
        let world = Queries.world_of entries in
        let queries =
          Queries.squares ~count:query_count ~area_fraction:0.01 ~world ~seed:(seed + 11)
        in
        match query_experiment entries [ (Printf.sprintf "ASPECT(%g)" a, queries) ] with
        | [ row ] -> row
        | _ -> assert false)
      [ 10.0; 100.0; 1_000.0; 10_000.0; 100_000.0 ]
  in
  relative_table aspect_results;
  note "paper shape: H and TGS degrade with aspect ratio; PR tracks H4 near optimal.";
  section "Figure 15 (right): query cost on SKEWED(c)";
  let skew_results =
    List.map
      (fun c ->
        let entries = Datasets.skewed ~n ~c ~seed:(seed + 2) in
        let queries =
          Queries.skewed_squares ~count:query_count ~area_fraction:0.01 ~c ~seed:(seed + 12)
        in
        match query_experiment entries [ (Printf.sprintf "SKEWED(%d)" c, queries) ] with
        | [ row ] -> row
        | _ -> assert false)
      [ 1; 3; 5; 7; 9 ]
  in
  relative_table skew_results;
  note "paper shape: PR is unaffected by the skew (it only compares coordinates";
  note "  within a dimension); H, H4 and TGS degrade as c grows."

(* Resilience: query cost and answer coverage when the disk misbehaves
   and when queries carry a deadline.

   For each fault rate, a PR-tree is built on a fault-injecting pager
   (the build's default retry policy absorbs the transient faults), then
   queried through a single-attempt buffer pool so every injected fault
   surfaces to the resilient query path: the failing subtree is
   quarantined and skipped, the query completes and is labelled Partial.
   Coverage is the fraction of the clean-run output still returned;
   degraded results are asserted to be a subset of the clean oracle.
   PRT_FAULT_RATE overrides the swept rates with a single row. *)
let resilience ~scale ~seed =
  section "Resilience: degraded queries over an unreliable simulated disk";
  let module Quarantine = Prt_storage.Quarantine in
  let module Deadline = Prt_util.Deadline in
  let module Failpoint = Prt_storage.Failpoint in
  let module Pager = Prt_storage.Pager in
  let module Buffer_pool = Prt_storage.Buffer_pool in
  let module Entry = Prt_rtree.Entry in
  let entries = Tiger.western ~scale ~seed in
  let world = Queries.world_of entries in
  let queries =
    Queries.squares ~count:query_count ~area_fraction:0.01 ~world ~seed:(seed + 13)
  in
  let n = Array.length queries in
  let clean_pool = fresh_pool () in
  let clean_tree = build_mem PR clean_pool entries in
  let oracle =
    Array.map
      (fun q ->
        List.sort_uniq Int.compare
          (List.map Entry.id (fst (Rtree.query_list clean_tree q))))
      queries
  in
  let clean = measure_queries clean_tree queries in
  note "%s rectangles; %d 1%% queries; clean run: %.1f leaves/query, %.1f hits/query"
    (commas (Array.length entries)) n clean.mean_leaves clean.mean_output;
  let rates = if fault_rate > 0.0 then [ fault_rate ] else [ 0.01; 0.05; 0.2 ] in
  let fault_rows =
    List.map
      (fun rate ->
        let fp = Failpoint.create (Failpoint.uniform ~seed:fault_seed rate) in
        let pager = Pager.wrap_faulty (Pager.create_memory ~page_size ()) fp in
        let build_pool = Buffer_pool.create ~capacity:4096 pager in
        let tree = build_mem PR build_pool entries in
        Buffer_pool.flush build_pool;
        (* Single-attempt pool: injected faults reach the query path
           instead of being absorbed by retries. *)
        let qpool =
          Buffer_pool.create ~capacity:4096
            ~retry:{ Buffer_pool.attempts = 1; backoff_base = 1 }
            pager
        in
        let qtree =
          Rtree.of_root ~pool:qpool ~root:(Rtree.root tree) ~height:(Rtree.height tree)
            ~count:(Rtree.count tree)
        in
        let quarantine = Quarantine.create () in
        let degraded = ref 0 and leaves = ref 0 and matched = ref 0 in
        Array.iteri
          (fun i q ->
            let hits, s = Rtree.query_list ~quarantine qtree q in
            leaves := !leaves + s.Rtree.leaf_visited;
            matched := !matched + s.Rtree.matched;
            if not (Rtree.complete s) then incr degraded;
            List.iter
              (fun e ->
                if not (List.mem (Entry.id e) oracle.(i)) then
                  failwith "resilience: degraded result outside the clean oracle")
              hits)
          queries;
        let coverage =
          if clean.matched_total = 0 then 1.0
          else float_of_int !matched /. float_of_int clean.matched_total
        in
        Bench_json.(
          row
            [
              ("kind", str "faults");
              ("rate", flt rate);
              ("queries", int n);
              ("degraded", int !degraded);
              ("quarantined", int (Quarantine.count quarantine));
              ("coverage", flt coverage);
              ("mean_leaves", flt (float_of_int !leaves /. float_of_int n));
              ("mean_leaves_clean", flt clean.mean_leaves);
              ("subset_ok", int 1);
            ]);
        [
          Printf.sprintf "%.1f%%" (100.0 *. rate);
          string_of_int !degraded;
          string_of_int (Quarantine.count quarantine);
          pct coverage;
          f1 (float_of_int !leaves /. float_of_int n);
        ])
      rates
  in
  Table.print
    ~header:[ "fault rate"; "degraded"; "quarantined"; "coverage"; "leaves/query" ]
    fault_rows;
  note "every degraded answer verified to be a subset of the clean oracle;";
  note "  no query raised — damage costs coverage, never availability.";
  section "Resilience: deadline cutoffs (clean device)";
  let deadline_rows =
    List.map
      (fun budget_ms ->
        let timed_out = ref 0 and matched = ref 0 in
        Array.iter
          (fun q ->
            let deadline =
              if budget_ms <= 0.0 then Deadline.at 0.0 else Deadline.after_ms budget_ms
            in
            let _, s = Rtree.query_list ~deadline clean_tree q in
            if s.Rtree.timed_out then incr timed_out;
            matched := !matched + s.Rtree.matched)
          queries;
        let coverage =
          if clean.matched_total = 0 then 1.0
          else float_of_int !matched /. float_of_int clean.matched_total
        in
        Bench_json.(
          row
            [
              ("kind", str "deadline");
              ("deadline_ms", flt budget_ms);
              ("queries", int n);
              ("timed_out", int !timed_out);
              ("coverage", flt coverage);
            ]);
        [
          (if budget_ms <= 0.0 then "expired" else Printf.sprintf "%.1f ms" budget_ms);
          string_of_int !timed_out;
          pct coverage;
        ])
      [ 0.0; 5.0 ]
  in
  Table.print ~header:[ "deadline"; "timed out"; "coverage" ] deadline_rows;
  note "an already-expired deadline times every query out with zero I/O;";
  note "  a generous one completes them all — partiality is always labelled."
