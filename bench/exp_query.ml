(* Query-cost experiments: Figures 12, 13, 14 and 15.

   The paper's metric: average number of blocks read per query divided
   by the output size in blocks (T/B), with all internal nodes cached —
   i.e. leaves visited over leaves strictly necessary; optimal is 100%.
   100 random queries per point, as in the paper. *)

module Table = Prt_util.Table
module Rect = Prt_geom.Rect
module Tiger = Prt_workloads.Tiger
module Datasets = Prt_workloads.Datasets
module Queries = Prt_workloads.Queries

open Common

let query_count = 100

let area_fractions = [ 0.0025; 0.005; 0.0075; 0.01; 0.0125; 0.015; 0.0175; 0.02 ]

let relative_table results =
  (* Mirror every measured point into the experiment's BENCH_*.json. *)
  List.iter
    (fun (label, per_variant) ->
      List.iter
        (fun (v, c) ->
          Bench_json.(
            row
              [
                ("query", str label);
                ("variant", str (name v));
                ("relative", flt c.relative);
                ("mean_output", flt c.mean_output);
                ("mean_leaves", flt c.mean_leaves);
              ]))
        per_variant)
    results;
  let header =
    "query" :: "output T" :: List.map (fun v -> name v) paper_variants
  in
  let rows =
    List.map
      (fun (label, per_variant) ->
        let output =
          match per_variant with (_, c) :: _ -> f1 c.mean_output | [] -> "-"
        in
        label :: output
        :: List.map
             (fun v ->
               match List.assoc_opt v per_variant with
               | Some c when not (Float.is_nan c.relative) -> pct c.relative
               | Some c -> f1 c.mean_leaves ^ " leaves"
               | None -> "-")
             paper_variants)
      results
  in
  Table.print ~header rows

(* Figures 12 and 13: square queries of growing area on TIGER data.
   Paper: all four variants within ~100-120% of optimal; TGS slightly
   best, then PR, then H, then H4. *)
let fig_tiger ~fig ~dataset_name ~entries ~seed =
  section
    (Printf.sprintf "Figure %d: query cost vs query size on %s TIGER-like data" fig dataset_name);
  note "%s: %s rectangles; %d queries per point; optimal = 100%%" dataset_name
    (commas (Array.length entries)) query_count;
  let world = Queries.world_of entries in
  let batches =
    List.map
      (fun frac ->
        ( Printf.sprintf "%.2f%% square" (100.0 *. frac),
          Queries.squares ~count:query_count ~area_fraction:frac ~world ~seed ))
      area_fractions
  in
  relative_table (query_experiment entries batches);
  note "paper shape: all variants 100-120%%; TGS <= PR <= H <= H4."

let fig12 ~scale ~seed =
  fig_tiger ~fig:12 ~dataset_name:"Western" ~entries:(Tiger.western ~scale ~seed) ~seed:(seed + 7)

let fig13 ~scale ~seed =
  fig_tiger ~fig:13 ~dataset_name:"Eastern"
    ~entries:(Tiger.eastern ~scale ~seed:(seed + 1))
    ~seed:(seed + 8)

(* Figure 14: fixed 1% queries on the five Eastern slices. *)
let fig14 ~scale ~seed =
  section "Figure 14: query cost vs dataset size (Eastern slices, 1% squares)";
  let subsets = Tiger.eastern_subsets ~scale ~seed in
  let results =
    Array.to_list subsets
    |> List.map (fun entries ->
           let world = Queries.world_of entries in
           let queries =
             Queries.squares ~count:query_count ~area_fraction:0.01 ~world ~seed:(seed + 9)
           in
           match query_experiment entries [ (commas (Array.length entries), queries) ] with
           | [ row ] -> row
           | _ -> assert false)
  in
  relative_table results;
  note "paper shape: flat in dataset size; TGS <= PR <= H <= H4, all within ~10%%."

(* Figure 15: the synthetic stress datasets, 1% queries.
   Paper: on SIZE and ASPECT the PR-tree and H4 stay near-optimal while
   H (and to a lesser degree TGS) degrade as rectangles grow/stretch;
   on SKEWED only the PR-tree is unaffected. *)
let fig15 ~scale ~seed =
  let n = int_of_float (100_000.0 *. scale) in
  section "Figure 15 (left): query cost on SIZE(max_side)";
  let size_results =
    List.map
      (fun s ->
        let entries = Datasets.size ~n ~max_side:s ~seed in
        let world = Queries.world_of entries in
        let queries =
          Queries.squares ~count:query_count ~area_fraction:0.01 ~world ~seed:(seed + 10)
        in
        match query_experiment entries [ (Printf.sprintf "SIZE(%g)" s, queries) ] with
        | [ row ] -> row
        | _ -> assert false)
      [ 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2 ]
  in
  relative_table size_results;
  note "paper shape: H blows up (to ~340%%) and TGS degrades as max_side grows;";
  note "  PR and H4 stay close to optimal, PR slightly ahead of H at the end.";
  section "Figure 15 (middle): query cost on ASPECT(a)";
  let aspect_results =
    List.map
      (fun a ->
        let entries = Datasets.aspect ~n ~a ~seed:(seed + 1) in
        let world = Queries.world_of entries in
        let queries =
          Queries.squares ~count:query_count ~area_fraction:0.01 ~world ~seed:(seed + 11)
        in
        match query_experiment entries [ (Printf.sprintf "ASPECT(%g)" a, queries) ] with
        | [ row ] -> row
        | _ -> assert false)
      [ 10.0; 100.0; 1_000.0; 10_000.0; 100_000.0 ]
  in
  relative_table aspect_results;
  note "paper shape: H and TGS degrade with aspect ratio; PR tracks H4 near optimal.";
  section "Figure 15 (right): query cost on SKEWED(c)";
  let skew_results =
    List.map
      (fun c ->
        let entries = Datasets.skewed ~n ~c ~seed:(seed + 2) in
        let queries =
          Queries.skewed_squares ~count:query_count ~area_fraction:0.01 ~c ~seed:(seed + 12)
        in
        match query_experiment entries [ (Printf.sprintf "SKEWED(%d)" c, queries) ] with
        | [ row ] -> row
        | _ -> assert false)
      [ 1; 3; 5; 7; 9 ]
  in
  relative_table skew_results;
  note "paper shape: PR is unaffected by the skew (it only compares coordinates";
  note "  within a dimension); H, H4 and TGS degrade as c grows."
