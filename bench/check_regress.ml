(* Performance-regression gate over BENCH_*.json result files.

   Compares fresh benchmark rows against committed baselines (the
   bench/baselines/ directory) and exits 1 when a tracked metric moves
   past its tolerance band, so @bench-smoke catches an algorithmic
   regression the unit tests cannot see (a packing change that doubles
   I/Os still builds a valid tree).

   Only *deterministic* metrics are gated.  Wall-clock fields (seconds,
   qps, speedup, efficiency, ratio, ...) vary with the machine and CI
   load; gating them would make the alias flaky, so they are ignored
   entirely.  The tracked set:

     metric          direction   tolerance   rationale
     ios             lower       5%          pager I/O is deterministic
     leaves_visited  lower       10%         per-query leaf touches
     total_leaves    lower       10%
     mean_leaves     lower       10%         averaged over query mix
     mean_leaves_clean lower     10%
     relative        lower       10%         leaves / ceil(T/B)
     matched         exact       --          result size: correctness
     entries         exact       --          dataset size: run identity
     windows_served  exact       --          mapped node visits per pass
     fallbacks       exact       --          mmap -> pread degradations

   The lower-is-better tolerance absorbs benign noise (query sampling,
   cache boundary effects) while a real regression — the failure mode
   this gate exists for — lands far outside 5-10%.  Improvements are
   reported but never fail: commit a refreshed baseline to ratchet.

   A row's identity is its string fields plus the workload-shape int
   fields (n, jobs, queries, readers, pages, rate, deadline_ms) —
   NOT [cores], which depends on the machine the baseline was recorded
   on.  A baseline row with no matching fresh row, or a tracked metric
   present in the baseline but missing fresh, fails the gate: silent
   coverage loss is a regression too.  Fresh rows with no baseline are
   reported as new and pass (refresh the baseline to start tracking).

   Usage:
     check_regress --baselines DIR [--fresh DIR] [--selftest] NAME...
   where each NAME is a result file (e.g. BENCH_fig9.json) looked up in
   both directories.  --selftest proves the gate trips: each baseline
   is perturbed in memory past tolerance and must fail against itself,
   and must pass unperturbed. *)

module Json = Prt_obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

type direction = Lower of float  (* relative tolerance *) | Exact

let tracked =
  [
    ("ios", Lower 0.05);
    ("leaves_visited", Lower 0.10);
    ("total_leaves", Lower 0.10);
    ("mean_leaves", Lower 0.10);
    ("mean_leaves_clean", Lower 0.10);
    ("relative", Lower 0.10);
    ("matched", Exact);
    ("entries", Exact);
    (* serving-tier counters: request outcomes are deterministic (fixed
       windows, fixed batching, quotas that never refill), so shed and
       admitted counts gate exactly *)
    ("ok", Exact);
    ("shed", Exact);
    ("quota_rejected", Exact);
    (* read-backend counters: mapped windows served and pread fallbacks
       per counted pass are deterministic (fixed tree, fixed query
       batch, every page verifying), so they gate exactly — a fallback
       appearing on the mmap rows means the mapped path silently
       degraded to pread *)
    ("windows_served", Exact);
    ("fallbacks", Exact);
    (* LSM-ingestion counters: merge scheduling is deterministic in the
       inline phases (fixed entries, fixed buffer capacity), so the
       component count, merge count, and WAL replay/orphan counts gate
       exactly; write amplification rides page-build determinism with a
       band for WAL segment-boundary jitter.  (The per-level histogram
       is a string field, so it gates through row identity.) *)
    ("components", Exact);
    ("merges", Exact);
    ("replayed", Exact);
    ("orphans", Exact);
    ("write_amp", Lower 0.10);
  ]

let identity_ints =
  [
    "n"; "jobs"; "queries"; "readers"; "pages"; "rate"; "deadline_ms"; "concurrency";
    "batch"; "buffer";
  ]

(* --- rows --- *)

let rows_of_file path =
  let j = try Json.of_file path with Json.Parse_error m -> fail "%s: %s" path m in
  match Json.member "rows" j with
  | Some (Json.List rows) ->
      List.map (function Json.Obj kv -> kv | _ -> fail "%s: non-object row" path) rows
  | _ -> fail "%s: no rows array" path

(* The identity key: every string field plus the whitelisted shape
   ints, in field order, rendered "k=v k=v".  Stable because emitters
   write fields in a fixed order. *)
let row_key kv =
  let parts =
    List.filter_map
      (fun (k, v) ->
        match v with
        | Json.Str s -> Some (Printf.sprintf "%s=%s" k s)
        | Json.Int i when List.mem k identity_ints -> Some (Printf.sprintf "%s=%d" k i)
        | _ -> None)
      kv
  in
  String.concat " " parts

let number k kv = Option.bind (List.assoc_opt k kv) Json.to_number

(* --- comparison --- *)

type verdict = { mutable failures : int; mutable improvements : int; mutable checked : int }

let compare_rows v ~name ~key base fresh =
  List.iter
    (fun (metric, dir) ->
      match number metric base with
      | None -> ()  (* baseline doesn't track it for this row *)
      | Some b -> (
          match number metric fresh with
          | None -> (
              v.failures <- v.failures + 1;
              Printf.printf "FAIL %s [%s] %s: in baseline (%g) but missing fresh\n" name key
                metric b)
          | Some f -> (
              v.checked <- v.checked + 1;
              match dir with
              | Exact ->
                  if f <> b then begin
                    v.failures <- v.failures + 1;
                    Printf.printf "FAIL %s [%s] %s: expected %g, got %g\n" name key metric b f
                  end
              | Lower tol ->
                  if f > b *. (1. +. tol) then begin
                    v.failures <- v.failures + 1;
                    Printf.printf "FAIL %s [%s] %s: %g -> %g (+%.1f%%, tolerance %.0f%%)\n" name
                      key metric b f
                      ((f /. b -. 1.) *. 100.)
                      (tol *. 100.)
                  end
                  else if b > 0. && f < b *. (1. -. tol) then begin
                    v.improvements <- v.improvements + 1;
                    Printf.printf "note %s [%s] %s: %g -> %g (improved; consider refreshing the \
                                   baseline)\n"
                      name key metric b f
                  end)))
    tracked

let compare_files v ~name base_rows fresh_rows =
  let fresh_tbl = Hashtbl.create 16 in
  List.iter (fun kv -> Hashtbl.replace fresh_tbl (row_key kv) kv) fresh_rows;
  List.iter
    (fun base ->
      let key = row_key base in
      match Hashtbl.find_opt fresh_tbl key with
      | None ->
          v.failures <- v.failures + 1;
          Printf.printf "FAIL %s: baseline row [%s] missing from fresh run\n" name key
      | Some fresh ->
          Hashtbl.remove fresh_tbl key;
          compare_rows v ~name ~key base fresh)
    base_rows;
  Hashtbl.iter (fun key _ -> Printf.printf "note %s: new row [%s] (no baseline)\n" name key)
    fresh_tbl

(* --- selftest --- *)

(* Perturb the first gated Lower metric of each row just past its band
   (and every Exact metric by one); the gate must trip on every
   perturbable row, and must pass the file against itself verbatim. *)
let perturb_row kv =
  let hit = ref false in
  let kv' =
    List.map
      (fun (k, v) ->
        match (List.assoc_opt k tracked, v) with
        | Some (Lower tol), Json.Int i when not !hit && i > 0 ->
            hit := true;
            (k, Json.Int (int_of_float (ceil (float_of_int i *. (1. +. (2. *. tol))))))
        | Some (Lower tol), Json.Float f when not !hit && f > 0. ->
            hit := true;
            (k, Json.Float (f *. (1. +. (2. *. tol))))
        | Some Exact, Json.Int i when not !hit ->
            hit := true;
            (k, Json.Int (i + 1))
        | _ -> (k, v))
      kv
  in
  if !hit then Some kv' else None

let selftest ~name base_rows =
  (* identical rows must pass... *)
  let v = { failures = 0; improvements = 0; checked = 0 } in
  compare_files v ~name base_rows base_rows;
  if v.failures > 0 then fail "selftest %s: clean comparison failed" name;
  if v.checked = 0 then fail "selftest %s: no tracked metrics found" name;
  (* ...and each perturbed row must trip the gate. *)
  let perturbed = List.filter_map perturb_row base_rows in
  if perturbed = [] then fail "selftest %s: no perturbable rows" name;
  List.iter
    (fun bad ->
      let v = { failures = 0; improvements = 0; checked = 0 } in
      compare_files v ~name
        (List.filter (fun b -> row_key b = row_key bad) base_rows)
        [ bad ];
      if v.failures = 0 then
        fail "selftest %s: injected regression in [%s] not caught" name (row_key bad))
    perturbed;
  Printf.printf "%s: selftest ok (%d rows trip the gate when perturbed)\n" name
    (List.length perturbed)

(* --- driver --- *)

let () =
  let baselines = ref None and fresh_dir = ref "." and self = ref false and names = ref [] in
  let rec parse = function
    | [] -> ()
    | "--baselines" :: d :: rest -> baselines := Some d; parse rest
    | "--fresh" :: d :: rest -> fresh_dir := d; parse rest
    | "--selftest" :: rest -> self := true; parse rest
    | a :: _ when String.length a > 1 && a.[0] = '-' -> fail "unknown option %s" a
    | a :: rest -> names := a :: !names; parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let names = List.rev !names in
  let baselines =
    match !baselines with
    | Some d -> d
    | None -> fail "usage: check_regress --baselines DIR [--fresh DIR] [--selftest] NAME..."
  in
  if names = [] then fail "check_regress: no result files named";
  if !self then
    List.iter (fun name -> selftest ~name (rows_of_file (Filename.concat baselines name))) names
  else begin
    let v = { failures = 0; improvements = 0; checked = 0 } in
    List.iter
      (fun name ->
        let base_rows = rows_of_file (Filename.concat baselines name) in
        let fresh_rows = rows_of_file (Filename.concat !fresh_dir name) in
        compare_files v ~name base_rows fresh_rows)
      names;
    Printf.printf "checked %d metric(s): %d regression(s), %d improvement(s)\n" v.checked
      v.failures v.improvements;
    if v.failures > 0 then exit 1
  end
