(* Batched query throughput: single-thread QPS vs the multicore batched
   executor (Qexec) at increasing domain counts.

   A PR-tree over uniform points is queried with a fixed batch of square
   windows (1% of the world each).  The sequential baseline is the plain
   [Rtree.query] loop; each executor row reports queries per second,
   speedup over the baseline, and scaling efficiency (speedup / domains).

   Domains beyond the machine's core count cannot help — on a
   single-core host every speedup is ~1.0 by construction (the executor
   then only proves its overhead is small); the scaling claim needs a
   multicore host, so the detected core count is recorded in every
   row. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Rtree = Prt_rtree.Rtree
module Qexec = Prt_rtree.Qexec
module Prtree = Prt_prtree.Prtree
module Datasets = Prt_workloads.Datasets
module Queries = Prt_workloads.Queries
module Table = Prt_util.Table

let job_counts = [ 1; 2; 4; 8 ]

let throughput ~scale ~seed =
  let n = max 1_000 (int_of_float (200_000.0 *. scale)) in
  let batch = max 64 (int_of_float (2_000.0 *. scale)) in
  Printf.printf "== batched query throughput: %d queries over %d rectangles ==\n%!" batch n;
  let entries = Datasets.uniform_points ~n ~seed in
  (* A bare in-memory pager: [Pager.read_shared] (the executor's leaf
     path) has no fault-absorbing retry loop, so the degraded-mode
     PRT_FAULT_RATE wrapper does not apply here. *)
  let pool = Buffer_pool.create ~capacity:8192 (Pager.create_memory ~page_size:Common.page_size ()) in
  let tree = Prtree.load pool entries in
  let world = Queries.world_of entries in
  let queries = Queries.squares ~count:batch ~area_fraction:0.01 ~world ~seed:(seed + 1) in
  let cores = Domain.recommended_domain_count () in
  (* Warm the buffer pool (decodes aside, the dataset fits in cache). *)
  ignore (Rtree.query_count tree world);
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  (* Sequential baseline: the plain query loop, summed match count as a
     cross-check against the executor rows. *)
  let baseline_matched, baseline_s =
    time (fun () ->
        Array.fold_left
          (fun acc w -> acc + (Rtree.query_count tree w).Rtree.matched)
          0 queries)
  in
  let baseline_qps = float_of_int batch /. baseline_s in
  Bench_json.(
    row
      [
        ("mode", str "sequential");
        ("jobs", int 1);
        ("cores", int cores);
        ("queries", int batch);
        ("entries", int n);
        ("matched", int baseline_matched);
        ("seconds", flt baseline_s);
        ("qps", flt baseline_qps);
        ("speedup", flt 1.0);
        ("efficiency", flt 1.0);
      ]);
  (* Always-on telemetry overhead: the same sequential loop timed with
     the metrics registry off and on (per-domain striped counters plus
     the latency histogram observed by every query).  Best-of-5 each
     way so scheduler noise doesn't drown the few-percent effect; the
     ratio is wall-clock and therefore reported, not gated. *)
  let was_collecting = Prt_obs.Metrics.collecting () in
  let seq_loop () =
    Array.fold_left (fun acc w -> acc + (Rtree.query_count tree w).Rtree.matched) 0 queries
  in
  let best_of k f =
    let best = ref infinity in
    for _ = 1 to k do
      let _, s = time f in
      if s < !best then best := s
    done;
    !best
  in
  Prt_obs.Metrics.set_collecting false;
  let off_s = best_of 5 seq_loop in
  Prt_obs.Metrics.set_collecting true;
  let on_s = best_of 5 seq_loop in
  Prt_obs.Metrics.set_collecting was_collecting;
  let overhead = (on_s /. off_s -. 1.0) *. 100.0 in
  Printf.printf "metrics overhead: %.4fms off, %.4fms on (%+.1f%%)\n%!" (off_s *. 1e3)
    (on_s *. 1e3) overhead;
  Bench_json.(
    row
      [
        ("mode", str "metrics-overhead");
        ("jobs", int 1);
        ("cores", int cores);
        ("queries", int batch);
        ("entries", int n);
        ("matched", int baseline_matched);
        ("seconds", flt on_s);
        ("seconds_off", flt off_s);
        ("ratio", flt (on_s /. off_s));
      ]);
  (* Read-backend comparison on the same workload, file-backed: the
     index is committed to disk once, then reopened under the pread and
     mmap backends and the full batch replayed through the
     allocation-free [query_into] entry point, best of 5.  Matched
     counts must equal the in-memory baseline (same tree, same
     queries); the mapped window/fallback counters are deterministic
     and gated, the seconds and speedup are wall-clock and only
     reported. *)
  let module Index_file = Prt_rtree.Index_file in
  let module Mmap_pager = Prt_storage.Mmap_pager in
  let path = Filename.temp_file "prt_bench_tp" ".idx" in
  let backend_results =
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let idx =
          Index_file.create ~page_size:Common.page_size path ~build:(fun pool ->
              Prtree.load pool entries)
        in
        Index_file.close idx;
        List.map
          (fun (backend, bname) ->
            let idx = Index_file.open_ ~page_size:Common.page_size ~backend path in
            Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
            if Index_file.read_backend idx <> bname then
              failwith (Printf.sprintf "backend %s did not activate" bname);
            let ftree = Index_file.tree idx in
            let hits = Rtree.hits_make () in
            let pass () =
              Array.fold_left
                (fun acc w ->
                  Rtree.query_into ftree w ~into:hits;
                  acc + Rtree.hits_length hits)
                0 queries
            in
            let counters () =
              match Index_file.mmap_counters idx with
              | Some c -> (c.Mmap_pager.c_windows_served, c.Mmap_pager.c_fallbacks)
              | None -> (0, 0)
            in
            let s0, f0 = counters () in
            let matched = pass () in
            let s1, f1 = counters () in
            if matched <> baseline_matched then
              failwith
                (Printf.sprintf "%s backend matched %d, baseline matched %d" bname matched
                   baseline_matched);
            let seconds = best_of 5 (fun () -> ignore (pass ())) in
            Bench_json.(
              row
                [
                  ("mode", str "file-sequential");
                  ("backend", str bname);
                  ("jobs", int 1);
                  ("cores", int cores);
                  ("queries", int batch);
                  ("entries", int n);
                  ("matched", int matched);
                  ("windows_served", int (s1 - s0));
                  ("fallbacks", int (f1 - f0));
                  ("seconds", flt seconds);
                  ("qps", flt (float_of_int batch /. seconds));
                ]);
            (bname, seconds))
          [ (`Pread, "pread"); (`Mmap, "mmap") ])
  in
  (match backend_results with
  | [ (_, pread_s); (_, mmap_s) ] ->
      Bench_json.(
        row
          [
            ("mode", str "mmap-vs-pread");
            ("jobs", int 1);
            ("cores", int cores);
            ("queries", int batch);
            ("entries", int n);
            ("seconds_pread", flt pread_s);
            ("seconds_mmap", flt mmap_s);
            ("speedup", flt (pread_s /. mmap_s));
          ]);
      Printf.printf "file backends: pread %.4fms, mmap %.4fms (%.2fx)\n%!" (pread_s *. 1e3)
        (mmap_s *. 1e3) (pread_s /. mmap_s)
  | _ -> ());
  let rows = ref [ [ "sequential"; "-"; Printf.sprintf "%.0f" baseline_qps; "1.00"; "-" ] ] in
  List.iter
    (fun jobs ->
      let exec = Qexec.create tree in
      (* Populate the shard cache outside the timed region, like the
         buffer-pool warmup above. *)
      ignore (Qexec.run ~jobs exec queries);
      let results, seconds = time (fun () -> Qexec.run ~jobs exec queries) in
      let matched = (Qexec.total_stats results).Rtree.matched in
      if matched <> baseline_matched then
        failwith
          (Printf.sprintf "qexec(jobs=%d) matched %d, sequential matched %d" jobs matched
             baseline_matched);
      let qps = float_of_int batch /. seconds in
      let speedup = qps /. baseline_qps in
      let efficiency = speedup /. float_of_int jobs in
      Bench_json.(
        row
          [
            ("mode", str "qexec");
            ("jobs", int jobs);
            ("cores", int cores);
            ("queries", int batch);
            ("entries", int n);
            ("matched", int matched);
            ("seconds", flt seconds);
            ("qps", flt qps);
            ("speedup", flt speedup);
            ("efficiency", flt efficiency);
          ]);
      rows :=
        [
          "qexec";
          string_of_int jobs;
          Printf.sprintf "%.0f" qps;
          Printf.sprintf "%.2f" speedup;
          Printf.sprintf "%.2f" efficiency;
        ]
        :: !rows)
    job_counts;
  Printf.printf "(detected cores: %d)\n" cores;
  Table.print ~header:[ "mode"; "jobs"; "QPS"; "speedup"; "efficiency" ] (List.rev !rows)
