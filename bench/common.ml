(* Shared machinery for the experiment harness: the R-tree variant
   registry (the paper's H, H4, PR, TGS plus STR as an extra), build
   measurement (I/Os through the pager, plus wall-clock time), and the
   query-cost metric used by the paper's figures — blocks read divided
   by the output size T/B, with all internal nodes cached, so blocks
   read = leaves visited. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Ext_load = Prt_rtree.Ext_load
module Ext_build = Prt_prtree.Ext_build
module Table = Prt_util.Table
module Stats = Prt_util.Stats
module Trace = Prt_obs.Trace
module Obs_metrics = Prt_obs.Metrics

(* Per-query distributions, visible in `prt-bench` runs under PRT_TRACE
   (the registry is only collecting while a trace sink is installed).
   Namespaced bench.* — the library owns the query.* counters. *)
let h_query_leaves = Obs_metrics.histogram "bench.query_leaves"
let h_query_matched = Obs_metrics.histogram "bench.query_matched"

type variant = H | H4 | PR | TGS | STR

let paper_variants = [ H; H4; PR; TGS ]
let all_variants = [ H; H4; PR; TGS; STR ]

let name = function H -> "H" | H4 -> "H4" | PR -> "PR" | TGS -> "TGS" | STR -> "STR"

(* The paper's setup: 4 KB blocks, 36-byte entries, fanout 113, and a
   64 MB memory budget. Data sizes are scaled 1:100 by default, and the
   memory budget scales with them so the external algorithms see the
   same number of levels as at paper scale. *)
let page_size = 4096
let capacity = Prt_rtree.Node.capacity ~page_size

let mem_records ~scale =
  max (16 * capacity) (int_of_float (float_of_int 1_800_000 /. 100.0 *. scale))

(* Optional degraded-mode runs: PRT_FAULT_RATE (a probability, e.g. 0.1)
   wraps every experiment pager in a deterministic failpoint, so the
   same figures can be reproduced over an unreliable simulated disk.
   The buffer pool's retry policy absorbs the transient faults; the
   injected/absorbed counts are reported next to the I/O numbers.  With
   the variable unset, pagers are bare — fault injection adds exactly
   zero observable I/O. *)
let fault_rate =
  match Sys.getenv_opt "PRT_FAULT_RATE" with
  | None -> 0.0
  | Some s -> (
      match float_of_string_opt s with
      | Some r when r >= 0.0 && r < 1.0 -> r
      | _ -> failwith "PRT_FAULT_RATE must be a float in [0, 1)")

let fault_seed =
  match Sys.getenv_opt "PRT_FAULT_SEED" with
  | None -> 4242
  | Some s -> int_of_string s

let fresh_pool () =
  let pager = Pager.create_memory ~page_size () in
  let pager =
    if fault_rate > 0.0 then
      Pager.wrap_faulty pager
        (Prt_storage.Failpoint.create (Prt_storage.Failpoint.uniform ~seed:fault_seed fault_rate))
    else pager
  in
  Buffer_pool.create ~capacity:4096 pager

(* One-line degraded-mode summary for a pool (empty when no faults were
   injected or absorbed). *)
let degraded_summary pool =
  let d = Buffer_pool.degraded pool in
  let injected =
    match Pager.failpoint (Buffer_pool.pager pool) with
    | None -> ""
    | Some fp ->
        let i = Prt_storage.Failpoint.injected fp in
        if Prt_storage.Failpoint.total_faults i = 0 then ""
        else Format.asprintf " injected: %a;" Prt_storage.Failpoint.pp_injected i
  in
  if d.Buffer_pool.faults = 0 && injected = "" then None
  else Some (Format.asprintf "degraded:%s absorbed: %a" injected Buffer_pool.pp_degraded d)

(* In-memory builders: used for the query experiments, where only the
   resulting tree matters. *)
let build_mem variant pool entries =
  match variant with
  | H -> Prt_rtree.Bulk_hilbert.load_h pool entries
  | H4 -> Prt_rtree.Bulk_hilbert.load_h4 pool entries
  | PR -> Prt_prtree.Prtree.load pool entries
  | TGS -> Prt_rtree.Bulk_tgs.load pool entries
  | STR -> Prt_rtree.Bulk_str.load pool entries

(* External builders: used for the construction-cost experiments, where
   every scan/sort/distribution pass is counted. *)
let build_ext variant pool ~mem_records file =
  match variant with
  | H -> Ext_load.load_h pool ~mem_records file
  | H4 -> Ext_load.load_h4 pool ~mem_records file
  | PR -> Ext_build.load ~mem_records pool file
  | TGS -> Ext_load.load_tgs pool ~mem_records file
  | STR -> invalid_arg "Common.build_ext: no external STR loader"

type build_cost = { ios : int; seconds : float; tree : Rtree.t }

(* Measure an external bulk load: the input file is written first
   (outside the measurement), then every page touched during
   construction is counted. *)
let measure_build variant ~scale entries =
  Trace.with_span "bench.build"
    ~args:[ ("variant", Trace.Str (name variant)); ("n", Trace.Int (Array.length entries)) ]
  @@ fun () ->
  let pool = fresh_pool () in
  let pager = Buffer_pool.pager pool in
  let file = Entry.File.of_array pager entries in
  let before = Pager.snapshot pager in
  let t0 = Unix.gettimeofday () in
  let tree = build_ext variant pool ~mem_records:(mem_records ~scale) file in
  Buffer_pool.flush pool;
  let seconds = Unix.gettimeofday () -. t0 in
  let d = Pager.diff ~before ~after:(Pager.snapshot pager) in
  (match degraded_summary pool with
  | Some s -> Printf.printf "   [%s %s]\n%!" (name variant) s
  | None -> ());
  { ios = Pager.total_io d; seconds; tree }

type query_cost = {
  mean_leaves : float;   (* blocks read per query (internal nodes cached) *)
  mean_output : float;   (* T per query *)
  relative : float;      (* mean leaves / (T/B): the figures' y-axis *)
  leaves_total : int;
  matched_total : int;
}

let measure_queries tree queries =
  let n = Array.length queries in
  if n = 0 then invalid_arg "Common.measure_queries: no queries";
  let leaves = ref 0 and matched = ref 0 in
  Trace.with_span "bench.queries"
    ~args:[ ("queries", Trace.Int n) ]
    (fun () ->
      Array.iter
        (fun q ->
          let s = Rtree.query_count tree q in
          Obs_metrics.observe h_query_leaves s.Rtree.leaf_visited;
          Obs_metrics.observe h_query_matched s.Rtree.matched;
          leaves := !leaves + s.Rtree.leaf_visited;
          matched := !matched + s.Rtree.matched)
        queries);
  let mean_leaves = float_of_int !leaves /. float_of_int n in
  let mean_output = float_of_int !matched /. float_of_int n in
  let ideal = mean_output /. float_of_int capacity in
  {
    mean_leaves;
    mean_output;
    relative = (if ideal > 0.0 then mean_leaves /. ideal else Float.nan);
    leaves_total = !leaves;
    matched_total = !matched;
  }

(* Build each variant on [entries] (in memory) and report the relative
   query cost per variant for each query batch in [batches]; the
   backbone of Figures 12-15. *)
let query_experiment ?(variants = paper_variants) entries batches =
  let trees =
    List.map
      (fun v ->
        let pool = fresh_pool () in
        (v, build_mem v pool entries))
      variants
  in
  List.map
    (fun (label, queries) ->
      (label, List.map (fun (v, tree) -> (v, measure_queries tree queries)) trees))
    batches

let pct x = Printf.sprintf "%.0f%%" (100.0 *. x)
let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x

let commas n =
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let section title =
  Printf.printf "\n== %s ==\n%!" title

let degraded_banner () =
  if fault_rate > 0.0 then
    Printf.printf "   (degraded mode: injecting faults at rate %.1f%%, seed %d)\n%!"
      (100.0 *. fault_rate) fault_seed

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt
