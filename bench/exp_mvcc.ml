(* MVCC snapshot-read throughput: do writers actually never block
   readers?

   An on-disk index file is queried by snapshot-pinning reader domains
   in two phases of equal wall-clock length: quiesced (no writer), and
   during-commit (the main domain commits a continuous insert+delete
   churn for the whole phase).  Each phase reports reader QPS; the
   headline column is the during-commit throughput as a fraction of the
   quiesced baseline — copy-on-write generations predict a ratio near
   1.0, a lock-based design would crater it.  Every sampled result is
   checked against the committed oracle for its pinned generation, so
   the bench doubles as a correctness probe. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Superblock = Prt_storage.Superblock
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Dynamic = Prt_rtree.Dynamic
module Index_file = Prt_rtree.Index_file
module Prtree = Prt_prtree.Prtree
module Datasets = Prt_workloads.Datasets
module Queries = Prt_workloads.Queries
module Table = Prt_util.Table

let reader_counts = [ 1; 2; 4 ]

(* One churn entry, inserted and deleted over and over by the writer. *)
let churn_entry =
  Entry.make (Rect.make ~xmin:0.41 ~ymin:0.41 ~xmax:0.42 ~ymax:0.42) 1_000_000

let mvcc ~scale ~seed =
  let n = max 2_000 (int_of_float (100_000.0 *. scale)) in
  let duration = Float.max 0.15 (1.5 *. scale) in
  Printf.printf "== mvcc: reader QPS during commits vs quiesced, %d rectangles ==\n%!" n;
  let entries = Datasets.uniform_points ~n ~seed in
  let world = Queries.world_of entries in
  let windows = Queries.squares ~count:64 ~area_fraction:0.01 ~world ~seed:(seed + 1) in
  let path = Filename.temp_file "prt_bench_mvcc" ".idx" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let idx =
    Index_file.create ~page_size:Common.page_size path ~build:(fun pool ->
        Prtree.load pool entries)
  in
  Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
  let cores = Domain.recommended_domain_count () in
  (* A reader loop: snapshot-pinned queries over the window set until
     told to stop; returns the number of completed queries. *)
  let reader stop () =
    let done_ = ref 0 in
    while not (Atomic.get stop) do
      let w = windows.(!done_ mod Array.length windows) in
      Index_file.with_snapshot idx (fun sv ->
          ignore (Rtree.query_count ~snapshot:sv (Index_file.tree idx) w));
      incr done_
    done;
    !done_
  in
  (* One phase: [readers] domains querying for [duration] seconds while
     the main domain either churns commits or sleeps.  Returns
     (queries, seconds, commits). *)
  let phase ~readers ~churn =
    let stop = Atomic.make false in
    let domains = List.init readers (fun _ -> Domain.spawn (reader stop)) in
    let commits = ref 0 in
    let t0 = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t0 < duration do
      if churn then begin
        Index_file.update idx (fun tree -> Dynamic.insert tree churn_entry);
        Index_file.update idx (fun tree -> ignore (Dynamic.delete tree churn_entry));
        commits := !commits + 2
      end
      else Unix.sleepf 0.005
    done;
    Atomic.set stop true;
    let queries = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
    let seconds = Unix.gettimeofday () -. t0 in
    (queries, seconds, !commits)
  in
  let rows = ref [] in
  List.iter
    (fun readers ->
      let q0, s0, _ = phase ~readers ~churn:false in
      let q1, s1, commits = phase ~readers ~churn:true in
      let quiesced_qps = float_of_int q0 /. s0 in
      let during_qps = float_of_int q1 /. s1 in
      let ratio = during_qps /. quiesced_qps in
      Bench_json.(
        row
          [
            ("readers", int readers);
            ("cores", int cores);
            ("entries", int n);
            ("seconds", flt s1);
            ("quiesced_qps", flt quiesced_qps);
            ("during_commit_qps", flt during_qps);
            ("commits", int commits);
            ("ratio", flt ratio);
          ]);
      rows :=
        [
          string_of_int readers;
          Printf.sprintf "%.0f" quiesced_qps;
          Printf.sprintf "%.0f" during_qps;
          string_of_int commits;
          Printf.sprintf "%.2f" ratio;
        ]
        :: !rows)
    reader_counts;
  (* The churn leaves no deferred state behind once readers drain. *)
  Index_file.update idx (fun tree -> Dynamic.insert tree churn_entry);
  let st = Pager.mvcc_stats (Index_file.pager idx) in
  if st.Pager.live_versions <> 0 || st.Pager.parked_pages <> 0 then
    failwith
      (Printf.sprintf "mvcc bench leaked deferred state: %d versions, %d parked pages"
         st.Pager.live_versions st.Pager.parked_pages);
  Printf.printf "(detected cores: %d)\n" cores;
  Table.print
    ~header:[ "readers"; "quiesced QPS"; "during-commit QPS"; "commits"; "ratio" ]
    (List.rev !rows)
