(* Theorem 2: the d-dimensional PR-tree's O((N/B)^(1-1/d) + T/B) bound,
   checked empirically in 3 dimensions — zero-ish-output slab queries
   must scale like (N/B)^(2/3), clearly sublinear in the leaf count. *)

module Table = Prt_util.Table
module Hyperrect = Prt_geom.Hyperrect
module Rng = Prt_util.Rng
module Entry_nd = Prt_ndtree.Entry_nd
module Rtree_nd = Prt_ndtree.Rtree_nd
module Prtree_nd = Prt_ndtree.Prtree_nd

open Common

let boxes ~dims ~n ~seed =
  let rng = Rng.create seed in
  Array.init n (fun i ->
      let lo = Array.init dims (fun _ -> Rng.float rng 1.0) in
      let hi = Array.map (fun v -> Float.min 1.0 (v +. Rng.float rng 0.01)) lo in
      Entry_nd.make (Hyperrect.make ~lo ~hi) i)

let nd ~scale ~seed =
  section "Theorem 2: 3-D PR-tree query bound ((N/B)^(2/3) scaling)";
  let dims = 3 in
  let sizes =
    List.map (fun n -> int_of_float (float_of_int n *. scale)) [ 25_000; 50_000; 100_000; 200_000 ]
  in
  let rows =
    List.map
      (fun n ->
        let entries = boxes ~dims ~n ~seed in
        let pool = fresh_pool () in
        let tree = Prtree_nd.load ~dims pool entries in
        let cap = Rtree_nd.capacity tree in
        let total_leaves = (Rtree_nd.validate tree).Rtree_nd.leaves in
        (* Zero-volume axis-parallel slabs in each orientation. *)
        let rng = Rng.create (seed + 1) in
        let q = 30 in
        let total = ref 0 and matched = ref 0 in
        for i = 1 to q do
          let axis = i mod dims in
          let v = Rng.float rng 1.0 in
          let lo = Array.make dims 0.0 and hi = Array.make dims 1.0 in
          lo.(axis) <- v;
          hi.(axis) <- v;
          let s = Rtree_nd.query_count tree (Hyperrect.make ~lo ~hi) in
          total := !total + s.Rtree_nd.leaf_visited;
          matched := !matched + s.Rtree_nd.matched
        done;
        let mean = float_of_int !total /. float_of_int q in
        let bound = Float.pow (float_of_int n /. float_of_int cap) (2.0 /. 3.0) in
        Bench_json.(
          row [ ("n", int n); ("mean_leaves", flt mean); ("ratio", flt (mean /. bound)) ]);
        [
          commas n;
          f1 mean;
          f1 (float_of_int !matched /. float_of_int q /. float_of_int cap);
          string_of_int total_leaves;
          f1 bound;
          f2 (mean /. bound);
        ])
      sizes
  in
  Table.print
    ~header:[ "N"; "mean leaves/query"; "T/B"; "total leaves"; "(N/B)^(2/3)"; "ratio" ]
    rows;
  note "the ratio staying bounded as N grows 8x is the Theorem 2 guarantee in 3-D."
