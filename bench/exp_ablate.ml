(* Ablation experiments for the design choices DESIGN.md calls out:

   [ablate] covers:
   - priority-leaf size: the paper's key idea is B-sized priority
     leaves; its reference [2] used size 1, and size 0 degenerates to a
     plain 4-D kd-tree. We sweep the size on the worst-case grid and on
     CLUSTER, where the leaves are what saves the PR-tree.
   - memory budget: construction I/O of the external loaders as the
     in-memory budget shrinks (more runs, more distribution rounds).
   - cache: the paper's footnote 5 claims caching internal nodes has
     little effect on query I/O; we measure physical page reads across
     cache sizes.
   - Hilbert curve order: the resolution of the H loader's key. *)

module Table = Prt_util.Table
module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Datasets = Prt_workloads.Datasets
module Queries = Prt_workloads.Queries

open Common

let priority_leaf_sweep ~scale ~seed =
  section "Ablation: priority-leaf size (the paper's key design choice)";
  let b = capacity in
  (* Flagpoles: tall thin rectangles probed by strips near the top.
     Extent is what priority leaves exist for — on point data a plain
     4-D kd-tree is already near-optimal (kdB-trees), so this is the
     input that isolates their contribution. *)
  let n = int_of_float (50_000.0 *. scale) in
  let poles = Datasets.flagpoles ~n ~seed in
  let pole_queries = Datasets.flagpole_queries ~count:50 ~seed:(seed + 1) in
  let uniform = Datasets.size ~n ~max_side:0.01 ~seed:(seed + 2) in
  let uniform_queries =
    Queries.squares ~count:50 ~area_fraction:0.01
      ~world:(Queries.world_of uniform)
      ~seed:(seed + 3)
  in
  let rows =
    List.map
      (fun priority_size ->
        let label =
          match priority_size with
          | 0 -> "0 (plain 4-D kd-tree)"
          | 1 -> "1 (as in reference [2])"
          | s when s = b -> Printf.sprintf "%d = B (the PR-tree)" s
          | s -> string_of_int s
        in
        let pole_tree = Prt_prtree.Prtree.load ~priority_size (fresh_pool ()) poles in
        let pole_leaves = (Rtree.validate pole_tree).Rtree.leaves in
        let pole_cost = measure_queries pole_tree pole_queries in
        let uni_tree = Prt_prtree.Prtree.load ~priority_size (fresh_pool ()) uniform in
        let uni_cost = measure_queries uni_tree uniform_queries in
        [
          label;
          f1 pole_cost.mean_leaves;
          string_of_int pole_leaves;
          pct uni_cost.relative;
        ])
      [ 0; 1; b / 8; b / 2; b ]
  in
  Table.print
    ~header:[ "priority size"; "flagpole I/Os per query"; "tree leaves"; "uniform query cost" ]
    rows;
  note "full-size priority leaves win by ~5x on extent-adversarial data and cost";
  note "  nothing on nice data; size-1 leaves (ref [2]) bloat the tree badly."

let memory_sweep ~scale ~seed =
  section "Ablation: construction I/O vs memory budget";
  let n = int_of_float (100_000.0 *. scale) in
  let entries = Datasets.uniform_points ~n ~seed in
  let budgets =
    [ 16 * capacity; 64 * capacity; n / 16; n / 4; n ]
    |> List.sort_uniq Int.compare
    |> List.filter (fun m -> m >= 16 * capacity)
  in
  let rows =
    List.map
      (fun mem_records ->
        let build variant =
          let pool = fresh_pool () in
          let pager = Buffer_pool.pager pool in
          let file = Entry.File.of_array pager entries in
          let before = Pager.snapshot pager in
          let tree = build_ext variant pool ~mem_records file in
          Buffer_pool.flush pool;
          ignore (Rtree.validate tree);
          Pager.total_io (Pager.diff ~before ~after:(Pager.snapshot pager))
        in
        [
          commas mem_records;
          commas (build H);
          commas (build PR);
          commas (build TGS);
        ])
      budgets
  in
  Table.print ~header:[ "memory (records)"; "H I/Os"; "PR I/Os"; "TGS I/Os" ] rows;
  note "H and PR shrink as memory grows (fewer merge passes / rounds);";
  note "  TGS's per-partition scans dominate regardless."

let cache_sweep ~scale ~seed =
  section "Ablation: query I/O vs buffer-cache size (paper footnote 5)";
  let n = int_of_float (100_000.0 *. scale) in
  let entries = Datasets.uniform_points ~n ~seed in
  let world = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0 in
  let queries = Queries.squares ~count:100 ~area_fraction:0.01 ~world ~seed:(seed + 1) in
  let rows =
    List.map
      (fun cache_pages ->
        let pool = Buffer_pool.create ~capacity:cache_pages (Pager.create_memory ~page_size ()) in
        let tree = Prt_prtree.Prtree.load pool entries in
        let internal =
          let s = Rtree.validate tree in
          s.Rtree.nodes - s.Rtree.leaves
        in
        (* Measure physical reads only: reset after the build+validate
           warm-up, then drop the cache to a fresh state of the chosen
           size by re-creating the pool view. *)
        let pager = Buffer_pool.pager pool in
        let cold = Buffer_pool.create ~capacity:cache_pages pager in
        let tree = Rtree.of_root ~pool:cold ~root:(Rtree.root tree) ~height:(Rtree.height tree)
            ~count:(Rtree.count tree)
        in
        let before = Pager.snapshot pager in
        Array.iter (fun q -> ignore (Rtree.query_count tree q)) queries;
        let d = Pager.diff ~before ~after:(Pager.snapshot pager) in
        [
          string_of_int cache_pages;
          string_of_int internal;
          f1 (float_of_int d.Pager.s_reads /. float_of_int (Array.length queries));
        ])
      [ 1; 8; 64; 512; 4096 ]
  in
  Table.print ~header:[ "cache pages"; "internal nodes"; "physical reads per query" ] rows;
  note "once the cache covers the internal nodes, physical reads converge to the";
  note "  leaf count — and even a tiny cache is close (the paper's footnote 5)."

let hilbert_order_sweep ~scale ~seed =
  section "Ablation: Hilbert curve resolution for the H loader";
  ignore scale;
  let entries =
    Datasets.cluster ~n_clusters:(max 10 (int_of_float (330.0 *. scale))) ~per_cluster:300 ~seed
  in
  let queries = Queries.cluster_strips ~count:50 ~seed:(seed + 1) in
  let world = Prt_workloads.Queries.world_of entries in
  let rows =
    List.map
      (fun order ->
        (* Rebuild the H-tree with a custom-order key. *)
        let side = Float.max (Float.max (Rect.width world) (Rect.height world)) 1e-9 in
        let xlo = Rect.xmin world and ylo = Rect.ymin world in
        let xhi = xlo +. side and yhi = ylo +. side in
        let key e =
          let cx, cy = Rect.center (Entry.rect e) in
          let x = Prt_hilbert.Hilbert2d.quantize ~order ~lo:xlo ~hi:xhi cx in
          let y = Prt_hilbert.Hilbert2d.quantize ~order ~lo:ylo ~hi:yhi cy in
          Prt_hilbert.Hilbert2d.index ~order x y
        in
        let keyed = Array.map (fun e -> (key e, e)) entries in
        Array.sort
          (fun (a, ea) (b, eb) ->
            let c = Int.compare a b in
            if c <> 0 then c else Entry.compare_dim 0 ea eb)
          keyed;
        let tree =
          Prt_rtree.Pack.build_from_ordered (fresh_pool ()) (Array.map snd keyed)
        in
        let cost = measure_queries tree queries in
        [ string_of_int order; f1 cost.mean_leaves ])
      [ 8; 12; 16; 20; 24 ]
  in
  Table.print ~header:[ "curve order (bits/axis)"; "CLUSTER I/Os per query" ] rows;
  note "coarse curves collapse micro-clusters onto single keys, destroying";
  note "  within-cluster locality; the library defaults to order 24."

(* Spatial join between two road layers, per index variant: an
   extension experiment showing join cost also benefits from tight
   bulk-loaded trees. *)
let join ~scale ~seed =
  section "Spatial join: roads x roads (synchronized traversal)";
  let n = int_of_float (40_000.0 *. scale) in
  let left = Prt_workloads.Tiger.generate (Prt_workloads.Tiger.default_params ~n ~seed) in
  let right =
    Array.map
      (fun e -> Entry.make (Entry.rect e) (Entry.id e))
      (Prt_workloads.Tiger.generate (Prt_workloads.Tiger.default_params ~n ~seed:(seed + 1)))
  in
  note "%s x %s TIGER-like rectangles" (commas n) (commas n);
  let rows =
    List.map
      (fun v ->
        let tl = build_mem v (fresh_pool ()) left in
        let tr = build_mem v (fresh_pool ()) right in
        let t0 = Unix.gettimeofday () in
        let stats = Prt_rtree.Join.pairs tl tr ~f:(fun _ _ -> ()) in
        [
          name v;
          commas stats.Prt_rtree.Join.pairs;
          commas (stats.Prt_rtree.Join.nodes_read_left + stats.Prt_rtree.Join.nodes_read_right);
          f2 (Unix.gettimeofday () -. t0);
        ])
      paper_variants
  in
  Table.print ~header:[ "variant"; "result pairs"; "node reads"; "seconds" ] rows;
  note "all variants return identical pair counts; node reads track MBR overlap."

(* Structural quality metrics per variant: the geometry the heuristics
   optimize, without running a single query. *)
let quality ~scale ~seed =
  section "Tree quality metrics (leaf-level MBR geometry)";
  let n = int_of_float (100_000.0 *. scale) in
  List.iter
    (fun (dname, entries) ->
      note "%s (%s rectangles):" dname (commas (Array.length entries));
      let rows =
        List.map
          (fun v ->
            let tree = build_mem v (fresh_pool ()) entries in
            let m = Prt_rtree.Metrics.analyze tree in
            [
              name v;
              Printf.sprintf "%.4f" m.Prt_rtree.Metrics.leaf_area;
              Printf.sprintf "%.6f" m.Prt_rtree.Metrics.leaf_overlap;
              Printf.sprintf "%.4f" m.Prt_rtree.Metrics.dead_space;
            ])
          all_variants
      in
      Table.print ~header:[ "variant"; "leaf area"; "leaf overlap"; "dead space" ] rows)
    [
      ("TIGER-like", Prt_workloads.Tiger.generate (Prt_workloads.Tiger.default_params ~n ~seed));
      ("SKEWED(7)", Datasets.skewed ~n ~c:7 ~seed:(seed + 1));
    ];
  note "lower is better everywhere; leaf overlap predicts window-query cost."

let ablate ~scale ~seed =
  priority_leaf_sweep ~scale ~seed;
  memory_sweep ~scale ~seed;
  cache_sweep ~scale ~seed;
  hilbert_order_sweep ~scale ~seed;
  quality ~scale ~seed
