(* The serving tier under load: QPS and tail latency vs client
   concurrency over a real Unix-domain socket, plus two deterministic
   shedding columns (quota and overload) the regression gate can pin
   exactly.

   Three modes share one row shape:

   - qps: per workload (SKEWED, CLUSTER), the server (no quotas, no
     admission cap) is driven by 1/2/4 load-generator domains; matched
     counts are cross-checked against a local oracle computed before
     the server starts, so the bench doubles as an end-to-end
     correctness probe.  p50/p99/qps are wall-clock (not gated);
     matched / ok / shed are deterministic and gated exactly.
   - quota: one serial client against a server whose per-connection
     bucket holds exactly 4 batches and never refills — request 5 on
     is rejected [E_quota]; the server-side [quota_rejected] count is
     exact.
   - overload: batch size above the executor's [max_in_flight], so
     every request (and its one retry) is shed [E_overloaded]; the
     server-side [shed] count is exact. *)

module Rect = Prt_geom.Rect
module Superblock = Prt_storage.Superblock
module Rtree = Prt_rtree.Rtree
module Index_file = Prt_rtree.Index_file
module Prtree = Prt_prtree.Prtree
module Datasets = Prt_workloads.Datasets
module Queries = Prt_workloads.Queries
module Server = Prt_serve.Server
module Client = Prt_serve.Client
module Load_gen = Prt_serve.Load_gen
module Table = Prt_util.Table

let concurrencies = [ 1; 2; 4 ]
let batch = 8

(* Fresh socket path per server instance (short: Unix socket paths cap
   at ~100 bytes). *)
let socket_path =
  let k = ref 0 in
  fun () ->
    incr k;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "prt_serve_%d_%d.sock" (Unix.getpid ()) !k)

(* Run [drive] against a server with [config] over [idx]; returns
   (drive result, server report).  The server runs on its own domain;
   drain is requested once the driver finishes, and the drained server
   must leave no snapshot pins behind. *)
let with_server ~config idx drive =
  let srv = Server.create ~config idx in
  let path = socket_path () in
  Server.listen_unix srv path;
  let dom = Domain.spawn (fun () -> Server.run srv) in
  let finally () =
    Server.request_drain srv;
    let report = Domain.join dom in
    (try Sys.remove path with Sys_error _ -> ());
    let pins = Superblock.pin_count (Index_file.superblock idx) in
    if pins <> 0 then failwith (Printf.sprintf "serve bench leaked %d snapshot pin(s)" pins);
    report
  in
  match drive path with
  | v -> (v, finally ())
  | exception e ->
      ignore (finally ());
      raise e

let p_of stats p =
  let v = Load_gen.percentile stats.Load_gen.latencies_us p in
  if Float.is_nan v then 0.0 else v

let emit_row ~mode ~workload ~concurrency ~entries ~queries ~(stats : Load_gen.stats)
    ~(report : Server.report) =
  Bench_json.(
    row
      [
        ("mode", str mode);
        ("workload", str workload);
        ("concurrency", int concurrency);
        ("batch", int batch);
        ("entries", int entries);
        ("queries", int queries);
        ("sent", int stats.Load_gen.sent);
        ("ok", int stats.Load_gen.ok);
        ("matched", int stats.Load_gen.matched);
        ("shed", int report.Server.shed_overload);
        ("quota_rejected", int report.Server.shed_quota);
        ("retries", int stats.Load_gen.retries);
        ("gave_up", int stats.Load_gen.gave_up);
        ("p50_us", flt (p_of stats 50.0));
        ("p99_us", flt (p_of stats 99.0));
        ("qps", flt (Load_gen.qps stats));
        ("seconds", flt stats.Load_gen.elapsed_s);
      ])

let serve ~scale ~seed =
  let n = max 2_000 (int_of_float (50_000.0 *. scale)) in
  let count = 96 in
  Printf.printf "== serve: network tier QPS, quotas and shedding, %d rectangles ==\n%!" n;
  let workloads =
    [
      ( "SKEWED",
        Datasets.skewed ~n ~c:5 ~seed,
        Queries.skewed_squares ~count ~area_fraction:0.001 ~c:5 ~seed:(seed + 1) );
      ( "CLUSTER",
        (let clusters = max 1 (int_of_float (sqrt (float_of_int n))) in
         Datasets.cluster ~n_clusters:clusters ~per_cluster:(max 1 (n / clusters)) ~seed),
        Queries.cluster_strips ~count ~seed:(seed + 1) );
    ]
  in
  let table = ref [] in
  List.iter
    (fun (workload, entries, windows) ->
      let path = Filename.temp_file "prt_bench_serve" ".idx" in
      Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      @@ fun () ->
      let idx =
        Index_file.create ~page_size:Common.page_size path ~build:(fun pool ->
            Prtree.load pool entries)
      in
      Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
      (* The oracle, computed before the server exists: what every
         window must match, however the client batches are split. *)
      let tree = Index_file.tree idx in
      let oracle =
        Array.fold_left (fun acc w -> acc + (Rtree.query_count tree w).Rtree.matched) 0 windows
      in
      let open_config =
        { Server.default_config with Server.max_conns = 16; max_queue = 4096; jobs = 1 }
      in
      (* qps rows: one server instance serves all three concurrency
         levels in sequence. *)
      let results, report =
        with_server ~config:open_config idx (fun sock ->
            List.map
              (fun concurrency ->
                let cfg =
                  {
                    (Load_gen.default_config ~connect:(fun () -> Client.connect_unix sock)) with
                    Load_gen.concurrency;
                    batch;
                    seed;
                  }
                in
                (concurrency, Load_gen.run cfg windows))
              concurrencies)
      in
      List.iter
        (fun (concurrency, stats) ->
          if stats.Load_gen.matched <> oracle then
            failwith
              (Printf.sprintf "serve bench: %s c=%d matched %d, oracle says %d" workload
                 concurrency stats.Load_gen.matched oracle);
          (* Server-side shed counters belong to the whole instance;
             per-row they are zero by construction (no quotas, huge
             queue) — assert rather than apportion. *)
          emit_row ~mode:"qps" ~workload ~concurrency ~entries:n ~queries:count ~stats
            ~report:
              { report with Server.shed_overload = 0; shed_quota = 0 };
          table :=
            [
              workload;
              "qps";
              string_of_int concurrency;
              string_of_int stats.Load_gen.ok;
              Common.commas stats.Load_gen.matched;
              Printf.sprintf "%.0f" (p_of stats 50.0);
              Printf.sprintf "%.0f" (p_of stats 99.0);
              Printf.sprintf "%.0f" (Load_gen.qps stats);
            ]
            :: !table)
        results;
      if report.Server.shed_overload + report.Server.shed_quota <> 0 then
        failwith "serve bench: unexpected shedding in the open configuration")
    workloads;
  (* Deterministic shedding columns, on the SKEWED index only. *)
  let workload, dataset, windows = List.hd workloads in
  let path = Filename.temp_file "prt_bench_serve" ".idx" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let idx =
    Index_file.create ~page_size:Common.page_size path ~build:(fun pool ->
        Prtree.load pool dataset)
  in
  Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
  (* quota: bucket of exactly 4 batches, no refill, no client retries —
     requests 5.. are E_quota rejections, counted server-side. *)
  let quota_config =
    {
      Server.default_config with
      Server.quota_rate = 0.0;
      quota_burst = float_of_int (4 * batch);
      jobs = 1;
    }
  in
  let stats, report =
    with_server ~config:quota_config idx (fun sock ->
        Load_gen.run
          {
            (Load_gen.default_config ~connect:(fun () -> Client.connect_unix sock)) with
            Load_gen.batch;
            max_retries = 0;
            seed;
          }
          windows)
  in
  emit_row ~mode:"quota" ~workload ~concurrency:1 ~entries:n ~queries:count ~stats ~report;
  table :=
    [
      workload;
      "quota";
      "1";
      string_of_int stats.Load_gen.ok;
      Common.commas stats.Load_gen.matched;
      "-";
      "-";
      Printf.sprintf "rejected=%d" report.Server.shed_quota;
    ]
    :: !table;
  if stats.Load_gen.ok <> 4 then
    failwith (Printf.sprintf "serve bench: quota admitted %d requests, expected 4"
                stats.Load_gen.ok);
  (* overload: every batch is wider than the executor admits, so each
     request and its single retry are both shed E_overloaded. *)
  let overload_config =
    { Server.default_config with Server.max_in_flight = batch / 2; jobs = 1 }
  in
  let stats, report =
    with_server ~config:overload_config idx (fun sock ->
        Load_gen.run
          {
            (Load_gen.default_config ~connect:(fun () -> Client.connect_unix sock)) with
            Load_gen.batch;
            max_retries = 1;
            base_backoff_ms = 1.0;
            max_backoff_ms = 5.0;
            seed;
          }
          windows)
  in
  emit_row ~mode:"overload" ~workload ~concurrency:1 ~entries:n ~queries:count ~stats ~report;
  table :=
    [
      workload;
      "overload";
      "1";
      string_of_int stats.Load_gen.ok;
      Common.commas stats.Load_gen.matched;
      "-";
      "-";
      Printf.sprintf "shed=%d" report.Server.shed_overload;
    ]
    :: !table;
  if stats.Load_gen.ok <> 0 || report.Server.shed_overload <> 2 * stats.Load_gen.sent then
    failwith "serve bench: overload column did not shed every attempt";
  Table.print
    ~header:[ "workload"; "mode"; "clients"; "ok"; "matched"; "p50 us"; "p99 us"; "qps / shed" ]
    (List.rev !table)
