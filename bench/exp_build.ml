(* Construction-cost experiments: Figures 9, 10 and 11.

   All builds run through the external (I/O-counted) loaders on a fresh
   simulated disk; the input record file is written before measurement
   starts. Paper reference numbers are printed alongside (converted to
   ratios against H, since our absolute scale is 1:100 by default). *)

module Table = Prt_util.Table
module Tiger = Prt_workloads.Tiger
module Datasets = Prt_workloads.Datasets

open Common

(* Figure 9: bulk-loading cost on the TIGER Western/Eastern datasets.
   Paper (I/Os, millions): Western H/H4 1.2, PR 3.1, TGS 14.7;
   Eastern H/H4 1.7, PR 4.4, TGS 21.1. *)
let fig9 ~scale ~seed =
  section "Figure 9: bulk-loading cost on TIGER-like data";
  degraded_banner ();
  let datasets =
    [ ("Western", Tiger.western ~scale ~seed); ("Eastern", Tiger.eastern ~scale ~seed:(seed + 1)) ]
  in
  let paper_ratio = function
    | "Western", H | "Western", H4 -> 1.0
    | "Western", PR -> 3.1 /. 1.2
    | "Western", TGS -> 14.7 /. 1.2
    | "Eastern", H | "Eastern", H4 -> 1.0
    | "Eastern", PR -> 4.4 /. 1.7
    | "Eastern", TGS -> 21.1 /. 1.7
    | _ -> Float.nan
  in
  List.iter
    (fun (dname, entries) ->
      note "%s: %s rectangles" dname (commas (Array.length entries));
      let results = List.map (fun v -> (v, measure_build v ~scale entries)) paper_variants in
      List.iter
        (fun (v, c) ->
          Bench_json.(
            row
              [
                ("dataset", str dname);
                ("variant", str (name v));
                ("ios", int c.ios);
                ("seconds", flt c.seconds);
                ("entries", int (Prt_rtree.Rtree.count c.tree));
              ]))
        results;
      let h_ios =
        match List.assoc_opt H results with Some c -> float_of_int c.ios | None -> Float.nan
      in
      let rows =
        List.map
          (fun (v, c) ->
            [
              name v;
              commas c.ios;
              f2 c.seconds;
              f2 (float_of_int c.ios /. h_ios);
              f2 (paper_ratio (dname, v));
              commas (Prt_rtree.Rtree.count c.tree);
            ])
          results
      in
      Table.print
        ~header:[ "variant"; "I/Os"; "seconds"; "I/O ratio vs H"; "paper ratio"; "entries" ]
        rows)
    datasets

(* Figure 10: bulk-loading I/Os as the Eastern dataset grows.
   Paper (millions of I/Os at 2.1/5.7/9.2/12.7/16.7M rects):
   H 0.2/0.6/0.9/1.3/1.7, PR 0.6/1.5/2.4/3.3/4.4,
   TGS 1.8/6.2/11.0/15.2/21.1. *)
let fig10 ~scale ~seed =
  section "Figure 10: bulk-loading I/Os vs dataset size (Eastern slices)";
  degraded_banner ();
  let subsets = Tiger.eastern_subsets ~scale ~seed in
  let header =
    "variant"
    :: (Array.to_list subsets |> List.map (fun s -> commas (Array.length s) ^ " rects"))
  in
  let rows =
    List.map
      (fun v ->
        name v
        :: (Array.to_list subsets
           |> List.map (fun entries ->
                  let c = measure_build v ~scale entries in
                  Bench_json.(
                    row
                      [
                        ("variant", str (name v));
                        ("n", int (Array.length entries));
                        ("ios", int c.ios);
                        ("seconds", flt c.seconds);
                      ]);
                  commas c.ios)))
      paper_variants
  in
  Table.print ~header rows;
  note "paper shape: H and PR grow linearly; TGS grows slightly superlinearly,";
  note "  at roughly 3x PR's I/Os on the smallest slice and ~5x on the largest."

(* Figure 11: TGS bulk-loading time across data distributions.
   Paper (seconds, 10M rects): SIZE 0.2%..20%: 3726 3929 4552 5837 8952
   12111 14024; ASPECT 10..10^5: 4613 13196 12738 14034 8283. The
   point: TGS construction cost is strongly distribution-dependent while
   H/H4/PR are not. *)
let fig11 ~scale ~seed =
  section "Figure 11: TGS bulk-loading cost across distributions";
  degraded_banner ();
  let n = int_of_float (100_000.0 *. scale) in
  let size_params = [ 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2 ] in
  let aspect_params = [ 10.0; 100.0; 1_000.0; 10_000.0; 100_000.0 ] in
  let datasets =
    List.map
      (fun s -> (Printf.sprintf "SIZE(%g)" s, Datasets.size ~n ~max_side:s ~seed))
      size_params
    @ List.map
        (fun a -> (Printf.sprintf "ASPECT(%g)" a, Datasets.aspect ~n ~a ~seed:(seed + 1)))
        aspect_params
  in
  let rows =
    List.map
      (fun (dname, entries) ->
        let tgs = measure_build TGS ~scale entries in
        let pr = measure_build PR ~scale entries in
        List.iter
          (fun (v, c) ->
            Bench_json.(
              row
                [
                  ("dataset", str dname);
                  ("variant", str (name v));
                  ("ios", int c.ios);
                  ("seconds", flt c.seconds);
                ]))
          [ (TGS, tgs); (PR, pr) ];
        [
          dname;
          commas tgs.ios;
          f2 tgs.seconds;
          commas pr.ios;
          f2 pr.seconds;
          f2 (float_of_int tgs.ios /. float_of_int pr.ios);
        ])
      datasets
  in
  Table.print
    ~header:[ "dataset"; "TGS I/Os"; "TGS s"; "PR I/Os"; "PR s"; "TGS/PR I/O ratio" ]
    rows;
  note "paper shape: TGS cost varies up to ~4x across distributions (4.6-16.4x";
  note "  PR's I/Os); PR's cost is essentially distribution-independent."
