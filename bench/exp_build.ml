(* Construction-cost experiments: Figures 9, 10 and 11.

   All builds run through the external (I/O-counted) loaders on a fresh
   simulated disk; the input record file is written before measurement
   starts. Paper reference numbers are printed alongside (converted to
   ratios against H, since our absolute scale is 1:100 by default). *)

module Table = Prt_util.Table
module Tiger = Prt_workloads.Tiger
module Datasets = Prt_workloads.Datasets

open Common

(* Read-backend comparison (not a paper figure): the PR-tree built
   file-backed, then reopened and queried under each read backend —
   pread (page cache + decode through the buffer pool) vs mmap (rect
   tests straight against the shared file mapping, allocation-free
   descent).  The match counts must be byte-identical; the mapped
   window/fallback counters are deterministic (fixed tree, fixed query
   batch) and gated by check_regress, while the cold/warm seconds and
   the speedup row are wall-clock and only reported. *)
let backend_rows ~scale ~seed (dname, entries) =
  let module Index_file = Prt_rtree.Index_file in
  let module Mmap_pager = Prt_storage.Mmap_pager in
  let module Queries = Prt_workloads.Queries in
  let n = Array.length entries in
  let batch = max 32 (int_of_float (500.0 *. scale)) in
  let world = Queries.world_of entries in
  let queries = Queries.squares ~count:batch ~area_fraction:0.01 ~world ~seed:(seed + 7) in
  let path = Filename.temp_file "prt_bench_backend" ".idx" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let idx =
    Index_file.create ~page_size path ~build:(fun pool -> Prt_prtree.Prtree.load pool entries)
  in
  Index_file.close idx;
  let run backend bname =
    let idx = Index_file.open_ ~page_size ~backend path in
    Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
    if Index_file.read_backend idx <> bname then
      failwith (Printf.sprintf "backend %s did not activate" bname);
    let tree = Index_file.tree idx in
    let hits = Rtree.hits_make () in
    let pass () =
      let matched = ref 0 in
      Array.iter
        (fun w ->
          Rtree.query_into tree w ~into:hits;
          matched := !matched + Rtree.hits_length hits)
        queries;
      !matched
    in
    (* First pass is the cold one (empty buffer pool resp. unverified
       CRC memo) and doubles as the counted pass: the mapped-window
       deltas it produces are deterministic. *)
    let counters () =
      match Index_file.mmap_counters idx with
      | Some c -> (c.Mmap_pager.c_windows_served, c.Mmap_pager.c_fallbacks)
      | None -> (0, 0)
    in
    let s0, f0 = counters () in
    let t0 = Unix.gettimeofday () in
    let matched = pass () in
    let cold_s = Unix.gettimeofday () -. t0 in
    let s1, f1 = counters () in
    let warm_s = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      ignore (pass ());
      let s = Unix.gettimeofday () -. t0 in
      if s < !warm_s then warm_s := s
    done;
    Bench_json.(
      row
        [
          ("dataset", str dname);
          ("mode", str "query-backend");
          ("backend", str bname);
          ("queries", int batch);
          ("entries", int n);
          ("matched", int matched);
          ("windows_served", int (s1 - s0));
          ("fallbacks", int (f1 - f0));
          ("cold_seconds", flt cold_s);
          ("seconds", flt !warm_s);
        ]);
    (matched, s1 - s0, f1 - f0, cold_s, !warm_s)
  in
  let pm, _, _, pcold, pwarm = run `Pread "pread" in
  let mm, served, fb, mcold, mwarm = run `Mmap "mmap" in
  if pm <> mm then
    failwith (Printf.sprintf "%s: pread matched %d, mmap matched %d" dname pm mm);
  Bench_json.(
    row
      [
        ("dataset", str dname);
        ("mode", str "mmap-speedup");
        ("queries", int batch);
        ("entries", int n);
        ("seconds_pread", flt pwarm);
        ("seconds_mmap", flt mwarm);
        ("speedup", flt (pwarm /. mwarm));
      ]);
  Table.print
    ~header:
      [ "backend"; "matched"; "windows served"; "fallbacks"; "cold s"; "warm s"; "speedup" ]
    [
      [ "pread"; commas pm; "-"; "-"; f2 pcold; f2 pwarm; "1.00" ];
      [
        "mmap";
        commas mm;
        commas served;
        commas fb;
        f2 mcold;
        f2 mwarm;
        f2 (pwarm /. mwarm);
      ];
    ]

(* Figure 9: bulk-loading cost on the TIGER Western/Eastern datasets.
   Paper (I/Os, millions): Western H/H4 1.2, PR 3.1, TGS 14.7;
   Eastern H/H4 1.7, PR 4.4, TGS 21.1. *)
let fig9 ~scale ~seed =
  section "Figure 9: bulk-loading cost on TIGER-like data";
  degraded_banner ();
  let datasets =
    [ ("Western", Tiger.western ~scale ~seed); ("Eastern", Tiger.eastern ~scale ~seed:(seed + 1)) ]
  in
  let paper_ratio = function
    | "Western", H | "Western", H4 -> 1.0
    | "Western", PR -> 3.1 /. 1.2
    | "Western", TGS -> 14.7 /. 1.2
    | "Eastern", H | "Eastern", H4 -> 1.0
    | "Eastern", PR -> 4.4 /. 1.7
    | "Eastern", TGS -> 21.1 /. 1.7
    | _ -> Float.nan
  in
  List.iter
    (fun (dname, entries) ->
      note "%s: %s rectangles" dname (commas (Array.length entries));
      let results = List.map (fun v -> (v, measure_build v ~scale entries)) paper_variants in
      List.iter
        (fun (v, c) ->
          Bench_json.(
            row
              [
                ("dataset", str dname);
                ("variant", str (name v));
                ("ios", int c.ios);
                ("seconds", flt c.seconds);
                ("entries", int (Prt_rtree.Rtree.count c.tree));
              ]))
        results;
      let h_ios =
        match List.assoc_opt H results with Some c -> float_of_int c.ios | None -> Float.nan
      in
      let rows =
        List.map
          (fun (v, c) ->
            [
              name v;
              commas c.ios;
              f2 c.seconds;
              f2 (float_of_int c.ios /. h_ios);
              f2 (paper_ratio (dname, v));
              commas (Prt_rtree.Rtree.count c.tree);
            ])
          results
      in
      Table.print
        ~header:[ "variant"; "I/Os"; "seconds"; "I/O ratio vs H"; "paper ratio"; "entries" ]
        rows)
    datasets;
  section "Read backends: pread vs mmap query cost on the file-backed PR-tree";
  List.iter (fun d -> backend_rows ~scale ~seed d) datasets

(* Figure 10: bulk-loading I/Os as the Eastern dataset grows.
   Paper (millions of I/Os at 2.1/5.7/9.2/12.7/16.7M rects):
   H 0.2/0.6/0.9/1.3/1.7, PR 0.6/1.5/2.4/3.3/4.4,
   TGS 1.8/6.2/11.0/15.2/21.1. *)
let fig10 ~scale ~seed =
  section "Figure 10: bulk-loading I/Os vs dataset size (Eastern slices)";
  degraded_banner ();
  let subsets = Tiger.eastern_subsets ~scale ~seed in
  let header =
    "variant"
    :: (Array.to_list subsets |> List.map (fun s -> commas (Array.length s) ^ " rects"))
  in
  let rows =
    List.map
      (fun v ->
        name v
        :: (Array.to_list subsets
           |> List.map (fun entries ->
                  let c = measure_build v ~scale entries in
                  Bench_json.(
                    row
                      [
                        ("variant", str (name v));
                        ("n", int (Array.length entries));
                        ("ios", int c.ios);
                        ("seconds", flt c.seconds);
                      ]);
                  commas c.ios)))
      paper_variants
  in
  Table.print ~header rows;
  note "paper shape: H and PR grow linearly; TGS grows slightly superlinearly,";
  note "  at roughly 3x PR's I/Os on the smallest slice and ~5x on the largest."

(* Figure 11: TGS bulk-loading time across data distributions.
   Paper (seconds, 10M rects): SIZE 0.2%..20%: 3726 3929 4552 5837 8952
   12111 14024; ASPECT 10..10^5: 4613 13196 12738 14034 8283. The
   point: TGS construction cost is strongly distribution-dependent while
   H/H4/PR are not. *)
let fig11 ~scale ~seed =
  section "Figure 11: TGS bulk-loading cost across distributions";
  degraded_banner ();
  let n = int_of_float (100_000.0 *. scale) in
  let size_params = [ 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2 ] in
  let aspect_params = [ 10.0; 100.0; 1_000.0; 10_000.0; 100_000.0 ] in
  let datasets =
    List.map
      (fun s -> (Printf.sprintf "SIZE(%g)" s, Datasets.size ~n ~max_side:s ~seed))
      size_params
    @ List.map
        (fun a -> (Printf.sprintf "ASPECT(%g)" a, Datasets.aspect ~n ~a ~seed:(seed + 1)))
        aspect_params
  in
  let rows =
    List.map
      (fun (dname, entries) ->
        let tgs = measure_build TGS ~scale entries in
        let pr = measure_build PR ~scale entries in
        List.iter
          (fun (v, c) ->
            Bench_json.(
              row
                [
                  ("dataset", str dname);
                  ("variant", str (name v));
                  ("ios", int c.ios);
                  ("seconds", flt c.seconds);
                ]))
          [ (TGS, tgs); (PR, pr) ];
        [
          dname;
          commas tgs.ios;
          f2 tgs.seconds;
          commas pr.ios;
          f2 pr.seconds;
          f2 (float_of_int tgs.ios /. float_of_int pr.ios);
        ])
      datasets
  in
  Table.print
    ~header:[ "dataset"; "TGS I/Os"; "TGS s"; "PR I/Os"; "PR s"; "TGS/PR I/O ratio" ]
    rows;
  note "paper shape: TGS cost varies up to ~4x across distributions (4.6-16.4x";
  note "  PR's I/Os); PR's cost is essentially distribution-independent."

(* Checksum overhead: format v2 stamps a CRC-32C trailer into every
   page write and verifies it on every file-backend read.  This is not
   a paper figure; it guards the robustness PR's budget — the trailer
   must stay well under 10% of in-memory bulk-load time.  The CRC share
   is measured directly: time [Page.crc32c] over exactly as many pages
   as the build wrote (resp. the scan read) and compare. *)
let checksum ~scale ~seed =
  section "Page integrity trailer: CRC-32C overhead";
  let module Page = Prt_storage.Page in
  let module Index_file = Prt_rtree.Index_file in
  let n = max 10_000 (int_of_float (167_000.0 *. scale)) in
  let entries = Datasets.uniform_points ~n ~seed in
  let crc_seconds pages =
    let sample = Page.create page_size in
    Page.set_f64 sample 8 3.25;
    Page.stamp sample ~lsn:1;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to pages do
      ignore (Page.crc32c sample ~pos:0 ~len:(page_size - 4))
    done;
    Unix.gettimeofday () -. t0
  in
  (* In-memory bulk load: stamping is the only trailer cost (the memory
     backend does not verify reads). *)
  let pool = fresh_pool () in
  let pager = Buffer_pool.pager pool in
  let t0 = Unix.gettimeofday () in
  let tree = build_mem PR pool entries in
  Buffer_pool.flush pool;
  let build_s = Unix.gettimeofday () -. t0 in
  let writes = (Pager.snapshot pager).Pager.s_writes in
  let crc_build_s = crc_seconds writes in
  ignore (Rtree.count tree);
  (* File-backed build + cold full scan: every page read back is
     checksum-verified. *)
  let path = Filename.temp_file "prt_bench_crc" ".idx" in
  let scan_s, reads =
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let idx =
          Index_file.create ~page_size path ~build:(fun pool ->
              Prt_prtree.Prtree.load pool entries)
        in
        Index_file.close idx;
        let idx = Index_file.open_ ~page_size path in
        let pager = Index_file.pager idx in
        let before = Pager.snapshot pager in
        let t0 = Unix.gettimeofday () in
        ignore (Rtree.validate (Index_file.tree idx));
        let s = Unix.gettimeofday () -. t0 in
        let d = Pager.diff ~before ~after:(Pager.snapshot pager) in
        Index_file.close idx;
        (s, d.Pager.s_reads))
  in
  let crc_scan_s = crc_seconds reads in
  let share part whole = 100.0 *. part /. whole in
  Bench_json.(
    row
      [
        ("kind", str "mem-build");
        ("n", int n);
        ("pages", int writes);
        ("seconds", flt build_s);
        ("crc_seconds", flt crc_build_s);
        ("crc_pct", flt (share crc_build_s build_s));
      ]);
  Bench_json.(
    row
      [
        ("kind", str "file-scan");
        ("n", int n);
        ("pages", int reads);
        ("seconds", flt scan_s);
        ("crc_seconds", flt crc_scan_s);
        ("crc_pct", flt (share crc_scan_s scan_s));
      ]);
  let pct_s p = Printf.sprintf "%.1f%%" p in
  Table.print
    ~header:[ "phase"; "pages"; "seconds"; "CRC seconds"; "CRC share" ]
    [
      [
        "in-memory PR build";
        commas writes;
        f2 build_s;
        f2 crc_build_s;
        pct_s (share crc_build_s build_s);
      ];
      [ "file cold scan"; commas reads; f2 scan_s; f2 crc_scan_s; pct_s (share crc_scan_s scan_s) ];
    ];
  note "budget: the trailer must stay under 10%% of in-memory bulk-load time.";
  if share crc_build_s build_s >= 10.0 then
    note "WARNING: CRC share of the build exceeded the 10%% budget!"
