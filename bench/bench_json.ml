(* Machine-readable results alongside the ASCII tables: each experiment
   run writes BENCH_<name>.json — one row object per measured point
   (variant x dataset x metrics) — so plots and regression checks can be
   scripted without scraping table output.  Files land in the current
   directory unless PRT_BENCH_DIR points elsewhere. *)

module Json = Prt_obs.Json

let current : (string * Json.t list ref) option ref = ref None

let dir () = Option.value (Sys.getenv_opt "PRT_BENCH_DIR") ~default:"."

let start exp = current := Some (exp, ref [])

(* Record one measured point. A no-op outside [start]/[finish], so the
   experiment code can emit unconditionally. *)
let row fields =
  match !current with
  | Some (_, rows) -> rows := Json.Obj fields :: !rows
  | None -> ()

let str s = Json.Str s
let int i = Json.Int i
let flt f = Json.Float f

let finish () =
  match !current with
  | None -> ()
  | Some (exp, rows) ->
      current := None;
      let path = Filename.concat (dir ()) ("BENCH_" ^ exp ^ ".json") in
      Json.to_file path
        (Json.Obj [ ("experiment", Json.Str exp); ("rows", Json.List (List.rev !rows)) ]);
      Printf.printf "   [wrote %s: %d rows]\n%!" path (List.length !rows)
