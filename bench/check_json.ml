(* Smoke verifier for the bench emitters (the @bench-smoke alias): each
   argument must be a well-formed JSON file.  A Chrome trace file (an
   object with "traceEvents") must have globally monotone timestamps
   (the writer merges tracks with a stable sort), B/E span events that
   balance *per track* (tid) — flight-recorder tracks interleave with
   the trace sink's — and "X" complete events with a non-negative dur;
   a BENCH_*.json must carry a non-empty "rows" array of objects.
   Exits 1 with a message on any violation, so the dune rule fails
   loudly. *)

module Json = Prt_obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let get name o = match Json.member name o with Some v -> v | None -> Json.Null

let check_trace path j =
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.List l) -> l
    | _ -> fail "%s: no traceEvents array" path
  in
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let last_ts = ref neg_infinity in
  List.iter
    (fun e ->
      let name = match get "name" e with Json.Str s -> s | _ -> fail "%s: unnamed event" path in
      let ts =
        match Json.to_number (get "ts" e) with
        | Some t -> t
        | None -> fail "%s: event %s has no numeric ts" path name
      in
      if ts < !last_ts then fail "%s: timestamps not monotone at %s" path name;
      last_ts := ts;
      let tid =
        match Json.to_number (get "tid" e) with Some t -> int_of_float t | None -> 0
      in
      let stack = Option.value (Hashtbl.find_opt stacks tid) ~default:[] in
      match get "ph" e with
      | Json.Str "B" -> Hashtbl.replace stacks tid (name :: stack)
      | Json.Str "E" -> (
          match stack with
          | top :: rest when top = name -> Hashtbl.replace stacks tid rest
          | top :: _ -> fail "%s: tid %d: E %s closes B %s" path tid name top
          | [] -> fail "%s: tid %d: E %s without matching B" path tid name)
      | Json.Str "X" -> (
          match Json.to_number (get "dur" e) with
          | Some d when d >= 0. -> ()
          | Some _ -> fail "%s: X %s has negative dur" path name
          | None -> fail "%s: X %s has no numeric dur" path name)
      | Json.Str "i" -> ()
      | _ -> fail "%s: event %s has bad ph" path name)
    events;
  Hashtbl.iter
    (fun tid stack ->
      match stack with [] -> () | top :: _ -> fail "%s: tid %d: unclosed span %s" path tid top)
    stacks;
  Printf.printf "%s: %d events, spans balanced\n" path (List.length events)

(* Serving-tier rows carry a fixed shape: mode/workload labels, the
   client-shape ints, and internally consistent counters (a request is
   answered, retried away, or rejected — never lost; percentiles are
   ordered and only present with successes). *)
let check_serve_row path row =
  let str name =
    match Json.member name row with
    | Some (Json.Str s) -> s
    | _ -> fail "%s: serve row missing string field %S" path name
  in
  let num name =
    match Option.bind (Json.member name row) Json.to_number with
    | Some v -> v
    | None -> fail "%s: serve row missing numeric field %S" path name
  in
  let mode = str "mode" in
  ignore (str "workload");
  if not (List.mem mode [ "qps"; "quota"; "overload" ]) then
    fail "%s: serve row has unknown mode %S" path mode;
  List.iter
    (fun f -> if num f < 0.0 then fail "%s: serve row has negative %S" path f)
    [
      "concurrency"; "batch"; "entries"; "queries"; "sent"; "ok"; "matched"; "shed";
      "quota_rejected"; "retries"; "gave_up"; "p50_us"; "p99_us"; "qps"; "seconds";
    ];
  if num "concurrency" < 1.0 || num "batch" < 1.0 then
    fail "%s: serve row has empty client shape" path;
  if num "ok" +. num "gave_up" > num "sent" then
    fail "%s: serve row loses requests: ok + gave_up > sent" path;
  if num "p50_us" > num "p99_us" then fail "%s: serve row has p50 > p99" path;
  if num "ok" = 0.0 && num "qps" > 0.0 then fail "%s: serve row has qps without successes" path

(* LSM-ingestion rows come in three phases with a shared core: counts
   never negative, the recovered entry count always equal to the
   dataset size (losing an acknowledged insert is the failure mode the
   subsystem exists to rule out), write amplification at least 1 (the
   WAL alone writes every acked byte), and a clean shutdown replaying
   into zero reclaimed orphans. *)
let check_ingest_row path row =
  let str name =
    match Json.member name row with
    | Some (Json.Str s) -> s
    | _ -> fail "%s: ingest row missing string field %S" path name
  in
  let num name =
    match Option.bind (Json.member name row) Json.to_number with
    | Some v -> v
    | None -> fail "%s: ingest row missing numeric field %S" path name
  in
  let phase = str "phase" in
  List.iter
    (fun f -> if num f < 0.0 then fail "%s: ingest row has negative %S" path f)
    [ "n"; "buffer"; "seconds"; "entries" ];
  if num "entries" <> num "n" then
    fail "%s: ingest %s row lost entries: %g of %g" path phase (num "entries") (num "n");
  match phase with
  | "ingest" ->
      if not (List.mem (str "sync") [ "always"; "never" ]) then
        fail "%s: ingest row has unknown sync mode %S" path (str "sync");
      if num "write_amp" < 1.0 then
        fail "%s: ingest row has write_amp < 1 (%g)" path (num "write_amp");
      if num "merges" < 1.0 || num "components" < 1.0 then
        fail "%s: ingest row shows no merge activity" path
  | "concurrent" ->
      if num "readers" < 1.0 then fail "%s: concurrent row has no readers" path;
      if num "reader_queries" < 1.0 then
        fail "%s: concurrent row completed no queries" path
  | "replay" ->
      if num "orphans" <> 0.0 then
        fail "%s: replay row reclaimed %g orphans after a clean shutdown" path
          (num "orphans");
      if num "replayed" < 0.0 || num "components" < 1.0 then
        fail "%s: replay row malformed" path
  | p -> fail "%s: ingest row has unknown phase %S" path p

let check_bench path j =
  let experiment = match Json.member "experiment" j with Some (Json.Str s) -> s | _ -> "" in
  match Json.member "rows" j with
  | Some (Json.List rows) ->
      if rows = [] then fail "%s: empty rows" path;
      List.iter
        (function
          | Json.Obj _ as row ->
              if experiment = "serve" then check_serve_row path row
              else if experiment = "ingest" then check_ingest_row path row
          | _ -> fail "%s: non-object row" path)
        rows;
      Printf.printf "%s: %d rows%s\n" path (List.length rows)
        (match experiment with
        | "serve" -> " (serve shape ok)"
        | "ingest" -> " (ingest shape ok)"
        | _ -> "")
  | _ -> fail "%s: no rows array" path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then fail "usage: check_json FILE.json ...";
  List.iter
    (fun path ->
      let j = try Json.of_file path with Json.Parse_error m -> fail "%s: %s" path m in
      match Json.member "traceEvents" j with
      | Some _ -> check_trace path j
      | None -> check_bench path j)
    args
