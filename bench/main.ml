(* The experiment harness: one subcommand per table/figure of the paper
   (see DESIGN.md's experiment index), plus the extension experiments
   and bechamel micro-benchmarks. `all` runs everything in paper
   order. *)

open Cmdliner
module Trace = Prt_obs.Trace

(* PRT_TRACE=out.json records every span of the run (builds, sorts,
   merges, query batches) into a Chrome trace-event file loadable in
   Perfetto / about:tracing, plus a span summary table on stdout. *)
let trace_out = Sys.getenv_opt "PRT_TRACE"

(* Each experiment runs inside its own span and JSON row collector, so a
   traced `all` run decomposes cleanly per figure. *)
let instrumented name f ~scale ~seed =
  Bench_json.start name;
  Fun.protect ~finally:Bench_json.finish (fun () ->
      Trace.with_span ("exp." ^ name) (fun () -> f ~scale ~seed))

let span_report () =
  let stats = Trace.summary (Trace.events ()) in
  if stats <> [] then begin
    Printf.printf "\n== span summary ==\n";
    let rows =
      List.map
        (fun s ->
          [
            s.Trace.span_name;
            string_of_int s.Trace.calls;
            Printf.sprintf "%.1f" (s.Trace.total_us /. 1000.0);
            String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) s.Trace.io);
          ])
        stats
    in
    Prt_util.Table.print ~header:[ "span"; "calls"; "total ms"; "I/O deltas" ] rows
  end

let scale_arg =
  let doc =
    "Dataset scale relative to the default 1:100 of the paper (1.0 means e.g. 167K rectangles \
     for Eastern; the paper used 16.7M). The memory budget of the external algorithms scales \
     along."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let seed_arg =
  let doc = "Base random seed (all workloads are deterministic in it)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let experiments =
  [
    ("fig9", "Bulk-loading I/Os and seconds on TIGER-like data (Figure 9)", Exp_build.fig9);
    ("fig10", "Bulk-loading I/Os vs dataset size (Figure 10)", Exp_build.fig10);
    ("fig11", "TGS bulk-loading cost across distributions (Figure 11)", Exp_build.fig11);
    ("build", "Page-trailer (CRC-32C) overhead on bulk loads", Exp_build.checksum);
    ("fig12", "Query cost vs query size, Western (Figure 12)", Exp_query.fig12);
    ("fig13", "Query cost vs query size, Eastern (Figure 13)", Exp_query.fig13);
    ("fig14", "Query cost vs dataset size (Figure 14)", Exp_query.fig14);
    ("fig15", "Query cost on SIZE/ASPECT/SKEWED (Figure 15)", Exp_query.fig15);
    ("table1", "Query cost on CLUSTER (Table 1)", Exp_extreme.table1);
    ("thm3", "Zero-output worst-case query (Theorem 3)", Exp_extreme.thm3);
    ("bound", "PR-tree O(sqrt(N/B)) query bound check (Lemma 2)", Exp_extreme.bound);
    ("nd", "3-D PR-tree query bound check (Theorem 2)", Exp_nd.nd);
    ("logm", "Logarithmic-method dynamization (Section 4)", Exp_dynamic.logm);
    ("degrade", "Query degradation under heuristic updates", Exp_dynamic.degrade);
    ("join", "Spatial join across index variants", Exp_ablate.join);
    ("ablate", "Ablations: priority-leaf size, memory, cache, Hilbert order", Exp_ablate.ablate);
    ( "throughput",
      "Batched multicore query throughput: QPS, speedup, scaling efficiency",
      Exp_throughput.throughput );
    ( "resilience",
      "Degraded-query coverage and deadline cutoffs on an unreliable disk",
      Exp_query.resilience );
    ( "mvcc",
      "Snapshot-read throughput during commits vs quiesced (writers never block readers)",
      Exp_mvcc.mvcc );
    ( "serve",
      "Network serving tier: QPS vs client concurrency, quota and overload shedding",
      Exp_serve.serve );
    ( "ingest",
      "Crash-safe LSM ingestion: insert rate, write amplification, WAL replay",
      Exp_ingest.ingest );
    ("micro", "Bechamel wall-clock micro-benchmarks", Micro.run);
  ]

let run_named name f =
  let run scale seed =
    instrumented name f ~scale ~seed;
    ()
  in
  let term = Term.(const run $ scale_arg $ seed_arg) in
  Cmd.v (Cmd.info name ~doc:(List.assoc name (List.map (fun (n, d, _) -> (n, d)) experiments))) term

let all_cmd =
  let doc = "Run every experiment in paper order." in
  let term =
    Term.(
      const (fun scale seed ->
          List.iter (fun (n, _, f) -> instrumented n f ~scale ~seed) experiments)
      $ scale_arg $ seed_arg)
  in
  Cmd.v (Cmd.info "all" ~doc) term

let () =
  let doc = "PR-tree reproduction experiment harness (Arge et al., SIGMOD 2004)" in
  let info = Cmd.info "prt-bench" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let cmds = all_cmd :: List.map (fun (n, _, f) -> run_named n f) experiments in
  let root =
    match trace_out with
    | None -> None
    | Some _ ->
        Trace.install (Trace.memory_sink ~capacity:(1 lsl 20) ());
        Some (Trace.span_begin "bench")
  in
  let code = Cmd.eval (Cmd.group ~default info cmds) in
  (match (trace_out, root) with
  | Some path, Some root ->
      Trace.span_end root;
      span_report ();
      let n = Trace.write_chrome path in
      Printf.printf "\nwrote %d trace events to %s\n" n path;
      Trace.uninstall ()
  | _ -> ());
  exit code
