(* Dynamic-index experiments beyond the paper's tables: the Section 4
   discussion turned into measurements.

   [logm]: the logarithmic-method PR-tree vs Guttman updates vs full
   rebuild — update throughput and the query cost each strategy ends up
   with.

   [degrade]: what the paper warns about — bulk-loaded optimality is
   lost under heuristic updates — quantified per split algorithm. *)

module Table = Prt_util.Table
module Rect = Prt_geom.Rect
module Rtree = Prt_rtree.Rtree
module Entry = Prt_rtree.Entry
module Dynamic = Prt_rtree.Dynamic
module Split = Prt_rtree.Split
module Logmethod = Prt_logmethod.Logmethod
module Datasets = Prt_workloads.Datasets
module Queries = Prt_workloads.Queries
module Tiger = Prt_workloads.Tiger

open Common

let query_cost_of_logmethod t queries =
  let leaves = ref 0 and matched = ref 0 in
  Array.iter
    (fun q ->
      let s = Logmethod.query t q ~f:(fun _ -> ()) in
      leaves := !leaves + s.Logmethod.leaf_visited;
      matched := !matched + s.Logmethod.matched)
    queries;
  let n = float_of_int (Array.length queries) in
  let mean_leaves = float_of_int !leaves /. n in
  let ideal = float_of_int !matched /. n /. float_of_int capacity in
  (mean_leaves, if ideal > 0.0 then mean_leaves /. ideal else Float.nan)

(* A pool whose cache is small enough that update traffic actually
   reaches the pager — otherwise the 4096-page cache absorbs every
   write and "update I/Os" reads as zero. *)
let churn_pool () =
  Prt_storage.Buffer_pool.create ~capacity:64 (Prt_storage.Pager.create_memory ~page_size ())

let logm ~scale ~seed =
  section "Logarithmic method: dynamized PR-tree vs alternatives";
  let n = int_of_float (50_000.0 *. scale) in
  (* Skewed data: the regime where bulk-loaded structure matters most
     (Figure 15 right). *)
  let c = 7 in
  let base = Datasets.skewed ~n ~c ~seed in
  let stream =
    Array.map
      (fun e -> Entry.make (Entry.rect e) (Entry.id e + n))
      (Datasets.skewed ~n ~c ~seed:(seed + 1))
  in
  let queries = Queries.skewed_squares ~count:100 ~area_fraction:0.01 ~c ~seed:(seed + 2) in
  note "base %s SKEWED(%d) points, then %s inserts one by one; 100 skewed 1%% queries"
    (commas n) c (commas n);
  let measure_updates pool f =
    let pager = Prt_storage.Buffer_pool.pager pool in
    let before = Prt_storage.Pager.snapshot pager in
    let t0 = Unix.gettimeofday () in
    let result = f () in
    Prt_storage.Buffer_pool.flush pool;
    let secs = Unix.gettimeofday () -. t0 in
    let ios =
      Prt_storage.Pager.total_io
        (Prt_storage.Pager.diff ~before ~after:(Prt_storage.Pager.snapshot pager))
    in
    (result, secs, ios)
  in
  (* Strategy 1: logarithmic method. *)
  let pool = churn_pool () in
  let lm = Logmethod.of_entries pool base in
  let (), lm_secs, lm_ios =
    measure_updates pool (fun () ->
        Array.iter (Logmethod.insert lm) stream;
        Logmethod.flush_buffer lm)
  in
  let lm_leaves, lm_rel = query_cost_of_logmethod lm queries in
  (* Strategy 2: Guttman updates on a bulk-loaded PR-tree. *)
  let pool = churn_pool () in
  let tree = Prt_prtree.Prtree.load pool base in
  let (), gut_secs, gut_ios =
    measure_updates pool (fun () -> Array.iter (Dynamic.insert tree) stream)
  in
  let gut = measure_queries tree queries in
  (* Strategy 3: one full PR-tree rebuild after all inserts arrived (the
     query-cost gold standard; per-update it would cost a full rebuild
     each time). *)
  let pool = churn_pool () in
  let (tree, rebuild_secs, rebuild_ios) =
    measure_updates pool (fun () -> Prt_prtree.Prtree.load pool (Array.append base stream))
  in
  let rebuilt = measure_queries tree queries in
  Table.print
    ~header:[ "strategy"; "update time s"; "update I/Os"; "query leaves"; "query cost" ]
    [
      [ "logarithmic method"; f2 lm_secs; commas lm_ios; f1 lm_leaves; pct lm_rel ];
      [ "Guttman inserts on PR"; f2 gut_secs; commas gut_ios; f1 gut.mean_leaves; pct gut.relative ];
      [ "one final rebuild"; f2 rebuild_secs; commas rebuild_ios; f1 rebuilt.mean_leaves;
        pct rebuilt.relative ];
    ];
  note "the logarithmic method pays a bounded (log #components) query factor over";
  note "  a fresh bulk load and far fewer update I/Os than Guttman inserts, while";
  note "  keeping the per-component worst-case guarantee that Guttman updates void."

let degrade ~scale ~seed =
  section "Update degradation: bulk-loaded PR-tree under heuristic updates";
  let n = int_of_float (50_000.0 *. scale) in
  let entries = Tiger.generate (Tiger.default_params ~n ~seed) in
  let world = Queries.world_of entries in
  let queries = Queries.squares ~count:100 ~area_fraction:0.01 ~world ~seed:(seed + 3) in
  let churn = n * 3 / 10 in
  note "%s TIGER-like rectangles; churn = delete+reinsert %s of them" (commas n) (commas churn);
  let fresh = measure_queries (build_mem PR (fresh_pool ()) entries) queries in
  let rng = Prt_util.Rng.create (seed + 4) in
  let configs =
    [
      ("linear", { Dynamic.default_config with Dynamic.split_algorithm = Split.Linear });
      ("quadratic", Dynamic.default_config);
      ("rstar", { Dynamic.default_config with Dynamic.split_algorithm = Split.Rstar });
      ("rstar+reinsert", Dynamic.rstar_config);
    ]
  in
  let rows =
    List.map
      (fun (alg_name, config) ->
        let pool = fresh_pool () in
        let tree = build_mem PR pool entries in
        for k = 0 to churn - 1 do
          let victim = entries.(Prt_util.Rng.int rng n) in
          if Dynamic.delete ~config tree victim then begin
            (* Reinsert at a nearby location, fresh id. *)
            let r = Entry.rect victim in
            let dx = Prt_util.Rng.float rng 0.01 -. 0.005 in
            let dy = Prt_util.Rng.float rng 0.01 -. 0.005 in
            let moved =
              Rect.of_corners
                (Float.max 0.0 (Rect.xmin r +. dx), Float.max 0.0 (Rect.ymin r +. dy))
                (Float.min 1.0 (Rect.xmax r +. dx), Float.min 1.0 (Rect.ymax r +. dy))
            in
            Dynamic.insert ~config tree (Entry.make moved (n + k))
          end
        done;
        let s = Rtree.validate tree in
        let c = measure_queries tree queries in
        [
          alg_name;
          pct c.relative;
          f1 c.mean_leaves;
          Printf.sprintf "%.0f%%" (100.0 *. s.Rtree.utilization);
        ])
      configs
  in
  (* Reference [16]'s answer to the same problem: a natively dynamic
     Hilbert R-tree (2-to-3 splits), churned identically. Its fanout is
     85 rather than 113 (wider entries), so compare its relative cost,
     not raw leaf counts. *)
  let hrt_row =
    let module Hrt = Prt_rtree.Hilbert_rtree in
    let t = Hrt.create (fresh_pool ()) in
    Array.iter (fun e -> Hrt.insert t (Entry.rect e) (Entry.id e)) entries;
    let rng = Prt_util.Rng.create (seed + 4) in
    for k = 0 to churn - 1 do
      let victim = entries.(Prt_util.Rng.int rng n) in
      if Hrt.delete t (Entry.rect victim) (Entry.id victim) then begin
        let r = Entry.rect victim in
        let dx = Prt_util.Rng.float rng 0.01 -. 0.005 in
        let dy = Prt_util.Rng.float rng 0.01 -. 0.005 in
        let moved =
          Rect.of_corners
            (Float.max 0.0 (Rect.xmin r +. dx), Float.max 0.0 (Rect.ymin r +. dy))
            (Float.min 1.0 (Rect.xmax r +. dx), Float.min 1.0 (Rect.ymax r +. dy))
        in
        Hrt.insert t moved (n + k)
      end
    done;
    Hrt.validate t;
    let leaves = ref 0 and matched = ref 0 in
    Array.iter
      (fun q ->
        let s = Hrt.query t q ~f:(fun _ _ -> ()) in
        leaves := !leaves + s.Hrt.leaf_visited;
        matched := !matched + s.Hrt.matched)
      queries;
    let nq = float_of_int (Array.length queries) in
    let mean_leaves = float_of_int !leaves /. nq in
    let ideal = float_of_int !matched /. nq /. 85.0 in
    [ "hilbert-rtree [16] (B=85)"; pct (mean_leaves /. ideal); f1 mean_leaves; "~66%+" ]
  in
  Table.print
    ~header:[ "split algorithm"; "query cost after churn"; "leaves/query"; "utilization" ]
    ([ [ "(fresh bulk load)"; pct fresh.relative; f1 fresh.mean_leaves; "~100%" ] ]
    @ rows @ [ hrt_row ]);
  note "the paper's caveat quantified: updates erode the bulk-loaded guarantee;";
  note "  the logarithmic method (see `logm`) avoids this. The natively dynamic";
  note "  Hilbert R-tree [16] is the classic update-friendly alternative."
