(* Crash-safe LSM ingestion: sustained insert rate, write
   amplification, and recovery cost of the persistent logarithmic
   method.

   Three phases over a fresh on-disk store (lib/logmethod/lsm.ml):

   - ingest: N entries inserted into an empty directory with inline
     merges, once per WAL sync mode (`Always fsyncs every insert, so
     acknowledged = durable; `Never leaves durability to replay).  The
     deterministic columns — final entry count, component count and
     per-level histogram, merge count, write amplification
     (WAL bytes + component pages written / payload bytes acked) — are
     identical across sync modes and gated against the committed
     baseline; inserts/sec is the wall-clock headline.

   - concurrent: the same ingest with background merges while reader
     domains run window queries the whole time.  Every sampled result
     is checked on the spot: ids in range, no duplicates within a
     result, and an honest Complete label — during merge publication a
     phantom (entry seen in both the sealed buffer and the freshly
     published component) or a dropped entry would trip it.

   - replay: the `Never store is closed with its tail still buffered
     (durable only in the WAL), then reopened.  The replayed-record
     count, reclaimed-orphan count (zero: clean shutdown leaves no
     debris) and recovered entry count gate exactly. *)

module Rect = Prt_geom.Rect
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Lsm = Prt_logmethod.Lsm
module Datasets = Prt_workloads.Datasets
module Queries = Prt_workloads.Queries
module Table = Prt_util.Table

let readers = 2

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error _ -> ()

let with_temp_dir f =
  let dir = Filename.temp_file "prt_bench_ingest" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let levels_label st =
  match st.Lsm.s_components with
  | [] -> "-"
  | comps ->
      String.concat ","
        (List.map (fun (lvl, n, _) -> Printf.sprintf "%d:%d" lvl n) comps)

let write_amp st =
  float_of_int st.Lsm.s_bytes_written /. float_of_int (max 1 st.Lsm.s_bytes_acked)

let ingest ~scale ~seed =
  let n = max 2_000 (int_of_float (50_000.0 *. scale)) in
  let buffer = max 256 (n / 16) in
  Printf.printf "== ingest: LSM insert rate, write amplification, replay (%d entries) ==\n%!" n;
  let entries = Datasets.uniform_points ~n ~seed in
  let world = Queries.world_of entries in
  let windows = Queries.squares ~count:64 ~area_fraction:0.01 ~world ~seed:(seed + 1) in
  let rows = ref [] in
  let tab fields = rows := fields :: !rows in

  (* -- phase 1: solo ingest, one row per WAL sync mode -- *)
  let solo ~sync dir =
    let label = match sync with `Always -> "always" | `Never -> "never" in
    let t =
      Lsm.create ~buffer_capacity:buffer ~page_size:Common.page_size
        ~wal_sync:sync dir
    in
    let t0 = Unix.gettimeofday () in
    Array.iter (Lsm.insert t) entries;
    let seconds = Unix.gettimeofday () -. t0 in
    let st = Lsm.stats t in
    let rate = float_of_int n /. seconds in
    let count = Lsm.count t in
    if count <> n then
      failwith (Printf.sprintf "ingest bench: %d of %d entries live" count n);
    Bench_json.(
      row
        [
          ("phase", str "ingest");
          ("sync", str label);
          ("n", int n);
          ("buffer", int buffer);
          ("levels", str (levels_label st));
          ("seconds", flt seconds);
          ("inserts_per_sec", flt rate);
          ("entries", int count);
          ("components", int (List.length st.Lsm.s_components));
          ("merges", int st.Lsm.s_merges);
          ("write_amp", flt (write_amp st));
          ("wal_mb", flt (float_of_int st.Lsm.s_wal_bytes /. 1048576.));
        ]);
    tab
      [
        "ingest/" ^ label;
        Printf.sprintf "%.0f" rate;
        string_of_int (List.length st.Lsm.s_components);
        string_of_int st.Lsm.s_merges;
        Printf.sprintf "%.2f" (write_amp st);
        levels_label st;
      ];
    t
  in
  with_temp_dir (fun dir -> Lsm.close (solo ~sync:`Always dir));

  with_temp_dir @@ fun dir ->
  let t = solo ~sync:`Never dir in

  (* -- phase 3 setup rides on phase 1's `Never store: close with the
     tail of the workload still buffered, reopen, and measure what
     recovery replays. -- *)
  Lsm.close t;
  let t0 = Unix.gettimeofday () in
  let t = Lsm.open_ ~buffer_capacity:buffer ~page_size:Common.page_size dir in
  let seconds = Unix.gettimeofday () -. t0 in
  let st = Lsm.stats t in
  let count = Lsm.count t in
  if count <> n then
    failwith (Printf.sprintf "ingest bench: replay recovered %d of %d" count n);
  Lsm.validate t;
  Bench_json.(
    row
      [
        ("phase", str "replay");
        ("n", int n);
        ("buffer", int buffer);
        ("levels", str (levels_label st));
        ("seconds", flt seconds);
        ("replayed", int st.Lsm.s_replayed);
        ("orphans", int st.Lsm.s_orphans_reclaimed);
        ("entries", int count);
        ("components", int (List.length st.Lsm.s_components));
      ]);
  tab
    [
      "replay";
      Printf.sprintf "%.4fs" seconds;
      string_of_int (List.length st.Lsm.s_components);
      "-";
      "-";
      Printf.sprintf "%d replayed" st.Lsm.s_replayed;
    ];
  Lsm.close t;

  (* -- phase 2: ingest under concurrent query load (background
     merges, reader domains oracle-checking every result) -- *)
  with_temp_dir @@ fun dir ->
  let t =
    Lsm.create ~buffer_capacity:buffer ~page_size:Common.page_size
      ~wal_sync:`Never ~background:true dir
  in
  let stop = Atomic.make false in
  let reader () =
    let done_ = ref 0 and bad = ref 0 in
    while not (Atomic.get stop) do
      let w = windows.(!done_ mod Array.length windows) in
      let seen = Hashtbl.create 64 in
      let stats =
        Lsm.query t w ~f:(fun e ->
            let id = Entry.id e in
            if id < 0 || id >= n || Hashtbl.mem seen id then incr bad
            else Hashtbl.add seen id ())
      in
      if not (Rtree.complete stats) then incr bad;
      incr done_
    done;
    (!done_, !bad)
  in
  let domains = List.init readers (fun _ -> Domain.spawn reader) in
  let t0 = Unix.gettimeofday () in
  Array.iter (Lsm.insert t) entries;
  Lsm.wait_merges t;
  let seconds = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  let queries, bad =
    List.fold_left
      (fun (q, b) d ->
        let q', b' = Domain.join d in
        (q + q', b + b'))
      (0, 0) domains
  in
  if bad > 0 then
    failwith (Printf.sprintf "ingest bench: %d dishonest concurrent results" bad);
  let count = Lsm.count t in
  if count <> n then
    failwith (Printf.sprintf "ingest bench: %d of %d live after background run" count n);
  let rate = float_of_int n /. seconds in
  let qps = float_of_int queries /. seconds in
  Bench_json.(
    row
      [
        ("phase", str "concurrent");
        ("readers", int readers);
        ("n", int n);
        ("buffer", int buffer);
        ("seconds", flt seconds);
        ("inserts_per_sec", flt rate);
        ("reader_queries", int queries);
        ("reader_qps", flt qps);
        ("entries", int count);
      ]);
  tab
    [
      Printf.sprintf "concurrent/%dr" readers;
      Printf.sprintf "%.0f" rate;
      "-";
      "-";
      "-";
      Printf.sprintf "%.0f reader QPS" qps;
    ];
  Lsm.close t;
  Table.print
    ~header:[ "phase"; "inserts/s"; "comps"; "merges"; "write amp"; "notes" ]
    (List.rev !rows)
