(* Bechamel micro-benchmarks: wall-clock construction and query
   throughput for every variant on a fixed uniform workload.  The
   scientific experiments measure I/Os (robust, the paper's metric);
   this suite adds CPU-time visibility. *)

open Bechamel
open Toolkit

module Rect = Prt_geom.Rect
module Rtree = Prt_rtree.Rtree
module Datasets = Prt_workloads.Datasets
module Queries = Prt_workloads.Queries

let build_tests entries =
  List.map
    (fun v ->
      Test.make
        ~name:("build/" ^ Common.name v)
        (Staged.stage (fun () -> ignore (Common.build_mem v (Common.fresh_pool ()) entries))))
    Common.all_variants
  @ [
      (* Multicore variants (OCaml domains). *)
      Test.make ~name:"build/PR-par"
        (Staged.stage (fun () ->
             ignore
               (Prt_prtree.Prtree.load
                  ~domains:(Prt_util.Parallel.default_domains ())
                  (Common.fresh_pool ()) entries)));
      Test.make ~name:"build/H-par"
        (Staged.stage (fun () ->
             ignore
               (Prt_rtree.Bulk_hilbert.load_h
                  ~domains:(Prt_util.Parallel.default_domains ())
                  (Common.fresh_pool ()) entries)));
    ]

let query_tests entries queries =
  List.map
    (fun v ->
      let tree = Common.build_mem v (Common.fresh_pool ()) entries in
      Test.make
        ~name:("query/" ^ Common.name v)
        (Staged.stage (fun () ->
             Array.iter (fun q -> ignore (Rtree.query_count tree q)) queries)))
    Common.all_variants

let run ~scale ~seed =
  Common.section "Micro-benchmarks (bechamel, wall-clock)";
  let n = max 2_000 (int_of_float (20_000.0 *. scale)) in
  let entries = Datasets.uniform_points ~n ~seed in
  let world = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0 in
  let queries = Queries.squares ~count:20 ~area_fraction:0.001 ~world ~seed:(seed + 1) in
  Common.note "%s uniform points; query batch = 20 x 0.1%% squares" (Common.commas n);
  let tests = build_tests entries @ query_tests entries queries in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance results in
        let per_run =
          Hashtbl.fold
            (fun _name result acc ->
              match Analyze.OLS.estimates result with
              | Some [ est ] -> est :: acc
              | _ -> acc)
            analyzed []
        in
        let label =
          match Test.elements test with
          | [ elt ] -> Test.Elt.name elt
          | _ -> "?"
        in
        let value =
          match per_run with
          | [ ns ] ->
              if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else Printf.sprintf "%.0f ns" ns
          | _ -> "-"
        in
        [ label; value ])
      tests
  in
  Prt_util.Table.print ~header:[ "benchmark"; "time per run" ] rows
