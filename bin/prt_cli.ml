(* prt — command-line tooling around the library: generate datasets,
   bulk-load persistent (file-backed) indexes, query and validate them.

     prt gen --dataset tiger --n 50000 -o roads.dat
     prt build --variant pr -i roads.dat -o roads.idx
     prt query -i roads.idx --window 0.2,0.2,0.3,0.3
     prt validate -i roads.idx
     prt audit -i roads.idx

   Data files are flat pages of 36-byte entry records with a one-page
   header; index files are crash-consistent {!Prt.Index_file} devices:
   pages 0/1 hold a shadow superblock pair carrying the R-tree metadata,
   every page ends in a checksummed trailer, and mutations commit
   atomically (see `prt fsck` for analysis and repair). *)

open Prt
open Cmdliner

(* --- the on-disk dataset format --- *)

let data_magic = 0x50524454 (* "PRDT" *)

let write_data path entries =
  let pager = Pager.create_file path in
  let header_page = Pager.alloc pager in
  let header = Page.create (Pager.page_size pager) in
  Page.set_i32 header 0 data_magic;
  Page.set_i32 header 4 (Array.length entries);
  Pager.write pager header_page header;
  let file = Entry.File.of_array pager entries in
  ignore file;
  Pager.close pager

let read_data path =
  let pager = Pager.open_file path in
  Fun.protect
    ~finally:(fun () -> Pager.close pager)
    (fun () ->
      let header = Pager.read pager 0 in
      if Page.get_i32 header 0 <> data_magic then
        failwith (path ^ ": not a prt dataset file");
      let count = Page.get_i32 header 4 in
      let per_page = Pager.payload_size pager / Entry.size in
      let out = ref [] in
      let remaining = ref count and page = ref 1 in
      while !remaining > 0 do
        let buf = Pager.read pager !page in
        let here = min per_page !remaining in
        for i = 0 to here - 1 do
          out := Entry.read buf (i * Entry.size) :: !out
        done;
        remaining := !remaining - here;
        incr page
      done;
      Array.of_list (List.rev !out))

(* --- dataset generation --- *)

let generate ~dataset ~n ~seed ~param =
  match dataset with
  | "uniform" -> Datasets.uniform_points ~n ~seed
  | "tiger" -> Tiger.generate (Tiger.default_params ~n ~seed)
  | "size" -> Datasets.size ~n ~max_side:(Option.value param ~default:0.01) ~seed
  | "aspect" -> Datasets.aspect ~n ~a:(Option.value param ~default:10.0) ~seed
  | "skewed" ->
      Datasets.skewed ~n ~c:(int_of_float (Option.value param ~default:5.0)) ~seed
  | "cluster" ->
      let clusters = max 1 (int_of_float (sqrt (float_of_int n))) in
      Datasets.cluster ~n_clusters:clusters ~per_cluster:(max 1 (n / clusters)) ~seed
  | other -> failwith ("unknown dataset kind: " ^ other)

(* --- index files --- *)

let variant_loaders =
  [
    ("pr", fun pool entries -> Prtree.load pool entries);
    ("h", fun pool entries -> Bulk.Hilbert.load_h pool entries);
    ("h4", fun pool entries -> Bulk.Hilbert.load_h4 pool entries);
    ("tgs", Bulk.Tgs.load);
    ("str", Bulk.Str.load);
  ]

let build_index ~variant ~input ~output ~shadow =
  let load =
    match List.assoc_opt variant variant_loaders with
    | Some f -> f
    | None -> failwith ("unknown variant: " ^ variant ^ " (pr|h|h4|tgs|str)")
  in
  let entries = read_data input in
  let t0 = Unix.gettimeofday () in
  let idx = Index_file.create ~shadow output ~build:(fun pool -> load pool entries) in
  let tree = Index_file.tree idx in
  Printf.printf "built %s index over %d rectangles in %.2fs: height %d, %d pages%s\n" variant
    (Rtree.count tree) (Unix.gettimeofday () -. t0) (Rtree.height tree)
    (Pager.num_pages (Index_file.pager idx))
    (if shadow then Printf.sprintf " (%d shadow)" (List.length (Index_file.shadow_pages idx))
     else "");
  Index_file.close idx

(* Report what superblock/journal recovery did on open (silent when the
   previous shutdown was clean). *)
let report_recovery r =
  if r.Superblock.rec_journal_pages > 0 then
    Printf.eprintf "recovery: rolled back %d journaled page(s)\n" r.Superblock.rec_journal_pages;
  if r.Superblock.rec_truncated_pages > 0 then
    Printf.eprintf "recovery: truncated %d uncommitted page(s)\n" r.Superblock.rec_truncated_pages;
  if r.Superblock.rec_slot_repaired then
    Printf.eprintf "recovery: repaired damaged superblock slot\n"

let with_index ?backend path f =
  let idx = Index_file.open_ ?backend path in
  report_recovery (Index_file.recovery idx);
  Fun.protect ~finally:(fun () -> Index_file.close idx) (fun () -> f idx)

(* Read-backend selector shared by the serving commands.  [auto] maps
   the file when the platform allows and falls back to pread. *)
let backend_arg =
  Arg.(
    value
    & opt (enum [ ("auto", `Auto); ("mmap", `Mmap); ("pread", `Pread) ]) `Auto
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Read backend: $(b,mmap) scans node pages directly in a shared file mapping (no \
           syscall, no lock, no copy), $(b,pread) reads through the buffer pool, $(b,auto) \
           (default) picks mmap when the platform grants a mapping.")

(* --- commands --- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let gen_cmd =
  let dataset =
    Arg.(
      value
      & opt string "uniform"
      & info [ "dataset"; "d" ] ~docv:"KIND"
          ~doc:"Dataset kind: uniform, tiger, size, aspect, skewed, cluster.")
  in
  let n = Arg.(value & opt int 100_000 & info [ "n" ] ~docv:"N" ~doc:"Number of rectangles.") in
  let param =
    Arg.(
      value
      & opt (some float) None
      & info [ "param"; "p" ] ~docv:"P"
          ~doc:"Family parameter: max_side for size, a for aspect, c for skewed.")
  in
  let output =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let run dataset n param seed output =
    let entries = generate ~dataset ~n ~seed ~param in
    write_data output entries;
    Printf.printf "wrote %d rectangles to %s\n" (Array.length entries) output
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a dataset file.")
    Term.(const run $ dataset $ n $ param $ seed_arg $ output)

let build_cmd =
  let variant =
    Arg.(
      value & opt string "pr"
      & info [ "variant"; "v" ] ~docv:"VARIANT" ~doc:"Index variant: pr, h, h4, tgs, str.")
  in
  let input =
    Arg.(required & opt (some string) None & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Dataset file.")
  in
  let output =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Index file.")
  in
  let shadow =
    Arg.(
      value & flag
      & info [ "shadow" ]
          ~doc:
            "Also write post-image shadow copies of every committed page: the repair source for \
             $(b,prt scrub --online), at the cost of roughly doubled file size.")
  in
  let run variant input output shadow = build_index ~variant ~input ~output ~shadow in
  Cmd.v
    (Cmd.info "build" ~doc:"Bulk-load a persistent index from a dataset file.")
    Term.(const run $ variant $ input $ output $ shadow)

let window_conv =
  let parse s =
    match String.split_on_char ',' s |> List.map float_of_string_opt with
    | [ Some x0; Some y0; Some x1; Some y1 ] -> Ok (Rect.of_corners (x0, y0) (x1, y1))
    | _ -> Error (`Msg "expected x0,y0,x1,y1")
  in
  let print ppf r =
    Format.fprintf ppf "%g,%g,%g,%g" (Rect.xmin r) (Rect.ymin r) (Rect.xmax r) (Rect.ymax r)
  in
  Arg.conv (parse, print)

let query_cmd =
  let index =
    Arg.(required & opt (some string) None & info [ "i"; "index" ] ~docv:"FILE" ~doc:"Index file.")
  in
  let window =
    Arg.(
      required
      & opt (some window_conv) None
      & info [ "window"; "w" ] ~docv:"X0,Y0,X1,Y1" ~doc:"Query window corners.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Print only the count and I/O statistics.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run the query through the batched multicore executor on N domains (identical \
             results; exercises the sharded node cache).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Time budget for the query: expiry is checked at every node visit and the results \
             matched before the cutoff are returned, labelled $(b,timed out).")
  in
  let run index window quiet jobs deadline_ms backend =
    with_index ~backend index (fun idx ->
        let tree = Index_file.tree idx in
        let deadline = Option.map Deadline.after_ms deadline_ms in
        (* Resilient path: device damage degrades the affected subtrees
           (quarantining their pages) instead of aborting, and the
           status line below says whether anything was skipped. *)
        let hits, stats =
          (* The span is what PRT_TRACE exports: under collection its
             end event carries the counter deltas (pager I/O, node
             visits), so one query's footprint reads off the dump. *)
          Obs.Trace.with_span "query"
            ~args:Obs.Trace.[ ("jobs", Int (Option.value jobs ~default:1)) ]
            (fun () ->
              match jobs with
              | None ->
                  Rtree.query_list ~quarantine:(Index_file.quarantine idx) ?deadline tree window
              | Some j ->
                  (Qexec.run ~jobs:j ?deadline (Index_file.executor idx) [| window |]).(0))
        in
        if not quiet then
          List.iter
            (fun e ->
              Printf.printf "%d %g %g %g %g\n" (Entry.id e) (Rect.xmin (Entry.rect e))
                (Rect.ymin (Entry.rect e))
                (Rect.xmax (Entry.rect e))
                (Rect.ymax (Entry.rect e)))
            hits;
        Printf.printf "%d hits; %d leaf and %d internal nodes visited\n" stats.Rtree.matched
          stats.Rtree.leaf_visited stats.Rtree.internal_visited;
        Printf.printf "status: %s\n"
          (Format.asprintf "%a" Rtree.pp_completeness (Rtree.completeness stats));
        if not (Rtree.complete stats) then exit 3)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Run a window query against an index file. Damaged pages degrade the query instead of \
          failing it; any partiality is reported on the status line and through exit code 3.")
    Term.(const run $ index $ window $ quiet $ jobs $ deadline_ms $ backend_arg)

(* Open an index read-write and run the mutation [f] as one atomic
   transaction: a crash mid-operation reopens to the pre-op tree. *)
let with_index_rw path f =
  with_index path (fun idx -> Index_file.update idx f)

let insert_cmd =
  let index =
    Arg.(required & opt (some string) None & info [ "i"; "index" ] ~docv:"FILE" ~doc:"Index file.")
  in
  let window =
    Arg.(
      required
      & opt (some window_conv) None
      & info [ "rect"; "r" ] ~docv:"X0,Y0,X1,Y1" ~doc:"Rectangle to insert.")
  in
  let id = Arg.(required & opt (some int) None & info [ "id" ] ~docv:"ID" ~doc:"Payload id.") in
  let run index rect id =
    with_index_rw index (fun tree ->
        Dynamic.insert tree (Entry.make rect id);
        Printf.printf "inserted #%d; index now holds %d rectangles\n" id (Rtree.count tree))
  in
  Cmd.v
    (Cmd.info "insert" ~doc:"Insert a rectangle into an index file (Guttman insertion).")
    Term.(const run $ index $ window $ id)

let delete_cmd =
  let index =
    Arg.(required & opt (some string) None & info [ "i"; "index" ] ~docv:"FILE" ~doc:"Index file.")
  in
  let window =
    Arg.(
      required
      & opt (some window_conv) None
      & info [ "rect"; "r" ] ~docv:"X0,Y0,X1,Y1" ~doc:"Rectangle to delete.")
  in
  let id = Arg.(required & opt (some int) None & info [ "id" ] ~docv:"ID" ~doc:"Payload id.") in
  let run index rect id =
    with_index_rw index (fun tree ->
        if Dynamic.delete tree (Entry.make rect id) then
          Printf.printf "deleted #%d; index now holds %d rectangles\n" id (Rtree.count tree)
        else Printf.printf "no such entry\n")
  in
  Cmd.v
    (Cmd.info "delete" ~doc:"Delete a rectangle from an index file.")
    Term.(const run $ index $ window $ id)

let compare_cmd =
  let input =
    Arg.(required & opt (some string) None & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Dataset file.")
  in
  let run input =
    let entries = read_data input in
    Printf.printf "%d rectangles; building every variant in memory...\n%!" (Array.length entries);
    let rows =
      List.map
        (fun (vname, load) ->
          let pool = memory_pool () in
          let t0 = Unix.gettimeofday () in
          let tree = load pool entries in
          let secs = Unix.gettimeofday () -. t0 in
          let s = Rtree.validate tree in
          let m = Metrics.analyze tree in
          [
            vname;
            Printf.sprintf "%.2f" secs;
            string_of_int s.Rtree.leaves;
            Printf.sprintf "%.0f%%" (100.0 *. s.Rtree.utilization);
            Printf.sprintf "%.6f" m.Metrics.leaf_overlap;
          ])
        variant_loaders
    in
    Table.print
      ~header:[ "variant"; "build s"; "leaves"; "utilization"; "leaf overlap" ]
      rows
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Build every index variant over a dataset and compare quality.")
    Term.(const run $ input)

let knn_cmd =
  let index =
    Arg.(required & opt (some string) None & info [ "i"; "index" ] ~docv:"FILE" ~doc:"Index file.")
  in
  let point_conv =
    let parse s =
      match String.split_on_char ',' s |> List.map float_of_string_opt with
      | [ Some x; Some y ] -> Ok (x, y)
      | _ -> Error (`Msg "expected x,y")
    in
    Arg.conv (parse, fun ppf (x, y) -> Format.fprintf ppf "%g,%g" x y)
  in
  let point =
    Arg.(
      required & opt (some point_conv) None & info [ "at"; "p" ] ~docv:"X,Y" ~doc:"Query point.")
  in
  let k = Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc:"Number of neighbours.") in
  let run index (x, y) k =
    with_index index (fun idx ->
        let tree = Index_file.tree idx in
        let results, stats = Knn.nearest tree ~x ~y ~k in
        List.iter
          (fun (e, d) ->
            Printf.printf "%d dist=%g %g %g %g %g\n" (Entry.id e) d (Rect.xmin (Entry.rect e))
              (Rect.ymin (Entry.rect e))
              (Rect.xmax (Entry.rect e))
              (Rect.ymax (Entry.rect e)))
          results;
        Printf.printf "%d neighbours; %d nodes read\n" (List.length results) stats.Knn.nodes_read)
  in
  Cmd.v
    (Cmd.info "knn" ~doc:"Find the k nearest rectangles to a point.")
    Term.(const run $ index $ point $ k)

(* --- the LSM ingestion tier --- *)

(* An LSM store is a directory holding a component manifest; the
   file-backed commands below route on this. *)
let is_lsm_dir path =
  Sys.file_exists path && Sys.is_directory path && Manifest.load path <> None

let print_ingest_stats (s : Lsm.stats) =
  Printf.printf "components:%s\n"
    (if s.Lsm.s_components = [] then " none"
     else
       String.concat ""
         (List.map
            (fun (level, n, healthy) ->
              Printf.sprintf " L%d=%d%s" level n (if healthy then "" else "(FAILED)"))
            s.Lsm.s_components));
  Printf.printf "buffer: %d active, %d sealed, %d tombstone(s)\n" s.Lsm.s_buffer
    s.Lsm.s_sealed s.Lsm.s_tombstones;
  Printf.printf "wal: %d byte(s) pending replay across %d segment(s)\n" s.Lsm.s_wal_bytes
    s.Lsm.s_wal_segments;
  Printf.printf "recovery: replayed %d record(s), reclaimed %d orphan(s)\n" s.Lsm.s_replayed
    s.Lsm.s_orphans_reclaimed;
  Printf.printf "last merge: %s\n" s.Lsm.s_last_merge;
  Printf.printf "merges: %d committed, %d aborted\n" s.Lsm.s_merges s.Lsm.s_merge_aborts;
  if s.Lsm.s_bytes_acked > 0 then
    Printf.printf "write amplification: %.2f (%d byte(s) acked -> %d written)\n"
      (float_of_int s.Lsm.s_bytes_written /. float_of_int s.Lsm.s_bytes_acked)
      s.Lsm.s_bytes_acked s.Lsm.s_bytes_written

let lsm_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"LSM store directory.")

let lsm_page_size_arg =
  Arg.(
    value
    & opt int Pager.default_page_size
    & info [ "page-size" ] ~docv:"BYTES" ~doc:"Component page size (must match across opens).")

let ingest_cmd =
  let input =
    Arg.(
      required & opt (some string) None
      & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Dataset file (see $(b,prt gen)).")
  in
  let buffer =
    Arg.(
      value & opt int 8192
      & info [ "buffer" ] ~docv:"N" ~doc:"In-memory buffer capacity (M0 of the logarithmic \
                                          method; only used when creating the store).")
  in
  let wal_sync =
    Arg.(
      value
      & opt (enum [ ("always", `Always); ("never", `Never) ]) `Always
      & info [ "wal-sync" ] ~docv:"MODE"
          ~doc:"fsync the WAL per insert (acknowledged = durable) or never (trade the \
                power-loss window for throughput).")
  in
  let background =
    Arg.(value & flag & info [ "background" ] ~doc:"Run merges on a dedicated domain.")
  in
  let id_base =
    Arg.(
      value & opt int 0
      & info [ "id-base" ] ~docv:"N"
          ~doc:"Offset added to every dataset entry id (ingest the same dataset twice \
                without colliding).")
  in
  let run dir input buffer page_size wal_sync background id_base =
    let entries = read_data input in
    let entries =
      if id_base = 0 then entries
      else Array.map (fun e -> Entry.make (Entry.rect e) (Entry.id e + id_base)) entries
    in
    let t =
      (if is_lsm_dir dir then Lsm.open_ else Lsm.create)
        ~buffer_capacity:buffer ~page_size ~wal_sync ~background dir
    in
    Fun.protect
      ~finally:(fun () -> Lsm.close t)
      (fun () ->
        let t0 = Unix.gettimeofday () in
        Array.iter (Lsm.insert t) entries;
        Lsm.wait_merges t;
        let dt = Unix.gettimeofday () -. t0 in
        Printf.printf "ingested %d entries into %s in %.2fs (%.0f inserts/s)\n"
          (Array.length entries) dir dt
          (float_of_int (Array.length entries) /. dt);
        Printf.printf "store now holds %d live entries\n" (Lsm.count t);
        print_ingest_stats (Lsm.stats t))
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:
         "Stream a dataset into a crash-safe LSM store (a directory of immutable PR-tree \
          components under a CRC'd manifest, WAL-acknowledged inserts, logarithmic-method \
          merges). Creates the store if the directory holds no manifest, resumes it \
          otherwise — replaying the WAL and reclaiming orphans first.")
    Term.(
      const run $ lsm_dir_arg $ input $ buffer $ lsm_page_size_arg $ wal_sync $ background
      $ id_base)

let compact_cmd =
  let buffer =
    Arg.(
      value & opt int 8192
      & info [ "buffer" ] ~docv:"N" ~doc:"Buffer capacity (slot sizing; match the ingest).")
  in
  let run dir buffer page_size =
    let t = Lsm.open_ ~buffer_capacity:buffer ~page_size dir in
    Fun.protect
      ~finally:(fun () -> Lsm.close t)
      (fun () ->
        let t0 = Unix.gettimeofday () in
        Lsm.compact t;
        Printf.printf "compacted %s in %.2fs: %d live entries\n" dir
          (Unix.gettimeofday () -. t0)
          (Lsm.count t);
        Lsm.validate t;
        print_ingest_stats (Lsm.stats t))
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Merge every live component of an LSM store into a single PR-tree component, \
          resolving all reachable tombstones, via one atomic manifest swap.")
    Term.(const run $ lsm_dir_arg $ buffer $ lsm_page_size_arg)

let stats_cmd =
  let index =
    Arg.(
      required & opt (some string) None
      & info [ "i"; "index" ] ~docv:"FILE" ~doc:"Index file or LSM store directory.")
  in
  let lsm_stats dir =
    let t = Lsm.open_ dir in
    Fun.protect
      ~finally:(fun () -> Lsm.close t)
      (fun () ->
        Printf.printf "lsm store: %d live entries\n" (Lsm.count t);
        print_ingest_stats (Lsm.stats t);
        Lsm.validate t;
        Printf.printf "validate: every healthy component structurally sound\n")
  in
  let run index backend =
    if is_lsm_dir index then lsm_stats index
    else
    with_index ~backend index (fun idx ->
        (* Metrics are recorded only while collection is on; flip it so
           the probe batch below fills the latency histogram. *)
        Obs.Metrics.set_collecting true;
        let tree = Index_file.tree idx in
        let s = Rtree.validate tree in
        let m = Metrics.analyze tree in
        Printf.printf "height %d, %d entries, fanout %d\n" (Rtree.height tree) (Rtree.count tree)
          (Rtree.capacity tree);
        Printf.printf "%s\n" (Format.asprintf "%a" Metrics.pp m);
        Printf.printf "utilization %.1f%%, min leaf fill %d, min fanout %d\n"
          (100.0 *. s.Rtree.utilization) s.Rtree.min_leaf_fill s.Rtree.min_internal_fanout;
        (* Storage-side statistics accumulated while computing the above
           (validate + analyze read every node once, modulo caching). *)
        let pool = Index_file.pool idx in
        let pager = Index_file.pager idx in
        Printf.printf "superblock: commit %d\n"
          (Superblock.commit_count (Index_file.superblock idx));
        Printf.printf "pager: %s\n"
          (Format.asprintf "%a" Pager.pp_snapshot (Pager.snapshot pager));
        Printf.printf "checksum failures: %d corrupt page read(s)\n" (Pager.corrupt_reads pager);
        let pct r = if Float.is_nan r then "n/a" else Printf.sprintf "%.1f%%" (100.0 *. r) in
        Printf.printf "pool: hits=%d misses=%d evictions=%d hit-ratio=%s\n"
          (Buffer_pool.hits pool) (Buffer_pool.misses pool) (Buffer_pool.evictions pool)
          (pct (Buffer_pool.hit_ratio pool));
        (* Read backend: validate/analyze above already exercised it, so
           the mmap counters reflect real mapped descents. *)
        (match Index_file.mmap_counters idx with
        | Some c ->
            Printf.printf
              "backend: mmap (windows-served=%d crc-skipped=%d crc-verified=%d fallbacks=%d)\n"
              c.Prt_storage.Mmap_pager.c_windows_served c.Prt_storage.Mmap_pager.c_crc_skipped
              c.Prt_storage.Mmap_pager.c_crc_verified c.Prt_storage.Mmap_pager.c_fallbacks
        | None -> Printf.printf "backend: pread\n");
        (* Exercise the batched executor's shard cache with a repeated
           whole-tree batch: the first query decodes every internal node
           into the cache, the second is served from it. *)
        let exec = Index_file.executor idx in
        (match Rtree.mbr tree with
        | Some box -> ignore (Qexec.run ~jobs:1 exec [| box; box |])
        | None -> ());
        let cs = Qexec.cache_stats exec in
        Printf.printf "shard-cache: hits=%d misses=%d invalidations=%d hit-ratio=%s\n"
          cs.Shard_cache.st_hits cs.Shard_cache.st_misses cs.Shard_cache.st_invalidations
          (pct (Qexec.cache_hit_ratio exec));
        Printf.printf "degraded: %s\n"
          (Format.asprintf "%a" Buffer_pool.pp_degraded (Buffer_pool.degraded pool));
        (* MVCC retention, resilience surfaces, and the latency
           percentiles of the probe batch above — the runtime health
           counters the telemetry layer aggregates across domains. *)
        let sb = Index_file.superblock idx in
        let mv = Pager.mvcc_stats pager in
        Printf.printf "mvcc: generation %d, retained versions %d, parked pages %d, pins %d, pin floor %d\n"
          (Superblock.generation sb) mv.Pager.live_versions mv.Pager.parked_pages
          (Superblock.pin_count sb) (Superblock.pinned_floor sb);
        Printf.printf "quarantine: %d page(s)\n" (Quarantine.count (Index_file.quarantine idx));
        Printf.printf "breaker: %s\n"
          (Format.asprintf "%a" Retry.pp_breaker_health
             (Retry.breaker_health (Buffer_pool.retry_engine pool)));
        let lat = Obs.Metrics.histogram "query.latency_us" in
        if Obs.Metrics.histogram_count lat > 0 then
          Printf.printf "query latency: p50=%.0fus p95=%.0fus p99=%.0fus (%d queries)\n"
            (Obs.Metrics.percentile lat 50.0) (Obs.Metrics.percentile lat 95.0)
            (Obs.Metrics.percentile lat 99.0) (Obs.Metrics.histogram_count lat))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print per-level structure and quality metrics of an index — or, given an LSM \
          store directory, its ingestion health: components per level, WAL bytes pending \
          replay, last-merge outcome, orphans reclaimed.")
    Term.(const run $ index $ backend_arg)

let flightrec_cmd =
  let index =
    Arg.(required & opt (some string) None & info [ "i"; "index" ] ~docv:"FILE" ~doc:"Index file.")
  in
  let out =
    Arg.(
      value & opt string "flightrec.json"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Chrome trace-event JSON output path.")
  in
  let jobs =
    Arg.(value & opt int 4 & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains for the batch.")
  in
  let window =
    Arg.(
      value
      & opt (some window_conv) None
      & info [ "window"; "w" ] ~docv:"X0,Y0,X1,Y1"
          ~doc:"Query window (defaults to the tree's bounding box).")
  in
  let repeat =
    Arg.(value & opt int 8 & info [ "repeat"; "n" ] ~docv:"N" ~doc:"Queries in the batch.")
  in
  let run index out jobs window repeat =
    with_index index (fun idx ->
        let tree = Index_file.tree idx in
        let window =
          match window with
          | Some w -> w
          | None -> (
              match Rtree.mbr tree with
              | Some box -> box
              | None -> failwith "flightrec: empty index and no --window given")
        in
        (* Trace spans + per-domain flight events land in one merged
           dump: the batch span on tid 1, each worker's query spans and
           resilience events on its own domain track. *)
        Obs.Trace.install (Obs.Trace.memory_sink ());
        let exec = Index_file.executor idx in
        let queries = Array.make (max 1 repeat) window in
        let results = Qexec.run ~jobs exec queries in
        let matched = Array.fold_left (fun acc (_, s) -> acc + s.Rtree.matched) 0 results in
        let n = Obs.Trace.write_chrome out in
        Printf.printf "%d queries over %d domain(s): %d matches\n" (Array.length queries) jobs
          matched;
        Printf.printf "flight recorder: %d event(s) recorded, %d dropped\n"
          (Obs.Flight.total_recorded ()) (Obs.Flight.dropped ());
        Printf.printf "%d trace event(s) -> %s\n" n out)
  in
  Cmd.v
    (Cmd.info "flightrec"
       ~doc:
         "Run a multicore query batch with the flight recorder on and dump the merged Chrome \
          trace (batch span + per-domain query spans and resilience events). Load the output in \
          Perfetto or about:tracing.")
    Term.(const run $ index $ out $ jobs $ window $ repeat)

let profile_cmd =
  let index =
    Arg.(required & opt (some string) None & info [ "i"; "index" ] ~docv:"FILE" ~doc:"Index file.")
  in
  let window =
    Arg.(
      required
      & opt (some window_conv) None
      & info [ "window"; "w" ] ~docv:"X0,Y0,X1,Y1" ~doc:"Query window corners.")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat"; "n" ] ~docv:"N" ~doc:"Run the query N times (first run cold, rest warm).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Also record a Chrome trace-event JSON file (load it in Perfetto or about:tracing).")
  in
  let run index window repeat trace =
    with_index index (fun idx ->
        let tree = Index_file.tree idx in
        if trace <> None then Obs.Trace.install (Obs.Trace.memory_sink ());
        Fun.protect
          ~finally:(fun () ->
            match trace with
            | Some path ->
                let n = Obs.Trace.write_chrome path in
                Obs.Trace.uninstall ();
                Printf.printf "wrote %d trace events to %s\n" n path
            | None -> ())
          (fun () ->
            let pool = Rtree.pool tree in
            let last = ref None in
            for run = 1 to max 1 repeat do
              let p = Rtree.query_profile tree window ~f:(fun _ -> ()) in
              if run = 1 || run = max 1 repeat then last := Some (run, p)
            done;
            (match !last with
            | Some (run, p) ->
                if repeat > 1 then Printf.printf "profile of run %d/%d:\n" run repeat;
                Printf.printf "%s\n" (Format.asprintf "%a" Rtree.pp_profile p)
            | None -> ());
            Printf.printf "pool totals: hits=%d misses=%d evictions=%d\n" (Buffer_pool.hits pool)
              (Buffer_pool.misses pool) (Buffer_pool.evictions pool);
            if trace <> None then begin
              let stats = Obs.Trace.summary (Obs.Trace.events ()) in
              List.iter
                (fun s ->
                  Printf.printf "span %-24s calls=%d total=%.0fus%s\n" s.Obs.Trace.span_name
                    s.Obs.Trace.calls s.Obs.Trace.total_us
                    (String.concat ""
                       (List.map (fun (k, v) -> Printf.sprintf " %s=%d" k v) s.Obs.Trace.io)))
                stats
            end))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile a window query: nodes visited per level, pager and buffer-pool activity, \
          wall-clock time, and optionally a Chrome trace.")
    Term.(const run $ index $ window $ repeat $ trace)

let validate_cmd =
  let index =
    Arg.(required & opt (some string) None & info [ "i"; "index" ] ~docv:"FILE" ~doc:"Index file.")
  in
  let run index =
    with_index index (fun idx ->
        let tree = Index_file.tree idx in
        let s = Rtree.validate tree in
        Printf.printf
          "valid: %d entries in %d leaves / %d nodes, height %d, utilization %.1f%%\n"
          s.Rtree.entries s.Rtree.leaves s.Rtree.nodes (Rtree.height tree)
          (100.0 *. s.Rtree.utilization))
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Check the structural invariants of an index file.")
    Term.(const run $ index)

let audit_cmd =
  let index =
    Arg.(required & opt (some string) None & info [ "i"; "index" ] ~docv:"FILE" ~doc:"Index file.")
  in
  let no_leaks =
    Arg.(
      value & flag
      & info [ "no-leak-check" ] ~doc:"Skip the page-leak sweep (for indexes sharing their file).")
  in
  let run index no_leaks =
    with_index index (fun idx ->
        let tree = Index_file.tree idx in
        (* Pages 0/1 hold the shadow superblock pair, and a shadow chain
           (when the file carries one) owns its directory and copy
           pages; all of them are reachable by contract. *)
        let report =
          Audit.check ~check_leaks:(not no_leaks)
            ~reachable:(0 :: 1 :: Index_file.shadow_pages idx)
            tree
        in
        Printf.printf "%s\n" (Format.asprintf "%a" Audit.pp_report report);
        if not (Audit.ok report) then exit 1)
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Run the full invariant audit on an index file: MBR containment and tightness, uniform \
          leaf depth, fill bounds, entry counts, and page leaks. Exits 1 on any violation.")
    Term.(const run $ index $ no_leaks)

let scrub_cmd =
  let index =
    Arg.(required & opt (some string) None & info [ "i"; "index" ] ~docv:"FILE" ~doc:"Index file.")
  in
  let online =
    Arg.(
      value & flag
      & info [ "online" ]
          ~doc:
            "Run the incremental self-healing pass: verify pages, heal damage from the shadow \
             chain (indexes built with $(b,prt build --shadow)), quarantine what cannot be \
             proven. Without this flag only a read-only verification sweep runs.")
  in
  let pages =
    Arg.(
      value & opt int 64
      & info [ "pages" ] ~docv:"N" ~doc:"Page budget per scrub increment (online mode).")
  in
  let run index online pages =
    with_index index (fun idx ->
        if online then begin
          (* Drive increments until the cursor wraps: one full pass over
             the file, in deadline-friendly slices. *)
          let scanned = ref 0 and damaged = ref 0 and healed = ref 0 in
          let quarantined = ref 0 and cleared = ref 0 in
          let wrapped = ref false in
          while not !wrapped do
            let r = Index_file.scrub_online ~pages idx in
            scanned := !scanned + r.Scrub.on_scanned;
            damaged := !damaged + r.Scrub.on_damaged;
            healed := !healed + r.Scrub.on_healed;
            quarantined := !quarantined + r.Scrub.on_quarantined;
            cleared := !cleared + r.Scrub.on_cleared;
            wrapped := r.Scrub.on_wrapped || r.Scrub.on_scanned = 0
          done;
          Printf.printf
            "online scrub: %d pages scanned, %d damaged, %d healed, %d quarantined, %d cleared\n"
            !scanned !damaged !healed !quarantined !cleared;
          Printf.printf "quarantine now holds %d page(s)\n"
            (Quarantine.count (Index_file.quarantine idx));
          if !damaged > !healed then exit 1
        end
        else begin
          let pager = Index_file.pager idx in
          let report = Scrub.run ~free:(fun id -> Pager.is_free pager id) pager in
          Printf.printf "%s\n" (Format.asprintf "%a" Scrub.pp_report report);
          if not (Scrub.clean report) then exit 1
        end)
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Verify every page checksum of an index file. With $(b,--online), additionally heal \
          damaged pages in place from the post-image shadow chain and maintain the quarantine — \
          the live self-healing pass. Exits 1 when unrepaired damage remains.")
    Term.(const run $ index $ online $ pages)

let fsck_cmd =
  let index =
    Arg.(required & opt (some string) None & info [ "i"; "index" ] ~docv:"FILE" ~doc:"Index file.")
  in
  let rebuild =
    Arg.(
      value
      & opt (some string) None
      & info [ "rebuild" ] ~docv:"FILE"
          ~doc:
            "Salvage every checksummed-valid entry from the file and bulk-load them into a fresh \
             PR-tree index at $(docv) — the last resort when no valid superblock survives.")
  in
  let run index rebuild =
    let rebuild =
      Option.map (fun out -> (out, fun pool entries -> Prtree.load pool entries)) rebuild
    in
    let report = Index_file.fsck ?rebuild index in
    Printf.printf "%s\n" (Format.asprintf "%a" Index_file.pp_fsck report);
    if not (Index_file.fsck_clean report) then exit 1
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Check and repair an index file: tolerate a torn final write, pick the newest valid \
          superblock, roll back an interrupted transaction from the pre-image journal, repair a \
          damaged superblock slot, verify every page checksum, and optionally salvage-rebuild. \
          Exits 1 if any issue was found.")
    Term.(const run $ index $ rebuild)

(* --- the serving tier --- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  Arg.(value & opt (some int) None & info [ "port"; "p" ] ~docv:"PORT" ~doc:"TCP port.")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"TCP host address.")

let serve_cmd =
  let index =
    Arg.(required & opt (some string) None & info [ "i"; "index" ] ~docv:"FILE" ~doc:"Index file.")
  in
  let quota_rate =
    Arg.(
      value & opt float 0.0
      & info [ "quota-rate" ] ~docv:"R"
          ~doc:"Per-connection token refill rate (query windows per second).")
  in
  let quota_burst =
    Arg.(
      value & opt float 0.0
      & info [ "quota-burst" ] ~docv:"B"
          ~doc:"Per-connection token bucket capacity; 0 disables quotas.")
  in
  let max_in_flight =
    Arg.(
      value & opt int 0
      & info [ "max-in-flight" ] ~docv:"N"
          ~doc:"Executor admission cap (queries in flight); 0 = unbounded.")
  in
  let max_queue =
    Arg.(
      value
      & opt int Serve.Server.default_config.Serve.Server.max_queue
      & info [ "max-queue" ] ~docv:"N" ~doc:"Parsed requests queued before shedding.")
  in
  let max_conns =
    Arg.(
      value
      & opt int Serve.Server.default_config.Serve.Server.max_conns
      & info [ "max-conns" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Executor domains per batch.")
  in
  let write_timeout =
    Arg.(
      value
      & opt float Serve.Server.default_config.Serve.Server.write_timeout_ms
      & info [ "write-timeout-ms" ] ~docv:"MS" ~doc:"Slow-client write cutoff.")
  in
  let drain_deadline =
    Arg.(
      value
      & opt float Serve.Server.default_config.Serve.Server.drain_deadline_ms
      & info [ "drain-deadline-ms" ] ~docv:"MS" ~doc:"Budget for graceful drain on shutdown.")
  in
  let run index socket port host quota_rate quota_burst max_in_flight max_queue max_conns jobs
      write_timeout drain_deadline backend =
    if socket = None && port = None then
      failwith "serve: need --socket PATH or --port PORT to listen on";
    with_index ~backend index (fun idx ->
        let config =
          {
            Serve.Server.default_config with
            Serve.Server.quota_rate;
            quota_burst;
            max_in_flight;
            max_queue;
            max_conns;
            jobs;
            write_timeout_ms = write_timeout;
            drain_deadline_ms = drain_deadline;
          }
        in
        let srv = Serve.Server.create ~config idx in
        (match socket with
        | Some path ->
            Serve.Server.listen_unix srv path;
            Printf.printf "prt serve: listening on unix socket %s\n%!" path
        | None -> ());
        (match port with
        | Some port ->
            Serve.Server.listen_tcp ~host srv port;
            Printf.printf "prt serve: listening on %s:%d\n%!" host port
        | None -> ());
        (* SIGTERM/SIGINT begin a graceful drain: stop accepting, finish
           in-flight requests under the drain deadline, then exit. *)
        let drain _ = Serve.Server.request_drain srv in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
        Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
        let report = Serve.Server.run srv in
        Printf.printf "%s\n" (Format.asprintf "%a" Serve.Server.pp_report report))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve window queries over a Unix-domain or TCP socket (length-prefixed CRC'd binary \
          frames, see DESIGN.md). Per-client token-bucket quotas, bounded-queue load shedding \
          with retry-after hints, per-request deadlines, slow-client cutoffs, and graceful drain \
          on SIGTERM/SIGINT.")
    Term.(
      const run $ index $ socket_arg $ port_arg $ host_arg $ quota_rate $ quota_burst
      $ max_in_flight $ max_queue $ max_conns $ jobs $ write_timeout $ drain_deadline
      $ backend_arg)

let load_cmd =
  let workload =
    Arg.(
      value & opt string "skewed"
      & info [ "workload" ] ~docv:"KIND" ~doc:"Query workload: skewed, cluster or uniform.")
  in
  let queries =
    Arg.(value & opt int 256 & info [ "queries"; "n" ] ~docv:"N" ~doc:"Query windows to replay.")
  in
  let concurrency =
    Arg.(value & opt int 1 & info [ "concurrency"; "c" ] ~docv:"N" ~doc:"Client worker domains.")
  in
  let batch =
    Arg.(value & opt int 8 & info [ "batch"; "b" ] ~docv:"N" ~doc:"Windows per request.")
  in
  let deadline =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request deadline budget; 0 = none.")
  in
  let retries =
    Arg.(
      value & opt int 3
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retry budget per request for overload/quota rejections (jittered backoff \
                honouring the server's retry-after hints).")
  in
  let drain_after =
    Arg.(
      value & flag
      & info [ "drain" ] ~doc:"Send a drain request once the replay finishes (shuts the server \
                               down gracefully).")
  in
  let run socket port host workload queries concurrency batch deadline retries seed drain_after =
    let connect () =
      match (socket, port) with
      | Some path, _ -> Serve.Client.connect_unix path
      | None, Some port -> Serve.Client.connect_tcp ~host port
      | None, None -> failwith "load: need --socket PATH or --port PORT to connect to"
    in
    let windows =
      match workload with
      | "skewed" -> Queries.skewed_squares ~count:queries ~area_fraction:0.0001 ~c:5 ~seed
      | "cluster" -> Queries.cluster_strips ~count:queries ~seed
      | "uniform" ->
          Queries.squares ~count:queries ~area_fraction:0.0001
            ~world:(Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0)
            ~seed
      | other -> failwith ("unknown workload: " ^ other ^ " (skewed|cluster|uniform)")
    in
    let cfg =
      {
        (Serve.Load_gen.default_config ~connect) with
        Serve.Load_gen.concurrency;
        batch;
        deadline_ms = deadline;
        max_retries = retries;
        seed;
      }
    in
    let stats = Serve.Load_gen.run cfg windows in
    Printf.printf "%s\n" (Format.asprintf "%a" Serve.Load_gen.pp_stats stats);
    if drain_after then begin
      let c = connect () in
      (match Serve.Client.drain c with
      | Ok health ->
          Printf.printf "drain requested: generation %d, %d connection(s) live\n"
            health.Serve.Wire.h_generation health.Serve.Wire.h_conns
      | Error f -> Printf.printf "drain failed: %s\n" (Format.asprintf "%a" Serve.Client.pp_failure f));
      Serve.Client.close c
    end;
    if stats.Serve.Load_gen.protocol_errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Replay a query workload against a running $(b,prt serve) instance from concurrent \
          worker domains, with bounded jittered-backoff retries on overload/quota rejections. \
          Prints matched counts, rejection/retry tallies, p50/p99 latency and QPS.")
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ workload $ queries $ concurrency $ batch
      $ deadline $ retries $ seed_arg $ drain_after)

let () =
  (* A client hanging up mid-reply must surface as EPIPE on that
     connection, never kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* PRT_TRACE=out.json traces any subcommand end to end: spans plus
     the flight recorder's per-domain events, merged on one time axis
     (same contract as the bench harness). *)
  (match Sys.getenv_opt "PRT_TRACE" with
  | Some path when path <> "" ->
      Obs.Metrics.set_collecting true;
      Obs.Trace.install (Obs.Trace.memory_sink ~capacity:(1 lsl 18) ());
      at_exit (fun () ->
          let n = Obs.Trace.write_chrome path in
          Printf.eprintf "trace: %d event(s) -> %s\n%!" n path)
  | _ -> ());
  let doc = "Priority R-tree spatial index tooling" in
  let info = Cmd.info "prt" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            gen_cmd;
            build_cmd;
            query_cmd;
            flightrec_cmd;
            profile_cmd;
            knn_cmd;
            insert_cmd;
            delete_cmd;
            ingest_cmd;
            compact_cmd;
            compare_cmd;
            stats_cmd;
            validate_cmd;
            audit_cmd;
            scrub_cmd;
            fsck_cmd;
            serve_cmd;
            load_cmd;
          ]))
