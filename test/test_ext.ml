(* External bulk-loader tests: the I/O-counted loaders must produce
   valid trees answering queries exactly like the in-memory loaders,
   across memory budgets that force the external paths, and their I/O
   ordering must match the paper's (H cheapest, TGS most expensive). *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Ext_load = Prt_rtree.Ext_load
module Ext_build = Prt_prtree.Ext_build

let cap = Prt_rtree.Node.capacity ~page_size:Helpers.small_page_size (* 13 *)

(* A fresh pool plus the input entries written to a record file in it. *)
let setup entries =
  let pool = Helpers.small_pool () in
  let file = Entry.File.of_array (Buffer_pool.pager pool) entries in
  (pool, file)

let ext_loaders =
  [
    ("ext-h", fun pool ~mem_records file -> Ext_load.load_h pool ~mem_records file);
    ("ext-h4", fun pool ~mem_records file -> Ext_load.load_h4 pool ~mem_records file);
    ("ext-tgs", fun pool ~mem_records file -> Ext_load.load_tgs pool ~mem_records file);
    ("ext-pr", fun pool ~mem_records file -> Ext_build.load ~mem_records pool file);
  ]

let test_ext_loader_correct (name, load) () =
  List.iter
    (fun (n, mem_records) ->
      let entries = Helpers.random_entries ~n ~seed:(n + 3) in
      let pool, file = setup entries in
      let tree = load pool ~mem_records file in
      Buffer_pool.flush (Rtree.pool tree);
      Alcotest.(check int) (name ^ " count") n (Rtree.count tree);
      let s = Helpers.check_structure tree in
      Alcotest.(check int) (name ^ " entries") n s.Rtree.entries;
      Helpers.check_tree_queries ~seed:(n * 13) tree entries)
    [ (0, 400); (1, 400); (30, 400); (500, 8 * cap); (1500, 200); (1500, 2000) ]

let test_ext_matches_in_memory_h () =
  (* The external H loader must produce the same leaf order as the
     in-memory one (same sort key): counts per level must agree. *)
  let entries = Helpers.random_entries ~n:800 ~seed:9 in
  let pool1, file = setup entries in
  let ext_tree = Ext_load.load_h pool1 ~mem_records:200 file in
  let mem_tree = Prt_rtree.Bulk_hilbert.load_h (Helpers.small_pool ()) entries in
  Alcotest.(check int) "height agrees" (Rtree.height mem_tree) (Rtree.height ext_tree);
  let leaves tree =
    let s = Rtree.validate tree in
    s.Rtree.leaves
  in
  Alcotest.(check int) "leaf count agrees" (leaves mem_tree) (leaves ext_tree)

let test_ext_pr_worst_case_bound () =
  (* The externally-built PR-tree must keep the worst-case query
     guarantee. *)
  let wc = Prt_workloads.Datasets.worst_case ~columns_log2:6 ~b:cap in
  let pool, file = setup wc.Prt_workloads.Datasets.entries in
  let tree = Ext_build.load ~mem_records:200 pool file in
  ignore (Helpers.check_structure tree);
  let query = Prt_workloads.Datasets.worst_case_query wc ~row:(cap / 2) in
  let stats = Rtree.query_count tree query in
  Alcotest.(check int) "zero output" 0 stats.Rtree.matched;
  let n = Array.length wc.Prt_workloads.Datasets.entries in
  let bound = 10.0 *. sqrt (float_of_int n /. float_of_int cap) in
  Alcotest.(check bool)
    (Printf.sprintf "visits %d <= %.0f leaves" stats.Rtree.leaf_visited bound)
    true
    (float_of_int stats.Rtree.leaf_visited <= bound)

let test_io_ordering_matches_paper () =
  (* Figure 9's shape: H uses the fewest I/Os, PR more, TGS the most. *)
  let entries = Helpers.random_entries ~n:4000 ~seed:5 in
  let mem_records = 400 in
  let build load =
    let pool, file = setup entries in
    let pager = Buffer_pool.pager pool in
    let before = Pager.snapshot pager in
    let tree = load pool ~mem_records file in
    Buffer_pool.flush (Rtree.pool tree);
    let d = Pager.diff ~before ~after:(Pager.snapshot pager) in
    ignore (Helpers.check_structure tree);
    Pager.total_io d
  in
  let h = build Ext_load.load_h in
  let pr = build (fun pool ~mem_records file -> Ext_build.load ~mem_records pool file) in
  let tgs = build Ext_load.load_tgs in
  Alcotest.(check bool) (Printf.sprintf "H=%d < PR=%d" h pr) true (h < pr);
  Alcotest.(check bool) (Printf.sprintf "PR=%d < TGS=%d" pr tgs) true (pr < tgs)

let test_ext_input_left_intact () =
  let entries = Helpers.random_entries ~n:600 ~seed:6 in
  let pool, file = setup entries in
  let _tree = Ext_build.load ~mem_records:200 pool file in
  Alcotest.(check int) "input length" 600 (Entry.File.length file);
  let back = Entry.File.read_all file in
  Array.iteri
    (fun i e -> Alcotest.(check bool) "unchanged" true (Entry.equal e back.(i)))
    entries

let test_ext_pr_duplicate_rects () =
  (* Identical rectangles (ids still unique) through the external path. *)
  let r = Rect.make ~xmin:0.3 ~ymin:0.3 ~xmax:0.4 ~ymax:0.4 in
  let entries = Array.init 500 (fun i -> Entry.make r i) in
  let pool, file = setup entries in
  let tree = Ext_build.load ~mem_records:150 pool file in
  ignore (Helpers.check_structure tree);
  Helpers.check_query_matches_brute_force tree entries r

let test_ext_pr_rejects_tiny_budget () =
  let pool, file = setup (Helpers.random_entries ~n:10 ~seed:1) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Ext_build.load ~mem_records:(8 * cap - 1) pool file);
       false
     with Invalid_argument _ -> true)

let suite =
  List.map
    (fun loader ->
      let name, _ = loader in
      Alcotest.test_case (name ^ ": correct across sizes and budgets") `Quick
        (test_ext_loader_correct loader))
    ext_loaders
  @ [
      Alcotest.test_case "ext-h matches in-memory shape" `Quick test_ext_matches_in_memory_h;
      Alcotest.test_case "ext-pr keeps worst-case bound" `Quick test_ext_pr_worst_case_bound;
      Alcotest.test_case "construction I/O ordering (Fig 9 shape)" `Quick
        test_io_ordering_matches_paper;
      Alcotest.test_case "input file left intact" `Quick test_ext_input_left_intact;
      Alcotest.test_case "ext-pr duplicate rectangles" `Quick test_ext_pr_duplicate_rects;
      Alcotest.test_case "ext-pr rejects tiny budget" `Quick test_ext_pr_rejects_tiny_budget;
    ]
