(* Dynamic update tests for the d-dimensional tree: insertion from
   empty, deletion to empty, and random mixed operations checked against
   a model, in 3 dimensions. *)

module Hyperrect = Prt_geom.Hyperrect
module Rng = Prt_util.Rng
module Entry_nd = Prt_ndtree.Entry_nd
module Rtree_nd = Prt_ndtree.Rtree_nd
module Split_nd = Prt_ndtree.Split_nd
module Dynamic_nd = Prt_ndtree.Dynamic_nd
module Prtree_nd = Prt_ndtree.Prtree_nd

let dims = 3

let random_box rng =
  let lo = Array.init dims (fun _ -> Rng.float rng 1.0) in
  let hi = Array.map (fun v -> Float.min 1.0 (v +. Rng.float rng 0.2)) lo in
  Hyperrect.make ~lo ~hi

let random_entries ~n ~seed =
  let rng = Rng.create seed in
  Array.init n (fun i -> Entry_nd.make (random_box rng) i)

let brute_force entries window =
  Array.to_list entries
  |> List.filter (fun e -> Hyperrect.intersects (Entry_nd.box e) window)
  |> List.map Entry_nd.id
  |> List.sort Int.compare

let small_pool () =
  Prt_storage.Buffer_pool.create ~capacity:4096 (Prt_storage.Pager.create_memory ~page_size:512 ())

let check_queries tree entries ~seed =
  let rng = Rng.create seed in
  for _ = 1 to 20 do
    let w = random_box rng in
    let result, _ = Rtree_nd.query_list tree w in
    Alcotest.(check (list int)) "query vs oracle" (brute_force entries w)
      (List.sort Int.compare (List.map Entry_nd.id result))
  done

let algorithms = [ Split_nd.Linear; Split_nd.Quadratic ]

let config alg = { Dynamic_nd.split_algorithm = alg; min_fill_fraction = 0.4 }

let prop_split_contract alg () =
  let rng = Rng.create 77 in
  for _ = 1 to 60 do
    let n = 2 + Rng.int rng 20 in
    let entries = Array.init n (fun i -> Entry_nd.make (random_box rng) i) in
    let min_fill = 1 + Rng.int rng 5 in
    let g1, g2 = Split_nd.split alg ~min_fill entries in
    let effective = max 1 (min min_fill (n / 2)) in
    Alcotest.(check bool) "sizes" true
      (Array.length g1 >= effective && Array.length g2 >= effective);
    let ids arr = List.sort Int.compare (Array.to_list (Array.map Entry_nd.id arr)) in
    Alcotest.(check (list int)) "partition" (List.init n Fun.id) (ids (Array.append g1 g2))
  done

let test_insert_from_empty alg () =
  let tree = Rtree_nd.create_empty ~dims (small_pool ()) in
  let entries = random_entries ~n:250 ~seed:1 in
  Array.iter (Dynamic_nd.insert ~config:(config alg) tree) entries;
  Alcotest.(check int) "count" 250 (Rtree_nd.count tree);
  ignore (Rtree_nd.validate tree);
  check_queries tree entries ~seed:2

let test_insert_into_bulk alg () =
  let pool = small_pool () in
  let base = random_entries ~n:200 ~seed:3 in
  let tree = Prtree_nd.load ~dims pool base in
  let extra =
    Array.map (fun e -> Entry_nd.make (Entry_nd.box e) (Entry_nd.id e + 200))
      (random_entries ~n:80 ~seed:4)
  in
  Array.iter (Dynamic_nd.insert ~config:(config alg) tree) extra;
  ignore (Rtree_nd.validate tree);
  check_queries tree (Array.append base extra) ~seed:5

let test_delete_all alg () =
  let pool = small_pool () in
  let entries = random_entries ~n:200 ~seed:6 in
  let tree = Prtree_nd.load ~dims pool entries in
  Array.iter
    (fun e ->
      Alcotest.(check bool) "deleted" true (Dynamic_nd.delete ~config:(config alg) tree e))
    entries;
  Alcotest.(check int) "empty" 0 (Rtree_nd.count tree);
  Alcotest.(check int) "height 1" 1 (Rtree_nd.height tree);
  ignore (Rtree_nd.validate tree)

let test_mixed_model alg () =
  let tree = Rtree_nd.create_empty ~dims (small_pool ()) in
  let rng = Rng.create 99 in
  let model : (int, Entry_nd.t) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  for step = 1 to 500 do
    let p = Rng.float rng 1.0 in
    if p < 0.55 || Hashtbl.length model = 0 then begin
      let e = Entry_nd.make (random_box rng) !next_id in
      incr next_id;
      Hashtbl.replace model (Entry_nd.id e) e;
      Dynamic_nd.insert ~config:(config alg) tree e
    end
    else if p < 0.8 then begin
      let ids = Hashtbl.fold (fun id _ acc -> id :: acc) model [] in
      let id = List.nth ids (Rng.int rng (List.length ids)) in
      let e = Hashtbl.find model id in
      Hashtbl.remove model id;
      Alcotest.(check bool) "delete" true (Dynamic_nd.delete ~config:(config alg) tree e)
    end
    else begin
      let w = random_box rng in
      let expected =
        Hashtbl.fold
          (fun id e acc -> if Hyperrect.intersects (Entry_nd.box e) w then id :: acc else acc)
          model []
        |> List.sort Int.compare
      in
      let result, _ = Rtree_nd.query_list tree w in
      Alcotest.(check (list int)) "query" expected
        (List.sort Int.compare (List.map Entry_nd.id result))
    end;
    Alcotest.(check int) "count" (Hashtbl.length model) (Rtree_nd.count tree);
    if step mod 125 = 0 then ignore (Rtree_nd.validate tree)
  done

let suite =
  List.concat_map
    (fun alg ->
      let n = Split_nd.algorithm_name alg in
      [
        Alcotest.test_case ("split contract [" ^ n ^ "]") `Quick (prop_split_contract alg);
        Alcotest.test_case ("insert from empty [" ^ n ^ "]") `Quick (test_insert_from_empty alg);
        Alcotest.test_case ("insert into bulk [" ^ n ^ "]") `Quick (test_insert_into_bulk alg);
        Alcotest.test_case ("delete all [" ^ n ^ "]") `Quick (test_delete_all alg);
        Alcotest.test_case ("mixed vs model [" ^ n ^ "]") `Quick (test_mixed_model alg);
      ])
    algorithms
